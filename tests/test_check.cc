/**
 * @file
 * Validation-subsystem tests: level parsing, digest/trace primitives,
 * the collect-mode reporter, and end-to-end exercises of the harness on
 * real workloads — Full-level invariant sweeps must come back clean on
 * the serial and the threaded engine, the structural BVH checker must
 * accept every builder output, and an injected digest fault must be
 * localized to exactly the (cycle, unit) where it was planted (the
 * harness's own false-negative test).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "check/accelcheck.h"
#include "check/check.h"
#include "core/vulkansim.h"
#include "vptx/exec.h"
#include "vptx/rtstack.h"
#include "service/service.h"

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

WorkloadParams
tiny(WorkloadId id)
{
    WorkloadParams p;
    p.width = 16;
    p.height = 16;
    p.extScale = 0.1f;
    p.rtv5Detail = 3;
    p.rtv6Prims = 300;
    return p;
}

GpuConfig
smallConfig(unsigned sms = 2)
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = sms;
    cfg.fabric.numPartitions = 2;
    return cfg;
}

// --- level parsing -----------------------------------------------------

TEST(CheckLevelTest, ParsesNamesAndNumbers)
{
    check::CheckLevel lvl = check::CheckLevel::Off;
    EXPECT_TRUE(check::parseCheckLevel("basic", &lvl));
    EXPECT_EQ(lvl, check::CheckLevel::Basic);
    EXPECT_TRUE(check::parseCheckLevel("full", &lvl));
    EXPECT_EQ(lvl, check::CheckLevel::Full);
    EXPECT_TRUE(check::parseCheckLevel("off", &lvl));
    EXPECT_EQ(lvl, check::CheckLevel::Off);
    EXPECT_TRUE(check::parseCheckLevel("2", &lvl));
    EXPECT_EQ(lvl, check::CheckLevel::Full);
    EXPECT_TRUE(check::parseCheckLevel("0", &lvl));
    EXPECT_EQ(lvl, check::CheckLevel::Off);
}

TEST(CheckLevelTest, RejectsUnknownSpellings)
{
    check::CheckLevel lvl = check::CheckLevel::Full;
    EXPECT_FALSE(check::parseCheckLevel("extreme", &lvl));
    EXPECT_FALSE(check::parseCheckLevel("", &lvl));
    // An unparsable spelling must leave the output untouched.
    EXPECT_EQ(lvl, check::CheckLevel::Full);
}

TEST(CheckLevelTest, NamesRoundTrip)
{
    for (check::CheckLevel lvl :
         {check::CheckLevel::Off, check::CheckLevel::Basic,
          check::CheckLevel::Full}) {
        check::CheckLevel parsed = check::CheckLevel::Off;
        EXPECT_TRUE(
            check::parseCheckLevel(check::checkLevelName(lvl), &parsed));
        EXPECT_EQ(parsed, lvl);
    }
}

// --- digest primitives -------------------------------------------------

TEST(DigestTest, OrderSensitive)
{
    check::Digest a, b;
    a.mix(1);
    a.mix(2);
    b.mix(2);
    b.mix(1);
    EXPECT_NE(a.value(), b.value());
}

TEST(DigestTest, EqualInputsHashEqual)
{
    check::Digest a, b;
    for (std::uint64_t v : {3ull, 1ull, 4ull, 1ull, 5ull}) {
        a.mix(v);
        b.mix(v);
    }
    EXPECT_EQ(a.value(), b.value());
}

TEST(DigestTest, FloatMixIsBitExact)
{
    // The differential compares float state bit-exactly; the digest must
    // distinguish +0.0 from -0.0 (their bit patterns differ even though
    // they compare equal as floats).
    check::Digest pos, neg;
    pos.mixFloat(0.0f);
    neg.mixFloat(-0.0f);
    EXPECT_NE(pos.value(), neg.value());
}

// --- digest traces -----------------------------------------------------

check::DigestTrace
makeTrace(Cycle period, unsigned units, std::size_t samples)
{
    check::DigestTrace t;
    t.period = period;
    t.units = units;
    for (std::size_t s = 0; s < samples; ++s)
        for (unsigned u = 0; u < units; ++u)
            t.values.push_back(1000 + s * units + u);
    return t;
}

TEST(DigestTraceTest, IdenticalTracesDoNotDiverge)
{
    check::DigestTrace a = makeTrace(4, 3, 10);
    EXPECT_FALSE(a.firstDivergence(a).diverged);
}

TEST(DigestTraceTest, LocalizesFirstMismatch)
{
    check::DigestTrace a = makeTrace(4, 3, 10);
    check::DigestTrace b = a;
    b.values[7 * 3 + 2] ^= 1; // sample 7, unit 2
    b.values[9 * 3 + 0] ^= 1; // later corruption must not mask the first
    check::DigestTrace::Divergence d = a.firstDivergence(b);
    EXPECT_TRUE(d.diverged);
    EXPECT_EQ(d.cycle, 7u * 4u);
    EXPECT_EQ(d.unit, 2u);
}

TEST(DigestTraceTest, LengthMismatchDiverges)
{
    check::DigestTrace a = makeTrace(1, 2, 5);
    check::DigestTrace b = makeTrace(1, 2, 4);
    check::DigestTrace::Divergence d = a.firstDivergence(b);
    EXPECT_TRUE(d.diverged);
    EXPECT_EQ(d.cycle, 4u); // first sample present in only one trace
}

TEST(DigestTraceTest, ShapeMismatchDiverges)
{
    check::DigestTrace a = makeTrace(1, 2, 4);
    check::DigestTrace b = makeTrace(1, 3, 4);
    EXPECT_TRUE(a.firstDivergence(b).diverged);
}

// --- reporter ----------------------------------------------------------

TEST(ReporterTest, CollectModeAccumulates)
{
    check::Reporter rep(/*collect=*/true);
    EXPECT_TRUE(rep.ok());
    rep.setCycle(42);
    rep.report("sm0.l1.mshrs", "too many");
    rep.report("fabric.p1", "queue overflow");
    EXPECT_FALSE(rep.ok());
    ASSERT_EQ(rep.violations().size(), 2u);
    EXPECT_EQ(rep.violations()[0].path, "sm0.l1.mshrs");
    EXPECT_EQ(rep.violations()[0].cycle, 42u);
    rep.clear();
    EXPECT_TRUE(rep.ok());
}

// --- the ExecBackend seam ----------------------------------------------

// Both closest-hit backends — the functional reference tracer and the
// timing side's traversal replay — answer the same queries through the
// shared ExecBackend interface, and must agree bit-for-bit on rays with
// no deferred shader work (the only rays RefTraceDiff compares).
TEST(ExecBackendTest, BackendsAgreeThroughTheSeam)
{
    Workload w(WorkloadId::REF, tiny(WorkloadId::REF));
    const GlobalMemory &gmem = *w.launch().gmem;
    CpuTracer reference(w.scene(), gmem, w.accel());
    RtReplayBackend replay(gmem, w.accel().tlasRoot);
    EXPECT_STREQ(reference.name(), "reftrace");
    EXPECT_STREQ(replay.name(), "rtreplay");

    const ExecBackend *backends[2] = {&reference, &replay};
    unsigned compared = 0;
    for (unsigned y = 0; y < 16; y += 3) {
        for (unsigned x = 0; x < 16; x += 3) {
            Ray ray = w.scene().camera.generateRay(x, y, 16, 16);
            // Deferred intersection/any-hit work is resolved only by
            // the functional backend; compare the others' common ground.
            RayTraversal probe(gmem, w.accel().tlasRoot, ray,
                               kRayFlagNone);
            probe.run();
            if (!probe.deferred().empty())
                continue;
            ++compared;
            HitRecord hits[2];
            for (int b = 0; b < 2; ++b)
                hits[b] = backends[b]->trace(ray, kRayFlagNone);
            ASSERT_EQ(hits[0].valid(), hits[1].valid()) << x << "," << y;
            if (hits[0].valid()) {
                std::uint32_t bits[2];
                std::memcpy(&bits[0], &hits[0].t, sizeof(float));
                std::memcpy(&bits[1], &hits[1].t, sizeof(float));
                EXPECT_EQ(bits[0], bits[1]) << x << "," << y;
                EXPECT_EQ(hits[0].instanceIndex, hits[1].instanceIndex);
                EXPECT_EQ(hits[0].primitiveIndex, hits[1].primitiveIndex);
            }
        }
    }
    EXPECT_GT(compared, 0u) << "sweep compared no rays";
}

// --- end-to-end: checker on real workloads -----------------------------

TEST(CheckEndToEndTest, AccelCheckerAcceptsEveryBuilderOutput)
{
    for (WorkloadId id : wl::kAllWorkloads) {
        Workload w(id, tiny(id));
        check::Reporter rep(/*collect=*/true);
        EXPECT_TRUE(check::checkAccelStruct(*w.launch().gmem, w.accel(),
                                            &w.scene(), rep))
            << wl::workloadName(id) << ": "
            << (rep.ok() ? "" : rep.violations().front().path + ": "
                                    + rep.violations().front().message);
    }
}

// Full-level sweeps walk every cross-layer invariant at every cycle
// barrier and replay sampled rays through the reference tracer; a
// violation panics, so simply completing the run is the assertion. Both
// engines must survive it.
TEST(CheckEndToEndTest, FullCheckCleanOnSerialEngine)
{
    Workload w(WorkloadId::REF, tiny(WorkloadId::REF));
    GpuConfig cfg = smallConfig(2);
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.threads = 1;
    RunResult r = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(r.cycles, 0u);
}

TEST(CheckEndToEndTest, FullCheckCleanOnThreadedEngine)
{
    Workload w(WorkloadId::EXT, tiny(WorkloadId::EXT));
    GpuConfig cfg = smallConfig(2);
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.threads = 2;
    RunResult r = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(r.cycles, 0u);
}

// The multi-stage pipeline workloads bring their own invariants to the
// sweep: AHA holds lanes in InAnyHit across barriers (the any-hit
// conservation equation must balance while suspensions are in flight),
// and RQC keeps compute-owned ray-query frames live across the whole
// traverse (chunk accounting over frames no raygen stage allocated).
TEST(CheckEndToEndTest, FullCheckCleanWithAnyHitSuspensions)
{
    Workload w(WorkloadId::AHA, tiny(WorkloadId::AHA));
    GpuConfig cfg = smallConfig(2);
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.threads = 1;
    RunResult r = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(r.rt.get("anyhit_suspended"), 0u);
}

TEST(CheckEndToEndTest, FullCheckCleanWithRayQueryFrames)
{
    Workload w(WorkloadId::RQC, tiny(WorkloadId::RQC));
    GpuConfig cfg = smallConfig(2);
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.threads = 2;
    RunResult r = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(r.cycles, 0u);
}

TEST(CheckEndToEndTest, FullCheckCleanWithItsAndRtCache)
{
    Workload w(WorkloadId::EXT, tiny(WorkloadId::EXT));
    GpuConfig cfg = smallConfig(2);
    cfg.its = true;
    cfg.useRtCache = true;
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.threads = 1;
    RunResult r = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(r.cycles, 0u);
}

// Regression for the stale-writeback bug: a warp that retires with an
// SFU writeback still in flight (a dead register write right before
// Exit) used to leave the entry in the writeback pipe, where it could
// release the scoreboard register of whichever warp reused the slot.
// The "writeback targets a live slot with the register pending"
// invariant catches the stale entry at the first Full-level sweep after
// retirement, so pre-fix this test dies on the sweep's panic.
TEST(CheckEndToEndTest, RetiredWarpLeavesNoStaleWritebacks)
{
    using namespace vptx;
    Program program;
    float four = 4.0f;
    std::uint32_t four_bits;
    std::memcpy(&four_bits, &four, sizeof(four_bits));
    Instr mov;
    mov.op = Opcode::MovImm;
    mov.dst = 1;
    mov.imm = four_bits;
    Instr sqrt_dead; // result never read: the writeback outlives the warp
    sqrt_dead.op = Opcode::FSqrt;
    sqrt_dead.dst = 2;
    sqrt_dead.src0 = 1;
    Instr exit_i;
    exit_i.op = Opcode::Exit;
    program.code = {mov, sqrt_dead, exit_i};
    ShaderInfo raygen;
    raygen.name = "stale_wb";
    raygen.stage = ShaderStage::RayGen;
    raygen.entryPc = 0;
    raygen.numRegs = 8;
    program.shaders.push_back(raygen);
    program.raygenShader = 0;

    GlobalMemory gmem;
    LaunchContext ctx;
    ctx.program = &program;
    ctx.gmem = &gmem;
    ctx.launchSize[0] = kWarpSize;
    ctx.launchSize[1] = 2; // second warp reuses the retired slot
    ctx.rtStackBase =
        gmem.allocate(2 * kWarpSize * kRtStackBytesPerThread, 64);
    ctx.scratchBase =
        gmem.allocate(2 * kWarpSize * kRtScratchBytesPerThread, 64);

    GpuConfig cfg = smallConfig(1);
    cfg.maxWarpsPerSm = 1; // force slot reuse between the two warps
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.threads = 1;
    GpuSimulator sim(cfg, ctx);
    RunResult r = sim.run();
    EXPECT_GT(r.cycles, 0u);
}

// The harness's own false-negative check: plant a one-bit digest fault
// at a known (cycle, unit) and require the differential to localize
// exactly that sample — no earlier, no later, no other unit.
TEST(CheckEndToEndTest, InjectedDigestFaultIsLocalized)
{
    WorkloadParams p = tiny(WorkloadId::TRI);
    GpuConfig clean = smallConfig(2);
    clean.digestTrace = true;
    Workload w1(WorkloadId::TRI, p);
    RunResult ref = service::defaultService().submit(w1, clean).take().run;
    ASSERT_GT(ref.digests.samples(), 600u);

    GpuConfig faulty = clean;
    faulty.digestInjectCycle = 512;
    faulty.digestInjectUnit = 1;
    Workload w2(WorkloadId::TRI, p);
    RunResult fault = service::defaultService().submit(w2, faulty).take().run;

    check::DigestTrace::Divergence d =
        ref.digests.firstDivergence(fault.digests);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.cycle, 512u);
    EXPECT_EQ(d.unit, 1u);

    // The injection only touches the trace, not the simulation.
    EXPECT_EQ(ref.cycles, fault.cycles);
}

// --- idle-skip x invariant sweeps --------------------------------------

// The scheduler proves sleeping units frozen, so Full-level sweeps skip
// them. The run must be observably identical (stats, cycles) while the
// per-unit sweep count drops; lock-step mode must sweep everything and
// skip nothing. (That skipped units still *catch* violations once awake
// is covered by RetiredWarpLeavesNoStaleWritebacks above, which plants
// a real violation and runs with idle-skip at its default, on.)
TEST(CheckEndToEndTest, FullSweepsSkipSleepingUnits)
{
    WorkloadParams p = tiny(WorkloadId::TRI);
    p.width = 8;
    p.height = 8; // 2 warps on 4 SMs: half the machine sleeps all run
    GpuConfig cfg = smallConfig(4);
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.threads = 1;

    Workload w_skip(WorkloadId::TRI, p);
    RunResult skip = service::defaultService().submit(w_skip, cfg).take().run;

    GpuConfig lockstep = cfg;
    lockstep.idleSkip = false;
    Workload w_lock(WorkloadId::TRI, p);
    RunResult lock = service::defaultService().submit(w_lock, lockstep).take().run;

    // Identical observable behavior...
    EXPECT_EQ(skip.cycles, lock.cycles);
    std::ostringstream sj, lj;
    skip.metrics.writeJson(sj, 2);
    lock.metrics.writeJson(lj, 2);
    EXPECT_EQ(sj.str(), lj.str());

    // ...but far fewer unit sweeps: the warp-less SMs are asleep.
    EXPECT_EQ(lock.sweepUnitSkips, 0u);
    EXPECT_GT(skip.sweepUnitSkips, 0u);
    EXPECT_LT(skip.sweepUnitChecks, lock.sweepUnitChecks);
    EXPECT_GT(skip.smCyclesSkipped, 0u);
    EXPECT_EQ(lock.smCyclesSkipped, 0u);
}

// The probe pins down *when* a deferred unit is re-covered: in
// lock-step mode a Full sweep touches every SM every cycle, so the
// probe fires exactly at the requested cycle; with idle-skip on, an SM
// that never receives a warp sleeps through the whole run and is only
// swept again by the final deep sweep over the woken machine.
TEST(CheckEndToEndTest, SleepingUnitSweepIsDeferredToWake)
{
    WorkloadParams p = tiny(WorkloadId::TRI);
    p.width = 8;
    p.height = 4; // one warp: SMs 1-3 never see work
    GpuConfig cfg = smallConfig(4);
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.threads = 1;
    cfg.sweepProbeCycle = 64;
    cfg.sweepProbeUnit = 3;

    GpuConfig lockstep = cfg;
    lockstep.idleSkip = false;
    Workload w_lock(WorkloadId::TRI, p);
    RunResult lock = service::defaultService().submit(w_lock, lockstep).take().run;
    ASSERT_GT(lock.cycles, 64u);
    EXPECT_EQ(lock.sweepProbeHitCycle, 64u);

    Workload w_skip(WorkloadId::TRI, p);
    RunResult skip = service::defaultService().submit(w_skip, cfg).take().run;
    EXPECT_NE(skip.sweepProbeHitCycle, ~Cycle(0));
    EXPECT_GT(skip.sweepProbeHitCycle, 64u);
    // The final deep sweep (cycle == total cycles) is what re-covers it.
    EXPECT_EQ(skip.sweepProbeHitCycle, skip.cycles);
}

// Digest sampling every cycle and every 16th cycle must agree wherever
// both sample: the sparse trace is a strict subsequence.
TEST(CheckEndToEndTest, SparseDigestTraceIsASubsequence)
{
    WorkloadParams p = tiny(WorkloadId::TRI);
    GpuConfig dense = smallConfig(2);
    dense.digestTrace = true;
    Workload w1(WorkloadId::TRI, p);
    RunResult a = service::defaultService().submit(w1, dense).take().run;

    GpuConfig sparse = dense;
    sparse.digestPeriod = 16;
    Workload w2(WorkloadId::TRI, p);
    RunResult b = service::defaultService().submit(w2, sparse).take().run;

    ASSERT_EQ(a.digests.units, b.digests.units);
    for (std::size_t s = 0; s < b.digests.samples(); ++s)
        for (unsigned u = 0; u < b.digests.units; ++u)
            ASSERT_EQ(b.digests.at(s, u), a.digests.at(s * 16, u))
                << "sample " << s << " unit " << u;
}

} // namespace
} // namespace vksim
