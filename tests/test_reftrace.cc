/**
 * @file
 * Tests for the CPU reference tracer and renderer: hit resolution of
 * procedural geometry, any-hit filters, shading sanity, image output.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "reftrace/renderer.h"
#include "scene/scenegen.h"

namespace vksim {
namespace {

struct TracerFixture
{
    Scene scene;
    GlobalMemory gmem;
    AccelStruct accel;

    explicit TracerFixture(Scene s) : scene(std::move(s))
    {
        accel = buildAccelStruct(scene, gmem);
    }
};

TEST(CpuTracerTest, ProceduralSphereResolvesAnalytically)
{
    Scene scene;
    scene.materials.push_back(Material::lambertian({1, 0, 0}));
    Geometry g;
    g.kind = GeometryKind::Procedural;
    g.prims.push_back(ProceduralPrimitive::sphere({0, 0, 0}, 1.f, 0));
    scene.geometries.push_back(std::move(g));
    Instance inst;
    inst.geometryIndex = 0;
    inst.sbtOffset = 1;
    scene.instances.push_back(inst);

    TracerFixture fx(std::move(scene));
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);

    Ray ray;
    ray.origin = {0, 0, -5};
    ray.direction = {0, 0, 1};
    HitRecord hit = tracer.trace(ray);
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.kind, HitKind::Procedural);
    // Analytic sphere hit, not the AABB entry (which would be t = 4).
    EXPECT_NEAR(hit.t, 4.f, 1e-4f);
    EXPECT_EQ(hit.sbtOffset, 1);

    // A ray that clips the AABB corner but misses the sphere.
    ray.origin = {0.95f, 0.95f, -5.f};
    EXPECT_FALSE(tracer.trace(ray).valid());
}

TEST(CpuTracerTest, ClosestOfTriangleAndProcedural)
{
    Scene scene;
    scene.materials.push_back(Material::lambertian({1, 1, 1}));
    // Triangle at z = 2 and sphere centred at z = 5: triangle is closer.
    Geometry tri;
    tri.kind = GeometryKind::Triangles;
    tri.mesh.addVertex({-2, -2, 2});
    tri.mesh.addVertex({2, -2, 2});
    tri.mesh.addVertex({0, 2, 2});
    tri.mesh.addTriangle(0, 1, 2);
    scene.geometries.push_back(std::move(tri));
    Geometry sph;
    sph.kind = GeometryKind::Procedural;
    sph.prims.push_back(ProceduralPrimitive::sphere({0, 0, 5}, 1.f, 0));
    scene.geometries.push_back(std::move(sph));
    Instance i0;
    i0.geometryIndex = 0;
    scene.instances.push_back(i0);
    Instance i1;
    i1.geometryIndex = 1;
    scene.instances.push_back(i1);

    TracerFixture fx(std::move(scene));
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);

    Ray ray;
    ray.origin = {0, 0, 0};
    ray.direction = {0, 0, 1};
    HitRecord hit = tracer.trace(ray);
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.kind, HitKind::Triangle);
    EXPECT_NEAR(hit.t, 2.f, 1e-4f);

    // From behind the triangle the sphere wins.
    ray.origin = {0, 0, 3};
    hit = tracer.trace(ray);
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.kind, HitKind::Procedural);
    EXPECT_NEAR(hit.t, 1.f, 1e-4f);
}

TEST(CpuTracerTest, OccludedSeesProceduralGeometry)
{
    TracerFixture fx(makeRtv6Scene(400));
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);
    // Straight down into the scene from above: must be occluded by ground.
    Ray ray;
    ray.origin = {0.f, 10.f, 0.f};
    ray.direction = {0.f, -1.f, 0.f};
    EXPECT_TRUE(tracer.occluded(ray));
    // Straight up into the sky: unoccluded.
    ray.direction = {0.f, 1.f, 0.f};
    EXPECT_FALSE(tracer.occluded(ray));
}

TEST(CpuTracerTest, AnyHitFilterRejectsHits)
{
    // Non-opaque triangle: build a scene manually with opaque = 0 by
    // flagging the geometry through the any-hit filter path. We emulate
    // alpha testing by rejecting every candidate, so the ray must miss.
    Scene scene = makeTriScene();
    TracerFixture fx(std::move(scene));

    // Rewrite the serialized triangle leaf as non-opaque: find it by
    // scanning BLAS blocks for the TriangleLeaf descriptor.
    // (The serializer writes the BLAS before the TLAS.)
    bool patched = false;
    for (Addr a = 0x1000; a < fx.gmem.brk(); a += kNodeBlockSize) {
        auto desc = fx.gmem.load<std::uint32_t>(a);
        if (leafDescriptorType(desc) == NodeType::TriangleLeaf) {
            auto leaf = fx.gmem.load<TriangleLeafNode>(a);
            leaf.opaque = 0;
            fx.gmem.store(a, leaf);
            patched = true;
        }
    }
    ASSERT_TRUE(patched);

    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);
    Ray ray;
    ray.origin = {0.f, 0.f, 2.5f};
    ray.direction = {0.f, 0.f, -1.f};

    // Default filter accepts: hit.
    EXPECT_TRUE(tracer.trace(ray).valid());

    // Rejecting filter: miss.
    tracer.setAnyHitFilter([](const DeferredHit &) { return false; });
    EXPECT_FALSE(tracer.trace(ray).valid());
}

TEST(SurfaceTest, TriangleNormalFacesRay)
{
    TracerFixture fx(makeRefScene());
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);
    Ray ray;
    ray.origin = {0.f, 5.f, 0.f};
    ray.direction = {0.f, -1.f, 0.f};
    HitRecord hit = tracer.trace(ray);
    ASSERT_TRUE(hit.valid());
    SurfaceInfo surf = surfaceAt(fx.scene, ray, hit);
    EXPECT_GT(surf.normal.y, 0.9f);
    EXPECT_LT(dot(surf.normal, ray.direction), 0.f);
}

TEST(SurfaceTest, SphereNormalIsRadial)
{
    Scene scene;
    scene.materials.push_back(Material::lambertian({1, 1, 1}));
    Geometry g;
    g.kind = GeometryKind::Procedural;
    g.prims.push_back(ProceduralPrimitive::sphere({2, 0, 0}, 1.f, 0));
    scene.geometries.push_back(std::move(g));
    Instance inst;
    inst.geometryIndex = 0;
    scene.instances.push_back(inst);
    TracerFixture fx(std::move(scene));
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);

    Ray ray;
    ray.origin = {-5, 0, 0};
    ray.direction = {1, 0, 0};
    HitRecord hit = tracer.trace(ray);
    ASSERT_TRUE(hit.valid());
    SurfaceInfo surf = surfaceAt(fx.scene, ray, hit);
    EXPECT_NEAR(surf.normal.x, -1.f, 1e-4f);
}

TEST(RendererTest, TriImageHasTriangleAndSky)
{
    TracerFixture fx(makeTriScene());
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);
    Image img = renderReference(tracer, ShadingMode::BaryColor, {}, 32, 32);
    // Centre pixel hits the triangle (barycentric colour sums to 1).
    float sum = img.at(16, 18, 0) + img.at(16, 18, 1) + img.at(16, 18, 2);
    EXPECT_NEAR(sum, 1.f, 1e-4f);
    // Top corner is sky.
    EXPECT_GT(img.at(0, 0, 2), 0.4f);
}

TEST(RendererTest, WhittedShowsReflectionOnFloor)
{
    TracerFixture fx(makeRefScene());
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);
    ShadingParams params;
    Image with_refl =
        renderReference(tracer, ShadingMode::Whitted, params, 48, 48);
    params.maxDepth = 1; // no reflection bounce
    Image no_refl =
        renderReference(tracer, ShadingMode::Whitted, params, 48, 48);
    ImageDiff diff = compareImages(with_refl, no_refl);
    EXPECT_GT(diff.differingFraction(), 0.05)
        << "reflection depth must change the mirror floor";
}

TEST(RendererTest, AoDarkensCorners)
{
    TracerFixture fx(makeExtScene(0.1f));
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);
    ShadingParams params;
    params.aoSamples = 4;
    TraceCounters counters;
    Image img = renderReference(tracer, ShadingMode::AmbientOcclusion,
                                params, 32, 32, &counters);
    EXPECT_GT(counters.rays, 32u * 32u) << "AO must cast secondary rays";
    // Rays per pixel: 1 primary + (shadow + AO) on hits.
    EXPECT_LE(counters.rays, 32u * 32u * (2u + params.aoSamples));
}

TEST(RendererTest, PathTraceIsDeterministic)
{
    TracerFixture fx(makeRtv6Scene(300));
    CpuTracer tracer(fx.scene, fx.gmem, fx.accel);
    ShadingParams params;
    params.maxBounces = 3;
    Image a = renderReference(tracer, ShadingMode::PathTrace, params, 24, 24);
    Image b = renderReference(tracer, ShadingMode::PathTrace, params, 24, 24);
    ImageDiff diff = compareImages(a, b, 0.f);
    EXPECT_EQ(diff.differingPixels, 0u);

    params.frameSeed = 1;
    Image c = renderReference(tracer, ShadingMode::PathTrace, params, 24, 24);
    ImageDiff seed_diff = compareImages(a, c);
    EXPECT_GT(seed_diff.differingFraction(), 0.01);
}

TEST(ImageTest, PpmRoundTripWritesFile)
{
    Image img(8, 4);
    img.setPixel(3, 2, 1.f, 0.5f, 0.25f);
    std::string path = ::testing::TempDir() + "/vksim_test.ppm";
    ASSERT_TRUE(img.writePpm(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[3] = {};
    ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
    EXPECT_EQ(magic[0], 'P');
    EXPECT_EQ(magic[1], '6');
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(ImageTest, CompareImagesCountsDifferences)
{
    Image a(4, 4);
    Image b(4, 4);
    b.setPixel(1, 1, 0.5f, 0.f, 0.f);
    ImageDiff diff = compareImages(a, b);
    EXPECT_EQ(diff.differingPixels, 1u);
    EXPECT_EQ(diff.totalPixels, 16u);
    EXPECT_NEAR(diff.maxChannelDelta, 0.5, 1e-6);
}

} // namespace
} // namespace vksim
