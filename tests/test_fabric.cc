/**
 * @file
 * Tests for the memory fabric: request routing, L2 behaviour, DRAM
 * row-buffer locality, FR-FCFS preference, bandwidth accounting, and the
 * perfect-memory variant.
 */

#include <gtest/gtest.h>

#include "dram/fabric.h"

namespace vksim {
namespace {

FabricConfig
testFabric(unsigned partitions = 2)
{
    FabricConfig cfg;
    cfg.numPartitions = partitions;
    cfg.icntLatency = 2;
    cfg.l2 = CacheConfig{"l2", 8 * 1024, 4, 10, 16, 8};
    cfg.dram.tRcd = 4;
    cfg.dram.tRp = 4;
    cfg.dram.tCas = 4;
    cfg.dram.burstCycles = 2;
    cfg.dramClockRatio = 1.0;
    return cfg;
}

/** Run until a response for SM 0 appears or `limit` cycles pass. */
std::vector<MemRequest>
runUntilResponse(MemFabric &fabric, Cycle *now, Cycle limit = 2000)
{
    for (Cycle end = *now + limit; *now < end; ++*now) {
        fabric.cycle(*now);
        auto resp = fabric.drainResponses(0, *now);
        if (!resp.empty())
            return resp;
    }
    return {};
}

TEST(FabricTest, ReadMissGoesToDramAndReturns)
{
    MemFabric fabric(testFabric(), 1);
    MemRequest req;
    req.addr = 0x1000;
    req.smId = 0;
    req.tag = 42;
    Cycle now = 0;
    fabric.inject(req, now);
    auto resp = runUntilResponse(fabric, &now);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].tag, 42u);
    EXPECT_EQ(resp[0].addr, 0x1000u);
    EXPECT_GT(now, testFabric().icntLatency * 2u);
    EXPECT_EQ(fabric.dramStats().get("requests"), 1u);
}

TEST(FabricTest, L2HitSkipsDram)
{
    MemFabric fabric(testFabric(), 1);
    Cycle now = 0;
    MemRequest req;
    req.addr = 0x2000;
    req.smId = 0;
    req.tag = 1;
    fabric.inject(req, now);
    runUntilResponse(fabric, &now);
    std::uint64_t dram_before = fabric.dramStats().get("requests");

    req.tag = 2;
    fabric.inject(req, now);
    auto resp = runUntilResponse(fabric, &now);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(fabric.dramStats().get("requests"), dram_before)
        << "second access must hit in L2";
    EXPECT_GE(fabric.l2Total("hits.shader"), 1u);
}

TEST(FabricTest, PartitionInterleavingSplitsTraffic)
{
    MemFabric fabric(testFabric(2), 1);
    Cycle now = 0;
    // 256-byte interleave: 0x000 -> partition 0, 0x100 -> partition 1.
    for (int i = 0; i < 4; ++i) {
        MemRequest req;
        req.addr = 0x100 * static_cast<Addr>(i);
        req.smId = 0;
        req.tag = static_cast<std::uint64_t>(i);
        fabric.inject(req, now);
    }
    unsigned got = 0;
    for (; now < 3000 && got < 4; ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 4u);
    EXPECT_GT(fabric.l2Stats(0).get("accesses.shader"), 0u);
    EXPECT_GT(fabric.l2Stats(1).get("accesses.shader"), 0u);
}

TEST(FabricTest, RowBufferLocalityCountsHits)
{
    MemFabric fabric(testFabric(1), 1);
    Cycle now = 0;
    // Same DRAM row (sequential sectors), distinct L2 sets not required:
    // use distinct sector addresses to avoid L2 hits.
    for (int i = 0; i < 8; ++i) {
        MemRequest req;
        req.addr = 0x10000 + static_cast<Addr>(i) * kSectorBytes;
        req.smId = 0;
        req.tag = static_cast<std::uint64_t>(i);
        fabric.inject(req, now);
    }
    unsigned got = 0;
    for (; now < 4000 && got < 8; ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 8u);
    EXPECT_GE(fabric.dramStats().get("row_hits"), 6u)
        << "sequential sectors in one row should mostly row-hit";
    EXPECT_LE(fabric.dramStats().get("row_misses"), 2u);
}

TEST(FabricTest, RandomBanksLowerRowLocality)
{
    MemFabric fabric(testFabric(1), 1);
    Cycle now = 0;
    // Scatter over rows: row size 2 KiB * 16 banks = 32 KiB apart.
    for (int i = 0; i < 8; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(i) * 64 * 1024 + 0x40;
        req.smId = 0;
        req.tag = static_cast<std::uint64_t>(i);
        fabric.inject(req, now);
    }
    unsigned got = 0;
    for (; now < 4000 && got < 8; ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 8u);
    EXPECT_EQ(fabric.dramStats().get("row_hits"), 0u);
}

TEST(FabricTest, WritesConsumeBandwidthWithoutResponses)
{
    MemFabric fabric(testFabric(1), 1);
    Cycle now = 0;
    MemRequest req;
    req.addr = 0x3000;
    req.smId = 0;
    req.write = true;
    fabric.inject(req, now);
    for (; now < 200; ++now)
        fabric.cycle(now);
    EXPECT_TRUE(fabric.drainResponses(0, now).empty());
    EXPECT_EQ(fabric.dramStats().get("requests"), 1u);
    EXPECT_TRUE(fabric.idle());
}

TEST(FabricTest, PerfectMemRespondsQuickly)
{
    FabricConfig cfg = testFabric(1);
    cfg.perfectMem = true;
    MemFabric fabric(cfg, 1);
    Cycle now = 0;
    MemRequest req;
    req.addr = 0x4000;
    req.smId = 0;
    req.tag = 7;
    fabric.inject(req, now);
    auto resp = runUntilResponse(fabric, &now);
    ASSERT_EQ(resp.size(), 1u);
    // icnt both ways + L2 latency, but no DRAM bank timing.
    EXPECT_LT(now, 2u * cfg.icntLatency + cfg.l2.latency + 5u);
}

TEST(FabricTest, DramBackpressureDoesNotInflateL2Stats)
{
    // Regression: when the DRAM queue refused a request, the partition
    // re-ran Cache::access on every retry cycle (write-through hits were
    // re-counted; read misses were cancelled and re-classified as
    // capacity/conflict), so any DRAM backpressure inflated the L2
    // access/miss statistics.
    FabricConfig cfg = testFabric(1);
    cfg.dram.queueSize = 2;
    cfg.dram.tRcd = 40;
    cfg.dram.tRp = 40;
    cfg.dram.tCas = 40;
    MemFabric fabric(cfg, 1);
    Cycle now = 0;
    const std::uint64_t kWrites = 12;
    for (std::uint64_t i = 0; i < kWrites; ++i) {
        MemRequest req;
        req.addr = 0x8000 + static_cast<Addr>(i) * kSectorBytes;
        req.smId = 0;
        req.write = true;
        fabric.inject(req, now);
    }
    MemRequest read;
    read.addr = 0x9000;
    read.smId = 0;
    read.tag = 99;
    fabric.inject(read, now);

    unsigned got = 0;
    for (; now < 60000 && (got < 1 || !fabric.idle()); ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(fabric.l2Total("accesses.shader"), kWrites + 1);
    EXPECT_EQ(fabric.l2Total("writes.shader"), kWrites);
    EXPECT_EQ(fabric.l2Total("miss_compulsory.shader"), 1u);
    EXPECT_EQ(fabric.l2Total("miss_capacity_conflict.shader"), 0u);
    EXPECT_EQ(fabric.dramStats().get("requests"), kWrites + 1);
}

TEST(FabricTest, MshrMergeAtL2ReturnsAllTags)
{
    MemFabric fabric(testFabric(1), 1);
    Cycle now = 0;
    for (std::uint64_t t = 1; t <= 3; ++t) {
        MemRequest req;
        req.addr = 0x5000;
        req.smId = 0;
        req.tag = t;
        fabric.inject(req, now);
    }
    unsigned got = 0;
    for (; now < 2000 && got < 3; ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 3u);
    // Only one DRAM request despite three requesters.
    EXPECT_EQ(fabric.dramStats().get("requests"), 1u);
}

} // namespace
} // namespace vksim
