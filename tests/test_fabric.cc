/**
 * @file
 * Tests for the memory fabric: request routing, L2 behaviour, DRAM
 * row-buffer locality, FR-FCFS preference, bandwidth accounting, and the
 * perfect-memory variant.
 */

#include <gtest/gtest.h>

#include <map>

#include "dram/fabric.h"

namespace vksim {
namespace {

FabricConfig
testFabric(unsigned partitions = 2)
{
    FabricConfig cfg;
    cfg.numPartitions = partitions;
    cfg.icntLatency = 2;
    cfg.l2 = CacheConfig{"l2", 8 * 1024, 4, 10, 16, 8};
    cfg.dram.tRcd = 4;
    cfg.dram.tRp = 4;
    cfg.dram.tCas = 4;
    cfg.dram.burstCycles = 2;
    cfg.dramClockRatio = 1.0;
    return cfg;
}

/** Run until a response for SM 0 appears or `limit` cycles pass. */
std::vector<MemRequest>
runUntilResponse(MemFabric &fabric, Cycle *now, Cycle limit = 2000)
{
    for (Cycle end = *now + limit; *now < end; ++*now) {
        fabric.cycle(*now);
        auto resp = fabric.drainResponses(0, *now);
        if (!resp.empty())
            return resp;
    }
    return {};
}

TEST(FabricTest, ReadMissGoesToDramAndReturns)
{
    MemFabric fabric(testFabric(), 1);
    MemRequest req;
    req.addr = 0x1000;
    req.smId = 0;
    req.tag = 42;
    Cycle now = 0;
    fabric.inject(req, now);
    auto resp = runUntilResponse(fabric, &now);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].tag, 42u);
    EXPECT_EQ(resp[0].addr, 0x1000u);
    EXPECT_GT(now, testFabric().icntLatency * 2u);
    EXPECT_EQ(fabric.dramStats().get("requests"), 1u);
}

TEST(FabricTest, L2HitSkipsDram)
{
    MemFabric fabric(testFabric(), 1);
    Cycle now = 0;
    MemRequest req;
    req.addr = 0x2000;
    req.smId = 0;
    req.tag = 1;
    fabric.inject(req, now);
    runUntilResponse(fabric, &now);
    std::uint64_t dram_before = fabric.dramStats().get("requests");

    req.tag = 2;
    fabric.inject(req, now);
    auto resp = runUntilResponse(fabric, &now);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(fabric.dramStats().get("requests"), dram_before)
        << "second access must hit in L2";
    EXPECT_GE(fabric.l2Total("hits.shader"), 1u);
}

TEST(FabricTest, PartitionInterleavingSplitsTraffic)
{
    MemFabric fabric(testFabric(2), 1);
    Cycle now = 0;
    // 256-byte interleave: 0x000 -> partition 0, 0x100 -> partition 1.
    for (int i = 0; i < 4; ++i) {
        MemRequest req;
        req.addr = 0x100 * static_cast<Addr>(i);
        req.smId = 0;
        req.tag = static_cast<std::uint64_t>(i);
        fabric.inject(req, now);
    }
    unsigned got = 0;
    for (; now < 3000 && got < 4; ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 4u);
    EXPECT_GT(fabric.l2Stats(0).get("accesses.shader"), 0u);
    EXPECT_GT(fabric.l2Stats(1).get("accesses.shader"), 0u);
}

TEST(FabricTest, RowBufferLocalityCountsHits)
{
    MemFabric fabric(testFabric(1), 1);
    Cycle now = 0;
    // Same DRAM row (sequential sectors), distinct L2 sets not required:
    // use distinct sector addresses to avoid L2 hits.
    for (int i = 0; i < 8; ++i) {
        MemRequest req;
        req.addr = 0x10000 + static_cast<Addr>(i) * kSectorBytes;
        req.smId = 0;
        req.tag = static_cast<std::uint64_t>(i);
        fabric.inject(req, now);
    }
    unsigned got = 0;
    for (; now < 4000 && got < 8; ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 8u);
    EXPECT_GE(fabric.dramStats().get("row_hits"), 6u)
        << "sequential sectors in one row should mostly row-hit";
    EXPECT_LE(fabric.dramStats().get("row_misses"), 2u);
}

TEST(FabricTest, RandomBanksLowerRowLocality)
{
    MemFabric fabric(testFabric(1), 1);
    Cycle now = 0;
    // Scatter over rows: row size 2 KiB * 16 banks = 32 KiB apart.
    for (int i = 0; i < 8; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(i) * 64 * 1024 + 0x40;
        req.smId = 0;
        req.tag = static_cast<std::uint64_t>(i);
        fabric.inject(req, now);
    }
    unsigned got = 0;
    for (; now < 4000 && got < 8; ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 8u);
    EXPECT_EQ(fabric.dramStats().get("row_hits"), 0u);
}

TEST(FabricTest, WritesConsumeBandwidthWithoutResponses)
{
    MemFabric fabric(testFabric(1), 1);
    Cycle now = 0;
    MemRequest req;
    req.addr = 0x3000;
    req.smId = 0;
    req.write = true;
    fabric.inject(req, now);
    for (; now < 200; ++now)
        fabric.cycle(now);
    EXPECT_TRUE(fabric.drainResponses(0, now).empty());
    EXPECT_EQ(fabric.dramStats().get("requests"), 1u);
    EXPECT_TRUE(fabric.idle());
}

TEST(FabricTest, PerfectMemRespondsQuickly)
{
    FabricConfig cfg = testFabric(1);
    cfg.perfectMem = true;
    MemFabric fabric(cfg, 1);
    Cycle now = 0;
    MemRequest req;
    req.addr = 0x4000;
    req.smId = 0;
    req.tag = 7;
    fabric.inject(req, now);
    auto resp = runUntilResponse(fabric, &now);
    ASSERT_EQ(resp.size(), 1u);
    // icnt both ways + L2 latency, but no DRAM bank timing.
    EXPECT_LT(now, 2u * cfg.icntLatency + cfg.l2.latency + 5u);
}

TEST(FabricTest, DramBackpressureDoesNotInflateL2Stats)
{
    // Regression: when the DRAM queue refused a request, the partition
    // re-ran Cache::access on every retry cycle (write-through hits were
    // re-counted; read misses were cancelled and re-classified as
    // capacity/conflict), so any DRAM backpressure inflated the L2
    // access/miss statistics.
    FabricConfig cfg = testFabric(1);
    cfg.dram.queueSize = 2;
    cfg.dram.tRcd = 40;
    cfg.dram.tRp = 40;
    cfg.dram.tCas = 40;
    MemFabric fabric(cfg, 1);
    Cycle now = 0;
    const std::uint64_t kWrites = 12;
    for (std::uint64_t i = 0; i < kWrites; ++i) {
        MemRequest req;
        req.addr = 0x8000 + static_cast<Addr>(i) * kSectorBytes;
        req.smId = 0;
        req.write = true;
        fabric.inject(req, now);
    }
    MemRequest read;
    read.addr = 0x9000;
    read.smId = 0;
    read.tag = 99;
    fabric.inject(read, now);

    unsigned got = 0;
    for (; now < 60000 && (got < 1 || !fabric.idle()); ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(fabric.l2Total("accesses.shader"), kWrites + 1);
    EXPECT_EQ(fabric.l2Total("writes.shader"), kWrites);
    EXPECT_EQ(fabric.l2Total("miss_compulsory.shader"), 1u);
    EXPECT_EQ(fabric.l2Total("miss_capacity_conflict.shader"), 0u);
    EXPECT_EQ(fabric.dramStats().get("requests"), kWrites + 1);
}

// --- Bank groups, refresh, and the modern-timing scheduler ---------------

DramConfig
modernDram()
{
    DramConfig cfg;
    cfg.banks = 4;
    cfg.rowBytes = 2048;
    cfg.tRcd = 4;
    cfg.tRp = 4;
    cfg.tCas = 4;
    cfg.burstCycles = 2;
    cfg.queueSize = 16;
    return cfg;
}

/** DRAM tick at which the n-th request issues (via the counter edge). */
std::vector<std::uint64_t>
issueTicks(DramChannel &ch, StatGroup &stats, unsigned count,
           unsigned limit = 1000)
{
    std::vector<std::uint64_t> ticks;
    std::uint64_t seen = stats.get("requests");
    for (unsigned t = 0; t < limit && ticks.size() < count; ++t) {
        ch.cycle(t);
        if (stats.get("requests") > seen) {
            seen = stats.get("requests");
            ticks.push_back(ch.dramNow());
        }
    }
    return ticks;
}

TEST(DramTimingTest, SameGroupColumnsSpacedByCcdL)
{
    // banks 0 and 2 share group 0 (bank % bankGroups with 2 groups):
    // their column commands must sit tCCDL apart even though both banks
    // are otherwise free.
    DramConfig cfg = modernDram();
    cfg.bankGroups = 2;
    cfg.tCcdL = 8;
    cfg.tCcdS = 2;
    StatGroup stats("dram");
    DramChannel ch(cfg, false, &stats);
    MemRequest a, b;
    a.addr = 0 * cfg.rowBytes; // bank 0, group 0
    b.addr = 2 * cfg.rowBytes; // bank 2, group 0
    ch.enqueue(a);
    ch.enqueue(b);
    std::vector<std::uint64_t> ticks = issueTicks(ch, stats, 2);
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_EQ(ticks[1] - ticks[0], cfg.tCcdL);
}

TEST(DramTimingTest, CrossGroupColumnsSpacedByCcdS)
{
    DramConfig cfg = modernDram();
    cfg.bankGroups = 2;
    cfg.tCcdL = 8;
    cfg.tCcdS = 2;
    StatGroup stats("dram");
    DramChannel ch(cfg, false, &stats);
    MemRequest a, b;
    a.addr = 0 * cfg.rowBytes; // bank 0, group 0
    b.addr = 1 * cfg.rowBytes; // bank 1, group 1
    ch.enqueue(a);
    ch.enqueue(b);
    std::vector<std::uint64_t> ticks = issueTicks(ch, stats, 2);
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_EQ(ticks[1] - ticks[0], cfg.tCcdS);
}

TEST(DramTimingTest, ActivatesSpacedByRrd)
{
    // Both requests row-miss on free banks in different groups: with the
    // column windows off, the activate-to-activate window is what keeps
    // them apart.
    DramConfig cfg = modernDram();
    cfg.tRrd = 6;
    StatGroup stats("dram");
    DramChannel ch(cfg, false, &stats);
    MemRequest a, b;
    a.addr = 0 * cfg.rowBytes;
    b.addr = 1 * cfg.rowBytes;
    ch.enqueue(a);
    ch.enqueue(b);
    std::vector<std::uint64_t> ticks = issueTicks(ch, stats, 2);
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_EQ(ticks[1] - ticks[0], cfg.tRrd);
    EXPECT_EQ(stats.get("row_misses"), 2u);
}

TEST(DramTimingTest, RefreshClosesRowsAndHoldsBanks)
{
    DramConfig cfg = modernDram();
    cfg.tRefi = 50;
    cfg.tRfc = 20;
    StatGroup stats("dram");
    DramChannel ch(cfg, false, &stats);

    // Open a row well before the first tREFI boundary.
    MemRequest a;
    a.addr = 0x40;
    ch.enqueue(a);
    std::vector<std::uint64_t> first = issueTicks(ch, stats, 1);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(stats.get("row_misses"), 1u);

    // Cross the refresh boundary idle, then hit the same row again: the
    // refresh closed it (row miss, not hit) and held the bank for tRFC.
    while (ch.dramNow() < cfg.tRefi)
        ch.cycle(0);
    EXPECT_GE(stats.get("refreshes"), 1u);
    MemRequest b;
    b.addr = 0x60; // same row as `a`
    ch.enqueue(b);
    std::vector<std::uint64_t> second = issueTicks(ch, stats, 1);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(stats.get("row_misses"), 2u);
    EXPECT_EQ(stats.get("row_hits"), 0u);
    // The bank was unavailable until the refresh hold expired.
    EXPECT_GE(second[0], cfg.tRefi + cfg.tRfc);
}

TEST(DramTimingTest, IdleSkipMatchesLockStepUnderModernTimings)
{
    // The satellite soundness check: with bank groups, tRRD and refresh
    // all on, a channel driven through the idle-skip protocol (quiescent
    // ticks whenever nextEventCycle() proves the next tick event-free)
    // must be bit-identical — digest and every counter — to a lock-step
    // channel receiving the same request schedule. In particular
    // nextEventCycle() must report the tREFI boundary on an *idle*
    // channel, or the skipping run processes the refresh late with
    // different readyAt stamps.
    DramConfig cfg = modernDram();
    cfg.bankGroups = 2;
    cfg.tCcdL = 6;
    cfg.tCcdS = 2;
    cfg.tRrd = 5;
    cfg.tRefi = 40;
    cfg.tRfc = 15;
    StatGroup stats_lock("dram"), stats_skip("dram");
    DramChannel lock(cfg, false, &stats_lock);
    DramChannel skip(cfg, false, &stats_skip);

    auto arrivals = [](unsigned t) {
        std::vector<Addr> out;
        if (t == 0)
            out = {0x0, 0x800, 0x40};
        if (t == 37) // straddles the first refresh
            out = {0x1000, 0x1800};
        if (t == 200) // long-idle stretch before this
            out = {0x0};
        return out;
    };

    for (unsigned t = 0; t < 400; ++t) {
        for (Addr a : arrivals(t)) {
            MemRequest r;
            r.addr = a;
            lock.enqueue(r);
            skip.enqueue(r);
        }
        lock.cycle(t);
        Cycle next = skip.nextEventCycle();
        if (next == kNoPendingEvent || next > skip.dramNow() + 1)
            skip.tickQuiescent();
        else
            skip.cycle(t);
        ASSERT_EQ(lock.stateDigest(), skip.stateDigest()) << "tick " << t;
        lock.clearCompleted();
        skip.clearCompleted();
    }
    for (const char *counter :
         {"cycles", "cycles_with_pending", "requests", "row_hits",
          "row_misses", "refreshes", "data_bus_busy", "blp_samples",
          "blp_sum"})
        EXPECT_EQ(stats_lock.get(counter), stats_skip.get(counter))
            << counter;
}

TEST(DramTimingTest, ModernChannelStateRoundTripsThroughSaveLoad)
{
    DramConfig cfg = modernDram();
    cfg.bankGroups = 2;
    cfg.tCcdL = 6;
    cfg.tCcdS = 2;
    cfg.tRrd = 5;
    cfg.tRefi = 40;
    cfg.tRfc = 15;
    StatGroup stats("dram"), stats2("dram");
    DramChannel ch(cfg, false, &stats);
    for (Addr a : {Addr(0x0), Addr(0x800), Addr(0x1000)}) {
        MemRequest r;
        r.addr = a;
        ch.enqueue(r);
    }
    for (unsigned t = 0; t < 45; ++t) // crosses the first refresh
        ch.cycle(t);

    serial::Writer w;
    ch.saveState(w);
    DramChannel restored(cfg, false, &stats2);
    serial::Reader r(w.buffer());
    restored.loadState(r);
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(ch.stateDigest(), restored.stateDigest());

    // The restored channel must continue identically, including the
    // bank-group windows and the next refresh boundary.
    for (unsigned t = 45; t < 120; ++t) {
        ch.cycle(t);
        restored.cycle(t);
        ASSERT_EQ(ch.stateDigest(), restored.stateDigest()) << "tick " << t;
    }
}

TEST(FabricTest, DefaultModeDigestMatchesSeedPin)
{
    // Regression pin recorded from the seed (pre-bank-group) fabric on
    // this exact stimulus: the default configuration must digest
    // bit-identically or digest traces diverge from pre-upgrade runs.
    FabricConfig fc;
    fc.numPartitions = 2;
    fc.l2 = CacheConfig{"l2", 64 * 1024, 4, 10, 8, 4};
    fc.dram.banks = 4;
    fc.dram.queueSize = 8;
    MemFabric fab(fc, 2);
    for (unsigned i = 0; i < 6; ++i) {
        MemRequest r;
        r.addr = 0x40ull * i + 0x1000ull * (i % 2);
        r.write = (i % 3 == 0);
        r.origin = AccessOrigin::Shader;
        r.smId = i % 2;
        r.tag = 100 + i;
        fab.inject(r, i);
    }
    for (Cycle t = 0; t < 400; ++t)
        fab.cycle(t);
    EXPECT_EQ(fab.stateDigest(400), 0x812ecdf10f5d76abull);
}

TEST(FabricTest, XorFoldInterleaveBreaksPartitionCamping)
{
    // A 512 B stride camps every access on partition 0 under the linear
    // 256 B round-robin with two partitions; the XOR-fold hash spreads
    // the same stream.
    auto run = [](L2Interleave il) {
        FabricConfig cfg;
        cfg.numPartitions = 2;
        cfg.icntLatency = 2;
        cfg.l2 = CacheConfig{"l2", 8 * 1024, 4, 10, 16, 8};
        cfg.dramClockRatio = 1.0;
        cfg.interleave = il;
        MemFabric fabric(cfg, 1);
        Cycle now = 0;
        for (unsigned i = 64; i < 96; ++i) {
            MemRequest req;
            req.addr = static_cast<Addr>(i) * 512;
            req.smId = 0;
            req.tag = i;
            fabric.inject(req, now);
        }
        for (; now < 20000 && !fabric.idle(); ++now) {
            fabric.cycle(now);
            fabric.drainResponses(0, now);
        }
        return std::pair<std::uint64_t, std::uint64_t>(
            fabric.l2Stats(0).get("accesses.shader"),
            fabric.l2Stats(1).get("accesses.shader"));
    };
    auto [lin0, lin1] = run(L2Interleave::Linear256);
    EXPECT_EQ(lin0, 32u);
    EXPECT_EQ(lin1, 0u);
    auto [xor0, xor1] = run(L2Interleave::XorFold);
    EXPECT_EQ(xor0 + xor1, 32u);
    EXPECT_GT(xor1, 0u);
}

TEST(FabricTest, Fig16CountersAreRatioInvariant)
{
    // Figure-16 denominator audit (see DESIGN.md): the DRAM utilization
    // and efficiency metrics are DRAM-tick-denominated, so changing the
    // core:DRAM clock ratio must leave every numerator — and the
    // utilization identity data_bus_busy == requests * burstCycles after
    // a full drain — untouched. A ratio-dependent drift here means some
    // counter is being sampled in the wrong clock domain.
    auto run = [](double ratio) {
        FabricConfig cfg;
        cfg.numPartitions = 1;
        cfg.icntLatency = 2;
        cfg.l2 = CacheConfig{"l2", 8 * 1024, 4, 10, 16, 8};
        cfg.dram.tRcd = 4;
        cfg.dram.tRp = 4;
        cfg.dram.tCas = 4;
        cfg.dram.burstCycles = 2;
        cfg.dramClockRatio = ratio;
        MemFabric fabric(cfg, 1);
        Cycle now = 0;
        for (unsigned i = 0; i < 16; ++i) {
            MemRequest req;
            // Alternate two rows of one bank: deterministic mix of row
            // hits and misses.
            req.addr = static_cast<Addr>(i) * kSectorBytes
                       + (i % 2) * 16 * cfg.dram.rowBytes;
            req.smId = 0;
            req.tag = i;
            fabric.inject(req, now);
        }
        for (; now < 40000 && !fabric.idle(); ++now) {
            fabric.cycle(now);
            fabric.drainResponses(0, now);
        }
        std::map<std::string, std::uint64_t> out;
        for (const char *counter :
             {"requests", "row_hits", "row_misses", "data_bus_busy",
              "cycles", "cycles_with_pending"})
            out[counter] = fabric.dramStats().get(counter);
        return out;
    };

    auto s1 = run(1.0);
    auto s2 = run(2.0);
    for (const char *counter :
         {"requests", "row_hits", "row_misses", "data_bus_busy"})
        EXPECT_EQ(s1[counter], s2[counter])
            << counter << " drifted with the DRAM clock ratio";
    for (auto *s : {&s1, &s2}) {
        // data_bus_busy counts *reserved* bus ticks — from the column
        // command to the end of the burst — so it bounds the pure
        // transfer ticks from above (see DESIGN.md, "Memory model
        // contract": reserved-tick semantics are the seed contract and
        // deliberately kept).
        EXPECT_GE((*s)["data_bus_busy"],
                  (*s)["requests"] * 2 /* burstCycles */);
        EXPECT_EQ((*s)["row_hits"] + (*s)["row_misses"], (*s)["requests"]);
        // The Fig-16 ratios are well-formed: busy ticks can exceed
        // neither total ticks nor ticks-with-pending.
        EXPECT_LE((*s)["data_bus_busy"], (*s)["cycles"]);
        EXPECT_LE((*s)["data_bus_busy"], (*s)["cycles_with_pending"]);
        EXPECT_LE((*s)["cycles_with_pending"], (*s)["cycles"]);
    }
}

TEST(FabricTest, MshrMergeAtL2ReturnsAllTags)
{
    MemFabric fabric(testFabric(1), 1);
    Cycle now = 0;
    for (std::uint64_t t = 1; t <= 3; ++t) {
        MemRequest req;
        req.addr = 0x5000;
        req.smId = 0;
        req.tag = t;
        fabric.inject(req, now);
    }
    unsigned got = 0;
    for (; now < 2000 && got < 3; ++now) {
        fabric.cycle(now);
        got += static_cast<unsigned>(fabric.drainResponses(0, now).size());
    }
    EXPECT_EQ(got, 3u);
    // Only one DRAM request despite three requesters.
    EXPECT_EQ(fabric.dramStats().get("requests"), 1u);
}

} // namespace
} // namespace vksim
