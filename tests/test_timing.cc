/**
 * @file
 * Integration tests of the timed GPU model: image correctness under
 * timing, stat sanity, configuration effects (memory variants, RT-unit
 * warp limits, schedulers, ITS, FCC), and the power model.
 */

#include <gtest/gtest.h>

#include "core/vulkansim.h"
#include "power/power.h"
#include "service/service.h"

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

WorkloadParams
tinyParams(WorkloadId id)
{
    WorkloadParams p;
    p.width = 16;
    p.height = 16;
    p.extScale = 0.1f;
    p.rtv5Detail = 3;
    p.rtv6Prims = 400;
    return p;
}

GpuConfig
fastConfig()
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 4;
    cfg.fabric.numPartitions = 2;
    cfg.maxCycles = 100'000'000;
    return cfg;
}

class TimedFidelityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TimedFidelityTest, TimedRunRendersReferenceImage)
{
    auto id = static_cast<WorkloadId>(GetParam());
    Workload workload(id, tinyParams(id));
    RunResult run = service::defaultService().submit(workload, fastConfig()).take().run;
    EXPECT_GT(run.cycles, 0u);
    Image sim = workload.readFramebuffer();
    Image ref = workload.renderReferenceImage();
    ImageDiff diff = compareImages(sim, ref);
    EXPECT_EQ(diff.differingPixels, 0u) << wl::workloadName(id);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TimedFidelityTest, ::testing::Values(0, 1, 2, 3, 4),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            wl::workloadName(static_cast<WorkloadId>(info.param)));
    });

TEST(TimedStatsTest, CountersAreConsistent)
{
    Workload workload(WorkloadId::EXT, tinyParams(WorkloadId::EXT));
    RunResult run = service::defaultService().submit(workload, fastConfig()).take().run;

    // Issue mix sums to total issues.
    std::uint64_t mix = run.core.get("issue_alu") + run.core.get("issue_sfu")
                        + run.core.get("issue_ldst")
                        + run.core.get("issue_rt")
                        + run.core.get("issue_ctrl");
    EXPECT_EQ(mix, run.core.get("issued"));

    // Every submitted RT warp completed.
    EXPECT_EQ(run.rt.get("warps_submitted"), run.rt.get("warps_completed"));
    EXPECT_GT(run.rt.get("warps_submitted"), 0u);

    // SIMT efficiencies are probabilities.
    EXPECT_GT(run.simtEfficiency(), 0.0);
    EXPECT_LE(run.simtEfficiency(), 1.0);
    EXPECT_GT(run.rtSimtEfficiency(), 0.0);
    EXPECT_LE(run.rtSimtEfficiency(), 1.0);
    EXPECT_LE(run.dramUtilization(), 1.0);
    EXPECT_LE(run.dramEfficiency(), 1.0001);

    // Caches saw both shader and RT-unit traffic.
    EXPECT_GT(run.l1.get("accesses.shader"), 0u);
    EXPECT_GT(run.l1.get("accesses.rtunit"), 0u);
}

TEST(TimedStatsTest, RtWarpLatencyHistogramFilled)
{
    Workload workload(WorkloadId::REF, tinyParams(WorkloadId::REF));
    RunResult run = service::defaultService().submit(workload, fastConfig()).take().run;
    EXPECT_GT(run.rtWarpLatency.summary().count(), 0u);
    EXPECT_GT(run.rtWarpLatency.summary().max(), 0.0);
}

TEST(MemoryVariantTest, PerfectVariantsAreFaster)
{
    WorkloadParams p = tinyParams(WorkloadId::EXT);
    auto run_variant = [&](MemoryVariant v) {
        Workload w(WorkloadId::EXT, p);
        return service::defaultService().submit(w, applyMemoryVariant(fastConfig(), v)).take().run
            .cycles;
    };
    Cycle base = run_variant(MemoryVariant::Baseline);
    Cycle perfect_bvh = run_variant(MemoryVariant::PerfectBvh);
    Cycle perfect_mem = run_variant(MemoryVariant::PerfectMem);
    EXPECT_LT(perfect_bvh, base);
    EXPECT_LT(perfect_mem, base);
}

TEST(MemoryVariantTest, ModernMemRendersCorrectlyAndCountsSectors)
{
    // The Modern preset (sectored 128 B lines, streaming reservation,
    // bank-grouped DRAM with refresh, XOR-folded interleave) is a pure
    // timing policy: the image must still match the reference exactly,
    // and the sector-level counters — never created in the default
    // configuration — must show up and balance.
    GpuConfig cfg = applyMemoryVariant(fastConfig(), MemoryVariant::Modern);
    ASSERT_TRUE(cfg.validate().empty());
    Workload w(WorkloadId::RTV5, tinyParams(WorkloadId::RTV5));
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(run.cycles, 0u);
    ImageDiff diff =
        compareImages(w.readFramebuffer(), w.renderReferenceImage());
    EXPECT_EQ(diff.differingPixels, 0u);

    // Every line miss is also a sector miss; refreshes fired.
    std::uint64_t sector_misses = run.l1.get("sector_miss.shader")
                                  + run.l1.get("sector_miss.rtunit");
    std::uint64_t line_misses = run.l1.get("line_miss.shader")
                                + run.l1.get("line_miss.rtunit");
    EXPECT_GT(sector_misses, 0u);
    EXPECT_GT(line_misses, 0u);
    EXPECT_LE(line_misses, sector_misses);
    EXPECT_GT(run.dram.get("refreshes"), 0u);
    // The streaming policy made an allocate/bypass decision per fill.
    EXPECT_GT(run.l1.get("streaming_alloc_fills")
                  + run.l1.get("streaming_bypass_fills"),
              0u);
}

TEST(MemoryVariantTest, ModernMemEpochThreadsIdleSkipStayBitIdentical)
{
    // The determinism contract with every modern policy ON: the
    // epoch-stepped multi-threaded engine and the no-idle-skip engine
    // must both match the serial lock-step oracle digest-for-digest and
    // produce the identical metrics dump.
    GpuConfig base = applyMemoryVariant(fastConfig(), MemoryVariant::Modern);
    base.digestTrace = true;

    auto run = [&](unsigned threads, unsigned epoch, bool idle_skip) {
        GpuConfig cfg = base;
        cfg.threads = threads;
        cfg.epochCycles = epoch;
        cfg.idleSkip = idle_skip;
        Workload w(WorkloadId::TRI, tinyParams(WorkloadId::TRI));
        return service::defaultService().submit(w, cfg).take().run;
    };

    RunResult oracle = run(1, 1, true);
    RunResult epoch = run(4, 64, true);
    RunResult noskip = run(4, 1, false);
    EXPECT_EQ(oracle.cycles, epoch.cycles);
    EXPECT_EQ(oracle.cycles, noskip.cycles);
    EXPECT_FALSE(oracle.digests.firstDivergence(epoch.digests).diverged);
    EXPECT_FALSE(oracle.digests.firstDivergence(noskip.digests).diverged);
    EXPECT_EQ(oracle.metrics.toJson(), epoch.metrics.toJson());
    EXPECT_EQ(oracle.metrics.toJson(), noskip.metrics.toJson());
}

TEST(MemoryVariantTest, RtCacheIsolatesRtTraffic)
{
    WorkloadParams p = tinyParams(WorkloadId::EXT);
    Workload w(WorkloadId::EXT, p);
    GpuConfig cfg = applyMemoryVariant(fastConfig(), MemoryVariant::RtCache);
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    // With a dedicated RT cache, the L1 aggregation still sees rtunit
    // accesses (merged stats) but the run must complete correctly.
    Image sim = w.readFramebuffer();
    Image ref = w.renderReferenceImage();
    EXPECT_EQ(compareImages(sim, ref).differingPixels, 0u);
}

TEST(RtWarpLimitTest, MoreWarpsHelpOrMatch)
{
    WorkloadParams p = tinyParams(WorkloadId::EXT);
    auto run_with = [&](unsigned warps) {
        Workload w(WorkloadId::EXT, p);
        GpuConfig cfg = fastConfig();
        cfg.rt.maxWarps = warps;
        return service::defaultService().submit(w, cfg).take().run.cycles;
    };
    Cycle one = run_with(1);
    Cycle eight = run_with(8);
    // Paper Fig. 16: raising the limit from one warp improves latency
    // hiding substantially.
    EXPECT_LT(eight, one);
}

TEST(SchedulerTest, LrrAlsoRendersCorrectly)
{
    WorkloadParams p = tinyParams(WorkloadId::REF);
    Workload w(WorkloadId::REF, p);
    GpuConfig cfg = fastConfig();
    cfg.sched = SchedPolicy::LRR;
    service::defaultService().submit(w, cfg).take().run;
    EXPECT_EQ(compareImages(w.readFramebuffer(), w.renderReferenceImage())
                  .differingPixels,
              0u);
}

TEST(ItsTest, TimedItsRendersCorrectly)
{
    WorkloadParams p = tinyParams(WorkloadId::RTV6);
    Workload w(WorkloadId::RTV6, p);
    GpuConfig cfg = fastConfig();
    cfg.its = true;
    service::defaultService().submit(w, cfg).take().run;
    EXPECT_EQ(compareImages(w.readFramebuffer(), w.renderReferenceImage())
                  .differingPixels,
              0u);
}

TEST(FccTest, TimedFccRendersCorrectlyAndAddsRtLoads)
{
    WorkloadParams p = tinyParams(WorkloadId::RTV6);
    Workload base(WorkloadId::RTV6, p);
    RunResult rb = service::defaultService().submit(base, fastConfig()).take().run;
    p.fcc = true;
    Workload fcc(WorkloadId::RTV6, p);
    RunResult rf = service::defaultService().submit(fcc, fastConfig()).take().run;
    EXPECT_EQ(compareImages(fcc.readFramebuffer(),
                            fcc.renderReferenceImage())
                  .differingPixels,
              0u);
    // FCC adds coalescing-buffer loads in the RT unit (paper Sec. VI-E).
    EXPECT_GT(rf.rt.get("fcc_insert_loads") + rf.rt.get("fcc_insert_stores"),
              0u);
    EXPECT_EQ(rb.rt.get("fcc_insert_loads"), 0u);
}

TEST(PowerTest, BreakdownMatchesPaperShape)
{
    Workload w(WorkloadId::EXT, tinyParams(WorkloadId::EXT));
    GpuConfig cfg = fastConfig();
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    PowerReport power = estimatePower(run, cfg.numSms);
    EXPECT_GT(power.totalJoules, 0.0);
    EXPECT_NEAR(power.fractionOf(power.constantJoules)
                    + power.fractionOf(power.staticJoules)
                    + power.fractionOf(power.coreDynamicJoules)
                    + power.fractionOf(power.cacheJoules)
                    + power.fractionOf(power.dramJoules)
                    + power.fractionOf(power.rtUnitJoules),
                1.0, 1e-9);
    // Paper Sec. VI-D: RT units < 1 % of GPU power.
    EXPECT_LT(power.fractionOf(power.rtUnitJoules), 0.01);
}

// The DRAM clock-domain ratio is now a first-class ClockDomain on the
// fabric: sweeping it must behave physically (a faster DRAM clock never
// slows the run down) and every crossing must survive a Full-level
// invariant sweep, including the non-integer ratio shipped in the
// baseline config (3500 MHz DRAM over 1365 MHz core).
TEST(ClockDomainTest, FasterDramClockIsMonotoneAndCheckerClean)
{
    WorkloadParams p = tinyParams(WorkloadId::EXT);
    auto run_ratio = [&](double ratio) {
        Workload w(WorkloadId::EXT, p);
        GpuConfig cfg = fastConfig();
        cfg.fabric.dramClockRatio = ratio;
        cfg.checkLevel = check::CheckLevel::Full;
        cfg.threads = 1;
        RunResult r = service::defaultService().submit(w, cfg).take().run;
        EXPECT_EQ(compareImages(w.readFramebuffer(),
                                w.renderReferenceImage())
                      .differingPixels,
                  0u)
            << "ratio " << ratio;
        return r.cycles;
    };
    // Ratios in ascending DRAM speed: 1.0 < 2.0 < 3500/1365 (~2.56).
    Cycle unit = run_ratio(1.0);
    Cycle doubled = run_ratio(2.0);
    Cycle paper = run_ratio(3500.0 / 1365.0);
    EXPECT_GE(unit, doubled);
    EXPECT_GE(doubled, paper);
    EXPECT_GT(unit, paper);
}

TEST(OccupancyTraceTest, SamplesWhenEnabled)
{
    Workload w(WorkloadId::REF, tinyParams(WorkloadId::REF));
    GpuConfig cfg = fastConfig();
    cfg.occupancySamplePeriod = 100;
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(run.occupancyTrace.size(), 2u);
    bool any_nonzero = false;
    for (auto [cycle, rays] : run.occupancyTrace)
        if (rays > 0)
            any_nonzero = true;
    EXPECT_TRUE(any_nonzero);
}

} // namespace
} // namespace vksim
