/**
 * @file
 * PCG32 generator tests: reproducibility, range contracts, and — the
 * property the simulator actually leans on — stream independence: the
 * parallel engine and the fuzz driver fork one generator per thread /
 * trial by varying only the stream selector (init_seq), so distinct
 * streams seeded from the same state must not overlap or correlate.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace vksim {
namespace {

std::vector<std::uint32_t>
draw(Pcg32 &rng, std::size_t n)
{
    std::vector<std::uint32_t> out(n);
    for (std::uint32_t &v : out)
        v = rng.nextU32();
    return out;
}

TEST(RngTest, SameSeedReproduces)
{
    Pcg32 a(42, 7);
    Pcg32 b(42, 7);
    EXPECT_EQ(draw(a, 256), draw(b, 256));
}

TEST(RngTest, ReseedRestartsTheStream)
{
    Pcg32 a(42, 7);
    std::vector<std::uint32_t> first = draw(a, 64);
    a.seed(42, 7);
    EXPECT_EQ(first, draw(a, 64));
}

TEST(RngTest, DistinctStatesDiffer)
{
    Pcg32 a(1, 7);
    Pcg32 b(2, 7);
    EXPECT_NE(draw(a, 64), draw(b, 64));
}

// Same state seed, different stream selectors: every pair of streams
// must produce distinct sequences. This is exactly how checkfuzz derives
// per-trial generators (state fixed, trial number as the stream).
TEST(RngTest, StreamsFromSameStateAreIndependent)
{
    constexpr unsigned kStreams = 16;
    constexpr std::size_t kLen = 512;
    std::vector<std::vector<std::uint32_t>> seqs;
    for (unsigned s = 0; s < kStreams; ++s) {
        Pcg32 rng(0x5eed5eed5eed5eedULL, s);
        seqs.push_back(draw(rng, kLen));
    }
    for (unsigned i = 0; i < kStreams; ++i)
        for (unsigned j = i + 1; j < kStreams; ++j) {
            EXPECT_NE(seqs[i], seqs[j]) << "streams " << i << "," << j;
            // Not merely shifted copies either: position-wise collisions
            // between two uniform 32-bit streams should be rare. Allow a
            // generous bound; equal-or-offset streams would collide
            // everywhere.
            unsigned collisions = 0;
            for (std::size_t k = 0; k < kLen; ++k)
                if (seqs[i][k] == seqs[j][k])
                    ++collisions;
            EXPECT_LE(collisions, 2u) << "streams " << i << "," << j;
        }
}

// Adjacent stream selectors map to well-separated increments: the seed()
// fold of init_seq must not make streams 2k and 2k+1 alias (the `<< 1`
// in the increment derivation discards the top bit, a classic mistake).
TEST(RngTest, AdjacentStreamSelectorsDoNotAlias)
{
    for (std::uint64_t s = 0; s < 64; ++s) {
        Pcg32 a(99, s);
        Pcg32 b(99, s + 1);
        EXPECT_NE(draw(a, 64), draw(b, 64)) << "stream " << s;
    }
}

TEST(RngTest, NextBelowRespectsBound)
{
    Pcg32 rng(7, 3);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 255u}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextBelowCoversTheRange)
{
    Pcg32 rng(7, 3);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextFloatInUnitInterval)
{
    Pcg32 rng(11, 5);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextFloat();
        ASSERT_GE(f, 0.0f);
        ASSERT_LT(f, 1.0f);
    }
}

TEST(RngTest, NextRangeRespectsBounds)
{
    Pcg32 rng(13, 9);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextRange(-2.5f, 4.0f);
        ASSERT_GE(f, -2.5f);
        ASSERT_LT(f, 4.0f);
    }
}

} // namespace
} // namespace vksim
