/**
 * @file
 * Tests for trace dump/replay (the artifact's trace-runner path) and the
 * command-line option parser.
 */

#include <gtest/gtest.h>

#include "core/vulkansim.h"
#include "util/options.h"
#include "vulkan/trace.h"
#include "service/service.h"

namespace vksim {
namespace {

TEST(TraceTest, DumpAndReplayReproducesFunctionalImage)
{
    wl::WorkloadParams params;
    params.width = 16;
    params.height = 16;
    wl::Workload workload(wl::WorkloadId::TRI, params);

    std::string path = ::testing::TempDir() + "/tri.vktrace";
    ASSERT_TRUE(dumpTrace(path, workload.launch()));

    std::unique_ptr<LoadedTrace> trace = loadTrace(path);
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->ctx.launchSize[0], 16u);
    EXPECT_EQ(trace->ctx.tlasRoot, workload.launch().tlasRoot);
    EXPECT_EQ(trace->program->code.size(),
              workload.pipeline().program().code.size());

    // Replay functionally and compare framebuffers.
    vptx::FunctionalRunner runner(trace->ctx);
    runner.run();
    Image original = workload.runFunctional();
    Addr fb = workload.framebuffer();
    for (unsigned i = 0; i < 16 * 16 * 3; ++i) {
        float a = trace->gmem->load<float>(fb + 4ull * i);
        float b = workload.device().memory().load<float>(fb + 4ull * i);
        ASSERT_FLOAT_EQ(a, b) << "pixel component " << i;
    }
    (void)original;
    std::remove(path.c_str());
}

TEST(TraceTest, TimedReplayMatchesCycleCount)
{
    wl::WorkloadParams params;
    params.width = 16;
    params.height = 16;
    wl::Workload workload(wl::WorkloadId::REF, params);
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 4;
    cfg.fabric.numPartitions = 2;

    std::string path = ::testing::TempDir() + "/ref.vktrace";
    ASSERT_TRUE(dumpTrace(path, workload.launch()));
    RunResult direct = service::defaultService().submit(workload, cfg).take().run;

    std::unique_ptr<LoadedTrace> trace = loadTrace(path);
    ASSERT_NE(trace, nullptr);
    GpuSimulator sim(cfg, trace->ctx);
    RunResult replay = sim.run();
    EXPECT_EQ(direct.cycles, replay.cycles)
        << "replay must be cycle-exact";
    std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsGarbage)
{
    std::string path = ::testing::TempDir() + "/garbage.vktrace";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_EQ(loadTrace(path), nullptr);
    std::remove(path.c_str());
    EXPECT_EQ(loadTrace("/nonexistent/file.vktrace"), nullptr);
}

TEST(OptionsTest, ParsesFlagsAndValues)
{
    const char *argv[] = {"prog", "--width=32", "--mobile",
                          "--scale=0.5", "--name=ext", "positional"};
    Options opts(6, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("width", 0), 32);
    EXPECT_TRUE(opts.getBool("mobile"));
    EXPECT_FALSE(opts.getBool("absent"));
    EXPECT_DOUBLE_EQ(opts.getFloat("scale", 0), 0.5);
    EXPECT_EQ(opts.get("name"), "ext");
    EXPECT_FALSE(opts.has("positional"));
    EXPECT_EQ(opts.getInt("missing", 7), 7);
}

} // namespace
} // namespace vksim
