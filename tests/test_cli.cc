/**
 * @file
 * Tests for the unified driver command-line parser (src/util/cli) and
 * the shared simulator flag set (addSimFlags/applySimFlags): defaults,
 * explicit values, error handling for unknown/malformed flags, --help,
 * and the --threads/--serial -> GpuConfig mapping. Also covers the
 * batch-manifest validator (service/manifest.h) batchrun is built on:
 * unknown keys, missing required fields, and mistyped values must be
 * rejected with actionable messages before anything is submitted.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/vulkansim.h"
#include "service/batchreport.h"
#include "service/manifest.h"
#include "util/cli.h"

namespace vksim {
namespace {

/** argv builder: parse("--a=1", "--b") style calls. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args)
        : args_(std::move(args))
    {
        ptrs_.push_back(const_cast<char *>("test"));
        for (std::string &a : args_)
            ptrs_.push_back(a.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> args_;
    std::vector<char *> ptrs_;
};

Cli
makeCli()
{
    Cli cli("test [flags]", "test parser");
    cli.option("width", "px", "64", "launch width")
        .option("scale", "f", "0.25", "a float")
        .flag("mobile", "a boolean");
    return cli;
}

TEST(Cli, DefaultsApplyWhenFlagsAbsent)
{
    Cli cli = makeCli();
    Argv a({});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_EQ(cli.getInt("width"), 64);
    EXPECT_DOUBLE_EQ(cli.getFloat("scale"), 0.25);
    EXPECT_FALSE(cli.getBool("mobile"));
    EXPECT_FALSE(cli.has("width"));
    EXPECT_FALSE(cli.helpRequested());
}

TEST(Cli, ExplicitValuesOverrideDefaults)
{
    Cli cli = makeCli();
    Argv a({"--width=128", "--scale=0.5", "--mobile"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_EQ(cli.getInt("width"), 128);
    EXPECT_DOUBLE_EQ(cli.getFloat("scale"), 0.5);
    EXPECT_TRUE(cli.getBool("mobile"));
    EXPECT_TRUE(cli.has("width"));
}

TEST(Cli, BooleanFlagAcceptsExplicitValue)
{
    Cli cli = makeCli();
    Argv a({"--mobile=0"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_FALSE(cli.getBool("mobile"));
    EXPECT_TRUE(cli.has("mobile"));
}

TEST(Cli, UnknownFlagIsAnError)
{
    Cli cli = makeCli();
    Argv a({"--nonsense=3"});
    EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
    EXPECT_FALSE(cli.helpRequested());
}

TEST(Cli, PositionalArgumentIsAnError)
{
    Cli cli = makeCli();
    Argv a({"stray"});
    EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
    EXPECT_FALSE(cli.helpRequested());
}

TEST(Cli, ValueFlagWithoutValueIsAnError)
{
    Cli cli = makeCli();
    Argv a({"--width"});
    EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
    EXPECT_FALSE(cli.helpRequested());
}

TEST(Cli, HelpReturnsFalseAndSetsHelpRequested)
{
    Cli cli = makeCli();
    Argv a({"--help"});
    EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
    EXPECT_TRUE(cli.helpRequested());
}

TEST(Cli, SimFlagsMapOntoGpuConfig)
{
    Cli cli = makeCli();
    addSimFlags(cli);
    Argv a({"--threads=3", "--perf", "--check=full",
            "--stats-json=out.json", "--timeline=t.json",
            "--timeline-sample=128"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_EQ(cli.threadCount(), 3u);

    GpuConfig config = baselineGpuConfig();
    ASSERT_TRUE(applySimFlags(cli, &config));
    EXPECT_EQ(config.threads, 3u);
    EXPECT_TRUE(config.printPerfSummary);
    EXPECT_EQ(config.checkLevel, check::CheckLevel::Full);
    EXPECT_EQ(config.timeline.path, "t.json");
    EXPECT_EQ(config.timeline.sampleInterval, 128u);
    EXPECT_EQ(cli.get("stats-json"), "out.json");
}

TEST(Cli, SerialBeatsThreads)
{
    Cli cli = makeCli();
    addSimFlags(cli);
    Argv a({"--serial", "--threads=8"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_EQ(cli.threadCount(), 1u);
}

TEST(Cli, ThreadsDefaultIsAuto)
{
    Cli cli = makeCli();
    addSimFlags(cli);
    Argv a({});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_EQ(cli.threadCount(), 0u);
}

TEST(Cli, BadCheckLevelRejected)
{
    Cli cli = makeCli();
    addSimFlags(cli);
    Argv a({"--check=bogus"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    GpuConfig config = baselineGpuConfig();
    EXPECT_FALSE(applySimFlags(cli, &config));
}

TEST(Cli, NoIdleSkipFlagMapsOntoGpuConfig)
{
    Cli cli = makeCli();
    addSimFlags(cli);
    Argv a({"--no-idle-skip"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    GpuConfig config = baselineGpuConfig();
    EXPECT_TRUE(config.idleSkip);
    ASSERT_TRUE(applySimFlags(cli, &config));
    EXPECT_FALSE(config.idleSkip);
}

/** parseManifestText over a literal, returning only success. */
bool
parseText(const std::string &text, std::vector<service::JobSpec> *out,
          std::string *error)
{
    return service::parseManifestText(text, baselineGpuConfig(), out,
                                      error);
}

TEST(Manifest, ValidManifestParsesWithDefaults)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    ASSERT_TRUE(parseText(R"({"jobs": [
        {"workload": "TRI"},
        {"workload": "RTV6", "name": "big", "width": 64, "prims": 900,
         "fcc": true, "config": "mobile", "variant": "rtcache"}
    ]})",
                          &specs, &error))
        << error;
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].workload, wl::WorkloadId::TRI);
    EXPECT_EQ(specs[0].name, "TRI0");
    EXPECT_EQ(specs[0].params.width, 32u);
    EXPECT_EQ(specs[0].params.height, 32u);
    EXPECT_EQ(specs[1].workload, wl::WorkloadId::RTV6);
    EXPECT_EQ(specs[1].name, "big");
    EXPECT_EQ(specs[1].params.width, 64u);
    EXPECT_EQ(specs[1].params.rtv6Prims, 900u);
    EXPECT_TRUE(specs[1].params.fcc);
    EXPECT_TRUE(specs[1].config.useRtCache);
}

TEST(Manifest, UnknownJobKeyRejectedWithValidKeyList)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    EXPECT_FALSE(parseText(
        R"({"jobs": [{"workload": "TRI", "varient": "rtcache"}]})",
        &specs, &error));
    EXPECT_NE(error.find("job 0"), std::string::npos) << error;
    EXPECT_NE(error.find("varient"), std::string::npos) << error;
    EXPECT_NE(error.find("variant"), std::string::npos) << error;
}

TEST(Manifest, MissingWorkloadIsActionable)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    EXPECT_FALSE(parseText(R"({"jobs": [{"workload": "TRI"},
                                        {"width": 32}]})",
                           &specs, &error));
    EXPECT_NE(error.find("job 1"), std::string::npos) << error;
    EXPECT_NE(error.find("workload"), std::string::npos) << error;
    EXPECT_NE(error.find("RTV6"), std::string::npos) << error;
}

TEST(Manifest, UnknownTopLevelKeyRejected)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    EXPECT_FALSE(parseText(
        R"({"jobs": [{"workload": "TRI"}], "threads": 4})", &specs,
        &error));
    EXPECT_NE(error.find("threads"), std::string::npos) << error;
}

TEST(Manifest, MistypedFieldRejected)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    EXPECT_FALSE(parseText(
        R"({"jobs": [{"workload": "TRI", "width": "32"}]})", &specs,
        &error));
    EXPECT_NE(error.find("width"), std::string::npos) << error;
    EXPECT_NE(error.find("number"), std::string::npos) << error;
}

TEST(Manifest, UnknownVariantAndConfigRejected)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    EXPECT_FALSE(parseText(
        R"({"jobs": [{"workload": "TRI", "variant": "magic"}]})", &specs,
        &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
    EXPECT_NE(error.find("perfectmem"), std::string::npos) << error;
    EXPECT_FALSE(parseText(
        R"({"jobs": [{"workload": "TRI", "config": "desktop"}]})", &specs,
        &error));
    EXPECT_NE(error.find("desktop"), std::string::npos) << error;
    EXPECT_NE(error.find("mobile"), std::string::npos) << error;
}

TEST(Manifest, EmptyOrMalformedJobsRejected)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    EXPECT_FALSE(parseText(R"({"jobs": []})", &specs, &error));
    EXPECT_NE(error.find("jobs"), std::string::npos) << error;
    EXPECT_FALSE(parseText(R"([1, 2])", &specs, &error));
    EXPECT_FALSE(parseText(R"({"jobs": [42]})", &specs, &error));
    EXPECT_NE(error.find("object"), std::string::npos) << error;
    EXPECT_FALSE(parseText("{nope", &specs, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Manifest, PriorityParsesAndRejectsMistypes)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    ASSERT_TRUE(parseText(R"({"jobs": [
        {"workload": "TRI", "priority": 7},
        {"workload": "TRI", "priority": -2},
        {"workload": "TRI"}
    ]})",
                          &specs, &error))
        << error;
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].priority, 7);
    EXPECT_EQ(specs[1].priority, -2);
    EXPECT_EQ(specs[2].priority, 0);

    EXPECT_FALSE(parseText(
        R"({"jobs": [{"workload": "TRI", "priority": "high"}]})", &specs,
        &error));
    EXPECT_NE(error.find("priority"), std::string::npos) << error;
    EXPECT_NE(error.find("number"), std::string::npos) << error;
}

TEST(Manifest, FramesParsesAndRejectsNonPositive)
{
    std::vector<service::JobSpec> specs;
    std::string error;
    ASSERT_TRUE(parseText(R"({"jobs": [
        {"workload": "ACC", "frames": 4},
        {"workload": "ACC"}
    ]})",
                          &specs, &error))
        << error;
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].params.frames, 4u);
    EXPECT_EQ(specs[1].params.frames, 1u);

    EXPECT_FALSE(parseText(
        R"({"jobs": [{"workload": "ACC", "frames": 0}]})", &specs,
        &error));
    EXPECT_NE(error.find("frames"), std::string::npos) << error;
}

/** Regression for the batchrun partial-failure report: failed jobs are
 *  listed by name (sorted), and a clean batch produces no summary. */
TEST(BatchReport, FailureSummaryListsFailedJobsByName)
{
    EXPECT_EQ(service::failureSummary({}), "");
    EXPECT_EQ(service::failureSummary({"solo"}),
              "1 job(s) failed: solo");
    EXPECT_EQ(service::failureSummary({"zeta", "alpha", "mid"}),
              "3 job(s) failed: alpha, mid, zeta");
}

} // namespace
} // namespace vksim
