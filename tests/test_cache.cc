/**
 * @file
 * Unit tests for the cache model: LRU replacement, set mapping, MSHR
 * merging and stalls, miss classification, and per-origin accounting.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"

namespace vksim {
namespace {

CacheConfig
smallCache(unsigned lines, unsigned assoc)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = lines * kSectorBytes;
    cfg.assoc = assoc;
    cfg.latency = 5;
    cfg.numMshrs = 4;
    cfg.mshrTargets = 2;
    return cfg;
}

TEST(CacheTest, MissThenHitAfterFill)
{
    Cache c(smallCache(4, 0));
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 1, 0),
              CacheOutcome::MissNew);
    c.fill(0x100, 1);
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 2, 2),
              CacheOutcome::Hit);
    EXPECT_EQ(c.stats().get("hits.shader"), 1u);
    EXPECT_EQ(c.stats().get("miss_compulsory.shader"), 1u);
}

TEST(CacheTest, LruEvictsColdestLine)
{
    // Fully associative, 2 lines.
    Cache c(smallCache(2, 0));
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x000, 0);
    c.access(0x020, false, AccessOrigin::Shader, 2, 1);
    c.fill(0x020, 1);
    // Touch 0x000 so 0x020 becomes LRU.
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 3, 2),
              CacheOutcome::Hit);
    // New line evicts 0x020.
    c.access(0x040, false, AccessOrigin::Shader, 4, 3);
    c.fill(0x040, 3);
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 5, 4),
              CacheOutcome::Hit);
    EXPECT_EQ(c.access(0x020, false, AccessOrigin::Shader, 6, 5),
              CacheOutcome::MissNew);
    // Re-missing 0x020 is a capacity/conflict miss, not compulsory.
    EXPECT_EQ(c.stats().get("miss_capacity_conflict.shader"), 1u);
}

TEST(CacheTest, SetMappingSeparatesConflicts)
{
    // 4 lines, 2-way: two sets.
    Cache c(smallCache(4, 2));
    // These addresses map to different sets (line index parity).
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x000, 0);
    c.access(0x020, false, AccessOrigin::Shader, 2, 0);
    c.fill(0x020, 0);
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 3, 1),
              CacheOutcome::Hit);
    EXPECT_EQ(c.access(0x020, false, AccessOrigin::Shader, 4, 1),
              CacheOutcome::Hit);
}

TEST(CacheTest, MshrMergesAndStalls)
{
    Cache c(smallCache(8, 0));
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 1, 0),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 2, 0),
              CacheOutcome::MissMerged);
    // mshrTargets = 2: third access to the same line stalls.
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 3, 0),
              CacheOutcome::Stall);
    std::vector<std::uint64_t> tags = c.fill(0x100, 1);
    ASSERT_EQ(tags.size(), 2u);
    EXPECT_EQ(tags[0], 1u);
    EXPECT_EQ(tags[1], 2u);
}

TEST(CacheTest, MshrPoolExhaustionStalls)
{
    Cache c(smallCache(16, 0)); // 4 MSHRs
    for (Addr a = 0; a < 4; ++a)
        EXPECT_EQ(c.access(0x1000 + a * 32, false, AccessOrigin::Shader, a,
                           0),
                  CacheOutcome::MissNew);
    EXPECT_EQ(c.access(0x2000, false, AccessOrigin::Shader, 9, 0),
              CacheOutcome::Stall);
    EXPECT_EQ(c.stats().get("mshr_full_stalls"), 1u);
    c.cancelMshr(0x1000);
    EXPECT_EQ(c.access(0x2000, false, AccessOrigin::Shader, 9, 0),
              CacheOutcome::MissNew);
}

TEST(CacheTest, WritesAreWriteThroughNoAllocate)
{
    Cache c(smallCache(4, 0));
    EXPECT_EQ(c.access(0x100, true, AccessOrigin::RtUnit, 0, 0),
              CacheOutcome::MissNew);
    // The write did not allocate.
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::RtUnit, 1, 1),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.stats().get("writes.rtunit"), 1u);
    EXPECT_EQ(c.stats().get("accesses.rtunit"), 2u);
}

TEST(CacheTest, OriginAccountingSeparatesShaderAndRtUnit)
{
    Cache c(smallCache(8, 0));
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.access(0x100, false, AccessOrigin::RtUnit, 2, 0);
    EXPECT_EQ(c.stats().get("accesses.shader"), 1u);
    EXPECT_EQ(c.stats().get("accesses.rtunit"), 1u);
    EXPECT_EQ(c.stats().get("miss_compulsory.shader"), 1u);
    EXPECT_EQ(c.stats().get("miss_compulsory.rtunit"), 1u);
}

TEST(CacheTest, ResetClearsEverything)
{
    Cache c(smallCache(4, 0));
    c.access(0x100, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x100, 0);
    c.reset();
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 2, 1),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.stats().get("miss_compulsory.shader"), 1u);
}

} // namespace
} // namespace vksim
