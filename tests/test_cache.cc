/**
 * @file
 * Unit tests for the cache model: LRU replacement, set mapping, MSHR
 * merging and stalls, miss classification, and per-origin accounting.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "gpu/gpu.h"

namespace vksim {
namespace {

CacheConfig
smallCache(unsigned lines, unsigned assoc)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = lines * kSectorBytes;
    cfg.assoc = assoc;
    cfg.latency = 5;
    cfg.numMshrs = 4;
    cfg.mshrTargets = 2;
    return cfg;
}

TEST(CacheTest, MissThenHitAfterFill)
{
    Cache c(smallCache(4, 0));
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 1, 0),
              CacheOutcome::MissNew);
    c.fill(0x100, 1);
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 2, 2),
              CacheOutcome::Hit);
    EXPECT_EQ(c.stats().get("hits.shader"), 1u);
    EXPECT_EQ(c.stats().get("miss_compulsory.shader"), 1u);
}

TEST(CacheTest, LruEvictsColdestLine)
{
    // Fully associative, 2 lines.
    Cache c(smallCache(2, 0));
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x000, 0);
    c.access(0x020, false, AccessOrigin::Shader, 2, 1);
    c.fill(0x020, 1);
    // Touch 0x000 so 0x020 becomes LRU.
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 3, 2),
              CacheOutcome::Hit);
    // New line evicts 0x020.
    c.access(0x040, false, AccessOrigin::Shader, 4, 3);
    c.fill(0x040, 3);
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 5, 4),
              CacheOutcome::Hit);
    EXPECT_EQ(c.access(0x020, false, AccessOrigin::Shader, 6, 5),
              CacheOutcome::MissNew);
    // Re-missing 0x020 is a capacity/conflict miss, not compulsory.
    EXPECT_EQ(c.stats().get("miss_capacity_conflict.shader"), 1u);
}

TEST(CacheTest, SetMappingSeparatesConflicts)
{
    // 4 lines, 2-way: two sets.
    Cache c(smallCache(4, 2));
    // These addresses map to different sets (line index parity).
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x000, 0);
    c.access(0x020, false, AccessOrigin::Shader, 2, 0);
    c.fill(0x020, 0);
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 3, 1),
              CacheOutcome::Hit);
    EXPECT_EQ(c.access(0x020, false, AccessOrigin::Shader, 4, 1),
              CacheOutcome::Hit);
}

TEST(CacheTest, MshrMergesAndStalls)
{
    Cache c(smallCache(8, 0));
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 1, 0),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 2, 0),
              CacheOutcome::MissMerged);
    // mshrTargets = 2: third access to the same line stalls.
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 3, 0),
              CacheOutcome::Stall);
    std::vector<std::uint64_t> tags = c.fill(0x100, 1);
    ASSERT_EQ(tags.size(), 2u);
    EXPECT_EQ(tags[0], 1u);
    EXPECT_EQ(tags[1], 2u);
}

TEST(CacheTest, MshrPoolExhaustionStalls)
{
    Cache c(smallCache(16, 0)); // 4 MSHRs
    for (Addr a = 0; a < 4; ++a)
        EXPECT_EQ(c.access(0x1000 + a * 32, false, AccessOrigin::Shader, a,
                           0),
                  CacheOutcome::MissNew);
    EXPECT_EQ(c.access(0x2000, false, AccessOrigin::Shader, 9, 0),
              CacheOutcome::Stall);
    EXPECT_EQ(c.stats().get("mshr_full_stalls"), 1u);
    c.cancelMshr(0x1000);
    EXPECT_EQ(c.access(0x2000, false, AccessOrigin::Shader, 9, 0),
              CacheOutcome::MissNew);
}

TEST(CacheTest, WritesAreWriteThroughNoAllocate)
{
    Cache c(smallCache(4, 0));
    EXPECT_EQ(c.access(0x100, true, AccessOrigin::RtUnit, 0, 0),
              CacheOutcome::MissNew);
    // The write did not allocate.
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::RtUnit, 1, 1),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.stats().get("writes.rtunit"), 1u);
    EXPECT_EQ(c.stats().get("accesses.rtunit"), 2u);
}

TEST(CacheTest, OriginAccountingSeparatesShaderAndRtUnit)
{
    Cache c(smallCache(8, 0));
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.access(0x100, false, AccessOrigin::RtUnit, 2, 0);
    EXPECT_EQ(c.stats().get("accesses.shader"), 1u);
    EXPECT_EQ(c.stats().get("accesses.rtunit"), 1u);
    EXPECT_EQ(c.stats().get("miss_compulsory.shader"), 1u);
    EXPECT_EQ(c.stats().get("miss_compulsory.rtunit"), 1u);
}

TEST(CacheTest, SeventeenMergesToOneSectorStallWithoutMiscount)
{
    // Paper-default MSHR geometry: 16 merged targets per MSHR. Driving
    // 17+ requests at one sector must stall the overflow — and the
    // stalled retries must not perturb the access/miss/merge stat split.
    CacheConfig cfg = smallCache(64, 0);
    cfg.numMshrs = 64;
    cfg.mshrTargets = 16;
    Cache c(cfg);

    EXPECT_EQ(c.access(0x400, false, AccessOrigin::RtUnit, 0, 0),
              CacheOutcome::MissNew);
    for (std::uint64_t i = 1; i < 16; ++i)
        EXPECT_EQ(c.access(0x400, false, AccessOrigin::RtUnit, i, 0),
                  CacheOutcome::MissMerged);
    // Target list is full: overflow requests stall, repeatedly.
    for (int retry = 0; retry < 4; ++retry)
        EXPECT_EQ(c.access(0x400, false, AccessOrigin::RtUnit, 16, 0),
                  CacheOutcome::Stall);

    EXPECT_EQ(c.stats().get("accesses.rtunit"), 16u);
    EXPECT_EQ(c.stats().get("miss_compulsory.rtunit"), 1u);
    EXPECT_EQ(c.stats().get("miss_capacity_conflict.rtunit"), 0u);
    EXPECT_EQ(c.stats().get("mshr_merges"), 15u);
    EXPECT_EQ(c.stats().get("mshr_target_stalls"), 4u);

    // The fill releases exactly the 16 merged cookies, none dropped.
    std::vector<std::uint64_t> tags = c.fill(0x400, 1);
    ASSERT_EQ(tags.size(), 16u);
    for (std::uint64_t i = 0; i < 16; ++i)
        EXPECT_EQ(tags[i], i);

    // The stalled request retries against the now-resident line.
    EXPECT_EQ(c.access(0x400, false, AccessOrigin::RtUnit, 16, 2),
              CacheOutcome::Hit);
    EXPECT_EQ(c.stats().get("accesses.rtunit"), 17u);
}

TEST(CacheTest, MshrFullStallRetriesCountOnce)
{
    // An access stalled on MSHR-pool exhaustion is retried verbatim by
    // every caller in the memory system; only the attempt that finally
    // goes through may touch the access/miss counters, and it must still
    // classify as compulsory.
    CacheConfig cfg = smallCache(16, 0);
    cfg.numMshrs = 1;
    Cache c(cfg);

    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 1, 0),
              CacheOutcome::MissNew);
    for (int retry = 0; retry < 3; ++retry)
        EXPECT_EQ(c.access(0x200, false, AccessOrigin::Shader, 2, 0),
                  CacheOutcome::Stall);
    EXPECT_EQ(c.stats().get("accesses.shader"), 1u);

    c.fill(0x000, 1);
    EXPECT_EQ(c.access(0x200, false, AccessOrigin::Shader, 2, 2),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.stats().get("accesses.shader"), 2u);
    EXPECT_EQ(c.stats().get("miss_compulsory.shader"), 2u);
    EXPECT_EQ(c.stats().get("miss_capacity_conflict.shader"), 0u);
    EXPECT_EQ(c.stats().get("mshr_full_stalls"), 3u);
}

TEST(CacheTest, ContainsPeeksWithoutSideEffects)
{
    Cache c(smallCache(4, 0));
    EXPECT_FALSE(c.contains(0x100));
    c.access(0x100, false, AccessOrigin::Shader, 1, 0);
    EXPECT_FALSE(c.contains(0x100)); // miss outstanding, not resident
    c.fill(0x100, 1);
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x10f)); // any address within the sector
    // The peeks above must not have counted anything.
    EXPECT_EQ(c.stats().get("accesses.shader"), 1u);
    EXPECT_EQ(c.stats().get("hits.shader"), 0u);
}

TEST(CacheTest, ResetClearsEverything)
{
    Cache c(smallCache(4, 0));
    c.access(0x100, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x100, 0);
    c.reset();
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 2, 1),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.stats().get("miss_compulsory.shader"), 1u);
}

// --- Sectored (line-tagged) mode -----------------------------------------

CacheConfig
sectoredCache(unsigned lines, unsigned assoc, Addr line_bytes)
{
    CacheConfig cfg;
    cfg.name = "sectored";
    cfg.sizeBytes = lines * line_bytes;
    cfg.assoc = assoc;
    cfg.latency = 5;
    cfg.numMshrs = 8;
    cfg.mshrTargets = 4;
    cfg.lineBytes = line_bytes;
    return cfg;
}

TEST(SectoredCacheTest, SectorFillValidatesOnlyMissedSector)
{
    // 128 B lines = 4 sectors per tag. A sector fill must leave the
    // line's other sectors invalid: hitting them later is a sector miss
    // on a resident line (line hit), not a line miss.
    Cache c(sectoredCache(2, 0, 128));
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 1, 0),
              CacheOutcome::MissNew);
    c.fill(0x000, 0);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x020));
    EXPECT_FALSE(c.contains(0x040));
    EXPECT_FALSE(c.contains(0x060));

    EXPECT_EQ(c.access(0x040, false, AccessOrigin::Shader, 2, 1),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.stats().get("sector_miss.shader"), 2u);
    EXPECT_EQ(c.stats().get("line_miss.shader"), 1u);
    // Filling the second sector must not disturb the first.
    c.fill(0x040, 1);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x040));
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 3, 2),
              CacheOutcome::Hit);
    EXPECT_EQ(c.access(0x040, false, AccessOrigin::Shader, 4, 2),
              CacheOutcome::Hit);
}

TEST(SectoredCacheTest, LineFillValidatesWholeLine)
{
    CacheConfig cfg = sectoredCache(2, 0, 128);
    cfg.fillPolicy = CacheFillPolicy::LineFill;
    Cache c(cfg);
    EXPECT_EQ(c.access(0x080, false, AccessOrigin::Shader, 1, 0),
              CacheOutcome::MissNew);
    c.fill(0x080, 0);
    // Line-fill-on-sector-miss: all four sectors of the 0x080 line are
    // now resident, including ones never requested.
    for (Addr a : {Addr(0x080), Addr(0x0a0), Addr(0x0c0), Addr(0x0e0)})
        EXPECT_TRUE(c.contains(a)) << std::hex << a;
    EXPECT_FALSE(c.contains(0x100)); // next line untouched
    EXPECT_EQ(c.access(0x0e0, false, AccessOrigin::Shader, 2, 1),
              CacheOutcome::Hit);
    EXPECT_EQ(c.stats().get("sector_miss.shader"), 1u);
    EXPECT_EQ(c.stats().get("line_miss.shader"), 1u);
}

TEST(SectoredCacheTest, MshrOnSectorMissLineHitFillsInPlace)
{
    // A sector miss on a resident line allocates an MSHR like any other
    // miss; the fill must extend the existing line's valid mask instead
    // of allocating (and possibly evicting) a fresh way.
    Cache c(sectoredCache(2, 0, 128));
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x000, 0);
    EXPECT_EQ(c.access(0x020, false, AccessOrigin::Shader, 2, 1),
              CacheOutcome::MissNew);
    EXPECT_TRUE(c.mshrPending(0x020));
    EXPECT_EQ(c.access(0x020, false, AccessOrigin::Shader, 3, 1),
              CacheOutcome::MissMerged);
    std::vector<std::uint64_t> tags = c.fill(0x020, 2);
    ASSERT_EQ(tags.size(), 2u);
    EXPECT_EQ(tags[0], 2u);
    EXPECT_EQ(tags[1], 3u);
    // No eviction happened: both sectors live under the one tag.
    EXPECT_EQ(c.stats().get("line_evictions"), 0u);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x020));
}

TEST(SectoredCacheTest, EvictionCountsPartialDirtyLines)
{
    // Fully associative, ONE line: every new tag evicts the old one.
    Cache c(sectoredCache(1, 0, 128));
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x000, 0);
    c.access(0x020, false, AccessOrigin::Shader, 2, 1);
    c.fill(0x020, 1);
    // Dirty one of the two valid sectors (write-through keeps the data
    // downstream; the dirty bit is eviction bookkeeping only).
    EXPECT_EQ(c.access(0x020, true, AccessOrigin::Shader, 3, 2),
              CacheOutcome::Hit);

    // A different tag forces the eviction of a partially-dirty line.
    c.access(0x100, false, AccessOrigin::Shader, 4, 3);
    c.fill(0x100, 3);
    EXPECT_EQ(c.stats().get("line_evictions"), 1u);
    EXPECT_EQ(c.stats().get("evict_partial_dirty"), 1u);
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x020));
    EXPECT_TRUE(c.contains(0x100));

    // Evicting a line whose dirty sectors are not a strict subset of the
    // valid mask is impossible; a fully-clean eviction must not count as
    // partial dirty.
    c.access(0x200, false, AccessOrigin::Shader, 5, 4);
    c.fill(0x200, 4);
    EXPECT_EQ(c.stats().get("line_evictions"), 2u);
    EXPECT_EQ(c.stats().get("evict_partial_dirty"), 1u);
}

TEST(SectoredCacheTest, StreamingReservationBypassesLowReuseFills)
{
    CacheConfig cfg = sectoredCache(4, 0, 128);
    cfg.streamingThreshold = 2;
    Cache c(cfg);

    // One lonely target: the fill answers it but bypasses the tag array.
    EXPECT_EQ(c.access(0x000, false, AccessOrigin::Shader, 1, 0),
              CacheOutcome::MissNew);
    std::vector<std::uint64_t> tags = c.fill(0x000, 0);
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_EQ(c.stats().get("streaming_bypass_fills"), 1u);
    EXPECT_EQ(c.stats().get("streaming_alloc_fills"), 0u);

    // Two merged targets prove reuse: the fill allocates.
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 2, 1),
              CacheOutcome::MissNew);
    EXPECT_EQ(c.access(0x100, false, AccessOrigin::Shader, 3, 1),
              CacheOutcome::MissMerged);
    tags = c.fill(0x100, 1);
    ASSERT_EQ(tags.size(), 2u);
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_EQ(c.stats().get("streaming_bypass_fills"), 1u);
    EXPECT_EQ(c.stats().get("streaming_alloc_fills"), 1u);

    // A sector fill into an already-resident line is reuse by
    // definition: it extends the line even with a single target.
    EXPECT_EQ(c.access(0x120, false, AccessOrigin::Shader, 4, 2),
              CacheOutcome::MissNew);
    c.fill(0x120, 2);
    EXPECT_TRUE(c.contains(0x120));
}

TEST(SectoredCacheTest, DefaultModeDigestMatchesSeedPin)
{
    // Regression pin: this digest value was recorded from the seed
    // (pre-sectoring) cache model on the identical stimulus. The default
    // single-sector configuration must reproduce it bit-exactly — any
    // drift means the refactor leaked into default-mode behavior and
    // digest traces / golden runs are no longer comparable to the seed.
    CacheConfig cc;
    cc.name = "pin";
    cc.sizeBytes = 8 * kSectorBytes;
    cc.assoc = 2;
    cc.numMshrs = 4;
    cc.mshrTargets = 4;
    Cache c(cc);
    Cycle now = 0;
    for (Addr a : {Addr(0x0), Addr(0x20), Addr(0x40), Addr(0x100),
                   Addr(0x0), Addr(0x220)}) {
        ++now;
        c.access(a, false, AccessOrigin::Shader, now, now);
        if (now % 2 == 0)
            c.fill(a, now);
    }
    EXPECT_EQ(c.stateDigest(), 0x846e70e2c69e29dfull);
}

TEST(SectoredCacheTest, SaveLoadRoundTripsSectorMasks)
{
    CacheConfig cfg = sectoredCache(2, 0, 128);
    Cache c(cfg);
    c.access(0x000, false, AccessOrigin::Shader, 1, 0);
    c.fill(0x000, 0);
    c.access(0x040, true, AccessOrigin::Shader, 2, 1); // write miss
    c.access(0x020, false, AccessOrigin::RtUnit, 3, 2); // open MSHR
    serial::Writer w;
    c.saveState(w);

    Cache d(cfg);
    serial::Reader r(w.buffer());
    d.loadState(r);
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(c.stateDigest(), d.stateDigest());
    EXPECT_TRUE(d.contains(0x000));
    EXPECT_FALSE(d.contains(0x020));
    EXPECT_TRUE(d.mshrPending(0x020));
}

TEST(SectoredCacheTest, ValidateRejectsBadLineGeometry)
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.l1.lineBytes = 96; // not a power of two
    EXPECT_FALSE(cfg.validate().empty());
    cfg.l1.lineBytes = 16; // below the sector size
    EXPECT_FALSE(cfg.validate().empty());
    cfg.l1.lineBytes = 2048; // more sectors than the 32-bit masks hold
    EXPECT_FALSE(cfg.validate().empty());
    cfg.l1.lineBytes = 128;
    EXPECT_TRUE(cfg.validate().empty());
}

} // namespace
} // namespace vksim
