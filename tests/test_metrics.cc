/**
 * @file
 * Observability layer tests: MetricsRegistry semantics (path/kind
 * collisions, histogram geometry, StatGroup import, shard merge order),
 * deterministic JSON formatting, the bundled JSON parser, and
 * well-formedness of the Chrome-trace timeline sink — the emitted file
 * is parsed back and checked event by event.
 */

#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/vulkansim.h"
#include "util/jsonio.h"
#include "util/metrics.h"
#include "util/timeline.h"
#include "service/service.h"

namespace vksim {
namespace {

// ---------------------------------------------------------------------
// Registry basics
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateIsStable)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("gpu.l1.hits");
    c.inc(3);
    EXPECT_EQ(&reg.counter("gpu.l1.hits"), &c);
    EXPECT_EQ(reg.get("gpu.l1.hits"), 3u);
    EXPECT_TRUE(reg.has("gpu.l1.hits"));
    EXPECT_FALSE(reg.has("gpu.l1.misses"));
    EXPECT_EQ(reg.get("gpu.l1.misses"), 0u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, KindCollisionThrows)
{
    MetricsRegistry reg;
    reg.counter("a.b");
    EXPECT_THROW(reg.gauge("a.b"), std::logic_error);
    EXPECT_THROW(reg.accum("a.b"), std::logic_error);
    EXPECT_THROW(reg.histogram("a.b"), std::logic_error);

    reg.gauge("g");
    EXPECT_THROW(reg.counter("g"), std::logic_error);

    // Cross-kind reads fail soft (documented: 0 / nullptr).
    EXPECT_EQ(reg.get("g"), 0u);
    EXPECT_EQ(reg.gaugeValue("a.b"), 0.0);
    EXPECT_EQ(reg.findHistogram("a.b"), nullptr);
}

TEST(MetricsRegistryTest, HistogramGeometryIsLockedAtCreation)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("lat", 10.0, 4);
    EXPECT_EQ(&reg.histogram("lat", 10.0, 4), &h); // same geometry: fine
    EXPECT_THROW(reg.histogram("lat", 20.0, 4), std::logic_error);
    EXPECT_THROW(reg.histogram("lat", 10.0, 8), std::logic_error);
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("lat", 10.0, 4); // [0,40) + overflow

    h.sample(0.0);   // bucket 0 (inclusive lower edge)
    h.sample(9.999); // bucket 0
    h.sample(10.0);  // bucket 1 (exclusive upper edge of bucket 0)
    h.sample(39.99); // bucket 3
    h.sample(40.0);  // overflow (top edge)
    h.sample(1e9);   // overflow

    const Histogram *found = reg.findHistogram("lat");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->buckets(),
              (std::vector<std::uint64_t>{2, 1, 0, 1}));
    EXPECT_EQ(found->overflow(), 2u);
    EXPECT_EQ(found->summary().count(), 6u);
    EXPECT_EQ(found->summary().min(), 0.0);
    EXPECT_EQ(found->summary().max(), 1e9);
}

TEST(MetricsRegistryTest, ImportGroupAddsUnderPrefix)
{
    StatGroup group("l1");
    group.counter("hits.shader").inc(7);
    group.accum("latency").sample(4.0);
    group.accum("latency").sample(6.0);

    MetricsRegistry reg;
    reg.importGroup("gpu.l1", group);
    reg.importGroup("gpu.l1", group); // second shard with equal stats

    EXPECT_EQ(reg.get("gpu.l1.hits.shader"), 14u);
    // Accumulators fold: 4 samples totalling 20.
    std::string json = reg.toJson();
    JsonValue doc;
    ASSERT_TRUE(parseJson(json, &doc));
    const JsonValue *acc =
        doc.member("accumulators")->member("gpu.l1.latency");
    ASSERT_NE(acc, nullptr);
    EXPECT_EQ(acc->member("count")->raw, "4");
    EXPECT_EQ(acc->member("sum")->number, 20.0);
    EXPECT_EQ(acc->member("min")->number, 4.0);
    EXPECT_EQ(acc->member("max")->number, 6.0);
}

TEST(MetricsRegistryTest, MergeFoldsShardsDeterministically)
{
    // Two per-SM shards with overlapping and disjoint paths.
    MetricsRegistry sm0, sm1;
    sm0.counter("core.issued").inc(10);
    sm1.counter("core.issued").inc(32);
    sm0.counter("core.only0").inc(1);
    sm1.counter("core.only1").inc(2);
    sm0.accum("rt.warp_latency").sample(100.0);
    sm1.accum("rt.warp_latency").sample(300.0);
    sm0.histogram("rt.hist", 50.0, 8).sample(75.0);
    sm1.histogram("rt.hist", 50.0, 8).sample(125.0);
    sm0.gauge("derived.eff").set(0.25);
    sm1.gauge("derived.eff").set(0.75);

    // Merging the same shards in the same fixed order twice must give
    // byte-identical dumps (the determinism contract's merge step).
    MetricsRegistry a, b;
    for (MetricsRegistry *dst : {&a, &b}) {
        dst->merge(sm0);
        dst->merge(sm1);
    }
    EXPECT_EQ(a.toJson(), b.toJson());

    EXPECT_EQ(a.get("core.issued"), 42u);
    EXPECT_EQ(a.get("core.only0"), 1u);
    EXPECT_EQ(a.get("core.only1"), 2u);
    EXPECT_EQ(a.gaugeValue("derived.eff"), 0.75); // last writer wins
    const Histogram *h = a.findHistogram("rt.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->buckets()[1], 1u);
    EXPECT_EQ(h->buckets()[2], 1u);
    EXPECT_EQ(h->summary().count(), 2u);
}

TEST(MetricsRegistryTest, MergeRejectsKindMismatch)
{
    MetricsRegistry a, b;
    a.counter("x");
    b.gauge("x");
    EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsPaths)
{
    MetricsRegistry reg;
    reg.counter("c").inc(5);
    reg.gauge("g").set(1.5);
    reg.accum("a").sample(2.0);
    reg.histogram("h", 1.0, 4).sample(2.5);
    reg.reset();
    EXPECT_EQ(reg.size(), 4u);
    EXPECT_EQ(reg.get("c"), 0u);
    EXPECT_EQ(reg.gaugeValue("g"), 0.0);
    EXPECT_EQ(reg.findHistogram("h")->summary().count(), 0u);
}

// ---------------------------------------------------------------------
// JSON formatting + parser round trip
// ---------------------------------------------------------------------

TEST(MetricsJsonTest, FormatJsonNumber)
{
    EXPECT_EQ(formatJsonNumber(0.0), "0");
    EXPECT_EQ(formatJsonNumber(0.5), "0.5");
    EXPECT_EQ(formatJsonNumber(-3.0), "-3");
    // Shortest round trip, not %f noise.
    EXPECT_EQ(formatJsonNumber(0.1), "0.1");
    // Non-finite values have no JSON spelling.
    EXPECT_EQ(formatJsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(formatJsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(MetricsJsonTest, DumpParsesBackWithExactCounters)
{
    MetricsRegistry reg;
    // Counter beyond 2^53: survives only if dumped as an integer literal
    // and compared via raw text, which is exactly what jsonio preserves.
    reg.counter("big").inc((1ull << 60) + 1);
    reg.counter("name with \"quotes\" and \\slash").inc(1);
    reg.gauge("ratio").set(0.375);
    reg.accum("acc").sample(1.0);
    reg.histogram("h", 2.0, 3).sample(5.0);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(reg.toJson(), &doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.member("counters")->member("big")->raw,
              "1152921504606846977");
    EXPECT_NE(doc.member("counters")
                  ->member("name with \"quotes\" and \\slash"),
              nullptr);
    EXPECT_EQ(doc.member("gauges")->member("ratio")->number, 0.375);
    const JsonValue *h = doc.member("histograms")->member("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->member("bucket_width")->number, 2.0);
    EXPECT_EQ(h->member("buckets")->array.size(), 3u);
    EXPECT_EQ(h->member("buckets")->array[2].raw, "1");

    // Indented form must parse to the same document.
    JsonValue indented;
    ASSERT_TRUE(parseJson(reg.toJson(4), &indented, &error)) << error;
    EXPECT_EQ(indented.member("counters")->member("big")->raw,
              doc.member("counters")->member("big")->raw);
}

TEST(JsonIoTest, ParserRejectsMalformedDocuments)
{
    JsonValue v;
    EXPECT_FALSE(parseJson("", &v));
    EXPECT_FALSE(parseJson("{", &v));
    EXPECT_FALSE(parseJson("{\"a\": 1,}", &v));
    EXPECT_FALSE(parseJson("[1, 2] trailing", &v));
    EXPECT_FALSE(parseJson("{\"a\": 1, \"a\": 2}", &v)); // dup key
    EXPECT_FALSE(parseJson("\"unterminated", &v));
    EXPECT_FALSE(parseJson("01", &v));

    std::string error;
    EXPECT_FALSE(parseJson("[1, ", &v, &error));
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;
}

TEST(JsonIoTest, ParserHandlesEscapesAndNesting)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(
        R"({"s": "a\"b\\c\nA", "arr": [true, false, null, -1.5e2]})",
        &v));
    EXPECT_EQ(v.member("s")->str, "a\"b\\c\nA");
    ASSERT_EQ(v.member("arr")->array.size(), 4u);
    EXPECT_TRUE(v.member("arr")->array[0].boolean);
    EXPECT_TRUE(v.member("arr")->array[2].isNull());
    EXPECT_EQ(v.member("arr")->array[3].number, -150.0);
}

// ---------------------------------------------------------------------
// Timeline sink
// ---------------------------------------------------------------------

TEST(TimelineTest, EmittedFileIsWellFormedChromeTrace)
{
    TimelineConfig config;
    config.path = ::testing::TempDir() + "vksim_timeline_test.json";
    config.sampleInterval = 4;
    config.maxEvents = 1024;

    Timeline timeline(config, 2);
    timeline.setProcessName(0, "sm0");
    timeline.setProcessName(1, "fabric");
    timeline.shard(0)->complete("sched.slot0", "warp3", 10, 250);
    timeline.shard(0)->instant("rtunit", "stack_spill", 42);
    timeline.shard(1)->counter("part0.inbound", 64, 7.0);
    EXPECT_TRUE(timeline.shard(0)->sampleDue(8));
    EXPECT_FALSE(timeline.shard(0)->sampleDue(9));
    EXPECT_EQ(timeline.eventCount(), 3u);
    EXPECT_EQ(timeline.droppedCount(), 0u);

    std::string error;
    ASSERT_TRUE(timeline.writeFile(&error)) << error;

    std::string text;
    ASSERT_TRUE(readFile(config.path, &text, &error)) << error;
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, &doc, &error)) << error;

    const JsonValue *events = doc.member("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // 3 recorded events + 2 process_name metadata records.
    ASSERT_EQ(events->array.size(), 5u);

    unsigned seen_x = 0, seen_i = 0, seen_c = 0, seen_m = 0;
    for (const JsonValue &ev : events->array) {
        ASSERT_TRUE(ev.isObject());
        const JsonValue *ph = ev.member("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(ev.member("pid"), nullptr);
        if (ph->str == "X") {
            ++seen_x;
            EXPECT_EQ(ev.member("name")->str, "warp3");
            EXPECT_EQ(ev.member("tid")->str, "sched.slot0");
            EXPECT_EQ(ev.member("ts")->raw, "10");
            EXPECT_EQ(ev.member("dur")->raw, "240");
        } else if (ph->str == "i") {
            ++seen_i;
            EXPECT_EQ(ev.member("name")->str, "stack_spill");
            EXPECT_EQ(ev.member("s")->str, "t");
        } else if (ph->str == "C") {
            ++seen_c;
            EXPECT_EQ(ev.member("args")->member("value")->number, 7.0);
            EXPECT_EQ(ev.member("pid")->raw, "1");
        } else if (ph->str == "M") {
            ++seen_m;
            EXPECT_EQ(ev.member("name")->str, "process_name");
        }
    }
    EXPECT_EQ(seen_x, 1u);
    EXPECT_EQ(seen_i, 1u);
    EXPECT_EQ(seen_c, 1u);
    EXPECT_EQ(seen_m, 2u);

    EXPECT_EQ(doc.member("otherData")->member("clock")->str, "sim_cycles");
    std::remove(config.path.c_str());
}

TEST(TimelineTest, EventBudgetIsPerShardAndDeterministic)
{
    TimelineConfig config;
    config.path = "unused.json";
    config.maxEvents = 8; // 4 per shard

    Timeline timeline(config, 2);
    for (Cycle t = 0; t < 10; ++t)
        timeline.shard(0)->instant("a", "e", t);
    // Shard 1 untouched: its budget must not rescue shard 0.
    EXPECT_EQ(timeline.shard(0)->eventCount(), 4u);
    EXPECT_EQ(timeline.shard(0)->dropped(), 6u);
    EXPECT_EQ(timeline.eventCount(), 4u);
    EXPECT_EQ(timeline.droppedCount(), 6u);
}

TEST(TimelineTest, FullRunTraceParsesBack)
{
    // End to end: a small timed simulation with the sink enabled must
    // leave a loadable Chrome-trace file with events from both an SM
    // shard and the fabric shard.
    wl::WorkloadParams params;
    params.width = 8;
    params.height = 8;
    GpuConfig config = baselineGpuConfig();
    config.numSms = 2;
    config.fabric.numPartitions = 1;
    config.threads = 1;
    config.timeline.path =
        ::testing::TempDir() + "vksim_timeline_run.json";
    config.timeline.sampleInterval = 32;

    wl::Workload workload(wl::WorkloadId::TRI, params);
    RunResult run = service::defaultService().submit(workload, config).take().run;
    EXPECT_GT(run.metrics.gaugeValue("timeline.events"), 0.0);

    std::string text, error;
    ASSERT_TRUE(readFile(config.timeline.path, &text, &error)) << error;
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, &doc, &error)) << error;
    const JsonValue *events = doc.member("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->array.size(), 2u);

    bool saw_sm = false, saw_fabric = false, saw_warp = false;
    for (const JsonValue &ev : events->array) {
        const JsonValue *pid = ev.member("pid");
        if (pid && pid->raw == "0")
            saw_sm = true;
        if (pid && pid->raw == "2") // numSms shards + 1 fabric shard
            saw_fabric = true;
        const JsonValue *tid = ev.member("tid");
        if (tid && tid->str.rfind("sched.slot", 0) == 0)
            saw_warp = true;
    }
    EXPECT_TRUE(saw_sm);
    EXPECT_TRUE(saw_fabric);
    EXPECT_TRUE(saw_warp);
    std::remove(config.timeline.path.c_str());
}

// ---------------------------------------------------------------------
// The per-run registry built by the engine
// ---------------------------------------------------------------------

TEST(RunMetricsTest, RegistryMirrorsLegacyGroupsAndAddsDerived)
{
    wl::WorkloadParams params;
    params.width = 8;
    params.height = 8;
    GpuConfig config = baselineGpuConfig();
    config.numSms = 2;
    config.fabric.numPartitions = 1;
    config.threads = 1;

    wl::Workload workload(wl::WorkloadId::TRI, params);
    RunResult run = service::defaultService().submit(workload, config).take().run;

    // Counters mirror the merged legacy groups exactly.
    EXPECT_EQ(run.metrics.get("gpu.core.issued"), run.core.get("issued"));
    EXPECT_EQ(run.metrics.get("gpu.rt.warps_submitted"),
              run.rt.get("warps_submitted"));
    EXPECT_EQ(run.metrics.get("gpu.l1.accesses.shader"),
              run.l1.get("accesses.shader"));
    EXPECT_EQ(run.metrics.get("gpu.dram.requests"),
              run.dram.get("requests"));
    EXPECT_EQ(run.metrics.get("gpu.l2.accesses.shader"),
              run.l2.get("accesses.shader"));

    // Engine-level gauges.
    EXPECT_EQ(run.metrics.gaugeValue("gpu.cycles"),
              static_cast<double>(run.cycles));
    EXPECT_EQ(run.metrics.gaugeValue("gpu.derived.simt_efficiency"),
              run.simtEfficiency());
    EXPECT_GT(run.metrics.gaugeValue("mem.heap_bytes"), 0.0);

    // The RT warp-latency histogram rides along with full geometry.
    const Histogram *h = run.metrics.findHistogram("gpu.rt.warp_latency_hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->summary().count(), run.rtWarpLatency.summary().count());
    EXPECT_EQ(h->buckets(), run.rtWarpLatency.buckets());
}

} // namespace
} // namespace vksim
