/**
 * @file
 * Parallel simulation engine tests: the ThreadPool substrate itself, and
 * the determinism contract — a timed run, a reference render, and a BVH
 * build must produce bit-identical results for every thread count
 * (DESIGN.md, "Parallel engine & determinism contract").
 */

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "accel/build.h"
#include "core/vulkansim.h"
#include "util/rng.h"
#include "util/threadpool.h"
#include "service/service.h"

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

// ---------------------------------------------------------------------
// ThreadPool substrate
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::vector<std::size_t> order;
    pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);

    // The pool must survive a failed job.
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(100, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 99u * 100u / 2u);
}

TEST(ThreadPoolTest, NestedParallelForOnSamePoolIsRejected)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(4,
                                  [&](std::size_t) {
                                      pool.parallelFor(
                                          2, [](std::size_t) {});
                                  }),
                 std::logic_error);
}

TEST(ThreadPoolTest, ResolveThreadCountPrecedence)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3u);

    ::setenv("VKSIM_THREADS", "5", 1);
    EXPECT_EQ(ThreadPool::resolveThreadCount(0), 5u);
    EXPECT_EQ(ThreadPool::resolveThreadCount(2), 2u); // request wins
    ::unsetenv("VKSIM_THREADS");

    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u); // never 0
}

// ---------------------------------------------------------------------
// Engine determinism: identical results for every thread count
// ---------------------------------------------------------------------

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.width = 16;
    p.height = 16;
    p.extScale = 0.1f;
    p.rtv5Detail = 3;
    p.rtv6Prims = 400;
    return p;
}

GpuConfig
engineConfig(unsigned threads)
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 4;
    cfg.fabric.numPartitions = 2;
    cfg.maxCycles = 100'000'000;
    cfg.occupancySamplePeriod = 64; // exercise the occupancy trace too
    cfg.threads = threads;
    return cfg;
}

void
expectSameStats(const StatGroup &a, const StatGroup &b, const char *what)
{
    ASSERT_EQ(a.counters().size(), b.counters().size()) << what;
    auto ib = b.counters().begin();
    for (const auto &[name, counter] : a.counters()) {
        EXPECT_EQ(name, ib->first) << what;
        EXPECT_EQ(counter.value(), ib->second.value())
            << what << "." << name;
        ++ib;
    }
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    expectSameStats(a.core, b.core, "core");
    expectSameStats(a.rt, b.rt, "rt");
    expectSameStats(a.l1, b.l1, "l1");
    expectSameStats(a.dram, b.dram, "dram");
    expectSameStats(a.l2, b.l2, "l2");
    EXPECT_EQ(a.rtWarpLatency.buckets(), b.rtWarpLatency.buckets());
    EXPECT_EQ(a.rtWarpLatency.overflow(), b.rtWarpLatency.overflow());
    EXPECT_EQ(a.rtWarpLatency.summary().count(),
              b.rtWarpLatency.summary().count());
    EXPECT_EQ(a.rtWarpLatency.summary().sum(),
              b.rtWarpLatency.summary().sum());
    EXPECT_EQ(a.occupancyTrace, b.occupancyTrace);

    // The determinism contract extends to the unified metrics registry:
    // the complete dump — counters, gauges, accumulators, histograms,
    // including double-valued derived metrics — must be byte-identical.
    EXPECT_EQ(a.metrics.toJson(), b.metrics.toJson());
}

class EngineDeterminismTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineDeterminismTest, IdenticalAcrossThreadCounts)
{
    auto id = static_cast<WorkloadId>(GetParam());

    // One full run (workload + framebuffer image) per thread count. The
    // host has whatever core count it has — oversubscription is fine, the
    // contract is bit-identical output regardless.
    RunResult serial;
    Image serial_img(1, 1);
    for (unsigned threads : {1u, 2u, 8u}) {
        Workload workload(id, tinyParams());
        RunResult run = service::defaultService().submit(workload, engineConfig(threads)).take().run;
        EXPECT_EQ(run.threadsUsed, std::min(threads, 4u)); // capped at SMs
        Image img = workload.readFramebuffer();
        if (threads == 1) {
            serial = std::move(run);
            serial_img = std::move(img);
            continue;
        }
        expectSameRun(serial, run);
        EXPECT_EQ(serial_img.data(), img.data())
            << "framebuffer differs at " << threads << " threads";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineDeterminismTest,
    ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            wl::workloadName(static_cast<WorkloadId>(info.param)));
    });

// ---------------------------------------------------------------------
// Parallel reference renderer: tiles vs serial
// ---------------------------------------------------------------------

TEST(ParallelRendererTest, TiledRenderMatchesSerial)
{
    Workload workload(WorkloadId::EXT, tinyParams());

    TraceCounters serial_counters;
    Image serial = workload.renderReferenceImage(&serial_counters, 1);

    for (unsigned threads : {2u, 4u, 8u}) {
        TraceCounters counters;
        Image parallel = workload.renderReferenceImage(&counters, threads);
        EXPECT_EQ(serial.data(), parallel.data())
            << "image differs at " << threads << " threads";
        EXPECT_EQ(serial_counters.nodesVisited, counters.nodesVisited);
        EXPECT_EQ(serial_counters.boxTests, counters.boxTests);
        EXPECT_EQ(serial_counters.triangleTests, counters.triangleTests);
        EXPECT_EQ(serial_counters.transforms, counters.transforms);
        EXPECT_EQ(serial_counters.rays, counters.rays);
    }
}

// ---------------------------------------------------------------------
// Parallel BVH binning determinism
// ---------------------------------------------------------------------

TEST(ParallelBvhBuildTest, LargeBuildIsReproducible)
{
    // Ask the shared pool for several lanes even on small hosts so the
    // chunked binning path actually forks (best effort: if another test
    // created the shared pool first the env var is ignored, and the
    // build must *still* be reproducible).
    ::setenv("VKSIM_THREADS", "4", 0);

    // 20k prims clears kParallelBuildThreshold at the root and the first
    // few levels of the recursion.
    constexpr std::uint32_t kPrims = 20'000;
    std::vector<PrimRef> prims(kPrims);
    for (std::uint32_t i = 0; i < kPrims; ++i) {
        auto coord = [&](std::uint32_t salt) {
            return static_cast<float>(hashU32(i * 3u + salt) & 0xffff)
                   * (100.0f / 65535.0f);
        };
        Vec3 lo(coord(0), coord(1), coord(2));
        prims[i].bounds.extend(lo);
        prims[i].bounds.extend(lo + Vec3(0.5f, 0.25f, 0.75f));
        prims[i].index = i;
    }

    BinaryBvh first = buildBinaryBvh(prims);
    BinaryBvh second = buildBinaryBvh(prims);
    ASSERT_EQ(first.nodes.size(), second.nodes.size());
    ASSERT_EQ(first.nodes.size(), 2 * kPrims - 1); // binary, 1 prim/leaf
    for (std::size_t n = 0; n < first.nodes.size(); ++n) {
        const BinaryBvhNode &a = first.nodes[n];
        const BinaryBvhNode &b = second.nodes[n];
        EXPECT_EQ(a.left, b.left) << "node " << n;
        EXPECT_EQ(a.right, b.right) << "node " << n;
        EXPECT_EQ(a.primIndex, b.primIndex) << "node " << n;
        EXPECT_EQ(a.bounds.lo.x, b.bounds.lo.x) << "node " << n;
        EXPECT_EQ(a.bounds.lo.y, b.bounds.lo.y) << "node " << n;
        EXPECT_EQ(a.bounds.lo.z, b.bounds.lo.z) << "node " << n;
        EXPECT_EQ(a.bounds.hi.x, b.bounds.hi.x) << "node " << n;
        EXPECT_EQ(a.bounds.hi.y, b.bounds.hi.y) << "node " << n;
        EXPECT_EQ(a.bounds.hi.z, b.bounds.hi.z) << "node " << n;
    }
    ::unsetenv("VKSIM_THREADS");
}

} // namespace
} // namespace vksim
