#!/usr/bin/env bash
# Crash-recovery integration test (DESIGN.md, "Persistence & recovery
# contract"): SIGKILL a batchrun mid-batch — after at least one job has
# completed into the store and at least one engine auto-checkpoint has
# been written — then rerun with --resume and require the results file
# to be byte-identical (outside "perf") to an uninterrupted run's.
#
# Usage: crash_resume_test.sh <batchrun> <manifest.json> <compare_results.py>
set -u

BATCHRUN=$1
MANIFEST=$2
COMPARE=$3
EVERY=5000

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "crash_resume: oracle run (uninterrupted)"
"$BATCHRUN" --manifest="$MANIFEST" --out="$WORK/oracle.json" --serial \
            --store="$WORK/store_oracle" --checkpoint-every=$EVERY \
    || { echo "crash_resume: oracle batchrun failed" >&2; exit 1; }

echo "crash_resume: crash run (SIGKILL mid-batch)"
"$BATCHRUN" --manifest="$MANIFEST" --out="$WORK/crash.json" --serial \
            --store="$WORK/store" --checkpoint-every=$EVERY &
PID=$!

# The manifest runs its small jobs first (priority) and its long job
# last, so waiting for one result record AND one snapshot guarantees we
# kill mid-batch with both recovery paths populated.
for _ in $(seq 1 2400); do
    if ls "$WORK"/store/snapshots/*.ckpt >/dev/null 2>&1 \
        && ls "$WORK"/store/result/*.bin >/dev/null 2>&1; then
        break
    fi
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
done

if ! kill -0 "$PID" 2>/dev/null; then
    wait "$PID"
    echo "crash_resume: batchrun finished before it could be killed;" \
         "grow the manifest's long job" >&2
    exit 1
fi
kill -9 "$PID"
wait "$PID" 2>/dev/null
echo "crash_resume: killed pid $PID"

if [ -e "$WORK/crash.json" ]; then
    echo "crash_resume: results file exists after a mid-batch crash" >&2
    exit 1
fi
ls "$WORK"/store/snapshots/*.ckpt >/dev/null 2>&1 \
    || { echo "crash_resume: no auto-checkpoint on disk" >&2; exit 1; }
ls "$WORK"/store/result/*.bin >/dev/null 2>&1 \
    || { echo "crash_resume: no completed-job record on disk" >&2; exit 1; }

echo "crash_resume: resume run"
"$BATCHRUN" --manifest="$MANIFEST" --out="$WORK/resume.json" --serial \
            --store="$WORK/store" --checkpoint-every=$EVERY --resume \
    || { echo "crash_resume: resumed batchrun failed" >&2; exit 1; }

python3 "$COMPARE" "$WORK/oracle.json" "$WORK/resume.json" \
    || { echo "crash_resume: resumed results differ from oracle" >&2
         exit 1; }
echo "crash_resume: PASS"
