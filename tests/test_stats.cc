/**
 * @file
 * Unit tests for the statistics package and a fuzz-style property test
 * running the full functional pipeline over randomly generated
 * procedural scenes, comparing every pixel against the CPU reference
 * renderer.
 */

#include <gtest/gtest.h>

#include "util/stats.h"
#include "workloads/workload.h"

namespace vksim {
namespace {

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AccumulatorTest, SummaryStatistics)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    for (double v : {3.0, 1.0, 2.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(HistogramTest, BucketsOverflowAndPercentiles)
{
    Histogram h(10.0, 4); // [0,10) [10,20) [20,30) [30,40) + overflow
    for (double v : {1.0, 5.0, 15.0, 25.0, 35.0, 99.0})
        h.sample(v);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.summary().count(), 6u);
    // Half the samples are below 20.
    EXPECT_LE(h.percentile(0.5), 20.0);
    EXPECT_GE(h.percentile(0.99), 30.0);
}

TEST(StatGroupTest, DumpAndGet)
{
    StatGroup g("grp");
    g.counter("hits").inc(3);
    g.accum("lat").sample(10.0);
    EXPECT_EQ(g.get("hits"), 3u);
    EXPECT_EQ(g.get("missing"), 0u);
    std::string dump = g.dump();
    EXPECT_NE(dump.find("grp.hits = 3"), std::string::npos);
    EXPECT_NE(dump.find("grp.lat.mean = 10"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.get("hits"), 0u);
}

/**
 * Fuzz: random procedural scenes through the entire pipeline (scene ->
 * BVH -> shaders -> translator -> functional executor) vs the reference
 * renderer. Distinct seeds vary sphere/box mix, sizes and camera.
 */
class PipelineFuzzTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineFuzzTest, RandomSceneMatchesReference)
{
    int seed = GetParam();
    wl::WorkloadParams params;
    params.width = 20;
    params.height = 20;
    params.rtv6Prims = 150 + 137 * static_cast<unsigned>(seed);
    params.shading.maxBounces = 2 + static_cast<unsigned>(seed % 3);
    params.shading.frameSeed = static_cast<std::uint32_t>(seed * 7919);

    wl::Workload workload(wl::WorkloadId::RTV6, params);
    Image sim = workload.runFunctional();
    Image ref = workload.renderReferenceImage();
    ImageDiff diff = compareImages(sim, ref, 1.0f / 255.0f);
    EXPECT_LT(diff.differingFraction(), 0.01)
        << "seed " << seed << ": " << diff.differingPixels << " pixels";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest,
                         ::testing::Range(0, 6));

} // namespace
} // namespace vksim
