/**
 * @file
 * Tests for the NIR validator and pretty-printer.
 */

#include <gtest/gtest.h>

#include "nir/validate.h"
#include "workloads/shaders.h"

namespace vksim::nir {
namespace {

TEST(NirValidateTest, WorkloadShadersAreValid)
{
    for (const Shader &s :
         {wl::makeRaygenBary(), wl::makeRaygenWhitted(), wl::makeRaygenAo(),
          wl::makeRaygenAoDivergent(), wl::makeRaygenPath(),
          wl::makeClosestHitSurface(), wl::makeClosestHitBary(),
          wl::makeMissShader(), wl::makeIntersectionSphere(),
          wl::makeIntersectionBox(), wl::makeAnyHitAlphaTest()}) {
        ValidationResult r = validate(s);
        EXPECT_TRUE(r.ok()) << s.name << ":\n" << r.message();
    }
}

TEST(NirValidateTest, DetectsInvalidValueIds)
{
    Builder b("bad", vptx::ShaderStage::RayGen);
    b.constI(1);
    Shader s = b.finish();
    // Corrupt a source id by hand.
    Node node;
    node.kind = Node::Kind::Instr;
    node.instr.op = Op::Mov;
    node.instr.dst = 0;
    node.instr.srcs = {99};
    s.body.push_back(node);
    ValidationResult r = validate(s);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("invalid value"), std::string::npos);
}

TEST(NirValidateTest, DetectsBreakOutsideLoop)
{
    Builder b("bad", vptx::ShaderStage::RayGen);
    Shader s = b.finish();
    Node node;
    node.kind = Node::Kind::Break;
    s.body.push_back(node);
    ValidationResult r = validate(s);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("break outside"), std::string::npos);
}

TEST(NirValidateTest, DetectsStageViolations)
{
    // reportIntersection in a raygen shader (built by hand since the
    // Builder asserts the stage).
    Builder b("bad", vptx::ShaderStage::RayGen);
    nir::Val t = b.constF(1.f);
    Shader s = b.finish();
    Node node;
    node.kind = Node::Kind::Instr;
    node.instr.op = Op::ReportIntersection;
    node.instr.srcs = {t};
    s.body.push_back(node);
    ValidationResult r = validate(s);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("intersection"), std::string::npos);
}

TEST(NirValidateTest, DetectsBadMemorySize)
{
    Builder b("bad", vptx::ShaderStage::RayGen);
    nir::Val addr = b.constI(0x1000);
    b.loadGlobal(addr, 0, 3); // 3-byte access is not supported
    Shader s = b.finish();
    ValidationResult r = validate(s);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("size"), std::string::npos);
}

TEST(NirValidateTest, DetectsArityMismatch)
{
    Builder b("bad", vptx::ShaderStage::RayGen);
    nir::Val a = b.constI(1);
    Shader s = b.finish();
    Node node;
    node.kind = Node::Kind::Instr;
    node.instr.op = Op::FAdd;
    node.instr.dst = a; // reuse id 0 as dst; srcs too few
    node.instr.srcs = {a};
    s.body.push_back(node);
    ValidationResult r = validate(s);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.message().find("operands"), std::string::npos);
}

TEST(NirPrintTest, StructuredDumpShowsBlocks)
{
    Builder b("demo", vptx::ShaderStage::RayGen);
    nir::Val c = b.constI(1);
    b.beginLoop();
    b.breakIf(c);
    b.beginIf(c);
    b.fadd(b.constF(1.f), b.constF(2.f));
    b.endIf();
    b.endLoop();
    Shader s = b.finish();
    std::string text = print(s);
    EXPECT_NE(text.find("raygen \"demo\""), std::string::npos);
    EXPECT_NE(text.find("loop {"), std::string::npos);
    EXPECT_NE(text.find("break_if %0"), std::string::npos);
    EXPECT_NE(text.find("if %0 {"), std::string::npos);
    EXPECT_NE(text.find("fadd"), std::string::npos);
}

TEST(NirPrintTest, RealShaderPrintsCompletely)
{
    Shader s = wl::makeRaygenPath();
    std::string text = print(s);
    EXPECT_NE(text.find("trace_ray"), std::string::npos);
    // Every instruction line or block shows up; sanity: non-trivial size.
    EXPECT_GT(text.size(), 2000u);
}

} // namespace
} // namespace vksim::nir
