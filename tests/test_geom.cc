/**
 * @file
 * Unit and property tests for the geometry substrate: vectors, matrices,
 * AABBs and the ray-primitive intersection kernels.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "accel/nodetest.h"
#include "geom/intersect.h"
#include "geom/mat4.h"
#include "geom/sampling.h"
#include "util/rng.h"

namespace vksim {
namespace {

TEST(Vec3Test, BasicArithmetic)
{
    Vec3 a{1.f, 2.f, 3.f};
    Vec3 b{4.f, 5.f, 6.f};
    Vec3 sum = a + b;
    EXPECT_FLOAT_EQ(sum.x, 5.f);
    EXPECT_FLOAT_EQ(sum.y, 7.f);
    EXPECT_FLOAT_EQ(sum.z, 9.f);
    EXPECT_FLOAT_EQ(dot(a, b), 32.f);
    Vec3 c = cross({1, 0, 0}, {0, 1, 0});
    EXPECT_FLOAT_EQ(c.z, 1.f);
    EXPECT_FLOAT_EQ(length(Vec3{3.f, 4.f, 0.f}), 5.f);
}

TEST(Vec3Test, NormalizePreservesDirection)
{
    Vec3 v{10.f, 0.f, 0.f};
    Vec3 n = normalize(v);
    EXPECT_FLOAT_EQ(n.x, 1.f);
    EXPECT_FLOAT_EQ(length(n), 1.f);
}

TEST(Vec3Test, ReflectAboutNormal)
{
    Vec3 d = normalize(Vec3{1.f, -1.f, 0.f});
    Vec3 r = reflect(d, {0.f, 1.f, 0.f});
    EXPECT_NEAR(r.x, d.x, 1e-6f);
    EXPECT_NEAR(r.y, -d.y, 1e-6f);
}

TEST(Mat4Test, IdentityTransform)
{
    Mat4 m = Mat4::identity();
    Vec3 p{1.f, 2.f, 3.f};
    Vec3 q = m.transformPoint(p);
    EXPECT_FLOAT_EQ(q.x, p.x);
    EXPECT_FLOAT_EQ(q.y, p.y);
    EXPECT_FLOAT_EQ(q.z, p.z);
}

TEST(Mat4Test, TranslationAffectsPointsNotVectors)
{
    Mat4 m = Mat4::translation({5.f, 0.f, 0.f});
    EXPECT_FLOAT_EQ(m.transformPoint({0, 0, 0}).x, 5.f);
    EXPECT_FLOAT_EQ(m.transformVector({1, 0, 0}).x, 1.f);
}

TEST(Mat4Test, CompositionOrder)
{
    // Translate-then-scale differs from scale-then-translate.
    Mat4 ts = Mat4::translation({1.f, 0.f, 0.f}) * Mat4::scaling(Vec3(2.f));
    EXPECT_FLOAT_EQ(ts.transformPoint({1.f, 0.f, 0.f}).x, 3.f);
    Mat4 st = Mat4::scaling(Vec3(2.f)) * Mat4::translation({1.f, 0.f, 0.f});
    EXPECT_FLOAT_EQ(st.transformPoint({1.f, 0.f, 0.f}).x, 4.f);
}

TEST(Mat4Test, AffineInverseRoundTripsRandomTransforms)
{
    Pcg32 rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        Mat4 m = Mat4::translation({rng.nextRange(-10, 10),
                                    rng.nextRange(-10, 10),
                                    rng.nextRange(-10, 10)})
                 * Mat4::rotationY(rng.nextRange(0.f, 6.28f))
                 * Mat4::rotationX(rng.nextRange(0.f, 6.28f))
                 * Mat4::scaling(Vec3(rng.nextRange(0.3f, 3.f)));
        Mat4 inv = affineInverse(m);
        Vec3 p{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
               rng.nextRange(-5, 5)};
        Vec3 q = inv.transformPoint(m.transformPoint(p));
        EXPECT_NEAR(q.x, p.x, 1e-3f);
        EXPECT_NEAR(q.y, p.y, 1e-3f);
        EXPECT_NEAR(q.z, p.z, 1e-3f);
    }
}

TEST(AabbTest, EmptyAndExtend)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
    box.extend({1.f, 1.f, 1.f});
    EXPECT_FALSE(box.empty());
    EXPECT_FLOAT_EQ(box.surfaceArea(), 0.f);
    box.extend({2.f, 3.f, 4.f});
    EXPECT_FLOAT_EQ(box.surfaceArea(),
                    2.f * (1.f * 2.f + 2.f * 3.f + 3.f * 1.f));
    EXPECT_TRUE(box.contains({1.5f, 2.f, 2.f}));
    EXPECT_FALSE(box.contains({0.f, 0.f, 0.f}));
}

TEST(AabbTest, EnclosesIsReflexiveAndOrdered)
{
    Aabb inner;
    inner.extend({0, 0, 0});
    inner.extend({1, 1, 1});
    Aabb outer;
    outer.extend({-1, -1, -1});
    outer.extend({2, 2, 2});
    EXPECT_TRUE(outer.encloses(inner));
    EXPECT_FALSE(inner.encloses(outer));
    EXPECT_TRUE(inner.encloses(inner));
}

TEST(RayAabbTest, HitsAndMisses)
{
    Aabb box;
    box.extend({-1, -1, -1});
    box.extend({1, 1, 1});
    Ray ray;
    ray.origin = {0, 0, -5};
    ray.direction = {0, 0, 1};
    float t = 0.f;
    EXPECT_TRUE(rayAabb(ray, safeInverse(ray.direction), box, &t));
    EXPECT_NEAR(t, 4.f, 1e-5f);

    ray.direction = {0, 1, 0};
    EXPECT_FALSE(rayAabb(ray, safeInverse(ray.direction), box, &t));
}

TEST(RayAabbTest, RespectsRayInterval)
{
    Aabb box;
    box.extend({-1, -1, -1});
    box.extend({1, 1, 1});
    Ray ray;
    ray.origin = {0, 0, -5};
    ray.direction = {0, 0, 1};
    ray.tmax = 3.f; // box entry is at t = 4
    float t;
    EXPECT_FALSE(rayAabb(ray, safeInverse(ray.direction), box, &t));
    ray.tmax = 100.f;
    ray.tmin = 7.f; // box exit is at t = 6
    EXPECT_FALSE(rayAabb(ray, safeInverse(ray.direction), box, &t));
}

TEST(RayAabbTest, OriginInsideBoxHits)
{
    Aabb box;
    box.extend({-1, -1, -1});
    box.extend({1, 1, 1});
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.direction = {1, 0, 0};
    float t;
    EXPECT_TRUE(rayAabb(ray, safeInverse(ray.direction), box, &t));
}

TEST(RayAabbTest, AxisParallelRayOnSlabPlane)
{
    // Regression: a zero direction component makes inv_dir ±inf, and an
    // origin exactly on the slab plane evaluated 0 * inf = NaN. With a
    // -0.0 component the near/far pair never swapped, so the NaN reached
    // min() and produced a false miss on the node boundary.
    Aabb box;
    box.extend({-1, -1, -1});
    box.extend({1, 1, 1});
    Ray ray;
    ray.origin = {-1.f, 0.f, -5.f}; // exactly on the lo.x plane
    ray.direction = {-0.f, 0.f, 1.f};
    float t = 0.f;
    EXPECT_TRUE(rayAabb(ray, safeInverse(ray.direction), box, &t));
    EXPECT_NEAR(t, 4.f, 1e-5f);

    ray.origin = {1.f, 0.f, -5.f}; // exactly on the hi.x plane
    EXPECT_TRUE(rayAabb(ray, safeInverse(ray.direction), box, &t));
    EXPECT_NEAR(t, 4.f, 1e-5f);

    // +0.0 on the boundary also hits (boundary inclusive).
    ray.direction = {0.f, 0.f, 1.f};
    ray.origin = {-1.f, 0.f, -5.f};
    EXPECT_TRUE(rayAabb(ray, safeInverse(ray.direction), box, &t));

    // An axis-parallel ray outside the slab still misses.
    ray.origin = {1.5f, 0.f, -5.f};
    EXPECT_FALSE(rayAabb(ray, safeInverse(ray.direction), box, &t));
    ray.origin = {-1.5f, 0.f, -5.f};
    ray.direction = {-0.f, 0.f, 1.f};
    EXPECT_FALSE(rayAabb(ray, safeInverse(ray.direction), box, &t));
}

TEST(RayAabbTest, TwoAxisParallelEdgeRay)
{
    // Ray running exactly along a box edge: two zero components, origin
    // on both slab planes.
    Aabb box;
    box.extend({-1, -1, -1});
    box.extend({1, 1, 1});
    Ray ray;
    ray.origin = {-1.f, 1.f, -5.f};
    ray.direction = {0.f, -0.f, 1.f};
    float t = 0.f;
    EXPECT_TRUE(rayAabb(ray, safeInverse(ray.direction), box, &t));
    EXPECT_NEAR(t, 4.f, 1e-5f);
}

TEST(RayBoxProceduralTest, AxisParallelRayOnSlabPlane)
{
    // Same NaN-slab regression as rayAabb, through the procedural path.
    Aabb box;
    box.extend({-1, -1, -1});
    box.extend({1, 1, 1});
    Ray ray;
    ray.origin = {-1.f, 0.f, -4.f};
    ray.direction = {-0.f, 0.f, 1.f};
    EXPECT_NEAR(rayBoxProcedural(ray, box), 3.f, 1e-5f);

    ray.origin = {-1.5f, 0.f, -4.f};
    EXPECT_LT(rayBoxProcedural(ray, box), 0.f);
}

TEST(RayTriangleTest, FrontAndBackHits)
{
    Vec3 v0{-1, -1, 0}, v1{1, -1, 0}, v2{0, 1, 0};
    Ray ray;
    ray.origin = {0, 0, -2};
    ray.direction = {0, 0, 1};
    TriangleHit hit = rayTriangle(ray, v0, v1, v2);
    ASSERT_TRUE(hit.hit);
    EXPECT_NEAR(hit.t, 2.f, 1e-5f);

    // Back-face hit is also reported (no culling).
    ray.origin = {0, 0, 2};
    ray.direction = {0, 0, -1};
    EXPECT_TRUE(rayTriangle(ray, v0, v1, v2).hit);
}

TEST(RayTriangleTest, MissOutsideEdges)
{
    Vec3 v0{-1, -1, 0}, v1{1, -1, 0}, v2{0, 1, 0};
    Ray ray;
    ray.origin = {2, 2, -2};
    ray.direction = {0, 0, 1};
    EXPECT_FALSE(rayTriangle(ray, v0, v1, v2).hit);
}

TEST(RayTriangleTest, BarycentricsInterpolatePosition)
{
    Pcg32 rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        Vec3 v0{rng.nextRange(-2, 2), rng.nextRange(-2, 2),
                rng.nextRange(-2, 2)};
        Vec3 v1 = v0 + Vec3{rng.nextRange(0.5f, 2), 0, 0};
        Vec3 v2 = v0 + Vec3{0, rng.nextRange(0.5f, 2), 0};
        // Aim at a random interior point.
        float u = rng.nextRange(0.05f, 0.4f);
        float v = rng.nextRange(0.05f, 0.4f);
        Vec3 target = v0 * (1 - u - v) + v1 * u + v2 * v;
        Ray ray;
        ray.origin = target + Vec3{0.3f, -0.2f, 3.f};
        ray.direction = normalize(target - ray.origin);
        TriangleHit hit = rayTriangle(ray, v0, v1, v2);
        ASSERT_TRUE(hit.hit);
        Vec3 p = ray.at(hit.t);
        EXPECT_NEAR(p.x, target.x, 1e-3f);
        EXPECT_NEAR(p.y, target.y, 1e-3f);
        EXPECT_NEAR(p.z, target.z, 1e-3f);
        EXPECT_NEAR(hit.u, u, 1e-3f);
        EXPECT_NEAR(hit.v, v, 1e-3f);
    }
}

TEST(RayTriangleTest, DegenerateTriangleRejected)
{
    // Zero-area triangle (repeated vertex): det == 0 must early-out.
    Vec3 v0{0, 0, 0}, v1{1, 1, 0};
    Ray ray;
    ray.origin = {0.25f, 0.25f, -2.f};
    ray.direction = {0, 0, 1};
    EXPECT_FALSE(rayTriangle(ray, v0, v1, v1).hit);
    EXPECT_FALSE(rayTriangle(ray, v0, v0, v1).hit);
}

TEST(RayTriangleTest, NonFiniteDeterminantRejected)
{
    // Regression: huge coincident edges overflow the cross/dot chain so
    // det = inf - inf = NaN; NaN passed `abs(det) < eps` and every
    // subsequent range check, committing a hit record with t = NaN.
    Vec3 v0{0, 0, 0};
    Vec3 v1{3e38f, -3e38f, 0.f};
    Ray ray;
    ray.origin = {0, 0, -2};
    ray.direction = {0, 0, 1};
    TriangleHit hit = rayTriangle(ray, v0, v1, v1);
    EXPECT_FALSE(hit.hit);

    // Any committed hit must carry finite parameters.
    Vec3 a{-1, -1, 0}, b{1, -1, 0}, c{0, 1, 0};
    hit = rayTriangle(ray, a, b, c);
    ASSERT_TRUE(hit.hit);
    EXPECT_TRUE(std::isfinite(hit.t));
    EXPECT_TRUE(std::isfinite(hit.u));
    EXPECT_TRUE(std::isfinite(hit.v));
}

TEST(RaySphereTest, NearestRootSelected)
{
    Ray ray;
    ray.origin = {0, 0, -5};
    ray.direction = {0, 0, 1};
    float t = raySphere(ray, {0, 0, 0}, 1.f);
    EXPECT_NEAR(t, 4.f, 1e-5f);

    // From inside the sphere, the far root is returned.
    ray.origin = {0, 0, 0};
    t = raySphere(ray, {0, 0, 0}, 1.f);
    EXPECT_NEAR(t, 1.f, 1e-5f);

    // Miss.
    ray.origin = {0, 3, -5};
    EXPECT_LT(raySphere(ray, {0, 0, 0}, 1.f), 0.f);
}

TEST(RayBoxProceduralTest, EntryAndInside)
{
    Aabb box;
    box.extend({-1, -1, -1});
    box.extend({1, 1, 1});
    Ray ray;
    ray.origin = {0, 0, -4};
    ray.direction = {0, 0, 1};
    EXPECT_NEAR(rayBoxProcedural(ray, box), 3.f, 1e-5f);

    ray.origin = {0, 0, 0};
    EXPECT_NEAR(rayBoxProcedural(ray, box), 1.f, 1e-5f);
}

TEST(SamplingTest, CosineHemisphereIsUpperAndUnit)
{
    Pcg32 rng(11);
    for (int i = 0; i < 500; ++i) {
        Vec3 d = cosineSampleHemisphere(rng.nextFloat(), rng.nextFloat());
        EXPECT_GE(d.z, 0.f);
        EXPECT_NEAR(length(d), 1.f, 1e-4f);
    }
}

TEST(SamplingTest, OnbIsOrthonormal)
{
    Pcg32 rng(12);
    for (int i = 0; i < 200; ++i) {
        Vec3 n = uniformSampleSphere(rng.nextFloat(), rng.nextFloat());
        Onb onb(n);
        EXPECT_NEAR(dot(onb.tangent, onb.bitangent), 0.f, 1e-5f);
        EXPECT_NEAR(dot(onb.tangent, onb.normal), 0.f, 1e-5f);
        EXPECT_NEAR(length(onb.tangent), 1.f, 1e-5f);
        EXPECT_NEAR(length(onb.bitangent), 1.f, 1e-5f);
        Vec3 z = onb.toWorld({0, 0, 1});
        EXPECT_NEAR(z.x, n.x, 1e-5f);
        EXPECT_NEAR(z.y, n.y, 1e-5f);
        EXPECT_NEAR(z.z, n.z, 1e-5f);
    }
}

TEST(SamplingTest, RefractionObeySnellAndTir)
{
    Vec3 n{0, 1, 0};
    Vec3 d = normalize(Vec3{1.f, -1.f, 0.f});
    Vec3 out;
    ASSERT_TRUE(refractDir(d, n, 1.0f / 1.5f, &out));
    // sin(theta_t) = sin(theta_i) * eta
    float sin_i = std::sqrt(1.f - dot(-d, n) * dot(-d, n));
    float sin_t = std::sqrt(std::max(0.f, 1.f - dot(out, -n) * dot(out, -n)));
    EXPECT_NEAR(sin_t, sin_i / 1.5f, 1e-4f);

    // Total internal reflection going from dense to sparse at grazing angle.
    Vec3 grazing = normalize(Vec3{1.f, -0.1f, 0.f});
    EXPECT_FALSE(refractDir(grazing, n, 1.5f, &out));
}

// --- SIMD vs scalar six-wide node test ----------------------------------

namespace {

/**
 * Run nodeTest6() and nodeTest6Scalar() on the same inputs and require
 * bit-identical hit masks and entry distances; untouched t_entry slots
 * (missed children, padding) must keep their sentinel bytes on both
 * paths.
 */
void
expectNodeTestEquivalent(const InternalNode &node, const Ray &ray,
                         unsigned child_count, const char *what)
{
    Vec3 inv = safeInverse(ray.direction);
    float ts[6], tv[6];
    std::memset(ts, 0xCD, sizeof(ts));
    std::memset(tv, 0xCD, sizeof(tv));
    unsigned ms = nodeTest6Scalar(node, ray, inv, child_count, ts);
    unsigned mv = nodeTest6(node, ray, inv, child_count, tv);
    EXPECT_EQ(ms, mv) << what;
    // Bit compare: catches -0.0 vs 0.0, NaN payloads and sentinel
    // clobbers that a float compare would miss.
    EXPECT_EQ(0, std::memcmp(ts, tv, sizeof(ts))) << what;
}

InternalNode
makeNode(float origin_x, float origin_y, float origin_z, int exp_all)
{
    InternalNode node{};
    node.originX = origin_x;
    node.originY = origin_y;
    node.originZ = origin_z;
    node.expX = static_cast<std::int8_t>(exp_all);
    node.expY = static_cast<std::int8_t>(exp_all);
    node.expZ = static_cast<std::int8_t>(exp_all);
    node.childCount = 6;
    return node;
}

void
setChildBox(InternalNode &node, unsigned i, std::uint8_t lo,
            std::uint8_t hi)
{
    for (int axis = 0; axis < 3; ++axis) {
        node.qlo[i][axis] = lo;
        node.qhi[i][axis] = hi;
    }
}

} // namespace

TEST(NodeTestSimdTest, DegenerateBoxesMatchScalar)
{
    // Child 0: normal box. Child 1: zero-extent (qlo == qhi).
    // Child 2: inverted (qlo > qhi, never hittable via the slab order).
    // Child 3: full-range box. Child 4: sliver on one axis.
    // Child 5: inverted on a single axis only.
    InternalNode node = makeNode(-4.f, -4.f, -4.f, -5);
    setChildBox(node, 0, 10, 200);
    setChildBox(node, 1, 128, 128);
    setChildBox(node, 2, 200, 10);
    setChildBox(node, 3, 0, 255);
    setChildBox(node, 4, 60, 200);
    node.qhi[4][1] = 60;
    setChildBox(node, 5, 20, 220);
    node.qlo[5][2] = 230;

    const Ray rays[] = {
        {{-10.f, 0.f, 0.f}, 0.f, {1.f, 0.02f, 0.01f}, 1e30f},
        {{0.f, 0.f, 0.f}, 0.f, {0.3f, 0.4f, 0.5f}, 1e30f},  // origin inside
        {{-10.f, 0.f, 0.f}, 0.f, {-1.f, 0.f, 0.f}, 1e30f},  // points away
        {{-10.f, 0.f, 0.f}, 0.f, {1.f, 0.f, 0.f}, 1e30f},   // axis-parallel
        {{-10.f, -4.f, -4.f}, 0.f, {1.f, 0.f, 0.f}, 1e30f}, // on slab plane
        {{0.f, -10.f, 0.f}, 0.f, {0.f, 1.f, 0.f}, 1e30f},
        {{0.f, 0.f, 0.f}, 0.f, {0.f, 0.f, 0.f}, 1e30f},     // null direction
        {{-10.f, 0.f, 0.f}, 5.f, {1.f, 0.f, 0.f}, 6.f},     // tight interval
        {{-10.f, 0.f, 0.f}, 6.f, {1.f, 0.f, 0.f}, 5.f},     // empty interval
        {{-10.f, 0.f, 0.f}, 0.f, {1.f, 0.f, 0.f}, 0.f},     // tmax == 0
    };
    for (std::size_t r = 0; r < sizeof(rays) / sizeof(rays[0]); ++r) {
        SCOPED_TRACE(r);
        for (unsigned count = 1; count <= 6; ++count)
            expectNodeTestEquivalent(node, rays[r], count, "degenerate");
    }
}

TEST(NodeTestSimdTest, NonFiniteBoundsMatchScalar)
{
    // Quantization extremes: exponent 120 with 8-bit payloads overflows
    // the dequantized maxima to huge/inf values, and an inf origin makes
    // lo - o produce inf/NaN inside the slab arithmetic. The SIMD path
    // must reproduce the scalar NaN-compare behaviour bit for bit.
    InternalNode huge = makeNode(0.f, 0.f, 0.f, 120);
    for (unsigned i = 0; i < 6; ++i)
        setChildBox(huge, i, static_cast<std::uint8_t>(i * 40),
                    static_cast<std::uint8_t>(i * 40 + 80));

    InternalNode inf_origin =
        makeNode(std::numeric_limits<float>::infinity(), 0.f, 0.f, -3);
    for (unsigned i = 0; i < 6; ++i)
        setChildBox(inf_origin, i, 10, 200);

    InternalNode nan_origin =
        makeNode(std::numeric_limits<float>::quiet_NaN(), 1.f, 1.f, -3);
    for (unsigned i = 0; i < 6; ++i)
        setChildBox(nan_origin, i, 10, 200);

    const Ray rays[] = {
        {{0.f, 0.f, 0.f}, 0.f, {1.f, 1.f, 1.f}, 1e30f},
        {{std::numeric_limits<float>::infinity(), 0.f, 0.f},
         0.f,
         {1.f, 0.5f, 0.25f},
         1e30f},
        {{0.f, 0.f, 0.f}, 0.f, {0.f, 1.f, 0.f}, 1e30f}, // axis-parallel
        {{1e38f, 1e38f, 1e38f}, 0.f, {-1.f, -1.f, -1.f}, 1e30f},
        {{0.f, 0.f, 0.f},
         0.f,
         {std::numeric_limits<float>::quiet_NaN(), 1.f, 1.f},
         1e30f},
    };
    const InternalNode *nodes[] = {&huge, &inf_origin, &nan_origin};
    for (std::size_t n = 0; n < 3; ++n)
        for (std::size_t r = 0; r < sizeof(rays) / sizeof(rays[0]); ++r) {
            SCOPED_TRACE(n * 100 + r);
            expectNodeTestEquivalent(*nodes[n], rays[r], 6, "non-finite");
        }
}

TEST(NodeTestSimdTest, RandomSweepMatchesScalar)
{
    Pcg32 rng(2026);
    for (int trial = 0; trial < 2000; ++trial) {
        InternalNode node = makeNode(rng.nextRange(-50.f, 50.f),
                                     rng.nextRange(-50.f, 50.f),
                                     rng.nextRange(-50.f, 50.f),
                                     static_cast<int>(rng.nextBelow(24)) - 16);
        unsigned count = 1 + rng.nextBelow(6);
        node.childCount = static_cast<std::uint8_t>(count);
        for (unsigned i = 0; i < count; ++i)
            for (int axis = 0; axis < 3; ++axis) {
                // ~1/8 of boxes inverted or zero-extent on an axis.
                std::uint8_t a = static_cast<std::uint8_t>(rng.nextBelow(256));
                std::uint8_t b = static_cast<std::uint8_t>(rng.nextBelow(256));
                if (rng.nextBelow(8) != 0 && a > b)
                    std::swap(a, b);
                node.qlo[i][axis] = a;
                node.qhi[i][axis] = b;
            }

        Ray ray;
        ray.origin = {rng.nextRange(-80.f, 80.f), rng.nextRange(-80.f, 80.f),
                      rng.nextRange(-80.f, 80.f)};
        // Zero a direction component in ~1/4 of rays per axis to hit
        // the containment path; leave the rest unnormalized.
        ray.direction = {rng.nextBelow(4) == 0 ? 0.f
                                               : rng.nextRange(-2.f, 2.f),
                         rng.nextBelow(4) == 0 ? 0.f
                                               : rng.nextRange(-2.f, 2.f),
                         rng.nextBelow(4) == 0 ? 0.f
                                               : rng.nextRange(-2.f, 2.f)};
        ray.tmin = rng.nextBelow(4) == 0 ? rng.nextRange(0.f, 100.f) : 0.f;
        ray.tmax = rng.nextBelow(4) == 0 ? rng.nextRange(0.f, 100.f) : 1e30f;
        expectNodeTestEquivalent(node, ray, count, "random sweep");
    }
}

} // namespace
} // namespace vksim
