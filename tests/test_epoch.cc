/**
 * @file
 * Epoch-stepped engine acceptance (DESIGN.md, "Stepping contract"):
 * the relaxed-synchronization engine — SMs advancing through
 * multi-cycle epochs with staged traffic replayed at the barrier — is
 * clamped to the fabric response-latency skew bound and must therefore
 * be bit-identical to the lock-step oracle. This suite pins the clamp
 * arithmetic, the oracle-certification path (diffrun-style digest
 * comparison localizing an injected fault to the exact cycle and unit
 * inside an epoch), and the engine-selection corner cases the
 * equivalence sweep in test_idleskip.cc does not reach.
 */

#include <gtest/gtest.h>

#include "core/vulkansim.h"
#include "service/service.h"

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.width = 16;
    p.height = 16;
    return p;
}

GpuConfig
epochConfig(unsigned epoch_cycles)
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 8;
    cfg.fabric.numPartitions = 2;
    cfg.digestTrace = true;
    cfg.epochCycles = epoch_cycles;
    return cfg;
}

TEST(EpochEngineTest, EpochLengthIsClampedToSkewBound)
{
    // The skew bound is the minimum fabric response latency: every
    // response path goes L2-latency + interconnect-latency, so an epoch
    // no longer than that can never deliver a response into a span the
    // SMs already ran.
    GpuConfig cfg = epochConfig(1'000'000);
    const unsigned bound = cfg.fabric.l2.latency + cfg.fabric.icntLatency;

    Workload w(WorkloadId::TRI, tinyParams());
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    EXPECT_EQ(run.epochCyclesUsed, bound);
}

TEST(EpochEngineTest, RequestedEpochBelowBoundIsUsedVerbatim)
{
    Workload w(WorkloadId::TRI, tinyParams());
    RunResult run = service::defaultService().submit(w, epochConfig(32)).take().run;
    EXPECT_EQ(run.epochCyclesUsed, 32u);
}

TEST(EpochEngineTest, FullCheckLevelForcesLockStep)
{
    // Full-level checking sweeps shallow invariants at every cycle
    // barrier — a barrier only lock-step has — so the engine must fall
    // back to one-cycle epochs regardless of the request.
    GpuConfig cfg = epochConfig(64);
    cfg.checkLevel = check::CheckLevel::Full;
    Workload w(WorkloadId::TRI, tinyParams());
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    EXPECT_EQ(run.epochCyclesUsed, 1u);
}

TEST(EpochEngineTest, ZeroEpochCyclesIsRejected)
{
    GpuConfig cfg = epochConfig(0);
    EXPECT_THROW(
        {
            Workload w(WorkloadId::TRI, tinyParams());
            service::defaultService().submit(w, cfg).take().run;
        },
        std::invalid_argument);
}

/**
 * The oracle-certification path: an injected single-bit digest fault at
 * a cycle that falls mid-epoch must be localized by firstDivergence()
 * to exactly that cycle and unit. This is what makes diffrun's verdict
 * trustworthy for the relaxed engine — worker-recorded per-cycle
 * digests preserve full lock-step localization granularity, not just
 * epoch granularity.
 */
TEST(EpochEngineTest, InjectedFaultIsLocalizedInsideAnEpoch)
{
    GpuConfig ref_cfg = epochConfig(64);

    GpuConfig faulty_cfg = ref_cfg;
    // Cycle 500 is mid-epoch for every 64-cycle epoch grid this run can
    // produce (500 is not a multiple of 64), and unit 3 is an SM whose
    // digest a worker thread records.
    faulty_cfg.digestInjectCycle = 500;
    faulty_cfg.digestInjectUnit = 3;

    Workload ref_wl(WorkloadId::TRI, tinyParams());
    RunResult ref = service::defaultService().submit(ref_wl, ref_cfg).take().run;
    Workload faulty_wl(WorkloadId::TRI, tinyParams());
    RunResult faulty = service::defaultService().submit(faulty_wl, faulty_cfg).take().run;

    auto div = ref.digests.firstDivergence(faulty.digests);
    ASSERT_TRUE(div.diverged);
    EXPECT_EQ(div.cycle, 500u);
    EXPECT_EQ(div.unit, 3u);
}

/**
 * Fault localization while any-hit suspensions are in flight: AHA keeps
 * RT-unit lanes parked in InAnyHit through the busy middle of the run,
 * and the lane suspension state (status, pending verdict, resume
 * deadline) is part of the per-cycle digest — so an injected fault
 * mid-run, mid-epoch must still be pinned to its exact cycle and unit.
 */
TEST(EpochEngineTest, InjectedFaultIsLocalizedDuringAnyHitSuspension)
{
    GpuConfig ref_cfg = epochConfig(64);
    Workload ref_wl(WorkloadId::AHA, tinyParams());
    RunResult ref = service::defaultService().submit(ref_wl, ref_cfg).take().run;
    ASSERT_GT(ref.rt.get("anyhit_suspended"), 0u);

    // Mid-run and mid-epoch (odd, so never a multiple of 64): with
    // hundreds of multi-cycle suspensions the middle of the run always
    // has lanes suspended in any-hit shaders.
    const Cycle inject = (ref.cycles / 2) | 1;
    GpuConfig faulty_cfg = ref_cfg;
    faulty_cfg.digestInjectCycle = inject;
    faulty_cfg.digestInjectUnit = 2;

    Workload faulty_wl(WorkloadId::AHA, tinyParams());
    RunResult faulty = service::defaultService().submit(faulty_wl, faulty_cfg).take().run;

    auto div = ref.digests.firstDivergence(faulty.digests);
    ASSERT_TRUE(div.diverged);
    EXPECT_EQ(div.cycle, inject);
    EXPECT_EQ(div.unit, 2u);
}

/**
 * Same fault, fabric unit: the fabric digest is recorded by the barrier
 * replay rather than an SM worker, so localize through that path too.
 */
TEST(EpochEngineTest, InjectedFabricFaultIsLocalizedInsideAnEpoch)
{
    GpuConfig ref_cfg = epochConfig(64);

    GpuConfig faulty_cfg = ref_cfg;
    faulty_cfg.digestInjectCycle = 501;
    faulty_cfg.digestInjectUnit = ref_cfg.numSms; // the fabric slot

    Workload ref_wl(WorkloadId::TRI, tinyParams());
    RunResult ref = service::defaultService().submit(ref_wl, ref_cfg).take().run;
    Workload faulty_wl(WorkloadId::TRI, tinyParams());
    RunResult faulty = service::defaultService().submit(faulty_wl, faulty_cfg).take().run;

    auto div = ref.digests.firstDivergence(faulty.digests);
    ASSERT_TRUE(div.diverged);
    EXPECT_EQ(div.cycle, 501u);
    EXPECT_EQ(div.unit, ref_cfg.numSms);
}

// Epoch stepping with idle-skip disabled must still match the
// double-oracle (lock-step, no idle-skip) run: the mid-epoch park
// heartbeat replay is the only machinery covering that combination.
TEST(EpochEngineTest, NoIdleSkipEpochMatchesLockStep)
{
    GpuConfig ref_cfg = epochConfig(1);
    ref_cfg.idleSkip = false;

    GpuConfig epoch_cfg = epochConfig(128);
    epoch_cfg.idleSkip = false;

    Workload ref_wl(WorkloadId::TRI, tinyParams());
    RunResult ref = service::defaultService().submit(ref_wl, ref_cfg).take().run;
    Workload epoch_wl(WorkloadId::TRI, tinyParams());
    RunResult epoch = service::defaultService().submit(epoch_wl, epoch_cfg).take().run;

    EXPECT_EQ(ref.cycles, epoch.cycles);
    EXPECT_EQ(ref.metrics.toJson(), epoch.metrics.toJson());
    EXPECT_EQ(epoch.smCyclesSkipped, 0u);
    EXPECT_FALSE(ref.digests.firstDivergence(epoch.digests).diverged);
}

} // namespace
} // namespace vksim
