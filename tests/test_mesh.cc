/**
 * @file
 * Tests for the procedural mesh generators and the five scene generators
 * (Table IV scale checks).
 */

#include <gtest/gtest.h>

#include "scene/mesh.h"
#include "scene/scenegen.h"

namespace vksim {
namespace {

TEST(MeshTest, GridHasExpectedTriangleCount)
{
    TriangleMesh m = makeGridMesh(10.f, 10.f, 4, 3);
    EXPECT_EQ(m.triangleCount(), 4u * 3u * 2u);
    EXPECT_EQ(m.vertices().size(), 5u * 4u);
}

TEST(MeshTest, BoxSubdivisionScalesQuadratically)
{
    EXPECT_EQ(makeBoxMesh({0, 0, 0}, {1, 1, 1}, 1).triangleCount(), 12u);
    EXPECT_EQ(makeBoxMesh({0, 0, 0}, {1, 1, 1}, 2).triangleCount(), 48u);
    EXPECT_EQ(makeBoxMesh({0, 0, 0}, {1, 1, 1}, 4).triangleCount(), 192u);
}

TEST(MeshTest, BoxBoundsMatchInput)
{
    Vec3 lo{-2, 0, 1}, hi{3, 4, 5};
    Aabb b = makeBoxMesh(lo, hi, 2).bounds();
    EXPECT_FLOAT_EQ(b.lo.x, lo.x);
    EXPECT_FLOAT_EQ(b.hi.z, hi.z);
}

TEST(MeshTest, CylinderTriangleCount)
{
    // side: 2*r*h, caps: 2*r
    TriangleMesh m = makeCylinderMesh(1.f, 2.f, 8, 3);
    EXPECT_EQ(m.triangleCount(), 2u * 8 * 3 + 2u * 8);
}

TEST(MeshTest, IcosphereSubdivision)
{
    EXPECT_EQ(makeIcosphereMesh(1.f, 0).triangleCount(), 20u);
    EXPECT_EQ(makeIcosphereMesh(1.f, 2).triangleCount(), 320u);
    // All vertices on the sphere.
    TriangleMesh m = makeIcosphereMesh(2.f, 2);
    for (const Vec3 &v : m.vertices())
        EXPECT_NEAR(length(v), 2.f, 1e-4f);
}

TEST(MeshTest, ClothIsDeterministicPerSeed)
{
    TriangleMesh a = makeClothMesh(2.f, 3.f, 8, 8, 0.5f, 99);
    TriangleMesh b = makeClothMesh(2.f, 3.f, 8, 8, 0.5f, 99);
    TriangleMesh c = makeClothMesh(2.f, 3.f, 8, 8, 0.5f, 100);
    ASSERT_EQ(a.vertices().size(), b.vertices().size());
    bool differs_from_c = false;
    for (std::size_t i = 0; i < a.vertices().size(); ++i) {
        EXPECT_FLOAT_EQ(a.vertices()[i].z, b.vertices()[i].z);
        if (a.vertices()[i].z != c.vertices()[i].z)
            differs_from_c = true;
    }
    EXPECT_TRUE(differs_from_c);
}

TEST(MeshTest, AppendTransforms)
{
    TriangleMesh base = makeGridMesh(2.f, 2.f, 1, 1);
    TriangleMesh combined;
    combined.append(base, Mat4::translation({10.f, 0.f, 0.f}));
    combined.append(base, Mat4::identity());
    EXPECT_EQ(combined.triangleCount(), 4u);
    Aabb b = combined.bounds();
    EXPECT_NEAR(b.hi.x, 11.f, 1e-5f);
    EXPECT_NEAR(b.lo.x, -1.f, 1e-5f);
}

TEST(SceneGenTest, TriSceneMatchesTable4)
{
    Scene s = makeTriScene();
    EXPECT_EQ(s.totalPrimitives(), 1u);
    EXPECT_EQ(s.instances.size(), 1u);
}

TEST(SceneGenTest, RefSceneMatchesTable4)
{
    Scene s = makeRefScene();
    EXPECT_EQ(s.totalPrimitives(), 50u); // paper: 50 primitives
}

TEST(SceneGenTest, ExtSceneScalesTowardSponzaCount)
{
    Scene small = makeExtScene(0.1f);
    Scene full = makeExtScene(1.0f);
    EXPECT_LT(small.totalPrimitives(), full.totalPrimitives());
    // Paper reports 283,265 primitives for Sponza; we match the scale.
    EXPECT_GT(full.totalPrimitives(), 200000u);
    EXPECT_LT(full.totalPrimitives(), 400000u);
}

TEST(SceneGenTest, Rtv6HasTwoProceduralGeometries)
{
    Scene s = makeRtv6Scene();
    EXPECT_EQ(s.totalPrimitives(), 4080u); // paper: 4080 primitives
    unsigned procedural_geoms = 0;
    for (const Geometry &g : s.geometries)
        if (g.kind == GeometryKind::Procedural)
            ++procedural_geoms;
    EXPECT_EQ(procedural_geoms, 2u);
    // The two procedural instances use distinct hit groups.
    EXPECT_NE(s.instances[1].sbtOffset, s.instances[2].sbtOffset);
}

TEST(SceneGenTest, Rtv5HasDepthOfFieldAndDielectrics)
{
    Scene s = makeRtv5Scene(3); // low detail for test speed
    EXPECT_GT(s.camera.aperture, 0.f);
    bool has_dielectric = false;
    for (const Material &m : s.materials)
        if (m.kind == static_cast<std::int32_t>(MaterialKind::Dielectric))
            has_dielectric = true;
    EXPECT_TRUE(has_dielectric);
}

TEST(SceneGenTest, MaterialIndicesInRange)
{
    for (const Scene &s :
         {makeTriScene(), makeRefScene(), makeExtScene(0.1f),
          makeRtv5Scene(3), makeRtv6Scene(500)}) {
        for (const Instance &inst : s.instances) {
            EXPECT_GE(inst.instanceCustomIndex, 0);
            EXPECT_LT(static_cast<std::size_t>(inst.instanceCustomIndex),
                      s.materials.size());
        }
        for (const Geometry &g : s.geometries)
            for (const ProceduralPrimitive &p : g.prims) {
                EXPECT_GE(p.materialIndex, 0);
                EXPECT_LT(static_cast<std::size_t>(p.materialIndex),
                          s.materials.size());
            }
    }
}

} // namespace
} // namespace vksim
