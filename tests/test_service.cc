/**
 * @file
 * Tests for the batched simulation service (src/service): artifact-cache
 * accounting (one build per content key, hits for every re-use), bit
 * identity of cached vs freshly built artifacts, equivalence of the
 * deprecated service::defaultService().submit().take().run shim, submit-time GpuConfig validation,
 * and the batch determinism contract — per-job metrics dumps are
 * byte-identical no matter the service thread count or the submission
 * order.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/vulkansim.h"
#include "service/service.h"

namespace vksim {
namespace {

wl::WorkloadParams
smallParams()
{
    wl::WorkloadParams params;
    params.width = 8;
    params.height = 8;
    params.rtv6Prims = 128;
    return params;
}

std::string
metricsJson(const RunResult &run)
{
    std::ostringstream os;
    run.metrics.writeJson(os, 2);
    return os.str();
}

TEST(ArtifactCache, SecondWorkloadOnSameSceneHitsBothCaches)
{
    service::SimService svc({1});
    wl::Workload first(wl::WorkloadId::TRI, smallParams(),
                       &svc.artifacts());
    wl::Workload second(wl::WorkloadId::TRI, smallParams(),
                        &svc.artifacts());

    EXPECT_FALSE(first.bvhCacheHit());
    EXPECT_FALSE(first.pipelineCacheHit());
    EXPECT_TRUE(second.bvhCacheHit());
    EXPECT_TRUE(second.pipelineCacheHit());
    EXPECT_EQ(first.bvhKey(), second.bvhKey());
    EXPECT_EQ(first.pipelineKey(), second.pipelineKey());

    const service::ArtifactCounters &c = svc.artifacts().counters();
    EXPECT_EQ(c.bvhBuilds, 1u);
    EXPECT_EQ(c.bvhHits, 1u);
    EXPECT_EQ(c.pipelineBuilds, 1u);
    EXPECT_EQ(c.pipelineHits, 1u);
}

TEST(ArtifactCache, DistinctScenesAndPipelinesGetDistinctKeys)
{
    service::SimService svc({1});
    wl::Workload tri(wl::WorkloadId::TRI, smallParams(),
                     &svc.artifacts());
    wl::Workload rtv6(wl::WorkloadId::RTV6, smallParams(),
                      &svc.artifacts());

    EXPECT_NE(tri.bvhKey(), rtv6.bvhKey());
    EXPECT_NE(tri.pipelineKey(), rtv6.pipelineKey());
    const service::ArtifactCounters &c = svc.artifacts().counters();
    EXPECT_EQ(c.bvhBuilds, 2u);
    EXPECT_EQ(c.bvhHits, 0u);
    EXPECT_EQ(c.pipelineBuilds, 2u);
}

TEST(ArtifactCache, FccVariantSharesBvhButNotPipeline)
{
    service::SimService svc({1});
    wl::WorkloadParams params = smallParams();
    wl::Workload base(wl::WorkloadId::RTV6, params, &svc.artifacts());
    params.fcc = true;
    wl::Workload fcc(wl::WorkloadId::RTV6, params, &svc.artifacts());

    EXPECT_EQ(base.bvhKey(), fcc.bvhKey());
    EXPECT_TRUE(fcc.bvhCacheHit());
    EXPECT_NE(base.pipelineKey(), fcc.pipelineKey());
    EXPECT_FALSE(fcc.pipelineCacheHit());
}

TEST(ArtifactCache, CachedWorkloadRunsIdenticallyToUncached)
{
    // The uncached baseline: a workload built the classic way.
    wl::Workload plain(wl::WorkloadId::TRI, smallParams());

    // The cached path, exercised on its install (hit) side: the first
    // cache-aware build populates the cache, the second installs the
    // captured BVH image into a fresh device.
    service::SimService svc({1});
    wl::Workload warm(wl::WorkloadId::TRI, smallParams(),
                      &svc.artifacts());
    wl::Workload cached(wl::WorkloadId::TRI, smallParams(),
                        &svc.artifacts());
    ASSERT_TRUE(cached.bvhCacheHit());

    GpuConfig config = baselineGpuConfig();
    config.threads = 1;
    RunResult plain_run = service::runPreparedWorkload(plain, config);
    RunResult cached_run = service::runPreparedWorkload(cached, config);

    EXPECT_EQ(plain_run.cycles, cached_run.cycles);
    EXPECT_EQ(metricsJson(plain_run), metricsJson(cached_run));
    ImageDiff diff = compareImages(plain.readFramebuffer(),
                                   cached.readFramebuffer(), 0.f);
    EXPECT_EQ(diff.differingPixels, 0u);
}

TEST(SimService, SingleJobBatchHonorsEngineThreads)
{
    service::SimService svc({4});
    wl::Workload workload(wl::WorkloadId::TRI, smallParams(),
                          &svc.artifacts());
    GpuConfig config = baselineGpuConfig();
    config.threads = 1;
    const service::JobResult &result =
        svc.submit(workload, config, "solo").get();
    EXPECT_EQ(result.run.threadsUsed, 1u);
    EXPECT_EQ(result.name, "solo");
    EXPECT_GT(result.run.cycles, 0u);
}

TEST(SimService, GetAutoFlushesTheBatch)
{
    service::SimService svc({2});
    service::JobSpec spec;
    spec.workload = wl::WorkloadId::TRI;
    spec.params = smallParams();
    spec.config = baselineGpuConfig();
    spec.config.threads = 0;
    service::JobTicket a = svc.submit(spec);
    service::JobTicket b = svc.submit(spec);
    EXPECT_EQ(svc.submittedCount(), 2u);

    // No explicit flush(): the first get() runs the whole batch.
    const service::JobResult &ra = a.get();
    const service::JobResult &rb = b.get();
    EXPECT_EQ(ra.name, "job0");
    EXPECT_EQ(rb.name, "job1");
    EXPECT_EQ(ra.run.cycles, rb.run.cycles);
    EXPECT_NE(ra.workload, nullptr);
}

TEST(SimService, BuildsPerKeyIsOneAcrossParallelBatch)
{
    service::SimService svc({4});
    service::JobSpec spec;
    spec.workload = wl::WorkloadId::TRI;
    spec.params = smallParams();
    spec.config = baselineGpuConfig();
    spec.config.threads = 0;
    std::vector<service::JobTicket> tickets;
    for (int i = 0; i < 6; ++i)
        tickets.push_back(svc.submit(spec));
    svc.flush();
    for (service::JobTicket &t : tickets)
        EXPECT_GT(t.get().run.cycles, 0u);

    // Six jobs race for the same scene and pipeline: each artifact is
    // built exactly once, every other job gets a cache hit.
    const service::ArtifactCounters &c = svc.artifacts().counters();
    EXPECT_EQ(c.bvhBuilds, 1u);
    EXPECT_EQ(c.bvhHits, 5u);
    EXPECT_EQ(c.pipelineBuilds, 1u);
    EXPECT_EQ(c.pipelineHits, 5u);
}

TEST(SimService, DeprecatedShimMatchesServiceSubmission)
{
    GpuConfig config = baselineGpuConfig();
    config.threads = 1;

    wl::Workload via_shim(wl::WorkloadId::TRI, smallParams());
    RunResult shim_run = service::defaultService().submit(via_shim, config).take().run;

    service::SimService svc({1});
    wl::Workload via_service(wl::WorkloadId::TRI, smallParams(),
                             &svc.artifacts());
    const service::JobResult &service_result =
        svc.submit(via_service, config, "direct").get();

    EXPECT_EQ(shim_run.cycles, service_result.run.cycles);
    EXPECT_EQ(metricsJson(shim_run), metricsJson(service_result.run));
    ImageDiff diff = compareImages(via_shim.readFramebuffer(),
                                   service_result.image, 0.f);
    EXPECT_EQ(diff.differingPixels, 0u);
}

TEST(SimService, SubmitRejectsInvalidConfigWithActionableMessage)
{
    service::SimService svc({1});
    service::JobSpec spec;
    spec.workload = wl::WorkloadId::TRI;
    spec.params = smallParams();
    spec.config = baselineGpuConfig();
    spec.config.numSms = 0;
    spec.config.l1.numMshrs = 0;
    try {
        svc.submit(spec);
        FAIL() << "submit() accepted an invalid GpuConfig";
    } catch (const std::invalid_argument &e) {
        std::string message = e.what();
        EXPECT_NE(message.find("numSms"), std::string::npos) << message;
        EXPECT_NE(message.find("l1"), std::string::npos) << message;
    }
}

TEST(SimService, SubmitRejectsFccPlusIts)
{
    service::SimService svc({1});
    service::JobSpec spec;
    spec.workload = wl::WorkloadId::RTV6;
    spec.params = smallParams();
    spec.params.fcc = true;
    spec.config = baselineGpuConfig();
    spec.config.its = true;
    try {
        svc.submit(spec);
        FAIL() << "submit() accepted FCC combined with ITS";
    } catch (const std::invalid_argument &e) {
        std::string message = e.what();
        EXPECT_NE(message.find("FCC"), std::string::npos) << message;
        EXPECT_NE(message.find("ITS"), std::string::npos) << message;
    }
}

/** The acceptance-criteria determinism sweep, in miniature: the same
 *  four jobs, submitted in different orders to services with different
 *  lane counts, must produce byte-identical per-job metrics dumps. */
TEST(SimService, BatchStatsAreByteIdenticalAcrossThreadsAndOrder)
{
    struct NamedSpec
    {
        const char *name;
        wl::WorkloadId id;
        bool mobile;
    };
    const std::vector<NamedSpec> jobs = {
        {"tri_base", wl::WorkloadId::TRI, false},
        {"tri_mobile", wl::WorkloadId::TRI, true},
        {"rtv6_base", wl::WorkloadId::RTV6, false},
        {"rtv6_mobile", wl::WorkloadId::RTV6, true},
    };

    auto runBatch = [&](unsigned service_threads,
                        const std::vector<std::size_t> &order) {
        service::SimService svc({service_threads});
        std::vector<service::JobTicket> tickets;
        for (std::size_t idx : order) {
            const NamedSpec &j = jobs[idx];
            service::JobSpec spec;
            spec.name = j.name;
            spec.workload = j.id;
            spec.params = smallParams();
            spec.config =
                j.mobile ? mobileGpuConfig() : baselineGpuConfig();
            spec.config.threads = 0;
            tickets.push_back(svc.submit(spec));
        }
        svc.flush();
        std::map<std::string, std::string> stats;
        for (service::JobTicket &t : tickets) {
            const service::JobResult &r = t.get();
            stats[r.name] = metricsJson(r.run);
        }
        // Both services see two distinct scenes (TRI, RTV6), whatever
        // the order or lane count.
        EXPECT_EQ(svc.artifacts().counters().bvhBuilds, 2u);
        EXPECT_EQ(svc.artifacts().counters().bvhHits, 2u);
        return stats;
    };

    std::map<std::string, std::string> serial =
        runBatch(1, {0, 1, 2, 3});
    std::map<std::string, std::string> parallel =
        runBatch(4, {3, 1, 0, 2});
    std::map<std::string, std::string> wide = runBatch(8, {2, 3, 0, 1});

    ASSERT_EQ(serial.size(), jobs.size());
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, wide);
}

/** Satellite of the clocked-core PR: a runaway job must fail its own
 *  ticket with a structured SimError — not kill the whole service
 *  process the way the old vksim_fatal watchdog did — and its batch
 *  siblings must run to completion untouched. */
TEST(SimService, WatchdogFailsOneTicketNotTheBatch)
{
    service::SimService svc({2});

    service::JobSpec runaway;
    runaway.name = "runaway";
    runaway.workload = wl::WorkloadId::TRI;
    runaway.params = smallParams();
    runaway.config = baselineGpuConfig();
    runaway.config.threads = 0;
    runaway.config.maxCycles = 10; // guaranteed watchdog trip

    service::JobSpec healthy = runaway;
    healthy.name = "healthy";
    healthy.config.maxCycles = 50'000'000;

    service::JobTicket bad = svc.submit(runaway);
    service::JobTicket good = svc.submit(healthy);
    svc.flush();

    EXPECT_TRUE(bad.failed());
    try {
        bad.get();
        FAIL() << "get() on a watchdog-tripped job did not throw";
    } catch (const SimError &e) {
        std::string message = e.what();
        EXPECT_NE(message.find("runaway"), std::string::npos) << message;
        EXPECT_NE(message.find("watchdog"), std::string::npos) << message;
        EXPECT_EQ(e.cycle(), 10u);
    }

    EXPECT_FALSE(good.failed());
    const service::JobResult &result = good.get();
    EXPECT_EQ(result.name, "healthy");
    EXPECT_GT(result.run.cycles, 10u);
    EXPECT_EQ(result.image.width(), 8u);
    EXPECT_EQ(result.image.height(), 8u);
}

/** Priority decides *when* a job runs, never its result: the execution
 *  order is descending priority with submission order as tie-break. */
TEST(SimService, PriorityOrdersExecutionNotResults)
{
    service::SimService svc({1});
    service::JobSpec spec;
    spec.workload = wl::WorkloadId::TRI;
    spec.params = smallParams();
    spec.config = baselineGpuConfig();
    spec.config.threads = 0;

    spec.name = "background";
    spec.priority = -5;
    service::JobTicket background = svc.submit(spec);
    spec.name = "urgent";
    spec.priority = 10;
    service::JobTicket urgent = svc.submit(spec);
    spec.name = "first_normal";
    spec.priority = 0;
    service::JobTicket first_normal = svc.submit(spec);
    spec.name = "second_normal";
    spec.priority = 0;
    service::JobTicket second_normal = svc.submit(spec);

    const std::vector<std::string> order = svc.executionOrder();
    const std::vector<std::string> expected = {
        "urgent", "first_normal", "second_normal", "background"};
    EXPECT_EQ(order, expected);

    svc.flush();
    EXPECT_TRUE(svc.executionOrder().empty());
    // All four are the same simulation; priority left no trace.
    const std::string urgent_stats = metricsJson(urgent.get().run);
    EXPECT_EQ(urgent_stats, metricsJson(background.get().run));
    EXPECT_EQ(urgent_stats, metricsJson(first_normal.get().run));
    EXPECT_EQ(urgent_stats, metricsJson(second_normal.get().run));
}

TEST(SimService, CancelFailsPendingTicketOnlyAndNeverDiscardsWork)
{
    service::SimService svc({1});
    service::JobSpec spec;
    spec.workload = wl::WorkloadId::TRI;
    spec.params = smallParams();
    spec.config = baselineGpuConfig();
    spec.config.threads = 0;

    spec.name = "doomed";
    service::JobTicket doomed = svc.submit(spec);
    spec.name = "survivor";
    service::JobTicket survivor = svc.submit(spec);

    EXPECT_TRUE(svc.cancel(doomed));
    EXPECT_TRUE(doomed.failed());
    EXPECT_EQ(svc.executionOrder(),
              std::vector<std::string>{"survivor"});
    try {
        doomed.get();
        FAIL() << "get() on a cancelled job did not throw";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("cancelled"),
                  std::string::npos)
            << e.what();
    }

    svc.flush();
    EXPECT_FALSE(survivor.failed());
    EXPECT_GT(survivor.get().run.cycles, 0u);
    // Flushed work is never discarded: cancel is a no-op now.
    EXPECT_FALSE(svc.cancel(survivor));
    EXPECT_GT(survivor.get().run.cycles, 0u);
    // And an invalid ticket is a clean false, not a crash.
    service::JobTicket invalid;
    EXPECT_FALSE(svc.cancel(invalid));
}

} // namespace
} // namespace vksim
