/**
 * @file
 * Differential tests of the pre-decoded micro-op dispatch path against
 * the legacy structural-ISA interpreter: every opcode is executed
 * through both paths in lockstep and the full architectural state
 * (register files, call stacks, rt-frame depth, SIMT-stack splits,
 * memory traffic) must stay bit-identical after every step. Also holds
 * the decode-count contract: the structural reference never decodes a
 * micro-op, the micro-op path decodes exactly one per dynamic
 * instruction (including across divergence/reconvergence splits), and
 * the timed model's decode total equals its issue attempts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "gpu/gpu.h"
#include "service/service.h"
#include "vptx/exec.h"
#include "vptx/rtstack.h"
#include "workloads/workload.h"

namespace vksim::vptx {
namespace {

// --- instruction builders -----------------------------------------------

Instr
ins(Opcode op, int dst = -1, int s0 = -1, int s1 = -1, int s2 = -1)
{
    Instr i;
    i.op = op;
    i.dst = static_cast<std::int16_t>(dst);
    i.src0 = static_cast<std::int16_t>(s0);
    i.src1 = static_cast<std::int16_t>(s1);
    i.src2 = static_cast<std::int16_t>(s2);
    return i;
}

/** Opcodes whose payload is the immediate (MovImm, LoadLaunchId, ...). */
Instr
immOp(Opcode op, int dst, std::uint64_t imm, int s0 = -1)
{
    Instr i = ins(op, dst, s0);
    i.imm = imm;
    return i;
}

Instr
memOp(Opcode op, int dst, int addr_reg, std::uint64_t offset,
      unsigned size, int val_reg = -1)
{
    Instr i = ins(op, dst, addr_reg, val_reg);
    i.imm = offset;
    i.size = static_cast<std::uint8_t>(size);
    return i;
}

Instr
braOp(Opcode op, int cond_reg, std::uint32_t target, std::uint32_t reconv)
{
    Instr i = ins(op, -1, cond_reg);
    i.target = target;
    i.reconv = reconv;
    return i;
}

Instr
jmpOp(std::uint32_t target)
{
    Instr i = ins(Opcode::Jmp);
    i.target = target;
    return i;
}

Instr
callOp(std::uint32_t target, std::uint64_t window)
{
    Instr i = ins(Opcode::Call);
    i.target = target;
    i.imm = window;
    return i;
}

std::uint64_t
fbits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
}

// --- lockstep harness ---------------------------------------------------

/** One independent executor world around a hand-built program. */
struct Side
{
    GlobalMemory gmem;
    Program program;
    LaunchContext ctx;
    Warp warp;
    std::unique_ptr<WarpExecutor> exec;

    void
    init(const std::vector<Instr> &code, unsigned num_regs,
         bool structural)
    {
        program.code = code;
        ShaderInfo raygen;
        raygen.name = "diff";
        raygen.stage = ShaderStage::RayGen;
        raygen.entryPc = 0;
        raygen.numRegs = static_cast<std::uint16_t>(num_regs);
        program.shaders.push_back(raygen);
        program.raygenShader = 0;

        ctx.program = &program;
        ctx.gmem = &gmem;
        ctx.launchSize[0] = kWarpSize;
        ctx.launchSize[1] = 1;
        ctx.rtStackBase =
            gmem.allocate(kWarpSize * kRtStackBytesPerThread, 64);
        ctx.scratchBase =
            gmem.allocate(kWarpSize * kRtScratchBytesPerThread, 64);

        ExecOptions opts;
        opts.structuralDispatch = structural;
        exec = std::make_unique<WarpExecutor>(ctx, opts);
        initWarp(warp, 0, ctx, WarpCflow::Mode::Stack);
    }
};

void
expectSameStep(const StepResult &a, const StepResult &b)
{
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.unit, b.unit);
    EXPECT_EQ(a.activeLanes, b.activeLanes);
    EXPECT_EQ(a.dstReg, b.dstReg);
    EXPECT_EQ(a.exited, b.exited);
    EXPECT_EQ(a.startedTraverse, b.startedTraverse);
    EXPECT_EQ(a.traverseSplitId, b.traverseSplitId);
    ASSERT_EQ(a.accesses.size(), b.accesses.size());
    for (std::size_t i = 0; i < a.accesses.size(); ++i) {
        EXPECT_EQ(a.accesses[i].lane, b.accesses[i].lane) << "access " << i;
        EXPECT_EQ(a.accesses[i].write, b.accesses[i].write)
            << "access " << i;
        EXPECT_EQ(a.accesses[i].size, b.accesses[i].size) << "access " << i;
        EXPECT_EQ(a.accesses[i].addr, b.accesses[i].addr) << "access " << i;
    }
}

void
expectSameWarp(const Warp &a, const Warp &b)
{
    // SIMT stack: same splits in the same table order.
    ASSERT_EQ(a.cflow.splitCount(), b.cflow.splitCount());
    EXPECT_EQ(a.cflow.runnableCount(), b.cflow.runnableCount());
    EXPECT_EQ(a.cflow.liveMask(), b.cflow.liveMask());
    EXPECT_EQ(a.cflow.finished(), b.cflow.finished());
    for (unsigned i = 0; i < a.cflow.splitCount(); ++i) {
        const WarpSplit &sa = a.cflow.split(static_cast<int>(i));
        const WarpSplit &sb = b.cflow.split(static_cast<int>(i));
        EXPECT_EQ(sa.pc, sb.pc) << "split " << i;
        EXPECT_EQ(sa.mask, sb.mask) << "split " << i;
        EXPECT_EQ(sa.blocked, sb.blocked) << "split " << i;
        EXPECT_EQ(sa.id, sb.id) << "split " << i;
        EXPECT_EQ(sa.reconv, sb.reconv) << "split " << i;
    }

    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        const ThreadState &ta = a.threads[lane];
        const ThreadState &tb = b.threads[lane];
        EXPECT_EQ(ta.windowBase, tb.windowBase) << "lane " << lane;
        EXPECT_EQ(ta.rtDepth, tb.rtDepth) << "lane " << lane;
        EXPECT_EQ(ta.exited, tb.exited) << "lane " << lane;
        ASSERT_EQ(ta.callStack.size(), tb.callStack.size())
            << "lane " << lane;
        for (std::size_t f = 0; f < ta.callStack.size(); ++f) {
            EXPECT_EQ(ta.callStack[f].retPc, tb.callStack[f].retPc)
                << "lane " << lane << " frame " << f;
            EXPECT_EQ(ta.callStack[f].savedWindow,
                      tb.callStack[f].savedWindow)
                << "lane " << lane << " frame " << f;
        }

        // Register file: identical logical sizes AND identical bits.
        ASSERT_EQ(a.regs.laneSize(lane), b.regs.laneSize(lane))
            << "lane " << lane;
        const std::uint64_t *ra = a.regs.row(lane);
        const std::uint64_t *rb = b.regs.row(lane);
        for (std::uint32_t r = 0; r < a.regs.laneSize(lane); ++r)
            EXPECT_EQ(ra[r], rb[r]) << "lane " << lane << " reg " << r;
    }
}

/**
 * Step `ref` (structural) and `uop` (micro-op) warps to completion in
 * lockstep, asserting bit-identical StepResults and warp state after
 * every dynamic instruction. Returns the dynamic instruction count.
 */
std::uint64_t
runWarpLockstep(WarpExecutor &ref_exec, Warp &ref_warp,
                WarpExecutor &uop_exec, Warp &uop_warp,
                std::set<Opcode> *coverage)
{
    std::uint64_t steps = 0;
    while (!ref_warp.finished()) {
        EXPECT_FALSE(uop_warp.finished()) << "micro-op path exited early";
        if (uop_warp.finished())
            break;
        int sr = ref_warp.cflow.runnableSplit(0);
        int su = uop_warp.cflow.runnableSplit(0);
        StepResult a = ref_exec.step(ref_warp, sr);
        StepResult b = uop_exec.step(uop_warp, su);
        ++steps;
        if (coverage)
            coverage->insert(a.op);
        expectSameStep(a, b);
        if (a.startedTraverse && b.startedTraverse) {
            ref_exec.runTraverseFunctional(ref_warp, a.traverseSplitId);
            uop_exec.runTraverseFunctional(uop_warp, b.traverseSplitId);
        }
        expectSameWarp(ref_warp, uop_warp);
        if (::testing::Test::HasFailure()) {
            ADD_FAILURE() << "paths diverged at dynamic instruction "
                          << steps << " (op "
                          << static_cast<int>(a.op) << ")";
            return steps;
        }
        if (steps > 1'000'000ull) {
            ADD_FAILURE() << "lockstep runaway";
            return steps;
        }
    }
    EXPECT_TRUE(uop_warp.finished());
    return steps;
}

/** A named differential micro-program. */
struct DiffCase
{
    const char *name;
    std::vector<Instr> code;
    unsigned numRegs = 8;
    std::function<void(Side &)> setup;          ///< after init, per side
    std::function<void(Side &, Side &)> post;   ///< after lockstep
};

void
runCase(const DiffCase &c, std::set<Opcode> *coverage = nullptr)
{
    SCOPED_TRACE(c.name);
    Side ref, uop;
    ref.init(c.code, c.numRegs, /*structural=*/true);
    uop.init(c.code, c.numRegs, /*structural=*/false);
    if (c.setup) {
        c.setup(ref);
        c.setup(uop);
    }
    std::uint64_t steps = runWarpLockstep(*ref.exec, ref.warp, *uop.exec,
                                          uop.warp, coverage);
    // Decode-count contract at micro scale: the structural reference
    // never touches the micro-op stream; the micro-op path decodes
    // exactly once per dynamic instruction.
    EXPECT_EQ(ref.exec->decodeCount(), 0u) << c.name;
    EXPECT_EQ(uop.exec->decodeCount(), steps) << c.name;
    if (c.post)
        c.post(ref, uop);
}

// --- per-opcode micro-programs ------------------------------------------

DiffCase
aluCase()
{
    DiffCase c;
    c.name = "alu";
    c.code = {
        immOp(Opcode::LoadLaunchId, 0, 0),   // tid, lane-varying
        immOp(Opcode::LoadLaunchSize, 1, 0), // kWarpSize
        immOp(Opcode::MovImm, 2, 0xDEADBEEFCAFEBABEull),
        ins(Opcode::Mov, 3, 0),
        ins(Opcode::Add, 4, 0, 2),
        ins(Opcode::Sub, 5, 0, 2),
        ins(Opcode::Mul, 6, 0, 2),
        ins(Opcode::And, 7, 2, 0),
        ins(Opcode::Or, 8, 2, 0),
        ins(Opcode::Xor, 9, 2, 0),
        ins(Opcode::Shl, 10, 2, 0),
        ins(Opcode::Shr, 11, 2, 0),
        immOp(Opcode::MovImm, 12, 65), // shift amount masked to 1
        ins(Opcode::Shl, 13, 2, 12),
        ins(Opcode::Shr, 14, 2, 12),
        ins(Opcode::ISetEq, 15, 0, 3),
        ins(Opcode::ISetNe, 16, 0, 1),
        ins(Opcode::ISetLt, 17, 2, 0), // signed: 0xDEAD... is negative
        ins(Opcode::ISetGe, 18, 2, 0),
        ins(Opcode::U2F, 19, 0),
        immOp(Opcode::MovImm, 20, fbits(3.25f)),
        ins(Opcode::FAdd, 21, 19, 20),
        ins(Opcode::FSub, 22, 19, 20),
        ins(Opcode::FMul, 23, 19, 20),
        ins(Opcode::FDiv, 24, 19, 20),
        immOp(Opcode::MovImm, 25, fbits(0.0f)),
        ins(Opcode::FDiv, 26, 19, 25), // lane 0: 0/0 = NaN, rest inf
        ins(Opcode::FMin, 27, 26, 20), // NaN operand
        ins(Opcode::FMax, 28, 26, 20),
        ins(Opcode::FNeg, 29, 19),
        ins(Opcode::FAbs, 30, 29),
        ins(Opcode::FFloor, 31, 24),
        ins(Opcode::FSetLt, 32, 19, 20),
        ins(Opcode::FSetLe, 33, 19, 20),
        ins(Opcode::FSetGt, 34, 19, 20),
        ins(Opcode::FSetGe, 35, 19, 20),
        ins(Opcode::FSetEq, 36, 26, 26), // NaN != NaN on lane 0
        ins(Opcode::FSetNe, 37, 26, 26),
        immOp(Opcode::MovImm, 38, static_cast<std::uint64_t>(-5)),
        ins(Opcode::I2F, 39, 38),
        ins(Opcode::F2I, 40, 29), // negative float
        ins(Opcode::F2U, 41, 29), // negative float -> 0
        ins(Opcode::F2U, 42, 19),
        ins(Opcode::F2I, 43, 21),
        ins(Opcode::Select, 44, 15, 2, 0),
        ins(Opcode::Select, 45, 7, 2, 0), // lane-varying condition
        ins(Opcode::Nop),
        ins(Opcode::Exit),
    };
    return c;
}

DiffCase
sfuCase()
{
    DiffCase c;
    c.name = "sfu";
    c.code = {
        immOp(Opcode::LoadLaunchId, 0, 0),
        ins(Opcode::U2F, 1, 0),
        immOp(Opcode::MovImm, 2, fbits(0.5f)),
        ins(Opcode::FMul, 3, 1, 2),
        ins(Opcode::FSqrt, 4, 3),
        ins(Opcode::FRsqrt, 5, 3), // lane 0: rsqrt(0) = inf
        ins(Opcode::FSin, 6, 3),
        ins(Opcode::FCos, 7, 3),
        ins(Opcode::FNeg, 8, 3),
        ins(Opcode::FSqrt, 9, 8), // sqrt of negative -> NaN
        ins(Opcode::Exit),
    };
    return c;
}

DiffCase
memoryCase()
{
    DiffCase c;
    c.name = "memory";
    // Per-thread scratch (RtAllocMem) gives lane-varying addresses
    // without host-side coordination between the two sides.
    c.code = {
        immOp(Opcode::RtAllocMem, 1, 0),
        immOp(Opcode::MovImm, 2, 0x1122334455667788ull),
        immOp(Opcode::LoadLaunchId, 0, 0),
        ins(Opcode::Add, 3, 2, 0),
        memOp(Opcode::St, -1, 1, 0, 8, 3),
        memOp(Opcode::St, -1, 1, 8, 4, 3),
        memOp(Opcode::St, -1, 1, 17, 2, 3),
        memOp(Opcode::St, -1, 1, 24, 1, 3),
        memOp(Opcode::Ld, 4, 1, 0, 8),
        memOp(Opcode::Ld, 5, 1, 8, 4),
        memOp(Opcode::Ld, 6, 1, 17, 2),
        memOp(Opcode::Ld, 7, 1, 24, 1),
        ins(Opcode::Exit),
    };
    return c;
}

DiffCase
branchCase()
{
    DiffCase c;
    c.name = "branch";
    c.code = {
        /* 0*/ immOp(Opcode::LoadLaunchId, 0, 0),
        /* 1*/ immOp(Opcode::MovImm, 1, 1),
        /* 2*/ ins(Opcode::And, 2, 0, 1), // odd lanes taken
        /* 3*/ braOp(Opcode::Bra, 2, 6, 8),
        /* 4*/ immOp(Opcode::MovImm, 3, 111),
        /* 5*/ jmpOp(8),
        /* 6*/ immOp(Opcode::MovImm, 3, 222),
        /* 7*/ ins(Opcode::Nop),
        /* 8*/ ins(Opcode::Add, 4, 3, 0), // reconverged
        /* 9*/ braOp(Opcode::BraZ, 2, 12, 14),
        /*10*/ immOp(Opcode::MovImm, 5, 1),
        /*11*/ jmpOp(14),
        /*12*/ immOp(Opcode::MovImm, 5, 2),
        /*13*/ ins(Opcode::Nop),
        /*14*/ immOp(Opcode::MovImm, 6, 0),
        /*15*/ braOp(Opcode::BraZ, 6, 17, 17), // uniformly taken
        /*16*/ immOp(Opcode::MovImm, 7, 999),  // dead
        /*17*/ braOp(Opcode::Bra, 6, 20, 21),  // uniformly not taken
        /*18*/ immOp(Opcode::MovImm, 8, 5),
        /*19*/ jmpOp(21),
        /*20*/ immOp(Opcode::MovImm, 8, 6), // dead
        /*21*/ ins(Opcode::Exit),
    };
    return c;
}

DiffCase
callRetCase()
{
    DiffCase c;
    c.name = "call_ret";
    c.code = {
        /* 0*/ immOp(Opcode::MovImm, 0, 7),
        /* 1*/ callOp(5, 8), // window += 8
        /* 2*/ ins(Opcode::Mov, 1, 8), // callee's r0 is caller's r8
        /* 3*/ ins(Opcode::Add, 2, 1, 0),
        /* 4*/ ins(Opcode::Exit),
        /* 5*/ immOp(Opcode::MovImm, 0, 42),
        /* 6*/ callOp(9, 4), // nested, window += 4
        /* 7*/ ins(Opcode::Ret),
        /* 8*/ ins(Opcode::Nop), // unreachable
        /* 9*/ immOp(Opcode::MovImm, 0, 17),
        /*10*/ ins(Opcode::Ret),
    };
    return c;
}

DiffCase
rtFrameCase()
{
    DiffCase c;
    c.name = "rt_frames";
    c.code = {
        ins(Opcode::RtPushFrame),
        immOp(Opcode::RtFrameAddr, 1, 0),
        ins(Opcode::RtPushFrame),
        immOp(Opcode::RtFrameAddr, 2, 0),
        ins(Opcode::Sub, 3, 2, 1), // frame stride
        immOp(Opcode::RtAllocMem, 4, 16),
        immOp(Opcode::DescBase, 5, 0),
        immOp(Opcode::LoadLaunchSize, 6, 1),
        ins(Opcode::EndTraceRay),
        ins(Opcode::EndTraceRay),
        ins(Opcode::Exit),
    };
    c.setup = [](Side &s) { s.ctx.descBase[0] = 0x5000; };
    return c;
}

/** Fill every lane's depth-0 frame with a deferred candidate. */
void
fillFrames(Side &s)
{
    for (std::uint32_t tid = 0; tid < kWarpSize; ++tid) {
        Addr fb = s.ctx.frameBase(tid, 0);
        s.gmem.store<std::uint32_t>(fb + frame::kCurrentDeferred, 1);
        s.gmem.store<float>(fb + frame::kHitT,
                            (tid & 1) ? 0.35f : 1.0f);
        s.gmem.store<float>(fb + frame::kRayTmin, 0.5f);
        Addr entry = deferredEntryAddr(fb, 1);
        s.gmem.store<float>(entry + frame::kDefT,
                            0.25f + 0.05f * static_cast<float>(tid));
        s.gmem.store<std::int32_t>(entry + frame::kDefInstance,
                                   static_cast<std::int32_t>(tid));
        s.gmem.store<std::int32_t>(entry + frame::kDefPrim,
                                   static_cast<std::int32_t>(2 * tid + 1));
        s.gmem.store<std::int32_t>(entry + frame::kDefCustomIndex, 7);
        s.gmem.store<std::int32_t>(entry + frame::kDefSbtOffset, 3);
        s.gmem.store<float>(entry + frame::kDefU, 0.5f);
        s.gmem.store<float>(entry + frame::kDefV, 0.25f);
    }
}

/** Byte-compare every lane's depth-0 frame between the two sides. */
void
compareFrames(Side &a, Side &b)
{
    std::vector<std::uint8_t> fa(kRtFrameBytes), fb(kRtFrameBytes);
    for (std::uint32_t tid = 0; tid < kWarpSize; ++tid) {
        a.gmem.read(a.ctx.frameBase(tid, 0), fa.data(), kRtFrameBytes);
        b.gmem.read(b.ctx.frameBase(tid, 0), fb.data(), kRtFrameBytes);
        EXPECT_EQ(0, std::memcmp(fa.data(), fb.data(), kRtFrameBytes))
            << "frame bytes differ for tid " << tid;
    }
}

DiffCase
reportCommitCase()
{
    DiffCase c;
    c.name = "report_commit";
    c.code = {
        ins(Opcode::RtPushFrame),
        immOp(Opcode::LoadLaunchId, 0, 0),
        ins(Opcode::U2F, 1, 0),
        immOp(Opcode::MovImm, 2, fbits(0.1f)),
        ins(Opcode::FMul, 3, 1, 2),
        immOp(Opcode::MovImm, 4, fbits(0.3f)),
        ins(Opcode::FAdd, 5, 3, 4), // t = 0.3 + 0.1*tid
        ins(Opcode::ReportIntersection, 6, 5),
        ins(Opcode::CommitAnyHit, 7),
        ins(Opcode::EndTraceRay),
        ins(Opcode::Exit),
    };
    c.setup = fillFrames;
    c.post = compareFrames;
    return c;
}

DiffCase
fccCase()
{
    DiffCase c;
    c.name = "fcc";
    c.code = {
        ins(Opcode::RtPushFrame),
        immOp(Opcode::MovImm, 0, 0),
        ins(Opcode::GetNextCoalescedCall, 1, 0),
        immOp(Opcode::MovImm, 0, 1),
        ins(Opcode::GetNextCoalescedCall, 2, 0), // past last row -> -1
        ins(Opcode::EndTraceRay),
        ins(Opcode::Exit),
    };
    c.setup = [](Side &s) {
        CoalescedRow row;
        row.shaderId = 5;
        row.mask = 0x0000FF0Fu;
        for (unsigned lane = 0; lane < kWarpSize; ++lane)
            row.entryIdx[lane] = static_cast<std::uint16_t>(lane % 3);
        s.warp.fccRows.push_back(row);
    };
    c.post = compareFrames;
    return c;
}

std::vector<DiffCase>
microCases()
{
    return {aluCase(),    sfuCase(),     memoryCase(),       branchCase(),
            callRetCase(), rtFrameCase(), reportCommitCase(), fccCase()};
}

// --- one test per micro-program (failure isolation) ---------------------

TEST(VptxUopDiffTest, AluOpsBitIdentical) { runCase(aluCase()); }
TEST(VptxUopDiffTest, SfuOpsBitIdentical) { runCase(sfuCase()); }
TEST(VptxUopDiffTest, MemoryOpsBitIdentical) { runCase(memoryCase()); }
TEST(VptxUopDiffTest, BranchDivergenceBitIdentical)
{
    runCase(branchCase());
}
TEST(VptxUopDiffTest, CallRetWindowsBitIdentical)
{
    runCase(callRetCase());
}
TEST(VptxUopDiffTest, RtFrameOpsBitIdentical) { runCase(rtFrameCase()); }
TEST(VptxUopDiffTest, ReportAndCommitBitIdentical)
{
    runCase(reportCommitCase());
}
TEST(VptxUopDiffTest, CoalescedCallLookupBitIdentical)
{
    runCase(fccCase());
}

// --- end-to-end: a real ray-tracing launch in lockstep ------------------

/**
 * Drive every warp of two identical workload launches through the
 * structural and micro-op executors in lockstep (including parked
 * traverseAS splits), then byte-compare the rendered framebuffers.
 */
std::uint64_t
lockstepLaunch(const LaunchContext &ca, const LaunchContext &cb,
               std::set<Opcode> *coverage)
{
    ExecOptions structural;
    structural.structuralDispatch = true;
    WarpExecutor ea(ca, structural);
    WarpExecutor eb(cb);

    const std::uint32_t total = ca.totalThreads();
    const std::uint32_t num_warps = (total + kWarpSize - 1) / kWarpSize;
    std::uint64_t steps = 0;
    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Warp wa, wb;
        initWarp(wa, w, ca, WarpCflow::Mode::Stack);
        initWarp(wb, w, cb, WarpCflow::Mode::Stack);
        steps += runWarpLockstep(ea, wa, eb, wb, coverage);
        if (::testing::Test::HasFailure())
            break;
    }
    EXPECT_EQ(ea.decodeCount(), 0u);
    EXPECT_EQ(eb.decodeCount(), steps);
    return steps;
}

TEST(VptxUopDiffTest, RayTracingWorkloadLockstep)
{
    wl::WorkloadParams p;
    p.width = 8;
    p.height = 8;
    wl::Workload a(wl::WorkloadId::REF, p);
    wl::Workload b(wl::WorkloadId::REF, p);

    std::set<Opcode> cov;
    lockstepLaunch(a.launch(), b.launch(), &cov);
    EXPECT_TRUE(cov.count(Opcode::TraverseAS))
        << "workload did not exercise traverseAS";

    // The two worlds rendered the same image, byte for byte.
    Addr fba = a.framebuffer();
    Addr fbb = b.framebuffer();
    for (unsigned i = 0; i < 8 * 8 * 3; ++i) {
        std::uint32_t va =
            a.device().memory().load<std::uint32_t>(fba + 4ull * i);
        std::uint32_t vb =
            b.device().memory().load<std::uint32_t>(fbb + 4ull * i);
        ASSERT_EQ(va, vb) << "pixel component " << i;
    }
}

// --- full-ISA coverage gate ---------------------------------------------

TEST(VptxUopDiffTest, EveryOpcodeCovered)
{
    std::set<Opcode> cov;
    for (const DiffCase &c : microCases())
        runCase(c, &cov);

    // traverseAS needs a real acceleration structure: cover it (and the
    // shader-library idiom of every other opcode) via the REF workload.
    wl::WorkloadParams p;
    p.width = 8;
    p.height = 8;
    wl::Workload a(wl::WorkloadId::REF, p);
    wl::Workload b(wl::WorkloadId::REF, p);
    lockstepLaunch(a.launch(), b.launch(), &cov);

    const auto last =
        static_cast<unsigned>(Opcode::GetNextCoalescedCall);
    for (unsigned op = 0; op <= last; ++op)
        EXPECT_TRUE(cov.count(static_cast<Opcode>(op)))
            << "opcode " << op
            << " never executed through the differential sweep";
}

// --- decode-count regressions (one decode per dynamic instruction) ------

TEST(DecodeCountTest, FunctionalRunnerDecodesOncePerInstruction)
{
    // Divergent control flow: the predecoded micro-op must be reused
    // across split/reconvergence, never decoded twice per dynamic
    // instruction.
    Side s;
    s.init(branchCase().code, 8, /*structural=*/false);
    FunctionalRunner runner(s.ctx);
    runner.run();
    EXPECT_GT(runner.decodeCount(), 0u);
    EXPECT_EQ(runner.decodeCount(), runner.stats().get("instructions"));
}

TEST(DecodeCountTest, FunctionalWorkloadDecodesOncePerInstruction)
{
    wl::WorkloadParams p;
    p.width = 8;
    p.height = 8;
    wl::Workload w(wl::WorkloadId::REF, p);
    FunctionalRunner runner(w.launch());
    runner.run();
    EXPECT_GT(runner.decodeCount(), 0u);
    EXPECT_EQ(runner.decodeCount(), runner.stats().get("instructions"));
}

TEST(DecodeCountTest, TimedDecodesEqualIssueAttempts)
{
    // The SM fetches exactly one micro-op per issue attempt: decodes ==
    // issued instructions + stalled attempts, nothing more.
    wl::WorkloadParams p;
    p.width = 16;
    p.height = 16;
    wl::Workload w(wl::WorkloadId::REF, p);
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 2;
    cfg.fabric.numPartitions = 2;
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(run.core.get("issued"), 0u);
    EXPECT_EQ(run.uopDecodes,
              run.core.get("issued") + run.core.get("stall_scoreboard")
                  + run.core.get("stall_ldst_queue")
                  + run.core.get("stall_sfu")
                  + run.core.get("stall_rt_full"));
}

} // namespace
} // namespace vksim::vptx
