/**
 * @file
 * End-to-end functional-simulation tests: each workload rendered through
 * the full pipeline (NIR shaders -> translator -> VPTX -> functional
 * executor -> RT runtime -> serialized BVH) must match the independent
 * CPU reference renderer (the paper's Figure 2 fidelity check).
 */

#include <gtest/gtest.h>

#include "workloads/workload.h"

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

WorkloadParams
smallParams(WorkloadId id, unsigned size)
{
    WorkloadParams p;
    p.width = size;
    p.height = size;
    p.extScale = 0.1f;
    p.rtv5Detail = 3;
    p.rtv6Prims = 400;
    return p;
}

class FunctionalFidelityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FunctionalFidelityTest, MatchesReferenceRenderer)
{
    auto id = static_cast<WorkloadId>(GetParam());
    unsigned size = (id == WorkloadId::EXT || id == WorkloadId::RTV5)
                        ? 24u
                        : 32u;
    Workload workload(id, smallParams(id, size));
    Image sim = workload.runFunctional();
    Image ref = workload.renderReferenceImage();

    ImageDiff diff = compareImages(sim, ref, 1.0f / 255.0f);
    // The paper reports 0.3 % differing pixels against NVIDIA hardware;
    // our executor mirrors the reference evaluation order, so we demand
    // even tighter agreement.
    EXPECT_LT(diff.differingFraction(), 0.005)
        << wl::workloadName(id) << ": " << diff.differingPixels << "/"
        << diff.totalPixels << " pixels differ (max delta "
        << diff.maxChannelDelta << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FunctionalFidelityTest,
    ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            wl::workloadName(static_cast<WorkloadId>(info.param)));
    });

TEST(FunctionalModesTest, AccumMatchesReferenceAcrossFrames)
{
    // Three accumulated frames through the cross-frame buffer must match
    // the reference renderer's own three-frame average (identical float
    // operation order: per-frame sums resolved by one multiply).
    WorkloadParams params = smallParams(WorkloadId::ACC, 24);
    params.frames = 3;
    Workload workload(WorkloadId::ACC, params);
    Image sim = workload.runFunctional();
    for (unsigned f = 1; f < params.frames; ++f) {
        workload.beginFrame(f);
        sim = workload.runFunctional();
    }
    Image ref = workload.renderReferenceImage();
    ImageDiff diff = compareImages(sim, ref, 1.0f / 255.0f);
    EXPECT_LT(diff.differingFraction(), 0.005)
        << diff.differingPixels << "/" << diff.totalPixels
        << " pixels differ (max delta " << diff.maxChannelDelta << ")";
}

TEST(FunctionalModesTest, ItsRendersIdenticalImage)
{
    Workload workload(WorkloadId::RTV6,
                      smallParams(WorkloadId::RTV6, 24));
    Image stack = workload.runFunctional(vptx::WarpCflow::Mode::Stack);
    Image its = workload.runFunctional(vptx::WarpCflow::Mode::Its);
    ImageDiff diff = compareImages(stack, its, 0.f);
    EXPECT_EQ(diff.differingPixels, 0u)
        << "ITS must not change functional results";
}

TEST(FunctionalModesTest, FccRendersIdenticalImage)
{
    WorkloadParams params = smallParams(WorkloadId::RTV6, 24);
    Workload baseline(WorkloadId::RTV6, params);
    params.fcc = true;
    Workload fcc(WorkloadId::RTV6, params);
    Image img_base = baseline.runFunctional();
    Image img_fcc = fcc.runFunctional();
    ImageDiff diff = compareImages(img_base, img_fcc, 0.f);
    EXPECT_EQ(diff.differingPixels, 0u)
        << "FCC must not change functional results";
}

TEST(InstructionMixTest, AluDominatesAsInPaper)
{
    Workload workload(WorkloadId::EXT, smallParams(WorkloadId::EXT, 24));
    StatGroup stats;
    workload.runFunctional(vptx::WarpCflow::Mode::Stack, &stats);

    double total = static_cast<double>(stats.get("instructions"));
    ASSERT_GT(total, 0);
    double alu = static_cast<double>(stats.get("alu")) / total;
    double mem = static_cast<double>(stats.get("ldst")) / total;
    double rt = static_cast<double>(stats.get("trace_ray")) / total;
    // Paper Sec. VI: ~60 % ALU, ~25 % memory, ~1 % trace ray.
    EXPECT_GT(alu, 0.35);
    EXPECT_GT(mem, 0.10);
    EXPECT_LT(rt, 0.05);
    EXPECT_GT(rt, 0.0);
}

} // namespace
} // namespace vksim
