/**
 * @file
 * GPU-core model tests: determinism, occupancy limits, scheduler
 * behaviour, scaling with SM count, issue accounting, and the
 * interaction between the SM and the RT unit under contention.
 */

#include <gtest/gtest.h>

#include "core/vulkansim.h"
#include "service/service.h"

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

WorkloadParams
tiny(WorkloadId id)
{
    WorkloadParams p;
    p.width = 16;
    p.height = 16;
    p.extScale = 0.1f;
    p.rtv5Detail = 3;
    p.rtv6Prims = 300;
    return p;
}

GpuConfig
smallConfig(unsigned sms = 4)
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = sms;
    cfg.fabric.numPartitions = 2;
    return cfg;
}

TEST(GpuTest, RunsAreDeterministic)
{
    Cycle first = 0;
    for (int run = 0; run < 3; ++run) {
        Workload w(WorkloadId::REF, tiny(WorkloadId::REF));
        RunResult r = service::defaultService().submit(w, smallConfig()).take().run;
        if (run == 0)
            first = r.cycles;
        else
            EXPECT_EQ(r.cycles, first) << "run " << run;
    }
}

TEST(GpuTest, MoreSmsNeverSlower)
{
    WorkloadParams p = tiny(WorkloadId::EXT);
    p.width = 32;
    p.height = 32;
    Workload w1(WorkloadId::EXT, p);
    Cycle one_sm = service::defaultService().submit(w1, smallConfig(1)).take().run.cycles;
    Workload w4(WorkloadId::EXT, p);
    Cycle four_sm = service::defaultService().submit(w4, smallConfig(4)).take().run.cycles;
    EXPECT_LT(four_sm, one_sm);
}

TEST(GpuTest, WarpLimitRespectsRegisterFile)
{
    // Shrink the register file: the per-SM warp limit must shrink too,
    // and the run must still complete correctly.
    WorkloadParams p = tiny(WorkloadId::REF);
    Workload w(WorkloadId::REF, p);
    GpuConfig cfg = smallConfig(2);
    cfg.regsPerSm = 8192; // few warps worth of registers
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(run.cycles, 0u);
    EXPECT_EQ(compareImages(w.readFramebuffer(), w.renderReferenceImage())
                  .differingPixels,
              0u);
}

TEST(GpuTest, HigherLatencyMemorySlowsExecution)
{
    WorkloadParams p = tiny(WorkloadId::EXT);
    Workload w1(WorkloadId::EXT, p);
    Cycle fast = service::defaultService().submit(w1, smallConfig()).take().run.cycles;
    GpuConfig slow_cfg = smallConfig();
    slow_cfg.l1.latency = 80;
    slow_cfg.fabric.l2.latency = 500;
    Workload w2(WorkloadId::EXT, p);
    Cycle slow = service::defaultService().submit(w2, slow_cfg).take().run.cycles;
    EXPECT_GT(slow, fast);
}

TEST(GpuTest, SmallerL1IncreasesMisses)
{
    WorkloadParams p = tiny(WorkloadId::EXT);
    auto misses = [&](Addr l1_size) {
        Workload w(WorkloadId::EXT, p);
        GpuConfig cfg = smallConfig();
        cfg.l1.sizeBytes = l1_size;
        RunResult r = service::defaultService().submit(w, cfg).take().run;
        return r.l1.get("miss_capacity_conflict.shader")
               + r.l1.get("miss_capacity_conflict.rtunit");
    };
    EXPECT_GT(misses(2 * 1024), misses(64 * 1024));
}

TEST(GpuTest, IssueWidthImprovesThroughput)
{
    // Compare issue widths with a perfect BVH so the measurement isolates
    // the issue stage: with real node-fetch latency this tiny workload is
    // RT-memory bound and the width-2 margin sits inside model noise (the
    // seed passed by 0.26 % of total cycles).
    WorkloadParams p = tiny(WorkloadId::REF);
    p.width = 32;
    p.height = 32;
    Workload w1(WorkloadId::REF, p);
    GpuConfig narrow = smallConfig(2);
    narrow.rt.perfectBvh = true;
    narrow.issueWidth = 1;
    Cycle one = service::defaultService().submit(w1, narrow).take().run.cycles;
    Workload w2(WorkloadId::REF, p);
    GpuConfig wide = smallConfig(2);
    wide.rt.perfectBvh = true;
    wide.issueWidth = 2;
    Cycle two = service::defaultService().submit(w2, wide).take().run.cycles;
    EXPECT_LT(two, one);
}

TEST(GpuTest, RtStallCounterFiresWhenUnitSaturated)
{
    WorkloadParams p = tiny(WorkloadId::EXT);
    p.width = 32;
    p.height = 32;
    Workload w(WorkloadId::EXT, p);
    GpuConfig cfg = smallConfig(1);
    cfg.rt.maxWarps = 1; // single RT slot: issue stalls expected
    RunResult run = service::defaultService().submit(w, cfg).take().run;
    EXPECT_GT(run.core.get("stall_rt_full"), 0u);
}

TEST(GpuTest, AllIssuedWorkIsAccounted)
{
    for (SchedPolicy sched : {SchedPolicy::GTO, SchedPolicy::LRR}) {
        Workload w(WorkloadId::RTV6, tiny(WorkloadId::RTV6));
        GpuConfig cfg = smallConfig();
        cfg.sched = sched;
        RunResult run = service::defaultService().submit(w, cfg).take().run;
        // Per-unit issue counts sum to the total.
        EXPECT_EQ(run.core.get("issued"),
                  run.core.get("issue_alu") + run.core.get("issue_sfu")
                      + run.core.get("issue_ldst")
                      + run.core.get("issue_rt")
                      + run.core.get("issue_ctrl"));
        // Each trace-ray issue corresponds to one RT-unit warp.
        EXPECT_EQ(run.core.get("issue_rt"),
                  run.rt.get("warps_submitted"));
    }
}

TEST(GpuTest, FunctionalAndTimedInstructionCountsMatch)
{
    // The timed model executes functionally at issue; its dynamic
    // instruction count must equal the functional runner's.
    WorkloadParams p = tiny(WorkloadId::REF);
    Workload wf(WorkloadId::REF, p);
    StatGroup fstats;
    wf.runFunctional(vptx::WarpCflow::Mode::Stack, &fstats);

    Workload wt(WorkloadId::REF, p);
    RunResult run = service::defaultService().submit(wt, smallConfig()).take().run;
    EXPECT_EQ(run.core.get("issued"), fstats.get("instructions"));
}

TEST(GpuTest, MobileConfigIsSlowerThanBaseline)
{
    WorkloadParams p = tiny(WorkloadId::EXT);
    p.width = 32;
    p.height = 32;
    Workload w1(WorkloadId::EXT, p);
    Cycle base = service::defaultService().submit(w1, baselineGpuConfig()).take().run.cycles;
    Workload w2(WorkloadId::EXT, p);
    Cycle mobile = service::defaultService().submit(w2, mobileGpuConfig()).take().run.cycles;
    EXPECT_GT(mobile, base) << "8 SMs with half bandwidth must be slower";
}

} // namespace
} // namespace vksim
