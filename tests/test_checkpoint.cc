/**
 * @file
 * The persistence acceptance suite (DESIGN.md, "Persistence & recovery
 * contract"): engine snapshots taken at epoch barriers must restore
 * into a fresh engine bit-identically — digest trace, metrics JSON,
 * occupancy trace, and rendered image all equal to the uninterrupted
 * oracle — for every thread count, idle-skip setting, and epoch length,
 * and *across* those execution modes (a snapshot from a threaded
 * epoch-stepped run restores into a serial lock-step engine). The
 * on-disk halves are held to the same standard: snapshot files and
 * DiskStore artifacts verify their payload digests on load, and corrupt
 * bytes are never served — a truncated or bit-flipped file is an
 * actionable error (snapshots) or a silent evict-and-rebuild
 * (artifacts).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/vulkansim.h"
#include "gpu/checkpoint.h"
#include "service/artifacts.h"
#include "service/diskstore.h"
#include "util/serial.h"
#include "service/service.h"

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.width = 16;
    p.height = 16;
    p.extScale = 0.1f;
    p.rtv5Detail = 3;
    p.rtv6Prims = 400;
    return p;
}

/** Per-workload launch sizes keeping the sweep's runtime in budget:
 *  RTV5 traces far more work per ray than TRI, so it sweeps at 8x8. */
WorkloadParams
paramsFor(WorkloadId id)
{
    WorkloadParams p = tinyParams();
    if (id == WorkloadId::RTV5)
        p.width = p.height = 8;
    return p;
}

GpuConfig
engineConfig(bool idle_skip, unsigned threads, unsigned epoch_cycles)
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 8;
    cfg.fabric.numPartitions = 2;
    cfg.maxCycles = 100'000'000;
    cfg.occupancySamplePeriod = 64;
    cfg.digestTrace = true;
    cfg.idleSkip = idle_skip;
    cfg.threads = threads;
    cfg.epochCycles = epoch_cycles;
    return cfg;
}

/** A per-test scratch directory, wiped on entry for idempotent reruns. */
std::string
scratchDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "vksim_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
readAllBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<std::uint8_t> bytes;
    if (f) {
        std::uint8_t chunk[4096];
        std::size_t n;
        while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
            bytes.insert(bytes.end(), chunk, chunk + n);
        std::fclose(f);
    }
    return bytes;
}

void
writeAllBytes(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

/**
 * The restored-run acceptance check: everything observable about a
 * resumed run must match the oracle. The resumed digest trace covers
 * only the suffix it executed; firstDivergence() aligns the traces on
 * their common cycle range.
 */
void
expectResumedRunMatches(const RunResult &oracle, const Image &oracle_img,
                        const RunResult &resumed, Workload &resumed_wl)
{
    EXPECT_EQ(resumed.cycles, oracle.cycles);
    EXPECT_EQ(resumed.metrics.toJson(), oracle.metrics.toJson());
    EXPECT_EQ(resumed.occupancyTrace, oracle.occupancyTrace);
    ASSERT_EQ(resumed.digests.units, oracle.digests.units);
    ASSERT_EQ(resumed.digests.period, oracle.digests.period);
    EXPECT_GT(resumed.digests.start, 0u);
    EXPECT_LT(resumed.digests.values.size(), oracle.digests.values.size());
    check::DigestTrace::Divergence d =
        oracle.digests.firstDivergence(resumed.digests);
    EXPECT_FALSE(d.diverged)
        << "restored run first diverges from the oracle at cycle "
        << d.cycle << ", unit " << d.unit;
    EXPECT_EQ(oracle_img.data(), resumed_wl.readFramebuffer().data());
}

class CheckpointRoundTripTest : public ::testing::TestWithParam<int>
{
};

/**
 * The tentpole acceptance sweep: run to a pseudo-random epoch barrier,
 * snapshot, restore into a fresh engine, and require the restored run
 * to be bit-identical to the uninterrupted oracle over {serial, 4
 * threads} x {idle-skip on/off} x epoch lengths {1, 64}. The snapshot
 * leg itself must also be unperturbed — capturing is observational.
 */
TEST_P(CheckpointRoundTripTest, RestoredRunMatchesOracle)
{
    auto id = static_cast<WorkloadId>(GetParam());

    const WorkloadParams params = paramsFor(id);
    Workload oracle_wl(id, params);
    RunResult oracle = service::defaultService().submit(
        oracle_wl, engineConfig(/*idle_skip=*/false, 1, /*epoch=*/1)).take().run;
    Image oracle_img = oracle_wl.readFramebuffer();
    const Cycle total = oracle.cycles;
    ASSERT_GT(total, 16u);

    std::mt19937 rng(0xC0FFEEu + static_cast<unsigned>(GetParam()));
    for (unsigned epoch : {1u, 64u}) {
        for (unsigned threads : {1u, 4u}) {
            for (bool skip : {false, true}) {
                SCOPED_TRACE(::testing::Message()
                             << "epoch=" << epoch << " threads=" << threads
                             << " idleSkip=" << skip);
                const Cycle want =
                    total / 4 + rng() % std::max<Cycle>(1, total / 2);

                GpuConfig snap_cfg = engineConfig(skip, threads, epoch);
                snap_cfg.checkpoint.snapshotAt = want;
                Workload snap_wl(id, params);
                RunResult snap_run = service::defaultService().submit(snap_wl, snap_cfg).take().run;

                // Capturing must not perturb the run it observes.
                EXPECT_EQ(snap_run.cycles, oracle.cycles);
                EXPECT_EQ(snap_run.metrics.toJson(),
                          oracle.metrics.toJson());
                ASSERT_NE(snap_run.snapshot, nullptr);
                EXPECT_GE(snap_run.snapshot->cycle, want);
                EXPECT_LT(snap_run.snapshot->cycle, total);

                GpuConfig res_cfg = engineConfig(skip, threads, epoch);
                res_cfg.checkpoint.resume = snap_run.snapshot;
                Workload res_wl(id, params);
                RunResult resumed = service::defaultService().submit(res_wl, res_cfg).take().run;
                expectResumedRunMatches(oracle, oracle_img, resumed,
                                        res_wl);
            }
        }
    }
}

// AHA is in the sweep for its suspension density: hundreds of immediate
// any-hit suspensions, each parking a lane mid-traversal for tens of
// cycles, so the pseudo-random snapshot points land inside suspension
// windows — the snapshot must carry a lane frozen between RT-unit
// suspension and shader-core verdict. RQC covers live ray-query frames
// (a compute shader holding an RT frame open across the snapshot).
INSTANTIATE_TEST_SUITE_P(
    Workloads, CheckpointRoundTripTest,
    ::testing::Values(static_cast<int>(WorkloadId::TRI),
                      static_cast<int>(WorkloadId::RTV5),
                      static_cast<int>(WorkloadId::RQC),
                      static_cast<int>(WorkloadId::AHA)),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            wl::workloadName(static_cast<WorkloadId>(info.param)));
    });

/**
 * Multi-frame runs must survive interruption at any frame boundary *and*
 * mid-frame: frame 0 of a two-frame ACC run is snapshotted mid-flight
 * and restored into a fresh engine + fresh workload, then frame 1 runs
 * on the restored instance. Its device memory — the accumulation sums
 * and rotated seed frame 1 reads — came entirely from the snapshot, so
 * the final accumulated image must be byte-identical to both the
 * uninterrupted manual drive and the service's own frames=2 loop.
 */
TEST(CheckpointTest, MultiFrameAccumulationSurvivesMidFrameRestore)
{
    WorkloadParams two = tinyParams();
    two.frames = 2;
    Workload svc_wl(WorkloadId::ACC, two);
    RunResult svc_run = service::defaultService().submit(
        svc_wl, engineConfig(false, 1, 1)).take().run;
    Image svc_img = svc_wl.readFramebuffer();

    // Uninterrupted manual drive of the same two frames.
    WorkloadParams one = tinyParams();
    Workload plain_wl(WorkloadId::ACC, one);
    RunResult frame0 = service::defaultService().submit(
        plain_wl, engineConfig(false, 1, 1)).take().run;
    plain_wl.beginFrame(1);
    RunResult frame1 = service::defaultService().submit(
        plain_wl, engineConfig(false, 1, 1)).take().run;
    EXPECT_EQ(svc_run.cycles, frame0.cycles + frame1.cycles);
    EXPECT_EQ(svc_img.data(), plain_wl.readFramebuffer().data());

    // Interrupted drive: snapshot frame 0 mid-run, restore, continue.
    GpuConfig snap_cfg = engineConfig(false, 1, 1);
    snap_cfg.checkpoint.snapshotAt = frame0.cycles / 2;
    Workload snap_wl(WorkloadId::ACC, one);
    RunResult snap_run = service::defaultService().submit(snap_wl, snap_cfg).take().run;
    ASSERT_NE(snap_run.snapshot, nullptr);

    GpuConfig res_cfg = engineConfig(false, 1, 1);
    res_cfg.checkpoint.resume = snap_run.snapshot;
    Workload res_wl(WorkloadId::ACC, one);
    RunResult res_frame0 = service::defaultService().submit(res_wl, res_cfg).take().run;
    EXPECT_EQ(res_frame0.cycles, frame0.cycles);

    res_wl.beginFrame(1);
    RunResult res_frame1 = service::defaultService().submit(
        res_wl, engineConfig(false, 1, 1)).take().run;
    EXPECT_EQ(res_frame1.cycles, frame1.cycles);
    // Frame 1 after the restore must be indistinguishable from frame 1
    // after the uninterrupted run — same metrics, same final image.
    EXPECT_EQ(res_frame1.metrics.toJson(), frame1.metrics.toJson());
    EXPECT_EQ(svc_img.data(), res_wl.readFramebuffer().data());
}

/**
 * Snapshots must move freely across execution modes: a snapshot taken
 * by a 4-thread epoch-stepped idle-skipping engine restores into a
 * serial lock-step engine (and back) with bit-identical results.
 */
TEST(CheckpointTest, SnapshotCrossesExecutionModes)
{
    Workload oracle_wl(WorkloadId::TRI, tinyParams());
    RunResult oracle = service::defaultService().submit(oracle_wl, engineConfig(false, 1, 1)).take().run;
    Image oracle_img = oracle_wl.readFramebuffer();

    GpuConfig threaded = engineConfig(true, 4, 64);
    threaded.checkpoint.snapshotAt = oracle.cycles / 2;
    Workload snap_wl(WorkloadId::TRI, tinyParams());
    RunResult snap_run = service::defaultService().submit(snap_wl, threaded).take().run;
    ASSERT_NE(snap_run.snapshot, nullptr);

    // Threaded epoch-stepped snapshot -> serial lock-step engine.
    GpuConfig serial = engineConfig(false, 1, 1);
    serial.checkpoint.resume = snap_run.snapshot;
    Workload serial_wl(WorkloadId::TRI, tinyParams());
    RunResult serial_run = service::defaultService().submit(serial_wl, serial).take().run;
    expectResumedRunMatches(oracle, oracle_img, serial_run, serial_wl);

    // And back: serial lock-step snapshot -> threaded epoch engine.
    GpuConfig lockstep = engineConfig(false, 1, 1);
    lockstep.checkpoint.snapshotAt = oracle.cycles / 3;
    Workload lock_wl(WorkloadId::TRI, tinyParams());
    RunResult lock_run = service::defaultService().submit(lock_wl, lockstep).take().run;
    ASSERT_NE(lock_run.snapshot, nullptr);

    GpuConfig threaded2 = engineConfig(true, 4, 64);
    threaded2.checkpoint.resume = lock_run.snapshot;
    Workload threaded_wl(WorkloadId::TRI, tinyParams());
    RunResult threaded_run = service::defaultService().submit(threaded_wl, threaded2).take().run;
    expectResumedRunMatches(oracle, oracle_img, threaded_run, threaded_wl);
}

/** One run with a one-shot snapshot request; returns the barrier hit. */
Cycle
snapshotCycle(const GpuConfig &base, Cycle at, bool exact)
{
    GpuConfig cfg = base;
    cfg.checkpoint.snapshotAt = at;
    cfg.checkpoint.exact = exact;
    Workload wl(WorkloadId::TRI, tinyParams());
    RunResult run = service::defaultService().submit(wl, cfg).take().run;
    EXPECT_NE(run.snapshot, nullptr);
    return run.snapshot ? run.snapshot->cycle : ~Cycle(0);
}

/**
 * Snapshots are only defined at epoch barriers. With exact=false the
 * request rounds up to the next barrier; with exact=true a mid-epoch
 * cycle is a hard API error, not a silent approximation.
 */
TEST(CheckpointTest, ExactSnapshotMustLandOnBarrier)
{
    Workload plain_wl(WorkloadId::TRI, tinyParams());
    const Cycle total =
        service::defaultService().submit(plain_wl, engineConfig(false, 1, 64)).take().run.cycles;
    ASSERT_GT(total, 16u);

    const GpuConfig epoch64 = engineConfig(false, 1, 64);
    const Cycle barrier = snapshotCycle(epoch64, total / 2, false);
    ASSERT_LT(barrier, total);

    // exact=true at a real barrier succeeds and lands exactly there.
    EXPECT_EQ(snapshotCycle(epoch64, barrier, true), barrier);

    // Find a cycle that is provably mid-epoch: a non-exact request at
    // `probe` landing *later* than `probe` means `probe` is no barrier.
    Cycle probe = barrier + 1;
    bool found_mid_epoch = false;
    for (int attempts = 0; attempts < 8 && probe < total; ++attempts) {
        const Cycle landed = snapshotCycle(epoch64, probe, false);
        if (landed > probe) {
            found_mid_epoch = true;
            break;
        }
        probe = landed + 1;
    }
    ASSERT_TRUE(found_mid_epoch)
        << "every probed cycle was a barrier; epoch structure changed?";
    try {
        snapshotCycle(epoch64, probe, true);
        FAIL() << "exact mid-epoch snapshot at cycle " << probe
               << " did not throw";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("barrier"),
                  std::string::npos)
            << e.what();
    }

    // A lock-step engine (epochCycles=1) has a barrier at every cycle,
    // so the same exact request that failed above succeeds there.
    EXPECT_EQ(snapshotCycle(engineConfig(false, 1, 1), probe, true), probe);
}

/** A snapshot request beyond the end of the run is an error, not a
 *  silently absent RunResult::snapshot. */
TEST(CheckpointTest, SnapshotBeyondEndOfRunIsAnError)
{
    Workload plain_wl(WorkloadId::TRI, tinyParams());
    const Cycle total =
        service::defaultService().submit(plain_wl, engineConfig(false, 1, 1)).take().run.cycles;

    GpuConfig cfg = engineConfig(false, 1, 1);
    cfg.checkpoint.snapshotAt = total * 2;
    Workload wl(WorkloadId::TRI, tinyParams());
    try {
        service::defaultService().submit(wl, cfg).take().run;
        FAIL() << "snapshot request beyond the run did not throw";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("never reached"),
                  std::string::npos)
            << e.what();
    }
}

/** A snapshot only restores under the structural config it was taken
 *  under; behavior-neutral knobs are excluded from the digest. */
TEST(CheckpointTest, ResumeRejectsDifferentStructuralConfig)
{
    GpuConfig cfg = engineConfig(false, 1, 1);
    Workload wl(WorkloadId::TRI, tinyParams());
    cfg.checkpoint.snapshotAt = 64;
    RunResult run = service::defaultService().submit(wl, cfg).take().run;
    ASSERT_NE(run.snapshot, nullptr);

    GpuConfig other = engineConfig(false, 1, 1);
    other.numSms = 4; // structural change
    other.checkpoint.resume = run.snapshot;
    Workload other_wl(WorkloadId::TRI, tinyParams());
    try {
        service::defaultService().submit(other_wl, other).take().run;
        FAIL() << "resume under a different structural config did not "
                  "throw";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("structural"),
                  std::string::npos)
            << e.what();
    }

    // The digest deliberately ignores execution-mode knobs...
    GpuConfig modes = engineConfig(true, 4, 64);
    EXPECT_EQ(gpuConfigDigest(engineConfig(false, 1, 1)),
              gpuConfigDigest(modes));
    // ...but tracks anything that shapes simulated behavior.
    GpuConfig structural = engineConfig(false, 1, 1);
    structural.fabric.icntLatency += 1;
    EXPECT_NE(gpuConfigDigest(engineConfig(false, 1, 1)),
              gpuConfigDigest(structural));
}

TEST(CheckpointTest, ValidateRejectsBadCheckpointCombos)
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.checkpoint.every = 1024; // no path
    EXPECT_FALSE(cfg.validate().empty());

    cfg = baselineGpuConfig();
    cfg.checkpoint.every = 1024;
    cfg.checkpoint.path = "/tmp/snap.ckpt";
    EXPECT_TRUE(cfg.validate().empty());

    cfg.timeline.path = "/tmp/timeline.json";
    EXPECT_FALSE(cfg.validate().empty());
}

/**
 * The auto-checkpoint loop end to end: a run with --checkpoint-every
 * semantics leaves a verifiable snapshot file behind, and a fresh
 * engine resumed from that file finishes bit-identically.
 */
TEST(CheckpointTest, AutoCheckpointWritesResumableFile)
{
    const std::string dir = scratchDir("auto_ckpt");
    const std::string path = dir + "/job.ckpt";

    Workload oracle_wl(WorkloadId::TRI, tinyParams());
    RunResult oracle = service::defaultService().submit(oracle_wl, engineConfig(false, 1, 1)).take().run;
    Image oracle_img = oracle_wl.readFramebuffer();

    GpuConfig cfg = engineConfig(false, 1, 64);
    cfg.checkpoint.every = std::max<Cycle>(64, oracle.cycles / 4);
    cfg.checkpoint.path = path;
    Workload wl(WorkloadId::TRI, tinyParams());
    RunResult run = service::defaultService().submit(wl, cfg).take().run;
    EXPECT_EQ(run.cycles, oracle.cycles);

    EngineSnapshot snap = readSnapshotFile(path);
    EXPECT_GT(snap.cycle, 0u);
    EXPECT_LT(snap.cycle, oracle.cycles);
    EXPECT_EQ(snap.configDigest, gpuConfigDigest(cfg));

    GpuConfig res_cfg = engineConfig(false, 1, 64);
    res_cfg.checkpoint.resume =
        std::make_shared<EngineSnapshot>(std::move(snap));
    Workload res_wl(WorkloadId::TRI, tinyParams());
    RunResult resumed = service::defaultService().submit(res_wl, res_cfg).take().run;
    expectResumedRunMatches(oracle, oracle_img, resumed, res_wl);
}

// --- Snapshot file verification --------------------------------------------

EngineSnapshot
sampleSnapshot()
{
    EngineSnapshot snap;
    snap.cycle = 12345;
    snap.configDigest = 0xfeedfacecafef00dull;
    snap.bytes.resize(4096);
    for (std::size_t i = 0; i < snap.bytes.size(); ++i)
        snap.bytes[i] = static_cast<std::uint8_t>(i * 31 + 7);
    return snap;
}

TEST(SnapshotFileTest, RoundTrip)
{
    const std::string path = scratchDir("snapfile_rt") + "/s.ckpt";
    EngineSnapshot snap = sampleSnapshot();
    writeSnapshotFile(path, snap);
    EngineSnapshot back = readSnapshotFile(path);
    EXPECT_EQ(back.cycle, snap.cycle);
    EXPECT_EQ(back.configDigest, snap.configDigest);
    EXPECT_EQ(back.bytes, snap.bytes);
}

TEST(SnapshotFileTest, TruncatedFileIsAnActionableError)
{
    const std::string path = scratchDir("snapfile_trunc") + "/s.ckpt";
    writeSnapshotFile(path, sampleSnapshot());
    std::vector<std::uint8_t> bytes = readAllBytes(path);
    bytes.resize(bytes.size() - 7);
    writeAllBytes(path, bytes);
    try {
        readSnapshotFile(path);
        FAIL() << "truncated snapshot file did not throw";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SnapshotFileTest, BitFlipFailsDigestVerification)
{
    const std::string path = scratchDir("snapfile_flip") + "/s.ckpt";
    writeSnapshotFile(path, sampleSnapshot());
    std::vector<std::uint8_t> bytes = readAllBytes(path);
    // Header is magic(8) + version(4) + digest(8) + cycle(8) + size(8)
    // + payload digest(8) = 44 bytes; flip one payload bit.
    ASSERT_GT(bytes.size(), 60u);
    bytes[44 + 10] ^= 0x20;
    writeAllBytes(path, bytes);
    try {
        readSnapshotFile(path);
        FAIL() << "bit-flipped snapshot file did not throw";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
            << e.what();
    }
}

TEST(SnapshotFileTest, UnknownVersionIsAnActionableError)
{
    const std::string path = scratchDir("snapfile_ver") + "/s.ckpt";
    writeSnapshotFile(path, sampleSnapshot());
    std::vector<std::uint8_t> bytes = readAllBytes(path);
    // The u32 version field sits right after the 8-byte magic.
    bytes[8] = 0xff;
    bytes[9] = 0xff;
    writeAllBytes(path, bytes);
    try {
        readSnapshotFile(path);
        FAIL() << "unknown snapshot version did not throw";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
            << e.what();
    }
}

TEST(SnapshotFileTest, BadMagicAndMissingFileThrow)
{
    const std::string dir = scratchDir("snapfile_magic");
    const std::string path = dir + "/s.ckpt";
    writeAllBytes(path, {'n', 'o', 't', 'a', 's', 'n', 'a', 'p', 0, 0});
    EXPECT_THROW(readSnapshotFile(path), SimError);
    EXPECT_THROW(readSnapshotFile(dir + "/absent.ckpt"), SimError);
}

// --- DiskStore --------------------------------------------------------------

std::vector<std::uint8_t>
samplePayload()
{
    std::vector<std::uint8_t> payload(512);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    return payload;
}

TEST(DiskStoreTest, PutGetRoundTripAndMiss)
{
    service::DiskStore store(scratchDir("store_rt"));
    const std::vector<std::uint8_t> payload = samplePayload();

    EXPECT_FALSE(store.get(service::DiskStore::Kind::Bvh, 42).has_value());
    store.put(service::DiskStore::Kind::Bvh, 42, payload);
    auto back = store.get(service::DiskStore::Kind::Bvh, 42);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);

    // Kinds are separate namespaces: same key, different artifact.
    EXPECT_FALSE(
        store.get(service::DiskStore::Kind::Pipeline, 42).has_value());

    service::DiskStore::Counters c = store.counters();
    EXPECT_EQ(c.loads, 1u);
    EXPECT_EQ(c.stores, 1u);
    EXPECT_EQ(c.misses, 2u);
    EXPECT_EQ(c.corruptEvictions, 0u);
}

TEST(DiskStoreTest, CorruptArtifactIsEvictedNeverServed)
{
    service::DiskStore store(scratchDir("store_corrupt"));
    const auto kind = service::DiskStore::Kind::Result;
    store.put(kind, 7, samplePayload());

    // Bit-flip the payload on disk: get() must evict, not serve.
    std::vector<std::uint8_t> bytes = readAllBytes(store.path(kind, 7));
    bytes[bytes.size() - 3] ^= 0x01;
    writeAllBytes(store.path(kind, 7), bytes);

    EXPECT_FALSE(store.get(kind, 7).has_value());
    EXPECT_EQ(store.counters().corruptEvictions, 1u);
    EXPECT_FALSE(std::filesystem::exists(store.path(kind, 7)));

    // Re-storing rebuilds a healthy entry.
    store.put(kind, 7, samplePayload());
    ASSERT_TRUE(store.get(kind, 7).has_value());
    EXPECT_EQ(store.counters().corruptEvictions, 1u);
}

TEST(DiskStoreTest, TruncatedArtifactIsEvicted)
{
    service::DiskStore store(scratchDir("store_trunc"));
    const auto kind = service::DiskStore::Kind::Bvh;
    store.put(kind, 9, samplePayload());
    std::vector<std::uint8_t> bytes = readAllBytes(store.path(kind, 9));
    bytes.resize(bytes.size() / 2);
    writeAllBytes(store.path(kind, 9), bytes);

    EXPECT_FALSE(store.get(kind, 9).has_value());
    EXPECT_EQ(store.counters().corruptEvictions, 1u);
    EXPECT_FALSE(std::filesystem::exists(store.path(kind, 9)));
}

TEST(DiskStoreTest, KindAndKeyAreVerifiedNotTrusted)
{
    service::DiskStore store(scratchDir("store_key"));
    const auto kind = service::DiskStore::Kind::Bvh;
    store.put(kind, 1, samplePayload());

    // A file renamed under another key self-identifies as key 1 and is
    // rejected under key 2 — content addressing is verified, not
    // trusted from the filename.
    std::filesystem::copy_file(store.path(kind, 1), store.path(kind, 2));
    EXPECT_FALSE(store.get(kind, 2).has_value());
    EXPECT_EQ(store.counters().corruptEvictions, 1u);
    // The honest copy is untouched.
    EXPECT_TRUE(store.get(kind, 1).has_value());
}

// --- ArtifactCache disk layering -------------------------------------------

AccelImage
sampleImage()
{
    AccelImage image;
    image.baseBrk = 0x10000;
    image.endBrk = 0x20000;
    image.bytes = {1, 2, 3, 4, 5, 6, 7, 8};
    image.accel.tlasRoot = 0x10040;
    image.accel.blasRoots = {0x10100, 0x10200};
    image.accel.stats.tlasInternalNodes = 3;
    image.accel.stats.blasLeaves = 9;
    image.accel.stats.tlasDepth = 2;
    image.accel.stats.totalBytes = 8;
    image.regions.push_back({0x10000, 0x40, "tlas"});
    return image;
}

TEST(DiskStoreTest, CacheLayersOverDiskAcrossProcessLifetimes)
{
    const std::string root = scratchDir("store_layer");
    service::DiskStore store(root);
    int builds = 0;
    auto builder = [&]() {
        ++builds;
        return sampleImage();
    };

    // First "process": memory miss, disk miss, builder runs, stored.
    service::ArtifactCache first;
    first.setDiskStore(&store);
    auto a = first.bvh(0xabc, builder);
    EXPECT_EQ(builds, 1);
    EXPECT_TRUE(
        store.get(service::DiskStore::Kind::Bvh, 0xabc).has_value());

    // Second "process": fresh cache, same store — served from disk, the
    // builder never runs, and the decoded image is bit-identical.
    service::ArtifactCache second;
    second.setDiskStore(&store);
    auto b = second.bvh(0xabc, builder);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(a->bytes, b->bytes);
    EXPECT_EQ(a->baseBrk, b->baseBrk);
    EXPECT_EQ(a->accel.tlasRoot, b->accel.tlasRoot);
    EXPECT_EQ(a->accel.blasRoots, b->accel.blasRoots);
    ASSERT_EQ(a->regions.size(), b->regions.size());
    EXPECT_EQ(a->regions[0].label, b->regions[0].label);

    // Corrupt the stored artifact: the next fresh cache rebuilds and
    // re-stores instead of serving the corrupt bytes.
    std::vector<std::uint8_t> bytes =
        readAllBytes(store.path(service::DiskStore::Kind::Bvh, 0xabc));
    bytes.back() ^= 0x80;
    writeAllBytes(store.path(service::DiskStore::Kind::Bvh, 0xabc), bytes);

    service::ArtifactCache third;
    third.setDiskStore(&store);
    auto c = third.bvh(0xabc, builder);
    EXPECT_EQ(builds, 2);
    EXPECT_EQ(a->bytes, c->bytes);
    EXPECT_EQ(store.counters().corruptEvictions, 1u);

    // ...and the rebuild healed the store for the next consumer.
    service::ArtifactCache fourth;
    fourth.setDiskStore(&store);
    auto d = fourth.bvh(0xabc, builder);
    EXPECT_EQ(builds, 2);
    EXPECT_EQ(a->bytes, d->bytes);
}

TEST(DiskStoreTest, PipelineCodecRoundTrips)
{
    vptx::Instr instr{};
    instr.op = static_cast<vptx::Opcode>(3);
    instr.dst = 4;
    instr.src0 = -1;
    instr.src1 = 7;
    instr.src2 = 2;
    instr.size = 8;
    instr.target = 12;
    instr.reconv = 34;
    instr.imm = 0x123456789abcdef0ull;
    vptx::Program prog;
    prog.code = {instr};
    vptx::ShaderInfo shader;
    shader.name = "raygen_main";
    shader.stage = static_cast<vptx::ShaderStage>(0);
    shader.entryPc = 0;
    shader.numRegs = 24;
    prog.shaders = {shader};
    prog.raygenShader = 0;
    CompiledPipeline pipeline(std::move(prog), {{1, -1, 2, 0}}, {3}, true);

    serial::Writer w;
    service::encodePipeline(w, pipeline);
    serial::Reader r(w.buffer());
    CompiledPipeline back = service::decodePipeline(r);
    EXPECT_TRUE(r.done());
    ASSERT_EQ(back.program().code.size(), 1u);
    EXPECT_EQ(back.program().code[0].op, instr.op);
    EXPECT_EQ(back.program().code[0].dst, instr.dst);
    EXPECT_EQ(back.program().code[0].src0, instr.src0);
    EXPECT_EQ(back.program().code[0].imm, instr.imm);
    ASSERT_EQ(back.program().shaders.size(), 1u);
    EXPECT_EQ(back.program().shaders[0].name, "raygen_main");
    EXPECT_EQ(back.program().shaders[0].numRegs, 24u);
    ASSERT_EQ(back.hitGroups().size(), 1u);
    EXPECT_EQ(back.hitGroups()[0].closestHit, 1);
    EXPECT_EQ(back.hitGroups()[0].anyHit, -1);
    EXPECT_EQ(back.missShaders(), pipeline.missShaders());
    EXPECT_TRUE(back.fcc());
    // The micro-op stream is never serialized — decode rebuilds it, and
    // it must match one built directly from the same program.
    ASSERT_EQ(back.uops().size(), pipeline.uops().size());
    EXPECT_EQ(back.uops().at(0).op, pipeline.uops().at(0).op);
    EXPECT_EQ(back.uops().at(0).dst, pipeline.uops().at(0).dst);
    EXPECT_EQ(back.uops().at(0).imm, pipeline.uops().at(0).imm);
}

} // namespace
} // namespace vksim
