/**
 * @file
 * Unit tests for the VPTX layer: SIMT-stack and ITS control flow,
 * executor ALU semantics, call/ret register windows, and the trace-ray
 * frame helpers.
 */

#include <gtest/gtest.h>

#include "vptx/exec.h"
#include "vptx/rt_runtime.h"

namespace vksim::vptx {
namespace {

// --- WarpCflow ----------------------------------------------------------

TEST(WarpCflowStackTest, UniformFlowSingleSplit)
{
    WarpCflow cf;
    cf.init(0, 0xFFFFFFFFu, WarpCflow::Mode::Stack);
    EXPECT_EQ(cf.runnableCount(), 1u);
    cf.advance(0, 1);
    EXPECT_EQ(cf.split(0).pc, 1u);
    EXPECT_EQ(cf.split(0).mask, 0xFFFFFFFFu);
}

TEST(WarpCflowStackTest, DivergeRunsTakenFirstThenJoins)
{
    WarpCflow cf;
    cf.init(10, 0xFu, WarpCflow::Mode::Stack);
    // Branch at pc 10: lanes 0,1 to 20; lanes 2,3 fall through to 11;
    // reconverge at 30.
    cf.diverge(0, 20, 0x3u, 11, 0xCu, 30);
    EXPECT_EQ(cf.split(0).pc, 20u);
    EXPECT_EQ(cf.split(0).mask, 0x3u);
    // Taken path reaches the reconvergence point.
    cf.advance(0, 30);
    EXPECT_EQ(cf.split(0).pc, 11u);
    EXPECT_EQ(cf.split(0).mask, 0xCu);
    // Fallthrough path reaches it too; everything joins.
    cf.advance(0, 30);
    EXPECT_EQ(cf.split(0).pc, 30u);
    EXPECT_EQ(cf.split(0).mask, 0xFu);
}

TEST(WarpCflowStackTest, BranchDirectlyToReconvDoesNotRunAhead)
{
    // The guarded-call pattern: BraZ jumps straight to the join point.
    WarpCflow cf;
    cf.init(5, 0xFFu, WarpCflow::Mode::Stack);
    cf.diverge(0, 8, 0xF0u, 6, 0x0Fu, 8);
    // Only the fallthrough lanes may run (at pc 6); the taken lanes wait
    // at the join.
    EXPECT_EQ(cf.split(0).pc, 6u);
    EXPECT_EQ(cf.split(0).mask, 0x0Fu);
    cf.advance(0, 7);
    cf.advance(0, 8);
    EXPECT_EQ(cf.split(0).pc, 8u);
    EXPECT_EQ(cf.split(0).mask, 0xFFu);
}

TEST(WarpCflowStackTest, NestedDivergenceJoinsInOrder)
{
    WarpCflow cf;
    cf.init(0, 0xFu, WarpCflow::Mode::Stack);
    cf.diverge(0, 10, 0x3u, 1, 0xCu, 40);  // outer
    cf.diverge(0, 20, 0x1u, 11, 0x2u, 30); // inner on taken path
    EXPECT_EQ(cf.split(0).mask, 0x1u);
    cf.advance(0, 30); // inner taken joins
    EXPECT_EQ(cf.split(0).mask, 0x2u);
    cf.advance(0, 30); // inner fallthrough joins; inner join at 30
    EXPECT_EQ(cf.split(0).pc, 30u);
    EXPECT_EQ(cf.split(0).mask, 0x3u);
    cf.advance(0, 40); // outer taken path joins
    EXPECT_EQ(cf.split(0).mask, 0xCu);
    cf.advance(0, 40);
    EXPECT_EQ(cf.split(0).pc, 40u);
    EXPECT_EQ(cf.split(0).mask, 0xFu);
}

TEST(WarpCflowStackTest, ExitLanesDropsEmptyEntries)
{
    WarpCflow cf;
    cf.init(0, 0x3u, WarpCflow::Mode::Stack);
    cf.exitLanes(0, 0x1u);
    EXPECT_FALSE(cf.finished());
    EXPECT_EQ(cf.liveMask(), 0x2u);
    cf.exitLanes(0, 0x2u);
    EXPECT_TRUE(cf.finished());
}

TEST(WarpCflowItsTest, SplitsAreIndependentlyRunnable)
{
    WarpCflow cf;
    cf.init(0, 0xFFu, WarpCflow::Mode::Its);
    cf.diverge(0, 10, 0x0Fu, 1, 0xF0u, 99);
    EXPECT_EQ(cf.runnableCount(), 2u);
    // Both splits can advance in any order.
    int s0 = cf.runnableSplit(0);
    int s1 = cf.runnableSplit(1);
    cf.advance(s1, 2);
    cf.advance(s0, 11);
    EXPECT_EQ(cf.runnableCount(), 2u);
}

TEST(WarpCflowItsTest, SplitsMergeAtEqualPc)
{
    WarpCflow cf;
    cf.init(0, 0xFFu, WarpCflow::Mode::Its);
    cf.diverge(0, 10, 0x0Fu, 1, 0xF0u, 99);
    // Move both to pc 50: they merge into one split.
    cf.advance(cf.runnableSplit(0), 50);
    EXPECT_EQ(cf.runnableCount(), 2u);
    cf.advance(cf.runnableSplit(1), 50);
    EXPECT_EQ(cf.runnableCount(), 1u);
    EXPECT_EQ(cf.split(cf.runnableSplit(0)).mask, 0xFFu);
}

TEST(WarpCflowItsTest, BlockedSplitNotRunnableNotMerged)
{
    WarpCflow cf;
    cf.init(0, 0xFFu, WarpCflow::Mode::Its);
    cf.diverge(0, 10, 0x0Fu, 1, 0xF0u, 99);
    int idx = cf.runnableSplit(0);
    int id = cf.split(idx).id;
    cf.blockAt(idx, 10);
    EXPECT_EQ(cf.runnableCount(), 1u);
    // Other split moves to pc 10: must NOT merge with the blocked one.
    cf.advance(cf.runnableSplit(0), 10);
    EXPECT_EQ(cf.splitCount(), 2u);
    cf.unblockById(id);
    // Now both at 10 and unblocked: merged.
    EXPECT_EQ(cf.splitCount(), 1u);
}

// --- executor -----------------------------------------------------------

/** Minimal launch fixture around a hand-built program. */
struct ExecFixture
{
    GlobalMemory gmem;
    Program program;
    LaunchContext ctx;
    Warp warp;

    explicit ExecFixture(std::vector<Instr> code, unsigned num_regs = 16)
    {
        program.code = std::move(code);
        ShaderInfo raygen;
        raygen.name = "test";
        raygen.stage = ShaderStage::RayGen;
        raygen.entryPc = 0;
        raygen.numRegs = static_cast<std::uint16_t>(num_regs);
        program.shaders.push_back(raygen);
        program.raygenShader = 0;

        ctx.program = &program;
        ctx.gmem = &gmem;
        ctx.launchSize[0] = kWarpSize;
        ctx.launchSize[1] = 1;
        ctx.rtStackBase = gmem.allocate(
            kWarpSize * kRtStackBytesPerThread, 64);
        ctx.scratchBase = gmem.allocate(
            kWarpSize * kRtScratchBytesPerThread, 64);
        initWarp(warp, 0, ctx, WarpCflow::Mode::Stack);
    }

    StepResult
    step()
    {
        WarpExecutor exec(ctx);
        return exec.step(warp, warp.cflow.runnableSplit(0));
    }
};

Instr
movImm(int dst, std::uint64_t v)
{
    Instr i;
    i.op = Opcode::MovImm;
    i.dst = static_cast<std::int16_t>(dst);
    i.imm = v;
    return i;
}

Instr
binop(Opcode op, int dst, int a, int b)
{
    Instr i;
    i.op = op;
    i.dst = static_cast<std::int16_t>(dst);
    i.src0 = static_cast<std::int16_t>(a);
    i.src1 = static_cast<std::int16_t>(b);
    return i;
}

Instr
exitInstr()
{
    Instr i;
    i.op = Opcode::Exit;
    return i;
}

std::uint64_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
}

TEST(ExecutorTest, IntegerAndFloatAlu)
{
    ExecFixture fx({
        movImm(0, 7),
        movImm(1, 5),
        binop(Opcode::Add, 2, 0, 1),
        binop(Opcode::Mul, 3, 0, 1),
        movImm(4, floatBits(1.5f)),
        movImm(5, floatBits(2.5f)),
        binop(Opcode::FAdd, 6, 4, 5),
        binop(Opcode::FMul, 7, 4, 5),
        exitInstr(),
    });
    while (!fx.warp.finished())
        fx.step();
    ThreadState &t = fx.warp.threads[0];
    EXPECT_EQ(t.reg(2), 12u);
    EXPECT_EQ(t.reg(3), 35u);
    EXPECT_EQ(t.reg(6), floatBits(4.0f));
    EXPECT_EQ(t.reg(7), floatBits(3.75f));
}

TEST(ExecutorTest, LoadStoreRoundTrip)
{
    ExecFixture fx({});
    Addr buf = fx.gmem.allocate(64, 8);
    Instr ld;
    ld.op = Opcode::Ld;
    ld.dst = 1;
    ld.src0 = 0;
    ld.size = 4;
    Instr st;
    st.op = Opcode::St;
    st.src0 = 0;
    st.src1 = 2;
    st.imm = 16;
    st.size = 4;
    fx.program.code = {movImm(0, buf), movImm(2, 0xABCD), st, ld,
                       exitInstr()};
    fx.gmem.store<std::uint32_t>(buf, 0x1234);
    while (!fx.warp.finished()) {
        StepResult r = fx.step();
        if (r.op == Opcode::Ld) {
            EXPECT_EQ(r.accesses.size(), kWarpSize);
            EXPECT_FALSE(r.accesses[0].write);
            EXPECT_EQ(r.accesses[0].addr, buf);
        }
    }
    EXPECT_EQ(fx.warp.threads[0].reg(1), 0x1234u);
    EXPECT_EQ(fx.gmem.load<std::uint32_t>(buf + 16), 0xABCDu);
}

TEST(ExecutorTest, BranchDivergenceAndReconvergence)
{
    // r0 = lane id parity via launch id; branch on it; both paths set r2
    // differently; after reconvergence r3 = 1 everywhere.
    Instr lid;
    lid.op = Opcode::LoadLaunchId;
    lid.dst = 0;
    lid.imm = 0;
    Instr andi = binop(Opcode::And, 1, 0, 4); // r4 = 1
    Instr bra;
    bra.op = Opcode::Bra;
    bra.src0 = 1;
    bra.target = 6;
    bra.reconv = 7;
    ExecFixture fx({
        lid,                 // 0
        movImm(4, 1),        // 1
        andi,                // 2
        bra,                 // 3: odd lanes -> 6
        movImm(2, 100),      // 4: even lanes
        {},                  // 5: nop (Jmp emitted below replaces)
        movImm(2, 200),      // 6: odd lanes
        movImm(3, 1),        // 7: reconverged
        exitInstr(),         // 8
    });
    Instr jmp;
    jmp.op = Opcode::Jmp;
    jmp.target = 7;
    fx.program.code[5] = jmp;

    while (!fx.warp.finished())
        fx.step();
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        ThreadState &t = fx.warp.threads[lane];
        EXPECT_EQ(t.reg(2), (lane & 1) ? 200u : 100u) << lane;
        EXPECT_EQ(t.reg(3), 1u) << lane;
    }
}

TEST(ExecutorTest, CallRetRegisterWindows)
{
    // Caller sets r0 = 11, calls f (window bump 8); callee sets its r0
    // (= physical r8) to 77 and returns; caller's r0 unchanged.
    Instr call;
    call.op = Opcode::Call;
    call.target = 3;
    call.imm = 8;
    Instr ret;
    ret.op = Opcode::Ret;
    ExecFixture fx({
        movImm(0, 11), // 0
        call,          // 1
        exitInstr(),   // 2
        movImm(0, 77), // 3 (callee)
        ret,           // 4
    });
    while (!fx.warp.finished())
        fx.step();
    ThreadState &t = fx.warp.threads[0];
    EXPECT_EQ(t.windowBase, 0u);
    EXPECT_EQ(fx.warp.regs.row(0)[0], 11u);
    EXPECT_EQ(fx.warp.regs.row(0)[8], 77u);
    EXPECT_TRUE(t.callStack.empty());
}

TEST(ExecutorTest, SelectAndConversions)
{
    ExecFixture fx({
        movImm(0, 0),
        movImm(1, floatBits(-3.7f)),
        movImm(2, 42),
        {},
        {},
        exitInstr(),
    });
    Instr sel;
    sel.op = Opcode::Select;
    sel.dst = 3;
    sel.src0 = 0;
    sel.src1 = 1;
    sel.src2 = 2;
    fx.program.code[3] = sel;
    Instr f2i;
    f2i.op = Opcode::F2I;
    f2i.dst = 4;
    f2i.src0 = 1;
    fx.program.code[4] = f2i;
    while (!fx.warp.finished())
        fx.step();
    ThreadState &t = fx.warp.threads[0];
    EXPECT_EQ(t.reg(3), 42u); // cond false -> src2
    EXPECT_EQ(static_cast<std::int64_t>(t.reg(4)), -3);
}

TEST(RtRuntimeTest, RayRoundTripsThroughFrame)
{
    GlobalMemory gmem;
    Addr frame = gmem.allocate(kRtFrameBytes, 64);
    gmem.store<float>(frame + frame::kRayOriginX, 1.f);
    gmem.store<float>(frame + frame::kRayOriginY, 2.f);
    gmem.store<float>(frame + frame::kRayOriginZ, 3.f);
    gmem.store<float>(frame + frame::kRayTmin, 0.5f);
    gmem.store<float>(frame + frame::kRayDirX, 0.f);
    gmem.store<float>(frame + frame::kRayDirY, 1.f);
    gmem.store<float>(frame + frame::kRayDirZ, 0.f);
    gmem.store<float>(frame + frame::kRayTmax, 99.f);
    gmem.store<std::uint32_t>(frame + frame::kRayFlags, 5);

    std::uint32_t flags = 0;
    Ray ray = rt_runtime::readRay(gmem, frame, &flags);
    EXPECT_FLOAT_EQ(ray.origin.y, 2.f);
    EXPECT_FLOAT_EQ(ray.tmin, 0.5f);
    EXPECT_FLOAT_EQ(ray.direction.y, 1.f);
    EXPECT_FLOAT_EQ(ray.tmax, 99.f);
    EXPECT_EQ(flags, 5u);
}

TEST(RtRuntimeTest, CoalescingTableGroupsByShaderId)
{
    // Build fake traversals via a scene-free path is heavy; instead test
    // deferredShaderId mapping and the insertion cost accounting with a
    // synthetic launch context.
    LaunchContext ctx;
    HitGroupRecord g0;
    g0.intersection = 4;
    HitGroupRecord g1;
    g1.intersection = 5;
    g1.anyHit = -1;
    ctx.hitGroups = {g0, g1};

    DeferredHit sphere;
    sphere.sbtOffset = 0;
    DeferredHit box;
    box.sbtOffset = 1;
    DeferredHit anyhit_default;
    anyhit_default.sbtOffset = 1;
    anyhit_default.anyHit = true;

    EXPECT_EQ(rt_runtime::deferredShaderId(ctx, sphere), 4);
    EXPECT_EQ(rt_runtime::deferredShaderId(ctx, box), 5);
    EXPECT_EQ(rt_runtime::deferredShaderId(ctx, anyhit_default),
              kDefaultAnyHitShader);
}

} // namespace
} // namespace vksim::vptx
