/**
 * @file
 * End-to-end tests of the delayed any-hit pipeline: non-opaque triangles
 * are collected during traversal and committed (or rejected) by the
 * any-hit shader after traversal, per the paper's delayed intersection
 * and any-hit execution scheme. The full simulated pipeline (alpha-test
 * any-hit shader in the hit group) is compared against the CPU tracer
 * with a matching filter.
 */

#include <gtest/gtest.h>

#include "core/vulkansim.h"
#include "workloads/shaders.h"

namespace vksim {
namespace {

/** Scene: two stacked non-opaque triangles in front of the camera. */
Scene
makeAlphaScene(bool opaque)
{
    Scene scene;
    scene.materials.push_back(Material::lambertian({1, 0, 0}));
    Geometry tris;
    tris.kind = GeometryKind::Triangles;
    tris.opaque = opaque;
    // Front triangle at z = 1, back at z = 2 (seen from origin, -z cam).
    auto add_tri = [&](float z) {
        auto a = tris.mesh.addVertex({-2, -2, z});
        auto b = tris.mesh.addVertex({2, -2, z});
        auto c = tris.mesh.addVertex({0, 2, z});
        tris.mesh.addTriangle(a, b, c);
    };
    add_tri(1.f);
    add_tri(2.f);
    scene.geometries.push_back(std::move(tris));
    Instance inst;
    inst.geometryIndex = 0;
    scene.instances.push_back(inst);
    scene.camera = Camera::lookAt({0.f, -0.5f, -1.f}, {0.f, -0.5f, 1.f},
                                  {0.f, 1.f, 0.f}, 60.f, 1.f);
    return scene;
}

/** Assemble a pipeline with an alpha-test any-hit shader. */
struct AlphaFixture
{
    Scene scene;
    Device device;
    AccelStruct accel;
    std::vector<nir::Shader> shaders;
    RayTracingPipeline pipeline;
    DescriptorSet descriptors;
    Addr framebuffer = 0;
    vptx::LaunchContext ctx;
    unsigned size = 16;

    AlphaFixture(bool opaque, float threshold)
        : scene(makeAlphaScene(opaque))
    {
        accel = device.buildAccelerationStructure(scene);

        shaders.push_back(wl::makeRaygenBary());
        shaders.push_back(wl::makeClosestHitBary());
        shaders.push_back(wl::makeMissShader());
        shaders.push_back(wl::makeAnyHitAlphaTest(threshold));

        xlate::PipelineDesc desc;
        for (const nir::Shader &s : shaders)
            desc.shaders.push_back(&s);
        desc.raygen = 0;
        desc.missShaders = {2};
        xlate::HitGroupDesc hg;
        hg.closestHit = 1;
        hg.anyHit = 3;
        desc.hitGroups.push_back(hg);
        pipeline = device.createRayTracingPipeline(desc);

        // Minimal descriptors: camera + framebuffer + constants.
        Addr cam = device.createBuffer(sizeof(Camera));
        device.memory().store(cam, scene.camera);
        descriptors.bind(wl::kBindCamera, cam);
        framebuffer =
            device.createBuffer(size * size * wl::kFramebufferStride);
        descriptors.bind(wl::kBindFramebuffer, framebuffer);
        wl::GpuSceneConstants constants{};
        constants.skyHorizon[2] = 1.f; // blue-ish sky for the miss path
        Addr consts = device.createBuffer(sizeof(constants));
        device.memory().store(consts, constants);
        descriptors.bind(wl::kBindConstants, consts);

        ctx = device.prepareLaunch(pipeline, descriptors, accel.tlasRoot,
                                   size, size);
    }

    /** Colour of the centre pixel after a functional run. */
    Vec3
    run()
    {
        vptx::FunctionalRunner runner(ctx);
        runner.run();
        Addr addr = framebuffer
                    + (static_cast<Addr>(size / 2) * size + size / 2)
                          * wl::kFramebufferStride;
        return {device.memory().load<float>(addr),
                device.memory().load<float>(addr + 4),
                device.memory().load<float>(addr + 8)};
    }
};

TEST(AnyHitTest, AcceptingShaderCommitsClosestCandidate)
{
    // Threshold 2.0 accepts every candidate: behaves like opaque.
    AlphaFixture accepting(false, 2.0f);
    Vec3 with_anyhit = accepting.run();
    AlphaFixture opaque(true, 2.0f);
    Vec3 without = opaque.run();
    EXPECT_FLOAT_EQ(with_anyhit.x, without.x);
    EXPECT_FLOAT_EQ(with_anyhit.y, without.y);
    EXPECT_FLOAT_EQ(with_anyhit.z, without.z);
    // Barycentric colour sums to ~1 on a hit.
    EXPECT_NEAR(with_anyhit.x + with_anyhit.y + with_anyhit.z, 1.f, 1e-4f);
}

TEST(AnyHitTest, RejectingShaderFallsThroughToMiss)
{
    // Threshold -1 rejects everything: the ray must miss into the sky.
    AlphaFixture rejecting(false, -1.0f);
    Vec3 c = rejecting.run();
    EXPECT_FLOAT_EQ(c.x, 0.f);
    EXPECT_GT(c.z, 0.1f) << "sky colour expected on full rejection";
}

TEST(AnyHitTest, ThresholdSelectsHitsByBarycentrics)
{
    // The centre ray hits near the triangle centroid (u ~ v ~ 1/3, so
    // u + v ~ 2/3): a threshold of 0.5 rejects it, 0.9 accepts it.
    AlphaFixture strict(false, 0.5f);
    Vec3 rejected = strict.run();
    AlphaFixture loose(false, 0.9f);
    Vec3 accepted = loose.run();
    EXPECT_FLOAT_EQ(rejected.x, 0.f) << "strict alpha should reject";
    EXPECT_NEAR(accepted.x + accepted.y + accepted.z, 1.f, 1e-4f);
}

TEST(AnyHitTest, MatchesCpuTracerWithEquivalentFilter)
{
    float threshold = 0.7f;
    AlphaFixture fx(false, threshold);
    vptx::FunctionalRunner runner(fx.ctx);
    runner.run();

    CpuTracer tracer(fx.scene, fx.device.memory(), fx.accel);
    tracer.setAnyHitFilter([&](const DeferredHit &d) {
        return d.u + d.v <= threshold;
    });

    unsigned mismatches = 0;
    for (unsigned y = 0; y < fx.size; ++y)
        for (unsigned x = 0; x < fx.size; ++x) {
            Ray ray =
                fx.scene.camera.generateRay(x, y, fx.size, fx.size);
            HitRecord hit = tracer.trace(ray);
            Addr addr = fx.framebuffer
                        + (static_cast<Addr>(y) * fx.size + x)
                              * wl::kFramebufferStride;
            float r = fx.device.memory().load<float>(addr);
            bool sim_hit = r == 0.f ? false : true;
            // Miss pixels have r == 0 (sky has no red); hits have
            // bary.x = 1-u-v which can also be ~0 at an edge — compare
            // via the hit record instead for robustness.
            if (hit.valid() != sim_hit && hit.valid()
                && (1.f - hit.u - hit.v) > 1e-3f)
                ++mismatches;
        }
    EXPECT_EQ(mismatches, 0u);
}

} // namespace
} // namespace vksim
