/**
 * @file
 * Structural validation of serialized acceleration structures: walk the
 * raw bytes in simulated memory from the TLAS root, following first-child
 * pointers exactly as the RT unit does, and check every invariant of the
 * Fig. 7 layouts — descriptors, child types, block alignment, quantized
 * bounds conservativeness, instance indices, and full reachability of
 * every primitive.
 */

#include <gtest/gtest.h>

#include <set>

#include "accel/serialize.h"
#include "scene/scenegen.h"

namespace vksim {
namespace {

struct BvhWalker
{
    const GlobalMemory &gmem;
    const Scene &scene;
    std::set<Addr> visited;
    std::multiset<std::pair<int, int>> trianglesSeen; ///< (instance-free)
    std::size_t topLeaves = 0;
    std::size_t triangleLeaves = 0;
    std::size_t proceduralLeaves = 0;
    unsigned maxDepth = 0;

    BvhWalker(const GlobalMemory &g, const Scene &s) : gmem(g), scene(s) {}

    void
    walkNode(Addr addr, NodeType type, unsigned depth, int geometry)
    {
        ASSERT_LT(depth, 64u) << "runaway depth: cycle in the BVH?";
        maxDepth = std::max(maxDepth, depth);
        ASSERT_EQ(addr % kNodeBlockSize, 0u) << "unaligned node";
        // Instanced BLASes are shared subtrees (a DAG, not a tree):
        // recurse for depth accounting but count each node once.
        bool first_visit = visited.insert(addr).second;

        switch (type) {
          case NodeType::Internal: {
            auto node = gmem.load<InternalNode>(addr);
            ASSERT_GE(node.childCount, 1u);
            ASSERT_LE(node.childCount, kBvhWidth);
            // Parent frame must enclose each dequantized child box and
            // each child box must enclose the child's own frame/content.
            for (unsigned i = 0; i < node.childCount; ++i) {
                NodeType ct = node.childType(i);
                ASSERT_NE(ct, NodeType::Invalid);
                Aabb cb = node.childBounds(i);
                ASSERT_FALSE(cb.empty());
                walkNode(node.childAddress(i), ct, depth + 1, geometry);
                if (ct == NodeType::Internal) {
                    auto child = gmem.load<InternalNode>(
                        node.childAddress(i));
                    // Child's quantization frame origin lies inside the
                    // dequantized child box (conservative covering).
                    Vec3 origin{child.originX, child.originY,
                                child.originZ};
                    EXPECT_TRUE(cb.contains(origin))
                        << "child frame escapes its slot bounds";
                }
            }
            break;
          }
          case NodeType::TopLeaf: {
            auto leaf = gmem.load<TopLeafNode>(addr);
            EXPECT_EQ(leafDescriptorType(leaf.leafDescriptor),
                      NodeType::TopLeaf);
            ASSERT_LT(leaf.instanceIndex, scene.instances.size());
            const Instance &inst = scene.instances[leaf.instanceIndex];
            EXPECT_EQ(leaf.instanceCustomIndex, inst.instanceCustomIndex);
            EXPECT_EQ(leaf.sbtOffset, inst.sbtOffset);
            if (first_visit)
                ++topLeaves;
            walkNode(leaf.blasRoot, NodeType::Internal, depth + 1,
                     static_cast<int>(inst.geometryIndex));
            break;
          }
          case NodeType::TriangleLeaf: {
            auto leaf = gmem.load<TriangleLeafNode>(addr);
            EXPECT_EQ(leafDescriptorType(leaf.leafDescriptor),
                      NodeType::TriangleLeaf);
            ASSERT_GE(geometry, 0);
            const Geometry &geom =
                scene.geometries[static_cast<std::size_t>(geometry)];
            ASSERT_LT(leaf.primitiveIndex, geom.mesh.triangleCount());
            // Stored vertices equal the host mesh's.
            Vec3 v0, v1, v2;
            geom.mesh.triangle(leaf.primitiveIndex, &v0, &v1, &v2);
            EXPECT_EQ(leaf.v0[0], v0.x);
            EXPECT_EQ(leaf.v1[1], v1.y);
            EXPECT_EQ(leaf.v2[2], v2.z);
            EXPECT_EQ(leaf.opaque, geom.opaque ? 1u : 0u);
            if (first_visit)
                ++triangleLeaves;
            break;
          }
          case NodeType::ProceduralLeaf: {
            auto leaf = gmem.load<ProceduralLeafNode>(addr);
            EXPECT_EQ(leafDescriptorType(leaf.leafDescriptor),
                      NodeType::ProceduralLeaf);
            ASSERT_GE(geometry, 0);
            const Geometry &geom =
                scene.geometries[static_cast<std::size_t>(geometry)];
            ASSERT_LT(leaf.primitiveIndex, geom.prims.size());
            if (first_visit)
                ++proceduralLeaves;
            break;
          }
          default:
            FAIL() << "invalid node type in serialized BVH";
        }
    }
};

class SerializedWalkTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    Scene
    makeScene() const
    {
        std::string name = GetParam();
        if (name == "tri")
            return makeTriScene();
        if (name == "ref")
            return makeRefScene();
        if (name == "ext")
            return makeExtScene(0.12f);
        if (name == "rtv5")
            return makeRtv5Scene(3);
        return makeRtv6Scene(700);
    }
};

TEST_P(SerializedWalkTest, EveryNodeReachableAndWellFormed)
{
    Scene scene = makeScene();
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);

    BvhWalker walker(gmem, scene);
    walker.walkNode(accel.tlasRoot, accel.tlasRootType, 1, -1);
    if (::testing::Test::HasFatalFailure())
        return;

    // Every instance appears as exactly one TLAS leaf.
    EXPECT_EQ(walker.topLeaves, scene.instances.size());

    // Primitive leaves: one per primitive of every *unique* geometry
    // (instanced BLASes are shared, so count distinct geometries once).
    std::size_t expected_tris = 0;
    std::size_t expected_prims = 0;
    for (const Geometry &g : scene.geometries) {
        if (g.kind == GeometryKind::Triangles)
            expected_tris += g.mesh.triangleCount();
        else
            expected_prims += g.prims.size();
    }
    EXPECT_EQ(walker.triangleLeaves, expected_tris);
    EXPECT_EQ(walker.proceduralLeaves, expected_prims);

    // Depth accounting: AccelStats::treeDepth() counts internal-node
    // levels plus the instance-leaf level; the walker additionally steps
    // into primitive leaves, so its depth is at most treeDepth() + 1
    // (equality when the deepest TLAS path hosts the deepest BLAS), and
    // at least the minimal chain root -> topleaf -> blas root -> leaf.
    EXPECT_LE(walker.maxDepth, accel.stats.treeDepth() + 1);
    EXPECT_GE(walker.maxDepth, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SerializedWalkTest,
                         ::testing::Values("tri", "ref", "ext", "rtv5",
                                           "rtv6"),
                         [](const ::testing::TestParamInfo<const char *> &i) {
                             return std::string(i.param);
                         });

} // namespace
} // namespace vksim
