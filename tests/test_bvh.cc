/**
 * @file
 * BVH builder, node layout, serialization, and traversal tests, including
 * parameterized property tests comparing serialized-BVH traversal against
 * brute-force intersection across the evaluation scenes.
 */

#include <gtest/gtest.h>

#include "accel/build.h"
#include "geom/sampling.h"
#include "accel/serialize.h"
#include "accel/traversal.h"
#include "reftrace/tracer.h"
#include "scene/scenegen.h"
#include "util/rng.h"

namespace vksim {
namespace {

std::vector<PrimRef>
randomPrims(unsigned count, std::uint32_t seed)
{
    Pcg32 rng(seed);
    std::vector<PrimRef> prims(count);
    for (unsigned i = 0; i < count; ++i) {
        Vec3 c{rng.nextRange(-50, 50), rng.nextRange(-50, 50),
               rng.nextRange(-50, 50)};
        Vec3 e{rng.nextRange(0.1f, 2.f), rng.nextRange(0.1f, 2.f),
               rng.nextRange(0.1f, 2.f)};
        prims[i].bounds.extend(c - e);
        prims[i].bounds.extend(c + e);
        prims[i].index = i;
    }
    return prims;
}

TEST(BinaryBvhTest, EveryPrimitiveInExactlyOneLeaf)
{
    auto prims = randomPrims(500, 1);
    BinaryBvh bvh = buildBinaryBvh(prims);
    std::vector<int> seen(prims.size(), 0);
    for (const BinaryBvhNode &n : bvh.nodes)
        if (n.isLeaf())
            ++seen[static_cast<std::size_t>(n.primIndex)];
    for (int count : seen)
        EXPECT_EQ(count, 1);
    EXPECT_EQ(bvh.nodes.size(), 2 * prims.size() - 1);
}

TEST(BinaryBvhTest, ParentBoundsEncloseChildren)
{
    auto prims = randomPrims(300, 2);
    BinaryBvh bvh = buildBinaryBvh(prims);
    for (const BinaryBvhNode &n : bvh.nodes) {
        if (n.isLeaf()) {
            EXPECT_TRUE(n.bounds.encloses(
                prims[static_cast<std::size_t>(n.primIndex)].bounds));
            continue;
        }
        EXPECT_TRUE(n.bounds.encloses(
            bvh.nodes[static_cast<std::size_t>(n.left)].bounds));
        EXPECT_TRUE(n.bounds.encloses(
            bvh.nodes[static_cast<std::size_t>(n.right)].bounds));
    }
}

TEST(WideBvhTest, CollapsePreservesPrimitives)
{
    for (unsigned count : {1u, 2u, 6u, 7u, 37u, 1000u}) {
        auto prims = randomPrims(count, count);
        WideBvh wide = buildWideBvh(prims);
        EXPECT_EQ(wide.leafCount(), count) << "count=" << count;
        std::vector<int> seen(count, 0);
        for (const WideBvhNode &n : wide.nodes) {
            EXPECT_LE(n.children.size(), kBvhWidth);
            EXPECT_GE(n.children.size(), 1u);
            for (const WideBvhChild &c : n.children) {
                EXPECT_TRUE(n.bounds.encloses(c.bounds));
                if (c.isLeaf())
                    ++seen[static_cast<std::size_t>(c.prim)];
            }
        }
        for (int s : seen)
            EXPECT_EQ(s, 1);
    }
}

TEST(WideBvhTest, WideDepthNotDeeperThanBinary)
{
    auto prims = randomPrims(4096, 3);
    WideBvh wide = buildWideBvh(prims);
    // 6-wide collapse of ~4k prims should be shallow.
    EXPECT_LE(wide.maxDepth, 10u);
    EXPECT_GE(wide.maxDepth, 4u);
}

TEST(LayoutTest, NodeSizesMatchPaperFigure7)
{
    EXPECT_EQ(sizeof(InternalNode), 64u);
    EXPECT_EQ(sizeof(TopLeafNode), 128u);
    EXPECT_EQ(sizeof(TriangleLeafNode), 64u);
    EXPECT_EQ(sizeof(ProceduralLeafNode), 64u);
}

TEST(LayoutTest, QuantizedChildBoundsAreConservative)
{
    Pcg32 rng(4);
    for (int trial = 0; trial < 200; ++trial) {
        Aabb parent;
        parent.extend({rng.nextRange(-100, 0), rng.nextRange(-100, 0),
                       rng.nextRange(-100, 0)});
        parent.extend({rng.nextRange(0, 100), rng.nextRange(0, 100),
                       rng.nextRange(0, 100)});
        InternalNode node{};
        node.setFrame(parent);
        Aabb child;
        Vec3 extent = parent.extent();
        Vec3 a = parent.lo + extent * rng.nextFloat();
        Vec3 b = parent.lo + extent * rng.nextFloat();
        child.extend(vmin(a, b));
        child.extend(vmax(a, b));
        node.setChildBounds(0, child);
        Aabb deq = node.childBounds(0);
        EXPECT_TRUE(deq.encloses(child))
            << "quantized box must conservatively cover the child";
        // And it should not be wildly larger than the parent frame.
        EXPECT_TRUE(parent.encloses(deq, 1.f));
    }
}

TEST(LayoutTest, ChildAddressAccountsForTwoBlockLeaves)
{
    InternalNode node{};
    node.firstChild = 0x1000;
    node.childCount = 3;
    node.setChildType(0, NodeType::TopLeaf);   // 128 B
    node.setChildType(1, NodeType::Internal);  // 64 B
    node.setChildType(2, NodeType::TopLeaf);
    EXPECT_EQ(node.childAddress(0), 0x1000u);
    EXPECT_EQ(node.childAddress(1), 0x1080u);
    EXPECT_EQ(node.childAddress(2), 0x10C0u);
}

TEST(SerializeTest, StatsAreConsistent)
{
    Scene scene = makeRefScene();
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);
    EXPECT_EQ(accel.stats.tlasLeaves, scene.instances.size());
    EXPECT_EQ(accel.stats.blasLeaves, 2u + 12u); // floor quad + box blas
    EXPECT_GT(accel.stats.totalBytes, 0u);
    EXPECT_EQ(accel.blasRoots.size(), scene.geometries.size());
    // TRI-like shallow scene: depth formula sanity.
    EXPECT_EQ(accel.stats.treeDepth(),
              accel.stats.tlasDepth + 1 + accel.stats.maxBlasDepth);
}

TEST(SerializeTest, TriSceneDepthMatchesTable4)
{
    Scene scene = makeTriScene();
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);
    EXPECT_EQ(accel.stats.treeDepth(), 3u); // paper Table IV: depth 3
}

TEST(TraversalTest, SingleTriangleHit)
{
    Scene scene = makeTriScene();
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);

    Ray ray;
    ray.origin = {0.f, 0.f, 2.5f};
    ray.direction = {0.f, 0.f, -1.f};
    RayTraversal trav(gmem, accel.tlasRoot, ray);
    trav.run();
    ASSERT_TRUE(trav.hit().valid());
    EXPECT_NEAR(trav.hit().t, 2.5f, 1e-4f);
    EXPECT_EQ(trav.hit().kind, HitKind::Triangle);
    EXPECT_EQ(trav.hit().instanceIndex, 0);
    EXPECT_GE(trav.nodesVisited(), 3u);
}

TEST(TraversalTest, MissReportsNoHit)
{
    Scene scene = makeTriScene();
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);

    Ray ray;
    ray.origin = {0.f, 0.f, 2.5f};
    ray.direction = {0.f, 1.f, 0.f};
    RayTraversal trav(gmem, accel.tlasRoot, ray);
    trav.run();
    EXPECT_FALSE(trav.hit().valid());
}

TEST(TraversalTest, TerminateOnFirstHitStopsEarly)
{
    Scene scene = makeExtScene(0.1f);
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);

    Ray ray = scene.camera.generateRay(10, 10, 64, 64);
    RayTraversal closest(gmem, accel.tlasRoot, ray);
    closest.run();
    RayTraversal first(gmem, accel.tlasRoot, ray,
                       kRayFlagTerminateOnFirstHit);
    first.run();
    ASSERT_TRUE(closest.hit().valid());
    ASSERT_TRUE(first.hit().valid());
    EXPECT_LE(first.nodesVisited(), closest.nodesVisited());
}

TEST(TraversalTest, ShortStackSpillsOnDeepScenes)
{
    Scene scene = makeExtScene(0.35f);
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);

    std::uint64_t spills = 0;
    for (unsigned y = 0; y < 16; ++y)
        for (unsigned x = 0; x < 16; ++x) {
            Ray ray = scene.camera.generateRay(x, y, 16, 16);
            RayTraversal trav(gmem, accel.tlasRoot, ray);
            trav.run();
            spills += trav.stackSpills();
        }
    EXPECT_GT(spills, 0u) << "a deep scene must exercise the spill path";
}

/** Property test: serialized-BVH traversal agrees with brute force. */
class TraversalPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
  protected:
    Scene
    makeScene() const
    {
        std::string name = std::get<0>(GetParam());
        if (name == "tri")
            return makeTriScene();
        if (name == "ref")
            return makeRefScene();
        if (name == "ext")
            return makeExtScene(0.12f);
        if (name == "rtv5")
            return makeRtv5Scene(3);
        return makeRtv6Scene(600);
    }
};

TEST_P(TraversalPropertyTest, MatchesBruteForce)
{
    Scene scene = makeScene();
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);
    CpuTracer tracer(scene, gmem, accel);

    Pcg32 rng(static_cast<std::uint64_t>(std::get<1>(GetParam())));
    Aabb world;
    for (std::size_t i = 0; i < scene.instances.size(); ++i) {
        const Instance &inst = scene.instances[i];
        const Geometry &g = scene.geometries[inst.geometryIndex];
        for (std::size_t p = 0; p < g.primitiveCount(); ++p) {
            Aabb b = g.primitiveBounds(p);
            world.extend(inst.objectToWorld.transformPoint(b.lo));
            world.extend(inst.objectToWorld.transformPoint(b.hi));
        }
        if (i > 4)
            break; // bounds estimate only
    }

    // Pad so flat scenes (TRI is a single z = 0 triangle) still get
    // off-plane ray origins.
    Vec3 pad = world.extent() * 0.2f + Vec3(1.f);
    world.extend(world.lo - pad);
    world.extend(world.hi + pad);

    unsigned hits = 0;
    for (int trial = 0; trial < 300; ++trial) {
        Ray ray;
        Vec3 e = world.extent();
        ray.origin = world.lo
                     + Vec3{e.x * rng.nextFloat(), e.y * rng.nextFloat(),
                            e.z * rng.nextFloat()}
                     + Vec3{0.f, 0.5f * e.y, 0.f};
        if (trial % 2 == 0) {
            // Aim at a random point inside the scene so even tiny scenes
            // (TRI's single triangle) get real hits.
            Vec3 target =
                world.lo + Vec3{e.x * rng.nextFloat(),
                                e.y * rng.nextFloat(), e.z * rng.nextFloat()};
            Vec3 d = target - ray.origin;
            ray.direction = length(d) > 1e-6f
                                ? normalize(d)
                                : Vec3{0.f, -1.f, 0.f};
        } else {
            ray.direction =
                uniformSampleSphere(rng.nextFloat(), rng.nextFloat());
        }
        ray.tmin = 1e-4f;

        HitRecord bvh_hit = tracer.trace(ray);
        HitRecord brute_hit = bruteForceTrace(scene, ray);
        ASSERT_EQ(bvh_hit.valid(), brute_hit.valid())
            << "trial " << trial;
        if (bvh_hit.valid()) {
            ++hits;
            EXPECT_NEAR(bvh_hit.t, brute_hit.t, 1e-3f) << "trial " << trial;
        }
    }
    EXPECT_GT(hits, 10u) << "test should exercise real hits";
}

INSTANTIATE_TEST_SUITE_P(
    AllScenes, TraversalPropertyTest,
    ::testing::Combine(::testing::Values("tri", "ref", "ext", "rtv5",
                                         "rtv6"),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<TraversalPropertyTest::ParamType> &i) {
        return std::string(std::get<0>(i.param)) + "_seed"
               + std::to_string(std::get<1>(i.param));
    });

} // namespace
} // namespace vksim
