/**
 * @file
 * Exactness tests for the IR shader library: tiny NIR programs built
 * with the shaderlib helpers are executed on the VPTX interpreter and
 * compared bit-for-bit against the host C++ geometry/sampling routines
 * they mirror (the foundation of the Figure 2 fidelity result).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/sampling.h"
#include "reftrace/renderer.h"
#include "vptx/exec.h"
#include "workloads/shaderlib.h"
#include "xlate/translate.h"

namespace vksim {
namespace {

using wl::V3;

/**
 * Harness: build a raygen shader with `emit`, which must store its
 * outputs (floats) to the output buffer; run one warp; read results.
 */
class IrHarness
{
  public:
    static constexpr unsigned kMaxOutputs = 16;

    explicit IrHarness(
        const std::function<void(nir::Builder &, nir::Val out)> &emit)
    {
        nir::Builder b("test_raygen", vptx::ShaderStage::RayGen);
        nir::Val out = b.descBase(0);
        emit(b, out);
        shaders_.push_back(b.finish());

        nir::Builder miss("m", vptx::ShaderStage::Miss);
        shaders_.push_back(miss.finish());
        nir::Builder chit("c", vptx::ShaderStage::ClosestHit);
        shaders_.push_back(chit.finish());

        xlate::PipelineDesc desc;
        for (const nir::Shader &s : shaders_)
            desc.shaders.push_back(&s);
        desc.raygen = 0;
        desc.missShaders = {1};
        xlate::HitGroupDesc hg;
        hg.closestHit = 2;
        desc.hitGroups.push_back(hg);
        program_ = xlate::translate(desc);

        ctx_.program = &program_;
        ctx_.gmem = &gmem_;
        ctx_.launchSize[0] = 1;
        out_ = gmem_.allocate(kMaxOutputs * 4, 64);
        ctx_.descBase[0] = out_;
        ctx_.rtStackBase =
            gmem_.allocate(kWarpSize * vptx::kRtStackBytesPerThread, 64);
        ctx_.scratchBase = gmem_.allocate(
            kWarpSize * vptx::kRtScratchBytesPerThread, 64);

        vptx::FunctionalRunner runner(ctx_);
        runner.run();
    }

    float
    out(unsigned i) const
    {
        return gmem_.load<float>(out_ + 4ull * i);
    }

  private:
    std::vector<nir::Shader> shaders_;
    vptx::Program program_;
    GlobalMemory gmem_;
    vptx::LaunchContext ctx_;
    Addr out_ = 0;
};

TEST(ShaderLibTest, DotCrossNormalizeBitExact)
{
    Vec3 a{0.3f, -1.7f, 2.9f}, c{4.1f, 0.2f, -0.8f};
    IrHarness h([&](nir::Builder &b, nir::Val out) {
        V3 va = wl::v3Const(b, a.x, a.y, a.z);
        V3 vc = wl::v3Const(b, c.x, c.y, c.z);
        b.storeGlobal(out, wl::v3Dot(b, va, vc), 0);
        V3 cr = wl::v3Cross(b, va, vc);
        wl::v3Store(b, out, cr, 4);
        V3 n = wl::v3Normalize(b, va);
        wl::v3Store(b, out, n, 16);
        b.storeGlobal(out, wl::v3Length(b, vc), 28);
    });
    EXPECT_EQ(h.out(0), dot(a, c));
    Vec3 cr = cross(a, c);
    EXPECT_EQ(h.out(1), cr.x);
    EXPECT_EQ(h.out(2), cr.y);
    EXPECT_EQ(h.out(3), cr.z);
    Vec3 n = normalize(a);
    EXPECT_EQ(h.out(4), n.x);
    EXPECT_EQ(h.out(5), n.y);
    EXPECT_EQ(h.out(6), n.z);
    EXPECT_EQ(h.out(7), length(c));
}

TEST(ShaderLibTest, ReflectAndLerpBitExact)
{
    Vec3 d = normalize(Vec3{0.6f, -0.7f, 0.2f});
    Vec3 n{0.f, 1.f, 0.f};
    IrHarness h([&](nir::Builder &b, nir::Val out) {
        V3 vd = wl::v3Const(b, d.x, d.y, d.z);
        V3 vn = wl::v3Const(b, n.x, n.y, n.z);
        wl::v3Store(b, out, wl::v3Reflect(b, vd, vn), 0);
        V3 x = wl::v3Const(b, 1, 2, 3);
        V3 y = wl::v3Const(b, 5, 6, 7);
        wl::v3Store(b, out, wl::v3Lerp(b, x, y, b.constF(0.3f)), 12);
    });
    Vec3 r = reflect(d, n);
    EXPECT_EQ(h.out(0), r.x);
    EXPECT_EQ(h.out(1), r.y);
    EXPECT_EQ(h.out(2), r.z);
    Vec3 l = lerp(Vec3{1, 2, 3}, Vec3{5, 6, 7}, 0.3f);
    EXPECT_EQ(h.out(3), l.x);
    EXPECT_EQ(h.out(4), l.y);
    EXPECT_EQ(h.out(5), l.z);
}

TEST(ShaderLibTest, RngMatchesShaderRng)
{
    // Thread 0's stream: pixel index 0, seed 5.
    IrHarness h([&](nir::Builder &b, nir::Val out) {
        nir::Val state = b.var();
        b.assign(state, wl::rngInit(b, b.constI(0), b.constI(5)));
        for (unsigned i = 0; i < 6; ++i)
            b.storeGlobal(out, wl::rngNext(b, state), 4ull * i);
    });
    ShaderRng ref(0, 5);
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(h.out(i), ref.next()) << "draw " << i;
}

TEST(ShaderLibTest, OnbAndCosineSampleBitExact)
{
    Vec3 n = normalize(Vec3{0.4f, 0.8f, -0.45f});
    float u1 = 0.37f, u2 = 0.81f;
    IrHarness h([&](nir::Builder &b, nir::Val out) {
        V3 vn = wl::v3Const(b, n.x, n.y, n.z);
        V3 t, bt;
        wl::onbIr(b, vn, &t, &bt);
        V3 local = wl::cosineSampleIr(b, b.constF(u1), b.constF(u2));
        V3 world = wl::v3Add(
            b,
            wl::v3Add(b, wl::v3Scale(b, t, local.x),
                      wl::v3Scale(b, bt, local.y)),
            wl::v3Scale(b, vn, local.z));
        wl::v3Store(b, out, world, 0);
    });
    Onb onb(n);
    Vec3 world = onb.toWorld(cosineSampleHemisphere(u1, u2));
    EXPECT_EQ(h.out(0), world.x);
    EXPECT_EQ(h.out(1), world.y);
    EXPECT_EQ(h.out(2), world.z);
}

TEST(ShaderLibTest, SchlickBitExact)
{
    IrHarness h([&](nir::Builder &b, nir::Val out) {
        b.storeGlobal(out,
                      wl::schlickIr(b, b.constF(0.42f), b.constF(1.5f)),
                      0);
    });
    EXPECT_EQ(h.out(0), schlickFresnel(0.42f, 1.5f));
}

TEST(ShaderLibTest, SelectAndVarSemantics)
{
    IrHarness h([&](nir::Builder &b, nir::Val out) {
        nir::Val v = b.var();
        b.assign(v, b.constF(1.f));
        nir::Val cond = b.flt(b.constF(2.f), b.constF(3.f));
        b.beginIf(cond);
        b.assign(v, b.constF(7.f));
        b.endIf();
        b.storeGlobal(out, v, 0);
        b.storeGlobal(out,
                      b.select(cond, b.constF(10.f), b.constF(20.f)), 4);
    });
    EXPECT_EQ(h.out(0), 7.f);
    EXPECT_EQ(h.out(1), 10.f);
}

TEST(ShaderLibTest, LoopAccumulates)
{
    IrHarness h([&](nir::Builder &b, nir::Val out) {
        nir::Val sum = b.var();
        b.assign(sum, b.constF(0.f));
        nir::Val i = b.var();
        b.assign(i, b.constI(0));
        b.beginLoop();
        b.breakIf(b.ige(i, b.constI(10)));
        b.assign(sum, b.fadd(sum, b.i2f(i)));
        b.assign(i, b.iadd(i, b.constI(1)));
        b.endLoop();
        b.storeGlobal(out, sum, 0);
    });
    EXPECT_EQ(h.out(0), 45.f);
}

} // namespace
} // namespace vksim
