/**
 * @file
 * Golden-stats regression suite: every evaluation workload is simulated
 * at a small fixed configuration and its complete MetricsRegistry dump
 * is compared against a checked-in golden file. Event *counts* must
 * match exactly (raw integer literals); *derived* floating-point values
 * (gauges, accumulator means, bucket widths) get a relative tolerance so
 * a different libm/compiler cannot fail the suite.
 *
 * Any intended change to the performance model shifts these numbers. To
 * regenerate the goldens after such a change:
 *
 *     VKSIM_UPDATE_GOLDEN=1 ./test_golden_stats
 *
 * then review the diff of the tests/golden JSON like any other code —
 * the review IS the point: an unexplained counter shift is a bug.
 */

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/vulkansim.h"
#include "util/jsonio.h"
#include "service/service.h"

#ifndef VKSIM_GOLDEN_DIR
#error "VKSIM_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

/** Relative tolerance for derived floating-point values. */
constexpr double kRelTol = 1e-9;

/** The pinned configuration: small but exercises 4 SMs, 2 partitions. */
GpuConfig
goldenConfig()
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 4;
    cfg.fabric.numPartitions = 2;
    cfg.maxCycles = 100'000'000;
    cfg.threads = 1;
    return cfg;
}

WorkloadParams
goldenParams(WorkloadId id)
{
    WorkloadParams p;
    p.width = 16;
    p.height = 16;
    p.extScale = 0.1f;
    p.rtv5Detail = 3;
    p.rtv6Prims = 400;
    // ACC's golden pins the multi-frame accumulate path, not just the
    // single-launch stats every other workload already covers.
    if (id == WorkloadId::ACC)
        p.frames = 2;
    return p;
}

bool
nearlyEqual(double a, double b)
{
    if (a == b)
        return true;
    double scale = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= kRelTol * scale;
}

/**
 * Recursive structural diff. `exact` means numbers must match as raw
 * literals (counter territory); otherwise numeric values get kRelTol.
 */
void
diffValue(const JsonValue &want, const JsonValue &got,
          const std::string &path, bool exact,
          std::vector<std::string> *errors)
{
    if (want.kind != got.kind) {
        errors->push_back(path + ": kind differs");
        return;
    }
    switch (want.kind) {
      case JsonValue::Kind::Number:
        if (want.raw == got.raw)
            return;
        if (exact)
            errors->push_back(path + ": " + want.raw + " != " + got.raw);
        else if (!nearlyEqual(want.number, got.number))
            errors->push_back(path + ": " + want.raw + " !~ " + got.raw);
        return;
      case JsonValue::Kind::String:
        if (want.str != got.str)
            errors->push_back(path + ": \"" + want.str + "\" != \""
                              + got.str + "\"");
        return;
      case JsonValue::Kind::Bool:
        if (want.boolean != got.boolean)
            errors->push_back(path + ": bool differs");
        return;
      case JsonValue::Kind::Null:
        return;
      case JsonValue::Kind::Array:
        if (want.array.size() != got.array.size()) {
            errors->push_back(path + ": array size "
                              + std::to_string(want.array.size()) + " != "
                              + std::to_string(got.array.size()));
            return;
        }
        for (std::size_t i = 0; i < want.array.size(); ++i)
            diffValue(want.array[i], got.array[i],
                      path + "[" + std::to_string(i) + "]", exact, errors);
        return;
      case JsonValue::Kind::Object:
        for (const auto &[key, sub] : want.object) {
            const JsonValue *other = got.member(key);
            if (!other) {
                errors->push_back(path + "." + key + ": missing");
                continue;
            }
            // Histogram bucket contents and sample counts are event
            // counts; their floating-point summaries are derived.
            bool sub_exact = exact || key == "counters" || key == "buckets"
                             || key == "overflow" || key == "count"
                             || key == "num_buckets";
            // Accumulator/histogram min/max/sum/mean and every gauge are
            // double-valued: tolerance, even inside an exact subtree.
            if (key == "sum" || key == "min" || key == "max"
                || key == "mean" || key == "bucket_width"
                || key == "gauges" || key == "accumulators")
                sub_exact = false;
            diffValue(sub, *other, path + "." + key, sub_exact, errors);
        }
        for (const auto &[key, sub] : got.object) {
            (void)sub;
            if (!want.member(key))
                errors->push_back(path + "." + key
                                  + ": unexpected new metric");
        }
        return;
    }
}

class GoldenStatsTest : public ::testing::TestWithParam<int>
{
};

TEST_P(GoldenStatsTest, MatchesCheckedInGolden)
{
    auto id = static_cast<WorkloadId>(GetParam());
    Workload workload(id, goldenParams(id));
    RunResult run = service::defaultService().submit(workload, goldenConfig()).take().run;
    std::string current = run.metrics.toJson();
    current += "\n";

    const std::string golden_path = std::string(VKSIM_GOLDEN_DIR)
                                    + "/stats_" + workload.name()
                                    + ".json";

    if (const char *update = std::getenv("VKSIM_UPDATE_GOLDEN");
        update && update[0] == '1') {
        std::ofstream os(golden_path);
        ASSERT_TRUE(os.good()) << "cannot write " << golden_path;
        os << current;
        GTEST_SKIP() << "golden regenerated: " << golden_path;
    }

    std::string text, error;
    ASSERT_TRUE(readFile(golden_path, &text, &error))
        << error << " — run with VKSIM_UPDATE_GOLDEN=1 to create it";

    // Fast path: byte-identical (the common case on one toolchain).
    if (text == current)
        return;

    JsonValue want, got;
    ASSERT_TRUE(parseJson(text, &want, &error)) << error;
    ASSERT_TRUE(parseJson(current, &got, &error)) << error;
    std::vector<std::string> errors;
    diffValue(want, got, "$", /*exact=*/false, &errors);
    for (const std::string &e : errors)
        ADD_FAILURE() << e;
    EXPECT_TRUE(errors.empty())
        << errors.size() << " metric(s) drifted from " << golden_path
        << "; if intended, regenerate with VKSIM_UPDATE_GOLDEN=1 and"
           " review the diff";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenStatsTest,
    ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            wl::workloadName(static_cast<WorkloadId>(info.param)));
    });

} // namespace
} // namespace vksim
