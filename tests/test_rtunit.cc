/**
 * @file
 * Direct unit tests of the RT unit timing model against a scripted
 * memory port: warp-buffer capacity, request merging and chunking,
 * response-FIFO pacing, operation latencies, perfect-BVH mode, and the
 * completion/writeback handshake. A real (small) serialized BVH drives
 * the traversal state machines; the port controls timing.
 */

#include <gtest/gtest.h>

#include "accel/serialize.h"
#include "rtunit/rtunit.h"
#include "scene/scenegen.h"
#include "vptx/exec.h"

namespace vksim {
namespace {

/** Port that queues requests and releases them on demand. */
struct ScriptedPort : RtMemPort
{
    struct Pending
    {
        Addr sector;
        std::uint64_t tag;
    };
    std::vector<Pending> reads;
    std::vector<Addr> writes;
    bool stallReads = false;

    bool
    rtIssueRead(Addr sector, std::uint64_t tag) override
    {
        if (stallReads)
            return false;
        reads.push_back({sector, tag});
        return true;
    }

    bool
    rtIssueWrite(Addr sector) override
    {
        writes.push_back(sector);
        return true;
    }
};

/** Fixture: a REF-scene launch with traversals prepared for one warp. */
struct RtFixture
{
    Scene scene;
    GlobalMemory gmem;
    AccelStruct accel;
    vptx::LaunchContext ctx;
    vptx::Program program; // dummy (unused by the RT unit)
    vptx::Warp warp;
    StatGroup stats{"rt"};
    ScriptedPort port;

    explicit RtFixture(unsigned lanes = 8) : scene(makeRefScene())
    {
        accel = buildAccelStruct(scene, gmem);
        ctx.gmem = &gmem;
        ctx.program = &program;
        ctx.tlasRoot = accel.tlasRoot;
        ctx.launchSize[0] = kWarpSize;
        ctx.rtStackBase =
            gmem.allocate(kWarpSize * vptx::kRtStackBytesPerThread, 64);

        warp.warpId = 0;
        vptx::TraverseState &ts = warp.pendingTraverses[1];
        const vptx::Mask mask =
            lanes >= kWarpSize ? ~vptx::Mask(0) : (vptx::Mask(1) << lanes) - 1;
        ts.reset(mask);
        for (unsigned lane = 0; lane < lanes; ++lane) {
            Addr frame = ctx.frameBase(lane, 0);
            Ray ray = scene.camera.generateRay(lane * 4, 24, 48, 48);
            gmem.store<float>(frame + vptx::frame::kRayOriginX,
                              ray.origin.x);
            gmem.store<float>(frame + vptx::frame::kRayOriginY,
                              ray.origin.y);
            gmem.store<float>(frame + vptx::frame::kRayOriginZ,
                              ray.origin.z);
            gmem.store<float>(frame + vptx::frame::kRayTmin, ray.tmin);
            gmem.store<float>(frame + vptx::frame::kRayDirX,
                              ray.direction.x);
            gmem.store<float>(frame + vptx::frame::kRayDirY,
                              ray.direction.y);
            gmem.store<float>(frame + vptx::frame::kRayDirZ,
                              ray.direction.z);
            gmem.store<float>(frame + vptx::frame::kRayTmax, ray.tmax);
            ts.addRay(lane, frame,
                      vptx::rt_runtime::makeTraversal(gmem, accel.tlasRoot,
                                                      frame));
        }
    }

    RtUnit
    makeUnit(RtUnitConfig config = {})
    {
        RtUnit unit(config, &ctx, &stats);
        unit.setMemPort(&port);
        return unit;
    }

    /** Service every outstanding read immediately. */
    void
    serviceAll(RtUnit &unit, Cycle now)
    {
        auto pending = std::move(port.reads);
        port.reads.clear();
        for (auto &p : pending)
            unit.onResponse(p.tag, now);
    }
};

TEST(RtUnitTest, WarpBufferCapacityIsEnforced)
{
    RtFixture fx;
    RtUnitConfig config;
    config.maxWarps = 2;
    RtUnit unit = fx.makeUnit(config);
    EXPECT_TRUE(unit.canAccept());

    RtFixture fx2, fx3;
    unit.submit(&fx.warp, 1, 0);
    // NOTE: fx2/fx3 have their own launch contexts but capacity is what
    // is under test.
    RtUnit unit2 = fx.makeUnit(config);
    unit2.submit(&fx2.warp, 1, 0);
    EXPECT_TRUE(unit2.canAccept());
    unit2.submit(&fx3.warp, 1, 0);
    EXPECT_FALSE(unit2.canAccept());
}

TEST(RtUnitTest, TraversesCompleteAndMatchFunctionalResults)
{
    RtFixture fx(8);
    // Reference: run identical traversals functionally.
    RtFixture ref(8);
    for (unsigned lane = 0; lane < 8; ++lane)
        ref.warp.pendingTraverses[1].ray(lane)->run();

    RtUnit unit = fx.makeUnit();
    unit.submit(&fx.warp, 1, 0);
    Cycle now = 0;
    std::vector<RtUnit::Completion> done;
    while (done.empty() && now < 100000) {
        unit.cycle(now);
        fx.serviceAll(unit, now);
        ++now;
        for (auto &c : unit.drainCompletions())
            done.push_back(c);
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].splitId, 1);
    EXPECT_GT(now, 10u) << "timed traversal must take real cycles";

    for (unsigned lane = 0; lane < 8; ++lane) {
        const RayTraversal *timed = fx.warp.pendingTraverses[1].ray(lane);
        const RayTraversal *func = ref.warp.pendingTraverses[1].ray(lane);
        ASSERT_TRUE(timed->done());
        EXPECT_EQ(timed->hit().valid(), func->hit().valid()) << lane;
        if (timed->hit().valid()) {
            EXPECT_FLOAT_EQ(timed->hit().t, func->hit().t) << lane;
        }
        EXPECT_EQ(timed->nodesVisited(), func->nodesVisited()) << lane;
    }
}

TEST(RtUnitTest, IdenticalLaneRequestsAreMerged)
{
    // All lanes trace the same ray: the root fetch must merge into a
    // single memory request (paper Sec. III-C3).
    RtFixture fx(8);
    vptx::TraverseState &ts = fx.warp.pendingTraverses[1];
    const Addr frame0 = ts.frameBase(0);
    ts.reset(ts.mask);
    for (unsigned lane = 0; lane < 8; ++lane) {
        ts.addRay(lane, fx.ctx.frameBase(lane, 0),
                  vptx::rt_runtime::makeTraversal(fx.gmem, fx.accel.tlasRoot,
                                                  frame0));
    }
    RtUnit unit = fx.makeUnit();
    unit.submit(&fx.warp, 1, 0);
    unit.cycle(0);
    unit.cycle(1);
    unit.cycle(2);
    EXPECT_GE(fx.stats.get("mem_merged"), 7u)
        << "seven lanes must merge into the first lane's root fetch";
}

TEST(RtUnitTest, PortStallBackpressuresRequests)
{
    RtFixture fx(4);
    RtUnit unit = fx.makeUnit();
    fx.port.stallReads = true;
    unit.submit(&fx.warp, 1, 0);
    for (Cycle now = 0; now < 50; ++now)
        unit.cycle(now);
    EXPECT_TRUE(fx.port.reads.empty());
    EXPECT_TRUE(unit.busy());
    // Release the stall: requests flow and the warp finishes.
    fx.port.stallReads = false;
    Cycle now = 50;
    while (unit.busy() && now < 100000) {
        unit.cycle(now);
        fx.serviceAll(unit, now);
        ++now;
        unit.drainCompletions();
    }
    EXPECT_FALSE(unit.busy());
}

TEST(RtUnitTest, PerfectBvhNeedsNoPort)
{
    RtFixture fx(8);
    RtUnitConfig config;
    config.perfectBvh = true;
    RtUnit unit = fx.makeUnit(config);
    unit.submit(&fx.warp, 1, 0);
    Cycle now = 0;
    std::vector<RtUnit::Completion> done;
    while (done.empty() && now < 100000) {
        unit.cycle(now);
        ++now;
        for (auto &c : unit.drainCompletions())
            done.push_back(c);
    }
    EXPECT_EQ(done.size(), 1u);
    EXPECT_TRUE(fx.port.reads.empty())
        << "perfect BVH must not issue node fetches";
}

TEST(RtUnitTest, OpLatencyPacesCompletion)
{
    auto run_with_latency = [&](unsigned box_latency) {
        RtFixture fx(8);
        RtUnitConfig config;
        config.perfectBvh = true;
        config.boxLatency = box_latency;
        config.triLatency = box_latency;
        RtUnit unit = fx.makeUnit(config);
        unit.submit(&fx.warp, 1, 0);
        Cycle now = 0;
        while (unit.busy() && now < 1000000) {
            unit.cycle(now);
            ++now;
            unit.drainCompletions();
        }
        return now;
    };
    Cycle fast = run_with_latency(2);
    Cycle slow = run_with_latency(40);
    EXPECT_GT(slow, fast)
        << "operation-unit latency must lengthen traversal";
}

TEST(RtUnitTest, ActiveRaysTrackLaneProgress)
{
    RtFixture fx(8);
    RtUnit unit = fx.makeUnit();
    EXPECT_EQ(unit.activeRays(), 0u);
    unit.submit(&fx.warp, 1, 0);
    EXPECT_EQ(unit.activeRays(), 8u);
    Cycle now = 0;
    while (unit.busy() && now < 100000) {
        unit.cycle(now);
        fx.serviceAll(unit, now);
        ++now;
        unit.drainCompletions();
    }
    EXPECT_EQ(unit.activeRays(), 0u);
}

TEST(RtUnitTest, ChunkAccountingSurvivesQueueBackpressure)
{
    // Regression: when the Memory Access Queue filled up mid-node, the
    // scheduler moved the lane to WaitingMem with only the chunks queued
    // so far; the node's remaining 32 B chunks were never fetched, so
    // traversal proceeded having "paid" for part of the node. Under
    // backpressure this silently deflated RT-unit memory traffic.
    //
    // Conservation law: every node fetch is 64 B (2 chunks) except the
    // 128 B TopLeaf (4 chunks), and each chunk becomes exactly one new
    // request or one merge. With a tiny queue and a port that stalls in
    // bursts, the totals must still balance.
    RtFixture fx(8);
    RtUnitConfig config;
    config.memQueueSize = 4; // minimum: one TopLeaf node (4 chunks)
    RtUnit unit = fx.makeUnit(config);
    unit.submit(&fx.warp, 1, 0);
    Cycle now = 0;
    while (unit.busy() && now < 1000000) {
        fx.port.stallReads = (now % 8) < 5; // bursty port backpressure
        unit.cycle(now);
        fx.port.stallReads = false;
        fx.serviceAll(unit, now);
        ++now;
        unit.drainCompletions();
    }
    ASSERT_FALSE(unit.busy()) << "warp did not complete";

    std::uint64_t expected_chunks = 0;
    for (unsigned lane = 0; lane < 8; ++lane) {
        const RayTraversal *trav = fx.warp.pendingTraverses[1].ray(lane);
        ASSERT_TRUE(trav->done()) << lane;
        // 2 chunks per node plus 2 extra for each 128 B TopLeaf (one
        // transform op per TopLeaf fetch).
        expected_chunks += 2 * trav->nodesVisited() + 2 * trav->transforms();
    }
    EXPECT_EQ(fx.stats.get("mem_requests") + fx.stats.get("mem_merged"),
              expected_chunks)
        << "every 32 B chunk of every fetched node must be requested "
           "or merged exactly once";
}

TEST(RtUnitTest, WritebackGeneratesHitStores)
{
    RtFixture fx(8);
    RtUnit unit = fx.makeUnit();
    unit.submit(&fx.warp, 1, 0);
    Cycle now = 0;
    while (unit.busy() && now < 100000) {
        unit.cycle(now);
        fx.serviceAll(unit, now);
        ++now;
        unit.drainCompletions();
    }
    // One hit-record store sector per participating ray, plus any spills.
    EXPECT_GE(fx.port.writes.size(), 8u);
}

} // namespace
} // namespace vksim
