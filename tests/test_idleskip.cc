/**
 * @file
 * The stepping-equivalence acceptance suite (DESIGN.md, "Stepping
 * contract"): event-stepped clocking — sleeping quiescent SMs,
 * bulk-replaying their heartbeat on wake, fast-forwarding the fabric
 * through provably event-free cycles, and advancing SMs through
 * multi-cycle epochs between barriers — must be *unobservable*. For
 * every workload, a run with idle-skip enabled must match the
 * lock-step run bit for bit at every epoch length: cycle count, every
 * stat group, the full metrics JSON, the digest trace, the occupancy
 * trace, and the rendered image — on the serial and the threaded
 * engine alike. The only permitted difference is the skip telemetry
 * itself (RunResult::smCyclesSkipped), which is kept out of the
 * metrics registry for exactly that reason.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/vulkansim.h"
#include "service/service.h"

namespace vksim {
namespace {

using wl::Workload;
using wl::WorkloadId;
using wl::WorkloadParams;

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.width = 16;
    p.height = 16;
    p.extScale = 0.1f;
    p.rtv5Detail = 3;
    p.rtv6Prims = 400;
    return p;
}

GpuConfig
engineConfig(bool idle_skip, unsigned threads, unsigned epoch_cycles)
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 8; // enough SMs that some go quiescent mid-run
    cfg.fabric.numPartitions = 2;
    cfg.maxCycles = 100'000'000;
    cfg.occupancySamplePeriod = 64;
    cfg.digestTrace = true;
    cfg.idleSkip = idle_skip;
    cfg.threads = threads;
    cfg.epochCycles = epoch_cycles;
    return cfg;
}

void
expectSameStats(const StatGroup &a, const StatGroup &b, const char *what)
{
    ASSERT_EQ(a.counters().size(), b.counters().size()) << what;
    auto ib = b.counters().begin();
    for (const auto &[name, counter] : a.counters()) {
        EXPECT_EQ(name, ib->first) << what;
        EXPECT_EQ(counter.value(), ib->second.value())
            << what << "." << name;
        ++ib;
    }
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    expectSameStats(a.core, b.core, "core");
    expectSameStats(a.rt, b.rt, "rt");
    expectSameStats(a.l1, b.l1, "l1");
    expectSameStats(a.dram, b.dram, "dram");
    expectSameStats(a.l2, b.l2, "l2");
    EXPECT_EQ(a.occupancyTrace, b.occupancyTrace);
    EXPECT_EQ(a.metrics.toJson(), b.metrics.toJson());

    // The digest trace hashes the complete architectural state of every
    // unit at every sample; equality here means skipped cycles left no
    // trace anywhere in the machine.
    ASSERT_EQ(a.digests.units, b.digests.units);
    ASSERT_EQ(a.digests.period, b.digests.period);
    ASSERT_EQ(a.digests.values.size(), b.digests.values.size());
    EXPECT_FALSE(a.digests.firstDivergence(b.digests).diverged);
}

class IdleSkipEquivalenceTest : public ::testing::TestWithParam<int>
{
};

TEST_P(IdleSkipEquivalenceTest, BitIdenticalToLockStep)
{
    auto id = static_cast<WorkloadId>(GetParam());

    // The lock-step reference: every unit cycled every cycle, one
    // barrier per cycle (epochCycles = 1 pins the oracle engine).
    Workload ref_wl(id, tinyParams());
    RunResult ref = service::defaultService().submit(
        ref_wl, engineConfig(/*idle_skip=*/false, 1, /*epoch_cycles=*/1)).take().run;
    Image ref_img = ref_wl.readFramebuffer();
    EXPECT_EQ(ref.smCyclesSkipped, 0u);
    EXPECT_EQ(ref.epochCyclesUsed, 1u);

    for (unsigned epoch : {1u, 32u, 128u}) {
        for (unsigned threads : {1u, 4u}) {
            Workload skip_wl(id, tinyParams());
            RunResult skip = service::defaultService().submit(
                skip_wl, engineConfig(/*idle_skip=*/true, threads, epoch)).take().run;
            expectSameRun(ref, skip);
            EXPECT_EQ(ref_img.data(), skip_wl.readFramebuffer().data())
                << "framebuffer differs at " << threads << " threads, "
                << epoch << "-cycle epochs";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, IdleSkipEquivalenceTest,
    ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            wl::workloadName(static_cast<WorkloadId>(info.param)));
    });

// Multi-frame runs thread cross-frame state (the accumulation buffer,
// the rotated seed) through device memory between launches; the
// stepping contract must hold across that seam too.
TEST(IdleSkipTest, MultiFrameAccumulationIsBitIdentical)
{
    WorkloadParams p = tinyParams();
    p.frames = 2;

    Workload ref_wl(WorkloadId::ACC, p);
    RunResult ref = service::defaultService().submit(
        ref_wl, engineConfig(/*idle_skip=*/false, 1, 1)).take().run;
    Image ref_img = ref_wl.readFramebuffer();

    Workload skip_wl(WorkloadId::ACC, p);
    RunResult skip = service::defaultService().submit(
        skip_wl, engineConfig(/*idle_skip=*/true, 4, 64)).take().run;
    EXPECT_EQ(ref.cycles, skip.cycles);
    EXPECT_EQ(ref.metrics.toJson(), skip.metrics.toJson());
    EXPECT_EQ(ref_img.data(), skip_wl.readFramebuffer().data())
        << "accumulated framebuffer differs across engines";
}

// The scheduler must actually skip something on a workload with cold
// SMs, or the suite above is vacuous.
TEST(IdleSkipTest, ColdSmsAreSkipped)
{
    WorkloadParams p = tinyParams();
    p.width = 8;
    p.height = 4; // one warp on an 8-SM machine
    Workload w(WorkloadId::TRI, p);
    RunResult run = service::defaultService().submit(w, engineConfig(true, 1, 64)).take().run;
    // Seven SMs sleep essentially the whole run.
    EXPECT_GT(run.smCyclesSkipped, 6u * run.cycles);
}

} // namespace
} // namespace vksim
