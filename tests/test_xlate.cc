/**
 * @file
 * Tests for the NIR builder and the NIR-to-VPTX translator, including the
 * structure of the Algorithm 1 / Algorithm 3 traceRay expansions.
 */

#include <gtest/gtest.h>

#include "workloads/shaders.h"
#include "xlate/translate.h"

namespace vksim {
namespace {

using nir::Builder;
using vptx::Opcode;

/** Count instructions of a given opcode in a program. */
unsigned
countOp(const vptx::Program &prog, Opcode op)
{
    unsigned n = 0;
    for (const vptx::Instr &i : prog.code)
        if (i.op == op)
            ++n;
    return n;
}

xlate::PipelineDesc
singleShaderPipeline(const nir::Shader &raygen, const nir::Shader &miss,
                     const nir::Shader &chit)
{
    xlate::PipelineDesc desc;
    desc.shaders = {&raygen, &chit, &miss};
    desc.raygen = 0;
    desc.missShaders = {2};
    xlate::HitGroupDesc hg;
    hg.closestHit = 1;
    desc.hitGroups.push_back(hg);
    return desc;
}

TEST(NirBuilderTest, StructuredBlocksNest)
{
    Builder b("t", vptx::ShaderStage::RayGen);
    nir::Val c = b.constI(1);
    b.beginIf(c);
    b.constI(2);
    b.beginElse();
    b.beginLoop();
    b.breakIf(c);
    b.endLoop();
    b.endIf();
    nir::Shader s = b.finish();
    ASSERT_EQ(s.body.size(), 2u);
    EXPECT_EQ(s.body[1].kind, nir::Node::Kind::If);
    EXPECT_EQ(s.body[1].thenBlock.size(), 1u);
    ASSERT_EQ(s.body[1].elseBlock.size(), 1u);
    EXPECT_EQ(s.body[1].elseBlock[0].kind, nir::Node::Kind::Loop);
}

TEST(NirBuilderTest, CountInstrsSeesNestedInstructions)
{
    Builder b("t", vptx::ShaderStage::RayGen);
    nir::Val c = b.constI(1);
    b.beginLoop();
    b.iadd(c, c);
    b.breakIf(c);
    b.endLoop();
    nir::Shader s = b.finish();
    // const + (iadd + breakif) inside the loop.
    EXPECT_EQ(nir::countInstrs(s), 3u);
}

TEST(TranslatorTest, EmptyIfLowersToBranchWithReconv)
{
    Builder rb("rg", vptx::ShaderStage::RayGen);
    nir::Val c = rb.constI(1);
    rb.beginIf(c);
    rb.constI(7);
    rb.endIf();
    nir::Shader raygen = rb.finish();

    Builder mb("miss", vptx::ShaderStage::Miss);
    nir::Shader miss = mb.finish();
    Builder cb("chit", vptx::ShaderStage::ClosestHit);
    nir::Shader chit = cb.finish();

    vptx::Program prog =
        xlate::translate(singleShaderPipeline(raygen, miss, chit));
    ASSERT_EQ(countOp(prog, Opcode::BraZ), 1u);
    for (const vptx::Instr &i : prog.code)
        if (i.op == Opcode::BraZ) {
            EXPECT_EQ(i.target, i.reconv)
                << "if without else reconverges at its target";
            EXPECT_GT(i.target, 0u);
        }
    // Raygen ends with Exit, others with Ret.
    EXPECT_EQ(countOp(prog, Opcode::Exit), 1u);
    EXPECT_EQ(countOp(prog, Opcode::Ret), 2u);
}

TEST(TranslatorTest, LoopBreakTargetsLoopExit)
{
    Builder rb("rg", vptx::ShaderStage::RayGen);
    nir::Val c = rb.constI(0);
    rb.beginLoop();
    rb.breakIf(c);
    rb.endLoop();
    nir::Shader raygen = rb.finish();
    Builder mb("miss", vptx::ShaderStage::Miss);
    nir::Shader miss = mb.finish();
    Builder cb("chit", vptx::ShaderStage::ClosestHit);
    nir::Shader chit = cb.finish();

    vptx::Program prog =
        xlate::translate(singleShaderPipeline(raygen, miss, chit));
    // Find the Bra (break) and the back Jmp.
    bool found_break = false;
    for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
        const vptx::Instr &i = prog.code[pc];
        if (i.op == Opcode::Bra) {
            found_break = true;
            EXPECT_GT(i.target, pc);
            EXPECT_EQ(i.target, i.reconv);
        }
        if (i.op == Opcode::Jmp) {
            EXPECT_LT(i.target, pc) << "loop back-edge jumps backwards";
        }
    }
    EXPECT_TRUE(found_break);
}

TEST(TranslatorTest, TraceRayExpandsPerAlgorithm1)
{
    // Use the real workload shaders: the path raygen traces rays.
    nir::Shader raygen = wl::makeRaygenPath();
    nir::Shader chit = wl::makeClosestHitSurface();
    nir::Shader miss = wl::makeMissShader();
    nir::Shader isect = wl::makeIntersectionSphere();

    xlate::PipelineDesc desc;
    desc.shaders = {&raygen, &chit, &miss, &isect};
    desc.raygen = 0;
    desc.missShaders = {2};
    xlate::HitGroupDesc tri;
    tri.closestHit = 1;
    xlate::HitGroupDesc sph;
    sph.closestHit = 1;
    sph.intersection = 3;
    desc.hitGroups = {tri, sph};

    vptx::Program prog = xlate::translate(desc);
    EXPECT_EQ(countOp(prog, Opcode::TraverseAS), 1u);
    EXPECT_EQ(countOp(prog, Opcode::EndTraceRay), 1u);
    EXPECT_EQ(countOp(prog, Opcode::RtPushFrame), 1u);
    EXPECT_EQ(countOp(prog, Opcode::GetNextCoalescedCall), 0u);
    // Calls: intersection chain (1) + default any-hit (inline commit) +
    // closest-hit chain (1) + miss (1) = 3 calls.
    EXPECT_EQ(countOp(prog, Opcode::Call), 3u);
    EXPECT_EQ(countOp(prog, Opcode::CommitAnyHit), 1u);

    // Every call target must be a valid shader entry.
    for (const vptx::Instr &i : prog.code)
        if (i.op == Opcode::Call) {
            bool valid = false;
            for (const vptx::ShaderInfo &s : prog.shaders)
                if (s.entryPc == i.target)
                    valid = true;
            EXPECT_TRUE(valid) << "call to non-entry pc " << i.target;
        }
}

TEST(TranslatorTest, FccUsesGetNextCoalescedCall)
{
    nir::Shader raygen = wl::makeRaygenPath();
    nir::Shader chit = wl::makeClosestHitSurface();
    nir::Shader miss = wl::makeMissShader();
    nir::Shader isect = wl::makeIntersectionSphere();

    xlate::PipelineDesc desc;
    desc.shaders = {&raygen, &chit, &miss, &isect};
    desc.raygen = 0;
    desc.missShaders = {2};
    xlate::HitGroupDesc sph;
    sph.closestHit = 1;
    sph.intersection = 3;
    desc.hitGroups = {sph};

    xlate::TranslateOptions opts;
    opts.fcc = true;
    vptx::Program prog = xlate::translate(desc, opts);
    EXPECT_EQ(countOp(prog, Opcode::GetNextCoalescedCall), 1u);
    // FCC reads shader ids from the coalescing buffer, not per-thread
    // SBT lookups inside the loop.
    EXPECT_EQ(countOp(prog, Opcode::TraverseAS), 1u);
}

TEST(TranslatorTest, BranchTargetsInBounds)
{
    for (bool fcc : {false, true}) {
        nir::Shader raygen = wl::makeRaygenWhitted();
        nir::Shader chit = wl::makeClosestHitSurface();
        nir::Shader miss = wl::makeMissShader();
        xlate::PipelineDesc desc;
        desc.shaders = {&raygen, &chit, &miss};
        desc.raygen = 0;
        desc.missShaders = {2};
        xlate::HitGroupDesc hg;
        hg.closestHit = 1;
        desc.hitGroups = {hg};
        xlate::TranslateOptions opts;
        opts.fcc = fcc;
        vptx::Program prog = xlate::translate(desc, opts);
        for (const vptx::Instr &i : prog.code) {
            if (i.op == Opcode::Bra || i.op == Opcode::BraZ
                || i.op == Opcode::Jmp || i.op == Opcode::Call) {
                EXPECT_LT(i.target, prog.code.size());
                EXPECT_NE(i.target, 0xDEADBEEFu);
            }
            if (i.op == Opcode::Bra || i.op == Opcode::BraZ) {
                EXPECT_LE(i.reconv, prog.code.size());
            }
        }
    }
}

TEST(DisassemblerTest, ProducesReadableListing)
{
    nir::Shader raygen = wl::makeRaygenBary();
    nir::Shader chit = wl::makeClosestHitBary();
    nir::Shader miss = wl::makeMissShader();
    vptx::Program prog =
        xlate::translate(singleShaderPipeline(raygen, miss, chit));
    std::string text = vptx::disassemble(prog);
    EXPECT_NE(text.find("traverseAS"), std::string::npos);
    EXPECT_NE(text.find("endTraceRay"), std::string::npos);
    EXPECT_NE(text.find("raygen"), std::string::npos);
    EXPECT_NE(text.find("load_ray_launch_id"), std::string::npos);
}

} // namespace
} // namespace vksim
