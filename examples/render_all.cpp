/**
 * @file
 * Render every evaluation workload (Table IV) on the cycle-level
 * simulator, verify each image against the CPU reference renderer, and
 * write the PPMs — a one-command gallery of the whole system.
 *
 * All five scenes are one SimService batch: they simulate concurrently
 * (whole jobs across service lanes) and share translated pipelines via
 * the artifact cache.
 *
 * Usage: render_all [--size=48] [--mobile] [--outdir=.]
 *                   [--threads=N] [--serial] [--perf]
 *                   [--stats-json=stats.json]
 *                   [--timeline=trace.json] [--timeline-sample=64]
 *                   [--timeline-max-events=1048576]
 *
 * --stats-json dumps the complete MetricsRegistry of every run into one
 * JSON object keyed by scene name; the file is byte-identical for every
 * --threads value (determinism contract). --timeline writes one
 * Chrome-trace file per workload, the scene name inserted before the
 * extension (trace.json -> trace.TRI.json, ...).
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/vulkansim.h"
#include "service/service.h"
#include "util/cli.h"

namespace {

/** "out.json" + "TRI" -> "out.TRI.json"; no extension -> "out.TRI". */
std::string
perWorkloadPath(const std::string &path, const std::string &scene)
{
    auto dot = path.rfind('.');
    auto slash = path.find_last_of('/');
    if (dot == std::string::npos
        || (slash != std::string::npos && dot < slash))
        return path + "." + scene;
    return path.substr(0, dot) + "." + scene + path.substr(dot);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vksim;
    Cli cli("render_all [flags]",
            "Render all five evaluation workloads as one service batch "
            "and verify each image against the CPU reference.");
    cli.option("size", "px", "48", "launch width and height per scene")
        .flag("mobile", "use the mobile Table III configuration")
        .option("outdir", "dir", ".", "PPM output directory");
    addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    unsigned size = static_cast<unsigned>(cli.getInt("size"));
    std::string outdir = cli.get("outdir");
    GpuConfig config =
        cli.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    if (!applySimFlags(cli, &config))
        return 1;
    const unsigned threads = cli.threadCount();

    const std::string stats_path = cli.get("stats-json");
    const std::string timeline_path = cli.get("timeline");

    std::ofstream stats_out;
    if (!stats_path.empty()) {
        stats_out.open(stats_path);
        if (!stats_out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         stats_path.c_str());
            return 1;
        }
        stats_out << "{\n";
    }

    // Submit the whole gallery as one batch.
    service::SimService svc({threads});
    std::vector<service::JobTicket> tickets;
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        service::JobSpec spec;
        spec.name = wl::workloadName(id);
        spec.workload = id;
        spec.params.width = size;
        spec.params.height = size;
        spec.params.extScale = 0.25f;
        spec.params.rtv5Detail = 5;
        spec.config = config;
        spec.config.threads = 0; // parallelism lives at the service level
        if (!timeline_path.empty())
            spec.config.timeline.path =
                perWorkloadPath(timeline_path, spec.name);
        tickets.push_back(svc.submit(spec));
    }
    svc.flush();

    std::printf("%-6s %10s %12s %8s %10s  %s\n", "scene", "prims",
                "cycles", "SIMT", "img diff", "output");
    bool first_stats = true;
    for (service::JobTicket &ticket : tickets) {
        const service::JobResult &result = ticket.get();
        wl::Workload &workload = *result.workload;
        ImageDiff diff = compareImages(
            result.image, workload.renderReferenceImage(nullptr, threads));
        std::string path = outdir + "/" + workload.name() + ".ppm";
        result.image.writePpm(path);
        std::printf("%-6s %10zu %12llu %7.1f%% %9.4f%%  %s\n",
                    workload.name(), workload.scene().totalPrimitives(),
                    static_cast<unsigned long long>(result.run.cycles),
                    100.0 * result.run.simtEfficiency(),
                    100.0 * diff.differingFraction(), path.c_str());
        if (stats_out.is_open()) {
            stats_out << (first_stats ? "" : ",\n") << "\""
                      << workload.name() << "\":\n";
            result.run.metrics.writeJson(stats_out, 2);
            first_stats = false;
        }
    }
    if (stats_out.is_open()) {
        stats_out << "\n}\n";
        std::printf("stats json: %s\n", stats_path.c_str());
    }
    return 0;
}
