/**
 * @file
 * Render every evaluation workload (Table IV) on the cycle-level
 * simulator, verify each image against the CPU reference renderer, and
 * write the PPMs — a one-command gallery of the whole system.
 *
 * Usage: render_all [--size=48] [--mobile] [--outdir=.]
 *                   [--threads=N] [--serial] [--perf]
 *                   [--stats-json=stats.json]
 *                   [--timeline=trace.json] [--timeline-sample=64]
 *                   [--timeline-max-events=1048576]
 *
 * --stats-json dumps the complete MetricsRegistry of every run into one
 * JSON object keyed by scene name; the file is byte-identical for every
 * --threads value (determinism contract). --timeline writes one
 * Chrome-trace file per workload, the scene name inserted before the
 * extension (trace.json -> trace.TRI.json, ...).
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "core/vulkansim.h"
#include "util/options.h"

namespace {

/** "out.json" + "TRI" -> "out.TRI.json"; no extension -> "out.TRI". */
std::string
perWorkloadPath(const std::string &path, const std::string &scene)
{
    auto dot = path.rfind('.');
    auto slash = path.find_last_of('/');
    if (dot == std::string::npos
        || (slash != std::string::npos && dot < slash))
        return path + "." + scene;
    return path.substr(0, dot) + "." + scene + path.substr(dot);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vksim;
    Options opts(argc, argv);
    unsigned size = static_cast<unsigned>(opts.getInt("size", 48));
    std::string outdir = opts.get("outdir", ".");
    GpuConfig config =
        opts.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    const unsigned threads = opts.threadCount();
    config.threads = threads;
    config.printPerfSummary = opts.getBool("perf");

    const std::string stats_path = opts.get("stats-json", "");
    const std::string timeline_path = opts.get("timeline", "");
    config.timeline.sampleInterval = static_cast<Cycle>(
        opts.getInt("timeline-sample", 64));
    config.timeline.maxEvents = static_cast<std::uint64_t>(
        opts.getInt("timeline-max-events", 1 << 20));

    std::ofstream stats_out;
    if (!stats_path.empty()) {
        stats_out.open(stats_path);
        if (!stats_out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         stats_path.c_str());
            return 1;
        }
        stats_out << "{\n";
    }

    std::printf("%-6s %10s %12s %8s %10s  %s\n", "scene", "prims",
                "cycles", "SIMT", "img diff", "output");
    bool first_stats = true;
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::WorkloadParams params;
        params.width = size;
        params.height = size;
        params.extScale = 0.25f;
        params.rtv5Detail = 5;
        wl::Workload workload(id, params);
        if (!timeline_path.empty())
            config.timeline.path =
                perWorkloadPath(timeline_path, workload.name());
        RunResult run = simulateWorkload(workload, config);
        Image image = workload.readFramebuffer();
        ImageDiff diff = compareImages(
            image, workload.renderReferenceImage(nullptr, threads));
        std::string path = outdir + "/" + workload.name() + ".ppm";
        image.writePpm(path);
        std::printf("%-6s %10zu %12llu %7.1f%% %9.4f%%  %s\n",
                    workload.name(), workload.scene().totalPrimitives(),
                    static_cast<unsigned long long>(run.cycles),
                    100.0 * run.simtEfficiency(),
                    100.0 * diff.differingFraction(), path.c_str());
        if (stats_out.is_open()) {
            stats_out << (first_stats ? "" : ",\n") << "\""
                      << workload.name() << "\":\n";
            run.metrics.writeJson(stats_out, 2);
            first_stats = false;
        }
    }
    if (stats_out.is_open()) {
        stats_out << "\n}\n";
        std::printf("stats json: %s\n", stats_path.c_str());
    }
    return 0;
}
