/**
 * @file
 * Render every evaluation workload (Table IV) on the cycle-level
 * simulator, verify each image against the CPU reference renderer, and
 * write the PPMs — a one-command gallery of the whole system.
 *
 * Usage: render_all [--size=48] [--mobile] [--outdir=.]
 *                   [--threads=N] [--serial] [--perf]
 */

#include <cstdio>
#include <string>

#include "core/vulkansim.h"
#include "util/options.h"

int
main(int argc, char **argv)
{
    using namespace vksim;
    Options opts(argc, argv);
    unsigned size = static_cast<unsigned>(opts.getInt("size", 48));
    std::string outdir = opts.get("outdir", ".");
    GpuConfig config =
        opts.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    const unsigned threads = opts.threadCount();
    config.threads = threads;
    config.printPerfSummary = opts.getBool("perf");

    std::printf("%-6s %10s %12s %8s %10s  %s\n", "scene", "prims",
                "cycles", "SIMT", "img diff", "output");
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::WorkloadParams params;
        params.width = size;
        params.height = size;
        params.extScale = 0.25f;
        params.rtv5Detail = 5;
        wl::Workload workload(id, params);
        RunResult run = simulateWorkload(workload, config);
        Image image = workload.readFramebuffer();
        ImageDiff diff = compareImages(
            image, workload.renderReferenceImage(nullptr, threads));
        std::string path = outdir + "/" + workload.name() + ".ppm";
        image.writePpm(path);
        std::printf("%-6s %10zu %12llu %7.1f%% %9.4f%%  %s\n",
                    workload.name(), workload.scene().totalPrimitives(),
                    static_cast<unsigned long long>(run.cycles),
                    100.0 * run.simtEfficiency(),
                    100.0 * diff.differingFraction(), path.c_str());
    }
    return 0;
}
