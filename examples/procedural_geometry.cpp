/**
 * @file
 * The RTV6 workload: path tracing over procedural spheres *and* cubes,
 * each with its own intersection shader — the scene the paper built to
 * evaluate Function Call Coalescing (Sec. IV-A / VI-E). Submits baseline
 * and FCC as one service batch (they share the BVH through the artifact
 * cache; the pipelines differ, so those are built twice) and reports the
 * trade-off: SIMT efficiency up, RT-unit memory traffic up, net
 * slowdown.
 *
 * Usage: procedural_geometry [--width=48] [--height=48] [--prims=2000]
 *                            [--bounces=4] [--mobile] [--out=rtv6.ppm]
 *                            [--threads=N] [--serial] [--perf]
 */

#include <cstdio>

#include "core/vulkansim.h"
#include "service/service.h"
#include "util/cli.h"
#include "vptx/isa.h"

int
main(int argc, char **argv)
{
    using namespace vksim;
    Cli cli("procedural_geometry [flags]",
            "Run RTV6 baseline vs Function Call Coalescing as one "
            "service batch and report the trade-off.");
    cli.option("width", "px", "48", "launch width")
        .option("height", "px", "48", "launch height")
        .option("prims", "N", "2000", "procedural primitive count")
        .option("bounces", "N", "4", "path-tracing bounce limit")
        .flag("mobile", "use the mobile Table III configuration")
        .option("out", "file", "rtv6.ppm", "output PPM path");
    addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    wl::WorkloadParams params;
    params.width = static_cast<unsigned>(cli.getInt("width"));
    params.height = static_cast<unsigned>(cli.getInt("height"));
    params.rtv6Prims = static_cast<unsigned>(cli.getInt("prims"));
    params.shading.maxBounces =
        static_cast<unsigned>(cli.getInt("bounces"));

    GpuConfig config =
        cli.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    if (!applySimFlags(cli, &config))
        return 1;
    config.threads = 0; // parallelism lives at the service level

    std::printf("RTV6: %u procedural primitives, %u bounces\n",
                params.rtv6Prims, params.shading.maxBounces);

    // One batch of two jobs: baseline (Algorithm 1, per-thread
    // intersection table) and FCC (Algorithm 3, getNextCoalescedCall).
    // Same scene, so the BVH is built once and shared.
    service::SimService svc({cli.threadCount()});

    service::JobSpec base_spec;
    base_spec.name = "baseline";
    base_spec.workload = wl::WorkloadId::RTV6;
    base_spec.params = params;
    base_spec.config = config;
    service::JobTicket base_job = svc.submit(base_spec);

    service::JobSpec fcc_spec = base_spec;
    fcc_spec.name = "fcc";
    fcc_spec.params.fcc = true;
    service::JobTicket fcc_job = svc.submit(fcc_spec);

    svc.flush();
    const service::JobResult &base = base_job.get();
    const service::JobResult &fcc = fcc_job.get();
    const RunResult &base_run = base.run;
    const RunResult &fcc_run = fcc.run;

    std::printf("pipeline shaders:\n");
    for (const auto &shader : base.workload->pipeline().program().shaders)
        std::printf("  [%s] %s (%u regs)\n",
                    vptx::shaderStageName(shader.stage),
                    shader.name.c_str(), shader.numRegs);

    const service::ArtifactCounters &cache = svc.artifacts().counters();
    std::printf("artifact cache: BVH built %llu time(s) for 2 jobs "
                "(%llu hit), pipelines built %llu time(s)\n",
                static_cast<unsigned long long>(cache.bvhBuilds),
                static_cast<unsigned long long>(cache.bvhHits),
                static_cast<unsigned long long>(cache.pipelineBuilds));

    std::printf("\n%-22s %14s %14s\n", "", "baseline", "fcc");
    std::printf("%-22s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(base_run.cycles),
                static_cast<unsigned long long>(fcc_run.cycles));
    std::printf("%-22s %13.1f%% %13.1f%%\n", "SIMT efficiency",
                100.0 * base_run.simtEfficiency(),
                100.0 * fcc_run.simtEfficiency());
    std::printf("%-22s %14llu %14llu\n", "RT-unit mem requests",
                static_cast<unsigned long long>(
                    base_run.rt.get("mem_requests")),
                static_cast<unsigned long long>(
                    fcc_run.rt.get("mem_requests")
                    + fcc_run.rt.get("fcc_insert_loads")
                    + fcc_run.rt.get("fcc_insert_stores")));
    std::printf("%-22s %14.3f\n", "FCC speedup",
                static_cast<double>(base_run.cycles) / fcc_run.cycles);

    ImageDiff diff = compareImages(base.image, fcc.image, 0.f);
    std::printf("functional check: FCC image identical to baseline: %s\n",
                diff.differingPixels == 0 ? "yes" : "NO");

    std::string out = cli.get("out");
    if (fcc.image.writePpm(out))
        std::printf("wrote %s\n", out.c_str());
    return 0;
}
