/**
 * @file
 * The RTV6 workload: path tracing over procedural spheres *and* cubes,
 * each with its own intersection shader — the scene the paper built to
 * evaluate Function Call Coalescing (Sec. IV-A / VI-E). Runs baseline
 * and FCC back to back and reports the trade-off: SIMT efficiency up,
 * RT-unit memory traffic up, net slowdown.
 *
 * Usage: procedural_geometry [--width=48] [--height=48] [--prims=2000]
 *                            [--bounces=4] [--mobile] [--out=rtv6.ppm]
 */

#include <cstdio>

#include "core/vulkansim.h"
#include "util/options.h"
#include "vptx/isa.h"

int
main(int argc, char **argv)
{
    using namespace vksim;
    Options opts(argc, argv);
    wl::WorkloadParams params;
    params.width = static_cast<unsigned>(opts.getInt("width", 48));
    params.height = static_cast<unsigned>(opts.getInt("height", 48));
    params.rtv6Prims = static_cast<unsigned>(opts.getInt("prims", 2000));
    params.shading.maxBounces =
        static_cast<unsigned>(opts.getInt("bounces", 4));

    GpuConfig config =
        opts.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();

    std::printf("RTV6: %u procedural primitives, %u bounces\n",
                params.rtv6Prims, params.shading.maxBounces);

    // Baseline (Algorithm 1: per-thread intersection table).
    wl::Workload baseline(wl::WorkloadId::RTV6, params);
    std::printf("pipeline shaders:\n");
    for (const auto &shader : baseline.pipeline().program.shaders)
        std::printf("  [%s] %s (%u regs)\n",
                    vptx::shaderStageName(shader.stage),
                    shader.name.c_str(), shader.numRegs);
    RunResult base_run = simulateWorkload(baseline, config);

    // FCC (Algorithm 3: getNextCoalescedCall).
    params.fcc = true;
    wl::Workload fcc(wl::WorkloadId::RTV6, params);
    RunResult fcc_run = simulateWorkload(fcc, config);

    std::printf("\n%-22s %14s %14s\n", "", "baseline", "fcc");
    std::printf("%-22s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(base_run.cycles),
                static_cast<unsigned long long>(fcc_run.cycles));
    std::printf("%-22s %13.1f%% %13.1f%%\n", "SIMT efficiency",
                100.0 * base_run.simtEfficiency(),
                100.0 * fcc_run.simtEfficiency());
    std::printf("%-22s %14llu %14llu\n", "RT-unit mem requests",
                static_cast<unsigned long long>(
                    base_run.rt.get("mem_requests")),
                static_cast<unsigned long long>(
                    fcc_run.rt.get("mem_requests")
                    + fcc_run.rt.get("fcc_insert_loads")
                    + fcc_run.rt.get("fcc_insert_stores")));
    std::printf("%-22s %14.3f\n", "FCC speedup",
                static_cast<double>(base_run.cycles) / fcc_run.cycles);

    ImageDiff diff =
        compareImages(baseline.readFramebuffer(), fcc.readFramebuffer(),
                      0.f);
    std::printf("functional check: FCC image identical to baseline: %s\n",
                diff.differingPixels == 0 ? "yes" : "NO");

    std::string out = opts.get("out", "rtv6.ppm");
    if (fcc.readFramebuffer().writePpm(out))
        std::printf("wrote %s\n", out.c_str());
    return 0;
}
