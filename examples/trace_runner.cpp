/**
 * @file
 * Trace dump and replay, mirroring the paper artifact's trace runner:
 *   trace_runner --dump=tri.vktrace --workload=TRI [--width=..]
 *     builds a workload and dumps its launch (program + memory image);
 *   trace_runner --run=tri.vktrace [--mobile] [--threads=N]
 *     [--check=off|basic|full]
 *     replays a dumped trace on the cycle-level simulator without any
 *     frontend (the artifact's "resimulate on any system" flow);
 *     --check enables the self-validation sweeps of src/check (also
 *     reachable via the VKSIM_CHECK environment variable).
 */

#include <cstdio>
#include <string>

#include "core/vulkansim.h"
#include "util/cli.h"
#include "vulkan/trace.h"

namespace {

vksim::wl::WorkloadId
workloadByName(const std::string &name)
{
    using vksim::wl::WorkloadId;
    for (WorkloadId id : vksim::wl::kAllWorkloads)
        if (name == vksim::wl::workloadName(id))
            return id;
    std::fprintf(stderr, "unknown workload %s (use TRI/REF/EXT/RTV5/RTV6)\n",
                 name.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vksim;
    Cli cli("trace_runner --dump=<file>|--run=<file> [flags]",
            "Dump a workload launch to a trace file, or replay a dumped "
            "trace on the cycle-level simulator without any frontend.");
    cli.option("dump", "file", "", "dump a workload launch to this path")
        .option("run", "file", "", "replay a dumped trace")
        .option("workload", "name", "TRI", "TRI/REF/EXT/RTV5/RTV6 (dump)")
        .option("width", "px", "48", "launch width (dump)")
        .option("height", "px", "48", "launch height (dump)")
        .option("scale", "f", "0.2", "EXT tessellation fraction (dump)")
        .option("detail", "n", "4", "RTV5 statue subdivision (dump)")
        .flag("mobile", "use the mobile Table III configuration (run)");
    addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    if (cli.has("dump")) {
        wl::WorkloadParams params;
        params.width = static_cast<unsigned>(cli.getInt("width"));
        params.height = static_cast<unsigned>(cli.getInt("height"));
        params.extScale = static_cast<float>(cli.getFloat("scale"));
        params.rtv5Detail = static_cast<unsigned>(cli.getInt("detail"));
        wl::Workload workload(workloadByName(cli.get("workload")), params);
        std::string path = cli.get("dump");
        if (!dumpTrace(path, workload.launch()))
            return 1;
        std::printf("Trace dumped: %s (%zu instructions, %.1f MiB memory "
                    "image)\n",
                    path.c_str(), workload.pipeline().program().code.size(),
                    workload.device().memory().residentBytes()
                        / (1024.0 * 1024.0));
        return 0;
    }

    if (cli.has("run")) {
        std::string path = cli.get("run");
        std::unique_ptr<LoadedTrace> trace = loadTrace(path);
        if (!trace)
            return 1;
        std::printf("Replaying %s: launch %ux%ux%u, %zu instructions\n",
                    path.c_str(), trace->ctx.launchSize[0],
                    trace->ctx.launchSize[1], trace->ctx.launchSize[2],
                    trace->program->code.size());
        GpuConfig config = cli.getBool("mobile") ? mobileGpuConfig()
                                                 : baselineGpuConfig();
        if (!applySimFlags(cli, &config))
            return 1;
        // A replayed trace has no Workload to hand to the service: run
        // the engine directly (the service is a frontend-level concern).
        GpuSimulator sim(config, trace->ctx);
        RunResult run = sim.run();
        std::printf("cycles: %llu  SIMT: %.1f%%  RT SIMT: %.1f%%  DRAM "
                    "util: %.1f%%\n",
                    static_cast<unsigned long long>(run.cycles),
                    100.0 * run.simtEfficiency(),
                    100.0 * run.rtSimtEfficiency(),
                    100.0 * run.dramUtilization());
        return 0;
    }

    std::printf("usage:\n  trace_runner --dump=<file> --workload=TRI\n"
                "  trace_runner --run=<file> [--mobile] [--threads=N]"
                " [--check=off|basic|full]\n");
    return 0;
}
