/**
 * @file
 * Quickstart: render the TRI workload (one ray-traced triangle, the
 * paper's simplest benchmark) three ways —
 *   1. on the CPU reference renderer,
 *   2. on the functional simulator (NIR -> VPTX -> SIMT executor),
 *   3. on the full cycle-level GPU model with the RT unit —
 * then compare the images and print the headline statistics.
 *
 * Usage: quickstart [--width=64] [--height=64] [--out=quickstart.ppm]
 *                   [--threads=N] [--serial] [--perf]
 */

#include <cstdio>

#include "core/vulkansim.h"
#include "util/options.h"

int
main(int argc, char **argv)
{
    using namespace vksim;
    Options opts(argc, argv);
    wl::WorkloadParams params;
    params.width = static_cast<unsigned>(opts.getInt("width", 64));
    params.height = static_cast<unsigned>(opts.getInt("height", 64));

    std::printf("Building the TRI workload (%ux%u)...\n", params.width,
                params.height);
    wl::Workload workload(wl::WorkloadId::TRI, params);
    std::printf("  scene: %zu primitive(s), BVH depth %u, %zu BVH nodes\n",
                workload.scene().totalPrimitives(),
                workload.accel().stats.treeDepth(),
                workload.accel().stats.totalNodes());
    std::printf("  pipeline: %zu shaders, %zu VPTX instructions\n",
                workload.pipeline().program.shaders.size(),
                workload.pipeline().program.code.size());

    const unsigned threads = opts.threadCount();

    // 1. CPU reference (tiled across the engine threads).
    Image reference = workload.renderReferenceImage(nullptr, threads);

    // 2. Functional simulation.
    StatGroup fstats;
    Image functional = workload.runFunctional(
        vptx::WarpCflow::Mode::Stack, &fstats);
    ImageDiff fdiff = compareImages(functional, reference);
    std::printf("functional sim: %llu instructions, %.4f%% pixels differ "
                "from reference\n",
                static_cast<unsigned long long>(fstats.get("instructions")),
                100.0 * fdiff.differingFraction());

    // 3. Cycle-level simulation (baseline Table III configuration).
    GpuConfig config = baselineGpuConfig();
    config.threads = threads;
    config.printPerfSummary = opts.getBool("perf");
    RunResult run = simulateWorkload(workload, config);
    Image timed = workload.readFramebuffer();
    ImageDiff tdiff = compareImages(timed, reference);
    std::printf("timed sim: %llu cycles, SIMT efficiency %.1f%%, RT-unit "
                "SIMT efficiency %.1f%%, %.4f%% pixels differ\n",
                static_cast<unsigned long long>(run.cycles),
                100.0 * run.simtEfficiency(),
                100.0 * run.rtSimtEfficiency(),
                100.0 * tdiff.differingFraction());
    std::printf("  DRAM utilization %.1f%%, efficiency %.1f%%\n",
                100.0 * run.dramUtilization(),
                100.0 * run.dramEfficiency());

    std::string out = opts.get("out", "quickstart.ppm");
    if (timed.writePpm(out))
        std::printf("wrote %s\n", out.c_str());
    return 0;
}
