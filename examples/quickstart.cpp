/**
 * @file
 * Quickstart: render the TRI workload (one ray-traced triangle, the
 * paper's simplest benchmark) three ways —
 *   1. on the CPU reference renderer,
 *   2. on the functional simulator (NIR -> VPTX -> SIMT executor),
 *   3. on the full cycle-level GPU model with the RT unit, submitted
 *      through the simulation service (the batch-of-one case) —
 * then compare the images and print the headline statistics.
 *
 * Usage: quickstart [--width=64] [--height=64] [--out=quickstart.ppm]
 *                   [--threads=N] [--serial] [--perf]
 */

#include <cstdio>

#include "core/vulkansim.h"
#include "service/service.h"
#include "util/cli.h"

int
main(int argc, char **argv)
{
    using namespace vksim;
    Cli cli("quickstart [flags]",
            "Render the TRI workload on the reference renderer, the "
            "functional simulator, and the cycle-level model.");
    cli.option("width", "px", "64", "launch width")
        .option("height", "px", "64", "launch height")
        .option("out", "file", "quickstart.ppm", "output PPM path");
    addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    wl::WorkloadParams params;
    params.width = static_cast<unsigned>(cli.getInt("width"));
    params.height = static_cast<unsigned>(cli.getInt("height"));

    std::printf("Building the TRI workload (%ux%u)...\n", params.width,
                params.height);
    wl::Workload workload(wl::WorkloadId::TRI, params);
    std::printf("  scene: %zu primitive(s), BVH depth %u, %zu BVH nodes\n",
                workload.scene().totalPrimitives(),
                workload.accel().stats.treeDepth(),
                workload.accel().stats.totalNodes());
    std::printf("  pipeline: %zu shaders, %zu VPTX instructions\n",
                workload.pipeline().program().shaders.size(),
                workload.pipeline().program().code.size());

    const unsigned threads = cli.threadCount();

    // 1. CPU reference (tiled across the engine threads).
    Image reference = workload.renderReferenceImage(nullptr, threads);

    // 2. Functional simulation.
    StatGroup fstats;
    Image functional = workload.runFunctional(
        vptx::WarpCflow::Mode::Stack, &fstats);
    ImageDiff fdiff = compareImages(functional, reference);
    std::printf("functional sim: %llu instructions, %.4f%% pixels differ "
                "from reference\n",
                static_cast<unsigned long long>(fstats.get("instructions")),
                100.0 * fdiff.differingFraction());

    // 3. Cycle-level simulation (baseline Table III configuration),
    // submitted through the service. A batch of one runs inline with the
    // job's own engine thread count.
    GpuConfig config = baselineGpuConfig();
    if (!applySimFlags(cli, &config))
        return 1;
    service::SimService svc;
    const service::JobResult &result =
        svc.submit(workload, config, "quickstart").get();
    const RunResult &run = result.run;
    ImageDiff tdiff = compareImages(result.image, reference);
    std::printf("timed sim: %llu cycles, SIMT efficiency %.1f%%, RT-unit "
                "SIMT efficiency %.1f%%, %.4f%% pixels differ\n",
                static_cast<unsigned long long>(run.cycles),
                100.0 * run.simtEfficiency(),
                100.0 * run.rtSimtEfficiency(),
                100.0 * tdiff.differingFraction());
    std::printf("  DRAM utilization %.1f%%, efficiency %.1f%%\n",
                100.0 * run.dramUtilization(),
                100.0 * run.dramEfficiency());

    std::string out = cli.get("out");
    if (result.image.writePpm(out))
        std::printf("wrote %s\n", out.c_str());
    return 0;
}
