/**
 * @file
 * The EXT workload (synthetic atrium, the paper's Sponza stand-in):
 * ambient occlusion + hard shadows over a couple hundred thousand
 * triangles, rendered on the cycle-level simulator with a configurable
 * GPU (baseline or mobile, memory-system variants of Fig. 15).
 *
 * Usage: sponza_atrium [--width=64] [--height=64] [--scale=0.25]
 *                      [--mobile] [--variant=baseline|rtcache|
 *                       perfectbvh|perfectmem] [--out=atrium.ppm]
 */

#include <cstdio>
#include <string>

#include "core/vulkansim.h"
#include "power/power.h"
#include "util/options.h"

int
main(int argc, char **argv)
{
    using namespace vksim;
    Options opts(argc, argv);
    wl::WorkloadParams params;
    params.width = static_cast<unsigned>(opts.getInt("width", 64));
    params.height = static_cast<unsigned>(opts.getInt("height", 64));
    params.extScale = static_cast<float>(opts.getFloat("scale", 0.25));

    std::printf("Generating the atrium at scale %.2f...\n",
                params.extScale);
    wl::Workload workload(wl::WorkloadId::EXT, params);
    std::printf("  %zu triangles, BVH depth %u, %.1f KiB of BVH\n",
                workload.scene().totalPrimitives(),
                workload.accel().stats.treeDepth(),
                workload.accel().stats.totalBytes / 1024.0);

    GpuConfig config =
        opts.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    std::string variant = opts.get("variant", "baseline");
    if (variant == "rtcache")
        config = applyMemoryVariant(config, MemoryVariant::RtCache);
    else if (variant == "perfectbvh")
        config = applyMemoryVariant(config, MemoryVariant::PerfectBvh);
    else if (variant == "perfectmem")
        config = applyMemoryVariant(config, MemoryVariant::PerfectMem);

    std::printf("Simulating on %u SMs (%s, %s)...\n", config.numSms,
                opts.getBool("mobile") ? "mobile" : "baseline",
                variant.c_str());
    RunResult run = simulateWorkload(workload, config);

    std::printf("cycles: %llu\n",
                static_cast<unsigned long long>(run.cycles));
    std::printf("SIMT efficiency: %.1f%% (GPU), %.1f%% (RT unit)\n",
                100.0 * run.simtEfficiency(),
                100.0 * run.rtSimtEfficiency());
    std::printf("RT units busy %.1f%% of cycles\n",
                100.0 * run.rtActiveFraction());
    std::printf("L1: %llu shader accesses, %llu RT-unit accesses\n",
                static_cast<unsigned long long>(
                    run.l1.get("accesses.shader")),
                static_cast<unsigned long long>(
                    run.l1.get("accesses.rtunit")));
    std::printf("DRAM: %.1f%% utilization, %.1f%% efficiency\n",
                100.0 * run.dramUtilization(),
                100.0 * run.dramEfficiency());

    PowerReport power = estimatePower(run, config.numSms);
    std::printf("power: %.1f W average (DRAM %.1f%%, RT units %.2f%%, "
                "constant+static %.1f%%)\n",
                power.averageWatts,
                100.0 * power.fractionOf(power.dramJoules),
                100.0 * power.fractionOf(power.rtUnitJoules),
                100.0
                    * (power.fractionOf(power.constantJoules)
                       + power.fractionOf(power.staticJoules)));

    Image image = workload.readFramebuffer();
    ImageDiff diff = compareImages(image, workload.renderReferenceImage());
    std::printf("image check: %.4f%% pixels differ from the reference "
                "renderer\n",
                100.0 * diff.differingFraction());

    std::string out = opts.get("out", "atrium.ppm");
    if (image.writePpm(out))
        std::printf("wrote %s\n", out.c_str());
    return 0;
}
