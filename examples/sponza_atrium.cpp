/**
 * @file
 * The EXT workload (synthetic atrium, the paper's Sponza stand-in):
 * ambient occlusion + hard shadows over a couple hundred thousand
 * triangles, rendered on the cycle-level simulator with a configurable
 * GPU (baseline or mobile, memory-system variants of Fig. 15).
 *
 * Usage: sponza_atrium [--width=64] [--height=64] [--scale=0.25]
 *                      [--mobile] [--variant=baseline|rtcache|
 *                       perfectbvh|perfectmem] [--out=atrium.ppm]
 *                      [--threads=N] [--serial] [--perf]
 */

#include <cstdio>
#include <string>

#include "core/vulkansim.h"
#include "power/power.h"
#include "service/service.h"
#include "util/cli.h"

int
main(int argc, char **argv)
{
    using namespace vksim;
    Cli cli("sponza_atrium [flags]",
            "Simulate the EXT atrium workload on a configurable GPU "
            "(memory-system variants of paper Fig. 15).");
    cli.option("width", "px", "64", "launch width")
        .option("height", "px", "64", "launch height")
        .option("scale", "f", "0.25", "tessellation fraction")
        .flag("mobile", "use the mobile Table III configuration")
        .option("variant", "name", "baseline",
                "baseline|rtcache|perfectbvh|perfectmem")
        .option("out", "file", "atrium.ppm", "output PPM path");
    addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    wl::WorkloadParams params;
    params.width = static_cast<unsigned>(cli.getInt("width"));
    params.height = static_cast<unsigned>(cli.getInt("height"));
    params.extScale = static_cast<float>(cli.getFloat("scale"));

    std::printf("Generating the atrium at scale %.2f...\n",
                params.extScale);
    wl::Workload workload(wl::WorkloadId::EXT, params);
    std::printf("  %zu triangles, BVH depth %u, %.1f KiB of BVH\n",
                workload.scene().totalPrimitives(),
                workload.accel().stats.treeDepth(),
                workload.accel().stats.totalBytes / 1024.0);

    GpuConfig config =
        cli.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    if (!applySimFlags(cli, &config))
        return 1;
    std::string variant = cli.get("variant");
    if (variant == "rtcache")
        config = applyMemoryVariant(config, MemoryVariant::RtCache);
    else if (variant == "perfectbvh")
        config = applyMemoryVariant(config, MemoryVariant::PerfectBvh);
    else if (variant == "perfectmem")
        config = applyMemoryVariant(config, MemoryVariant::PerfectMem);
    else if (variant != "baseline") {
        std::fprintf(stderr, "unknown --variant=%s (use baseline, "
                             "rtcache, perfectbvh, or perfectmem)\n",
                     variant.c_str());
        return 1;
    }

    std::printf("Simulating on %u SMs (%s, %s)...\n", config.numSms,
                cli.getBool("mobile") ? "mobile" : "baseline",
                variant.c_str());
    service::SimService svc;
    const service::JobResult &result =
        svc.submit(workload, config, "atrium").get();
    const RunResult &run = result.run;

    std::printf("cycles: %llu\n",
                static_cast<unsigned long long>(run.cycles));
    std::printf("SIMT efficiency: %.1f%% (GPU), %.1f%% (RT unit)\n",
                100.0 * run.simtEfficiency(),
                100.0 * run.rtSimtEfficiency());
    std::printf("RT units busy %.1f%% of cycles\n",
                100.0 * run.rtActiveFraction());
    std::printf("L1: %llu shader accesses, %llu RT-unit accesses\n",
                static_cast<unsigned long long>(
                    run.l1.get("accesses.shader")),
                static_cast<unsigned long long>(
                    run.l1.get("accesses.rtunit")));
    std::printf("DRAM: %.1f%% utilization, %.1f%% efficiency\n",
                100.0 * run.dramUtilization(),
                100.0 * run.dramEfficiency());

    PowerReport power = estimatePower(run, config.numSms);
    std::printf("power: %.1f W average (DRAM %.1f%%, RT units %.2f%%, "
                "constant+static %.1f%%)\n",
                power.averageWatts,
                100.0 * power.fractionOf(power.dramJoules),
                100.0 * power.fractionOf(power.rtUnitJoules),
                100.0
                    * (power.fractionOf(power.constantJoules)
                       + power.fractionOf(power.staticJoules)));

    ImageDiff diff =
        compareImages(result.image, workload.renderReferenceImage());
    std::printf("image check: %.4f%% pixels differ from the reference "
                "renderer\n",
                100.0 * diff.differingFraction());

    std::string out = cli.get("out");
    if (result.image.writePpm(out))
        std::printf("wrote %s\n", out.c_str());
    return 0;
}
