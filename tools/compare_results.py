#!/usr/bin/env python3
"""Compare two batchrun results files under the determinism contract.

Everything in the consolidated results file except the trailing "perf"
section is covered by the byte-identity contract (see batchrun.cc);
"perf" is host telemetry — sim-cycles per wall second, stepping mode,
thread count — and varies run to run by construction. This helper
strips "perf" from both files and requires the rest to be identical,
so CI can keep a hard determinism gate while batchrun still reports
per-job throughput.

Usage: compare_results.py A.json B.json
Exits 0 when identical outside "perf", 1 with a diff summary otherwise.
"""

import json
import sys


def load_checked(path):
    with open(path) as f:
        data = json.load(f)
    data.pop("perf", None)
    return data


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    a, b = load_checked(argv[1]), load_checked(argv[2])
    if a == b:
        print(f"{argv[1]} and {argv[2]} are identical outside 'perf'")
        return 0
    print(f"{argv[1]} and {argv[2]} differ in determinism-checked fields:",
          file=sys.stderr)
    for section in sorted(set(a) | set(b)):
        if a.get(section) == b.get(section):
            continue
        sa, sb = a.get(section), b.get(section)
        if isinstance(sa, dict) and isinstance(sb, dict):
            for key in sorted(set(sa) | set(sb)):
                if sa.get(key) != sb.get(key):
                    print(f"  {section}.{key}", file=sys.stderr)
        else:
            print(f"  {section}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
