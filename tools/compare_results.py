#!/usr/bin/env python3
"""Compare two batchrun results files under the determinism contract.

Everything in the consolidated results file except the trailing "perf"
section is covered by the byte-identity contract (see batchrun.cc);
"perf" is host telemetry — sim-cycles per wall second, stepping mode,
thread count — and varies run to run by construction. This helper
strips "perf" from both files and requires the rest to be identical,
so CI can keep a hard determinism gate while batchrun still reports
per-job throughput.

The comparison is deliberately defensive: a crashed or interrupted
batchrun can leave a file with no "perf" section, a partial one, or
with jobs present on only one side. None of those may crash the gate —
a malformed file is a clean (exit 2) diagnostic, a one-sided job is an
ordinary reported difference.

Usage: compare_results.py A.json B.json
       compare_results.py --self-test
Exits 0 when identical outside "perf", 1 with a diff summary,
2 on unreadable/malformed input (or bad usage).
"""

import json
import sys
import tempfile


def load_checked(path):
    """Load a results file, tolerating absent/partial perf sections.

    Returns the comparable payload, or raises ValueError with a clean
    one-line diagnostic (never a traceback) for unusable files.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise ValueError(f"{path}: cannot read: {e.strerror or e}")
    except json.JSONDecodeError as e:
        raise ValueError(f"{path}: not valid JSON ({e.msg} at line "
                         f"{e.lineno}); was the batch interrupted?")
    if not isinstance(data, dict):
        raise ValueError(f"{path}: top level is {type(data).__name__}, "
                         "expected a results object")
    data.pop("perf", None)
    return data


def diff_paths(a, b, prefix=""):
    """Yield dotted paths where `a` and `b` differ (depth-limited walk)."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                yield f"{path} (only in second file)"
            elif key not in b:
                yield f"{path} (only in first file)"
            else:
                yield from diff_paths(a[key], b[key], path)
    elif a != b:
        yield prefix or "(document root)"


def compare(path_a, path_b, out=sys.stdout, err=sys.stderr):
    try:
        a, b = load_checked(path_a), load_checked(path_b)
    except ValueError as e:
        print(e, file=err)
        return 2
    if a == b:
        print(f"{path_a} and {path_b} are identical outside 'perf'",
              file=out)
        return 0
    print(f"{path_a} and {path_b} differ in determinism-checked fields:",
          file=err)
    for path in diff_paths(a, b):
        print(f"  {path}", file=err)
    return 1


def self_test():
    """Exercise the comparator against the failure shapes it must absorb."""
    import io
    import os

    base = {
        "artifacts": {"bvh_builds": 1},
        "jobs": {"a": {"cycles": 10, "stats": {"x": 1}}},
        "perf": {"a": {"sim_cycles_per_s": 123.4}},
    }

    def write(obj, raw=None):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        if raw is not None:
            f.write(raw)
        else:
            json.dump(obj, f)
        f.close()
        return f.name

    failures = []
    tmp = []

    def check(name, got, want):
        if got != want:
            failures.append(f"{name}: expected exit {want}, got {got}")

    def run(pa, pb):
        return compare(pa, pb, out=io.StringIO(), err=io.StringIO())

    # Identical payloads with *different* perf sections: equal.
    other_perf = dict(base, perf={"a": {"sim_cycles_per_s": 999.9}})
    tmp += [write(base), write(other_perf)]
    check("perf-ignored", run(tmp[-2], tmp[-1]), 0)

    # Missing perf on one side, partial perf on the other: still equal.
    no_perf = {k: v for k, v in base.items() if k != "perf"}
    partial_perf = dict(base, perf={"a": {}})
    tmp += [write(no_perf), write(partial_perf)]
    check("perf-missing-or-partial", run(tmp[-2], tmp[-1]), 0)

    # A job present on only one side: a reported diff, not a crash.
    one_sided = dict(base, jobs=dict(base["jobs"], b={"cycles": 5}))
    tmp += [write(base), write(one_sided)]
    check("one-sided-job", run(tmp[-2], tmp[-1]), 1)

    # A genuine stats divergence inside a shared job.
    drift = dict(base,
                 jobs={"a": {"cycles": 10, "stats": {"x": 2}}})
    tmp += [write(base), write(drift)]
    check("stats-drift", run(tmp[-2], tmp[-1]), 1)

    # Torn / non-JSON / wrong-shape / absent files: clean exit 2.
    tmp.append(write(None, raw='{"jobs": {'))
    check("torn-json", run(tmp[0], tmp[-1]), 2)
    tmp.append(write(None, raw='[1, 2, 3]'))
    check("non-object", run(tmp[0], tmp[-1]), 2)
    check("absent-file", run(tmp[0], tmp[0] + ".does-not-exist"), 2)

    for path in tmp:
        os.unlink(path)

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print(f"self-test passed ({7} cases)")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return compare(argv[1], argv[2])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
