/**
 * @file
 * Differential engine runner: runs the same workload launch twice — once
 * on the serial engine, once on the N-thread engine — with per-cycle
 * state digests enabled, and reports the first (cycle, unit) where the
 * two traces disagree. A clean run demonstrates the determinism contract
 * (DESIGN.md); any divergence is localized to the SM (or the fabric)
 * and the barrier cycle where the engines first disagreed.
 *
 *   diffrun --workload=REF [--width=64 --height=64] [--threads=8]
 *           [--check=basic|full] [--period=1] [--mobile]
 *
 * Harness self-test: `--inject-cycle=C [--inject-unit=U]` XORs one bit
 * into the threaded run's digest of unit U at cycle C (the simulation
 * itself is untouched) and the tool must localize exactly that sample:
 *
 *   diffrun --workload=TRI --inject-cycle=1000 --inject-unit=2
 *   => first divergence: cycle 1000, unit 2 (sm2)
 */

#include <cstdio>
#include <string>

#include "core/vulkansim.h"
#include "util/options.h"

namespace {

vksim::wl::WorkloadId
workloadByName(const std::string &name)
{
    using vksim::wl::WorkloadId;
    for (WorkloadId id : vksim::wl::kAllWorkloads)
        if (name == vksim::wl::workloadName(id))
            return id;
    std::fprintf(stderr, "unknown workload %s (use TRI/REF/EXT/RTV5/RTV6)\n",
                 name.c_str());
    std::exit(1);
}

std::string
unitName(unsigned unit, unsigned num_sms)
{
    if (unit == num_sms)
        return "fabric";
    return "sm" + std::to_string(unit);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vksim;
    Options opts(argc, argv);

    if (opts.getBool("help")) {
        std::printf(
            "usage: diffrun [--workload=TRI] [--width=N --height=N]\n"
            "               [--threads=N] [--check=off|basic|full]\n"
            "               [--period=N] [--mobile]\n"
            "               [--inject-cycle=C [--inject-unit=U]]\n");
        return 0;
    }

    wl::WorkloadParams params;
    params.width = static_cast<unsigned>(opts.getInt("width", 64));
    params.height = static_cast<unsigned>(opts.getInt("height", 64));
    params.extScale = static_cast<float>(opts.getFloat("scale", 0.2));
    params.rtv5Detail = static_cast<unsigned>(opts.getInt("detail", 4));
    wl::WorkloadId id = workloadByName(opts.get("workload", "TRI"));

    GpuConfig config =
        opts.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    config.digestTrace = true;
    config.digestPeriod =
        static_cast<Cycle>(opts.getInt("period", 1));
    if (opts.has("check")
        && !check::parseCheckLevel(opts.get("check"), &config.checkLevel)) {
        std::fprintf(stderr, "bad --check level '%s' (off/basic/full)\n",
                     opts.get("check").c_str());
        return 1;
    }

    unsigned threads = static_cast<unsigned>(opts.getInt("threads", 0));

    GpuConfig serial = config;
    serial.threads = 1;
    serial.digestInjectCycle = ~Cycle(0); // reference run: never inject

    GpuConfig parallel = config;
    parallel.threads = threads; // 0 = auto (hardware concurrency)
    if (opts.has("inject-cycle")) {
        parallel.digestInjectCycle =
            static_cast<Cycle>(opts.getInt("inject-cycle", 0));
        parallel.digestInjectUnit =
            static_cast<unsigned>(opts.getInt("inject-unit", 0));
    }

    std::printf("diffrun: %s %ux%u, check=%s, digest period %llu\n",
                wl::workloadName(id), params.width, params.height,
                check::checkLevelName(config.checkLevel),
                static_cast<unsigned long long>(config.digestPeriod));

    wl::Workload w1(id, params);
    RunResult ref = simulateWorkload(w1, serial);
    std::printf("  serial:   %llu cycles, %zu digest samples x %u units\n",
                static_cast<unsigned long long>(ref.cycles),
                ref.digests.samples(), ref.digests.units);

    wl::Workload w2(id, params);
    RunResult par = simulateWorkload(w2, parallel);
    std::printf("  threaded: %llu cycles (%u engine threads)\n",
                static_cast<unsigned long long>(par.cycles),
                par.threadsUsed);

    check::DigestTrace::Divergence div =
        ref.digests.firstDivergence(par.digests);
    if (!div.diverged) {
        std::printf("OK: traces identical over %zu samples "
                    "(serial vs %u threads)\n",
                    ref.digests.samples(), par.threadsUsed);
        return 0;
    }
    std::printf("DIVERGED: first mismatch at cycle %llu, unit %u (%s)\n",
                static_cast<unsigned long long>(div.cycle), div.unit,
                unitName(div.unit, config.numSms).c_str());
    return 1;
}
