/**
 * @file
 * Differential engine runner: runs the same workload launch twice — once
 * on the serial engine, once on the N-thread engine — with per-cycle
 * state digests enabled, and reports the first (cycle, unit) where the
 * two traces disagree. A clean run demonstrates the determinism contract
 * (DESIGN.md); any divergence is localized to the SM (or the fabric)
 * and the barrier cycle where the engines first disagreed.
 *
 * Both runs are service jobs in one batch: the workloads are built
 * against the service's artifact cache (one BVH build, one pipeline
 * translation for the pair) and the explicit per-job engine thread
 * counts are honored — comparing engine thread counts is the point.
 *
 *   diffrun --workload=REF [--width=64 --height=64] [--threads=8]
 *           [--check=basic|full] [--period=1] [--mobile]
 *
 * Harness self-test: `--inject-cycle=C [--inject-unit=U]` XORs one bit
 * into the threaded run's digest of unit U at cycle C (the simulation
 * itself is untouched) and the tool must localize exactly that sample:
 *
 *   diffrun --workload=TRI --inject-cycle=1000 --inject-unit=2
 *   => first divergence: cycle 1000, unit 2 (sm2)
 */

#include <cstdio>
#include <string>

#include "core/vulkansim.h"
#include "service/service.h"
#include "util/cli.h"

namespace {

std::string
workloadNameList()
{
    std::string names;
    for (vksim::wl::WorkloadId id : vksim::wl::kAllWorkloads) {
        if (!names.empty())
            names += "/";
        names += vksim::wl::workloadName(id);
    }
    return names;
}

vksim::wl::WorkloadId
workloadByName(const std::string &name)
{
    using vksim::wl::WorkloadId;
    for (WorkloadId id : vksim::wl::kAllWorkloads)
        if (name == vksim::wl::workloadName(id))
            return id;
    std::fprintf(stderr, "unknown workload %s (use %s)\n", name.c_str(),
                 workloadNameList().c_str());
    std::exit(1);
}

std::string
unitName(unsigned unit, unsigned num_sms)
{
    if (unit == num_sms)
        return "fabric";
    return "sm" + std::to_string(unit);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vksim;
    Cli cli("diffrun [flags]",
            "Digest-compare the serial engine against the N-thread "
            "engine on one workload launch.");
    cli.option("workload", "name", "TRI", workloadNameList().c_str())
        .option("width", "px", "64", "launch width")
        .option("height", "px", "64", "launch height")
        .option("scale", "f", "0.2", "EXT tessellation fraction")
        .option("detail", "n", "4", "RTV5 statue subdivision")
        .flag("mobile", "use the mobile Table III configuration")
        .option("period", "cycles", "1", "digest sampling period")
        .option("inject-cycle", "C", "",
                "self-test: corrupt the threaded digest at cycle C")
        .option("inject-unit", "U", "0",
                "self-test: unit whose digest is corrupted");
    addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    wl::WorkloadParams params;
    params.width = static_cast<unsigned>(cli.getInt("width"));
    params.height = static_cast<unsigned>(cli.getInt("height"));
    params.extScale = static_cast<float>(cli.getFloat("scale"));
    params.rtv5Detail = static_cast<unsigned>(cli.getInt("detail"));
    wl::WorkloadId id = workloadByName(cli.get("workload"));

    GpuConfig config =
        cli.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    if (!applySimFlags(cli, &config))
        return 1;
    config.digestTrace = true;
    config.digestPeriod = static_cast<Cycle>(cli.getInt("period"));

    const unsigned threads = cli.threadCount();

    GpuConfig serial = config;
    serial.threads = 1;
    serial.epochCycles = 1; // reference run: the lock-step oracle
    serial.digestInjectCycle = ~Cycle(0); // reference run: never inject

    GpuConfig parallel = config;
    parallel.threads = threads; // 0 = auto (hardware concurrency)
    if (cli.has("inject-cycle")) {
        parallel.digestInjectCycle =
            static_cast<Cycle>(cli.getInt("inject-cycle"));
        parallel.digestInjectUnit =
            static_cast<unsigned>(cli.getInt("inject-unit"));
    }
    if (parallel.threads == 0) {
        // An auto engine request must survive batching (the service
        // would serialize it); pin it to the resolved count instead.
        parallel.threads = ThreadPool::resolveThreadCount(0);
    }

    std::printf("diffrun: %s %ux%u, check=%s, digest period %llu\n",
                wl::workloadName(id), params.width, params.height,
                check::checkLevelName(config.checkLevel),
                static_cast<unsigned long long>(config.digestPeriod));

    // Two externally built workloads (shared artifacts), one batch.
    service::SimService svc;
    wl::Workload w1(id, params, &svc.artifacts());
    wl::Workload w2(id, params, &svc.artifacts());
    service::JobTicket serial_job = svc.submit(w1, serial, "serial");
    service::JobTicket threaded_job = svc.submit(w2, parallel, "threaded");
    svc.flush();

    const RunResult &ref = serial_job.get().run;
    std::printf("  serial:   %llu cycles, %zu digest samples x %u units\n",
                static_cast<unsigned long long>(ref.cycles),
                ref.digests.samples(), ref.digests.units);

    const RunResult &par = threaded_job.get().run;
    std::printf("  threaded: %llu cycles (%u engine threads)\n",
                static_cast<unsigned long long>(par.cycles),
                par.threadsUsed);

    check::DigestTrace::Divergence div =
        ref.digests.firstDivergence(par.digests);
    if (!div.diverged) {
        std::printf("OK: traces identical over %zu samples "
                    "(serial vs %u threads)\n",
                    ref.digests.samples(), par.threadsUsed);
        return 0;
    }
    std::printf("DIVERGED: first mismatch at cycle %llu, unit %u (%s)\n",
                static_cast<unsigned long long>(div.cycle), div.unit,
                unitName(div.unit, config.numSms).c_str());
    return 1;
}
