/**
 * @file
 * Deterministic fuzz driver for the validation subsystem. Each trial
 * derives a workload + configuration from a PCG32 stream seeded with the
 * trial number, then runs the full checker stack over it:
 *
 *  1. structural BVH validation of the freshly built acceleration
 *     structure (checkAccelStruct, collect mode);
 *  2. a serial Full-check simulation — every cross-layer invariant swept
 *     at every cycle barrier, plus the per-ray sim-vs-reference
 *     traversal differential (an invariant violation panics with its
 *     metrics-registry path and cycle; the banner printed before the
 *     trial is the repro seed);
 *  3. the same launch on the 2-thread engine, digest-compared against
 *     the serial run (determinism contract).
 *
 * Both simulations of a trial are service jobs sharing the artifact
 * cache, so the trial's BVH is built and checked once and the
 * minimization loop (which shrinks only the launch, not the scene)
 * rebuilds nothing.
 *
 * A digest divergence or accel violation is minimized by halving the
 * launch dimensions while the failure reproduces, then reported as a
 * single-trial repro command line:
 *
 *   checkfuzz                      # default sweep, seeds 0..9
 *   checkfuzz --seeds=100          # wider sweep
 *   checkfuzz --seed=7             # replay exactly one trial
 *   checkfuzz --seed=7 --width=8 --height=8   # replay minimized repro
 */

#include <cstdio>
#include <string>

#include "check/accelcheck.h"
#include "core/vulkansim.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace vksim;

struct Trial
{
    wl::WorkloadId id;
    wl::WorkloadParams params;
    GpuConfig config;
};

Trial
makeTrial(std::uint64_t seed)
{
    // Independent PCG32 stream per trial: same state seed, trial number
    // as the stream selector (see tests/test_rng.cc for the property).
    Pcg32 rng(0x5eed5eed5eed5eedULL, seed);

    Trial t;
    t.id = wl::kAllWorkloads[rng.nextBelow(
        static_cast<std::uint32_t>(std::size(wl::kAllWorkloads)))];
    t.params.width = 8 + 8 * rng.nextBelow(3);  // 8 / 16 / 24
    t.params.height = 8 + 8 * rng.nextBelow(3);
    t.params.extScale = 0.1f;
    t.params.rtv5Detail = 2 + rng.nextBelow(2);
    t.params.rtv6Prims = 100 + rng.nextBelow(400);

    GpuConfig &c = t.config;
    c = baselineGpuConfig();
    c.numSms = 1u << rng.nextBelow(3); // 1 / 2 / 4
    c.fabric.numPartitions = 1u << rng.nextBelow(2);
    c.issueWidth = 1 + rng.nextBelow(2);
    c.maxWarpsPerSm = 8u << rng.nextBelow(3);
    c.l1.sizeBytes = 4096u << (2 * rng.nextBelow(3)); // 4K / 16K / 64K
    c.l1.mshrTargets = 2u << rng.nextBelow(4);
    c.useRtCache = rng.nextBelow(2) != 0;
    c.rt.memQueueSize = 4 + 4 * rng.nextBelow(4);
    c.rt.maxWarps = 2u << rng.nextBelow(3);
    // ITS and FCC are mutually exclusive (the coalescing buffer assumes
    // serialized traverses), so draw one mode slot: 0 = ITS, 1 = FCC.
    std::uint32_t mode = rng.nextBelow(8);
    c.its = mode == 0; // exercise the split-table cflow invariants
    bool fcc = mode == 1;
    c.fccEnabled = fcc;
    t.params.fcc = fcc;
    c.checkLevel = check::CheckLevel::Full;
    c.digestTrace = true;
    return t;
}

/** Run one trial; returns an empty string on success, else a failure
 *  description (digest divergence / accel violation). Invariant
 *  violations inside the simulation panic directly. */
std::string
runTrial(service::SimService &svc, const Trial &t)
{
    wl::Workload w(t.id, t.params, &svc.artifacts());

    check::Reporter accel_rep(/*collect=*/true);
    check::checkAccelStruct(*w.launch().gmem, w.accel(), &w.scene(),
                            accel_rep);
    if (!accel_rep.ok()) {
        const check::Violation &v = accel_rep.violations().front();
        return "accel violation at " + v.path + ": " + v.message + " ("
               + std::to_string(accel_rep.violations().size()) + " total)";
    }

    wl::Workload w2(t.id, t.params, &svc.artifacts());

    GpuConfig serial = t.config;
    serial.threads = 1;
    GpuConfig threaded = t.config;
    threaded.threads = 2;

    // One batch, two jobs. Full-check jobs run sequentially in
    // submission order (the traverse hook is process-global), with the
    // explicit engine thread counts honored.
    service::JobTicket serial_job = svc.submit(w, serial, "serial");
    service::JobTicket threaded_job = svc.submit(w2, threaded, "threaded");
    svc.flush();
    const RunResult &ref = serial_job.get().run;
    const RunResult &par = threaded_job.get().run;

    check::DigestTrace::Divergence div =
        ref.digests.firstDivergence(par.digests);
    if (div.diverged)
        return "digest divergence at cycle " + std::to_string(div.cycle)
               + ", unit " + std::to_string(div.unit)
               + " (serial vs 2 threads)";
    if (ref.cycles != par.cycles)
        return "cycle-count mismatch: serial "
               + std::to_string(ref.cycles) + " vs 2-thread "
               + std::to_string(par.cycles);
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("checkfuzz [flags]",
            "Deterministic fuzz sweep over workloads and configurations "
            "with the full checker stack enabled.");
    cli.option("seeds", "N", "10", "number of trials (seeds 0..N-1)")
        .option("seed", "N", "", "replay exactly one trial")
        .option("width", "px", "", "override the trial's launch width")
        .option("height", "px", "", "override the trial's launch height");
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    std::uint64_t first = 0;
    std::uint64_t count = static_cast<std::uint64_t>(cli.getInt("seeds"));
    if (cli.has("seed")) {
        first = static_cast<std::uint64_t>(cli.getInt("seed"));
        count = 1;
    }

    service::SimService svc;
    int failures = 0;
    for (std::uint64_t seed = first; seed < first + count; ++seed) {
        Trial t = makeTrial(seed);
        if (cli.has("width"))
            t.params.width = static_cast<unsigned>(cli.getInt("width"));
        if (cli.has("height"))
            t.params.height = static_cast<unsigned>(cli.getInt("height"));
        std::printf("seed %llu: %s %ux%u sms=%u its=%d fcc=%d rtcache=%d "
                    "memq=%u ...\n",
                    static_cast<unsigned long long>(seed),
                    wl::workloadName(t.id), t.params.width, t.params.height,
                    t.config.numSms, t.config.its ? 1 : 0,
                    t.config.fccEnabled ? 1 : 0,
                    t.config.useRtCache ? 1 : 0, t.config.rt.memQueueSize);
        std::fflush(stdout);

        std::string failure = runTrial(svc, t);
        if (failure.empty()) {
            std::printf("seed %llu: ok\n",
                        static_cast<unsigned long long>(seed));
            continue;
        }
        ++failures;
        std::printf("seed %llu: FAIL: %s\n",
                    static_cast<unsigned long long>(seed), failure.c_str());

        // Minimize: halve launch dimensions while the failure holds.
        Trial min = t;
        while (true) {
            Trial smaller = min;
            if (min.params.width >= min.params.height
                && min.params.width > 4)
                smaller.params.width = min.params.width / 2;
            else if (min.params.height > 4)
                smaller.params.height = min.params.height / 2;
            else
                break;
            if (runTrial(svc, smaller).empty())
                break;
            min = smaller;
        }
        std::printf("seed %llu: minimized repro: checkfuzz --seed=%llu "
                    "--width=%u --height=%u\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(seed), min.params.width,
                    min.params.height);
    }

    if (failures == 0)
        std::printf("all %llu seed(s) clean\n",
                    static_cast<unsigned long long>(count));
    return failures == 0 ? 0 : 1;
}
