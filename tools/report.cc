/**
 * @file
 * Paper-figure reporting harness: runs every evaluation workload on the
 * timed simulator and regenerates the evaluation's figure/table data as
 * CSV, plus a full per-scene metrics JSON — the machine-readable
 * counterpart of the `bench_fig*` pretty-printers.
 *
 * Every workload in wl::kAllWorkloads is submitted to one SimService
 * batch, so the scenes simulate concurrently (one job per service lane)
 * and share translated pipelines through the artifact cache; the
 * emitted files are byte-identical for any --threads value. Registering
 * a new workload automatically adds its rows to every CSV, including
 * the correlation fit.
 *
 * Outputs (under --outdir, default "report"):
 *   stats_<scene>.json        complete MetricsRegistry dump per scene
 *   fig13_warp_latency.csv    RT warp-latency histogram (paper Fig. 13)
 *   fig14_cache_breakdown.csv L1/L2 access breakdown by origin and miss
 *                             class (paper Fig. 14)
 *   fig16_dram.csv            DRAM utilization/efficiency/row locality
 *                             (paper Fig. 16 metrics)
 *   speedup_vs_reference.csv  simulator throughput vs the CPU reference
 *                             renderer (host seconds per frame)
 *   correlation.csv           per-scene simulated cycles against the
 *                             analytical hardware-proxy estimate, with
 *                             the batch Pearson r and fitted slope on a
 *                             trailing summary row (the Fig. 11/19-style
 *                             fidelity check; see EXPERIMENTS.md,
 *                             "Memory-fidelity correlation sweep")
 *
 * Usage: report [--size=32] [--mobile] [--modern-mem] [--outdir=report]
 *               [--threads=N] [--serial] [--timeline=trace.json]
 *
 * See EXPERIMENTS.md, "Machine-readable outputs".
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/vulkansim.h"
#include "hwproxy/hwproxy.h"
#include "service/service.h"
#include "util/cli.h"

namespace {

using namespace vksim;

struct SceneReport
{
    std::string name;
    /** The service-owned result (RunResult is move-only; the service
     *  keeps results alive for its lifetime). */
    const service::JobResult *job = nullptr;
    MetricsRegistry ref; ///< reference-renderer counters
    double refSeconds = 0.0;

    const RunResult &run() const { return job->run; }
};

/** One cache's breakdown row set (per origin). */
void
writeCacheRows(std::ofstream &os, const std::string &scene,
               const MetricsRegistry &m, const std::string &cache)
{
    for (const char *origin : {"shader", "rtunit"}) {
        const std::string p = "gpu." + cache + ".";
        const std::string o = origin;
        os << scene << "," << cache << "," << origin << ","
           << m.get(p + "accesses." + o) << ","
           << m.get(p + "hits." + o) << ","
           << m.get(p + "miss_compulsory." + o) << ","
           << m.get(p + "miss_capacity_conflict." + o) << ","
           << m.get(p + "write_miss." + o) << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("report [flags]",
            "Regenerate the paper-figure CSVs and per-scene metrics "
            "dumps (all workloads, one SimService batch).");
    cli.option("size", "px", "32", "launch width and height per scene")
        .flag("mobile", "use the mobile Table III configuration")
        .flag("modern-mem",
              "apply the Modern memory variant (sectored caches, "
              "streaming reservation, bank-grouped DRAM with refresh)")
        .option("outdir", "dir", "report", "output directory");
    addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    unsigned size = static_cast<unsigned>(cli.getInt("size"));
    std::string outdir = cli.get("outdir");
    GpuConfig config =
        cli.getBool("mobile") ? mobileGpuConfig() : baselineGpuConfig();
    if (cli.getBool("modern-mem"))
        config = applyMemoryVariant(config, MemoryVariant::Modern);
    const unsigned threads = cli.threadCount();
    if (!applySimFlags(cli, &config))
        return 1;
    const std::string timeline_path = cli.get("timeline");

    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", outdir.c_str(),
                     ec.message().c_str());
        return 1;
    }

    // Submit every registered scene as one batch: the service runs them
    // in parallel lanes and shares artifacts across them.
    service::SimService svc({threads});
    std::vector<service::JobTicket> tickets;
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        service::JobSpec spec;
        spec.name = wl::workloadName(id);
        spec.workload = id;
        spec.params.width = size;
        spec.params.height = size;
        spec.params.extScale = 0.25f;
        spec.params.rtv5Detail = 5;
        spec.config = config;
        // Parallelism lives at the service level here: each job's engine
        // stays on auto (forced serial inside a multi-job batch).
        spec.config.threads = 0;
        if (!timeline_path.empty())
            spec.config.timeline.path =
                outdir + "/timeline_" + spec.name + ".json";
        tickets.push_back(svc.submit(spec));
    }
    std::printf("report: simulating %zu scenes at %ux%u on %u service "
                "thread(s)...\n",
                tickets.size(), size, size, svc.threadCount());
    svc.flush();

    std::vector<SceneReport> reports;
    for (service::JobTicket &ticket : tickets) {
        const service::JobResult &result = ticket.get();
        SceneReport rep;
        rep.name = result.name;
        rep.job = &result;

        // Reference renderer: wall-clock and traversal counters for the
        // speedup table.
        TraceCounters counters;
        auto ref_start = std::chrono::steady_clock::now();
        result.workload->renderReferenceImage(&counters, threads);
        rep.refSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - ref_start)
                             .count();
        counters.exportTo(rep.ref, "reftrace");

        std::ofstream stats(outdir + "/stats_" + rep.name + ".json");
        rep.run().metrics.writeJson(stats);
        stats << "\n";
        reports.push_back(std::move(rep));
    }

    // Fig. 13: RT-unit warp latency histogram.
    {
        std::ofstream os(outdir + "/fig13_warp_latency.csv");
        os << "scene,bucket_lo_cycles,bucket_hi_cycles,warps\n";
        for (const SceneReport &rep : reports) {
            const Histogram &h = rep.run().rtWarpLatency;
            for (std::size_t b = 0; b < h.buckets().size(); ++b) {
                if (h.buckets()[b] == 0)
                    continue;
                os << rep.name << ","
                   << static_cast<std::uint64_t>(b * h.bucketWidth())
                   << ","
                   << static_cast<std::uint64_t>((b + 1)
                                                 * h.bucketWidth())
                   << "," << h.buckets()[b] << "\n";
            }
            if (h.overflow())
                os << rep.name << ","
                   << static_cast<std::uint64_t>(h.buckets().size()
                                                 * h.bucketWidth())
                   << ",inf," << h.overflow() << "\n";
        }
    }

    // Fig. 14: cache access breakdown by origin and miss class.
    {
        std::ofstream os(outdir + "/fig14_cache_breakdown.csv");
        os << "scene,cache,origin,accesses,hits,miss_compulsory,"
              "miss_capacity_conflict,write_miss\n";
        for (const SceneReport &rep : reports) {
            writeCacheRows(os, rep.name, rep.run().metrics, "l1");
            if (rep.run().metrics.get("gpu.rtcache.accesses.rtunit"))
                writeCacheRows(os, rep.name, rep.run().metrics, "rtcache");
            writeCacheRows(os, rep.name, rep.run().metrics, "l2");
        }
    }

    // Fig. 16 metrics: DRAM utilization / efficiency / locality.
    {
        std::ofstream os(outdir + "/fig16_dram.csv");
        os << "scene,requests,row_hits,row_misses,utilization,"
              "efficiency,row_hit_rate,avg_blp\n";
        for (const SceneReport &rep : reports) {
            const MetricsRegistry &m = rep.run().metrics;
            double hits =
                static_cast<double>(m.get("gpu.dram.row_hits"));
            double misses =
                static_cast<double>(m.get("gpu.dram.row_misses"));
            double blp_samples =
                static_cast<double>(m.get("gpu.dram.blp_samples"));
            os << rep.name << "," << m.get("gpu.dram.requests") << ","
               << m.get("gpu.dram.row_hits") << ","
               << m.get("gpu.dram.row_misses") << ","
               << formatJsonNumber(rep.run().dramUtilization()) << ","
               << formatJsonNumber(rep.run().dramEfficiency()) << ","
               << formatJsonNumber(hits + misses > 0
                                       ? hits / (hits + misses)
                                       : 0.0)
               << ","
               << formatJsonNumber(
                      blp_samples > 0
                          ? m.get("gpu.dram.blp_sum") / blp_samples
                          : 0.0)
               << "\n";
        }
    }

    // Simulator throughput vs the reference renderer.
    {
        std::ofstream os(outdir + "/speedup_vs_reference.csv");
        os << "scene,sim_cycles,sim_host_s,sim_cycles_per_s,ref_host_s,"
              "ref_rays,sim_slowdown_vs_ref\n";
        for (const SceneReport &rep : reports) {
            os << rep.name << "," << rep.run().cycles << ","
               << formatJsonNumber(rep.run().hostSeconds) << ","
               << formatJsonNumber(rep.run().cyclesPerHostSecond()) << ","
               << formatJsonNumber(rep.refSeconds) << ","
               << rep.ref.get("reftrace.rays") << ","
               << formatJsonNumber(rep.refSeconds > 0
                                       ? rep.run().hostSeconds
                                             / rep.refSeconds
                                       : 0.0)
               << "\n";
        }
    }

    // Correlation against the analytical hardware proxy: the closed
    // fidelity loop for memory-model changes. Each scene contributes a
    // (proxy cycles, simulated cycles) point; the trailing summary row
    // carries the Pearson r and the least-squares slope through the
    // origin over the whole batch.
    {
        std::ofstream os(outdir + "/correlation.csv");
        os << "scene,hwproxy_cycles,sim_cycles,sim_over_proxy\n";
        std::vector<double> hw, sim;
        for (const SceneReport &rep : reports) {
            WorkloadProfile profile = profileWorkload(*rep.job->workload);
            double proxy =
                estimateHardwareCycles(profile, serializedRtProxy());
            double cycles = static_cast<double>(rep.run().cycles);
            hw.push_back(proxy);
            sim.push_back(cycles);
            os << rep.name << "," << formatJsonNumber(proxy) << ","
               << rep.run().cycles << ","
               << formatJsonNumber(proxy > 0 ? cycles / proxy : 0.0)
               << "\n";
        }
        Correlation corr = correlate(hw, sim);
        os << "SUMMARY," << formatJsonNumber(corr.coefficient) << ","
           << formatJsonNumber(corr.slope) << ",\n";
        std::printf("report: hwproxy correlation r=%.4f slope=%.4f over "
                    "%zu scenes\n",
                    corr.coefficient, corr.slope, reports.size());
    }

    std::printf("report: wrote %zu scene dumps and 5 CSVs to %s/\n",
                reports.size(), outdir.c_str());
    return 0;
}
