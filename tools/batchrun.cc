/**
 * @file
 * Manifest-driven batch runner: the command-line face of SimService.
 *
 * Reads a JSON manifest describing N jobs (workload + scale + GPU
 * configuration each), submits them all to one SimService — so jobs run
 * concurrently and share BVH/pipeline artifacts through the content-
 * addressed cache — and writes one consolidated results file:
 *
 *   {
 *     "artifacts": {"bvh_builds": ..., "bvh_hits": ...,
 *                   "pipeline_builds": ..., "pipeline_hits": ...},
 *     "jobs": {
 *       "<name>": {"workload": ..., "cycles": ...,
 *                  "bvh_shared": ..., "pipeline_shared": ...,
 *                  "stats": { <full metrics registry> }},
 *       ...
 *     },
 *     "perf": {
 *       "<name>": {"sim_cycles_per_s": ..., "stepping": ...,
 *                  "epoch_cycles": ..., "threads": ...},
 *       ...
 *     }
 *   }
 *
 * Jobs are keyed by name and written in sorted name order. Everything
 * outside the trailing "perf" section contains no wall-clock or
 * thread-count fields, so it is byte-identical for any --threads value
 * and any manifest job order (the determinism contract, extended to
 * batches). "perf" is explicitly host telemetry — per-job simulated
 * cycles per wall second plus the stepping mode that produced them, so
 * sweeps can report speedups straight from the results file — and is
 * excluded from byte-identity comparisons (CI strips it before
 * diffing; see .github/workflows/ci.yml).
 *
 * The manifest format (and its strict validation: unknown keys, missing
 * required fields, and mistyped values are all rejected before anything
 * is submitted) lives in service/manifest.h.
 *
 * Usage: batchrun --manifest=jobs.json [--out=results.json]
 *                 [--threads=N] [--serial] [--check=off|basic|full]
 *
 * --threads sets the *service* lanes (concurrent jobs); each job's
 * engine runs serially inside its lane. See tools/manifests/ for the CI
 * smoke manifest and the Figure-15 sweep.
 *
 * A job that fails with a recoverable SimError (e.g. the cycle
 * watchdog) is reported on stderr and omitted from the results file;
 * the rest of the batch still completes and batchrun exits nonzero.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/vulkansim.h"
#include "service/manifest.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/jsonio.h"

int
main(int argc, char **argv)
{
    using namespace vksim;

    Cli cli("batchrun --manifest=<jobs.json> [flags]",
            "Run a manifest of simulation jobs through one SimService "
            "(parallel jobs, shared artifact cache, one results file).");
    cli.option("manifest", "file", "", "JSON job manifest (required)")
        .option("out", "file", "batch_results.json",
                "consolidated results file");
    vksim::addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    std::string manifest_path = cli.get("manifest");
    if (manifest_path.empty()) {
        std::fprintf(stderr, "batchrun: --manifest is required "
                             "(try --help)\n");
        return 1;
    }

    std::string text, error;
    if (!readFile(manifest_path, &text, &error)) {
        std::fprintf(stderr, "batchrun: %s\n", error.c_str());
        return 1;
    }

    GpuConfig base = baselineGpuConfig();
    if (!vksim::applySimFlags(cli, &base))
        return 1;

    // Validate the whole manifest before submitting anything: a typo in
    // job 7 is reported in milliseconds, not after jobs 0-6 simulated.
    std::vector<service::JobSpec> specs;
    if (!service::parseManifestText(text, base, &specs, &error)) {
        std::fprintf(stderr, "batchrun: %s: %s\n", manifest_path.c_str(),
                     error.c_str());
        return 1;
    }

    service::SimService svc({cli.threadCount()});
    std::vector<service::JobTicket> tickets;
    for (const service::JobSpec &spec : specs) {
        try {
            tickets.push_back(svc.submit(spec));
        } catch (const std::invalid_argument &e) {
            std::fprintf(stderr, "batchrun: job '%s' rejected: %s\n",
                         spec.name.c_str(), e.what());
            return 1;
        }
    }

    std::printf("batchrun: %zu job(s) from %s on %u service thread(s)\n",
                tickets.size(), manifest_path.c_str(), svc.threadCount());
    auto start = std::chrono::steady_clock::now();
    svc.flush();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    // Collect results sorted by job name; count key sharing (stable
    // under any execution order, unlike per-job hit/miss flags). Failed
    // jobs are reported and skipped; their siblings are unaffected.
    std::map<std::string, const service::JobResult *> by_name;
    std::map<std::uint64_t, unsigned> bvh_key_uses;
    std::map<std::uint64_t, unsigned> pipeline_key_uses;
    unsigned failed = 0;
    for (service::JobTicket &ticket : tickets) {
        const service::JobResult *result = nullptr;
        try {
            result = &ticket.get();
        } catch (const SimError &e) {
            std::fprintf(stderr, "batchrun: %s\n", e.what());
            ++failed;
            continue;
        }
        if (by_name.count(result->name) != 0) {
            std::fprintf(stderr, "batchrun: duplicate job name '%s'\n",
                         result->name.c_str());
            return 1;
        }
        by_name[result->name] = result;
        ++bvh_key_uses[result->workload->bvhKey()];
        ++pipeline_key_uses[result->workload->pipelineKey()];
    }

    service::ArtifactCounters counters = svc.artifacts().counters();
    std::string out_path = cli.get("out");
    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "batchrun: cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    os << "{\n\"artifacts\": {\n"
       << "  \"bvh_builds\": " << counters.bvhBuilds << ",\n"
       << "  \"bvh_hits\": " << counters.bvhHits << ",\n"
       << "  \"pipeline_builds\": " << counters.pipelineBuilds << ",\n"
       << "  \"pipeline_hits\": " << counters.pipelineHits << "\n"
       << "},\n\"jobs\": {\n";
    bool first = true;
    for (const auto &[name, result] : by_name) {
        const wl::Workload &workload = *result->workload;
        os << (first ? "" : ",\n") << "\"" << name << "\": {\n"
           << "  \"workload\": \"" << workload.name() << "\",\n"
           << "  \"cycles\": " << result->run.cycles << ",\n"
           << "  \"bvh_shared\": "
           << (bvh_key_uses[workload.bvhKey()] > 1 ? "true" : "false")
           << ",\n"
           << "  \"pipeline_shared\": "
           << (pipeline_key_uses[workload.pipelineKey()] > 1 ? "true"
                                                             : "false")
           << ",\n  \"stats\":\n";
        result->run.metrics.writeJson(os, 2);
        os << "\n}";
        first = false;
    }
    // Host telemetry lives in its own trailing section so determinism
    // checks can compare everything above it byte-for-byte and drop
    // this block (it varies run to run by construction).
    os << "\n},\n\"perf\": {\n";
    first = true;
    char rate[64];
    for (const auto &[name, result] : by_name) {
        std::snprintf(rate, sizeof rate, "%.1f",
                      result->run.cyclesPerHostSecond());
        os << (first ? "" : ",\n") << "\"" << name << "\": {\n"
           << "  \"sim_cycles_per_s\": " << rate << ",\n"
           << "  \"stepping\": \""
           << (result->run.epochCyclesUsed > 1 ? "epoch" : "lock-step")
           << "\",\n"
           << "  \"epoch_cycles\": " << result->run.epochCyclesUsed
           << ",\n"
           << "  \"threads\": " << result->run.threadsUsed << "\n}";
        first = false;
    }
    os << "\n}\n}\n";
    os.close();

    std::printf("batchrun: artifact cache: %llu BVH build(s) + %llu "
                "hit(s), %llu pipeline build(s) + %llu hit(s)\n",
                static_cast<unsigned long long>(counters.bvhBuilds),
                static_cast<unsigned long long>(counters.bvhHits),
                static_cast<unsigned long long>(counters.pipelineBuilds),
                static_cast<unsigned long long>(counters.pipelineHits));
    std::printf("batchrun: wrote %s (%zu jobs in %.2fs wall)\n",
                out_path.c_str(), by_name.size(), seconds);
    if (failed > 0)
        std::fprintf(stderr, "batchrun: %u job(s) failed\n", failed);
    return failed > 0 ? 1 : 0;
}
