/**
 * @file
 * Manifest-driven batch runner: the command-line face of SimService.
 *
 * Reads a JSON manifest describing N jobs (workload + scale + GPU
 * configuration each), submits them all to one SimService — so jobs run
 * concurrently and share BVH/pipeline artifacts through the content-
 * addressed cache — and writes one consolidated results file (see
 * service/batchreport.h for the exact format and determinism rules).
 *
 * Jobs are keyed by name and written in sorted name order. Everything
 * outside the trailing "perf" section contains no wall-clock or
 * thread-count fields, so it is byte-identical for any --threads value
 * and any manifest job order (the determinism contract, extended to
 * batches). "perf" is explicitly host telemetry and is excluded from
 * byte-identity comparisons (CI strips it before diffing; see
 * .github/workflows/ci.yml).
 *
 * Persistence (DESIGN.md, "Persistence & recovery contract"):
 *
 *   --store=<dir>          attach the on-disk artifact store: BVHs and
 *                          translated pipelines become durable across
 *                          processes, and each finished job's result
 *                          record is persisted.
 *   --checkpoint-every=N   each job's engine auto-snapshots its full
 *                          state every N cycles into the store.
 *   --resume               jobs whose result records are already in the
 *                          store are served from them without running;
 *                          interrupted jobs restart from their latest
 *                          engine snapshot. A crashed batch rerun with
 *                          --resume produces a results file that is
 *                          byte-identical (minus "perf") to an
 *                          uninterrupted run's.
 *
 * The manifest format (and its strict validation: unknown keys, missing
 * required fields, and mistyped values are all rejected before anything
 * is submitted) lives in service/manifest.h.
 *
 * Usage: batchrun --manifest=jobs.json [--out=results.json]
 *                 [--threads=N] [--serial] [--check=off|basic|full]
 *                 [--store=dir] [--checkpoint-every=N] [--resume]
 *
 * --threads sets the *service* lanes (concurrent jobs); each job's
 * engine runs serially inside its lane. See tools/manifests/ for the CI
 * smoke manifest and the Figure-15 sweep.
 *
 * A job that fails with a recoverable SimError (e.g. the cycle
 * watchdog) is reported on stderr and omitted from the results file;
 * the rest of the batch still completes, the failed jobs are listed by
 * name, and batchrun exits nonzero. A results file that cannot be
 * fully written (disk full) is also an error — a partial file must
 * never read as a clean batch.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/vulkansim.h"
#include "gpu/checkpoint.h"
#include "service/batchreport.h"
#include "service/diskstore.h"
#include "service/manifest.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/jsonio.h"

namespace {

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vksim;

    Cli cli("batchrun --manifest=<jobs.json> [flags]",
            "Run a manifest of simulation jobs through one SimService "
            "(parallel jobs, shared artifact cache, one results file).");
    cli.option("manifest", "file", "", "JSON job manifest (required)")
        .option("out", "file", "batch_results.json",
                "consolidated results file")
        .option("store", "dir", "",
                "on-disk artifact store root (durable BVH/pipeline "
                "artifacts + per-job result records)")
        .option("checkpoint-every", "cycles", "0",
                "auto-snapshot each job's engine state every N cycles "
                "into the store (requires --store)")
        .flag("resume",
              "serve jobs already completed in --store from their "
              "result records; resume interrupted jobs from their "
              "latest engine snapshot");
    vksim::addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    std::string manifest_path = cli.get("manifest");
    if (manifest_path.empty()) {
        std::fprintf(stderr, "batchrun: --manifest is required "
                             "(try --help)\n");
        return 1;
    }

    std::string text, error;
    if (!readFile(manifest_path, &text, &error)) {
        std::fprintf(stderr, "batchrun: %s\n", error.c_str());
        return 1;
    }

    GpuConfig base = baselineGpuConfig();
    if (!vksim::applySimFlags(cli, &base))
        return 1;

    // Validate the whole manifest before submitting anything: a typo in
    // job 7 is reported in milliseconds, not after jobs 0-6 simulated.
    std::vector<service::JobSpec> specs;
    if (!service::parseManifestText(text, base, &specs, &error)) {
        std::fprintf(stderr, "batchrun: %s: %s\n", manifest_path.c_str(),
                     error.c_str());
        return 1;
    }
    std::set<std::string> names;
    for (const service::JobSpec &spec : specs)
        if (!names.insert(spec.name).second) {
            std::fprintf(stderr, "batchrun: duplicate job name '%s'\n",
                         spec.name.c_str());
            return 1;
        }

    const Cycle checkpoint_every =
        static_cast<Cycle>(cli.getInt("checkpoint-every"));
    const bool resume = cli.getBool("resume");
    std::unique_ptr<service::DiskStore> store;
    if (!cli.get("store").empty()) {
        try {
            store = std::make_unique<service::DiskStore>(cli.get("store"));
        } catch (const SimError &e) {
            std::fprintf(stderr, "batchrun: %s\n", e.what());
            return 1;
        }
    }
    if ((resume || checkpoint_every != 0) && store == nullptr) {
        std::fprintf(stderr, "batchrun: --resume and --checkpoint-every "
                             "need --store=<dir> to persist into\n");
        return 1;
    }

    // Per-job persistence targets, keyed by job name for the
    // completion hook below (populated before the flush, read-only
    // during it — jobs may complete concurrently).
    struct PersistInfo
    {
        std::uint64_t key = 0;
        std::string snapshotPath;
    };
    std::map<std::string, PersistInfo> persist;

    auto makeRecord = [](const service::JobResult &result) {
        service::JobRecord record;
        record.name = result.name;
        record.workloadName = result.workload->name();
        record.cycles = result.run.cycles;
        record.bvhKey = result.workload->bvhKey();
        record.pipelineKey = result.workload->pipelineKey();
        std::ostringstream stats;
        result.run.metrics.writeJson(stats, 2);
        record.statsJson = stats.str();
        record.epochCyclesUsed = result.run.epochCyclesUsed;
        record.threadsUsed = result.run.threadsUsed;
        record.simCyclesPerSecond = result.run.cyclesPerHostSecond();
        return record;
    };

    service::SimService::Config svc_config;
    svc_config.threads = cli.threadCount();
    if (store) {
        // The durable-queue hook: persist each job's result record the
        // moment it finishes — then retire its snapshot (a completed
        // job resumes from its record, never its engine) — so a crash
        // between two jobs loses at most the in-flight one.
        svc_config.onJobComplete =
            [&](const service::JobResult &result) {
                auto it = persist.find(result.name);
                if (it == persist.end())
                    return;
                serial::Writer w;
                service::encodeJobRecord(w, makeRecord(result));
                store->put(service::DiskStore::Kind::Result,
                           it->second.key, w.buffer());
                if (!it->second.snapshotPath.empty())
                    std::remove(it->second.snapshotPath.c_str());
            };
    }
    service::SimService svc(svc_config);
    if (store)
        svc.artifacts().setDiskStore(store.get());

    // Completed-job records: loaded from the store on --resume, filled
    // in from tickets after the flush. One uniform vector feeds the
    // writer so record-loaded and freshly run jobs are byte-equivalent.
    std::vector<service::JobRecord> records;
    struct Submitted
    {
        service::JobTicket ticket;
        std::string name;
    };
    std::vector<Submitted> submitted;
    std::size_t resumed_from_snapshot = 0;

    for (const service::JobSpec &spec : specs) {
        Submitted entry;
        entry.name = spec.name;
        PersistInfo info;
        info.key = store ? service::jobKey(spec) : 0;
        service::JobSpec effective = spec;
        if (resume) {
            if (auto bytes = store->get(service::DiskStore::Kind::Result,
                                        info.key)) {
                serial::Reader r(*bytes);
                records.push_back(service::decodeJobRecord(r));
                std::printf("batchrun: job '%s' already complete in "
                            "store, skipping\n",
                            spec.name.c_str());
                continue;
            }
        }
        if (store && checkpoint_every != 0) {
            info.snapshotPath = store->snapshotPath(info.key);
            effective.config.checkpoint.every = checkpoint_every;
            effective.config.checkpoint.path = info.snapshotPath;
            if (resume && fileExists(info.snapshotPath)) {
                try {
                    effective.config.checkpoint.resume =
                        std::make_shared<EngineSnapshot>(
                            readSnapshotFile(info.snapshotPath));
                    ++resumed_from_snapshot;
                } catch (const SimError &e) {
                    // A torn/corrupt snapshot is recoverable: the job
                    // just restarts from cycle 0.
                    std::fprintf(stderr,
                                 "batchrun: job '%s': %s — restarting "
                                 "from cycle 0\n",
                                 spec.name.c_str(), e.what());
                }
            }
        }
        if (store)
            persist[spec.name] = info;
        try {
            entry.ticket = svc.submit(effective);
        } catch (const std::invalid_argument &e) {
            std::fprintf(stderr, "batchrun: job '%s' rejected: %s\n",
                         spec.name.c_str(), e.what());
            return 1;
        }
        submitted.push_back(std::move(entry));
    }

    std::printf("batchrun: %zu job(s) from %s on %u service thread(s)",
                submitted.size(), manifest_path.c_str(),
                svc.threadCount());
    if (!records.empty() || resumed_from_snapshot != 0)
        std::printf(" (%zu from store, %zu from snapshot)",
                    records.size(), resumed_from_snapshot);
    std::printf("\n");
    auto start = std::chrono::steady_clock::now();
    svc.flush();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    // Collect results. Failed jobs are reported and skipped — their
    // siblings are unaffected — and listed by name at exit.
    std::vector<std::string> failed_names;
    for (Submitted &entry : submitted) {
        const service::JobResult *result = nullptr;
        try {
            result = &entry.ticket.get();
        } catch (const SimError &e) {
            std::fprintf(stderr, "batchrun: %s\n", e.what());
            failed_names.push_back(entry.name);
            continue;
        }
        // Store persistence already happened in the completion hook;
        // this record only feeds the consolidated results file.
        records.push_back(makeRecord(*result));
    }

    std::string out_path = cli.get("out");
    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "batchrun: cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    service::writeBatchResults(os, records);
    os.close();
    if (!os) {
        std::fprintf(stderr, "batchrun: failed writing %s (disk full "
                             "or I/O error); the file is incomplete\n",
                     out_path.c_str());
        return 1;
    }

    service::ArtifactCounters counters = svc.artifacts().counters();
    std::printf("batchrun: artifact cache: %llu BVH build(s) + %llu "
                "hit(s), %llu pipeline build(s) + %llu hit(s)\n",
                static_cast<unsigned long long>(counters.bvhBuilds),
                static_cast<unsigned long long>(counters.bvhHits),
                static_cast<unsigned long long>(counters.pipelineBuilds),
                static_cast<unsigned long long>(counters.pipelineHits));
    if (store) {
        service::DiskStore::Counters disk = store->counters();
        std::printf("batchrun: disk store: %llu load(s), %llu store(s), "
                    "%llu miss(es), %llu corrupt evicted\n",
                    static_cast<unsigned long long>(disk.loads),
                    static_cast<unsigned long long>(disk.stores),
                    static_cast<unsigned long long>(disk.misses),
                    static_cast<unsigned long long>(
                        disk.corruptEvictions));
    }
    std::printf("batchrun: wrote %s (%zu jobs in %.2fs wall)\n",
                out_path.c_str(), records.size(), seconds);
    std::string failures = service::failureSummary(failed_names);
    if (!failures.empty()) {
        std::fprintf(stderr, "batchrun: %s\n", failures.c_str());
        return 1;
    }
    return 0;
}
