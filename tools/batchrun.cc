/**
 * @file
 * Manifest-driven batch runner: the command-line face of SimService.
 *
 * Reads a JSON manifest describing N jobs (workload + scale + GPU
 * configuration each), submits them all to one SimService — so jobs run
 * concurrently and share BVH/pipeline artifacts through the content-
 * addressed cache — and writes one consolidated results file:
 *
 *   {
 *     "artifacts": {"bvh_builds": ..., "bvh_hits": ...,
 *                   "pipeline_builds": ..., "pipeline_hits": ...},
 *     "jobs": {
 *       "<name>": {"workload": ..., "cycles": ...,
 *                  "bvh_shared": ..., "pipeline_shared": ...,
 *                  "stats": { <full metrics registry> }},
 *       ...
 *     }
 *   }
 *
 * Jobs are keyed by name and written in sorted name order; the file
 * contains no wall-clock or thread-count fields, so it is byte-identical
 * for any --threads value and any manifest job order (the determinism
 * contract, extended to batches). Wall-clock goes to stdout only.
 *
 * Manifest format — {"jobs": [ {...}, ... ]} with per-job fields:
 *   name     string   job name (default: "<workload><index>")
 *   workload string   TRI | REF | EXT | RTV5 | RTV6     (required)
 *   width    number   launch width in pixels (default 32)
 *   height   number   launch height (default: width)
 *   scale    number   EXT tessellation fraction (default 0.25)
 *   detail   number   RTV5 subdivision (default 5)
 *   prims    number   RTV6 primitive count (default 400)
 *   fcc      bool     lower traceRay with FCC (default false)
 *   config   string   baseline | mobile (default baseline)
 *   variant  string   baseline | rtcache | perfectbvh | perfectmem
 *
 * Usage: batchrun --manifest=jobs.json [--out=results.json]
 *                 [--threads=N] [--serial] [--check=off|basic|full]
 *
 * --threads sets the *service* lanes (concurrent jobs); each job's
 * engine runs serially inside its lane. See tools/manifests/ for the CI
 * smoke manifest and the Figure-15 sweep.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/vulkansim.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/jsonio.h"

namespace {

using namespace vksim;

/** Numeric member with a default. */
double
numberOr(const JsonValue &job, const std::string &key, double fallback)
{
    const JsonValue *v = job.member(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

std::string
stringOr(const JsonValue &job, const std::string &key,
         const std::string &fallback)
{
    const JsonValue *v = job.member(key);
    return v != nullptr && v->isString() ? v->str : fallback;
}

bool
boolOr(const JsonValue &job, const std::string &key, bool fallback)
{
    const JsonValue *v = job.member(key);
    return v != nullptr && v->kind == JsonValue::Kind::Bool ? v->boolean
                                                            : fallback;
}

bool
workloadByName(const std::string &name, wl::WorkloadId *out)
{
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        if (name == wl::workloadName(id)) {
            *out = id;
            return true;
        }
    }
    return false;
}

/** Parse one manifest entry into a JobSpec; false + message on error. */
bool
parseJob(const JsonValue &job, std::size_t index, const GpuConfig &base,
         service::JobSpec *out, std::string *error)
{
    std::string workload = stringOr(job, "workload", "");
    if (!workloadByName(workload, &out->workload)) {
        *error = "job " + std::to_string(index) + ": unknown workload '"
                 + workload + "' (use TRI/REF/EXT/RTV5/RTV6)";
        return false;
    }
    out->params.width =
        static_cast<unsigned>(numberOr(job, "width", 32));
    out->params.height = static_cast<unsigned>(
        numberOr(job, "height", out->params.width));
    out->params.extScale =
        static_cast<float>(numberOr(job, "scale", 0.25));
    out->params.rtv5Detail =
        static_cast<unsigned>(numberOr(job, "detail", 5));
    out->params.rtv6Prims =
        static_cast<unsigned>(numberOr(job, "prims", 400));
    out->params.fcc = boolOr(job, "fcc", false);
    out->name = stringOr(job, "name", workload + std::to_string(index));

    std::string config = stringOr(job, "config", "baseline");
    if (config == "mobile")
        out->config = mobileGpuConfig();
    else if (config == "baseline")
        out->config = baselineGpuConfig();
    else {
        *error = "job " + std::to_string(index) + ": unknown config '"
                 + config + "' (use baseline or mobile)";
        return false;
    }
    // Shared flags (check level etc.) folded into the per-job base.
    out->config.checkLevel = base.checkLevel;
    out->config.printPerfSummary = base.printPerfSummary;

    std::string variant = stringOr(job, "variant", "baseline");
    if (variant == "rtcache")
        out->config = applyMemoryVariant(out->config, MemoryVariant::RtCache);
    else if (variant == "perfectbvh")
        out->config =
            applyMemoryVariant(out->config, MemoryVariant::PerfectBvh);
    else if (variant == "perfectmem")
        out->config =
            applyMemoryVariant(out->config, MemoryVariant::PerfectMem);
    else if (variant != "baseline") {
        *error = "job " + std::to_string(index) + ": unknown variant '"
                 + variant
                 + "' (use baseline/rtcache/perfectbvh/perfectmem)";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("batchrun --manifest=<jobs.json> [flags]",
            "Run a manifest of simulation jobs through one SimService "
            "(parallel jobs, shared artifact cache, one results file).");
    cli.option("manifest", "file", "", "JSON job manifest (required)")
        .option("out", "file", "batch_results.json",
                "consolidated results file");
    vksim::addSimFlags(cli);
    if (!cli.parse(argc, argv))
        return cli.helpRequested() ? 0 : 1;

    std::string manifest_path = cli.get("manifest");
    if (manifest_path.empty()) {
        std::fprintf(stderr, "batchrun: --manifest is required "
                             "(try --help)\n");
        return 1;
    }

    std::string text, error;
    if (!readFile(manifest_path, &text, &error)) {
        std::fprintf(stderr, "batchrun: %s\n", error.c_str());
        return 1;
    }
    JsonValue manifest;
    if (!parseJson(text, &manifest, &error)) {
        std::fprintf(stderr, "batchrun: %s: %s\n", manifest_path.c_str(),
                     error.c_str());
        return 1;
    }
    const JsonValue *jobs = manifest.member("jobs");
    if (jobs == nullptr || !jobs->isArray() || jobs->array.empty()) {
        std::fprintf(stderr,
                     "batchrun: %s: expected a non-empty \"jobs\" array\n",
                     manifest_path.c_str());
        return 1;
    }

    GpuConfig base = baselineGpuConfig();
    if (!vksim::applySimFlags(cli, &base))
        return 1;

    service::SimService svc({cli.threadCount()});
    std::vector<service::JobTicket> tickets;
    for (std::size_t i = 0; i < jobs->array.size(); ++i) {
        service::JobSpec spec;
        if (!parseJob(jobs->array[i], i, base, &spec, &error)) {
            std::fprintf(stderr, "batchrun: %s: %s\n",
                         manifest_path.c_str(), error.c_str());
            return 1;
        }
        try {
            tickets.push_back(svc.submit(spec));
        } catch (const std::invalid_argument &e) {
            std::fprintf(stderr, "batchrun: job '%s' rejected: %s\n",
                         spec.name.c_str(), e.what());
            return 1;
        }
    }

    std::printf("batchrun: %zu job(s) from %s on %u service thread(s)\n",
                tickets.size(), manifest_path.c_str(), svc.threadCount());
    auto start = std::chrono::steady_clock::now();
    svc.flush();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    // Collect results sorted by job name; count key sharing (stable
    // under any execution order, unlike per-job hit/miss flags).
    std::map<std::string, const service::JobResult *> by_name;
    std::map<std::uint64_t, unsigned> bvh_key_uses;
    std::map<std::uint64_t, unsigned> pipeline_key_uses;
    for (service::JobTicket &ticket : tickets) {
        const service::JobResult &result = ticket.get();
        if (by_name.count(result.name) != 0) {
            std::fprintf(stderr, "batchrun: duplicate job name '%s'\n",
                         result.name.c_str());
            return 1;
        }
        by_name[result.name] = &result;
        ++bvh_key_uses[result.workload->bvhKey()];
        ++pipeline_key_uses[result.workload->pipelineKey()];
    }

    service::ArtifactCounters counters = svc.artifacts().counters();
    std::string out_path = cli.get("out");
    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "batchrun: cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    os << "{\n\"artifacts\": {\n"
       << "  \"bvh_builds\": " << counters.bvhBuilds << ",\n"
       << "  \"bvh_hits\": " << counters.bvhHits << ",\n"
       << "  \"pipeline_builds\": " << counters.pipelineBuilds << ",\n"
       << "  \"pipeline_hits\": " << counters.pipelineHits << "\n"
       << "},\n\"jobs\": {\n";
    bool first = true;
    for (const auto &[name, result] : by_name) {
        const wl::Workload &workload = *result->workload;
        os << (first ? "" : ",\n") << "\"" << name << "\": {\n"
           << "  \"workload\": \"" << workload.name() << "\",\n"
           << "  \"cycles\": " << result->run.cycles << ",\n"
           << "  \"bvh_shared\": "
           << (bvh_key_uses[workload.bvhKey()] > 1 ? "true" : "false")
           << ",\n"
           << "  \"pipeline_shared\": "
           << (pipeline_key_uses[workload.pipelineKey()] > 1 ? "true"
                                                             : "false")
           << ",\n  \"stats\":\n";
        result->run.metrics.writeJson(os, 2);
        os << "\n}";
        first = false;
    }
    os << "\n}\n}\n";
    os.close();

    std::printf("batchrun: artifact cache: %llu BVH build(s) + %llu "
                "hit(s), %llu pipeline build(s) + %llu hit(s)\n",
                static_cast<unsigned long long>(counters.bvhBuilds),
                static_cast<unsigned long long>(counters.bvhHits),
                static_cast<unsigned long long>(counters.pipelineBuilds),
                static_cast<unsigned long long>(counters.pipelineHits));
    std::printf("batchrun: wrote %s (%zu jobs in %.2fs wall)\n",
                out_path.c_str(), by_name.size(), seconds);
    return 0;
}
