/**
 * @file
 * Figure 14 of the paper: L1D and L2 access breakdown — hits vs misses,
 * split by request origin (shader loads vs RT unit) and miss class
 * (compulsory vs capacity/conflict). The paper's findings: most misses
 * come from shader loads and are largely compulsory; RT-unit loads show
 * capacity/conflict thrashing.
 */

#include "bench/common.h"
#include "service/service.h"

namespace {

void
printBreakdown(const char *level, const vksim::StatGroup &stats)
{
    using std::uint64_t;
    auto get = [&](const char *k) { return stats.get(k); };
    uint64_t total = get("accesses.shader") + get("accesses.rtunit");
    if (total == 0)
        return;
    auto pct = [&](uint64_t v) { return 100.0 * v / total; };
    std::printf("  %-4s sh.hit %5.1f%%  sh.compulsory %5.1f%%  "
                "sh.cap/conf %5.1f%%  rt.hit %5.1f%%  rt.compulsory "
                "%5.1f%%  rt.cap/conf %5.1f%%\n",
                level, pct(get("hits.shader")),
                pct(get("miss_compulsory.shader")),
                pct(get("miss_capacity_conflict.shader")),
                pct(get("hits.rtunit")),
                pct(get("miss_compulsory.rtunit")),
                pct(get("miss_capacity_conflict.rtunit")));
}

} // namespace

int
main()
{
    using namespace vksim;
    bench::header("Figure 14", "L1D and L2 cache access breakdown",
                  "paper: misses dominated by shader loads, mostly "
                  "compulsory; RT loads show capacity/conflict misses");

    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::Workload workload(id, bench::benchParams(id));
        RunResult run = service::defaultService().submit(workload, baselineGpuConfig()).take().run;
        std::printf("%s:\n", workload.name());
        printBreakdown("L1D", run.l1);
        printBreakdown("L2", run.l2);
    }
    return 0;
}
