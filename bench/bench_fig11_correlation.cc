/**
 * @file
 * Figure 11 of the paper: cycle-count correlation between Vulkan-Sim
 * (baseline configuration) and an NVIDIA RTX 2080 SUPER — 95.7 %
 * correlation with a slope of ~2.58. Our hardware stand-in is the
 * analytical RTX-like proxy model (DESIGN.md substitutions), so the
 * shape to reproduce is: high correlation across workloads with the
 * simulator reporting more cycles than the leaner hardware estimate.
 */

#include "bench/common.h"
#include "hwproxy/hwproxy.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Figure 11",
                  "Correlation vs the RTX-2080-SUPER-like proxy",
                  "paper: correlation 95.7 %, slope ~2.58 vs real "
                  "hardware");

    std::vector<double> hw, sim;
    std::printf("%-8s %16s %18s\n", "Scene", "proxy cycles",
                "simulator cycles");
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::Workload workload(id, bench::benchParams(id));
        WorkloadProfile profile = profileWorkload(workload);
        double hw_cycles = estimateHardwareCycles(profile);
        RunResult run = service::defaultService().submit(workload, baselineGpuConfig()).take().run;
        hw.push_back(hw_cycles);
        sim.push_back(static_cast<double>(run.cycles));
        std::printf("%-8s %16.0f %18llu\n", workload.name(), hw_cycles,
                    static_cast<unsigned long long>(run.cycles));
    }
    Correlation corr = correlate(hw, sim);
    std::printf("\ncorrelation coefficient: %.1f%% (paper: 95.7%%)\n",
                100.0 * corr.coefficient);
    std::printf("slope (sim = slope * hw): %.2f (paper: 2.58)\n",
                corr.slope);
    return 0;
}
