/**
 * @file
 * Table III of the paper: the simulated GPU configurations (baseline and
 * mobile), printed from the live configuration structures so the table
 * always reflects what the simulator actually models.
 */

#include "bench/common.h"

int
main()
{
    using namespace vksim;
    bench::header("Table III", "GPU configurations");
    GpuConfig base = baselineGpuConfig();
    GpuConfig mobile = mobileGpuConfig();

    auto row = [](const char *name, const std::string &b,
                  const std::string &m) {
        std::printf("%-36s %-22s %s\n", name, b.c_str(), m.c_str());
    };
    std::printf("%-36s %-22s %s\n", "", "Baseline", "Mobile");
    row("# Streaming Multiprocessors (SM)", std::to_string(base.numSms),
        std::to_string(mobile.numSms));
    row("Max Warps / SM", std::to_string(base.maxWarpsPerSm),
        std::to_string(mobile.maxWarpsPerSm));
    row("Warp Size", std::to_string(kWarpSize), std::to_string(kWarpSize));
    row("Warp Scheduler", "GTO", "GTO");
    row("# Registers / SM", std::to_string(base.regsPerSm),
        std::to_string(mobile.regsPerSm));
    row("L1 Data Cache",
        std::to_string(base.l1.sizeBytes / 1024) + "KB fully assoc LRU, "
            + std::to_string(base.l1.latency) + " cycles",
        std::to_string(mobile.l1.sizeBytes / 1024) + "KB, "
            + std::to_string(mobile.l1.latency) + " cycles");
    row("L2 Unified Cache",
        std::to_string(base.fabric.l2.sizeBytes * base.fabric.numPartitions
                       / (1024 * 1024))
            + "MB "
            + std::to_string(base.fabric.l2.assoc) + "-way LRU, "
            + std::to_string(base.fabric.l2.latency) + " cycles",
        std::to_string(mobile.fabric.l2.sizeBytes
                       * mobile.fabric.numPartitions / (1024 * 1024))
            + "MB, " + std::to_string(mobile.fabric.l2.latency)
            + " cycles");
    row("Compute Core Clock",
        std::to_string(static_cast<int>(base.coreClockMhz)) + " MHz",
        std::to_string(static_cast<int>(mobile.coreClockMhz)) + " MHz");
    row("Memory Clock",
        std::to_string(static_cast<int>(base.coreClockMhz
                                        * base.fabric.dramClockRatio))
            + " MHz",
        std::to_string(static_cast<int>(mobile.coreClockMhz
                                        * mobile.fabric.dramClockRatio))
            + " MHz");
    row("# RT Units / SM", "1", "1");
    row("RT Unit Max Warps", std::to_string(base.rt.maxWarps),
        std::to_string(mobile.rt.maxWarps));
    row("RT Unit MSHR / mem queue", std::to_string(base.rt.memQueueSize),
        std::to_string(mobile.rt.memQueueSize));
    row("Memory Partitions", std::to_string(base.fabric.numPartitions),
        std::to_string(mobile.fabric.numPartitions));
    return 0;
}
