/**
 * @file
 * Figure 12 of the paper: a roofline for the RT unit. Operations are
 * intersection tests and ray transforms; operational intensity is
 * operations per cache block fetched; performance is operations per
 * cycle. The memory bound is one cache block per cycle per RT unit; the
 * compute bound is the operation-unit issue rate. The paper's takeaway:
 * all workloads sit under the memory bound and far from both bounds,
 * with EXT/RTV closest to the memory roof (more so on mobile).
 */

#include "bench/common.h"
#include "service/service.h"

namespace {

void
runConfig(const char *label, const vksim::GpuConfig &config)
{
    using namespace vksim;
    double mem_bound_slope =
        static_cast<double>(config.numSms) * config.rt.issuePerCycle;
    double compute_bound =
        static_cast<double>(config.numSms) * config.rt.opsPerCycle;
    std::printf("\n[%s] compute bound = %.0f ops/cycle, memory bound = "
                "%.0f blocks/cycle x intensity\n",
                label, compute_bound, mem_bound_slope);
    std::printf("%-8s %16s %14s %18s %12s\n", "Scene", "ops",
                "intensity", "perf (ops/cyc)", "of mem roof");
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::Workload workload(id, bench::benchParams(id));
        RunResult run = service::defaultService().submit(workload, config).take().run;
        double ops = static_cast<double>(run.rt.get("ops_box")
                                         + run.rt.get("ops_triangle")
                                         + run.rt.get("ops_transform"));
        double blocks = static_cast<double>(
            std::max<std::uint64_t>(1, run.rt.get("mem_requests")));
        double intensity = ops / blocks;
        double perf = ops / static_cast<double>(run.cycles);
        double roof = std::min(compute_bound, intensity * mem_bound_slope);
        std::printf("%-8s %16.0f %14.3f %18.3f %11.1f%%\n",
                    workload.name(), ops, intensity, perf,
                    100.0 * perf / roof);
    }
}

} // namespace

int
main()
{
    using namespace vksim;
    bench::header("Figure 12", "Roofline plot for the RT unit",
                  "paper: all workloads memory-bound and under-utilized; "
                  "EXT/RTV closest to the roof, more so on mobile");
    runConfig("baseline", baselineGpuConfig());
    runConfig("mobile", mobileGpuConfig());
    return 0;
}
