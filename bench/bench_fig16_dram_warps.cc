/**
 * @file
 * Figure 16 of the paper: DRAM efficiency and utilization as the
 * maximum number of concurrent warps per RT unit sweeps from 1 to 20,
 * for the baseline and mobile configurations. The paper's shape:
 * performance gains flatten around eight warps; DRAM efficiency stays
 * mediocre (~46 % baseline) and is higher on mobile (~77 %) where
 * bandwidth is scarcer.
 */

#include "bench/common.h"
#include "service/service.h"

namespace {

void
sweep(const char *label, const vksim::GpuConfig &base_config,
      vksim::wl::WorkloadId id)
{
    using namespace vksim;
    std::printf("\n[%s / %s]\n", label, wl::workloadName(id));
    std::printf("%8s %12s %12s %12s %10s %8s\n", "rtWarps", "cycles",
                "dram util", "dram eff", "rowhit %", "BLP");
    for (unsigned warps : {1u, 2u, 4u, 8u, 12u, 16u, 20u}) {
        wl::Workload workload(id, bench::benchParams(id));
        GpuConfig config = base_config;
        config.rt.maxWarps = warps;
        RunResult run = service::defaultService().submit(workload, config).take().run;
        double rh = static_cast<double>(run.dram.get("row_hits"));
        double rm = static_cast<double>(run.dram.get("row_misses"));
        double row_pct = rh + rm > 0 ? 100.0 * rh / (rh + rm) : 0.0;
        double blp =
            run.dram.get("blp_samples")
                ? static_cast<double>(run.dram.get("blp_sum"))
                      / run.dram.get("blp_samples")
                : 0.0;
        std::printf("%8u %12llu %11.1f%% %11.1f%% %9.1f%% %8.2f\n", warps,
                    static_cast<unsigned long long>(run.cycles),
                    100.0 * run.dramUtilization(),
                    100.0 * run.dramEfficiency(), row_pct, blp);
    }
}

} // namespace

int
main()
{
    using namespace vksim;
    bench::header("Figure 16",
                  "DRAM behaviour vs max warps per RT unit (1..20)",
                  "paper: gains flatten around 8 warps; mobile shows "
                  "higher DRAM efficiency/utilization");
    // Reduced SM counts keep each RT unit contended at bench-scale
    // launches (the paper's full-resolution runs populate all 30 SMs).
    GpuConfig base = baselineGpuConfig();
    base.numSms = 4;
    base.fabric.numPartitions = 2;
    base.fabric.l2.sizeBytes = 3 * 1024 * 1024 / 2;
    GpuConfig mobile = mobileGpuConfig();
    mobile.numSms = 2;
    sweep("baseline-contended", base, wl::WorkloadId::EXT);
    sweep("baseline-contended", base, wl::WorkloadId::RTV6);
    sweep("mobile-contended", mobile, wl::WorkloadId::EXT);
    return 0;
}
