/**
 * @file
 * Section VI-D of the paper: power estimation in the spirit of
 * AccelWattch — the RT units average under 1 % of GPU power, DRAM is the
 * most power-intensive ray tracing contributor (~10 %), and constant +
 * static power dominate.
 */

#include "bench/common.h"
#include "power/power.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Section VI-D", "GPU power breakdown",
                  "paper: RT units < 1 %, DRAM ~10 %, constant+static "
                  "power dominates");

    GpuConfig config = baselineGpuConfig();
    std::printf("%-8s %9s %12s %9s %9s %9s %14s\n", "Scene", "avg W",
                "const+stat", "core dyn", "caches", "DRAM", "RT units");
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::Workload workload(id, bench::benchParams(id));
        RunResult run = service::defaultService().submit(workload, config).take().run;
        PowerReport p = estimatePower(run, config.numSms);
        std::printf("%-8s %9.1f %11.1f%% %8.1f%% %8.1f%% %8.1f%% %13.3f%%\n",
                    workload.name(), p.averageWatts,
                    100.0
                        * (p.fractionOf(p.constantJoules)
                           + p.fractionOf(p.staticJoules)),
                    100.0 * p.fractionOf(p.coreDynamicJoules),
                    100.0 * p.fractionOf(p.cacheJoules),
                    100.0 * p.fractionOf(p.dramJoules),
                    100.0 * p.fractionOf(p.rtUnitJoules));
    }
    return 0;
}
