/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's own hot paths:
 * BVH construction throughput, serialized-BVH traversal rays/second, the
 * functional VPTX executor, and one timed-simulation step. These measure
 * the *simulator* (how fast experiments run), not the modelled GPU.
 *
 * Besides the normal console table, every run writes a machine-readable
 * summary to BENCH_micro.json (override the path with the
 * VKSIM_BENCH_OUT environment variable): a JSON array with one object
 * per benchmark repetition, carrying name, iterations, real/cpu time,
 * the time unit, items-per-second, and any user counters.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "accel/nodetest.h"
#include "core/vulkansim.h"
#include "reftrace/tracer.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "service/service.h"
#include "vptx/exec.h"

namespace {

using namespace vksim;

void
BM_BvhBuild(benchmark::State &state)
{
    Scene scene = makeExtScene(static_cast<float>(state.range(0)) / 100.f);
    std::size_t prims = scene.totalPrimitives();
    for (auto _ : state) {
        GlobalMemory gmem;
        AccelStruct accel = buildAccelStruct(scene, gmem);
        benchmark::DoNotOptimize(accel.stats.totalBytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * prims);
}
BENCHMARK(BM_BvhBuild)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void
BM_Traversal(benchmark::State &state)
{
    Scene scene = makeExtScene(0.2f);
    GlobalMemory gmem;
    AccelStruct accel = buildAccelStruct(scene, gmem);
    CpuTracer tracer(scene, gmem, accel);
    unsigned x = 0;
    std::int64_t rays = 0;
    for (auto _ : state) {
        Ray ray = scene.camera.generateRay(x % 64, (x / 64) % 64, 64, 64);
        ++x;
        HitRecord hit = tracer.trace(ray);
        benchmark::DoNotOptimize(hit.t);
        ++rays;
    }
    state.SetItemsProcessed(rays);
}
BENCHMARK(BM_Traversal);

void
BM_FunctionalSim(benchmark::State &state)
{
    wl::WorkloadParams params;
    params.width = 16;
    params.height = 16;
    params.extScale = 0.1f;
    for (auto _ : state) {
        wl::Workload workload(wl::WorkloadId::EXT, params);
        StatGroup stats;
        workload.runFunctional(vptx::WarpCflow::Mode::Stack, &stats);
        benchmark::DoNotOptimize(stats.get("instructions"));
    }
    state.SetLabel("16x16 EXT launch per iteration");
}
BENCHMARK(BM_FunctionalSim)->Unit(benchmark::kMillisecond);

void
BM_TimedSim(benchmark::State &state)
{
    wl::WorkloadParams params;
    params.width = 16;
    params.height = 16;
    GpuConfig config = baselineGpuConfig();
    config.numSms = 8;
    config.fabric.numPartitions = 2;
    config.threads = 1;
    std::int64_t sim_cycles = 0;
    for (auto _ : state) {
        wl::Workload workload(wl::WorkloadId::TRI, params);
        RunResult run = service::defaultService().submit(workload, config).take().run;
        benchmark::DoNotOptimize(run.cycles);
        sim_cycles += static_cast<std::int64_t>(run.cycles);
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
    state.SetLabel("16x16 TRI cycle-level run per iteration");
}
BENCHMARK(BM_TimedSim)->Unit(benchmark::kMillisecond);

/**
 * Idle-skip speedup on a DRAM-bound scene: a small ray-traced launch on
 * the full 30-SM baseline machine leaves most SMs without warps and the
 * busy ones latency-bound on DRAM, so the event-stepped scheduler
 * (Arg 1) sleeps cold SMs and fast-forwards event-free fabric cycles,
 * while lock-step mode (Arg 0) cycles all 30 SMs every cycle. Both args
 * simulate the identical machine and produce identical stats; compare
 * sim_cycles_per_s for the speedup.
 */
void
BM_IdleSkip(benchmark::State &state)
{
    wl::WorkloadParams params;
    params.width = 16;
    params.height = 16;
    params.rtv6Prims = 400;
    GpuConfig config = baselineGpuConfig(); // 30 SMs, timed DRAM model
    config.threads = 1;
    config.idleSkip = state.range(0) != 0;
    std::int64_t sim_cycles = 0;
    std::int64_t skipped = 0;
    for (auto _ : state) {
        wl::Workload workload(wl::WorkloadId::RTV6, params);
        RunResult run = service::defaultService().submit(workload, config).take().run;
        benchmark::DoNotOptimize(run.cycles);
        sim_cycles += static_cast<std::int64_t>(run.cycles);
        skipped += static_cast<std::int64_t>(run.smCyclesSkipped);
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
    state.counters["sm_cycles_skipped"] = benchmark::Counter(
        static_cast<double>(skipped), benchmark::Counter::kAvgIterations);
    state.SetLabel(config.idleSkip
                       ? "16x16 RTV6, 30 SMs, idle-skip on"
                       : "16x16 RTV6, 30 SMs, lock-step");
}
BENCHMARK(BM_IdleSkip)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/**
 * Parallel-engine scaling on the DRAM-bound 30-SM RTV6 scene (the same
 * machine/launch BM_IdleSkip measures): real-time sim-cycles/s over the
 * full thread series, with the first point pinned to the 1-thread
 * lock-step oracle (epoch = 1) as the speedup baseline. The remaining
 * points run the epoch-stepped engine (default epoch length), which is
 * what lets the per-SM workers amortize the cycle barrier and scale.
 * Each point also records parallel efficiency — speedup over the
 * 1-thread epoch run divided by the thread count — so BENCH_micro.json
 * tracks scaling regressions, not just single-point throughput.
 * UseRealTime so the rate reflects the whole pool, not just the calling
 * thread.
 */
void
BM_TimedSimThreads(benchmark::State &state)
{
    // Rates from earlier points in the series (benchmarks registered
    // with the same function run in registration order).
    static double lockstep_rate = 0;
    static double epoch_one_thread_rate = 0;

    wl::WorkloadParams params;
    params.width = 16;
    params.height = 16;
    params.rtv6Prims = 400;
    GpuConfig config = baselineGpuConfig(); // 30 SMs, timed DRAM model
    config.threads = static_cast<unsigned>(state.range(0));
    config.epochCycles = static_cast<unsigned>(state.range(1));
    std::int64_t sim_cycles = 0;
    auto wall_start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        wl::Workload workload(wl::WorkloadId::RTV6, params);
        RunResult run = service::defaultService().submit(workload, config).take().run;
        benchmark::DoNotOptimize(run.cycles);
        sim_cycles += static_cast<std::int64_t>(run.cycles);
    }
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
    double rate = wall > 0 ? static_cast<double>(sim_cycles) / wall : 0;

    const unsigned threads = config.threads;
    const bool lockstep = config.epochCycles == 1;
    if (threads == 1 && lockstep)
        lockstep_rate = rate;
    if (threads == 1 && !lockstep)
        epoch_one_thread_rate = rate;

    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
    state.counters["epoch_cycles"] =
        static_cast<double>(config.epochCycles);
    // The host core count contextualizes the scaling points: a 4-thread
    // run on a 2-core CI machine is oversubscribed, and its parallel
    // efficiency must be judged (and trended) against that.
    state.counters["host_cores"] =
        static_cast<double>(std::thread::hardware_concurrency());
    if (lockstep_rate > 0)
        state.counters["speedup_vs_lockstep"] = rate / lockstep_rate;
    if (epoch_one_thread_rate > 0)
        state.counters["parallel_efficiency"] =
            rate / (epoch_one_thread_rate * threads);
    state.SetLabel(
        "16x16 RTV6, 30 SMs, threads = arg0, "
        + std::string(lockstep ? "lock-step" : "epoch-stepped"));
}
BENCHMARK(BM_TimedSimThreads)
    ->Args({1, 1})  // lock-step oracle baseline
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({8, 64})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Interpreter dispatch cost: the same vptx-bound launch through the
 * legacy structural-ISA interpreter (Arg 0) and the pre-decoded
 * micro-op stream (Arg 1). Both arms execute the identical dynamic
 * instruction sequence (the differential suite asserts bit-identity),
 * so items_per_second measures pure dispatch + operand-plumbing
 * overhead; compare the two arms for the micro-op speedup.
 */
void
BM_VptxDispatch(benchmark::State &state)
{
    using vptx::Instr;
    using vptx::Opcode;
    // Synthetic vptx-bound kernel: a counted loop of dependent ALU work
    // (the shader-library loop idiom — BraZ to the exit, Jmp back) so
    // the benchmark measures interpreter dispatch, not BVH traversal.
    auto op = [](Opcode o, int dst = -1, int s0 = -1, int s1 = -1) {
        Instr i;
        i.op = o;
        i.dst = static_cast<std::int16_t>(dst);
        i.src0 = static_cast<std::int16_t>(s0);
        i.src1 = static_cast<std::int16_t>(s1);
        return i;
    };
    auto imm = [&op](Opcode o, int dst, std::uint64_t v) {
        Instr i = op(o, dst);
        i.imm = v;
        return i;
    };
    std::vector<Instr> code = {
        imm(Opcode::LoadLaunchId, 1, 0),
        imm(Opcode::MovImm, 0, 100), // loop counter
        imm(Opcode::MovImm, 2, 0x9E3779B97F4A7C15ull),
        imm(Opcode::MovImm, 4, 1),
    };
    const std::uint32_t loop_start = static_cast<std::uint32_t>(code.size());
    for (int rep = 0; rep < 4; ++rep) {
        code.push_back(op(Opcode::Add, 3, 1, 2));
        code.push_back(op(Opcode::Xor, 1, 1, 3));
        code.push_back(op(Opcode::Mul, 3, 3, 2));
        code.push_back(op(Opcode::Shr, 5, 3, 4));
        code.push_back(op(Opcode::Or, 1, 1, 5));
        code.push_back(op(Opcode::U2F, 6, 5));
        code.push_back(op(Opcode::FMul, 7, 6, 6));
        code.push_back(op(Opcode::F2U, 8, 7));
    }
    code.push_back(op(Opcode::Sub, 0, 0, 4));
    Instr exit_branch = op(Opcode::BraZ, -1, 0);
    const std::uint32_t loop_exit =
        static_cast<std::uint32_t>(code.size()) + 2;
    exit_branch.target = loop_exit;
    exit_branch.reconv = loop_exit;
    code.push_back(exit_branch);
    Instr back = op(Opcode::Jmp);
    back.target = loop_start;
    code.push_back(back);
    code.push_back(op(Opcode::Exit));

    vptx::Program program;
    program.code = std::move(code);
    vptx::ShaderInfo raygen;
    raygen.name = "dispatch_bench";
    raygen.stage = vptx::ShaderStage::RayGen;
    raygen.entryPc = 0;
    raygen.numRegs = 12;
    program.shaders.push_back(raygen);
    program.raygenShader = 0;

    GlobalMemory gmem;
    vptx::LaunchContext ctx;
    ctx.program = &program;
    ctx.gmem = &gmem;
    ctx.launchSize[0] = 64;
    ctx.launchSize[1] = 4; // 256 threads = 8 warps
    ctx.rtStackBase =
        gmem.allocate(256 * vptx::kRtStackBytesPerThread, 64);
    ctx.scratchBase =
        gmem.allocate(256 * vptx::kRtScratchBytesPerThread, 64);

    vptx::ExecOptions opts;
    opts.structuralDispatch = state.range(0) == 0;
    std::int64_t instrs = 0;
    for (auto _ : state) {
        vptx::FunctionalRunner runner(ctx, opts);
        runner.run();
        benchmark::DoNotOptimize(runner.decodeCount());
        instrs += static_cast<std::int64_t>(
            runner.stats().get("instructions"));
    }
    state.SetItemsProcessed(instrs);
    state.SetLabel(opts.structuralDispatch
                       ? "ALU loop kernel, structural-ISA interpreter"
                       : "ALU loop kernel, pre-decoded micro-ops");
}
BENCHMARK(BM_VptxDispatch)->Arg(0)->Arg(1);

/**
 * Six-wide quantized-AABB node test: scalar reference (Arg 0) vs the
 * SSE2 kernel (Arg 1) over a fixed corpus of random nodes and rays
 * (including axis-parallel directions that take the containment path).
 * items_per_second counts node tests, i.e. six child boxes each.
 */
void
BM_NodeTestSimd(benchmark::State &state)
{
    const bool simd = state.range(0) != 0;
    Pcg32 rng(7);
    std::vector<InternalNode> nodes(64);
    for (InternalNode &node : nodes) {
        node.originX = rng.nextRange(-40.f, 40.f);
        node.originY = rng.nextRange(-40.f, 40.f);
        node.originZ = rng.nextRange(-40.f, 40.f);
        node.expX = node.expY = node.expZ = -3;
        node.childCount = 6;
        for (unsigned i = 0; i < 6; ++i)
            for (int axis = 0; axis < 3; ++axis) {
                std::uint8_t a =
                    static_cast<std::uint8_t>(rng.nextBelow(200));
                node.qlo[i][axis] = a;
                node.qhi[i][axis] = static_cast<std::uint8_t>(
                    a + 1 + rng.nextBelow(55));
            }
    }
    struct BenchRay
    {
        Ray ray;
        Vec3 inv;
    };
    std::vector<BenchRay> rays(256);
    for (BenchRay &br : rays) {
        br.ray.origin = {rng.nextRange(-60.f, 60.f),
                         rng.nextRange(-60.f, 60.f),
                         rng.nextRange(-60.f, 60.f)};
        br.ray.direction = {
            rng.nextBelow(8) == 0 ? 0.f : rng.nextRange(-1.f, 1.f),
            rng.nextBelow(8) == 0 ? 0.f : rng.nextRange(-1.f, 1.f),
            rng.nextBelow(8) == 0 ? 0.f : rng.nextRange(-1.f, 1.f)};
        br.ray.tmin = 0.f;
        br.ray.tmax = 1e30f;
        br.inv = safeInverse(br.ray.direction);
    }

    std::int64_t tests = 0;
    for (auto _ : state) {
        unsigned acc = 0;
        for (const BenchRay &br : rays)
            for (const InternalNode &node : nodes) {
                float t[6];
                acc += simd ? nodeTest6(node, br.ray, br.inv, 6, t)
                            : nodeTest6Scalar(node, br.ray, br.inv, 6, t);
            }
        benchmark::DoNotOptimize(acc);
        tests += static_cast<std::int64_t>(rays.size() * nodes.size());
    }
    state.SetItemsProcessed(tests);
    state.SetLabel(simd ? "SSE2 six-wide kernel" : "scalar rayAabb loop");
}
BENCHMARK(BM_NodeTestSimd)->Arg(0)->Arg(1);

/** Parallel reference renderer (tile fan-out) at 1/2/4/8 threads. */
void
BM_ReferenceRenderThreads(benchmark::State &state)
{
    wl::WorkloadParams params;
    params.width = 64;
    params.height = 64;
    wl::Workload workload(wl::WorkloadId::EXT, params);
    std::int64_t pixels = 0;
    for (auto _ : state) {
        Image img = workload.renderReferenceImage(
            nullptr, static_cast<unsigned>(state.range(0)));
        benchmark::DoNotOptimize(img.data().data());
        pixels += static_cast<std::int64_t>(params.width) * params.height;
    }
    state.SetItemsProcessed(pixels);
}
BENCHMARK(BM_ReferenceRenderThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Collects every finished run and dumps BENCH_micro.json on Finalize,
 * while delegating to the stock console reporter so the usual table
 * still prints. (Wrapping, rather than registering as a benchmark file
 * reporter, sidesteps the library's --benchmark_out requirement.)
 * Numbers go through formatJsonNumber for deterministic
 * shortest-round-trip formatting.
 */
class JsonPointsReporter : public benchmark::BenchmarkReporter
{
  public:
    explicit JsonPointsReporter(std::string path) : path_(std::move(path)) {}

    bool ReportContext(const Context &context) override
    {
        return console_.ReportContext(context);
    }

    void ReportRuns(const std::vector<Run> &runs) override
    {
        console_.ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            runs_.push_back(run);
        }
    }

    void Finalize() override
    {
        console_.Finalize();
        std::ofstream os(path_);
        if (!os) {
            std::fprintf(stderr, "bench_micro: cannot write %s\n",
                         path_.c_str());
            return;
        }
        os << "[\n";
        for (std::size_t ii = 0; ii < runs_.size(); ++ii) {
            const Run &run = runs_[ii];
            os << "  {\"name\": \"" << run.benchmark_name() << "\","
               << " \"iterations\": " << run.iterations << ","
               << " \"real_time\": "
               << vksim::formatJsonNumber(run.GetAdjustedRealTime()) << ","
               << " \"cpu_time\": "
               << vksim::formatJsonNumber(run.GetAdjustedCPUTime()) << ","
               << " \"time_unit\": \""
               << benchmark::GetTimeUnitString(run.time_unit) << "\"";
            if (run.counters.find("items_per_second")
                != run.counters.end()) {
                os << ", \"items_per_second\": "
                   << vksim::formatJsonNumber(
                          run.counters.at("items_per_second"));
            }
            for (const auto &kv : run.counters) {
                if (kv.first == "items_per_second")
                    continue;
                os << ", \"" << kv.first << "\": "
                   << vksim::formatJsonNumber(kv.second);
            }
            if (!run.report_label.empty())
                os << ", \"label\": \"" << run.report_label << "\"";
            os << "}" << (ii + 1 < runs_.size() ? "," : "") << "\n";
        }
        os << "]\n";
        std::printf("bench_micro: wrote %zu points to %s\n", runs_.size(),
                    path_.c_str());
    }

  private:
    std::string path_;
    benchmark::ConsoleReporter console_;
    std::vector<Run> runs_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    const char *out = std::getenv("VKSIM_BENCH_OUT");
    JsonPointsReporter reporter(out ? out : "BENCH_micro.json");
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
