/**
 * @file
 * Figure 17 of the paper: the two case studies.
 *  - FCC on RTV6 (mobile configuration): SIMT efficiency improves but
 *    the coalescing-buffer memory overhead (+11 % RT-unit loads) makes
 *    it a net ~6 % slowdown.
 *  - ITS: <= 1-2 % speedup on the regular workloads (warps rarely split
 *    around traceRayEXT) but ~6 % on the divergence-injected EXT
 *    microbenchmark (both branch arms trace rays, Fig. 10 right).
 */

#include "bench/common.h"
#include "service/service.h"

namespace {

/**
 * Reduced SM count so bench-scale launches keep the SMs occupied like
 * the paper's full-resolution runs (ITS gains vanish only when baseline
 * thread-level parallelism already hides latency).
 */
vksim::GpuConfig
contendedConfig()
{
    vksim::GpuConfig cfg = vksim::baselineGpuConfig();
    cfg.numSms = 4;
    cfg.fabric.numPartitions = 2;
    cfg.fabric.l2.sizeBytes = 3 * 1024 * 1024 / 2;
    return cfg;
}

} // namespace

int
main()
{
    using namespace vksim;
    bench::header("Figure 17", "FCC and ITS case studies",
                  "ITS runs use a 4-SM contended configuration so SMs "
                  "are occupied as in the paper's full-size runs");

    // --- FCC on RTV6, mobile configuration (paper Sec. VI-E) ---------
    {
        GpuConfig mobile = mobileGpuConfig();
        wl::WorkloadParams params = bench::benchParams(wl::WorkloadId::RTV6);
        wl::Workload base(wl::WorkloadId::RTV6, params);
        RunResult rb = service::defaultService().submit(base, mobile).take().run;
        params.fcc = true;
        wl::Workload fcc(wl::WorkloadId::RTV6, params);
        RunResult rf = service::defaultService().submit(fcc, mobile).take().run;

        double speedup = static_cast<double>(rb.cycles) / rf.cycles;
        std::uint64_t base_rt_loads = rb.rt.get("mem_requests");
        std::uint64_t fcc_rt_loads = rf.rt.get("mem_requests")
                                     + rf.rt.get("fcc_insert_loads")
                                     + rf.rt.get("fcc_insert_stores");
        std::printf("FCC on RTV6 (mobile):\n");
        std::printf("  cycles: baseline %llu, FCC %llu -> speedup %.3f "
                    "(paper: ~0.94, a 6%% slowdown)\n",
                    static_cast<unsigned long long>(rb.cycles),
                    static_cast<unsigned long long>(rf.cycles), speedup);
        std::printf("  SIMT efficiency: %.1f%% -> %.1f%% (paper: +9%%)\n",
                    100.0 * rb.simtEfficiency(),
                    100.0 * rf.simtEfficiency());
        std::printf("  RT-unit memory requests: %llu -> %llu (+%.1f%%, "
                    "paper: +11%%)\n",
                    static_cast<unsigned long long>(base_rt_loads),
                    static_cast<unsigned long long>(fcc_rt_loads),
                    100.0 * (static_cast<double>(fcc_rt_loads)
                             / base_rt_loads - 1.0));
    }

    // --- ITS on every workload (paper Sec. VI-F) ----------------------
    std::printf("\nITS speedups (stack-based reconvergence = 1.0):\n");
    std::printf("%-10s %14s %12s %10s\n", "Scene", "stack", "ITS",
                "speedup");
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::WorkloadParams params = bench::benchParams(id);
        params.width = 48;
        params.height = 48;
        wl::Workload w1(id, params);
        RunResult rs = service::defaultService().submit(w1, contendedConfig()).take().run;
        GpuConfig its = contendedConfig();
        its.its = true;
        wl::Workload w2(id, params);
        RunResult ri = service::defaultService().submit(w2, its).take().run;
        std::printf("%-10s %14llu %12llu %10.3f\n", wl::workloadName(id),
                    static_cast<unsigned long long>(rs.cycles),
                    static_cast<unsigned long long>(ri.cycles),
                    static_cast<double>(rs.cycles) / ri.cycles);
    }

    // Divergence-injected EXT microbenchmark.
    {
        wl::WorkloadParams params = bench::benchParams(wl::WorkloadId::EXT);
        params.width = 48;
        params.height = 48;
        params.divergentRaygen = true;
        wl::Workload w1(wl::WorkloadId::EXT, params);
        RunResult rs = service::defaultService().submit(w1, contendedConfig()).take().run;
        GpuConfig its = contendedConfig();
        its.its = true;
        wl::Workload w2(wl::WorkloadId::EXT, params);
        RunResult ri = service::defaultService().submit(w2, its).take().run;
        std::printf("%-10s %14llu %12llu %10.3f  (paper: ~1.06)\n",
                    "EXT-div",
                    static_cast<unsigned long long>(rs.cycles),
                    static_cast<unsigned long long>(ri.cycles),
                    static_cast<double>(rs.cycles) / ri.cycles);
    }
    return 0;
}
