/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the paper's
 * tables and figures. Each binary prints the same rows/series the paper
 * reports, at reduced launch resolutions so the whole suite runs in
 * minutes (the paper's full-resolution runs take days; see DESIGN.md).
 */

#ifndef VKSIM_BENCH_COMMON_H
#define VKSIM_BENCH_COMMON_H

#include <cstdio>

#include "core/vulkansim.h"

namespace vksim::bench {

/** Standard reduced-scale parameters per workload. */
inline wl::WorkloadParams
benchParams(wl::WorkloadId id)
{
    wl::WorkloadParams p;
    switch (id) {
      case wl::WorkloadId::TRI:
      case wl::WorkloadId::REF:
        p.width = 48;
        p.height = 48;
        break;
      case wl::WorkloadId::EXT:
        p.width = 40;
        p.height = 40;
        p.extScale = 0.2f;
        break;
      case wl::WorkloadId::RTV5:
        p.width = 32;
        p.height = 32;
        p.rtv5Detail = 4;
        break;
      case wl::WorkloadId::RTV6:
        p.width = 32;
        p.height = 32;
        p.rtv6Prims = 2000;
        break;
    }
    return p;
}

/** Print the standard experiment banner. */
inline void
header(const char *experiment, const char *title, const char *notes = "")
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", experiment, title);
    if (notes[0])
        std::printf("%s\n", notes);
    std::printf("==============================================================\n");
}

} // namespace vksim::bench

#endif // VKSIM_BENCH_COMMON_H
