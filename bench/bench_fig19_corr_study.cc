/**
 * @file
 * Figure 19 of the paper: the correlation study. Starting from a
 * configuration matched to the RTX 2080 SUPER's public parameters, the
 * paper tunes cache/DRAM latencies and shrinks the RT unit's concurrent
 * warps from 4 to 2 to 1, moving the trendline slope from ~1.5 towards
 * 0.88 with 90 % correlation — suggesting NVIDIA's RT cores hold one
 * warp each. This harness repeats the sweep against the hardware proxy.
 */

#include "bench/common.h"
#include "hwproxy/hwproxy.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Figure 19", "Correlation study vs the RTX-like proxy",
                  "paper: slope 1.5 -> 1.5 -> 0.88 as the RT unit drops "
                  "to one concurrent warp");

    // Profile once per workload. The correlation target here is the
    // RT-serialized proxy variant (one warp per RT core), matching the
    // hardware behaviour the paper's study converges on.
    std::vector<double> hw;
    std::vector<wl::WorkloadId> ids(std::begin(wl::kAllWorkloads),
                                    std::end(wl::kAllWorkloads));
    for (wl::WorkloadId id : ids) {
        wl::Workload workload(id, bench::benchParams(id));
        hw.push_back(estimateHardwareCycles(profileWorkload(workload),
                                            serializedRtProxy()));
    }

    const char *labels[] = {
        "step 0: matched params, 4 warps/RT unit",
        "step 1: +cache/DRAM latency, 2 warps/RT unit",
        "step 2: 1 warp/RT unit"};
    for (int step = 0; step < 3; ++step) {
        std::vector<double> sim;
        for (wl::WorkloadId id : ids) {
            wl::Workload workload(id, bench::benchParams(id));
            RunResult run =
                service::defaultService().submit(workload, rtxMatchedConfig(step)).take().run;
            sim.push_back(static_cast<double>(run.cycles));
        }
        Correlation corr = correlate(hw, sim);
        // Paper Fig. 19 plots hardware cycles against simulator cycles,
        // so its slope is hardware/simulator.
        Correlation inverse = correlate(sim, hw);
        std::printf("%-48s corr %.1f%%  hw/sim slope %.2f\n",
                    labels[step], 100.0 * corr.coefficient,
                    inverse.slope);
        for (std::size_t i = 0; i < ids.size(); ++i)
            std::printf("    %-6s proxy %10.0f  sim %10.0f\n",
                        wl::workloadName(ids[i]), hw[i], sim[i]);
    }
    std::printf("\nRT-unit ray-buffer overhead per extra concurrent warp "
                "(paper Sec. VI-G): ~2.4 KB\n"
                "  = 32 rays x (4 B id + 32 B properties + status + 40 B "
                "five-entry short stack)\n");
    return 0;
}
