/**
 * @file
 * Section VI-B of the paper: SIMT efficiency in the GPU and in the RT
 * units. TRI/REF are near-fully efficient; EXT/RTV diverge heavily
 * (secondary rays); RT-unit SIMT efficiency averages 35 % with RTV5 as
 * low as 7 %, driven by early-terminating rays plus long tails.
 */

#include "bench/common.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Section VI-B", "SIMT efficiency (GPU and RT unit)",
                  "paper: TRI/REF near full; RT-unit average 35 %, RTV5 "
                  "as low as 7 %");

    std::printf("%-8s %14s %16s %18s\n", "Scene", "GPU SIMT %",
                "RT-unit SIMT %", "avg rays/RT warp");
    double rt_sum = 0;
    unsigned n = 0;
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::Workload workload(id, bench::benchParams(id));
        RunResult run = service::defaultService().submit(workload, baselineGpuConfig()).take().run;
        double rt_eff = 100.0 * run.rtSimtEfficiency();
        double rays_per_warp =
            run.rt.get("warps_submitted")
                ? static_cast<double>(run.rt.get("active_ray_cycles"))
                      / run.rt.get("busy_cycles")
                : 0.0;
        std::printf("%-8s %13.1f%% %15.1f%% %18.1f\n", workload.name(),
                    100.0 * run.simtEfficiency(), rt_eff, rays_per_warp);
        rt_sum += rt_eff;
        ++n;
    }
    std::printf("%-8s %30.1f%%\n", "average", rt_sum / n);
    return 0;
}
