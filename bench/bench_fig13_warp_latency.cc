/**
 * @file
 * Figure 13 of the paper: the distribution of warp latency in the RT
 * units for EXT — most warps finish quickly (log-normal-like body) but a
 * few trailing warps take ~4x the 95th percentile, demonstrating the
 * long-tail effect that limits ray tracing performance (Sec. VI-B).
 */

#include "bench/common.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Figure 13", "RT-unit warp latency distribution (EXT)",
                  "paper: 95 % of warps < 50k cycles; tail warps ~4x "
                  "longer");

    wl::WorkloadParams params = bench::benchParams(wl::WorkloadId::EXT);
    params.width = 64;
    params.height = 64;
    params.extScale = 0.3f;
    wl::Workload workload(wl::WorkloadId::EXT, params);
    GpuConfig config = baselineGpuConfig();
    config.numSms = 8;
    config.fabric.numPartitions = 2;
    RunResult run = service::defaultService().submit(workload, config).take().run;

    const Histogram &h = run.rtWarpLatency;
    std::printf("RT warps: %llu, mean latency %.0f cycles, max %.0f\n",
                static_cast<unsigned long long>(h.summary().count()),
                h.summary().mean(), h.summary().max());
    double p50 = h.percentile(0.50);
    double p95 = h.percentile(0.95);
    std::printf("p50 = %.0f  p95 = %.0f  max/p95 = %.1fx (paper: ~4x)\n",
                p50, p95, h.summary().max() / std::max(1.0, p95));

    // Print the histogram as rows (bucket, count, bar).
    std::printf("\n%-18s %8s\n", "latency (cycles)", "warps");
    const auto &buckets = h.buckets();
    std::uint64_t peak = 1;
    for (std::uint64_t b : buckets)
        peak = std::max(peak, b);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        std::string bar(
            static_cast<std::size_t>(40.0 * buckets[i] / peak), '#');
        std::printf("%8.0f-%-8.0f %8llu %s\n", i * h.bucketWidth(),
                    (i + 1) * h.bucketWidth(),
                    static_cast<unsigned long long>(buckets[i]),
                    bar.c_str());
    }
    if (h.overflow())
        std::printf("%17s %8llu (tail overflow bucket)\n", ">max",
                    static_cast<unsigned long long>(h.overflow()));
    return 0;
}
