/**
 * @file
 * Table I of the paper: feature comparison of graphics / GPGPU
 * simulators. Static content, reproduced for completeness; the
 * Vulkan-Sim row describes what this repository implements.
 */

#include "bench/common.h"

int
main()
{
    vksim::bench::header("Table I", "Comparison of existing simulators");
    std::printf("%-18s %-11s %-12s %-9s %-14s %-14s %s\n", "Simulator",
                "RayTracing", "TimingModel", "GPUModel", "VulkanSupport",
                "MultiThreaded", "ExecutionModel");
    const char *rows[][7] = {
        {"PBRT", "Yes", "No", "No", "No", "No", "N/A"},
        {"Emerald", "No", "Yes", "Yes", "No", "No", "Execution Driven"},
        {"TEAPOT", "No", "Yes", "Yes", "No", "No", "Execution Driven"},
        {"SimTRaX", "Yes", "Yes", "No", "No", "Yes", "Execution Driven"},
        {"Ray Predictor", "Yes", "Yes", "Yes", "No", "No",
         "Execution Driven"},
        {"GPGPU-Sim 3.x", "No", "Yes", "Yes", "No", "No",
         "Execution Driven"},
        {"Accel-Sim", "No", "Yes", "Yes", "No", "No", "Trace Driven"},
        {"GPUTejas", "No", "Yes", "Yes", "No", "Yes", "Trace Driven"},
        {"MGPUSim", "No", "Yes", "Yes", "No", "Yes", "Execution Driven"},
        {"Vulkan-Sim (this)", "Yes", "Yes", "Yes", "Yes", "No",
         "Execution Driven"},
    };
    for (auto &row : rows)
        std::printf("%-18s %-11s %-12s %-9s %-14s %-14s %s\n", row[0],
                    row[1], row[2], row[3], row[4], row[5], row[6]);
    return 0;
}
