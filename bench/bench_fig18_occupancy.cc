/**
 * @file
 * Figure 18 of the paper: combined RT-unit ray occupancy over time for
 * stack-based reconvergence vs ITS on the divergence-injected EXT
 * workload. The paper observes that ITS does not significantly raise
 * occupancy (the RT units are already near their warp limit) but it
 * reorders scheduling, improving cache hits while lengthening the tail.
 */

#include "bench/common.h"
#include "service/service.h"

namespace {

vksim::RunResult
runMode(bool its)
{
    using namespace vksim;
    wl::WorkloadParams params = bench::benchParams(wl::WorkloadId::EXT);
    params.width = 48;
    params.height = 48;
    params.divergentRaygen = true;
    wl::Workload workload(wl::WorkloadId::EXT, params);
    GpuConfig config = baselineGpuConfig();
    config.numSms = 4;
    config.fabric.numPartitions = 2;
    config.its = its;
    config.occupancySamplePeriod = 500;
    return service::defaultService().submit(workload, config).take().run;
}

} // namespace

int
main()
{
    using namespace vksim;
    bench::header("Figure 18",
                  "RT-unit ray occupancy over time: stack vs ITS",
                  "EXT with injected divergence; samples every 500 "
                  "cycles");

    RunResult stack = runMode(false);
    RunResult its = runMode(true);

    auto mean_occ = [](const RunResult &r) {
        double sum = 0;
        for (auto [cycle, rays] : r.occupancyTrace)
            sum += rays;
        return r.occupancyTrace.empty() ? 0.0
                                        : sum / r.occupancyTrace.size();
    };
    std::printf("cycles: stack %llu, ITS %llu\n",
                static_cast<unsigned long long>(stack.cycles),
                static_cast<unsigned long long>(its.cycles));
    std::printf("mean combined RT occupancy: stack %.1f rays, ITS %.1f "
                "rays\n",
                mean_occ(stack), mean_occ(its));
    std::printf("L1 hits: stack %llu, ITS %llu (paper: ITS improves "
                "cache hits)\n",
                static_cast<unsigned long long>(
                    stack.l1.get("hits.shader")
                    + stack.l1.get("hits.rtunit")),
                static_cast<unsigned long long>(
                    its.l1.get("hits.shader") + its.l1.get("hits.rtunit")));

    std::printf("\n%12s %14s %14s\n", "cycle", "stack rays", "its rays");
    std::size_t n = std::max(stack.occupancyTrace.size(),
                             its.occupancyTrace.size());
    // Print up to 40 evenly spaced samples of each series.
    std::size_t step = std::max<std::size_t>(1, n / 40);
    for (std::size_t i = 0; i < n; i += step) {
        long stack_rays =
            i < stack.occupancyTrace.size()
                ? static_cast<long>(stack.occupancyTrace[i].second)
                : -1;
        long its_rays = i < its.occupancyTrace.size()
                            ? static_cast<long>(its.occupancyTrace[i].second)
                            : -1;
        std::printf("%12zu %14ld %14ld\n", i * 500, stack_rays, its_rays);
    }
    return 0;
}
