/**
 * @file
 * Table II of the paper: the custom PTX instructions added for Vulkan
 * ray tracing. Prints the table and demonstrates them live by
 * disassembling the traceRayEXT expansion (Algorithm 1) of a real
 * workload pipeline and counting each custom opcode.
 */

#include <map>
#include <string>

#include "bench/common.h"
#include "workloads/workload.h"

int
main()
{
    using namespace vksim;
    bench::header("Table II", "Custom VPTX (PTX-analogue) instructions");

    std::printf("%-22s %s\n", "Instruction", "Description");
    std::printf("%-22s %s\n", "traverseAS",
                "Traverse the acceleration structure");
    std::printf("%-22s %s\n", "endTraceRay",
                "Pop traversal results stack and clear intersection table");
    std::printf("%-22s %s\n", "rt_alloc_mem",
                "Allocate memory and load address for variables shared "
                "among shaders");
    std::printf("%-22s %s\n", "load_ray_launch_id",
                "Load a unique ray ID for each thread");
    std::printf("%-22s %s\n", "rt_push_frame",
                "Begin a traceRayEXT frame (this repo's helper)");
    std::printf("%-22s %s\n", "reportIntersection",
                "Commit a procedural hit from an intersection shader");
    std::printf("%-22s %s\n", "getNextCoalescedCall",
                "FCC: read the next coalescing-buffer row (Sec. IV-A)");

    // Live demonstration: translate RTV6 and count custom instructions.
    wl::Workload workload(wl::WorkloadId::RTV6,
                          bench::benchParams(wl::WorkloadId::RTV6));
    const vptx::Program &prog = workload.pipeline().program();
    std::map<std::string, unsigned> counts;
    for (const vptx::Instr &instr : prog.code) {
        switch (instr.op) {
          case vptx::Opcode::TraverseAS: counts["traverseAS"]++; break;
          case vptx::Opcode::EndTraceRay: counts["endTraceRay"]++; break;
          case vptx::Opcode::RtAllocMem: counts["rt_alloc_mem"]++; break;
          case vptx::Opcode::LoadLaunchId:
            counts["load_ray_launch_id"]++;
            break;
          case vptx::Opcode::RtPushFrame: counts["rt_push_frame"]++; break;
          case vptx::Opcode::ReportIntersection:
            counts["reportIntersection"]++;
            break;
          case vptx::Opcode::GetNextCoalescedCall:
            counts["getNextCoalescedCall"]++;
            break;
          default:
            break;
        }
    }
    std::printf("\nRTV6 pipeline (%zu VPTX instructions) uses:\n",
                prog.code.size());
    for (const auto &[name, count] : counts)
        std::printf("  %-22s x%u\n", name.c_str(), count);

    std::printf("\ntraceRayEXT expansion (first 40 instructions after "
                "rt_push_frame):\n");
    std::size_t start = 0;
    for (std::size_t pc = 0; pc < prog.code.size(); ++pc)
        if (prog.code[pc].op == vptx::Opcode::RtPushFrame) {
            start = pc;
            break;
        }
    for (std::size_t pc = start;
         pc < std::min(start + 40, prog.code.size()); ++pc)
        std::printf("  %4zu: %s\n", pc,
                    vptx::disassemble(prog.code[pc]).c_str());
    return 0;
}
