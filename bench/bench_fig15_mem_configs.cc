/**
 * @file
 * Figure 15 of the paper: execution time under four memory
 * configurations — baseline, a dedicated RT cache, zero-latency BVH
 * accesses (Perfect BVH) and zero-latency DRAM (Perfect Mem). The
 * paper's shape: the RT cache helps; Perfect BVH helps most where RT
 * loads dominate (EXT); Perfect Mem helps everywhere (memory bound).
 */

#include "bench/common.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Figure 15", "Execution time of memory configurations",
                  "speedups are relative to the baseline configuration");

    const MemoryVariant variants[] = {
        MemoryVariant::Baseline, MemoryVariant::RtCache,
        MemoryVariant::PerfectBvh, MemoryVariant::PerfectMem};
    const char *names[] = {"baseline", "rtcache", "perfect-bvh",
                           "perfect-mem"};

    std::printf("%-8s %14s %14s %14s %14s\n", "Scene", names[0], names[1],
                names[2], names[3]);
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        Cycle cycles[4] = {};
        for (int v = 0; v < 4; ++v) {
            wl::Workload workload(id, bench::benchParams(id));
            GpuConfig config =
                applyMemoryVariant(baselineGpuConfig(), variants[v]);
            cycles[v] = service::defaultService().submit(workload, config).take().run.cycles;
        }
        std::printf("%-8s %14llu", wl::workloadName(id),
                    static_cast<unsigned long long>(cycles[0]));
        for (int v = 1; v < 4; ++v)
            std::printf(" %8llu(%.2fx)",
                        static_cast<unsigned long long>(cycles[v]),
                        static_cast<double>(cycles[0]) / cycles[v]);
        std::printf("\n");
    }
    return 0;
}
