/**
 * @file
 * Table IV of the paper: the evaluated workloads — primitive count, BVH
 * tree depth, and average BVH nodes visited per ray — at paper scale
 * (full-size scenes; the nodes/ray statistic uses a reduced launch since
 * it is resolution independent to first order).
 */

#include "bench/common.h"

int
main()
{
    using namespace vksim;
    bench::header("Table IV", "Summary of workloads (paper scale scenes)",
                  "paper values: depth 3/4/13/12/8, nodes-per-ray "
                  "1.5/4.3/73/7.3/19, prims 1/50/283265/448893/4080");

    std::printf("%-8s %14s %10s %16s\n", "Scene", "Primitives",
                "BVH depth", "avg nodes/ray");
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::WorkloadParams params = bench::benchParams(id);
        // Paper-scale geometry; reduced launch for the per-ray metric.
        params.extScale = 1.0f;
        params.rtv5Detail = 7;
        params.rtv6Prims = 3568;
        params.width = 24;
        params.height = 24;
        wl::Workload workload(id, params);
        double nodes_per_ray = workload.averageNodesPerRay();
        std::printf("%-8s %14zu %10u %16.1f\n", workload.name(),
                    workload.scene().totalPrimitives(),
                    workload.accel().stats.treeDepth(), nodes_per_ray);
    }
    return 0;
}
