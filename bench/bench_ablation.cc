/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, beyond the
 * paper's own case studies:
 *  - warp scheduler: greedy-then-oldest (baseline) vs loose round robin;
 *  - short-stack depth: spill traffic and cycles as the per-ray stack
 *    shrinks below the paper's 8 entries (Aila-style spilling);
 *  - RT-unit operation latencies: sensitivity of end-to-end cycles.
 */

#include "bench/common.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Ablations", "scheduler / short stack / op latency");

    // --- GTO vs LRR -----------------------------------------------------
    std::printf("[warp scheduler]\n%-8s %12s %12s %10s\n", "Scene", "GTO",
                "LRR", "GTO/LRR");
    for (wl::WorkloadId id :
         {wl::WorkloadId::REF, wl::WorkloadId::EXT, wl::WorkloadId::RTV6}) {
        wl::Workload w1(id, bench::benchParams(id));
        GpuConfig gto = baselineGpuConfig();
        RunResult rg = service::defaultService().submit(w1, gto).take().run;
        wl::Workload w2(id, bench::benchParams(id));
        GpuConfig lrr = baselineGpuConfig();
        lrr.sched = SchedPolicy::LRR;
        RunResult rl = service::defaultService().submit(w2, lrr).take().run;
        std::printf("%-8s %12llu %12llu %10.3f\n", wl::workloadName(id),
                    static_cast<unsigned long long>(rg.cycles),
                    static_cast<unsigned long long>(rl.cycles),
                    static_cast<double>(rg.cycles) / rl.cycles);
    }

    // --- short-stack depth ----------------------------------------------
    std::printf("\n[short-stack depth, EXT] (paper uses 8 entries)\n");
    std::printf("%8s %12s %14s\n", "entries", "cycles", "stack spills");
    for (unsigned entries : {2u, 4u, 8u, 16u}) {
        wl::Workload w(wl::WorkloadId::EXT,
                       bench::benchParams(wl::WorkloadId::EXT));
        GpuConfig cfg = baselineGpuConfig();
        cfg.rt.shortStackEntries = entries;
        RunResult run = service::defaultService().submit(w, cfg).take().run;
        std::printf("%8u %12llu %14llu\n", entries,
                    static_cast<unsigned long long>(run.cycles),
                    static_cast<unsigned long long>(
                        run.rt.get("stack_spills")));
    }

    // --- RT operation-unit latency ---------------------------------------
    std::printf("\n[RT op-unit latency scale, EXT]\n");
    std::printf("%8s %12s\n", "scale", "cycles");
    for (unsigned scale : {1u, 2u, 4u}) {
        wl::Workload w(wl::WorkloadId::EXT,
                       bench::benchParams(wl::WorkloadId::EXT));
        GpuConfig cfg = baselineGpuConfig();
        cfg.rt.boxLatency *= scale;
        cfg.rt.triLatency *= scale;
        cfg.rt.transformLatency *= scale;
        RunResult run = service::defaultService().submit(w, cfg).take().run;
        std::printf("%7ux %12llu\n", scale,
                    static_cast<unsigned long long>(run.cycles));
    }
    std::printf("\npaper Sec. V: \"the number of intersection units has "
                "less of an impact since memory is the main bottleneck\" — "
                "cycles should move sub-linearly with op latency.\n");
    return 0;
}
