/**
 * @file
 * Figure 2 of the paper compares a Sponza render from Vulkan-Sim against
 * an NVIDIA GPU: only 0.3 % of pixels differ. Our independent oracle is
 * the CPU reference renderer (DESIGN.md substitutions); this harness
 * renders every workload on the full simulator stack and reports the
 * differing-pixel fraction, writing the image pairs as PPM files.
 */

#include "bench/common.h"

int
main()
{
    using namespace vksim;
    bench::header("Figure 2", "Image fidelity vs the reference renderer",
                  "paper: 0.3 % of Sponza pixels differ vs NVIDIA");

    std::printf("%-8s %12s %16s %16s\n", "Scene", "pixels",
                "differing", "max delta");
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::Workload workload(id, bench::benchParams(id));
        workload.runFunctional();
        Image sim = workload.readFramebuffer();
        Image ref = workload.renderReferenceImage();
        ImageDiff diff = compareImages(sim, ref);
        std::printf("%-8s %12llu %15.4f%% %16.6f\n", workload.name(),
                    static_cast<unsigned long long>(diff.totalPixels),
                    100.0 * diff.differingFraction(),
                    diff.maxChannelDelta);
        std::string base = std::string("fig02_") + workload.name();
        sim.writePpm(base + "_sim.ppm");
        ref.writePpm(base + "_ref.ppm");
    }
    std::printf("wrote fig02_<scene>_{sim,ref}.ppm\n");
    return 0;
}
