/**
 * @file
 * Section VI (intro) of the paper: instruction-type breakdown across the
 * workloads — roughly 60 % ALU, 25 % memory, ~1 % trace-ray — and the RT
 * units active for 92 % of cycles on EXT.
 */

#include "bench/common.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Section VI", "Instruction mix and RT-unit activity",
                  "paper: ~60 % ALU, ~25 % memory, ~1 % trace ray; RT "
                  "units active 92 % of cycles on EXT");

    std::printf("%-8s %9s %9s %9s %9s %9s %14s\n", "Scene", "ALU %",
                "mem %", "ctrl %", "SFU %", "trace %", "RT busy %");
    double alu_sum = 0, mem_sum = 0, trace_sum = 0;
    unsigned n = 0;
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::Workload workload(id, bench::benchParams(id));
        RunResult run = service::defaultService().submit(workload, baselineGpuConfig()).take().run;
        double total =
            static_cast<double>(std::max<std::uint64_t>(
                1, run.core.get("issued")));
        double alu = 100.0 * run.core.get("issue_alu") / total;
        double mem = 100.0 * run.core.get("issue_ldst") / total;
        double ctrl = 100.0 * run.core.get("issue_ctrl") / total;
        double sfu = 100.0 * run.core.get("issue_sfu") / total;
        double trace = 100.0 * run.core.get("issue_rt") / total;
        std::printf("%-8s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.2f%% %13.1f%%\n",
                    workload.name(), alu, mem, ctrl, sfu, trace,
                    100.0 * run.rtActiveFraction());
        alu_sum += alu;
        mem_sum += mem;
        trace_sum += trace;
        ++n;
    }
    std::printf("%-8s %8.1f%% %8.1f%% %19s %9.2f%%\n", "average",
                alu_sum / n, mem_sum / n, "", trace_sum / n);
    return 0;
}
