/**
 * @file
 * Figure 1 of the paper profiles commercial RTX games and finds ray
 * tracing takes ~28 % of frame time on average. We cannot run commercial
 * games (see DESIGN.md substitutions); this harness reports the same
 * metric — the share of frame time attributable to ray tracing — for the
 * five workloads, measured two ways: the fraction of cycles with RT
 * units busy, and the fraction of issued instructions that are memory /
 * RT work triggered by trace rays.
 */

#include "bench/common.h"
#include "service/service.h"

int
main()
{
    using namespace vksim;
    bench::header("Figure 1", "Ray tracing share of frame time",
                  "paper (games on RTX 2080 Ti): RT ~28 % of frame time "
                  "on average");

    std::printf("%-8s %12s %18s %18s\n", "Scene", "cycles",
                "RT-unit busy %", "trace instr %");
    double sum_busy = 0;
    unsigned n = 0;
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        wl::Workload workload(id, bench::benchParams(id));
        RunResult run = service::defaultService().submit(workload, baselineGpuConfig()).take().run;
        double busy = 100.0 * run.rtActiveFraction();
        double trace_share =
            100.0 * run.core.get("issue_rt")
            / std::max<std::uint64_t>(1, run.core.get("issued"));
        std::printf("%-8s %12llu %17.1f%% %17.2f%%\n", workload.name(),
                    static_cast<unsigned long long>(run.cycles), busy,
                    trace_share);
        sum_busy += busy;
        ++n;
    }
    std::printf("%-8s %12s %17.1f%%\n", "average", "", sum_busy / n);
    return 0;
}
