/**
 * @file
 * Simulated GPU global memory.
 *
 * A sparse, paged 64-bit address space holding everything the simulated
 * device sees: serialized acceleration structures, vertex/index buffers,
 * descriptor sets, per-thread trace-ray stacks, and the framebuffer. The
 * functional model reads and writes values here while the timing model
 * sees only the addresses/sizes of the same accesses.
 */

#ifndef VKSIM_MEM_GMEM_H
#define VKSIM_MEM_GMEM_H

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/log.h"
#include "util/types.h"

namespace vksim {

/** Sparse paged simulated memory with a linear bump allocator. */
class GlobalMemory
{
  public:
    static constexpr Addr kPageBits = 16; // 64 KiB pages
    static constexpr Addr kPageSize = Addr(1) << kPageBits;

    GlobalMemory() = default;

    // Non-copyable: pages can be large and sharing would be a bug.
    GlobalMemory(const GlobalMemory &) = delete;
    GlobalMemory &operator=(const GlobalMemory &) = delete;

    /**
     * Allocate `size` bytes aligned to `align` and return the base address.
     * The label is retained for debugging dumps.
     */
    Addr
    allocate(Addr size, Addr align = 16, const std::string &label = "")
    {
        vksim_assert(align != 0 && (align & (align - 1)) == 0);
        Addr base = (brk_ + align - 1) & ~(align - 1);
        brk_ = base + size;
        if (!label.empty())
            regions_.push_back({base, size, label});
        return base;
    }

    /** Raw byte write. */
    void
    write(Addr addr, const void *src, Addr size)
    {
        const auto *p = static_cast<const std::uint8_t *>(src);
        while (size > 0) {
            Addr page = addr >> kPageBits;
            Addr off = addr & (kPageSize - 1);
            Addr chunk = std::min<Addr>(size, kPageSize - off);
            std::memcpy(pageFor(page) + off, p, chunk);
            addr += chunk;
            p += chunk;
            size -= chunk;
        }
    }

    /** Raw byte read; untouched memory reads as zero. */
    void
    read(Addr addr, void *dst, Addr size) const
    {
        auto *p = static_cast<std::uint8_t *>(dst);
        while (size > 0) {
            Addr page = addr >> kPageBits;
            Addr off = addr & (kPageSize - 1);
            Addr chunk = std::min<Addr>(size, kPageSize - off);
            auto it = pages_.find(page);
            if (it == pages_.end())
                std::memset(p, 0, chunk);
            else
                std::memcpy(p, it->second.data() + off, chunk);
            addr += chunk;
            p += chunk;
            size -= chunk;
        }
    }

    /** Typed store. */
    template <typename T>
    void
    store(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }

    /** Typed load. */
    template <typename T>
    T
    load(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Current top of the allocated region. */
    Addr brk() const { return brk_; }

    /** Total bytes in materialized pages (footprint diagnostic). */
    Addr
    residentBytes() const
    {
        return static_cast<Addr>(pages_.size()) * kPageSize;
    }

    /** Materialized pages (for trace dump / debugging). */
    const std::unordered_map<Addr, std::vector<std::uint8_t>> &
    pages() const
    {
        return pages_;
    }

    /** Restore the allocator cursor (trace replay). */
    void setBrk(Addr brk) { brk_ = brk; }

    /** Named allocation regions, in allocation order. */
    struct Region
    {
        Addr base;
        Addr size;
        std::string label;
    };

    const std::vector<Region> &regions() const { return regions_; }

  private:
    std::uint8_t *
    pageFor(Addr page)
    {
        auto &vec = pages_[page];
        if (vec.empty())
            vec.resize(kPageSize, 0);
        return vec.data();
    }

    // Address 0 is kept unmapped so it can serve as a null pointer.
    Addr brk_ = 0x1000;
    std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
    std::vector<Region> regions_;
};

} // namespace vksim

#endif // VKSIM_MEM_GMEM_H
