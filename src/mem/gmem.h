/**
 * @file
 * Simulated GPU global memory.
 *
 * A sparse, paged 64-bit address space holding everything the simulated
 * device sees: serialized acceleration structures, vertex/index buffers,
 * descriptor sets, per-thread trace-ray stacks, and the framebuffer. The
 * functional model reads and writes values here while the timing model
 * sees only the addresses/sizes of the same accesses.
 *
 * Concurrency contract (parallel simulation engine): read()/write() and
 * the typed load()/store() may be called from multiple SM worker threads
 * at once, provided concurrent writers touch disjoint byte ranges — which
 * the launch layout guarantees (per-thread stacks/scratch, per-pixel
 * framebuffer slots). The page table itself is sharded and each shard is
 * guarded by a shared_mutex so lazy page materialization is safe; page
 * payload vectors never move once created, so data pointers stay valid
 * without holding the lock. allocate()/setBrk()/regions() are setup-time
 * (single-threaded) operations.
 */

#ifndef VKSIM_MEM_GMEM_H
#define VKSIM_MEM_GMEM_H

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/log.h"
#include "util/types.h"

namespace vksim {

/** Sparse paged simulated memory with a linear bump allocator. */
class GlobalMemory
{
  public:
    static constexpr Addr kPageBits = 16; // 64 KiB pages
    static constexpr Addr kPageSize = Addr(1) << kPageBits;

    GlobalMemory() = default;

    // Non-copyable: pages can be large and sharing would be a bug.
    GlobalMemory(const GlobalMemory &) = delete;
    GlobalMemory &operator=(const GlobalMemory &) = delete;

    /**
     * Allocate `size` bytes aligned to `align` and return the base address.
     * The label is retained for debugging dumps.
     */
    Addr
    allocate(Addr size, Addr align = 16, const std::string &label = "")
    {
        vksim_assert(align != 0 && (align & (align - 1)) == 0);
        Addr base = (brk_ + align - 1) & ~(align - 1);
        brk_ = base + size;
        if (!label.empty())
            regions_.push_back({base, size, label});
        return base;
    }

    /** Raw byte write. */
    void
    write(Addr addr, const void *src, Addr size)
    {
        const auto *p = static_cast<const std::uint8_t *>(src);
        while (size > 0) {
            Addr page = addr >> kPageBits;
            Addr off = addr & (kPageSize - 1);
            Addr chunk = std::min<Addr>(size, kPageSize - off);
            std::memcpy(pageFor(page) + off, p, chunk);
            addr += chunk;
            p += chunk;
            size -= chunk;
        }
    }

    /** Raw byte read; untouched memory reads as zero. */
    void
    read(Addr addr, void *dst, Addr size) const
    {
        auto *p = static_cast<std::uint8_t *>(dst);
        while (size > 0) {
            Addr page = addr >> kPageBits;
            Addr off = addr & (kPageSize - 1);
            Addr chunk = std::min<Addr>(size, kPageSize - off);
            const std::uint8_t *data = findPage(page);
            if (data == nullptr)
                std::memset(p, 0, chunk);
            else
                std::memcpy(p, data + off, chunk);
            addr += chunk;
            p += chunk;
            size -= chunk;
        }
    }

    /** Typed store. */
    template <typename T>
    void
    store(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }

    /** Typed load. */
    template <typename T>
    T
    load(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Current top of the allocated region. */
    Addr brk() const { return brk_; }

    /** Total bytes in materialized pages (footprint diagnostic). */
    Addr
    residentBytes() const
    {
        Addr pages = 0;
        for (const Shard &shard : shards_) {
            std::shared_lock<std::shared_mutex> lock(shard.mutex);
            pages += static_cast<Addr>(shard.pages.size());
        }
        return pages * kPageSize;
    }

    /**
     * Materialized pages sorted by page number (trace dump / debugging).
     * Setup-time only: do not call concurrently with write().
     */
    std::vector<std::pair<Addr, const std::vector<std::uint8_t> *>>
    snapshotPages() const
    {
        std::vector<std::pair<Addr, const std::vector<std::uint8_t> *>> out;
        for (const Shard &shard : shards_)
            for (const auto &[page, data] : shard.pages)
                out.emplace_back(page, &data);
        std::sort(out.begin(), out.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        return out;
    }

    /** Restore the allocator cursor (trace replay). */
    void setBrk(Addr brk) { brk_ = brk; }

    /** Named allocation regions, in allocation order. */
    struct Region
    {
        Addr base;
        Addr size;
        std::string label;
    };

    const std::vector<Region> &regions() const { return regions_; }

    /**
     * Re-record a named region without allocating (artifact-image install:
     * the bytes were captured from another GlobalMemory whose allocator
     * already placed them, so only the label bookkeeping is replayed here).
     */
    void
    appendRegion(Addr base, Addr size, const std::string &label)
    {
        regions_.push_back({base, size, label});
    }

  private:
    /// Page-table shards keep concurrent lazy materialization from
    /// contending on a single lock (consecutive pages hash to
    /// different shards).
    static constexpr std::size_t kNumShards = 16;

    struct Shard
    {
        mutable std::shared_mutex mutex;
        std::unordered_map<Addr, std::vector<std::uint8_t>> pages;
    };

    Shard &
    shardFor(Addr page)
    {
        return shards_[static_cast<std::size_t>(page) % kNumShards];
    }

    const Shard &
    shardFor(Addr page) const
    {
        return shards_[static_cast<std::size_t>(page) % kNumShards];
    }

    std::uint8_t *
    pageFor(Addr page)
    {
        Shard &shard = shardFor(page);
        {
            std::shared_lock<std::shared_mutex> lock(shard.mutex);
            auto it = shard.pages.find(page);
            if (it != shard.pages.end())
                return it->second.data();
        }
        std::unique_lock<std::shared_mutex> lock(shard.mutex);
        auto &vec = shard.pages[page];
        if (vec.empty())
            vec.resize(kPageSize, 0);
        return vec.data();
    }

    const std::uint8_t *
    findPage(Addr page) const
    {
        const Shard &shard = shardFor(page);
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        auto it = shard.pages.find(page);
        return it == shard.pages.end() ? nullptr : it->second.data();
    }

    // Address 0 is kept unmapped so it can serve as a null pointer.
    Addr brk_ = 0x1000;
    std::array<Shard, kNumShards> shards_;
    std::vector<Region> regions_;
};

} // namespace vksim

#endif // VKSIM_MEM_GMEM_H
