/**
 * @file
 * Axis-aligned bounding box used by the BVH builder and the RT unit's
 * box-intersection evaluators.
 */

#ifndef VKSIM_GEOM_AABB_H
#define VKSIM_GEOM_AABB_H

#include <limits>

#include "geom/vec.h"

namespace vksim {

/** Axis-aligned bounding box. Default-constructed boxes are empty. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    bool
    empty() const
    {
        return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z;
    }

    void
    extend(const Vec3 &p)
    {
        lo = vmin(lo, p);
        hi = vmax(hi, p);
    }

    void
    extend(const Aabb &b)
    {
        lo = vmin(lo, b.lo);
        hi = vmax(hi, b.hi);
    }

    Vec3 center() const { return (lo + hi) * 0.5f; }
    Vec3 extent() const { return hi - lo; }

    /** Surface area (0 when empty); used by the SAH builder. */
    float
    surfaceArea() const
    {
        if (empty())
            return 0.f;
        Vec3 e = extent();
        return 2.f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y
               && p.z >= lo.z && p.z <= hi.z;
    }

    /** True if `b` fits completely inside this box (with tolerance). */
    bool
    encloses(const Aabb &b, float eps = 1e-4f) const
    {
        return b.lo.x >= lo.x - eps && b.lo.y >= lo.y - eps
               && b.lo.z >= lo.z - eps && b.hi.x <= hi.x + eps
               && b.hi.y <= hi.y + eps && b.hi.z <= hi.z + eps;
    }
};

} // namespace vksim

#endif // VKSIM_GEOM_AABB_H
