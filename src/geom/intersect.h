/**
 * @file
 * Ray-primitive intersection kernels.
 *
 * These are the functional counterparts of the RT unit's Box Intersection
 * Evaluators and Triangle Intersection Evaluators (paper Sec. II-B). The
 * same routines are used by the CPU reference traversal and by the RT
 * unit's operation units so that functional results agree by construction
 * while timing is modelled separately.
 */

#ifndef VKSIM_GEOM_INTERSECT_H
#define VKSIM_GEOM_INTERSECT_H

#include "geom/aabb.h"
#include "geom/ray.h"

namespace vksim {

/** Result of a ray/triangle test. */
struct TriangleHit
{
    bool hit = false;
    float t = 0.f;
    float u = 0.f;
    float v = 0.f;
};

/**
 * Slab test of a ray against an AABB.
 *
 * @param inv_dir Precomputed component-wise reciprocal of ray.direction.
 * @param[out] t_entry Entry distance when hit (clamped to ray.tmin).
 * @return true when the ray's [tmin, tmax] interval overlaps the box.
 */
bool rayAabb(const Ray &ray, const Vec3 &inv_dir, const Aabb &box,
             float *t_entry);

/**
 * Moeller-Trumbore ray/triangle intersection.
 * Hits outside (ray.tmin, ray.tmax) are rejected.
 */
TriangleHit rayTriangle(const Ray &ray, const Vec3 &v0, const Vec3 &v1,
                        const Vec3 &v2);

/**
 * Analytic ray/sphere intersection; used by the procedural-geometry
 * intersection shaders of the RTV workloads.
 * @return nearest t inside the ray interval, or negative when missed.
 */
float raySphere(const Ray &ray, const Vec3 &center, float radius);

/**
 * Ray vs axis-aligned box treated as solid procedural geometry (the RTV6
 * "procedural cube"); @return entry t, or negative when missed.
 */
float rayBoxProcedural(const Ray &ray, const Aabb &box);

} // namespace vksim

#endif // VKSIM_GEOM_INTERSECT_H
