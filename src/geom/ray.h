/**
 * @file
 * Ray and hit-record types shared by the CPU reference tracer, the RT unit
 * and the functional shader model.
 */

#ifndef VKSIM_GEOM_RAY_H
#define VKSIM_GEOM_RAY_H

#include <cstdint>

#include "geom/vec.h"

namespace vksim {

/** A ray with a parametric validity interval [tmin, tmax]. */
struct Ray
{
    Vec3 origin;
    float tmin = 0.f;
    Vec3 direction;
    float tmax = 1e30f;

    Vec3 at(float t) const { return origin + direction * t; }
};

/** Kind of geometry a hit was recorded against. */
enum class HitKind : std::uint8_t
{
    None = 0,      ///< ray missed the scene
    Triangle = 1,  ///< triangle leaf
    Procedural = 2 ///< custom geometry confirmed by an intersection shader
};

/** Committed closest-hit record. */
struct HitRecord
{
    float t = 1e30f;
    float u = 0.f; ///< triangle barycentric u
    float v = 0.f; ///< triangle barycentric v
    std::int32_t instanceIndex = -1;
    std::int32_t primitiveIndex = -1;
    std::int32_t instanceCustomIndex = 0;
    std::int32_t sbtOffset = 0; ///< hit-group index from the TLAS leaf
    HitKind kind = HitKind::None;

    bool valid() const { return kind != HitKind::None; }
};

} // namespace vksim

#endif // VKSIM_GEOM_RAY_H
