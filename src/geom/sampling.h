/**
 * @file
 * Sampling helpers used by the path-tracing workloads (cosine hemisphere,
 * orthonormal bases, sphere sampling).
 */

#ifndef VKSIM_GEOM_SAMPLING_H
#define VKSIM_GEOM_SAMPLING_H

#include <cmath>

#include "geom/vec.h"

namespace vksim {

/** Orthonormal basis around a unit normal (Duff et al. branchless). */
struct Onb
{
    Vec3 tangent;
    Vec3 bitangent;
    Vec3 normal;

    explicit Onb(const Vec3 &n) : normal(n)
    {
        float sign = std::copysign(1.0f, n.z);
        float a = -1.0f / (sign + n.z);
        float b = n.x * n.y * a;
        tangent = {1.0f + sign * n.x * n.x * a, sign * b, -sign * n.x};
        bitangent = {b, sign + n.y * n.y * a, -n.y};
    }

    Vec3
    toWorld(const Vec3 &v) const
    {
        return tangent * v.x + bitangent * v.y + normal * v.z;
    }
};

/** Cosine-weighted hemisphere direction from two uniform samples. */
inline Vec3
cosineSampleHemisphere(float u1, float u2)
{
    float r = std::sqrt(u1);
    float phi = 2.0f * 3.14159265358979323846f * u2;
    float x = r * std::cos(phi);
    float y = r * std::sin(phi);
    float z = std::sqrt(std::max(0.0f, 1.0f - u1));
    return {x, y, z};
}

/** Uniform direction on the unit sphere. */
inline Vec3
uniformSampleSphere(float u1, float u2)
{
    float z = 1.0f - 2.0f * u1;
    float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
    float phi = 2.0f * 3.14159265358979323846f * u2;
    return {r * std::cos(phi), r * std::sin(phi), z};
}

/** Schlick approximation of Fresnel reflectance. */
inline float
schlickFresnel(float cosine, float ior)
{
    float r0 = (1.0f - ior) / (1.0f + ior);
    r0 = r0 * r0;
    float m = 1.0f - cosine;
    return r0 + (1.0f - r0) * m * m * m * m * m;
}

/** Refract `d` about normal `n` with relative IOR eta; false on TIR. */
inline bool
refractDir(const Vec3 &d, const Vec3 &n, float eta, Vec3 *out)
{
    float cos_i = -dot(d, n);
    float sin2_t = eta * eta * (1.0f - cos_i * cos_i);
    if (sin2_t > 1.0f)
        return false;
    float cos_t = std::sqrt(1.0f - sin2_t);
    *out = eta * d + (eta * cos_i - cos_t) * n;
    return true;
}

} // namespace vksim

#endif // VKSIM_GEOM_SAMPLING_H
