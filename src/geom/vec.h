/**
 * @file
 * Small fixed-size vector types used by the scene, BVH, and shader code.
 */

#ifndef VKSIM_GEOM_VEC_H
#define VKSIM_GEOM_VEC_H

#include <algorithm>
#include <cmath>

namespace vksim {

/** Three-component float vector. */
struct Vec3
{
    float x = 0.f;
    float y = 0.f;
    float z = 0.f;

    constexpr Vec3() = default;
    constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}
    explicit constexpr Vec3(float s) : x(s), y(s), z(s) {}

    constexpr float
    operator[](int i) const
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    float &
    operator[](int i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    Vec3 &
    operator*=(float s)
    {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }
};

constexpr Vec3
operator+(const Vec3 &a, const Vec3 &b)
{
    return {a.x + b.x, a.y + b.y, a.z + b.z};
}

constexpr Vec3
operator-(const Vec3 &a, const Vec3 &b)
{
    return {a.x - b.x, a.y - b.y, a.z - b.z};
}

constexpr Vec3
operator*(const Vec3 &a, const Vec3 &b)
{
    return {a.x * b.x, a.y * b.y, a.z * b.z};
}

constexpr Vec3
operator*(const Vec3 &a, float s)
{
    return {a.x * s, a.y * s, a.z * s};
}

constexpr Vec3
operator*(float s, const Vec3 &a)
{
    return a * s;
}

constexpr Vec3
operator/(const Vec3 &a, float s)
{
    return {a.x / s, a.y / s, a.z / s};
}

constexpr float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline float
length(const Vec3 &a)
{
    return std::sqrt(dot(a, a));
}

inline Vec3
normalize(const Vec3 &a)
{
    float len = length(a);
    return len > 0.f ? a / len : a;
}

inline Vec3
vmin(const Vec3 &a, const Vec3 &b)
{
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

inline Vec3
vmax(const Vec3 &a, const Vec3 &b)
{
    return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

/** Component-wise reciprocal with +/-inf for zero components. */
inline Vec3
safeInverse(const Vec3 &d)
{
    return {1.0f / d.x, 1.0f / d.y, 1.0f / d.z};
}

/** Reflect direction `d` about unit normal `n`. */
inline Vec3
reflect(const Vec3 &d, const Vec3 &n)
{
    return d - 2.0f * dot(d, n) * n;
}

/** Largest component index (0=x, 1=y, 2=z). */
inline int
maxDimension(const Vec3 &v)
{
    if (v.x >= v.y && v.x >= v.z)
        return 0;
    return v.y >= v.z ? 1 : 2;
}

/** Linear interpolation. */
constexpr Vec3
lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a * (1.0f - t) + b * t;
}

} // namespace vksim

#endif // VKSIM_GEOM_VEC_H
