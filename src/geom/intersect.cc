#include "geom/intersect.h"

#include <algorithm>
#include <cmath>

namespace vksim {

bool
rayAabb(const Ray &ray, const Vec3 &inv_dir, const Aabb &box, float *t_entry)
{
    float t0 = ray.tmin;
    float t1 = ray.tmax;
    for (int axis = 0; axis < 3; ++axis) {
        if (ray.direction[axis] == 0.0f) {
            // Axis-parallel ray: the slab contributes no t interval, only
            // an in/out test (boundary inclusive). The general path would
            // evaluate 0 * ±inf = NaN when the origin sits exactly on a
            // slab plane, and with a -0.0 direction the unswapped NaN
            // flows through min() as a false miss.
            if (ray.origin[axis] < box.lo[axis]
                || ray.origin[axis] > box.hi[axis])
                return false;
            continue;
        }
        float near = (box.lo[axis] - ray.origin[axis]) * inv_dir[axis];
        float far = (box.hi[axis] - ray.origin[axis]) * inv_dir[axis];
        if (near > far)
            std::swap(near, far);
        t0 = std::max(t0, near);
        t1 = std::min(t1, far);
        if (t0 > t1)
            return false;
    }
    if (t_entry)
        *t_entry = t0;
    return true;
}

TriangleHit
rayTriangle(const Ray &ray, const Vec3 &v0, const Vec3 &v1, const Vec3 &v2)
{
    constexpr float kEpsilon = 1e-9f;
    TriangleHit result;

    Vec3 e1 = v1 - v0;
    Vec3 e2 = v2 - v0;
    Vec3 pvec = cross(ray.direction, e2);
    float det = dot(e1, pvec);
    // Inverted comparison so a NaN det (degenerate/non-finite vertices,
    // overflowed cross product) rejects instead of sailing past every
    // subsequent range check and committing a NaN hit record.
    if (!(std::abs(det) >= kEpsilon))
        return result;

    float inv_det = 1.0f / det;
    Vec3 tvec = ray.origin - v0;
    float u = dot(tvec, pvec) * inv_det;
    if (!(u >= 0.f) || u > 1.f)
        return result;

    Vec3 qvec = cross(tvec, e1);
    float v = dot(ray.direction, qvec) * inv_det;
    if (!(v >= 0.f) || u + v > 1.f)
        return result;

    float t = dot(e2, qvec) * inv_det;
    if (!(t > ray.tmin) || t >= ray.tmax)
        return result;

    result.hit = true;
    result.t = t;
    result.u = u;
    result.v = v;
    return result;
}

float
raySphere(const Ray &ray, const Vec3 &center, float radius)
{
    Vec3 oc = ray.origin - center;
    float a = dot(ray.direction, ray.direction);
    float half_b = dot(oc, ray.direction);
    float c = dot(oc, oc) - radius * radius;
    float disc = half_b * half_b - a * c;
    if (disc < 0.f)
        return -1.f;
    float sqrt_d = std::sqrt(disc);
    float t = (-half_b - sqrt_d) / a;
    if (t <= ray.tmin || t >= ray.tmax) {
        t = (-half_b + sqrt_d) / a;
        if (t <= ray.tmin || t >= ray.tmax)
            return -1.f;
    }
    return t;
}

float
rayBoxProcedural(const Ray &ray, const Aabb &box)
{
    Vec3 inv = safeInverse(ray.direction);
    float t0 = ray.tmin;
    float t1 = ray.tmax;
    for (int axis = 0; axis < 3; ++axis) {
        if (ray.direction[axis] == 0.0f) {
            // Same NaN hazard as rayAabb(): axis-parallel rays get a pure
            // containment test instead of a 0 * inf slab evaluation.
            if (ray.origin[axis] < box.lo[axis]
                || ray.origin[axis] > box.hi[axis])
                return -1.f;
            continue;
        }
        float near = (box.lo[axis] - ray.origin[axis]) * inv[axis];
        float far = (box.hi[axis] - ray.origin[axis]) * inv[axis];
        if (near > far)
            std::swap(near, far);
        t0 = std::max(t0, near);
        t1 = std::min(t1, far);
        if (t0 > t1)
            return -1.f;
    }
    // Entry point; when the origin is inside the box report the exit.
    float t = t0 > ray.tmin ? t0 : t1;
    if (t <= ray.tmin || t >= ray.tmax)
        return -1.f;
    return t;
}

} // namespace vksim
