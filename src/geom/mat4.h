/**
 * @file
 * 4x4 row-major transformation matrix.
 *
 * Used for the object-to-world / world-to-object transforms carried in top
 * level acceleration structure leaf nodes (paper Fig. 7b) and applied by the
 * RT unit's transformation units when a ray enters a BLAS.
 */

#ifndef VKSIM_GEOM_MAT4_H
#define VKSIM_GEOM_MAT4_H

#include "geom/vec.h"

namespace vksim {

/** Row-major 4x4 matrix; bottom row assumed (0,0,0,1) for affine use. */
struct Mat4
{
    float m[4][4] = {};

    /** Identity matrix. */
    static constexpr Mat4
    identity()
    {
        Mat4 r;
        for (int i = 0; i < 4; ++i)
            r.m[i][i] = 1.0f;
        return r;
    }

    static Mat4
    translation(const Vec3 &t)
    {
        Mat4 r = identity();
        r.m[0][3] = t.x;
        r.m[1][3] = t.y;
        r.m[2][3] = t.z;
        return r;
    }

    static Mat4
    scaling(const Vec3 &s)
    {
        Mat4 r;
        r.m[0][0] = s.x;
        r.m[1][1] = s.y;
        r.m[2][2] = s.z;
        r.m[3][3] = 1.0f;
        return r;
    }

    /** Rotation about Y axis by `radians`. */
    static Mat4
    rotationY(float radians)
    {
        Mat4 r = identity();
        float c = std::cos(radians), s = std::sin(radians);
        r.m[0][0] = c;
        r.m[0][2] = s;
        r.m[2][0] = -s;
        r.m[2][2] = c;
        return r;
    }

    /** Rotation about X axis by `radians`. */
    static Mat4
    rotationX(float radians)
    {
        Mat4 r = identity();
        float c = std::cos(radians), s = std::sin(radians);
        r.m[1][1] = c;
        r.m[1][2] = -s;
        r.m[2][1] = s;
        r.m[2][2] = c;
        return r;
    }

    /** Transform a point (w = 1). */
    Vec3
    transformPoint(const Vec3 &p) const
    {
        return {m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3],
                m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3],
                m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3]};
    }

    /** Transform a direction (w = 0). */
    Vec3
    transformVector(const Vec3 &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
                m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
                m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
    }
};

inline Mat4
operator*(const Mat4 &a, const Mat4 &b)
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            float acc = 0.f;
            for (int k = 0; k < 4; ++k)
                acc += a.m[i][k] * b.m[k][j];
            r.m[i][j] = acc;
        }
    return r;
}

/**
 * Invert an affine transform (rotation/scale/translation). Uses the
 * adjugate of the upper 3x3; panics are avoided — a singular matrix yields
 * garbage, which tests guard against.
 */
inline Mat4
affineInverse(const Mat4 &a)
{
    // Inverse of upper-left 3x3 via cofactors.
    float c00 = a.m[1][1] * a.m[2][2] - a.m[1][2] * a.m[2][1];
    float c01 = a.m[1][2] * a.m[2][0] - a.m[1][0] * a.m[2][2];
    float c02 = a.m[1][0] * a.m[2][1] - a.m[1][1] * a.m[2][0];
    float det = a.m[0][0] * c00 + a.m[0][1] * c01 + a.m[0][2] * c02;
    float inv_det = det != 0.f ? 1.0f / det : 0.f;

    Mat4 r = Mat4::identity();
    r.m[0][0] = c00 * inv_det;
    r.m[0][1] = (a.m[0][2] * a.m[2][1] - a.m[0][1] * a.m[2][2]) * inv_det;
    r.m[0][2] = (a.m[0][1] * a.m[1][2] - a.m[0][2] * a.m[1][1]) * inv_det;
    r.m[1][0] = c01 * inv_det;
    r.m[1][1] = (a.m[0][0] * a.m[2][2] - a.m[0][2] * a.m[2][0]) * inv_det;
    r.m[1][2] = (a.m[0][2] * a.m[1][0] - a.m[0][0] * a.m[1][2]) * inv_det;
    r.m[2][0] = c02 * inv_det;
    r.m[2][1] = (a.m[0][1] * a.m[2][0] - a.m[0][0] * a.m[2][1]) * inv_det;
    r.m[2][2] = (a.m[0][0] * a.m[1][1] - a.m[0][1] * a.m[1][0]) * inv_det;

    Vec3 t{a.m[0][3], a.m[1][3], a.m[2][3]};
    Vec3 ti = r.transformVector(t);
    r.m[0][3] = -ti.x;
    r.m[1][3] = -ti.y;
    r.m[2][3] = -ti.z;
    return r;
}

} // namespace vksim

#endif // VKSIM_GEOM_MAT4_H
