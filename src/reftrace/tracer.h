/**
 * @file
 * CPU reference ray tracing.
 *
 * Two independent intersection paths are provided:
 *  - bruteForceTrace(): tests every primitive of every instance; the
 *    ground-truth oracle for property tests of the BVH.
 *  - CpuTracer: traverses the *serialized* acceleration structure with the
 *    same RayTraversal state machine the RT unit uses, then resolves
 *    deferred procedural/any-hit work analytically.
 *
 * The CPU renderer built on CpuTracer is this repo's stand-in for the
 * "NVIDIA GPU" image fidelity comparison of the paper's Figure 2.
 */

#ifndef VKSIM_REFTRACE_TRACER_H
#define VKSIM_REFTRACE_TRACER_H

#include <functional>

#include "accel/serialize.h"
#include "accel/traversal.h"
#include "check/execbackend.h"
#include "geom/ray.h"
#include "scene/scene.h"
#include "util/metrics.h"

namespace vksim {

/** Ground truth: intersect `ray` against every primitive in the scene. */
HitRecord bruteForceTrace(const Scene &scene, const Ray &ray,
                          std::uint32_t flags = kRayFlagNone);

/** Per-ray traversal counters surfaced to workload statistics. */
struct TraceCounters
{
    std::uint64_t nodesVisited = 0;
    std::uint64_t boxTests = 0;
    std::uint64_t triangleTests = 0;
    std::uint64_t transforms = 0;
    std::uint64_t rays = 0;

    /** Register under `prefix.` in the unified metrics registry. */
    void exportTo(MetricsRegistry &registry,
                  const std::string &prefix) const;
};

/**
 * BVH-based CPU tracer over the serialized acceleration structure; the
 * functional ExecBackend of the differential checker.
 */
class CpuTracer : public ExecBackend
{
  public:
    /** Decides any-hit acceptance; default accepts everything. */
    using AnyHitFilter = std::function<bool(const DeferredHit &)>;

    CpuTracer(const Scene &scene, const GlobalMemory &gmem,
              const AccelStruct &accel)
        : scene_(scene), gmem_(gmem), accel_(accel)
    {
    }

    /** Closest-hit query. Counters are accumulated when non-null. */
    HitRecord trace(const Ray &ray, std::uint32_t flags = kRayFlagNone,
                    TraceCounters *counters = nullptr) const override;

    const char *name() const override { return "reftrace"; }

    /** Occlusion query (terminate on first hit). */
    bool occluded(const Ray &ray, TraceCounters *counters = nullptr) const;

    void setAnyHitFilter(AnyHitFilter f) { anyHit_ = std::move(f); }

    /**
     * Mirror the GPU's immediate any-hit mode: non-opaque candidates in
     * masked hit groups suspend traversal and resolve through the
     * any-hit filter verdict mid-traversal (committing shrinks tmax
     * before traversal resumes), matching the RT unit's suspension
     * path bit-exactly. `group_mask` has one bit per SBT offset < 64,
     * set when that hit group has an any-hit shader.
     */
    void setImmediateAnyHit(bool enabled, std::uint64_t group_mask)
    {
        immediateAnyHit_ = enabled;
        anyHitGroupMask_ = group_mask;
    }

    const Scene &scene() const { return scene_; }

  private:
    /** Run intersection/any-hit work collected during traversal. */
    void resolveDeferred(const Ray &world_ray, RayTraversal &trav) const;

    const Scene &scene_;
    const GlobalMemory &gmem_;
    const AccelStruct &accel_;
    AnyHitFilter anyHit_;
    bool immediateAnyHit_ = false;
    std::uint64_t anyHitGroupMask_ = 0;
};

/** Sky gradient colour for a (unit) direction. */
Vec3 skyColor(const Scene &scene, const Vec3 &dir);

/**
 * Surface data reconstructed at a hit point; shared by the reference
 * shading code and by tests validating the simulated shaders.
 */
struct SurfaceInfo
{
    Vec3 position;
    Vec3 normal;    ///< world-space geometric normal, faces the ray origin
    bool frontFace = true;
    Material material;
};

/** Reconstruct surface attributes for a committed hit. */
SurfaceInfo surfaceAt(const Scene &scene, const Ray &ray,
                      const HitRecord &hit);

} // namespace vksim

#endif // VKSIM_REFTRACE_TRACER_H
