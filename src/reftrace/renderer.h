/**
 * @file
 * CPU reference renderer.
 *
 * Implements the four shading algorithms used by the evaluation
 * workloads. The simulated GLSL-equivalent shaders (src/workloads)
 * implement the *same* math in the NIR-like IR, using the same
 * hash-based RNG streams, so the rendered images can be compared
 * pixel-by-pixel (paper Fig. 2).
 */

#ifndef VKSIM_REFTRACE_RENDERER_H
#define VKSIM_REFTRACE_RENDERER_H

#include "reftrace/tracer.h"
#include "util/image.h"
#include "util/rng.h"

namespace vksim {

/** Shading algorithm selector. */
enum class ShadingMode
{
    BaryColor,       ///< TRI: barycentric colour of the hit triangle
    Whitted,         ///< REF: mirror reflections + hard shadows
    AmbientOcclusion,///< EXT: sun + shadow + AO rays
    PathTrace,       ///< RTV5/RTV6: iterative path tracing
    Hybrid           ///< HYB: G-buffer-style primary + shadow/reflection rays
};

/** Tunables for the shading algorithms. */
struct ShadingParams
{
    unsigned maxDepth = 3;     ///< Whitted reflection depth
    unsigned aoSamples = 3;    ///< EXT ambient-occlusion rays per hit
    float aoRadius = 2.5f;     ///< EXT AO ray tmax
    unsigned maxBounces = 4;   ///< path-trace bounce cap
    float ambientStrength = 0.25f;
    std::uint32_t frameSeed = 0; ///< folded into every pixel RNG stream
};

/**
 * Per-pixel RNG contract shared with the simulated shaders: state starts
 * at hash(pixel_index + 1 + frameSeed) and every draw re-hashes the state.
 */
struct ShaderRng
{
    std::uint32_t state;

    explicit ShaderRng(std::uint32_t pixel_index, std::uint32_t frame_seed)
        : state(hashU32(pixel_index + 1u + frame_seed))
    {
    }

    float
    next()
    {
        state = hashU32(state);
        return static_cast<float>(state >> 8) * (1.0f / 16777216.0f);
    }
};

/** Shade one pixel; the core routine both renderers agree on. */
Vec3 shadeReferencePixel(const CpuTracer &tracer, ShadingMode mode,
                         const ShadingParams &params, unsigned x, unsigned y,
                         unsigned width, unsigned height,
                         TraceCounters *counters = nullptr);

/**
 * Render a full image on the CPU (reference renderer).
 *
 * Tiles (row bands) are rendered in parallel on `threads` host threads
 * (0 = auto via VKSIM_THREADS / hardware concurrency, 1 = serial). The
 * result is identical for every thread count: pixels are independent
 * (per-pixel RNG streams) and per-tile TraceCounters are merged into
 * `counters` in fixed tile order after the join.
 */
Image renderReference(const CpuTracer &tracer, ShadingMode mode,
                      const ShadingParams &params, unsigned width,
                      unsigned height, TraceCounters *counters = nullptr,
                      unsigned threads = 1);

} // namespace vksim

#endif // VKSIM_REFTRACE_RENDERER_H
