#include "reftrace/tracer.h"

#include <algorithm>

#include "geom/intersect.h"
#include "util/log.h"

namespace vksim {

void
TraceCounters::exportTo(MetricsRegistry &registry,
                        const std::string &prefix) const
{
    registry.counter(prefix + ".nodes_visited").inc(nodesVisited);
    registry.counter(prefix + ".box_tests").inc(boxTests);
    registry.counter(prefix + ".triangle_tests").inc(triangleTests);
    registry.counter(prefix + ".transforms").inc(transforms);
    registry.counter(prefix + ".rays").inc(rays);
}

namespace {

/** Object-space ray for an instance (direction left unnormalized). */
Ray
toObjectSpace(const Ray &world, const Mat4 &world_to_object)
{
    Ray obj;
    obj.origin = world_to_object.transformPoint(world.origin);
    obj.direction = world_to_object.transformVector(world.direction);
    obj.tmin = world.tmin;
    obj.tmax = world.tmax;
    return obj;
}

/** Analytic test of one procedural primitive; negative when missed. */
float
proceduralHitT(const ProceduralPrimitive &prim, const Ray &obj_ray)
{
    if (prim.shape == ProceduralShape::Sphere)
        return raySphere(obj_ray, prim.center, prim.radius);
    return rayBoxProcedural(obj_ray, prim.bounds);
}

} // namespace

HitRecord
bruteForceTrace(const Scene &scene, const Ray &ray, std::uint32_t flags)
{
    HitRecord best;
    Ray world = ray;
    for (std::size_t ii = 0; ii < scene.instances.size(); ++ii) {
        const Instance &inst = scene.instances[ii];
        const Geometry &geom = scene.geometries[inst.geometryIndex];
        Mat4 w2o = affineInverse(inst.objectToWorld);
        Ray obj = toObjectSpace(world, w2o);
        obj.tmax = std::min(obj.tmax, best.valid() ? best.t : world.tmax);

        if (geom.kind == GeometryKind::Triangles) {
            for (std::size_t p = 0; p < geom.mesh.triangleCount(); ++p) {
                Vec3 v0, v1, v2;
                geom.mesh.triangle(p, &v0, &v1, &v2);
                TriangleHit tri = rayTriangle(obj, v0, v1, v2);
                if (tri.hit && (!best.valid() || tri.t < best.t)) {
                    best.t = tri.t;
                    best.u = tri.u;
                    best.v = tri.v;
                    best.instanceIndex = static_cast<std::int32_t>(ii);
                    best.primitiveIndex = static_cast<std::int32_t>(p);
                    best.instanceCustomIndex = inst.instanceCustomIndex;
                    best.sbtOffset = inst.sbtOffset;
                    best.kind = HitKind::Triangle;
                    obj.tmax = tri.t;
                }
            }
        } else if (!(flags & kRayFlagSkipProcedural)) {
            for (std::size_t p = 0; p < geom.prims.size(); ++p) {
                float t = proceduralHitT(geom.prims[p], obj);
                if (t > 0.f && (!best.valid() || t < best.t)) {
                    best.t = t;
                    best.instanceIndex = static_cast<std::int32_t>(ii);
                    best.primitiveIndex = static_cast<std::int32_t>(p);
                    best.instanceCustomIndex = inst.instanceCustomIndex;
                    best.sbtOffset = inst.sbtOffset;
                    best.kind = HitKind::Procedural;
                    obj.tmax = t;
                }
            }
        }
    }
    return best;
}

void
CpuTracer::resolveDeferred(const Ray &world_ray, RayTraversal &trav) const
{
    HitRecord &hit = trav.hit();
    for (const DeferredHit &d : trav.deferred()) {
        if (d.anyHit) {
            // Any-hit shader stage: accept unless the filter rejects.
            if (anyHit_ && !anyHit_(d))
                continue;
            if (d.t < hit.t) {
                hit.t = d.t;
                hit.u = d.u;
                hit.v = d.v;
                hit.instanceIndex = d.instanceIndex;
                hit.primitiveIndex = d.primitiveIndex;
                hit.instanceCustomIndex = d.instanceCustomIndex;
                hit.sbtOffset = d.sbtOffset;
                hit.kind = HitKind::Triangle;
            }
            continue;
        }
        // Intersection shader stage for a procedural candidate.
        const Instance &inst =
            scene_.instances[static_cast<std::size_t>(d.instanceIndex)];
        const Geometry &geom = scene_.geometries[inst.geometryIndex];
        const ProceduralPrimitive &prim =
            geom.prims[static_cast<std::size_t>(d.primitiveIndex)];
        Ray obj = toObjectSpace(world_ray, affineInverse(inst.objectToWorld));
        obj.tmax = std::min(obj.tmax, hit.t);
        float t = proceduralHitT(prim, obj);
        if (t > 0.f && t < hit.t) {
            hit.t = t;
            hit.instanceIndex = d.instanceIndex;
            hit.primitiveIndex = d.primitiveIndex;
            hit.instanceCustomIndex = d.instanceCustomIndex;
            hit.sbtOffset = d.sbtOffset;
            hit.kind = HitKind::Procedural;
        }
    }
}

HitRecord
CpuTracer::trace(const Ray &ray, std::uint32_t flags,
                 TraceCounters *counters) const
{
    RayTraversal trav(gmem_, accel_.tlasRoot, ray, flags);
    if (immediateAnyHit_)
        trav.setImmediateAnyHit(true, anyHitGroupMask_);
    trav.run();
    while (trav.anyHitSuspended()) {
        // The filter verdict stands in for the any-hit shader: commit
        // unless it rejects, exactly as the RT unit resolves the
        // suspended lane.
        bool commit = !anyHit_ || anyHit_(trav.pendingAnyHit());
        trav.resolveAnyHit(commit);
        trav.run();
    }
    resolveDeferred(ray, trav);
    if (counters) {
        counters->nodesVisited += trav.nodesVisited();
        counters->boxTests += trav.boxTests();
        counters->triangleTests += trav.triangleTests();
        counters->transforms += trav.transforms();
        counters->rays += 1;
    }
    return trav.hit();
}

bool
CpuTracer::occluded(const Ray &ray, TraceCounters *counters) const
{
    return trace(ray, kRayFlagTerminateOnFirstHit, counters).valid();
}

Vec3
skyColor(const Scene &scene, const Vec3 &dir)
{
    float t = 0.5f * (dir.y + 1.0f);
    return lerp(scene.skyHorizon, scene.skyZenith, std::clamp(t, 0.f, 1.f));
}

SurfaceInfo
surfaceAt(const Scene &scene, const Ray &ray, const HitRecord &hit)
{
    vksim_assert(hit.valid());
    SurfaceInfo info;
    info.position = ray.at(hit.t);

    const Instance &inst =
        scene.instances[static_cast<std::size_t>(hit.instanceIndex)];
    const Geometry &geom = scene.geometries[inst.geometryIndex];

    Vec3 obj_normal;
    if (hit.kind == HitKind::Triangle) {
        Vec3 v0, v1, v2;
        geom.mesh.triangle(static_cast<std::size_t>(hit.primitiveIndex),
                           &v0, &v1, &v2);
        obj_normal = normalize(cross(v1 - v0, v2 - v0));
        info.material =
            scene.materials[static_cast<std::size_t>(hit.instanceCustomIndex)];
    } else {
        const ProceduralPrimitive &prim =
            geom.prims[static_cast<std::size_t>(hit.primitiveIndex)];
        Mat4 w2o = affineInverse(inst.objectToWorld);
        Vec3 obj_p = w2o.transformPoint(info.position);
        if (prim.shape == ProceduralShape::Sphere) {
            obj_normal = (obj_p - prim.center) / prim.radius;
        } else {
            // Face normal of the box: the axis where the hit point sits
            // on (or nearest to) a face plane.
            Vec3 c = prim.bounds.center();
            Vec3 half = prim.bounds.extent() * 0.5f;
            Vec3 rel = obj_p - c;
            Vec3 scaled{rel.x / half.x, rel.y / half.y, rel.z / half.z};
            int axis = maxDimension(
                {std::abs(scaled.x), std::abs(scaled.y), std::abs(scaled.z)});
            obj_normal = Vec3(0.f);
            obj_normal[axis] = scaled[axis] > 0.f ? 1.f : -1.f;
        }
        info.material =
            scene.materials[static_cast<std::size_t>(prim.materialIndex)];
    }

    Vec3 n = normalize(inst.objectToWorld.transformVector(obj_normal));
    info.frontFace = dot(n, ray.direction) < 0.f;
    info.normal = info.frontFace ? n : -n;
    return info;
}

} // namespace vksim
