#include "reftrace/renderer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/sampling.h"
#include "util/threadpool.h"

namespace vksim {

namespace {

constexpr float kOriginEpsilon = 1e-3f;

/** TRI shading: barycentric colour. */
Vec3
shadeBary(const CpuTracer &tracer, const Ray &primary,
          TraceCounters *counters)
{
    HitRecord hit = tracer.trace(primary, kRayFlagNone, counters);
    if (!hit.valid())
        return skyColor(tracer.scene(), primary.direction);
    return {1.f - hit.u - hit.v, hit.u, hit.v};
}

/** REF shading: Whitted-style mirrors + hard shadows. */
Vec3
shadeWhitted(const CpuTracer &tracer, Ray ray, const ShadingParams &params,
             TraceCounters *counters)
{
    const Scene &scene = tracer.scene();
    Vec3 color(0.f);
    Vec3 atten(1.f);
    for (unsigned depth = 0; depth < params.maxDepth; ++depth) {
        HitRecord hit = tracer.trace(ray, kRayFlagNone, counters);
        if (!hit.valid()) {
            color += atten * skyColor(scene, ray.direction);
            break;
        }
        SurfaceInfo surf = surfaceAt(scene, ray, hit);
        auto kind = static_cast<MaterialKind>(surf.material.kind);
        if (kind == MaterialKind::Mirror || kind == MaterialKind::Metal) {
            // Whitted mode treats metals as tinted mirrors (no fuzz) so
            // the REF workload stays RNG-free.
            atten = atten * surf.material.albedo;
            Ray next;
            next.origin = surf.position + surf.normal * kOriginEpsilon;
            next.direction =
                reflect(normalize(ray.direction), surf.normal);
            next.tmin = 1e-4f;
            next.tmax = 1e30f;
            ray = next;
            continue;
        }
        // Diffuse: sun with a shadow ray, plus a constant ambient term.
        Ray shadow;
        shadow.origin = surf.position + surf.normal * kOriginEpsilon;
        shadow.direction = scene.sunDirection;
        shadow.tmin = 1e-4f;
        shadow.tmax = 1e30f;
        float ndotl = std::max(0.f, dot(surf.normal, scene.sunDirection));
        float lit =
            (ndotl > 0.f && !tracer.occluded(shadow, counters)) ? 1.f : 0.f;
        Vec3 direct = scene.sunColor * (ndotl * lit);
        Vec3 ambient = scene.skyHorizon * params.ambientStrength;
        color += atten * surf.material.albedo * (direct + ambient);
        break;
    }
    return color;
}

/** EXT shading: sun + shadow + ambient occlusion. */
Vec3
shadeAo(const CpuTracer &tracer, const Ray &primary,
        const ShadingParams &params, ShaderRng &rng,
        TraceCounters *counters)
{
    const Scene &scene = tracer.scene();
    HitRecord hit = tracer.trace(primary, kRayFlagNone, counters);
    if (!hit.valid())
        return skyColor(scene, primary.direction);

    SurfaceInfo surf = surfaceAt(scene, primary, hit);
    Vec3 base = surf.position + surf.normal * kOriginEpsilon;

    Ray shadow;
    shadow.origin = base;
    shadow.direction = scene.sunDirection;
    shadow.tmin = 1e-4f;
    shadow.tmax = 1e30f;
    float ndotl = std::max(0.f, dot(surf.normal, scene.sunDirection));
    float lit =
        (ndotl > 0.f && !tracer.occluded(shadow, counters)) ? 1.f : 0.f;

    Onb onb(surf.normal);
    float visible = 0.f;
    for (unsigned s = 0; s < params.aoSamples; ++s) {
        float u1 = rng.next();
        float u2 = rng.next();
        Ray ao;
        ao.origin = base;
        ao.direction = onb.toWorld(cosineSampleHemisphere(u1, u2));
        ao.tmin = 1e-4f;
        ao.tmax = params.aoRadius;
        if (!tracer.occluded(ao, counters))
            visible += 1.f;
    }
    float ao = params.aoSamples ? visible / params.aoSamples : 1.f;

    Vec3 direct = scene.sunColor * (ndotl * lit);
    Vec3 ambient = scene.skyHorizon * (params.ambientStrength * ao);
    return surf.material.albedo * (direct + ambient);
}

/** RTV5/RTV6 shading: iterative path tracing. */
Vec3
shadePath(const CpuTracer &tracer, Ray ray, const ShadingParams &params,
          ShaderRng &rng, TraceCounters *counters)
{
    const Scene &scene = tracer.scene();
    Vec3 color(0.f);
    Vec3 atten(1.f);
    for (unsigned bounce = 0; bounce < params.maxBounces; ++bounce) {
        HitRecord hit = tracer.trace(ray, kRayFlagNone, counters);
        if (!hit.valid()) {
            // Bounce directions are kept unit-length, so the sky lookup
            // uses the direction as-is (the simulated shaders mirror this
            // evaluation order bit-for-bit).
            color += atten * skyColor(scene, ray.direction);
            break;
        }
        SurfaceInfo surf = surfaceAt(scene, ray, hit);
        auto kind = static_cast<MaterialKind>(surf.material.kind);
        if (kind == MaterialKind::Emissive) {
            color += atten * surf.material.emission;
            break;
        }

        Vec3 next_dir;
        Vec3 next_origin = surf.position + surf.normal * kOriginEpsilon;
        if (kind == MaterialKind::Lambertian) {
            float u1 = rng.next();
            float u2 = rng.next();
            Onb onb(surf.normal);
            next_dir = onb.toWorld(cosineSampleHemisphere(u1, u2));
            atten = atten * surf.material.albedo;
        } else if (kind == MaterialKind::Metal
                   || kind == MaterialKind::Mirror) {
            Vec3 unit = normalize(ray.direction);
            Vec3 refl = reflect(unit, surf.normal);
            if (surf.material.fuzz > 0.f) {
                float u1 = rng.next();
                float u2 = rng.next();
                refl = refl
                       + uniformSampleSphere(u1, u2) * surf.material.fuzz;
            }
            next_dir = normalize(refl);
            if (dot(next_dir, surf.normal) <= 0.f)
                break;
            atten = atten * surf.material.albedo;
        } else { // Dielectric
            Vec3 unit = normalize(ray.direction);
            float eta = surf.frontFace ? 1.0f / surf.material.ior
                                       : surf.material.ior;
            float cos_theta = std::min(-dot(unit, surf.normal), 1.0f);
            Vec3 refracted;
            bool can_refract =
                refractDir(unit, surf.normal, eta, &refracted);
            float pick = rng.next();
            if (!can_refract || schlickFresnel(cos_theta, eta) > pick) {
                next_dir = reflect(unit, surf.normal);
                next_origin = surf.position + surf.normal * kOriginEpsilon;
            } else {
                next_dir = normalize(refracted);
                next_origin = surf.position - surf.normal * kOriginEpsilon;
            }
        }

        ray.origin = next_origin;
        ray.direction = next_dir;
        ray.tmin = 1e-4f;
        ray.tmax = 1e30f;
    }
    return color;
}

/**
 * HYB shading: stand-in for a hybrid raster+RT frame. The primary ray
 * plays the G-buffer pass; the hit is lit with one shadow ray and one
 * single-bounce reflection ray (no recursion, no RNG draws).
 */
Vec3
shadeHybrid(const CpuTracer &tracer, const Ray &primary,
            const ShadingParams &params, TraceCounters *counters)
{
    const Scene &scene = tracer.scene();
    HitRecord hit = tracer.trace(primary, kRayFlagNone, counters);
    if (!hit.valid())
        return skyColor(scene, primary.direction);

    SurfaceInfo surf = surfaceAt(scene, primary, hit);
    Vec3 base = surf.position + surf.normal * kOriginEpsilon;

    Ray shadow;
    shadow.origin = base;
    shadow.direction = scene.sunDirection;
    shadow.tmin = 1e-4f;
    shadow.tmax = 1e30f;
    float ndotl = std::max(0.f, dot(surf.normal, scene.sunDirection));
    float lit =
        (ndotl > 0.f && !tracer.occluded(shadow, counters)) ? 1.f : 0.f;
    Vec3 direct = scene.sunColor * (ndotl * lit);
    Vec3 ambient = scene.skyHorizon * params.ambientStrength;
    Vec3 color = surf.material.albedo * (direct + ambient);

    Ray refl;
    refl.origin = base;
    refl.direction = reflect(normalize(primary.direction), surf.normal);
    refl.tmin = 1e-4f;
    refl.tmax = 1e30f;
    HitRecord rhit = tracer.trace(refl, kRayFlagNone, counters);
    Vec3 rcol;
    if (!rhit.valid()) {
        rcol = skyColor(scene, refl.direction);
    } else {
        // Reflected surfaces are sun-lit without a shadow ray: a
        // secondary bounce does not pay for another occlusion query.
        SurfaceInfo rsurf = surfaceAt(scene, refl, rhit);
        float rndotl = std::max(0.f, dot(rsurf.normal, scene.sunDirection));
        rcol = rsurf.material.albedo
               * (scene.sunColor * rndotl + ambient);
    }
    color += rcol * 0.25f;
    return color;
}

} // namespace

Vec3
shadeReferencePixel(const CpuTracer &tracer, ShadingMode mode,
                    const ShadingParams &params, unsigned x, unsigned y,
                    unsigned width, unsigned height,
                    TraceCounters *counters)
{
    const Camera &cam = tracer.scene().camera;
    std::uint32_t pixel_index = y * width + x;
    ShaderRng rng(pixel_index, params.frameSeed);

    float lx = 0.5f, ly = 0.5f;
    if (cam.aperture > 0.f) {
        lx = rng.next();
        ly = rng.next();
    }
    Ray primary = cam.generateRay(x, y, width, height, 0.5f, 0.5f, lx, ly);

    switch (mode) {
      case ShadingMode::BaryColor:
        return shadeBary(tracer, primary, counters);
      case ShadingMode::Whitted:
        return shadeWhitted(tracer, primary, params, counters);
      case ShadingMode::AmbientOcclusion:
        return shadeAo(tracer, primary, params, rng, counters);
      case ShadingMode::PathTrace:
        return shadePath(tracer, primary, params, rng, counters);
      case ShadingMode::Hybrid:
        return shadeHybrid(tracer, primary, params, counters);
    }
    return Vec3(0.f);
}

namespace {

/** Shade one row band [y0, y1) into img. */
void
renderBand(const CpuTracer &tracer, ShadingMode mode,
           const ShadingParams &params, unsigned width, unsigned height,
           unsigned y0, unsigned y1, Image &img, TraceCounters *counters)
{
    for (unsigned y = y0; y < y1; ++y)
        for (unsigned x = 0; x < width; ++x) {
            Vec3 c = shadeReferencePixel(tracer, mode, params, x, y, width,
                                         height, counters);
            img.setPixel(x, y, c.x, c.y, c.z);
        }
}

} // namespace

Image
renderReference(const CpuTracer &tracer, ShadingMode mode,
                const ShadingParams &params, unsigned width,
                unsigned height, TraceCounters *counters, unsigned threads)
{
    Image img(width, height);
    unsigned lanes = ThreadPool::resolveThreadCount(threads);
    if (lanes <= 1 || height <= 1) {
        renderBand(tracer, mode, params, width, height, 0, height, img,
                   counters);
        return img;
    }

    // Row-band tiles, a few per lane for load balance. Pixels are
    // independent (per-pixel RNG streams; disjoint image rows), so only
    // the counters need care: each tile accumulates privately and the
    // tiles are merged in fixed tile order after the join.
    const unsigned tiles = std::min(height, lanes * 4u);
    const unsigned rows_per_tile = (height + tiles - 1) / tiles;
    std::vector<TraceCounters> tile_counters(counters ? tiles : 0);

    ThreadPool pool(lanes);
    pool.parallelFor(tiles, [&](std::size_t t) {
        unsigned y0 = static_cast<unsigned>(t) * rows_per_tile;
        unsigned y1 = std::min(height, y0 + rows_per_tile);
        renderBand(tracer, mode, params, width, height, y0, y1, img,
                   counters ? &tile_counters[t] : nullptr);
    });

    if (counters)
        for (const TraceCounters &tc : tile_counters) {
            counters->nodesVisited += tc.nodesVisited;
            counters->boxTests += tc.boxTests;
            counters->triangleTests += tc.triangleTests;
            counters->transforms += tc.transforms;
            counters->rays += tc.rays;
        }
    return img;
}

} // namespace vksim
