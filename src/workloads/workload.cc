#include "workloads/workload.h"

#include "service/artifacts.h"
#include "vptx/rt_runtime.h"
#include "workloads/shaders.h"

namespace vksim::wl {

const char *
workloadName(WorkloadId id)
{
    switch (id) {
      case WorkloadId::TRI: return "TRI";
      case WorkloadId::REF: return "REF";
      case WorkloadId::EXT: return "EXT";
      case WorkloadId::RTV5: return "RTV5";
      case WorkloadId::RTV6: return "RTV6";
      case WorkloadId::HYB: return "HYB";
      case WorkloadId::RQC: return "RQC";
      case WorkloadId::AHA: return "AHA";
      case WorkloadId::ACC: return "ACC";
    }
    return "?";
}

WorkloadParams
paperScaleParams(WorkloadId id)
{
    WorkloadParams p;
    p.extScale = 1.0f;
    p.rtv5Detail = 7;
    p.rtv6Prims = 3568;
    return p;
}

ShadingMode
Workload::shadingMode() const
{
    switch (id_) {
      case WorkloadId::TRI: return ShadingMode::BaryColor;
      case WorkloadId::REF: return ShadingMode::Whitted;
      case WorkloadId::EXT: return ShadingMode::AmbientOcclusion;
      case WorkloadId::RTV5:
      case WorkloadId::RTV6:
      case WorkloadId::ACC: return ShadingMode::PathTrace;
      case WorkloadId::HYB: return ShadingMode::Hybrid;
      // RQC and AHA both shade barycentric colour; RQC traverses from a
      // compute shader and AHA filters hits through the any-hit stage,
      // which the configured tracer mirrors.
      case WorkloadId::RQC:
      case WorkloadId::AHA: return ShadingMode::BaryColor;
    }
    return ShadingMode::BaryColor;
}

Workload::Workload(WorkloadId id, const WorkloadParams &params,
                   service::ArtifactCache *artifacts)
    : id_(id), params_(params)
{
    switch (id_) {
      case WorkloadId::TRI: scene_ = makeTriScene(); break;
      case WorkloadId::REF: scene_ = makeRefScene(); break;
      case WorkloadId::EXT: scene_ = makeExtScene(params_.extScale); break;
      case WorkloadId::RTV5:
        scene_ = makeRtv5Scene(params_.rtv5Detail);
        break;
      case WorkloadId::RTV6:
        scene_ = makeRtv6Scene(params_.rtv6Prims);
        break;
      case WorkloadId::HYB: scene_ = makeHybScene(); break;
      case WorkloadId::RQC: scene_ = makeRqcScene(); break;
      case WorkloadId::AHA: scene_ = makeAhaScene(); break;
      case WorkloadId::ACC: scene_ = makeAccScene(); break;
    }
    scene_.camera.aspect = static_cast<float>(params_.width)
                           / static_cast<float>(params_.height);

    if (artifacts != nullptr) {
        // Cache-aware build. The BVH is this fresh device's *first*
        // allocation, so a captured image from any other fresh device
        // installs at identical addresses; a miss builds into our own
        // memory and captures from it, leaving the same final state.
        GlobalMemory &gm = device_.memory();
        bvhKey_ = service::sceneGeometryKey(scene_);
        // Whether the build ran against *our* memory. A cache hit — or
        // a disk-store load, which also skips the builder — leaves gm
        // untouched, so the captured image must be installed.
        bool built_here = false;
        std::shared_ptr<const AccelImage> image = artifacts->bvh(
            bvhKey_,
            [&] {
                built_here = true;
                Addr base = gm.brk();
                std::size_t regions_before = gm.regions().size();
                AccelStruct built =
                    device_.buildAccelerationStructure(scene_);
                return captureAccelImage(gm, base, regions_before, built);
            },
            &bvhCacheHit_);
        if (!built_here)
            installAccelImage(gm, *image);
        accel_ = image->accel;

        buildShaders();
        pipelineKey_ = xlate::digestPipeline(pipeDesc_, params_.fcc);
        pipeline_.compiled = artifacts->pipeline(
            pipelineKey_,
            [&] {
                return Device::translatePipeline(pipeDesc_, params_.fcc);
            },
            &pipelineCacheHit_);
        device_.uploadShaderBindingTable(&pipeline_);
    } else {
        accel_ = device_.buildAccelerationStructure(scene_);
        buildShaders();
        pipeline_ =
            device_.createRayTracingPipeline(pipeDesc_, params_.fcc);
    }
    buildDescriptors();
    launch_ = device_.createLaunch(pipeline_, descriptors_,
                                   accel_.tlasRoot, params_.width,
                                   params_.height);
    tracer_ = std::make_unique<CpuTracer>(scene_, device_.memory(), accel_);
    configureTracer(tracer_.get());
}

void
Workload::beginFrame(unsigned frame)
{
    GlobalMemory &gmem = device_.memory();
    if (accumAddr_ != 0)
        gmem.store(accumAddr_, static_cast<std::uint32_t>(frame + 1));
    gmem.store(descriptors_.at(kBindConstants)
                   + offsetof(GpuSceneConstants, frameSeed),
               params_.shading.frameSeed + frame);
}

void
Workload::configureTracer(CpuTracer *tracer) const
{
    if (!pipeline_.immediateAnyHit())
        return;
    tracer->setImmediateAnyHit(
        true, vptx::rt_runtime::anyHitGroupMask(launch_.context()));
    // The verdict of makeAnyHitAlphaTest's default threshold.
    tracer->setAnyHitFilter(
        [](const DeferredHit &d) { return d.u + d.v <= 0.5f; });
}

void
Workload::buildShaders()
{
    // Shader indices are stable: 0 = raygen, 1 = closest hit, 2 = miss,
    // then intersection shaders.
    switch (id_) {
      case WorkloadId::TRI:
        shaderStore_.push_back(makeRaygenBary());
        shaderStore_.push_back(makeClosestHitBary());
        break;
      case WorkloadId::REF:
        shaderStore_.push_back(makeRaygenWhitted());
        shaderStore_.push_back(makeClosestHitSurface());
        break;
      case WorkloadId::EXT:
        shaderStore_.push_back(params_.divergentRaygen
                                   ? makeRaygenAoDivergent()
                                   : makeRaygenAo());
        shaderStore_.push_back(makeClosestHitSurface());
        break;
      case WorkloadId::RTV5:
      case WorkloadId::RTV6:
        shaderStore_.push_back(makeRaygenPath());
        shaderStore_.push_back(makeClosestHitSurface());
        break;
      case WorkloadId::HYB:
        shaderStore_.push_back(makeRaygenHybrid());
        shaderStore_.push_back(makeClosestHitSurface());
        break;
      case WorkloadId::AHA:
        shaderStore_.push_back(makeRaygenBary());
        shaderStore_.push_back(makeClosestHitBary());
        break;
      case WorkloadId::ACC:
        shaderStore_.push_back(makeRaygenAccum());
        shaderStore_.push_back(makeClosestHitSurface());
        break;
      case WorkloadId::RQC:
        // A ray-query compute pipeline is just the one shader: no SBT,
        // no closest-hit / miss / intersection indirection.
        shaderStore_.push_back(makeComputeRayQuery());
        for (const nir::Shader &s : shaderStore_)
            pipeDesc_.shaders.push_back(&s);
        pipeDesc_.compute = 0;
        return;
    }
    shaderStore_.push_back(makeMissShader());
    if (id_ == WorkloadId::RTV5 || id_ == WorkloadId::RTV6)
        shaderStore_.push_back(makeIntersectionSphere());
    if (id_ == WorkloadId::RTV6)
        shaderStore_.push_back(makeIntersectionBox());
    if (id_ == WorkloadId::AHA)
        shaderStore_.push_back(makeAnyHitAlphaTest());

    for (const nir::Shader &s : shaderStore_)
        pipeDesc_.shaders.push_back(&s);
    pipeDesc_.raygen = 0;
    pipeDesc_.missShaders = {2};

    xlate::HitGroupDesc triangles;
    triangles.closestHit = 1;
    if (id_ == WorkloadId::AHA) {
        // The triangle hit group runs the alpha-test any-hit shader
        // immediately mid-traversal (warp suspension in the RT unit).
        triangles.anyHit = 3;
        pipeDesc_.immediateAnyHit = true;
    }
    pipeDesc_.hitGroups.push_back(triangles);
    if (id_ == WorkloadId::RTV5 || id_ == WorkloadId::RTV6) {
        xlate::HitGroupDesc spheres;
        spheres.closestHit = 1;
        spheres.intersection = 3;
        pipeDesc_.hitGroups.push_back(spheres);
    }
    if (id_ == WorkloadId::RTV6) {
        xlate::HitGroupDesc boxes;
        boxes.closestHit = 1;
        boxes.intersection = 4;
        pipeDesc_.hitGroups.push_back(boxes);
    }
}

void
Workload::buildDescriptors()
{
    GlobalMemory &gmem = device_.memory();

    // Camera.
    Addr cam = device_.createBuffer(sizeof(Camera), "desc.camera");
    gmem.store(cam, scene_.camera);
    descriptors_.bind(kBindCamera, cam);

    // Materials.
    descriptors_.bind(
        kBindMaterials,
        device_.uploadBuffer<Material>(
            {scene_.materials.data(), scene_.materials.size()},
            "desc.materials"));

    // Framebuffer.
    framebufferAddr_ = device_.createBuffer(
        static_cast<Addr>(params_.width) * params_.height
            * kFramebufferStride,
        "desc.framebuffer");
    descriptors_.bind(kBindFramebuffer, framebufferAddr_);

    // ACC: cross-frame accumulation buffer (header + running sums),
    // starting at frame count 1 so a single-frame run needs no
    // beginFrame() call.
    if (id_ == WorkloadId::ACC) {
        accumAddr_ = device_.createBuffer(
            kAccumHeaderBytes
                + static_cast<Addr>(params_.width) * params_.height
                      * kFramebufferStride,
            "desc.accum");
        gmem.store(accumAddr_, std::uint32_t{1});
        descriptors_.bind(kBindAccum, accumAddr_);
    }

    // Scene constants.
    GpuSceneConstants constants{};
    auto put3 = [](float out[3], const Vec3 &v) {
        out[0] = v.x;
        out[1] = v.y;
        out[2] = v.z;
    };
    put3(constants.sunDir, scene_.sunDirection);
    put3(constants.sunColor, scene_.sunColor);
    put3(constants.skyHorizon, scene_.skyHorizon);
    put3(constants.skyZenith, scene_.skyZenith);
    constants.ambientStrength = params_.shading.ambientStrength;
    constants.frameSeed = params_.shading.frameSeed;
    constants.aoSamples = params_.shading.aoSamples;
    constants.aoRadius = params_.shading.aoRadius;
    constants.maxBounces = params_.shading.maxBounces;
    constants.maxDepth = params_.shading.maxDepth;
    Addr consts =
        device_.createBuffer(sizeof(GpuSceneConstants), "desc.constants");
    gmem.store(consts, constants);
    descriptors_.bind(kBindConstants, consts);

    // Per-geometry triangle / procedural buffers + the instance table.
    std::vector<Addr> tri_base(scene_.geometries.size(), 0);
    std::vector<Addr> prim_base(scene_.geometries.size(), 0);
    for (std::size_t g = 0; g < scene_.geometries.size(); ++g) {
        const Geometry &geom = scene_.geometries[g];
        if (geom.kind == GeometryKind::Triangles) {
            std::vector<GpuTriangleRecord> recs(geom.mesh.triangleCount());
            for (std::size_t i = 0; i < recs.size(); ++i) {
                Vec3 v0, v1, v2;
                geom.mesh.triangle(i, &v0, &v1, &v2);
                put3(recs[i].v0, v0);
                put3(recs[i].v1, v1);
                put3(recs[i].v2, v2);
            }
            tri_base[g] = device_.uploadBuffer<GpuTriangleRecord>(
                {recs.data(), recs.size()}, "desc.triangles");
        } else {
            std::vector<GpuProceduralRecord> recs(geom.prims.size());
            for (std::size_t i = 0; i < recs.size(); ++i) {
                const ProceduralPrimitive &p = geom.prims[i];
                put3(recs[i].center, p.center);
                recs[i].radius = p.radius;
                put3(recs[i].lo, p.bounds.lo);
                put3(recs[i].hi, p.bounds.hi);
                recs[i].shape = static_cast<std::int32_t>(p.shape);
                recs[i].materialIndex = p.materialIndex;
            }
            prim_base[g] = device_.uploadBuffer<GpuProceduralRecord>(
                {recs.data(), recs.size()}, "desc.procedural");
        }
    }

    std::vector<GpuInstanceRecord> inst_recs(scene_.instances.size());
    for (std::size_t i = 0; i < inst_recs.size(); ++i) {
        const Instance &inst = scene_.instances[i];
        GpuInstanceRecord &rec = inst_recs[i];
        rec.triBase = tri_base[inst.geometryIndex];
        rec.primBase = prim_base[inst.geometryIndex];
        rec.materialIndex = inst.instanceCustomIndex;
        rec.kind = static_cast<std::int32_t>(
            scene_.geometries[inst.geometryIndex].kind);
        for (int r = 0; r < 3; ++r)
            for (int col = 0; col < 3; ++col)
                rec.objectToWorld[3 * r + col] =
                    inst.objectToWorld.m[r][col];
    }
    descriptors_.bind(
        kBindInstances,
        device_.uploadBuffer<GpuInstanceRecord>(
            {inst_recs.data(), inst_recs.size()}, "desc.instances"));
}

Image
Workload::runFunctional(vptx::WarpCflow::Mode mode, StatGroup *stats_out)
{
    vptx::ExecOptions options;
    options.fccEnabled = params_.fcc;
    vptx::FunctionalRunner runner(launch_.context(), options, mode);
    runner.run();
    if (stats_out)
        *stats_out = runner.stats();
    return readFramebuffer();
}

Image
Workload::readFramebuffer() const
{
    Image img(params_.width, params_.height);
    const GlobalMemory &gmem = device_.memory();
    for (unsigned y = 0; y < params_.height; ++y)
        for (unsigned x = 0; x < params_.width; ++x) {
            Addr addr = framebufferAddr_
                        + (static_cast<Addr>(y) * params_.width + x)
                              * kFramebufferStride;
            img.setPixel(x, y, gmem.load<float>(addr),
                         gmem.load<float>(addr + 4),
                         gmem.load<float>(addr + 8));
        }
    return img;
}

Image
Workload::renderReferenceImage(TraceCounters *counters,
                               unsigned threads) const
{
    if (id_ != WorkloadId::ACC || params_.frames <= 1)
        return renderReference(*tracer_, shadingMode(), params_.shading,
                               params_.width, params_.height, counters,
                               threads);

    // ACC: mirror the accumulation buffer — per-pixel running sums over
    // the per-frame seeds, resolved as sum * (1 / frameCount) in the
    // same operation order as the shader.
    Image sum(params_.width, params_.height);
    for (unsigned f = 0; f < params_.frames; ++f) {
        ShadingParams shading = params_.shading;
        shading.frameSeed = params_.shading.frameSeed + f;
        Image frame =
            renderReference(*tracer_, shadingMode(), shading,
                            params_.width, params_.height, counters,
                            threads);
        for (unsigned y = 0; y < params_.height; ++y)
            for (unsigned x = 0; x < params_.width; ++x)
                for (unsigned ch = 0; ch < 3; ++ch)
                    sum.at(x, y, ch) += frame.at(x, y, ch);
    }
    const float inv = 1.f / static_cast<float>(params_.frames);
    Image img(params_.width, params_.height);
    for (unsigned y = 0; y < params_.height; ++y)
        for (unsigned x = 0; x < params_.width; ++x)
            for (unsigned ch = 0; ch < 3; ++ch)
                img.at(x, y, ch) = sum.at(x, y, ch) * inv;
    return img;
}

double
Workload::averageNodesPerRay() const
{
    TraceCounters counters;
    renderReference(*tracer_, shadingMode(), params_.shading,
                    params_.width, params_.height, &counters);
    return counters.rays
               ? static_cast<double>(counters.nodesVisited) / counters.rays
               : 0.0;
}

} // namespace vksim::wl
