#include "workloads/shaderlib.h"

#include <cstddef>

#include "accel/traversal.h"
#include "scene/camera.h"

namespace vksim::wl {

V3
v3Const(Builder &b, float x, float y, float z)
{
    return {b.constF(x), b.constF(y), b.constF(z)};
}

V3
v3Splat(Builder &b, Val s)
{
    return {s, s, s};
}

V3
v3Var(Builder &b)
{
    return {b.var(), b.var(), b.var()};
}

void
v3Assign(Builder &b, const V3 &var, const V3 &value)
{
    b.assign(var.x, value.x);
    b.assign(var.y, value.y);
    b.assign(var.z, value.z);
}

V3
v3Add(Builder &b, const V3 &a, const V3 &c)
{
    return {b.fadd(a.x, c.x), b.fadd(a.y, c.y), b.fadd(a.z, c.z)};
}

V3
v3Sub(Builder &b, const V3 &a, const V3 &c)
{
    return {b.fsub(a.x, c.x), b.fsub(a.y, c.y), b.fsub(a.z, c.z)};
}

V3
v3Mul(Builder &b, const V3 &a, const V3 &c)
{
    return {b.fmul(a.x, c.x), b.fmul(a.y, c.y), b.fmul(a.z, c.z)};
}

V3
v3Scale(Builder &b, const V3 &a, Val s)
{
    return {b.fmul(a.x, s), b.fmul(a.y, s), b.fmul(a.z, s)};
}

Val
v3Dot(Builder &b, const V3 &a, const V3 &c)
{
    Val xy = b.fadd(b.fmul(a.x, c.x), b.fmul(a.y, c.y));
    return b.fadd(xy, b.fmul(a.z, c.z));
}

V3
v3Cross(Builder &b, const V3 &a, const V3 &c)
{
    return {b.fsub(b.fmul(a.y, c.z), b.fmul(a.z, c.y)),
            b.fsub(b.fmul(a.z, c.x), b.fmul(a.x, c.z)),
            b.fsub(b.fmul(a.x, c.y), b.fmul(a.y, c.x))};
}

Val
v3Length(Builder &b, const V3 &a)
{
    return b.fsqrt(v3Dot(b, a, a));
}

V3
v3Normalize(Builder &b, const V3 &a)
{
    // Mirrors geom normalize(): len > 0 ? a / len : a.
    Val len = v3Length(b, a);
    Val gt = b.fgt(len, b.constF(0.f));
    V3 divided = {b.fdiv(a.x, len), b.fdiv(a.y, len), b.fdiv(a.z, len)};
    return v3Select(b, gt, divided, a);
}

V3
v3Neg(Builder &b, const V3 &a)
{
    return {b.fneg(a.x), b.fneg(a.y), b.fneg(a.z)};
}

V3
v3Select(Builder &b, Val cond, const V3 &a, const V3 &c)
{
    return {b.select(cond, a.x, c.x), b.select(cond, a.y, c.y),
            b.select(cond, a.z, c.z)};
}

V3
v3Lerp(Builder &b, const V3 &a, const V3 &c, Val t)
{
    Val one_minus = b.fsub(b.constF(1.f), t);
    return v3Add(b, v3Scale(b, a, one_minus), v3Scale(b, c, t));
}

V3
v3Reflect(Builder &b, const V3 &d, const V3 &n)
{
    Val two_dn = b.fmul(b.constF(2.f), v3Dot(b, d, n));
    return v3Sub(b, d, v3Scale(b, n, two_dn));
}

V3
v3Load(Builder &b, Val addr, std::uint64_t offset)
{
    return {b.loadGlobal(addr, offset, 4), b.loadGlobal(addr, offset + 4, 4),
            b.loadGlobal(addr, offset + 8, 4)};
}

void
v3Store(Builder &b, Val addr, const V3 &v, std::uint64_t offset)
{
    b.storeGlobal(addr, v.x, offset, 4);
    b.storeGlobal(addr, v.y, offset + 4, 4);
    b.storeGlobal(addr, v.z, offset + 8, 4);
}

Val
rngHash(Builder &b, Val state)
{
    // hashU32 with explicit 32-bit masking on 64-bit registers.
    Val mask = b.constI(0xFFFFFFFFull);
    Val x = b.iand(state, mask);
    x = b.ixor(x, b.ishr(x, b.constI(16)));
    x = b.iand(b.imul(x, b.constI(0x7feb352dull)), mask);
    x = b.ixor(x, b.ishr(x, b.constI(15)));
    x = b.iand(b.imul(x, b.constI(0x846ca68bull)), mask);
    x = b.ixor(x, b.ishr(x, b.constI(16)));
    return x;
}

Val
rngInit(Builder &b, Val pixel_index, Val frame_seed)
{
    Val one = b.constI(1);
    Val seeded = b.iadd(b.iadd(pixel_index, one), frame_seed);
    Val mask = b.constI(0xFFFFFFFFull);
    return rngHash(b, b.iand(seeded, mask));
}

Val
rngNext(Builder &b, Val state_var)
{
    Val next = rngHash(b, state_var);
    b.assign(state_var, next);
    // float(state >> 8) * (1 / 2^24)
    Val top = b.ishr(next, b.constI(8));
    return b.fmul(b.u2f(top), b.constF(1.0f / 16777216.0f));
}

V3
skyColorIr(Builder &b, Val consts, const V3 &dir)
{
    Val t = b.fmul(b.constF(0.5f), b.fadd(dir.y, b.constF(1.0f)));
    Val clamped = b.fmin(b.fmax(t, b.constF(0.f)), b.constF(1.f));
    V3 horizon = v3Load(b, consts, offsetof(GpuSceneConstants, skyHorizon));
    V3 zenith = v3Load(b, consts, offsetof(GpuSceneConstants, skyZenith));
    return v3Lerp(b, horizon, zenith, clamped);
}

void
onbIr(Builder &b, const V3 &n, V3 *tangent, V3 *bitangent)
{
    // copysign(1, n.z): +1 when n.z >= 0 (the -0 case is measure zero).
    Val pos = b.fge(n.z, b.constF(0.f));
    Val sign = b.select(pos, b.constF(1.f), b.constF(-1.f));
    Val a = b.fdiv(b.constF(-1.f), b.fadd(sign, n.z));
    Val bb = b.fmul(b.fmul(n.x, n.y), a);
    tangent->x = b.fadd(b.constF(1.f),
                        b.fmul(sign, b.fmul(n.x, b.fmul(n.x, a))));
    tangent->y = b.fmul(sign, bb);
    tangent->z = b.fneg(b.fmul(sign, n.x));
    bitangent->x = bb;
    bitangent->y = b.fadd(sign, b.fmul(n.y, b.fmul(n.y, a)));
    bitangent->z = b.fneg(n.y);
}

V3
cosineSampleIr(Builder &b, Val u1, Val u2)
{
    Val r = b.fsqrt(u1);
    Val phi = b.fmul(b.constF(2.0f * 3.14159265358979323846f), u2);
    Val x = b.fmul(r, b.fcos(phi));
    Val y = b.fmul(r, b.fsin(phi));
    Val z = b.fsqrt(b.fmax(b.constF(0.f), b.fsub(b.constF(1.f), u1)));
    return {x, y, z};
}

V3
uniformSphereIr(Builder &b, Val u1, Val u2)
{
    Val z = b.fsub(b.constF(1.f), b.fmul(b.constF(2.f), u1));
    Val r = b.fsqrt(b.fmax(b.constF(0.f),
                           b.fsub(b.constF(1.f), b.fmul(z, z))));
    Val phi = b.fmul(b.constF(2.0f * 3.14159265358979323846f), u2);
    return {b.fmul(r, b.fcos(phi)), b.fmul(r, b.fsin(phi)), z};
}

Val
schlickIr(Builder &b, Val cosine, Val ior)
{
    Val one = b.constF(1.f);
    Val r0 = b.fdiv(b.fsub(one, ior), b.fadd(one, ior));
    r0 = b.fmul(r0, r0);
    Val m = b.fsub(one, cosine);
    // Mirror the reference's left-associated chain: (1-r0)*m*m*m*m*m.
    Val acc = b.fsub(one, r0);
    for (int i = 0; i < 5; ++i)
        acc = b.fmul(acc, m);
    return b.fadd(r0, acc);
}

void
cameraRayIr(Builder &b, Val camera_base, Val px, Val py, Val width,
            Val height, Val rng_state_var, V3 *origin, V3 *direction)
{
    // Mirror Camera::generateRay with jx = jy = 0.5.
    Val half = b.constF(0.5f);
    Val two = b.constF(2.f);
    Val one = b.constF(1.f);

    Val tan_half = b.loadGlobal(camera_base, offsetof(Camera, tanHalfFov));
    Val aspect = b.loadGlobal(camera_base, offsetof(Camera, aspect));
    V3 position = v3Load(b, camera_base, offsetof(Camera, position));
    V3 forward = v3Load(b, camera_base, offsetof(Camera, forward));
    V3 right = v3Load(b, camera_base, offsetof(Camera, right));
    V3 up = v3Load(b, camera_base, offsetof(Camera, up));
    Val aperture = b.loadGlobal(camera_base, offsetof(Camera, aperture));

    Val fx = b.fadd(b.u2f(px), half);
    Val fy = b.fadd(b.u2f(py), half);
    Val fw = b.u2f(width);
    Val fh = b.u2f(height);

    // ndc_x = (2*(px+jx)/width - 1) * tanHalfFov * aspect
    Val ndc_x = b.fmul(
        b.fmul(b.fsub(b.fdiv(b.fmul(two, fx), fw), one), tan_half), aspect);
    // ndc_y = (1 - 2*(py+jy)/height) * tanHalfFov
    Val ndc_y =
        b.fmul(b.fsub(one, b.fdiv(b.fmul(two, fy), fh)), tan_half);

    V3 dir = v3Normalize(
        b, v3Add(b, v3Add(b, forward, v3Scale(b, right, ndc_x)),
                 v3Scale(b, up, ndc_y)));

    // Depth of field: two RNG draws only when the aperture is open,
    // mirroring shadeReferencePixel()'s draw order.
    V3 out_origin = v3Var(b);
    V3 out_dir = v3Var(b);
    v3Assign(b, out_origin, position);
    v3Assign(b, out_dir, dir);

    Val has_dof = b.fgt(aperture, b.constF(0.f));
    b.beginIf(has_dof);
    {
        Val lx = rngNext(b, rng_state_var);
        Val ly = rngNext(b, rng_state_var);
        Val focus_dist =
            b.loadGlobal(camera_base, offsetof(Camera, focusDistance));
        Val r = b.fmul(aperture, b.fsqrt(lx));
        Val phi = b.fmul(b.constF(2.f * 3.14159265358979323846f), ly);
        V3 lens_off = v3Add(b, v3Scale(b, right, b.fmul(r, b.fcos(phi))),
                            v3Scale(b, up, b.fmul(r, b.fsin(phi))));
        Val denom = v3Dot(b, dir, forward);
        V3 focus =
            v3Add(b, position, v3Scale(b, dir, b.fdiv(focus_dist, denom)));
        V3 o2 = v3Add(b, position, lens_off);
        v3Assign(b, out_origin, o2);
        v3Assign(b, out_dir, v3Normalize(b, v3Sub(b, focus, o2)));
    }
    b.endIf();

    *origin = out_origin;
    *direction = out_dir;
}

void
traceRayIr(Builder &b, const V3 &origin, Val tmin, const V3 &dir, Val tmax,
           std::uint32_t flags)
{
    Val f = b.constI(flags);
    b.traceRay(origin.x, origin.y, origin.z, tmin, dir.x, dir.y, dir.z,
               tmax, f);
}

} // namespace vksim::wl
