/**
 * @file
 * GPU-visible data layouts shared between the host (descriptor upload)
 * and the simulated shaders (field loads): camera, materials, scene
 * constants, instance records, triangle and procedural primitive records,
 * the framebuffer, and the payload layout in rt_alloc_mem scratch.
 */

#ifndef VKSIM_WORKLOADS_LAYOUT_H
#define VKSIM_WORKLOADS_LAYOUT_H

#include <cstdint>

#include "scene/material.h"

namespace vksim::wl {

/** Descriptor set bindings used by all workloads. */
enum Binding : unsigned
{
    kBindCamera = 0,
    kBindMaterials = 1,
    kBindFramebuffer = 2,
    kBindConstants = 3,
    kBindInstances = 4,
    kBindAccum = 5 ///< ACC cross-frame accumulation buffer
};

/**
 * ACC accumulation buffer layout: a 16-byte header (u32 frame count,
 * rest reserved) followed by one running RGB sum per pixel at the
 * framebuffer stride. The host bumps the count before each frame; the
 * shader adds its sample and resolves sum / count into the framebuffer.
 */
inline constexpr std::uint64_t kAccumHeaderBytes = 16;

/** Scene constants uniform (binding 3). */
struct GpuSceneConstants
{
    float sunDir[3];
    float pad0;
    float sunColor[3];
    float pad1;
    float skyHorizon[3];
    float pad2;
    float skyZenith[3];
    float ambientStrength;
    std::uint32_t frameSeed;
    std::uint32_t aoSamples;
    float aoRadius;
    std::uint32_t maxBounces;
    std::uint32_t maxDepth;
    std::uint32_t pad3[3];
};

static_assert(sizeof(GpuSceneConstants) == 96);

/** Per-instance shading record (binding 4, stride 96). */
struct GpuInstanceRecord
{
    std::uint64_t triBase;  ///< device address of triangle records
    std::uint64_t primBase; ///< device address of procedural records
    std::int32_t materialIndex;
    std::int32_t kind;      ///< 0 = triangles, 1 = procedural
    float objectToWorld[9]; ///< row-major 3x3 (normals / directions)
    float pad[9];
};

static_assert(sizeof(GpuInstanceRecord) == 96);

/** One triangle's vertices (48-byte stride). */
struct GpuTriangleRecord
{
    float v0[3];
    float v1[3];
    float v2[3];
    float pad[3];
};

static_assert(sizeof(GpuTriangleRecord) == 48);

/** One procedural primitive's parameters (64-byte stride). */
struct GpuProceduralRecord
{
    float center[3];
    float radius;
    float lo[3];
    std::int32_t shape; ///< ProceduralShape
    float hi[3];
    std::int32_t materialIndex;
    float pad[4];
};

static_assert(sizeof(GpuProceduralRecord) == 64);

/** Framebuffer pixel stride (linear RGB floats). */
inline constexpr std::uint64_t kFramebufferStride = 12;

/** Payload layout inside the per-thread rt_alloc_mem scratch (slot 0). */
namespace payload {
inline constexpr std::uint64_t kHit = 0;        ///< u32: 1 = surface hit
inline constexpr std::uint64_t kT = 4;          ///< f32 hit distance
inline constexpr std::uint64_t kPosX = 8;       ///< world hit position
inline constexpr std::uint64_t kNormX = 20;     ///< world shading normal
inline constexpr std::uint64_t kAlbedoX = 32;
inline constexpr std::uint64_t kMatKind = 44;   ///< MaterialKind
inline constexpr std::uint64_t kEmissionX = 48; ///< emission / miss sky
inline constexpr std::uint64_t kFuzz = 60;
inline constexpr std::uint64_t kIor = 64;
inline constexpr std::uint64_t kFrontFace = 68; ///< u32
inline constexpr std::uint64_t kBaryU = 72;
inline constexpr std::uint64_t kBaryV = 76;
} // namespace payload

} // namespace vksim::wl

#endif // VKSIM_WORKLOADS_LAYOUT_H
