/**
 * @file
 * IR-building helper library for authoring workload shaders: 3-vector
 * value bundles, vector math that mirrors src/geom bit-for-bit, the
 * hash-based shader RNG (matching reftrace's ShaderRng), camera ray
 * generation, payload access, and sky shading.
 *
 * Every helper emits operations in exactly the order the C++ reference
 * renderer evaluates them, so the simulated and reference images agree
 * to floating-point identity wherever control flow does.
 */

#ifndef VKSIM_WORKLOADS_SHADERLIB_H
#define VKSIM_WORKLOADS_SHADERLIB_H

#include "nir/nir.h"
#include "workloads/layout.h"

namespace vksim::wl {

using nir::Builder;
using nir::Val;

/** A 3-vector of IR values. */
struct V3
{
    Val x = nir::kNoVal;
    Val y = nir::kNoVal;
    Val z = nir::kNoVal;
};

// --- construction -------------------------------------------------------
V3 v3Const(Builder &b, float x, float y, float z);
V3 v3Splat(Builder &b, Val s);

/** Three mutable variables (loop-carried vectors). */
V3 v3Var(Builder &b);
void v3Assign(Builder &b, const V3 &var, const V3 &value);

// --- arithmetic (evaluation order mirrors geom/vec.h) --------------------
V3 v3Add(Builder &b, const V3 &a, const V3 &c);
V3 v3Sub(Builder &b, const V3 &a, const V3 &c);
V3 v3Mul(Builder &b, const V3 &a, const V3 &c); ///< component-wise
V3 v3Scale(Builder &b, const V3 &a, Val s);
Val v3Dot(Builder &b, const V3 &a, const V3 &c);
V3 v3Cross(Builder &b, const V3 &a, const V3 &c);
Val v3Length(Builder &b, const V3 &a);
V3 v3Normalize(Builder &b, const V3 &a);
V3 v3Neg(Builder &b, const V3 &a);
V3 v3Select(Builder &b, Val cond, const V3 &a, const V3 &c);
/** a*(1-t) + c*t, mirroring geom lerp(). */
V3 v3Lerp(Builder &b, const V3 &a, const V3 &c, Val t);
/** reflect(d, n) = d - 2*dot(d,n)*n. */
V3 v3Reflect(Builder &b, const V3 &d, const V3 &n);

// --- memory ---------------------------------------------------------------
V3 v3Load(Builder &b, Val addr, std::uint64_t offset);
void v3Store(Builder &b, Val addr, const V3 &v, std::uint64_t offset);

// --- RNG (mirrors reftrace ShaderRng) -------------------------------------
/** state = hashU32(state); returns the new state value (32-bit). */
Val rngHash(Builder &b, Val state);
/** Initialize: hash(pixel_index + 1 + frame_seed). */
Val rngInit(Builder &b, Val pixel_index, Val frame_seed);
/** Draw: updates `state_var` in place, returns float in [0,1). */
Val rngNext(Builder &b, Val state_var);

// --- shading helpers --------------------------------------------------------
/** Sky gradient; mirrors reftrace skyColor(). `consts` = constants base. */
V3 skyColorIr(Builder &b, Val consts, const V3 &dir);

/** Orthonormal basis around n; returns tangent/bitangent (Duff et al.). */
void onbIr(Builder &b, const V3 &n, V3 *tangent, V3 *bitangent);

/** Cosine-weighted hemisphere sample from u1,u2 (local frame). */
V3 cosineSampleIr(Builder &b, Val u1, Val u2);

/** Uniform sphere sample from u1,u2. */
V3 uniformSphereIr(Builder &b, Val u1, Val u2);

/** Schlick fresnel approximation. */
Val schlickIr(Builder &b, Val cosine, Val ior);

/**
 * Generate the camera primary ray for this thread, mirroring
 * Camera::generateRay with centre jitter; draws two RNG values for the
 * lens when the camera has a non-zero aperture.
 * Outputs origin/direction value triples.
 */
void cameraRayIr(Builder &b, Val camera_base, Val px, Val py, Val width,
                 Val height, Val rng_state_var, V3 *origin, V3 *direction);

/**
 * Emit a traceRay call: stores nothing itself; the builder intrinsic
 * handles the frame. Flags is an immediate convenience.
 */
void traceRayIr(Builder &b, const V3 &origin, Val tmin, const V3 &dir,
                Val tmax, std::uint32_t flags);

} // namespace vksim::wl

#endif // VKSIM_WORKLOADS_SHADERLIB_H
