/**
 * @file
 * The evaluation workloads: the five of paper Table IV plus the
 * multi-stage pipeline set (hybrid, ray-query-from-compute,
 * any-hit-heavy, accumulating) — scene + shader set + pipeline +
 * descriptor buffers, with helpers to render them on the functional
 * simulator or the CPU reference renderer.
 */

#ifndef VKSIM_WORKLOADS_WORKLOAD_H
#define VKSIM_WORKLOADS_WORKLOAD_H

#include <memory>

#include "reftrace/renderer.h"
#include "scene/scenegen.h"
#include "vptx/exec.h"
#include "vulkan/device.h"
#include "workloads/layout.h"

namespace vksim::service {
class ArtifactCache;
} // namespace vksim::service

namespace vksim::wl {

/** Workload identifiers, named as in the paper. */
enum class WorkloadId
{
    TRI,
    REF,
    EXT,
    RTV5,
    RTV6,
    HYB, ///< hybrid-renderer proxy: shadow + reflection rays per hit
    RQC, ///< inline ray query from a compute shader (no SBT)
    AHA, ///< any-hit-heavy alpha test (immediate any-hit suspension)
    ACC  ///< multi-frame accumulating path tracer
};

/** All workloads, Table IV order then the pipeline-stage additions. */
inline constexpr WorkloadId kAllWorkloads[] = {
    WorkloadId::TRI, WorkloadId::REF, WorkloadId::EXT, WorkloadId::RTV5,
    WorkloadId::RTV6, WorkloadId::HYB, WorkloadId::RQC, WorkloadId::AHA,
    WorkloadId::ACC};

const char *workloadName(WorkloadId id);

/** Knobs controlling scene scale and shading effort. */
struct WorkloadParams
{
    unsigned width = 64;
    unsigned height = 64;
    float extScale = 0.15f;   ///< EXT tessellation fraction (1 = paper)
    unsigned rtv5Detail = 4;  ///< statue subdivision (7 = paper scale)
    unsigned rtv6Prims = 3568;///< procedural primitive count (paper value)
    ShadingParams shading;    ///< per-algorithm tunables
    bool fcc = false;         ///< lower traceRay with FCC (Algorithm 3)
    /** EXT only: use the divergent raygen (ITS microbenchmark). */
    bool divergentRaygen = false;
    /** ACC: frames accumulated through the cross-frame buffer. */
    unsigned frames = 1;
};

/** Paper-scale parameters for Table IV reproduction. */
WorkloadParams paperScaleParams(WorkloadId id);

/** One fully assembled workload. */
class Workload
{
  public:
    /**
     * Assemble the workload: scene, BVH, pipeline, descriptors, launch.
     * With a non-null `artifacts` cache the expensive build products
     * (serialized BVH, translated pipeline) are fetched from / inserted
     * into the cache instead of always being rebuilt; the resulting
     * device memory is bit-identical either way.
     */
    Workload(WorkloadId id, const WorkloadParams &params,
             service::ArtifactCache *artifacts = nullptr);

    WorkloadId id() const { return id_; }
    const char *name() const { return workloadName(id_); }
    const WorkloadParams &params() const { return params_; }
    const Scene &scene() const { return scene_; }
    Device &device() { return device_; }
    const AccelStruct &accel() const { return accel_; }
    const RayTracingPipeline &pipeline() const { return pipeline_; }
    vptx::LaunchContext &launch() { return launch_.context(); }
    const vptx::LaunchContext &launch() const { return launch_.context(); }
    Addr framebuffer() const { return framebufferAddr_; }
    /** ACC only: the cross-frame accumulation buffer (0 otherwise). */
    Addr accumBuffer() const { return accumAddr_; }
    ShadingMode shadingMode() const;

    /**
     * Prepare device memory for frame `frame` of a multi-frame run:
     * bumps the accumulation header's frame count and rotates the
     * constants' frameSeed. Frame 0 state is what construction leaves
     * behind, so single-frame runs never need to call this.
     */
    void beginFrame(unsigned frame);

    /**
     * Configure a CpuTracer to mirror this workload's pipeline modes
     * (immediate any-hit suspension + the alpha-test verdict). Applied
     * to the internal reference tracer at construction; the service
     * calls it on the differential checker's tracer too.
     */
    void configureTracer(CpuTracer *tracer) const;

    /** Whether the BVH came from the artifact cache. @{ */
    bool bvhCacheHit() const { return bvhCacheHit_; }
    bool pipelineCacheHit() const { return pipelineCacheHit_; }
    /** @} */

    /**
     * Artifact-cache content keys (0 when built without a cache). Jobs
     * sharing a key share the artifact; batch reports group on these
     * because key sharing — unlike the hit/miss flags — is independent
     * of which job happened to build first. @{
     */
    std::uint64_t bvhKey() const { return bvhKey_; }
    std::uint64_t pipelineKey() const { return pipelineKey_; }
    /** @} */

    /**
     * Run the launch on the functional simulator and return the rendered
     * image. `stats_out` (optional) receives instruction-mix counters.
     */
    Image runFunctional(
        vptx::WarpCflow::Mode mode = vptx::WarpCflow::Mode::Stack,
        StatGroup *stats_out = nullptr);

    /** Read the framebuffer contents (after a run). */
    Image readFramebuffer() const;

    /**
     * Render the same image with the CPU reference renderer.
     * `threads` follows renderReference(): 0 = auto, 1 = serial.
     */
    Image renderReferenceImage(TraceCounters *counters = nullptr,
                               unsigned threads = 1) const;

    /** Average BVH nodes visited per ray (Table IV). */
    double averageNodesPerRay() const;

  private:
    void buildShaders();
    void buildDescriptors();

    WorkloadId id_;
    WorkloadParams params_;
    Scene scene_;
    Device device_;
    AccelStruct accel_;
    std::vector<nir::Shader> shaderStore_;
    RayTracingPipeline pipeline_;
    xlate::PipelineDesc pipeDesc_;
    DescriptorSet descriptors_;
    Launch launch_;
    Addr framebufferAddr_ = 0;
    Addr accumAddr_ = 0;
    bool bvhCacheHit_ = false;
    bool pipelineCacheHit_ = false;
    std::uint64_t bvhKey_ = 0;
    std::uint64_t pipelineKey_ = 0;
    std::unique_ptr<CpuTracer> tracer_;
};

} // namespace vksim::wl

#endif // VKSIM_WORKLOADS_WORKLOAD_H
