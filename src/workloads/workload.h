/**
 * @file
 * The five evaluation workloads (paper Table IV): scene + shader set +
 * pipeline + descriptor buffers, with helpers to render them on the
 * functional simulator or the CPU reference renderer.
 */

#ifndef VKSIM_WORKLOADS_WORKLOAD_H
#define VKSIM_WORKLOADS_WORKLOAD_H

#include <memory>

#include "reftrace/renderer.h"
#include "scene/scenegen.h"
#include "vptx/exec.h"
#include "vulkan/device.h"
#include "workloads/layout.h"

namespace vksim::service {
class ArtifactCache;
} // namespace vksim::service

namespace vksim::wl {

/** Workload identifiers, named as in the paper. */
enum class WorkloadId
{
    TRI,
    REF,
    EXT,
    RTV5,
    RTV6
};

/** All workloads, in Table IV order. */
inline constexpr WorkloadId kAllWorkloads[] = {
    WorkloadId::TRI, WorkloadId::REF, WorkloadId::EXT, WorkloadId::RTV5,
    WorkloadId::RTV6};

const char *workloadName(WorkloadId id);

/** Knobs controlling scene scale and shading effort. */
struct WorkloadParams
{
    unsigned width = 64;
    unsigned height = 64;
    float extScale = 0.15f;   ///< EXT tessellation fraction (1 = paper)
    unsigned rtv5Detail = 4;  ///< statue subdivision (7 = paper scale)
    unsigned rtv6Prims = 3568;///< procedural primitive count (paper value)
    ShadingParams shading;    ///< per-algorithm tunables
    bool fcc = false;         ///< lower traceRay with FCC (Algorithm 3)
    /** EXT only: use the divergent raygen (ITS microbenchmark). */
    bool divergentRaygen = false;
};

/** Paper-scale parameters for Table IV reproduction. */
WorkloadParams paperScaleParams(WorkloadId id);

/** One fully assembled workload. */
class Workload
{
  public:
    /**
     * Assemble the workload: scene, BVH, pipeline, descriptors, launch.
     * With a non-null `artifacts` cache the expensive build products
     * (serialized BVH, translated pipeline) are fetched from / inserted
     * into the cache instead of always being rebuilt; the resulting
     * device memory is bit-identical either way.
     */
    Workload(WorkloadId id, const WorkloadParams &params,
             service::ArtifactCache *artifacts = nullptr);

    WorkloadId id() const { return id_; }
    const char *name() const { return workloadName(id_); }
    const WorkloadParams &params() const { return params_; }
    const Scene &scene() const { return scene_; }
    Device &device() { return device_; }
    const AccelStruct &accel() const { return accel_; }
    const RayTracingPipeline &pipeline() const { return pipeline_; }
    vptx::LaunchContext &launch() { return launch_.context(); }
    const vptx::LaunchContext &launch() const { return launch_.context(); }
    Addr framebuffer() const { return framebufferAddr_; }
    ShadingMode shadingMode() const;

    /** Whether the BVH came from the artifact cache. @{ */
    bool bvhCacheHit() const { return bvhCacheHit_; }
    bool pipelineCacheHit() const { return pipelineCacheHit_; }
    /** @} */

    /**
     * Artifact-cache content keys (0 when built without a cache). Jobs
     * sharing a key share the artifact; batch reports group on these
     * because key sharing — unlike the hit/miss flags — is independent
     * of which job happened to build first. @{
     */
    std::uint64_t bvhKey() const { return bvhKey_; }
    std::uint64_t pipelineKey() const { return pipelineKey_; }
    /** @} */

    /**
     * Run the launch on the functional simulator and return the rendered
     * image. `stats_out` (optional) receives instruction-mix counters.
     */
    Image runFunctional(
        vptx::WarpCflow::Mode mode = vptx::WarpCflow::Mode::Stack,
        StatGroup *stats_out = nullptr);

    /** Read the framebuffer contents (after a run). */
    Image readFramebuffer() const;

    /**
     * Render the same image with the CPU reference renderer.
     * `threads` follows renderReference(): 0 = auto, 1 = serial.
     */
    Image renderReferenceImage(TraceCounters *counters = nullptr,
                               unsigned threads = 1) const;

    /** Average BVH nodes visited per ray (Table IV). */
    double averageNodesPerRay() const;

  private:
    void buildShaders();
    void buildDescriptors();

    WorkloadId id_;
    WorkloadParams params_;
    Scene scene_;
    Device device_;
    AccelStruct accel_;
    std::vector<nir::Shader> shaderStore_;
    RayTracingPipeline pipeline_;
    xlate::PipelineDesc pipeDesc_;
    DescriptorSet descriptors_;
    Launch launch_;
    Addr framebufferAddr_ = 0;
    bool bvhCacheHit_ = false;
    bool pipelineCacheHit_ = false;
    std::uint64_t bvhKey_ = 0;
    std::uint64_t pipelineKey_ = 0;
    std::unique_ptr<CpuTracer> tracer_;
};

} // namespace vksim::wl

#endif // VKSIM_WORKLOADS_WORKLOAD_H
