#include "workloads/shaders.h"

#include <cstddef>

#include "accel/traversal.h"
#include "scene/camera.h"
#include "vptx/rtstack.h"
#include "workloads/shaderlib.h"

namespace vksim::wl {

namespace {

using namespace vptx::frame;
using nir::Builder;
using nir::Val;

constexpr float kOriginEpsilon = 1e-3f;
constexpr std::uint32_t kOcclusionFlags =
    kRayFlagTerminateOnFirstHit | kRayFlagSkipClosestHit;

/** Common raygen prologue: pixel coords, RNG state var, payload addr. */
struct RaygenCommon
{
    Val px, py, width, height;
    Val pixelIndex;
    Val rngState; ///< variable
    Val payload;
    Val consts;
    Val camera;
};

RaygenCommon
raygenPrologue(Builder &b)
{
    RaygenCommon c;
    c.px = b.launchId(0);
    c.py = b.launchId(1);
    c.width = b.launchSize(0);
    c.height = b.launchSize(1);
    c.pixelIndex = b.iadd(b.imul(c.py, c.width), c.px);
    c.consts = b.descBase(kBindConstants);
    Val seed = b.loadGlobal(c.consts,
                            offsetof(GpuSceneConstants, frameSeed), 4);
    c.rngState = b.var();
    b.assign(c.rngState, rngInit(b, c.pixelIndex, seed));
    c.payload = b.rtAllocMem(0);
    c.camera = b.descBase(kBindCamera);
    return c;
}

/** Write the final colour to the framebuffer. */
void
writePixel(Builder &b, const RaygenCommon &c, const V3 &color)
{
    Val fb = b.descBase(kBindFramebuffer);
    Val offset = b.imul(c.pixelIndex, b.constI(kFramebufferStride));
    Val addr = b.iadd(fb, offset);
    v3Store(b, addr, color, 0);
}

/** Trace an occlusion ray; returns 1.0 when the path is clear. */
Val
occlusionIr(Builder &b, const RaygenCommon &c, const V3 &origin,
            const V3 &dir, Val tmax)
{
    // Default hit=1; the miss shader clears it.
    b.storeGlobal(c.payload, b.constI(1), payload::kHit, 4);
    traceRayIr(b, origin, b.constF(1e-4f), dir, tmax, kOcclusionFlags);
    Val h = b.loadGlobal(c.payload, payload::kHit, 4);
    return b.select(b.ieq(h, b.constI(0)), b.constF(1.f), b.constF(0.f));
}

/** Load the payload's surface fields. */
struct SurfaceVals
{
    V3 pos, normal, albedo, emission;
    Val matKind, fuzz, ior, frontFace;
};

SurfaceVals
loadSurface(Builder &b, Val payload)
{
    SurfaceVals s;
    s.pos = v3Load(b, payload, payload::kPosX);
    s.normal = v3Load(b, payload, payload::kNormX);
    s.albedo = v3Load(b, payload, payload::kAlbedoX);
    s.emission = v3Load(b, payload, payload::kEmissionX);
    s.matKind = b.loadGlobal(payload, payload::kMatKind, 4);
    s.fuzz = b.loadGlobal(payload, payload::kFuzz, 4);
    s.ior = b.loadGlobal(payload, payload::kIor, 4);
    s.frontFace = b.loadGlobal(payload, payload::kFrontFace, 4);
    return s;
}

} // namespace

nir::Shader
makeMissShader()
{
    Builder b("miss_sky", vptx::ShaderStage::Miss);
    Val f = b.frameAddr();
    V3 dir = v3Load(b, f, kRayDirX);
    Val consts = b.descBase(kBindConstants);
    V3 sky = skyColorIr(b, consts, dir);
    Val pay = b.rtAllocMem(0);
    v3Store(b, pay, sky, payload::kEmissionX);
    b.storeGlobal(pay, b.constI(0), payload::kHit, 4);
    return b.finish();
}

nir::Shader
makeClosestHitBary()
{
    Builder b("chit_bary", vptx::ShaderStage::ClosestHit);
    Val f = b.frameAddr();
    Val u = b.loadGlobal(f, kHitU, 4);
    Val v = b.loadGlobal(f, kHitV, 4);
    Val one = b.constF(1.f);
    V3 color{b.fsub(b.fsub(one, u), v), u, v};
    Val pay = b.rtAllocMem(0);
    v3Store(b, pay, color, payload::kEmissionX);
    b.storeGlobal(pay, b.constI(1), payload::kHit, 4);
    return b.finish();
}

nir::Shader
makeClosestHitSurface()
{
    Builder b("chit_surface", vptx::ShaderStage::ClosestHit);
    Val f = b.frameAddr();

    Val t = b.loadGlobal(f, kHitT, 4);
    Val u = b.loadGlobal(f, kHitU, 4);
    Val v = b.loadGlobal(f, kHitV, 4);
    Val inst = b.loadGlobal(f, kHitInstance, 4);
    Val prim = b.loadGlobal(f, kHitPrimitive, 4);
    Val custom = b.loadGlobal(f, kHitCustomIndex, 4);
    Val hit_kind = b.loadGlobal(f, kHitKind, 4);

    V3 o = v3Load(b, f, kRayOriginX);
    V3 d = v3Load(b, f, kRayDirX);
    V3 pos = v3Add(b, o, v3Scale(b, d, t)); // ray.at(t)

    Val inst_table = b.descBase(kBindInstances);
    Val inst_rec = b.iadd(
        inst_table, b.imul(inst, b.constI(sizeof(GpuInstanceRecord))));

    V3 n_obj = v3Var(b);
    Val mat_idx = b.var();

    Val is_tri =
        b.ieq(hit_kind, b.constI(static_cast<int>(HitKind::Triangle)));
    b.beginIf(is_tri);
    {
        Val tri_base = b.loadGlobal(
            inst_rec, offsetof(GpuInstanceRecord, triBase), 8);
        Val tri = b.iadd(tri_base,
                         b.imul(prim, b.constI(sizeof(GpuTriangleRecord))));
        V3 v0 = v3Load(b, tri, offsetof(GpuTriangleRecord, v0));
        V3 v1 = v3Load(b, tri, offsetof(GpuTriangleRecord, v1));
        V3 v2 = v3Load(b, tri, offsetof(GpuTriangleRecord, v2));
        V3 n = v3Normalize(b, v3Cross(b, v3Sub(b, v1, v0),
                                      v3Sub(b, v2, v0)));
        v3Assign(b, n_obj, n);
        b.assign(mat_idx, custom);
    }
    b.beginElse();
    {
        Val prim_base = b.loadGlobal(
            inst_rec, offsetof(GpuInstanceRecord, primBase), 8);
        Val pr = b.iadd(
            prim_base,
            b.imul(prim, b.constI(sizeof(GpuProceduralRecord))));
        b.assign(mat_idx,
                 b.loadGlobal(pr,
                              offsetof(GpuProceduralRecord, materialIndex),
                              4));
        Val shape =
            b.loadGlobal(pr, offsetof(GpuProceduralRecord, shape), 4);
        Val is_sphere = b.ieq(shape, b.constI(0));
        b.beginIf(is_sphere);
        {
            V3 center =
                v3Load(b, pr, offsetof(GpuProceduralRecord, center));
            Val radius = b.loadGlobal(
                pr, offsetof(GpuProceduralRecord, radius), 4);
            V3 rel = v3Sub(b, pos, center);
            v3Assign(b, n_obj,
                     {b.fdiv(rel.x, radius), b.fdiv(rel.y, radius),
                      b.fdiv(rel.z, radius)});
        }
        b.beginElse();
        {
            V3 lo = v3Load(b, pr, offsetof(GpuProceduralRecord, lo));
            V3 hi = v3Load(b, pr, offsetof(GpuProceduralRecord, hi));
            Val half_c = b.constF(0.5f);
            V3 c = v3Scale(b, v3Add(b, lo, hi), half_c);
            V3 half = v3Scale(b, v3Sub(b, hi, lo), half_c);
            V3 rel = v3Sub(b, pos, c);
            V3 scaled{b.fdiv(rel.x, half.x), b.fdiv(rel.y, half.y),
                      b.fdiv(rel.z, half.z)};
            Val ax = b.fabsv(scaled.x);
            Val ay = b.fabsv(scaled.y);
            Val az = b.fabsv(scaled.z);
            // maxDimension: x wins on ties with y and z; else y vs z.
            Val is_x = b.iand(b.fge(ax, ay), b.fge(ax, az));
            Val is_y = b.iand(b.ixor(is_x, b.constI(1)), b.fge(ay, az));
            Val is_z = b.iand(b.ixor(is_x, b.constI(1)),
                              b.ixor(is_y, b.constI(1)));
            Val zero = b.constF(0.f);
            Val onef = b.constF(1.f);
            Val neg1 = b.constF(-1.f);
            auto signOf = [&](Val s) {
                return b.select(b.fgt(s, zero), onef, neg1);
            };
            v3Assign(b, n_obj,
                     {b.select(is_x, signOf(scaled.x), zero),
                      b.select(is_y, signOf(scaled.y), zero),
                      b.select(is_z, signOf(scaled.z), zero)});
        }
        b.endIf();
    }
    b.endIf();

    // World normal: objectToWorld (3x3) * n_obj, then normalize.
    Val m = b.var();
    b.assign(m, b.iadd(inst_rec,
                       b.constI(offsetof(GpuInstanceRecord, objectToWorld))));
    V3 row0 = v3Load(b, m, 0);
    V3 row1 = v3Load(b, m, 12);
    V3 row2 = v3Load(b, m, 24);
    V3 n_world = v3Normalize(
        b, {v3Dot(b, row0, n_obj), v3Dot(b, row1, n_obj),
            v3Dot(b, row2, n_obj)});

    Val front = b.flt(v3Dot(b, n_world, d), b.constF(0.f));
    V3 n_final = v3Select(b, front, n_world, v3Neg(b, n_world));

    // Material record.
    Val materials = b.descBase(kBindMaterials);
    Val mat = b.iadd(materials, b.imul(mat_idx, b.constI(sizeof(Material))));
    V3 albedo = v3Load(b, mat, offsetof(Material, albedo));
    Val mkind = b.loadGlobal(mat, offsetof(Material, kind), 4);
    V3 emission = v3Load(b, mat, offsetof(Material, emission));
    Val fuzz = b.loadGlobal(mat, offsetof(Material, fuzz), 4);
    Val ior = b.loadGlobal(mat, offsetof(Material, ior), 4);

    // Payload.
    Val pay = b.rtAllocMem(0);
    b.storeGlobal(pay, b.constI(1), payload::kHit, 4);
    b.storeGlobal(pay, t, payload::kT, 4);
    v3Store(b, pay, pos, payload::kPosX);
    v3Store(b, pay, n_final, payload::kNormX);
    v3Store(b, pay, albedo, payload::kAlbedoX);
    b.storeGlobal(pay, mkind, payload::kMatKind, 4);
    v3Store(b, pay, emission, payload::kEmissionX);
    b.storeGlobal(pay, fuzz, payload::kFuzz, 4);
    b.storeGlobal(pay, ior, payload::kIor, 4);
    b.storeGlobal(pay, front, payload::kFrontFace, 4);
    b.storeGlobal(pay, u, payload::kBaryU, 4);
    b.storeGlobal(pay, v, payload::kBaryV, 4);
    return b.finish();
}

nir::Shader
makeRaygenBary()
{
    Builder b("raygen_bary", vptx::ShaderStage::RayGen);
    RaygenCommon c = raygenPrologue(b);
    V3 origin, dir;
    cameraRayIr(b, c.camera, c.px, c.py, c.width, c.height, c.rngState,
                &origin, &dir);
    traceRayIr(b, origin, b.constF(1e-4f), dir, b.constF(1e30f), 0);
    // Both the bary closest-hit and the miss shader leave the colour in
    // the payload emission slot.
    V3 color = v3Load(b, c.payload, payload::kEmissionX);
    writePixel(b, c, color);
    return b.finish();
}

nir::Shader
makeRaygenWhitted()
{
    Builder b("raygen_whitted", vptx::ShaderStage::RayGen);
    RaygenCommon c = raygenPrologue(b);
    V3 ray_o, ray_d;
    cameraRayIr(b, c.camera, c.px, c.py, c.width, c.height, c.rngState,
                &ray_o, &ray_d);

    V3 color = v3Var(b);
    v3Assign(b, color, v3Const(b, 0, 0, 0));
    V3 atten = v3Var(b);
    v3Assign(b, atten, v3Const(b, 1, 1, 1));
    V3 o = v3Var(b);
    v3Assign(b, o, ray_o);
    V3 d = v3Var(b);
    v3Assign(b, d, ray_d);
    Val depth = b.var();
    b.assign(depth, b.constI(0));
    Val max_depth = b.loadGlobal(
        c.consts, offsetof(GpuSceneConstants, maxDepth), 4);
    V3 sun_dir = v3Load(b, c.consts, offsetof(GpuSceneConstants, sunDir));
    V3 sun_color =
        v3Load(b, c.consts, offsetof(GpuSceneConstants, sunColor));
    V3 sky_horizon =
        v3Load(b, c.consts, offsetof(GpuSceneConstants, skyHorizon));
    Val ambient_k = b.loadGlobal(
        c.consts, offsetof(GpuSceneConstants, ambientStrength), 4);

    b.beginLoop();
    {
        b.breakIf(b.ige(depth, max_depth));
        traceRayIr(b, o, b.constF(1e-4f), d, b.constF(1e30f), 0);
        Val hit = b.loadGlobal(c.payload, payload::kHit, 4);
        b.beginIf(b.ieq(hit, b.constI(0)));
        {
            V3 sky = v3Load(b, c.payload, payload::kEmissionX);
            v3Assign(b, color, v3Add(b, color, v3Mul(b, atten, sky)));
            b.breakLoop();
        }
        b.endIf();

        SurfaceVals s = loadSurface(b, c.payload);
        Val is_mirror = b.ior(
            b.ieq(s.matKind,
                  b.constI(static_cast<int>(MaterialKind::Mirror))),
            b.ieq(s.matKind,
                  b.constI(static_cast<int>(MaterialKind::Metal))));
        b.beginIf(is_mirror);
        {
            v3Assign(b, atten, v3Mul(b, atten, s.albedo));
            V3 next_o = v3Add(
                b, s.pos, v3Scale(b, s.normal, b.constF(kOriginEpsilon)));
            V3 next_d = v3Reflect(b, v3Normalize(b, d), s.normal);
            v3Assign(b, o, next_o);
            v3Assign(b, d, next_d);
        }
        b.beginElse();
        {
            V3 base = v3Add(
                b, s.pos, v3Scale(b, s.normal, b.constF(kOriginEpsilon)));
            Val ndotl =
                b.fmax(b.constF(0.f), v3Dot(b, s.normal, sun_dir));
            Val lit = b.var();
            b.assign(lit, b.constF(0.f));
            b.beginIf(b.fgt(ndotl, b.constF(0.f)));
            {
                Val clear =
                    occlusionIr(b, c, base, sun_dir, b.constF(1e30f));
                b.assign(lit, clear);
            }
            b.endIf();
            V3 direct = v3Scale(b, sun_color, b.fmul(ndotl, lit));
            V3 ambient = v3Scale(b, sky_horizon, ambient_k);
            V3 shade = v3Mul(b, v3Mul(b, atten, s.albedo),
                             v3Add(b, direct, ambient));
            v3Assign(b, color, v3Add(b, color, shade));
            b.breakLoop();
        }
        b.endIf();
        b.assign(depth, b.iadd(depth, b.constI(1)));
    }
    b.endLoop();

    writePixel(b, c, color);
    return b.finish();
}

namespace {

/**
 * The AO shading body shared by the plain and the divergent raygen:
 * primary ray, sun shadow, aoSamples cosine-hemisphere occlusion rays.
 * `ao_radius_scale` perturbs the AO radius so the two arms of the
 * divergent variant do distinct work (the paper's injected divergence).
 */
void
emitAoBody(Builder &b, RaygenCommon &c, const V3 &color,
           float ao_radius_scale)
{
    V3 origin, dir;
    cameraRayIr(b, c.camera, c.px, c.py, c.width, c.height, c.rngState,
                &origin, &dir);
    traceRayIr(b, origin, b.constF(1e-4f), dir, b.constF(1e30f), 0);
    Val hit = b.loadGlobal(c.payload, payload::kHit, 4);
    b.beginIf(b.ieq(hit, b.constI(0)));
    {
        v3Assign(b, color, v3Load(b, c.payload, payload::kEmissionX));
    }
    b.beginElse();
    {
        SurfaceVals s = loadSurface(b, c.payload);
        V3 base = v3Add(b, s.pos,
                        v3Scale(b, s.normal, b.constF(kOriginEpsilon)));
        V3 sun_dir =
            v3Load(b, c.consts, offsetof(GpuSceneConstants, sunDir));
        V3 sun_color =
            v3Load(b, c.consts, offsetof(GpuSceneConstants, sunColor));
        Val ndotl = b.fmax(b.constF(0.f), v3Dot(b, s.normal, sun_dir));
        Val lit = b.var();
        b.assign(lit, b.constF(0.f));
        b.beginIf(b.fgt(ndotl, b.constF(0.f)));
        {
            Val clear = occlusionIr(b, c, base, sun_dir, b.constF(1e30f));
            b.assign(lit, clear);
        }
        b.endIf();

        V3 tangent, bitangent;
        onbIr(b, s.normal, &tangent, &bitangent);
        Val visible = b.var();
        b.assign(visible, b.constF(0.f));
        Val ao_samples = b.loadGlobal(
            c.consts, offsetof(GpuSceneConstants, aoSamples), 4);
        Val ao_radius = b.fmul(
            b.loadGlobal(c.consts, offsetof(GpuSceneConstants, aoRadius),
                         4),
            b.constF(ao_radius_scale));
        Val si = b.var();
        b.assign(si, b.constI(0));
        b.beginLoop();
        {
            b.breakIf(b.ige(si, ao_samples));
            Val u1 = rngNext(b, c.rngState);
            Val u2 = rngNext(b, c.rngState);
            V3 local = cosineSampleIr(b, u1, u2);
            // onb.toWorld: tangent*x + bitangent*y + normal*z
            V3 ao_dir = v3Add(
                b,
                v3Add(b, v3Scale(b, tangent, local.x),
                      v3Scale(b, bitangent, local.y)),
                v3Scale(b, s.normal, local.z));
            Val clear = occlusionIr(b, c, base, ao_dir, ao_radius);
            b.assign(visible, b.fadd(visible, clear));
            b.assign(si, b.iadd(si, b.constI(1)));
        }
        b.endLoop();
        Val ao = b.fdiv(visible, b.u2f(ao_samples));

        Val ambient_k = b.loadGlobal(
            c.consts, offsetof(GpuSceneConstants, ambientStrength), 4);
        V3 sky_horizon =
            v3Load(b, c.consts, offsetof(GpuSceneConstants, skyHorizon));
        V3 direct = v3Scale(b, sun_color, b.fmul(ndotl, lit));
        V3 ambient = v3Scale(b, sky_horizon, b.fmul(ambient_k, ao));
        v3Assign(b, color, v3Mul(b, s.albedo, v3Add(b, direct, ambient)));
    }
    b.endIf();
}

} // namespace

nir::Shader
makeRaygenAo()
{
    Builder b("raygen_ao", vptx::ShaderStage::RayGen);
    RaygenCommon c = raygenPrologue(b);
    V3 color = v3Var(b);
    emitAoBody(b, c, color, 1.0f);
    writePixel(b, c, color);
    return b.finish();
}

nir::Shader
makeRaygenAoDivergent()
{
    // The ITS microbenchmark of Sec. VI-F: the warp splits on pixel
    // parity and *both* arms contain long-latency traceRayEXT calls
    // (paper Fig. 10, right), so independent thread scheduling can
    // overlap the two splits in the RT unit.
    Builder b("raygen_ao_divergent", vptx::ShaderStage::RayGen);
    RaygenCommon c = raygenPrologue(b);
    V3 color = v3Var(b);
    Val odd = b.iand(c.px, b.constI(1));
    b.beginIf(odd);
    {
        emitAoBody(b, c, color, 1.0f);
    }
    b.beginElse();
    {
        emitAoBody(b, c, color, 0.6f);
    }
    b.endIf();
    writePixel(b, c, color);
    return b.finish();
}

namespace {

/**
 * The iterative path-trace body shared by RTV5/RTV6 and ACC: camera
 * ray through maxBounces scatter events; returns the colour variable.
 */
V3
emitPathBody(Builder &b, RaygenCommon &c)
{
    V3 ray_o, ray_d;
    cameraRayIr(b, c.camera, c.px, c.py, c.width, c.height, c.rngState,
                &ray_o, &ray_d);

    V3 color = v3Var(b);
    v3Assign(b, color, v3Const(b, 0, 0, 0));
    V3 atten = v3Var(b);
    v3Assign(b, atten, v3Const(b, 1, 1, 1));
    V3 o = v3Var(b);
    v3Assign(b, o, ray_o);
    V3 d = v3Var(b);
    v3Assign(b, d, ray_d);
    Val bounce = b.var();
    b.assign(bounce, b.constI(0));
    Val max_bounces = b.loadGlobal(
        c.consts, offsetof(GpuSceneConstants, maxBounces), 4);

    b.beginLoop();
    {
        b.breakIf(b.ige(bounce, max_bounces));
        traceRayIr(b, o, b.constF(1e-4f), d, b.constF(1e30f), 0);
        Val hit = b.loadGlobal(c.payload, payload::kHit, 4);
        b.beginIf(b.ieq(hit, b.constI(0)));
        {
            V3 sky = v3Load(b, c.payload, payload::kEmissionX);
            v3Assign(b, color, v3Add(b, color, v3Mul(b, atten, sky)));
            b.breakLoop();
        }
        b.endIf();

        SurfaceVals s = loadSurface(b, c.payload);
        b.beginIf(b.ieq(s.matKind,
                        b.constI(static_cast<int>(MaterialKind::Emissive))));
        {
            v3Assign(b, color,
                     v3Add(b, color, v3Mul(b, atten, s.emission)));
            b.breakLoop();
        }
        b.endIf();

        V3 eps_n = v3Scale(b, s.normal, b.constF(kOriginEpsilon));
        V3 next_o = v3Var(b);
        v3Assign(b, next_o, v3Add(b, s.pos, eps_n));
        V3 next_d = v3Var(b);

        Val is_lambert = b.ieq(
            s.matKind, b.constI(static_cast<int>(MaterialKind::Lambertian)));
        b.beginIf(is_lambert);
        {
            Val u1 = rngNext(b, c.rngState);
            Val u2 = rngNext(b, c.rngState);
            V3 tangent, bitangent;
            onbIr(b, s.normal, &tangent, &bitangent);
            V3 local = cosineSampleIr(b, u1, u2);
            V3 world = v3Add(
                b,
                v3Add(b, v3Scale(b, tangent, local.x),
                      v3Scale(b, bitangent, local.y)),
                v3Scale(b, s.normal, local.z));
            v3Assign(b, next_d, world);
            v3Assign(b, atten, v3Mul(b, atten, s.albedo));
        }
        b.beginElse();
        {
            Val is_metal = b.ior(
                b.ieq(s.matKind,
                      b.constI(static_cast<int>(MaterialKind::Metal))),
                b.ieq(s.matKind,
                      b.constI(static_cast<int>(MaterialKind::Mirror))));
            b.beginIf(is_metal);
            {
                V3 unit = v3Normalize(b, d);
                V3 refl = v3Var(b);
                v3Assign(b, refl, v3Reflect(b, unit, s.normal));
                b.beginIf(b.fgt(s.fuzz, b.constF(0.f)));
                {
                    Val u1 = rngNext(b, c.rngState);
                    Val u2 = rngNext(b, c.rngState);
                    V3 sph = uniformSphereIr(b, u1, u2);
                    v3Assign(b, refl,
                             v3Add(b, refl, v3Scale(b, sph, s.fuzz)));
                }
                b.endIf();
                V3 nd = v3Normalize(b, refl);
                v3Assign(b, next_d, nd);
                b.breakIf(b.fle(v3Dot(b, nd, s.normal), b.constF(0.f)));
                v3Assign(b, atten, v3Mul(b, atten, s.albedo));
            }
            b.beginElse();
            {
                // Dielectric.
                V3 unit = v3Normalize(b, d);
                Val one = b.constF(1.f);
                Val eta = b.select(s.frontFace, b.fdiv(one, s.ior), s.ior);
                Val cos_theta =
                    b.fmin(b.fneg(v3Dot(b, unit, s.normal)), one);
                // refractDir: cos_i = -dot(d, n); sin2_t = eta^2(1-cos_i^2)
                Val cos_i = b.fneg(v3Dot(b, unit, s.normal));
                Val sin2_t =
                    b.fmul(b.fmul(eta, eta),
                           b.fsub(one, b.fmul(cos_i, cos_i)));
                Val can_refract = b.fle(sin2_t, one);
                Val cos_t =
                    b.fsqrt(b.fmax(b.fsub(one, sin2_t), b.constF(0.f)));
                V3 refracted = v3Add(
                    b, v3Scale(b, unit, eta),
                    v3Scale(b, s.normal,
                            b.fsub(b.fmul(eta, cos_i), cos_t)));
                Val pick = rngNext(b, c.rngState);
                Val fresnel = schlickIr(b, cos_theta, eta);
                Val reflect_p =
                    b.ior(b.ixor(can_refract, b.constI(1)),
                          b.fgt(fresnel, pick));
                b.beginIf(reflect_p);
                {
                    v3Assign(b, next_d, v3Reflect(b, unit, s.normal));
                    v3Assign(b, next_o, v3Add(b, s.pos, eps_n));
                }
                b.beginElse();
                {
                    v3Assign(b, next_d, v3Normalize(b, refracted));
                    v3Assign(b, next_o, v3Sub(b, s.pos, eps_n));
                }
                b.endIf();
            }
            b.endIf();
        }
        b.endIf();

        v3Assign(b, o, next_o);
        v3Assign(b, d, next_d);
        b.assign(bounce, b.iadd(bounce, b.constI(1)));
    }
    b.endLoop();
    return color;
}

} // namespace

nir::Shader
makeRaygenPath()
{
    Builder b("raygen_path", vptx::ShaderStage::RayGen);
    RaygenCommon c = raygenPrologue(b);
    V3 color = emitPathBody(b, c);
    writePixel(b, c, color);
    return b.finish();
}

nir::Shader
makeRaygenHybrid()
{
    // Mirrors reftrace shadeHybrid() operation for operation.
    Builder b("raygen_hybrid", vptx::ShaderStage::RayGen);
    RaygenCommon c = raygenPrologue(b);
    V3 origin, dir;
    cameraRayIr(b, c.camera, c.px, c.py, c.width, c.height, c.rngState,
                &origin, &dir);

    V3 color = v3Var(b);
    traceRayIr(b, origin, b.constF(1e-4f), dir, b.constF(1e30f), 0);
    Val hit = b.loadGlobal(c.payload, payload::kHit, 4);
    b.beginIf(b.ieq(hit, b.constI(0)));
    {
        v3Assign(b, color, v3Load(b, c.payload, payload::kEmissionX));
    }
    b.beginElse();
    {
        SurfaceVals s = loadSurface(b, c.payload);
        V3 base = v3Add(b, s.pos,
                        v3Scale(b, s.normal, b.constF(kOriginEpsilon)));
        V3 sun_dir =
            v3Load(b, c.consts, offsetof(GpuSceneConstants, sunDir));
        V3 sun_color =
            v3Load(b, c.consts, offsetof(GpuSceneConstants, sunColor));
        Val ndotl = b.fmax(b.constF(0.f), v3Dot(b, s.normal, sun_dir));
        Val lit = b.var();
        b.assign(lit, b.constF(0.f));
        b.beginIf(b.fgt(ndotl, b.constF(0.f)));
        {
            Val clear = occlusionIr(b, c, base, sun_dir, b.constF(1e30f));
            b.assign(lit, clear);
        }
        b.endIf();
        V3 direct = v3Scale(b, sun_color, b.fmul(ndotl, lit));
        Val ambient_k = b.loadGlobal(
            c.consts, offsetof(GpuSceneConstants, ambientStrength), 4);
        V3 sky_horizon =
            v3Load(b, c.consts, offsetof(GpuSceneConstants, skyHorizon));
        V3 ambient = v3Scale(b, sky_horizon, ambient_k);
        v3Assign(b, color,
                 v3Mul(b, s.albedo, v3Add(b, direct, ambient)));

        // One single-bounce reflection ray from the primary hit.
        V3 refl_d = v3Reflect(b, v3Normalize(b, dir), s.normal);
        traceRayIr(b, base, b.constF(1e-4f), refl_d, b.constF(1e30f), 0);
        Val rhit = b.loadGlobal(c.payload, payload::kHit, 4);
        V3 rcol = v3Var(b);
        b.beginIf(b.ieq(rhit, b.constI(0)));
        {
            v3Assign(b, rcol, v3Load(b, c.payload, payload::kEmissionX));
        }
        b.beginElse();
        {
            // Reflected surfaces are sun-lit without a shadow ray.
            SurfaceVals rs = loadSurface(b, c.payload);
            Val rndotl =
                b.fmax(b.constF(0.f), v3Dot(b, rs.normal, sun_dir));
            v3Assign(b, rcol,
                     v3Mul(b, rs.albedo,
                           v3Add(b, v3Scale(b, sun_color, rndotl),
                                 ambient)));
        }
        b.endIf();
        v3Assign(b, color,
                 v3Add(b, color, v3Scale(b, rcol, b.constF(0.25f))));
    }
    b.endIf();

    writePixel(b, c, color);
    return b.finish();
}

nir::Shader
makeComputeRayQuery()
{
    // RQC: same per-pixel camera ray and barycentric shading as TRI,
    // but traversed inline from a compute shader (VK_KHR_ray_query) —
    // no SBT, no closest-hit/miss indirection.
    Builder b("compute_rayquery", vptx::ShaderStage::Compute);
    RaygenCommon c;
    c.px = b.launchId(0);
    c.py = b.launchId(1);
    c.width = b.launchSize(0);
    c.height = b.launchSize(1);
    c.pixelIndex = b.iadd(b.imul(c.py, c.width), c.px);
    c.consts = b.descBase(kBindConstants);
    Val seed =
        b.loadGlobal(c.consts, offsetof(GpuSceneConstants, frameSeed), 4);
    c.rngState = b.var();
    b.assign(c.rngState, rngInit(b, c.pixelIndex, seed));
    c.camera = b.descBase(kBindCamera);

    V3 origin, dir;
    cameraRayIr(b, c.camera, c.px, c.py, c.width, c.height, c.rngState,
                &origin, &dir);
    b.rayQuery(origin.x, origin.y, origin.z, b.constF(1e-4f), dir.x,
               dir.y, dir.z, b.constF(1e30f), b.constI(0));

    // The committed hit lives in the query frame's hit words.
    Val f = b.frameAddr();
    Val kind = b.loadGlobal(f, vptx::frame::kHitKind, 4);
    V3 color = v3Var(b);
    b.beginIf(b.ieq(kind, b.constI(0)));
    {
        v3Assign(b, color, skyColorIr(b, c.consts, dir));
    }
    b.beginElse();
    {
        Val u = b.loadGlobal(f, vptx::frame::kHitU, 4);
        Val v = b.loadGlobal(f, vptx::frame::kHitV, 4);
        Val one = b.constF(1.f);
        v3Assign(b, color, {b.fsub(b.fsub(one, u), v), u, v});
    }
    b.endIf();
    b.rayQueryEnd();

    writePixel(b, c, color);
    return b.finish();
}

nir::Shader
makeRaygenAccum()
{
    // ACC: the RTV5 path-trace body feeding a cross-frame running sum;
    // the framebuffer resolves to sum / frameCount every frame.
    Builder b("raygen_accum", vptx::ShaderStage::RayGen);
    RaygenCommon c = raygenPrologue(b);
    V3 color = emitPathBody(b, c);

    Val accum = b.descBase(kBindAccum);
    Val count = b.loadGlobal(accum, 0, 4);
    Val slot = b.iadd(
        accum,
        b.iadd(b.constI(kAccumHeaderBytes),
               b.imul(c.pixelIndex, b.constI(kFramebufferStride))));
    V3 sum = v3Load(b, slot, 0);
    sum = v3Add(b, sum, color);
    v3Store(b, slot, sum, 0);
    Val inv = b.fdiv(b.constF(1.f), b.u2f(count));
    writePixel(b, c, v3Scale(b, sum, inv));
    return b.finish();
}

namespace {

/** Shared intersection-shader prologue: entry, prim record, local ray. */
struct IsectCommon
{
    Val primRec;
    V3 o, d;
    Val tmin, tmaxEff;
};

IsectCommon
isectPrologue(Builder &b)
{
    IsectCommon c;
    Val entry = b.deferredEntryAddr();
    Val prim = b.loadGlobal(entry, kDefPrim, 4);
    Val inst = b.loadGlobal(entry, kDefInstance, 4);
    Val inst_table = b.descBase(kBindInstances);
    Val inst_rec = b.iadd(
        inst_table, b.imul(inst, b.constI(sizeof(GpuInstanceRecord))));
    Val prim_base =
        b.loadGlobal(inst_rec, offsetof(GpuInstanceRecord, primBase), 8);
    c.primRec = b.iadd(
        prim_base, b.imul(prim, b.constI(sizeof(GpuProceduralRecord))));

    // Procedural instances use identity transforms, so the world ray is
    // the object ray (documented in DESIGN.md).
    Val f = b.frameAddr();
    c.o = v3Load(b, f, kRayOriginX);
    c.d = v3Load(b, f, kRayDirX);
    c.tmin = b.loadGlobal(f, kRayTmin, 4);
    Val tmax = b.loadGlobal(f, kRayTmax, 4);
    Val hit_t = b.loadGlobal(f, kHitT, 4);
    c.tmaxEff = b.fmin(tmax, hit_t);
    return c;
}

} // namespace

nir::Shader
makeIntersectionSphere()
{
    Builder b("isect_sphere", vptx::ShaderStage::Intersection);
    IsectCommon c = isectPrologue(b);
    V3 center = v3Load(b, c.primRec, offsetof(GpuProceduralRecord, center));
    Val radius =
        b.loadGlobal(c.primRec, offsetof(GpuProceduralRecord, radius), 4);

    // Mirror geom raySphere().
    V3 oc = v3Sub(b, c.o, center);
    Val a = v3Dot(b, c.d, c.d);
    Val half_b = v3Dot(b, oc, c.d);
    Val cc = b.fsub(v3Dot(b, oc, oc), b.fmul(radius, radius));
    Val disc = b.fsub(b.fmul(half_b, half_b), b.fmul(a, cc));
    b.beginIf(b.fge(disc, b.constF(0.f)));
    {
        Val sqrt_d = b.fsqrt(disc);
        Val t1 = b.fdiv(b.fsub(b.fneg(half_b), sqrt_d), a);
        Val t2 = b.fdiv(b.fadd(b.fneg(half_b), sqrt_d), a);
        Val t1_bad = b.ior(b.fle(t1, c.tmin), b.fge(t1, c.tmaxEff));
        Val t = b.select(t1_bad, t2, t1);
        Val t_ok = b.iand(b.fgt(t, c.tmin), b.flt(t, c.tmaxEff));
        b.beginIf(t_ok);
        {
            b.reportIntersection(t);
        }
        b.endIf();
    }
    b.endIf();
    return b.finish();
}

nir::Shader
makeIntersectionBox()
{
    Builder b("isect_box", vptx::ShaderStage::Intersection);
    IsectCommon c = isectPrologue(b);
    V3 lo = v3Load(b, c.primRec, offsetof(GpuProceduralRecord, lo));
    V3 hi = v3Load(b, c.primRec, offsetof(GpuProceduralRecord, hi));

    // Mirror geom rayBoxProcedural(): slab test with safeInverse, and the
    // same axis-parallel guard — a zero direction component becomes a
    // containment test so 0 * inf never reaches the min/max chain.
    Val one = b.constF(1.f);
    Val zero = b.constF(0.f);
    V3 inv{b.fdiv(one, c.d.x), b.fdiv(one, c.d.y), b.fdiv(one, c.d.z)};
    Val t0 = b.var();
    b.assign(t0, c.tmin);
    Val t1 = b.var();
    b.assign(t1, b.loadGlobal(b.frameAddr(), kRayTmax, 4));
    Val miss = b.var();
    b.assign(miss, b.constI(0));

    const Val los[3] = {lo.x, lo.y, lo.z};
    const Val his[3] = {hi.x, hi.y, hi.z};
    const Val origins[3] = {c.o.x, c.o.y, c.o.z};
    const Val dirs[3] = {c.d.x, c.d.y, c.d.z};
    const Val invs[3] = {inv.x, inv.y, inv.z};
    for (int axis = 0; axis < 3; ++axis) {
        Val is_par = b.feq(dirs[axis], zero);
        Val outside = b.ior(b.flt(origins[axis], los[axis]),
                            b.fgt(origins[axis], his[axis]));
        Val near = b.fmul(b.fsub(los[axis], origins[axis]), invs[axis]);
        Val far = b.fmul(b.fsub(his[axis], origins[axis]), invs[axis]);
        Val swap = b.fgt(near, far);
        Val n2 = b.select(swap, far, near);
        Val f2 = b.select(swap, near, far);
        b.assign(t0, b.select(is_par, t0, b.fmax(t0, n2)));
        b.assign(t1, b.select(is_par, t1, b.fmin(t1, f2)));
        b.assign(miss,
                 b.ior(miss, b.select(is_par, outside, b.fgt(t0, t1))));
    }

    b.beginIf(b.ieq(miss, b.constI(0)));
    {
        Val entry_t = b.select(b.fgt(t0, c.tmin), t0, t1);
        Val t_ok =
            b.iand(b.fgt(entry_t, c.tmin), b.flt(entry_t, c.tmaxEff));
        b.beginIf(t_ok);
        {
            b.reportIntersection(entry_t);
        }
        b.endIf();
    }
    b.endIf();
    return b.finish();
}

nir::Shader
makeAnyHitAlphaTest(float threshold)
{
    Builder b("anyhit_alpha", vptx::ShaderStage::AnyHit);
    Val entry = b.deferredEntryAddr();
    Val u = b.loadGlobal(entry, kDefU, 4);
    Val v = b.loadGlobal(entry, kDefV, 4);
    Val uv = b.fadd(u, v);
    b.beginIf(b.fle(uv, b.constF(threshold)));
    {
        b.commitAnyHit();
    }
    b.endIf();
    return b.finish();
}

} // namespace vksim::wl
