/**
 * @file
 * The NIR shader set of the evaluation workloads (stand-ins for the GLSL
 * shaders of the Khronos samples and RayTracingInVulkan):
 *
 *  - raygen: barycentric (TRI), Whitted (REF), ambient occlusion (EXT),
 *    and iterative path tracing (RTV5/RTV6);
 *  - a shared surface closest-hit shader that reconstructs position,
 *    normal, and material into the payload;
 *  - a sky miss shader;
 *  - sphere and box intersection shaders for procedural geometry;
 *  - an alpha-test any-hit shader (used by tests and the any-hit demo).
 *
 * Each shader mirrors the corresponding reftrace C++ routine operation
 * for operation so that simulated and reference renders agree.
 */

#ifndef VKSIM_WORKLOADS_SHADERS_H
#define VKSIM_WORKLOADS_SHADERS_H

#include "nir/nir.h"

namespace vksim::wl {

/** Miss shader: writes sky colour + hit=0 into the payload. */
nir::Shader makeMissShader();

/** Closest-hit: fills the payload with the full surface description. */
nir::Shader makeClosestHitSurface();

/** Closest-hit for TRI: barycentric colour into the payload. */
nir::Shader makeClosestHitBary();

/** TRI ray generation: one primary ray, write colour. */
nir::Shader makeRaygenBary();

/** REF ray generation: Whitted mirrors + hard shadows. */
nir::Shader makeRaygenWhitted();

/** EXT ray generation: sun + shadow + ambient-occlusion rays. */
nir::Shader makeRaygenAo();

/**
 * EXT ray generation with injected warp divergence: both arms of a
 * pixel-parity branch trace rays (the paper's ITS microbenchmark,
 * Sec. VI-F and Fig. 10 right).
 */
nir::Shader makeRaygenAoDivergent();

/** RTV5/RTV6 ray generation: iterative path tracing. */
nir::Shader makeRaygenPath();

/**
 * HYB ray generation: G-buffer-proxy primary ray, then one shadow ray
 * and one single-bounce reflection ray per hit.
 */
nir::Shader makeRaygenHybrid();

/**
 * RQC compute shader: camera ray traversed with an inline ray query
 * (VK_KHR_ray_query) — no SBT, no callable shaders; the hit is read
 * straight from the query frame and shaded as barycentric colour.
 */
nir::Shader makeComputeRayQuery();

/**
 * ACC ray generation: the path-trace body, accumulated into the
 * cross-frame buffer at kBindAccum and resolved as sum / frameCount.
 */
nir::Shader makeRaygenAccum();

/** Intersection shader for procedural spheres. */
nir::Shader makeIntersectionSphere();

/** Intersection shader for procedural boxes (RTV6 cubes). */
nir::Shader makeIntersectionBox();

/**
 * Any-hit shader rejecting candidates with u + v > threshold (a stand-in
 * for alpha testing); accepts the rest.
 */
nir::Shader makeAnyHitAlphaTest(float threshold = 0.5f);

} // namespace vksim::wl

#endif // VKSIM_WORKLOADS_SHADERS_H
