#include "service/manifest.h"

#include <cstddef>

#include "core/vulkansim.h"

namespace vksim::service {

namespace {

/** The complete set of keys a job entry may carry. */
const char *const kJobKeys[] = {"name",   "workload", "width",
                                "height", "scale",    "detail",
                                "prims",  "fcc",      "config",
                                "variant", "priority", "frames"};

std::string
jobPrefix(std::size_t index)
{
    return "job " + std::to_string(index) + ": ";
}

bool
knownJobKey(const std::string &key)
{
    for (const char *k : kJobKeys)
        if (key == k)
            return true;
    return false;
}

std::string
validJobKeys()
{
    std::string keys;
    for (const char *k : kJobKeys) {
        if (!keys.empty())
            keys += ", ";
        keys += k;
    }
    return keys;
}

/**
 * Typed field accessors: each returns false (with a message naming the
 * job, the key, and the expected type) when the field is present but
 * has the wrong JSON type. Absent fields keep the default.
 */
bool
numberField(const JsonValue &job, std::size_t index,
            const std::string &key, double *out, std::string *error)
{
    const JsonValue *v = job.member(key);
    if (v == nullptr)
        return true;
    if (!v->isNumber()) {
        *error = jobPrefix(index) + "field \"" + key
                 + "\" must be a number";
        return false;
    }
    *out = v->number;
    return true;
}

bool
stringField(const JsonValue &job, std::size_t index,
            const std::string &key, std::string *out, std::string *error)
{
    const JsonValue *v = job.member(key);
    if (v == nullptr)
        return true;
    if (!v->isString()) {
        *error = jobPrefix(index) + "field \"" + key
                 + "\" must be a string";
        return false;
    }
    *out = v->str;
    return true;
}

bool
boolField(const JsonValue &job, std::size_t index, const std::string &key,
          bool *out, std::string *error)
{
    const JsonValue *v = job.member(key);
    if (v == nullptr)
        return true;
    if (v->kind != JsonValue::Kind::Bool) {
        *error = jobPrefix(index) + "field \"" + key
                 + "\" must be true or false";
        return false;
    }
    *out = v->boolean;
    return true;
}

bool
workloadByName(const std::string &name, wl::WorkloadId *out)
{
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        if (name == wl::workloadName(id)) {
            *out = id;
            return true;
        }
    }
    return false;
}

/** "TRI/REF/…" built from the registry, so new workloads self-list. */
std::string
validWorkloadNames()
{
    std::string names;
    for (wl::WorkloadId id : wl::kAllWorkloads) {
        if (!names.empty())
            names += "/";
        names += wl::workloadName(id);
    }
    return names;
}

/** Validate and convert one manifest entry. */
bool
parseJob(const JsonValue &job, std::size_t index, const GpuConfig &base,
         JobSpec *out, std::string *error)
{
    if (!job.isObject()) {
        *error = jobPrefix(index) + "expected a JSON object";
        return false;
    }
    // Unknown keys are hard errors: a misspelled "variant" silently
    // running the baseline is the worst failure mode a sweep can have.
    // JsonValue::object is a sorted map, so the first unknown key
    // reported is deterministic.
    for (const auto &[key, value] : job.object) {
        (void)value;
        if (!knownJobKey(key)) {
            *error = jobPrefix(index) + "unknown key \"" + key
                     + "\" (valid keys: " + validJobKeys() + ")";
            return false;
        }
    }

    std::string workload;
    if (!stringField(job, index, "workload", &workload, error))
        return false;
    if (workload.empty()) {
        *error = jobPrefix(index)
                 + "missing required field \"workload\" (use "
                 + validWorkloadNames() + ")";
        return false;
    }
    if (!workloadByName(workload, &out->workload)) {
        *error = jobPrefix(index) + "unknown workload '" + workload
                 + "' (use " + validWorkloadNames() + ")";
        return false;
    }

    double width = 32.0;
    if (!numberField(job, index, "width", &width, error))
        return false;
    out->params.width = static_cast<unsigned>(width);
    double height = width;
    if (!numberField(job, index, "height", &height, error))
        return false;
    out->params.height = static_cast<unsigned>(height);
    double scale = 0.25;
    if (!numberField(job, index, "scale", &scale, error))
        return false;
    out->params.extScale = static_cast<float>(scale);
    double detail = 5.0;
    if (!numberField(job, index, "detail", &detail, error))
        return false;
    out->params.rtv5Detail = static_cast<unsigned>(detail);
    double prims = 400.0;
    if (!numberField(job, index, "prims", &prims, error))
        return false;
    out->params.rtv6Prims = static_cast<unsigned>(prims);
    if (!boolField(job, index, "fcc", &out->params.fcc, error))
        return false;
    double frames = 1.0;
    if (!numberField(job, index, "frames", &frames, error))
        return false;
    if (frames < 1.0) {
        *error = jobPrefix(index) + "field \"frames\" must be >= 1";
        return false;
    }
    out->params.frames = static_cast<unsigned>(frames);
    double priority = 0.0;
    if (!numberField(job, index, "priority", &priority, error))
        return false;
    out->priority = static_cast<int>(priority);

    out->name = workload + std::to_string(index);
    if (!stringField(job, index, "name", &out->name, error))
        return false;

    std::string config = "baseline";
    if (!stringField(job, index, "config", &config, error))
        return false;
    if (config == "mobile")
        out->config = mobileGpuConfig();
    else if (config == "baseline")
        out->config = baselineGpuConfig();
    else {
        *error = jobPrefix(index) + "unknown config '" + config
                 + "' (use baseline or mobile)";
        return false;
    }
    // Shared flags (check level etc.) folded into the per-job base.
    out->config.checkLevel = base.checkLevel;
    out->config.printPerfSummary = base.printPerfSummary;
    out->config.idleSkip = base.idleSkip;

    std::string variant = "baseline";
    if (!stringField(job, index, "variant", &variant, error))
        return false;
    if (variant == "rtcache")
        out->config = applyMemoryVariant(out->config, MemoryVariant::RtCache);
    else if (variant == "perfectbvh")
        out->config =
            applyMemoryVariant(out->config, MemoryVariant::PerfectBvh);
    else if (variant == "perfectmem")
        out->config =
            applyMemoryVariant(out->config, MemoryVariant::PerfectMem);
    else if (variant == "modern")
        out->config = applyMemoryVariant(out->config, MemoryVariant::Modern);
    else if (variant != "baseline") {
        *error = jobPrefix(index) + "unknown variant '" + variant
                 + "' (use baseline/rtcache/perfectbvh/perfectmem/modern)";
        return false;
    }
    return true;
}

} // namespace

bool
parseManifest(const JsonValue &root, const GpuConfig &base,
              std::vector<JobSpec> *out, std::string *error)
{
    if (!root.isObject()) {
        *error = "manifest must be a JSON object with a \"jobs\" array";
        return false;
    }
    for (const auto &[key, value] : root.object) {
        (void)value;
        if (key != "jobs") {
            *error = "unknown top-level key \"" + key
                     + "\" (the manifest is {\"jobs\": [...]})";
            return false;
        }
    }
    const JsonValue *jobs = root.member("jobs");
    if (jobs == nullptr || !jobs->isArray() || jobs->array.empty()) {
        *error = "expected a non-empty \"jobs\" array";
        return false;
    }
    out->clear();
    out->reserve(jobs->array.size());
    for (std::size_t i = 0; i < jobs->array.size(); ++i) {
        JobSpec spec;
        if (!parseJob(jobs->array[i], i, base, &spec, error))
            return false;
        out->push_back(std::move(spec));
    }
    return true;
}

bool
parseManifestText(const std::string &text, const GpuConfig &base,
                  std::vector<JobSpec> *out, std::string *error)
{
    JsonValue root;
    if (!parseJson(text, &root, error))
        return false;
    return parseManifest(root, base, out, error);
}

} // namespace vksim::service
