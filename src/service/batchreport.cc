#include "service/batchreport.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "gpu/checkpoint.h"
#include "service/service.h"
#include "util/log.h"
#include "workloads/workload.h"

namespace vksim::service {

namespace {

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

void
writeBatchResults(std::ostream &os, const std::vector<JobRecord> &records)
{
    std::map<std::string, const JobRecord *> by_name;
    std::map<std::uint64_t, unsigned> bvh_key_uses;
    std::map<std::uint64_t, unsigned> pipeline_key_uses;
    for (const JobRecord &record : records) {
        vksim_assert(by_name.count(record.name) == 0);
        by_name[record.name] = &record;
        ++bvh_key_uses[record.bvhKey];
        ++pipeline_key_uses[record.pipelineKey];
    }

    // builds = distinct keys, hits = lookups - builds: the numbers the
    // live ArtifactCache counters are contractually equal to for an
    // uninterrupted batch, derived so resumed batches report the same.
    const std::uint64_t bvh_builds = bvh_key_uses.size();
    const std::uint64_t pipeline_builds = pipeline_key_uses.size();
    os << "{\n\"artifacts\": {\n"
       << "  \"bvh_builds\": " << bvh_builds << ",\n"
       << "  \"bvh_hits\": " << records.size() - bvh_builds << ",\n"
       << "  \"pipeline_builds\": " << pipeline_builds << ",\n"
       << "  \"pipeline_hits\": " << records.size() - pipeline_builds
       << "\n},\n\"jobs\": {\n";
    bool first = true;
    for (const auto &[name, record] : by_name) {
        os << (first ? "" : ",\n") << "\"" << name << "\": {\n"
           << "  \"workload\": \"" << record->workloadName << "\",\n"
           << "  \"cycles\": " << record->cycles << ",\n"
           << "  \"bvh_shared\": "
           << (bvh_key_uses[record->bvhKey] > 1 ? "true" : "false")
           << ",\n"
           << "  \"pipeline_shared\": "
           << (pipeline_key_uses[record->pipelineKey] > 1 ? "true"
                                                          : "false")
           << ",\n  \"stats\":\n"
           << record->statsJson << "\n}";
        first = false;
    }
    // Host telemetry lives in its own trailing section so determinism
    // checks can compare everything above it byte-for-byte and drop
    // this block (it varies run to run by construction).
    os << "\n},\n\"perf\": {\n";
    first = true;
    char rate[64];
    for (const auto &[name, record] : by_name) {
        std::snprintf(rate, sizeof rate, "%.1f",
                      record->simCyclesPerSecond);
        os << (first ? "" : ",\n") << "\"" << name << "\": {\n"
           << "  \"sim_cycles_per_s\": " << rate << ",\n"
           << "  \"stepping\": \""
           << (record->epochCyclesUsed > 1 ? "epoch" : "lock-step")
           << "\",\n"
           << "  \"epoch_cycles\": " << record->epochCyclesUsed << ",\n"
           << "  \"threads\": " << record->threadsUsed << "\n}";
        first = false;
    }
    os << "\n}\n}\n";
}

std::string
failureSummary(const std::vector<std::string> &failed_names)
{
    if (failed_names.empty())
        return "";
    std::vector<std::string> sorted = failed_names;
    std::sort(sorted.begin(), sorted.end());
    std::string summary =
        std::to_string(sorted.size()) + " job(s) failed: ";
    for (std::size_t i = 0; i < sorted.size(); ++i)
        summary += (i ? ", " : "") + sorted[i];
    return summary;
}

void
encodeJobRecord(serial::Writer &w, const JobRecord &record)
{
    w.str(record.name);
    w.str(record.workloadName);
    w.u64(record.cycles);
    w.u64(record.bvhKey);
    w.u64(record.pipelineKey);
    w.str(record.statsJson);
    w.u32(record.epochCyclesUsed);
    w.u32(record.threadsUsed);
    // simCyclesPerSecond is deliberately not persisted: it is host
    // telemetry of the process that ran the job, meaningless later.
}

JobRecord
decodeJobRecord(serial::Reader &r)
{
    JobRecord record;
    record.name = r.str();
    record.workloadName = r.str();
    record.cycles = r.u64();
    record.bvhKey = r.u64();
    record.pipelineKey = r.u64();
    record.statsJson = r.str();
    record.epochCyclesUsed = r.u32();
    record.threadsUsed = r.u32();
    return record;
}

std::uint64_t
jobKey(const JobSpec &spec)
{
    serial::Writer w;
    w.str(spec.name);
    w.str(wl::workloadName(spec.workload));
    w.u32(spec.params.width);
    w.u32(spec.params.height);
    w.f32(spec.params.extScale);
    w.u32(spec.params.rtv5Detail);
    w.u32(spec.params.rtv6Prims);
    w.u32(spec.params.shading.maxDepth);
    w.u32(spec.params.shading.aoSamples);
    w.f32(spec.params.shading.aoRadius);
    w.u32(spec.params.shading.maxBounces);
    w.f32(spec.params.shading.ambientStrength);
    w.u32(spec.params.shading.frameSeed);
    w.b(spec.params.fcc);
    w.b(spec.params.divergentRaygen);
    w.u64(gpuConfigDigest(spec.config));
    return fnv1a(w.buffer().data(), w.buffer().size());
}

} // namespace vksim::service
