#include "service/diskstore.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "util/simerror.h"

namespace vksim::service {

namespace {

constexpr char kStoreMagic[8] = {'V', 'K', 'S', 'I', 'M', 'A', 'R', 'T'};
// v2: pipeline records carry the immediate-any-hit flag + trampolines.
constexpr std::uint32_t kStoreFormatVersion = 2;

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

const char *
kindDir(DiskStore::Kind kind)
{
    switch (kind) {
      case DiskStore::Kind::Bvh: return "bvh";
      case DiskStore::Kind::Pipeline: return "pipeline";
      case DiskStore::Kind::Result: return "result";
    }
    return "unknown";
}

std::string
hexKey(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

DiskStore::DiskStore(std::string root) : root_(std::move(root))
{
    std::error_code ec;
    for (const char *dir : {"bvh", "pipeline", "result", "snapshots"})
        std::filesystem::create_directories(root_ + "/" + dir, ec);
    if (ec)
        throw SimError("cannot create artifact store directories under "
                       + root_ + ": " + ec.message());
}

std::string
DiskStore::snapshotPath(std::uint64_t job_key) const
{
    return root_ + "/snapshots/" + hexKey(job_key) + ".ckpt";
}

std::string
DiskStore::path(Kind kind, std::uint64_t key) const
{
    return root_ + "/" + kindDir(kind) + "/" + hexKey(key) + ".bin";
}

std::optional<std::vector<std::uint8_t>>
DiskStore::get(Kind kind, std::uint64_t key) const
{
    const std::string file = path(kind, key);
    std::FILE *f = std::fopen(file.c_str(), "rb");
    if (!f) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.misses;
        return std::nullopt;
    }
    std::vector<std::uint8_t> raw;
    std::uint8_t chunk[65536];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        raw.insert(raw.end(), chunk, chunk + n);
    std::fclose(f);

    // Verify everything the header promises; any mismatch means the
    // file is not the artifact it claims to be — evict it and miss.
    auto evict = [&]() -> std::optional<std::vector<std::uint8_t>> {
        std::remove(file.c_str());
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.corruptEvictions;
        ++counters_.misses;
        return std::nullopt;
    };
    serial::Reader r(raw);
    char magic[sizeof(kStoreMagic)];
    if (r.remaining() < sizeof(magic))
        return evict();
    r.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kStoreMagic, sizeof(magic)) != 0)
        return evict();
    if (r.remaining() < 4 + 4 + 8 + 8 + 8)
        return evict();
    if (r.u32() != kStoreFormatVersion)
        return evict();
    if (r.u32() != static_cast<std::uint32_t>(kind))
        return evict();
    if (r.u64() != key)
        return evict();
    const std::uint64_t payload_size = r.u64();
    const std::uint64_t payload_digest = r.u64();
    if (r.remaining() != payload_size)
        return evict();
    std::vector<std::uint8_t> payload(payload_size);
    r.bytes(payload.data(), payload.size());
    if (fnv1a(payload.data(), payload.size()) != payload_digest)
        return evict();

    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.loads;
    return payload;
}

void
DiskStore::put(Kind kind, std::uint64_t key,
               const std::vector<std::uint8_t> &payload) const
{
    serial::Writer w;
    w.bytes(kStoreMagic, sizeof(kStoreMagic));
    w.u32(kStoreFormatVersion);
    w.u32(static_cast<std::uint32_t>(kind));
    w.u64(key);
    w.u64(payload.size());
    w.u64(fnv1a(payload.data(), payload.size()));
    w.bytes(payload.data(), payload.size());

    const std::string file = path(kind, key);
    // Same-key writers racing from different processes write identical
    // content, so last-rename-wins is safe — but give each process its
    // own temp file so the writes themselves stay private.
    const std::string tmp =
        file + ".tmp" + std::to_string(static_cast<long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw SimError("cannot open artifact temp file " + tmp
                       + " for writing: check that the store root "
                         "exists and is writable");
    const std::vector<std::uint8_t> &buf = w.buffer();
    bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw SimError("short write while storing artifact " + file
                       + ": disk full or I/O error");
    }
    if (std::rename(tmp.c_str(), file.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SimError("cannot rename artifact temp file over " + file);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.stores;
}

void
DiskStore::remove(Kind kind, std::uint64_t key) const
{
    std::remove(path(kind, key).c_str());
}

DiskStore::Counters
DiskStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

// --- Payload codecs ---------------------------------------------------------

void
encodeAccelImage(serial::Writer &w, const AccelImage &image)
{
    w.u64(image.baseBrk);
    w.u64(image.endBrk);
    w.u64(image.bytes.size());
    w.bytes(image.bytes.data(), image.bytes.size());
    w.u64(image.accel.tlasRoot);
    w.u32(static_cast<std::uint32_t>(image.accel.tlasRootType));
    w.u64(image.accel.blasRoots.size());
    for (Addr root : image.accel.blasRoots)
        w.u64(root);
    const AccelStats &s = image.accel.stats;
    w.u64(s.tlasInternalNodes);
    w.u64(s.tlasLeaves);
    w.u64(s.blasInternalNodes);
    w.u64(s.blasLeaves);
    w.u32(s.tlasDepth);
    w.u32(s.maxBlasDepth);
    w.u64(s.totalBytes);
    w.u64(image.regions.size());
    for (const GlobalMemory::Region &region : image.regions) {
        w.u64(region.base);
        w.u64(region.size);
        w.str(region.label);
    }
}

AccelImage
decodeAccelImage(serial::Reader &r)
{
    AccelImage image;
    image.baseBrk = r.u64();
    image.endBrk = r.u64();
    image.bytes.resize(r.u64());
    r.bytes(image.bytes.data(), image.bytes.size());
    image.accel.tlasRoot = r.u64();
    image.accel.tlasRootType = static_cast<NodeType>(r.u32());
    image.accel.blasRoots.resize(r.u64());
    for (Addr &root : image.accel.blasRoots)
        root = r.u64();
    AccelStats &s = image.accel.stats;
    s.tlasInternalNodes = r.u64();
    s.tlasLeaves = r.u64();
    s.blasInternalNodes = r.u64();
    s.blasLeaves = r.u64();
    s.tlasDepth = r.u32();
    s.maxBlasDepth = r.u32();
    s.totalBytes = r.u64();
    image.regions.resize(r.u64());
    for (GlobalMemory::Region &region : image.regions) {
        region.base = r.u64();
        region.size = r.u64();
        region.label = r.str();
    }
    return image;
}

void
encodePipeline(serial::Writer &w, const CompiledPipeline &pipeline)
{
    const vptx::Program &prog = pipeline.program();
    w.u64(prog.code.size());
    for (const vptx::Instr &instr : prog.code) {
        w.u32(static_cast<std::uint32_t>(instr.op));
        w.i32(instr.dst);
        w.i32(instr.src0);
        w.i32(instr.src1);
        w.i32(instr.src2);
        w.u8(instr.size);
        w.u32(instr.target);
        w.u32(instr.reconv);
        w.u64(instr.imm);
    }
    w.u64(prog.shaders.size());
    for (const vptx::ShaderInfo &shader : prog.shaders) {
        w.str(shader.name);
        w.u8(static_cast<std::uint8_t>(shader.stage));
        w.u32(shader.entryPc);
        w.u32(shader.numRegs);
    }
    w.i32(prog.raygenShader);
    w.b(prog.immediateAnyHit);
    w.u64(prog.anyHitTrampolines.size());
    for (std::int32_t tramp : prog.anyHitTrampolines)
        w.i32(tramp);
    w.u64(pipeline.hitGroups().size());
    for (const vptx::HitGroupRecord &hg : pipeline.hitGroups()) {
        w.i32(hg.closestHit);
        w.i32(hg.anyHit);
        w.i32(hg.intersection);
    }
    w.u64(pipeline.missShaders().size());
    for (std::int32_t miss : pipeline.missShaders())
        w.i32(miss);
    w.b(pipeline.fcc());
}

CompiledPipeline
decodePipeline(serial::Reader &r)
{
    vptx::Program prog;
    prog.code.resize(r.u64());
    for (vptx::Instr &instr : prog.code) {
        instr.op = static_cast<vptx::Opcode>(r.u32());
        instr.dst = static_cast<std::int16_t>(r.i32());
        instr.src0 = static_cast<std::int16_t>(r.i32());
        instr.src1 = static_cast<std::int16_t>(r.i32());
        instr.src2 = static_cast<std::int16_t>(r.i32());
        instr.size = r.u8();
        instr.target = r.u32();
        instr.reconv = r.u32();
        instr.imm = r.u64();
    }
    prog.shaders.resize(r.u64());
    for (vptx::ShaderInfo &shader : prog.shaders) {
        shader.name = r.str();
        shader.stage = static_cast<vptx::ShaderStage>(r.u8());
        shader.entryPc = r.u32();
        shader.numRegs = static_cast<std::uint16_t>(r.u32());
    }
    prog.raygenShader = r.i32();
    prog.immediateAnyHit = r.b();
    prog.anyHitTrampolines.resize(r.u64());
    for (std::int32_t &tramp : prog.anyHitTrampolines)
        tramp = r.i32();
    std::vector<vptx::HitGroupRecord> hit_groups(r.u64());
    for (vptx::HitGroupRecord &hg : hit_groups) {
        hg.closestHit = r.i32();
        hg.anyHit = r.i32();
        hg.intersection = r.i32();
    }
    std::vector<ShaderId> miss_shaders(r.u64());
    for (std::int32_t &miss : miss_shaders)
        miss = r.i32();
    const bool fcc = r.b();
    return CompiledPipeline(std::move(prog), std::move(hit_groups),
                            std::move(miss_shaders), fcc);
}

} // namespace vksim::service
