/**
 * @file
 * Content-addressed artifact cache for the simulation service.
 *
 * Jobs in a batch frequently share expensive host-side build products:
 * the same scene serialized into a BVH, the same shader pipeline
 * translated to VPTX. The cache keys each product by an FNV-1a content
 * digest (scene geometry bytes; shader IR + SBT layout + lowering mode)
 * so sharing needs no cooperation from the submitter — two jobs that
 * happen to describe the same geometry hit the same entry.
 *
 * What is cached:
 *  - BVH artifacts: an AccelImage (accel/serialize.h) — the serialized
 *    BVH bytes captured from a fresh device. Installation into another
 *    fresh device is a memcpy because the deterministic bump allocator
 *    places the first allocation identically everywhere.
 *  - Pipeline artifacts: the CompiledPipeline from
 *    Device::translatePipeline() (program + pre-decoded micro-op
 *    stream + SBT layout, no device addresses). Each job re-uploads
 *    the small SBT into its own device memory.
 *
 * Thread safety: lookups from concurrent jobs are safe. A per-entry
 * mutex makes each key build exactly once — the first caller builds
 * while later callers for the same key block, and distinct keys build
 * concurrently. Counters are therefore deterministic for a fixed job
 * set: builds == number of distinct keys, hits == lookups - builds,
 * regardless of thread count or submission order.
 */

#ifndef VKSIM_SERVICE_ARTIFACTS_H
#define VKSIM_SERVICE_ARTIFACTS_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "accel/serialize.h"
#include "vulkan/device.h"

namespace vksim {

struct Scene;

namespace service {

class DiskStore;

/**
 * Content digest of everything that determines a scene's serialized
 * BVH: geometry kinds, opacity, mesh vertices/indices, procedural
 * primitive parameters, and all instance fields. Camera, materials and
 * lighting are excluded — they shade, they don't traverse.
 */
std::uint64_t sceneGeometryKey(const Scene &scene);

/** Cache traffic counters (deterministic for a fixed job set). */
struct ArtifactCounters
{
    std::uint64_t bvhBuilds = 0;
    std::uint64_t bvhHits = 0;
    std::uint64_t pipelineBuilds = 0;
    std::uint64_t pipelineHits = 0;
};

/** The cache. One per SimService; see file comment for the contract. */
class ArtifactCache
{
  public:
    ArtifactCache() = default;

    /**
     * Layer an on-disk store (diskstore.h) under this cache. A memory
     * miss probes the disk before running the builder; a fresh build is
     * stored back. Corrupt disk artifacts fail digest verification
     * inside DiskStore::get() and behave exactly like misses, so the
     * in-memory counters keep their contract: builds-or-disk-loads ==
     * distinct keys, hits == lookups - that. Pass nullptr to detach.
     * Not thread-safe against in-flight fetches: install before
     * submitting jobs.
     */
    void setDiskStore(DiskStore *store) { disk_ = store; }
    DiskStore *diskStore() const { return disk_; }

    /**
     * Fetch (or build-and-insert) the BVH artifact for `key`. `builder`
     * runs at most once per key across all threads. If `hit` is
     * non-null it is set to whether this lookup was served from cache.
     */
    std::shared_ptr<const AccelImage>
    bvh(std::uint64_t key, const std::function<AccelImage()> &builder,
        bool *hit = nullptr);

    /**
     * Same contract for compiled pipelines. The builder returns the
     * shared_ptr Device::translatePipeline() hands out; the cache stores
     * it as-is, so every job sharing a key shares one CompiledPipeline
     * instance (and one micro-op stream).
     */
    std::shared_ptr<const CompiledPipeline>
    pipeline(std::uint64_t key,
             const std::function<std::shared_ptr<const CompiledPipeline>()>
                 &builder,
             bool *hit = nullptr);

    /** Snapshot of the traffic counters. */
    ArtifactCounters counters() const;

    /** Drop all entries and zero the counters (tests). */
    void clear();

  private:
    /**
     * One slot per key. The entry-level mutex serializes the build;
     * `built` flips only after `value` is fully constructed.
     */
    template <typename T> struct Entry
    {
        std::mutex buildMutex;
        std::shared_ptr<const T> value;
        bool built = false;
    };

    template <typename T>
    std::shared_ptr<const T>
    fetch(std::map<std::uint64_t, std::unique_ptr<Entry<T>>> &table,
          std::uint64_t key,
          const std::function<std::shared_ptr<const T>()> &builder,
          bool *hit, std::uint64_t ArtifactCounters::*builds,
          std::uint64_t ArtifactCounters::*hits);

    DiskStore *disk_ = nullptr; ///< optional durable tier (not owned)
    mutable std::mutex mutex_; ///< guards the tables and counters
    std::map<std::uint64_t, std::unique_ptr<Entry<AccelImage>>> bvhs_;
    std::map<std::uint64_t, std::unique_ptr<Entry<CompiledPipeline>>>
        pipelines_;
    ArtifactCounters counters_;
};

} // namespace service
} // namespace vksim

#endif // VKSIM_SERVICE_ARTIFACTS_H
