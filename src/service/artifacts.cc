#include "service/artifacts.h"

#include "check/check.h"
#include "scene/scene.h"
#include "service/diskstore.h"
#include "util/serial.h"

namespace vksim::service {

namespace {

void
mixVec3(check::Digest &d, const Vec3 &v)
{
    d.mixFloat(v.x);
    d.mixFloat(v.y);
    d.mixFloat(v.z);
}

void
mixMat4(check::Digest &d, const Mat4 &m)
{
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            d.mixFloat(m.m[r][c]);
}

} // namespace

std::uint64_t
sceneGeometryKey(const Scene &scene)
{
    check::Digest d;
    d.mix(scene.geometries.size());
    for (const Geometry &geom : scene.geometries) {
        d.mix(static_cast<std::uint64_t>(geom.kind));
        d.mix(geom.opaque ? 1 : 0);
        if (geom.kind == GeometryKind::Triangles) {
            d.mix(geom.mesh.vertices().size());
            for (const Vec3 &v : geom.mesh.vertices())
                mixVec3(d, v);
            d.mix(geom.mesh.indices().size());
            for (std::uint32_t i : geom.mesh.indices())
                d.mix(i);
        } else {
            d.mix(geom.prims.size());
            for (const ProceduralPrimitive &p : geom.prims) {
                mixVec3(d, p.bounds.lo);
                mixVec3(d, p.bounds.hi);
                d.mix(static_cast<std::uint64_t>(p.shape));
                mixVec3(d, p.center);
                d.mixFloat(p.radius);
                d.mix(static_cast<std::uint64_t>(p.materialIndex));
            }
        }
    }
    d.mix(scene.instances.size());
    for (const Instance &inst : scene.instances) {
        d.mix(inst.geometryIndex);
        mixMat4(d, inst.objectToWorld);
        d.mix(static_cast<std::uint64_t>(inst.instanceCustomIndex));
        d.mix(static_cast<std::uint64_t>(inst.sbtOffset));
    }
    return d.value();
}

template <typename T>
std::shared_ptr<const T>
ArtifactCache::fetch(
    std::map<std::uint64_t, std::unique_ptr<Entry<T>>> &table,
    std::uint64_t key,
    const std::function<std::shared_ptr<const T>()> &builder, bool *hit,
    std::uint64_t ArtifactCounters::*builds,
    std::uint64_t ArtifactCounters::*hits)
{
    Entry<T> *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::unique_ptr<Entry<T>> &slot = table[key];
        if (!slot)
            slot = std::make_unique<Entry<T>>();
        entry = slot.get();
    }
    // Build outside the table lock so distinct keys build concurrently;
    // the entry lock makes same-key callers wait for the one build.
    std::lock_guard<std::mutex> build_lock(entry->buildMutex);
    bool was_hit = entry->built;
    if (!entry->built) {
        entry->value = builder();
        entry->built = true;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.*(was_hit ? hits : builds) += 1;
    }
    if (hit != nullptr)
        *hit = was_hit;
    return entry->value;
}

std::shared_ptr<const AccelImage>
ArtifactCache::bvh(std::uint64_t key,
                   const std::function<AccelImage()> &builder, bool *hit)
{
    // Disk tier: probe before building, store after a fresh build. The
    // wrapper runs under the per-entry build mutex, so each key probes
    // and stores at most once per process.
    std::function<std::shared_ptr<const AccelImage>()> through =
        [this, key, &builder]() -> std::shared_ptr<const AccelImage> {
        if (disk_) {
            if (auto bytes = disk_->get(DiskStore::Kind::Bvh, key)) {
                serial::Reader r(*bytes);
                return std::make_shared<const AccelImage>(
                    decodeAccelImage(r));
            }
        }
        AccelImage image = builder();
        if (disk_) {
            serial::Writer w;
            encodeAccelImage(w, image);
            disk_->put(DiskStore::Kind::Bvh, key, w.buffer());
        }
        return std::make_shared<const AccelImage>(std::move(image));
    };
    return fetch(bvhs_, key, through, hit, &ArtifactCounters::bvhBuilds,
                 &ArtifactCounters::bvhHits);
}

std::shared_ptr<const CompiledPipeline>
ArtifactCache::pipeline(
    std::uint64_t key,
    const std::function<std::shared_ptr<const CompiledPipeline>()> &builder,
    bool *hit)
{
    std::function<std::shared_ptr<const CompiledPipeline>()> through =
        [this, key, &builder]() -> std::shared_ptr<const CompiledPipeline> {
        if (disk_) {
            if (auto bytes = disk_->get(DiskStore::Kind::Pipeline, key)) {
                serial::Reader r(*bytes);
                return std::make_shared<const CompiledPipeline>(
                    decodePipeline(r));
            }
        }
        std::shared_ptr<const CompiledPipeline> pipeline = builder();
        if (disk_) {
            serial::Writer w;
            encodePipeline(w, *pipeline);
            disk_->put(DiskStore::Kind::Pipeline, key, w.buffer());
        }
        return pipeline;
    };
    return fetch(pipelines_, key, through, hit,
                 &ArtifactCounters::pipelineBuilds,
                 &ArtifactCounters::pipelineHits);
}

ArtifactCounters
ArtifactCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    bvhs_.clear();
    pipelines_.clear();
    counters_ = ArtifactCounters{};
}

} // namespace vksim::service
