#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "check/accelcheck.h"
#include "check/diffhook.h"
#include "reftrace/tracer.h"
#include "util/log.h"

namespace vksim::service {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - start)
        .count();
}

/**
 * Fold frame `r` of a multi-frame run into `total`: cycles and
 * wall-clock add, stat groups / histograms / metrics merge in frame
 * order, and occupancy samples are rebased onto the accumulated
 * timeline so the trace stays monotonic.
 */
void
accumulateFrame(RunResult &total, const RunResult &r)
{
    auto merge_group = [](StatGroup &dst, const StatGroup &src) {
        for (const auto &[name, c] : src.counters())
            dst.counter(name).inc(c.value());
        for (const auto &[name, a] : src.accums())
            dst.accum(name).merge(a);
    };
    merge_group(total.core, r.core);
    merge_group(total.rt, r.rt);
    merge_group(total.l1, r.l1);
    merge_group(total.dram, r.dram);
    merge_group(total.l2, r.l2);
    total.rtWarpLatency.merge(r.rtWarpLatency);
    for (const auto &[cycle, occ] : r.occupancyTrace)
        total.occupancyTrace.emplace_back(total.cycles + cycle, occ);
    total.cycles += r.cycles;
    total.metrics.merge(r.metrics);
    total.hostSeconds += r.hostSeconds;
    total.threadsUsed = r.threadsUsed;
    total.epochCyclesUsed = r.epochCyclesUsed;
}

/** One frame on the timed model (the pre-multi-frame run body). */
RunResult
runFrame(wl::Workload &workload, const GpuConfig &cfg)
{
    if (cfg.checkLevel == check::CheckLevel::Full) {
        // Static leg: validate the serialized BVH before simulating on
        // it (layout round-trip, child-AABB containment, leaf backrefs).
        check::Reporter rep;
        checkAccelStruct(*workload.launch().gmem, workload.accel(),
                         &workload.scene(), rep);
        // Dynamic leg: replay sampled finished rays through the CPU
        // reference tracer as the timed run completes them. The tracer
        // must mirror the pipeline's stage modes (immediate any-hit),
        // or the replay would resolve suspensions differently.
        CpuTracer tracer(workload.scene(), *workload.launch().gmem,
                         workload.accel());
        workload.configureTracer(&tracer);
        check::RefTraceDiff diff(tracer, *workload.launch().gmem, &rep);
        check::ScopedTraverseHook hook(
            [&diff](Addr frame_base, const RayTraversal &trav) {
                diff.onTraverseDone(frame_base, trav);
            });
        GpuSimulator sim(cfg, workload.launch());
        return sim.run();
    }
    GpuSimulator sim(cfg, workload.launch());
    return sim.run();
}

} // namespace

RunResult
runPreparedWorkload(wl::Workload &workload, const GpuConfig &config)
{
    GpuConfig cfg = config;
    cfg.fccEnabled = workload.params().fcc;
    cfg.rt.fccEnabled = workload.params().fcc;
    if (cfg.fccEnabled && cfg.its)
        vksim_fatal("FCC and ITS cannot be combined: the per-warp "
                    "coalescing buffer assumes serialized traverses");
    const unsigned frames = std::max(1u, workload.params().frames);
    RunResult total = runFrame(workload, cfg);
    for (unsigned f = 1; f < frames; ++f) {
        // Cross-frame state (the accumulation buffer, the rotated
        // frame seed) persists in the workload's device memory; each
        // frame is a fresh launch of the same prepared context.
        workload.beginFrame(f);
        accumulateFrame(total, runFrame(workload, cfg));
    }
    return total;
}

const JobResult &
JobTicket::get()
{
    vksim_assert(state_ != nullptr);
    if (!state_->done)
        service_->flush();
    vksim_assert(state_->done);
    if (state_->failed)
        throw SimError("job '" + state_->result.name
                           + "' failed: " + state_->error,
                       state_->errorCycle);
    return state_->result;
}

JobResult
JobTicket::take()
{
    get();
    JobResult result = std::move(state_->result);
    state_.reset();
    return result;
}

SimService::SimService(const Config &config) : config_(config) {}

SimService::~SimService()
{
    // Pending jobs whose tickets were dropped without get() are simply
    // discarded; running them here could fire check hooks mid-teardown.
}

GpuConfig
SimService::validatedConfig(const GpuConfig &config, bool fcc) const
{
    GpuConfig effective = config;
    effective.fccEnabled = fcc;
    effective.rt.fccEnabled = fcc;
    std::vector<std::string> problems = effective.validate();
    if (!problems.empty()) {
        std::string message = "invalid GpuConfig:";
        for (const std::string &p : problems)
            message += "\n  - " + p;
        throw std::invalid_argument(message);
    }
    return effective;
}

JobTicket
SimService::submit(const JobSpec &spec)
{
    Job job;
    job.spec = spec;
    if (job.spec.name.empty())
        job.spec.name = "job" + std::to_string(submitted_);
    job.effective = validatedConfig(spec.config, spec.params.fcc);
    job.state = std::make_shared<JobTicket::State>();
    job.state->result.name = job.spec.name;
    job.submitIndex = submitted_;
    pending_.push_back(std::move(job));
    ++submitted_;
    return JobTicket(this, pending_.back().state);
}

JobTicket
SimService::submit(wl::Workload &workload, const GpuConfig &config,
                   const std::string &name)
{
    Job job;
    job.spec.name = name.empty() ? "job" + std::to_string(submitted_)
                                 : name;
    job.spec.workload = workload.id();
    job.spec.params = workload.params();
    job.external = &workload;
    job.effective = validatedConfig(config, workload.params().fcc);
    job.state = std::make_shared<JobTicket::State>();
    job.state->result.name = job.spec.name;
    job.submitIndex = submitted_;
    pending_.push_back(std::move(job));
    ++submitted_;
    return JobTicket(this, pending_.back().state);
}

bool
SimService::cancel(const JobTicket &ticket)
{
    if (ticket.state_ == nullptr || ticket.state_->done)
        return false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].state != ticket.state_)
            continue;
        // Park a "cancelled" failure on the ticket — get() throws it —
        // and keep the state alive like any finished job's.
        ticket.state_->failed = true;
        ticket.state_->error = "cancelled before execution";
        ticket.state_->done = true;
        completed_.push_back(pending_[i].state);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
    }
    return false;
}

std::vector<std::string>
SimService::executionOrder() const
{
    std::vector<const Job *> order;
    order.reserve(pending_.size());
    for (const Job &job : pending_)
        order.push_back(&job);
    std::stable_sort(order.begin(), order.end(),
                     [](const Job *a, const Job *b) {
                         return a->spec.priority > b->spec.priority;
                     });
    std::vector<std::string> names;
    names.reserve(order.size());
    for (const Job *job : order)
        names.push_back(job->spec.name);
    return names;
}

unsigned
SimService::threadCount() const
{
    return ThreadPool::resolveThreadCount(config_.threads);
}

void
SimService::runJob(Job &job, bool force_serial_engine)
{
    JobResult &result = job.state->result;
    GpuConfig cfg = job.effective;
    if (force_serial_engine && cfg.threads == 0)
        cfg.threads = 1; // auto: whole-job parallelism replaces SM lanes

    wl::Workload *workload = job.external;
    if (workload == nullptr) {
        auto start = std::chrono::steady_clock::now();
        result.workload = std::make_shared<wl::Workload>(
            job.spec.workload, job.spec.params, &artifacts_);
        result.buildSeconds = secondsSince(start);
        workload = result.workload.get();
        result.bvhCacheHit = workload->bvhCacheHit();
        result.pipelineCacheHit = workload->pipelineCacheHit();
    }
    // A SimError (cycle watchdog, other per-run failures) is parked on
    // the ticket instead of propagating: job bodies run on the service
    // pool, where an escaping exception would abort the whole batch.
    // JobTicket::get() rethrows it to the caller of *this* job only.
    try {
        result.run = runPreparedWorkload(*workload, cfg);
        result.image = workload->readFramebuffer();
        // The durable-queue hook: persist this job the moment it
        // finishes, not after the whole batch — a crash between two
        // jobs must not lose the first one. A hook failure (disk full)
        // fails this ticket like an engine error would.
        if (config_.onJobComplete)
            config_.onJobComplete(result);
    } catch (const SimError &e) {
        job.state->failed = true;
        job.state->error = e.what();
        job.state->errorCycle = e.cycle();
    }
    job.state->done = true;
}

void
SimService::flush()
{
    if (pending_.empty())
        return;
    std::vector<Job> batch;
    batch.swap(pending_);
    // Priority order (descending, stable): higher-priority jobs start
    // first — serially this is strict ordering, in parallel it decides
    // which jobs claim the first lanes. Results are unaffected.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Job &a, const Job &b) {
                         return a.spec.priority > b.spec.priority;
                     });

    if (batch.size() == 1) {
        // A lone job keeps its intra-run SM parallelism (threads as
        // configured), making the deprecated shims behave exactly like
        // the pre-service direct calls.
        runJob(batch.front(), /*force_serial_engine=*/false);
    } else {
        // Full-check jobs install the process-global traverse hook, so
        // they cannot overlap anything; run them after the parallel
        // wave.
        std::vector<std::size_t> parallel_jobs;
        std::vector<std::size_t> full_jobs;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (batch[i].effective.checkLevel == check::CheckLevel::Full)
                full_jobs.push_back(i);
            else
                parallel_jobs.push_back(i);
        }

        if (!parallel_jobs.empty()) {
            if (pool_ == nullptr)
                pool_ = std::make_unique<ThreadPool>(config_.threads);
            pool_->parallelFor(parallel_jobs.size(), [&](std::size_t i) {
                runJob(batch[parallel_jobs[i]],
                       /*force_serial_engine=*/true);
            });
        }
        for (std::size_t i : full_jobs)
            runJob(batch[i], /*force_serial_engine=*/true);
    }

    // Keep the result states alive for the service's lifetime: get()
    // hands out references, and callers may have dropped the ticket
    // (`svc.submit(...).get()` on a temporary).
    for (Job &job : batch)
        completed_.push_back(std::move(job.state));
}

SimService &
defaultService()
{
    static SimService service;
    return service;
}

} // namespace vksim::service
