/**
 * @file
 * Batch-manifest parsing: the JSON job-list format consumed by
 * tools/batchrun, validated strictly and turned into service::JobSpec
 * entries.
 *
 * Validation happens up front, before anything touches a SimService:
 * unknown keys (top-level or per-job), missing required fields, and
 * wrongly typed values are all rejected with a message that names the
 * offending job, the bad key, and the valid choices. A typo'd manifest
 * therefore fails in milliseconds with a pointer at the typo, not after
 * half a sweep has already simulated.
 *
 * Format — {"jobs": [ {...}, ... ]} with per-job fields:
 *   name     string   job name (default: "<workload><index>")
 *   workload string   any registered workload name (required); the
 *                     error message for a bad name lists the valid set
 *   width    number   launch width in pixels (default 32)
 *   height   number   launch height (default: width)
 *   scale    number   EXT tessellation fraction (default 0.25)
 *   detail   number   RTV5 subdivision (default 5)
 *   prims    number   RTV6 primitive count (default 400)
 *   fcc      bool     lower traceRay with FCC (default false)
 *   config   string   baseline | mobile (default baseline)
 *   variant  string   baseline | rtcache | perfectbvh | perfectmem
 *   priority number   scheduling priority: higher starts earlier
 *                     (default 0; never affects results)
 *   frames   number   frames to simulate and accumulate (default 1;
 *                     must be >= 1 — only ACC carries state across)
 */

#ifndef VKSIM_SERVICE_MANIFEST_H
#define VKSIM_SERVICE_MANIFEST_H

#include <string>
#include <vector>

#include "service/service.h"
#include "util/jsonio.h"

namespace vksim::service {

/**
 * Parse and validate a batch manifest into JobSpecs. `base` carries the
 * shared command-line flags (check level, perf summary) folded into
 * every job's config. Returns false and sets *error on the first
 * problem; *out is only meaningful on success.
 */
bool parseManifest(const JsonValue &root, const GpuConfig &base,
                   std::vector<JobSpec> *out, std::string *error);

/**
 * parseManifest over raw JSON text; syntax errors are reported through
 * *error the same way validation errors are.
 */
bool parseManifestText(const std::string &text, const GpuConfig &base,
                       std::vector<JobSpec> *out, std::string *error);

} // namespace vksim::service

#endif // VKSIM_SERVICE_MANIFEST_H
