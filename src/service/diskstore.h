/**
 * @file
 * On-disk content-addressed artifact store (DESIGN.md, "Persistence &
 * recovery contract").
 *
 * The in-memory ArtifactCache makes products shareable *within* one
 * service; the DiskStore makes them durable *across* processes. Both
 * speak the same keys — the FNV-1a content digests of artifacts.h /
 * xlate::digestPipeline() — so a batch restarted after a crash reloads
 * the BVHs and translated pipelines its predecessor built instead of
 * rebuilding them.
 *
 * Layout: one file per artifact at `<root>/<kind>/<16-hex-key>.bin`.
 * Every file carries a self-describing header (magic, format version,
 * kind, key, payload size, FNV-1a payload digest) and is committed by
 * writing to a `.tmp` sibling and renaming it into place, so a crash
 * mid-store never leaves a readable-but-torn artifact.
 *
 * Verification-on-load is absolute: a file whose magic, version, kind,
 * key, size, or payload digest does not check out is *evicted* (the
 * file is unlinked) and reported as a miss — corrupt bytes are never
 * served, the artifact is simply rebuilt and re-stored.
 *
 * Thread safety: get()/put() may be called from concurrent jobs. The
 * atomic-rename commit makes racing same-key writers converge on one
 * complete file; counters are mutex-guarded.
 */

#ifndef VKSIM_SERVICE_DISKSTORE_H
#define VKSIM_SERVICE_DISKSTORE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "accel/serialize.h"
#include "util/serial.h"
#include "vulkan/device.h"

namespace vksim::service {

class DiskStore
{
  public:
    /** Artifact namespaces; each gets its own subdirectory. */
    enum class Kind : std::uint32_t
    {
        Bvh = 1,      ///< serialized AccelImage
        Pipeline = 2, ///< translated CompiledPipeline
        Result = 3,   ///< per-job result record (batch resume)
    };

    /** Number of traffic events since construction. */
    struct Counters
    {
        std::uint64_t loads = 0;  ///< verified payloads served
        std::uint64_t misses = 0; ///< absent keys
        std::uint64_t stores = 0; ///< payloads committed
        std::uint64_t corruptEvictions = 0; ///< failed verification
    };

    /** Opens (and lazily creates) the store rooted at `root`. */
    explicit DiskStore(std::string root);

    /**
     * Load and verify the payload stored under (kind, key). Returns
     * nullopt when the key is absent — or when the file on disk fails
     * verification, in which case it is unlinked first (see file
     * comment). Never throws for bad content; throws SimError only for
     * environmental failures (unreadable root).
     */
    std::optional<std::vector<std::uint8_t>> get(Kind kind,
                                                 std::uint64_t key) const;

    /** Commit `payload` under (kind, key) atomically. */
    void put(Kind kind, std::uint64_t key,
             const std::vector<std::uint8_t> &payload) const;

    /** Unlink the artifact (job-completion cleanup); absent is fine. */
    void remove(Kind kind, std::uint64_t key) const;

    /** Absolute path an artifact lives at (tests, diagnostics). */
    std::string path(Kind kind, std::uint64_t key) const;

    /**
     * Path for a job's engine snapshot (gpu/checkpoint.h file format,
     * which carries its own header and digest — snapshots are not
     * DiskStore artifacts, they just live under the same root in
     * `<root>/snapshots/`, keyed like Kind::Result records).
     */
    std::string snapshotPath(std::uint64_t job_key) const;

    const std::string &root() const { return root_; }
    Counters counters() const;

  private:
    std::string root_;
    mutable std::mutex mutex_; ///< guards counters_
    mutable Counters counters_;
};

/** AccelImage <-> bytes codec for Kind::Bvh payloads. */
void encodeAccelImage(serial::Writer &w, const AccelImage &image);
AccelImage decodeAccelImage(serial::Reader &r);

/**
 * CompiledPipeline <-> bytes codec for Kind::Pipeline payloads. The
 * micro-op stream is not serialized: it is a pure function of the
 * program, so decode rebuilds it (the CompiledPipeline constructor
 * does), and the encoding version is part of the digest key instead.
 */
void encodePipeline(serial::Writer &w, const CompiledPipeline &pipeline);
CompiledPipeline decodePipeline(serial::Reader &r);

} // namespace vksim::service

#endif // VKSIM_SERVICE_DISKSTORE_H
