/**
 * @file
 * Batch result consolidation for tools/batchrun, extracted so the
 * reporting rules are unit-testable without running simulations.
 *
 * A JobRecord is everything the consolidated results file needs from
 * one finished job. Records are also what the durable batch queue
 * persists to the disk store (Kind::Result) when a store is attached:
 * a --resume rerun loads the records of already-finished jobs and
 * renders them through the exact same writer as freshly run jobs, which
 * is what makes an interrupted-then-resumed batch's results file
 * byte-identical to an uninterrupted run's.
 *
 * Determinism rules the writer enforces (DESIGN.md, "Service & batching
 * contract"):
 *  - Jobs are emitted in sorted name order.
 *  - The "artifacts" section is *derived* from the records' content
 *    keys (builds = distinct keys, hits = records - builds) rather than
 *    read from live cache counters. For an uninterrupted run the two
 *    are equal by the ArtifactCache contract; for a resumed run only
 *    the derived form is well-defined (the predecessor process did some
 *    of the building).
 *  - Everything above the trailing "perf" section excludes wall-clock
 *    and thread-count data. "perf" is host telemetry, excluded from
 *    byte-identity comparisons (tools/compare_results.py strips it).
 */

#ifndef VKSIM_SERVICE_BATCHREPORT_H
#define VKSIM_SERVICE_BATCHREPORT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/serial.h"

namespace vksim::service {

struct JobSpec;

/** Everything the results file needs from one finished job. */
struct JobRecord
{
    std::string name;
    std::string workloadName;
    std::uint64_t cycles = 0;
    std::uint64_t bvhKey = 0;      ///< artifact content keys: sharing
    std::uint64_t pipelineKey = 0; ///< is derived from key equality
    std::string statsJson; ///< metrics registry, writeJson(os, 2) form
    unsigned epochCyclesUsed = 0;
    unsigned threadsUsed = 0;
    /** Wall telemetry ("perf" section only; 0 for record-loaded jobs). */
    double simCyclesPerSecond = 0.0;
};

/**
 * Write the consolidated results JSON (artifacts summary derived from
 * the records, jobs in sorted name order, trailing perf section).
 * Records must have unique names.
 */
void writeBatchResults(std::ostream &os,
                       const std::vector<JobRecord> &records);

/**
 * One-line failure summary naming every failed job (sorted), e.g.
 * "2 job(s) failed: EXT1, TRI0". Empty string when nothing failed —
 * batchrun's exit status and stderr report are driven by this.
 */
std::string failureSummary(const std::vector<std::string> &failed_names);

/** JobRecord <-> bytes codec for DiskStore Kind::Result payloads. */
void encodeJobRecord(serial::Writer &w, const JobRecord &record);
JobRecord decodeJobRecord(serial::Reader &r);

/**
 * Durable identity of a job within a batch: FNV-1a over the job's name,
 * workload, scale parameters, and the structural GPU-config digest.
 * Keys persisted results and engine snapshots in the disk store, so a
 * manifest edit that changes what a job *means* changes its key and
 * invalidates stale artifacts instead of resuming into them.
 */
std::uint64_t jobKey(const JobSpec &spec);

} // namespace vksim::service

#endif // VKSIM_SERVICE_BATCHREPORT_H
