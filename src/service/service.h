/**
 * @file
 * SimService: the batched simulation front door.
 *
 * Callers describe *what* to simulate — a (workload, GpuConfig) pair per
 * job — and the service decides *how*: jobs queue up via submit(), a
 * flush() (or the first JobTicket::get()) runs the whole pending batch,
 * and results come back through tickets. Batching is what enables the
 * two things a loose collection of one-off simulation calls cannot do:
 *
 *  - Cross-job artifact sharing. All jobs in a service share one
 *    content-addressed ArtifactCache, so the same scene's BVH is built
 *    once and the same shader pipeline is translated once, no matter how
 *    many configs sweep over them (see artifacts.h).
 *  - Parallel scheduling without determinism loss. A multi-job batch
 *    runs whole jobs concurrently on a private thread pool; a single-job
 *    batch runs inline with the job's own intra-run SM parallelism.
 *    Every per-job metrics dump is byte-identical regardless of service
 *    thread count or submission order (each job is an isolated
 *    deterministic simulation; its metrics exclude wall-clock).
 *
 * Scheduling rules (see DESIGN.md, "Service & batching contract"):
 *  - In a multi-job batch, a job whose config.threads == 0 ("auto") is
 *    forced to a serial engine (threads = 1): whole-job parallelism
 *    replaces intra-job parallelism. An *explicit* config.threads > 0 is
 *    honored — tools like diffrun exist to compare engine thread counts.
 *  - Jobs at CheckLevel::Full run sequentially after the parallel ones:
 *    the traverse hook they install is process-global.
 *
 * Thread model: submit()/flush()/get() are called from one controlling
 * thread; job bodies run on the service's pool. The service validates
 * configs at submit time (GpuConfig::validate()) and throws
 * std::invalid_argument with the full list of problems, so a bad job in
 * a sweep fails fast instead of deadlocking mid-batch.
 */

#ifndef VKSIM_SERVICE_SERVICE_H
#define VKSIM_SERVICE_SERVICE_H

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.h"
#include "service/artifacts.h"
#include "util/simerror.h"
#include "util/threadpool.h"
#include "workloads/workload.h"

namespace vksim::service {

/** One simulation request: build this workload, run it on this config. */
struct JobSpec
{
    /**
     * Job name, the stable identity results are reported under. Empty =
     * auto-assigned "job<N>" from the submission index.
     */
    std::string name;
    wl::WorkloadId workload = wl::WorkloadId::TRI;
    wl::WorkloadParams params;
    GpuConfig config;
    /**
     * Scheduling priority: higher runs earlier within a batch; ties
     * keep submission order. Priority affects *when* a job runs, never
     * its result — every job is an isolated deterministic simulation.
     */
    int priority = 0;
};

/** What a finished job hands back. */
struct JobResult
{
    std::string name;
    RunResult run;
    Image image;
    /** The built workload (null for externally prepared submissions). */
    std::shared_ptr<wl::Workload> workload;
    bool bvhCacheHit = false;      ///< BVH came from the artifact cache
    bool pipelineCacheHit = false; ///< pipeline came from the cache
    double buildSeconds = 0.0;     ///< host time building the workload
};

class SimService;

/**
 * Future-like handle to a submitted job. get() flushes the service if
 * the batch has not run yet, then returns this job's result; it is valid
 * for the lifetime of the service.
 */
class JobTicket
{
  public:
    JobTicket() = default;

    /**
     * Block until the job has run and return its result. A job that
     * failed with a recoverable SimError (e.g. the cycle watchdog)
     * rethrows that error *here*, from the ticket of the failed job
     * only — the rest of the batch runs to completion and its tickets
     * stay healthy.
     */
    const JobResult &get();

    /**
     * get(), then move the result out of the service (RunResult is
     * move-only). The ticket becomes invalid.
     */
    JobResult take();

    bool valid() const { return state_ != nullptr; }

    /** Ran and failed? (get() would rethrow; false before the flush.) */
    bool failed() const { return state_ != nullptr && state_->failed; }

  private:
    friend class SimService;

    struct State
    {
        JobResult result;
        bool done = false;
        bool failed = false;       ///< done, but with a SimError
        std::string error;         ///< the SimError message
        Cycle errorCycle = ~Cycle(0);
    };

    JobTicket(SimService *service, std::shared_ptr<State> state)
        : service_(service), state_(std::move(state))
    {
    }

    SimService *service_ = nullptr;
    std::shared_ptr<State> state_;
};

/** The batched simulation service. */
class SimService
{
  public:
    struct Config
    {
        /**
         * Concurrent-job lanes for multi-job batches. 0 resolves via
         * ThreadPool::resolveThreadCount (VKSIM_THREADS / hardware
         * concurrency); 1 runs batches sequentially.
         */
        unsigned threads = 0;

        /**
         * Invoked on the executing thread the moment each job finishes
         * successfully — *before* flush() returns — so callers can
         * persist results incrementally (tools/batchrun writes each
         * job's result record to the on-disk store here; a crash
         * between two jobs then loses at most the in-flight one). May
         * run concurrently for different jobs; a SimError thrown here
         * fails this job's ticket like an engine error would.
         */
        std::function<void(const JobResult &)> onJobComplete;
    };

    SimService() : SimService(Config()) {}
    explicit SimService(const Config &config);
    ~SimService();

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /**
     * Queue a job. Validates the job's effective GpuConfig (with the
     * workload's FCC mode folded in) and throws std::invalid_argument
     * listing every problem if it is rejected. Execution is deferred to
     * flush() / the first get().
     */
    JobTicket submit(const JobSpec &spec);

    /**
     * Queue a job over an externally prepared workload (single-run
     * callers and tools that pre-build workloads to share them across
     * jobs). The caller keeps `workload` alive until the batch has run;
     * JobResult::workload stays null.
     */
    JobTicket submit(wl::Workload &workload, const GpuConfig &config,
                     const std::string &name = "");

    /** Run every pending job. No-op when nothing is pending. */
    void flush();

    /**
     * Cancel a job that has not run yet. Returns true and marks the
     * ticket failed (get() throws a "cancelled" SimError) when the job
     * was still pending; returns false — and changes nothing — once
     * the job has been flushed (finished work is never discarded).
     */
    bool cancel(const JobTicket &ticket);

    /**
     * Names of the pending jobs in the order the next flush() will run
     * (or start) them: descending priority, submission order within a
     * priority level. Observability for tests and tools.
     */
    std::vector<std::string> executionOrder() const;

    /** Number of jobs accepted so far (auto-name indexing, tests). */
    std::size_t submittedCount() const { return submitted_; }

    /** Concurrent-job lanes multi-job batches will use. */
    unsigned threadCount() const;

    /** The shared artifact cache (counters, tests). */
    ArtifactCache &artifacts() { return artifacts_; }
    const ArtifactCache &artifacts() const { return artifacts_; }

  private:
    struct Job
    {
        JobSpec spec;
        wl::Workload *external = nullptr; ///< non-null: pre-built
        GpuConfig effective;              ///< validated, FCC folded in
        std::shared_ptr<JobTicket::State> state;
        std::size_t submitIndex = 0; ///< priority tie-break
    };

    friend class JobTicket;

    void runJob(Job &job, bool force_serial_engine);
    GpuConfig validatedConfig(const GpuConfig &config, bool fcc) const;

    Config config_;
    ArtifactCache artifacts_;
    std::vector<Job> pending_;
    /** Result states of every flushed batch: JobTicket::get() hands out
     *  references that must outlive dropped tickets. */
    std::vector<std::shared_ptr<JobTicket::State>> completed_;
    std::size_t submitted_ = 0;
    std::unique_ptr<ThreadPool> pool_; ///< created lazily on first batch
};

/**
 * Process-wide convenience service (auto thread count) for callers
 * running a simulation outside any batching context — the idiom is
 * defaultService().submit(workload, config).take().run. Tools and
 * tests that care about scheduling own their SimService instead.
 */
SimService &defaultService();

/**
 * Run a prepared workload launch on `config` exactly as a service job
 * would (Full-check differential legs included). This is the single
 * implementation every submission path bottoms out in.
 */
RunResult runPreparedWorkload(wl::Workload &workload,
                              const GpuConfig &config);

} // namespace vksim::service

#endif // VKSIM_SERVICE_SERVICE_H
