/**
 * @file
 * AccelWattch-style power model (paper Sec. VI-D): dynamic energy from
 * activity counters of the timed run, plus constant and static power.
 * Coefficients follow the qualitative breakdown the paper reports — the
 * RT units account for under 1 % of GPU power, DRAM around 10 %, and
 * constant + static power dominate.
 */

#ifndef VKSIM_POWER_POWER_H
#define VKSIM_POWER_POWER_H

#include "gpu/gpu.h"

namespace vksim {

/** Per-event energies (picojoules) and baseline powers (watts). */
struct PowerConfig
{
    double aluOpPj = 8.0;
    double sfuOpPj = 30.0;
    double ldstOpPj = 15.0;
    double l1AccessPj = 22.0;
    double l2AccessPj = 55.0;
    double dramAccessPj = 2600.0; ///< per 32 B DRAM transfer (incl. IO)
    double rtBoxOpPj = 6.0;
    double rtTriOpPj = 9.0;
    double rtTransformOpPj = 7.0;
    double constantWatts = 30.0; ///< clocks, IO, leakage-independent
    double staticWattsPerSm = 1.1;
    double coreClockMhz = 1365.0;
};

/** Energy breakdown of one run. */
struct PowerReport
{
    double seconds = 0;
    double totalJoules = 0;
    double averageWatts = 0;

    double constantJoules = 0;
    double staticJoules = 0;
    double coreDynamicJoules = 0; ///< ALU/SFU/LDST
    double cacheJoules = 0;       ///< L1 + L2
    double dramJoules = 0;
    double rtUnitJoules = 0;

    double fractionOf(double joules) const
    {
        return totalJoules > 0 ? joules / totalJoules : 0;
    }
};

/** Estimate the power/energy of a timed run. */
PowerReport estimatePower(const RunResult &run, unsigned num_sms,
                          const PowerConfig &config = {});

} // namespace vksim

#endif // VKSIM_POWER_POWER_H
