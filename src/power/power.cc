#include "power/power.h"

namespace vksim {

PowerReport
estimatePower(const RunResult &run, unsigned num_sms,
              const PowerConfig &config)
{
    PowerReport report;
    report.seconds =
        static_cast<double>(run.cycles) / (config.coreClockMhz * 1e6);

    constexpr double kPjToJ = 1e-12;
    report.coreDynamicJoules =
        (run.core.get("issue_alu") * config.aluOpPj
         + run.core.get("issue_sfu") * config.sfuOpPj
         + run.core.get("issue_ldst") * config.ldstOpPj)
        * kWarpSize * kPjToJ;

    double l1_accesses = run.l1.get("accesses.shader")
                         + run.l1.get("accesses.rtunit");
    double l2_accesses = run.l2.get("accesses.shader")
                         + run.l2.get("accesses.rtunit");
    report.cacheJoules = (l1_accesses * config.l1AccessPj
                          + l2_accesses * config.l2AccessPj)
                         * kPjToJ;

    report.dramJoules =
        run.dram.get("requests") * config.dramAccessPj * kPjToJ;

    report.rtUnitJoules =
        (run.rt.get("ops_box") * config.rtBoxOpPj
         + run.rt.get("ops_triangle") * config.rtTriOpPj
         + run.rt.get("ops_transform") * config.rtTransformOpPj)
        * kPjToJ;

    report.constantJoules = config.constantWatts * report.seconds;
    report.staticJoules =
        config.staticWattsPerSm * num_sms * report.seconds;

    report.totalJoules = report.coreDynamicJoules + report.cacheJoules
                         + report.dramJoules + report.rtUnitJoules
                         + report.constantJoules + report.staticJoules;
    report.averageWatts =
        report.seconds > 0 ? report.totalJoules / report.seconds : 0;
    return report;
}

} // namespace vksim
