/**
 * @file
 * The VPTX warp executor: functional execution of one instruction for one
 * warp split, shared by the functional-only runner and the timed SM model
 * (which executes functionally at issue, GPGPU-Sim style, and models
 * latency separately from the returned StepResult).
 *
 * The hot path dispatches over the pre-decoded micro-op stream
 * (vptx/uop.h): the timing model fetches the MicroOp once per issue
 * attempt — serving the scoreboard, structural-hazard checks and the
 * functional step from the same decode — and the per-lane handlers run
 * as a dense table / computed-goto threaded loop over the warp's
 * structure-of-arrays register file. The legacy structural-ISA
 * interpreter is retained behind ExecOptions::structuralDispatch as the
 * reference for differential tests and the dispatch benchmark.
 */

#ifndef VKSIM_VPTX_EXEC_H
#define VKSIM_VPTX_EXEC_H

#include <memory>

#include "util/stats.h"
#include "vptx/context.h"
#include "vptx/rt_runtime.h"
#include "vptx/uop.h"

namespace vksim::vptx {

/** Outcome of executing one instruction for a warp split. */
struct StepResult
{
    Opcode op = Opcode::Nop;
    ExecUnit unit = ExecUnit::ALU;
    unsigned activeLanes = 0;
    std::int16_t dstReg = -1; ///< destination register (scoreboarding)

    /** Per-lane memory accesses this instruction performed. */
    std::vector<MemAccess> accesses;

    /** The split issued traverseAS and is now parked. */
    bool startedTraverse = false;
    int traverseSplitId = -1;

    bool exited = false; ///< lanes terminated
};

/** Options controlling executor behaviour (case studies). */
struct ExecOptions
{
    bool fccEnabled = false; ///< function call coalescing (Sec. IV-A)
    /** Short-stack entries per ray (ablation; paper uses 8). */
    unsigned shortStackEntries = 8;
    /**
     * Execute through the legacy structural-ISA interpreter instead of
     * the micro-op stream (reference path for differential tests and
     * BM_VptxDispatch; never decodes micro-ops).
     */
    bool structuralDispatch = false;
};

/**
 * Executes VPTX instructions against warp state. Stateless apart from the
 * launch context reference and the decode telemetry, so one executor
 * serves all warps of a launch.
 */
class WarpExecutor
{
  public:
    WarpExecutor(const LaunchContext &ctx, ExecOptions options = {});

    /**
     * Pre-decoded micro-op at `pc`. Counts one decode: the timing model
     * calls this exactly once per issue attempt and feeds the result to
     * step(), so decode count per dynamic instruction is exactly 1.
     */
    const MicroOp &
    fetch(std::uint32_t pc)
    {
        ++decodes_;
        return uops_->at(pc);
    }

    /**
     * Execute the instruction at split `split_idx`'s pc for all its
     * active lanes, updating thread state, memory, and control flow.
     */
    StepResult step(Warp &warp, int split_idx);

    /** As above with the already-fetched micro-op (no re-decode). */
    StepResult step(Warp &warp, int split_idx, const MicroOp &u);

    /** Legacy structural-ISA path (reference for differential tests). */
    StepResult stepStructural(Warp &warp, int split_idx);

    /**
     * Finish a parked traverseAS: write traversal results to the frames,
     * build the FCC table when enabled, and unblock the split.
     * The parked traversals for this split must be complete.
     */
    void completeTraverse(Warp &warp, int split_id);

    /** Run the parked traversals to completion (functional mode). */
    void runTraverseFunctional(Warp &warp, int split_id);

    const ExecOptions &options() const { return options_; }

    /** The micro-op stream this executor dispatches over. */
    const MicroProgram &uops() const { return *uops_; }

    /** Micro-op fetches performed (decode-count regression telemetry). */
    std::uint64_t decodeCount() const { return decodes_; }

  private:
    void execLanes(Warp &warp, Mask mask, const MicroOp &u,
                   StepResult &result);
    void execLaneStructural(Warp &warp, ThreadState &t, const Instr &instr,
                            StepResult &result, unsigned lane);

    const LaunchContext &ctx_;
    ExecOptions options_;
    std::uint64_t anyHitGroups_ = 0; ///< immediate-mode hit-group mask
    const MicroProgram *uops_ = nullptr;
    std::unique_ptr<MicroProgram> ownedUops_; ///< fallback when ctx has none
    std::uint64_t decodes_ = 0;
};

/**
 * Functional-only launch runner: executes every warp to completion with
 * zero-latency memory; used for image-correctness validation and by unit
 * tests of shaders and the translator.
 */
class FunctionalRunner
{
  public:
    FunctionalRunner(const LaunchContext &ctx, ExecOptions options = {},
                     WarpCflow::Mode mode = WarpCflow::Mode::Stack);

    /** Execute the whole launch. */
    void run();

    /** Instruction-issue statistics (per exec unit and total). */
    const StatGroup &stats() const { return stats_; }

    /** Micro-op fetches the run performed (1 per dynamic instruction). */
    std::uint64_t decodeCount() const { return exec_.decodeCount(); }

  private:
    const LaunchContext &ctx_;
    WarpExecutor exec_;
    WarpCflow::Mode mode_;
    StatGroup stats_{"functional"};
};

/** Initialize a warp's threads and control flow for a launch. */
void initWarp(Warp &warp, std::uint32_t warp_id, const LaunchContext &ctx,
              WarpCflow::Mode mode);

/** Result of one immediate (mid-traversal) any-hit invocation. */
struct AnyHitRun
{
    bool commit = false;            ///< verdict: candidate accepted
    std::uint64_t instructions = 0; ///< dynamic instructions executed
};

/**
 * Run the any-hit shader for a traversal suspended on `candidate`
 * (immediate any-hit mode). Executes the hit group's translate-time
 * trampoline in a one-lane mini-warp against the suspended ray's frame:
 * the candidate is staged as deferred entry 0, kHitT is seeded with
 * `current_tmax`, and the shader's CommitAnyHit applies the same
 * strictly-closer rule as the deferred resolution path. The frame's hit
 * and deferred words are scratch here — writeResults() rewrites them when
 * the traversal completes. Deterministic: the mini-warp touches only the
 * suspended thread's own frame.
 */
AnyHitRun runAnyHitShader(const LaunchContext &ctx, Addr frame_base,
                          const DeferredHit &candidate, float current_tmax,
                          const ExecOptions &options = {});

} // namespace vksim::vptx

#endif // VKSIM_VPTX_EXEC_H
