/**
 * @file
 * The VPTX warp executor: functional execution of one instruction for one
 * warp split, shared by the functional-only runner and the timed SM model
 * (which executes functionally at issue, GPGPU-Sim style, and models
 * latency separately from the returned StepResult).
 */

#ifndef VKSIM_VPTX_EXEC_H
#define VKSIM_VPTX_EXEC_H

#include "util/stats.h"
#include "vptx/context.h"
#include "vptx/rt_runtime.h"

namespace vksim::vptx {

/** Outcome of executing one instruction for a warp split. */
struct StepResult
{
    Opcode op = Opcode::Nop;
    ExecUnit unit = ExecUnit::ALU;
    unsigned activeLanes = 0;
    std::int16_t dstReg = -1; ///< destination register (scoreboarding)

    /** Per-lane memory accesses this instruction performed. */
    std::vector<MemAccess> accesses;

    /** The split issued traverseAS and is now parked. */
    bool startedTraverse = false;
    int traverseSplitId = -1;

    bool exited = false; ///< lanes terminated
};

/** Options controlling executor behaviour (case studies). */
struct ExecOptions
{
    bool fccEnabled = false; ///< function call coalescing (Sec. IV-A)
    /** Short-stack entries per ray (ablation; paper uses 8). */
    unsigned shortStackEntries = 8;
};

/**
 * Executes VPTX instructions against warp state. Stateless apart from the
 * launch context reference, so one executor serves all warps of a launch.
 */
class WarpExecutor
{
  public:
    WarpExecutor(const LaunchContext &ctx, ExecOptions options = {})
        : ctx_(ctx), options_(options)
    {
    }

    /**
     * Execute the instruction at split `split_idx`'s pc for all its
     * active lanes, updating thread state, memory, and control flow.
     */
    StepResult step(Warp &warp, int split_idx);

    /**
     * Finish a parked traverseAS: write traversal results to the frames,
     * build the FCC table when enabled, and unblock the split.
     * The parked traversals for this split must be complete.
     */
    void completeTraverse(Warp &warp, int split_id);

    /** Run the parked traversals to completion (functional mode). */
    void runTraverseFunctional(Warp &warp, int split_id);

    const ExecOptions &options() const { return options_; }

  private:
    void execLane(Warp &warp, ThreadState &t, const Instr &instr,
                  StepResult &result, unsigned lane);

    const LaunchContext &ctx_;
    ExecOptions options_;
};

/**
 * Functional-only launch runner: executes every warp to completion with
 * zero-latency memory; used for image-correctness validation and by unit
 * tests of shaders and the translator.
 */
class FunctionalRunner
{
  public:
    FunctionalRunner(const LaunchContext &ctx, ExecOptions options = {},
                     WarpCflow::Mode mode = WarpCflow::Mode::Stack);

    /** Execute the whole launch. */
    void run();

    /** Instruction-issue statistics (per exec unit and total). */
    const StatGroup &stats() const { return stats_; }

  private:
    const LaunchContext &ctx_;
    WarpExecutor exec_;
    WarpCflow::Mode mode_;
    StatGroup stats_{"functional"};
};

/** Initialize a warp's threads and control flow for a launch. */
void initWarp(Warp &warp, std::uint32_t warp_id, const LaunchContext &ctx,
              WarpCflow::Mode mode);

} // namespace vksim::vptx

#endif // VKSIM_VPTX_EXEC_H
