#include "vptx/exec.h"

#include <cmath>
#include <cstring>

#include "check/check.h"
#include "util/log.h"
#include "util/stats.h"

namespace vksim::vptx {

namespace {

constexpr std::uint32_t kNoReconv = 0xFFFFFFFFu;

float
asFloat(std::uint64_t v)
{
    auto u = static_cast<std::uint32_t>(v);
    float f;
    std::memcpy(&f, &u, 4);
    return f;
}

std::uint64_t
fromFloat(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
}

std::uint64_t
boolVal(bool b)
{
    return b ? 1 : 0;
}

} // namespace

ExecUnit
execUnitOf(Opcode op)
{
    switch (op) {
      case Opcode::FSqrt:
      case Opcode::FRsqrt:
      case Opcode::FSin:
      case Opcode::FCos:
        return ExecUnit::SFU;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::ReportIntersection:
      case Opcode::CommitAnyHit:
      case Opcode::GetNextCoalescedCall:
        return ExecUnit::LDST;
      case Opcode::TraverseAS:
        return ExecUnit::RT;
      case Opcode::Bra:
      case Opcode::BraZ:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Exit:
        return ExecUnit::CTRL;
      default:
        return ExecUnit::ALU;
    }
}

bool
touchesMemory(Opcode op)
{
    switch (op) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::ReportIntersection:
      case Opcode::CommitAnyHit:
      case Opcode::GetNextCoalescedCall:
      case Opcode::TraverseAS:
        return true;
      default:
        return false;
    }
}

void
WarpExecutor::execLane(Warp &warp, ThreadState &t, const Instr &instr,
                       StepResult &result, unsigned lane)
{
    GlobalMemory &gmem = *ctx_.gmem;
    auto src = [&](int idx) { return t.reg(idx); };
    auto fsrc = [&](int idx) { return asFloat(t.reg(idx)); };

    switch (instr.op) {
      case Opcode::Nop:
        break;
      case Opcode::MovImm:
        t.reg(instr.dst) = instr.imm;
        break;
      case Opcode::Mov:
        t.reg(instr.dst) = src(instr.src0);
        break;

      case Opcode::Add:
        t.reg(instr.dst) = src(instr.src0) + src(instr.src1);
        break;
      case Opcode::Sub:
        t.reg(instr.dst) = src(instr.src0) - src(instr.src1);
        break;
      case Opcode::Mul:
        t.reg(instr.dst) = src(instr.src0) * src(instr.src1);
        break;
      case Opcode::And:
        t.reg(instr.dst) = src(instr.src0) & src(instr.src1);
        break;
      case Opcode::Or:
        t.reg(instr.dst) = src(instr.src0) | src(instr.src1);
        break;
      case Opcode::Xor:
        t.reg(instr.dst) = src(instr.src0) ^ src(instr.src1);
        break;
      case Opcode::Shl:
        t.reg(instr.dst) = src(instr.src0) << (src(instr.src1) & 63);
        break;
      case Opcode::Shr:
        t.reg(instr.dst) = src(instr.src0) >> (src(instr.src1) & 63);
        break;
      case Opcode::ISetEq:
        t.reg(instr.dst) = boolVal(src(instr.src0) == src(instr.src1));
        break;
      case Opcode::ISetNe:
        t.reg(instr.dst) = boolVal(src(instr.src0) != src(instr.src1));
        break;
      case Opcode::ISetLt:
        t.reg(instr.dst) =
            boolVal(static_cast<std::int64_t>(src(instr.src0))
                    < static_cast<std::int64_t>(src(instr.src1)));
        break;
      case Opcode::ISetGe:
        t.reg(instr.dst) =
            boolVal(static_cast<std::int64_t>(src(instr.src0))
                    >= static_cast<std::int64_t>(src(instr.src1)));
        break;

      case Opcode::FAdd:
        t.reg(instr.dst) = fromFloat(fsrc(instr.src0) + fsrc(instr.src1));
        break;
      case Opcode::FSub:
        t.reg(instr.dst) = fromFloat(fsrc(instr.src0) - fsrc(instr.src1));
        break;
      case Opcode::FMul:
        t.reg(instr.dst) = fromFloat(fsrc(instr.src0) * fsrc(instr.src1));
        break;
      case Opcode::FDiv:
        t.reg(instr.dst) = fromFloat(fsrc(instr.src0) / fsrc(instr.src1));
        break;
      case Opcode::FMin:
        t.reg(instr.dst) =
            fromFloat(std::fmin(fsrc(instr.src0), fsrc(instr.src1)));
        break;
      case Opcode::FMax:
        t.reg(instr.dst) =
            fromFloat(std::fmax(fsrc(instr.src0), fsrc(instr.src1)));
        break;
      case Opcode::FAbs:
        t.reg(instr.dst) = fromFloat(std::fabs(fsrc(instr.src0)));
        break;
      case Opcode::FNeg:
        t.reg(instr.dst) = fromFloat(-fsrc(instr.src0));
        break;
      case Opcode::FFloor:
        t.reg(instr.dst) = fromFloat(std::floor(fsrc(instr.src0)));
        break;
      case Opcode::FSetLt:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) < fsrc(instr.src1));
        break;
      case Opcode::FSetLe:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) <= fsrc(instr.src1));
        break;
      case Opcode::FSetGt:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) > fsrc(instr.src1));
        break;
      case Opcode::FSetGe:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) >= fsrc(instr.src1));
        break;
      case Opcode::FSetEq:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) == fsrc(instr.src1));
        break;
      case Opcode::FSetNe:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) != fsrc(instr.src1));
        break;

      case Opcode::FSqrt:
        t.reg(instr.dst) = fromFloat(std::sqrt(fsrc(instr.src0)));
        break;
      case Opcode::FRsqrt:
        t.reg(instr.dst) = fromFloat(1.0f / std::sqrt(fsrc(instr.src0)));
        break;
      case Opcode::FSin:
        t.reg(instr.dst) = fromFloat(std::sin(fsrc(instr.src0)));
        break;
      case Opcode::FCos:
        t.reg(instr.dst) = fromFloat(std::cos(fsrc(instr.src0)));
        break;

      case Opcode::I2F:
        t.reg(instr.dst) = fromFloat(
            static_cast<float>(static_cast<std::int64_t>(src(instr.src0))));
        break;
      case Opcode::U2F:
        t.reg(instr.dst) =
            fromFloat(static_cast<float>(src(instr.src0)));
        break;
      case Opcode::F2I:
        t.reg(instr.dst) = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(fsrc(instr.src0)));
        break;
      case Opcode::F2U: {
        float f = fsrc(instr.src0);
        t.reg(instr.dst) =
            f <= 0.f ? 0 : static_cast<std::uint64_t>(f);
        break;
      }

      case Opcode::Select:
        t.reg(instr.dst) =
            src(instr.src0) ? src(instr.src1) : src(instr.src2);
        break;

      case Opcode::Ld: {
        Addr addr = src(instr.src0) + instr.imm;
        std::uint64_t value = 0;
        gmem.read(addr, &value, instr.size);
        t.reg(instr.dst) = value;
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, instr.size, addr});
        break;
      }
      case Opcode::St: {
        Addr addr = src(instr.src0) + instr.imm;
        std::uint64_t value = src(instr.src1);
        gmem.write(addr, &value, instr.size);
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), true, instr.size, addr});
        break;
      }

      case Opcode::RtPushFrame:
        vksim_assert(t.rtDepth < kMaxTraceDepth);
        ++t.rtDepth;
        break;
      case Opcode::EndTraceRay:
        vksim_assert(t.rtDepth > 0);
        --t.rtDepth;
        break;
      case Opcode::RtAllocMem:
        t.reg(instr.dst) = ctx_.scratchAddr(t.tid) + instr.imm;
        break;
      case Opcode::LoadLaunchId:
        t.reg(instr.dst) = t.launchId[instr.imm];
        break;
      case Opcode::LoadLaunchSize:
        t.reg(instr.dst) = ctx_.launchSize[instr.imm];
        break;
      case Opcode::RtFrameAddr:
        vksim_assert(t.rtDepth > 0);
        t.reg(instr.dst) = ctx_.frameBase(t.tid, t.rtDepth - 1);
        break;
      case Opcode::DescBase:
        t.reg(instr.dst) = ctx_.descBase[instr.imm];
        break;

      case Opcode::ReportIntersection: {
        vksim_assert(t.rtDepth > 0);
        Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
        auto cur = gmem.load<std::uint32_t>(fb + frame::kCurrentDeferred);
        Addr entry = deferredEntryAddr(fb, cur);
        float hit_t = gmem.load<float>(fb + frame::kHitT);
        float tmin = gmem.load<float>(fb + frame::kRayTmin);
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, 16, entry});
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, 8,
             fb + frame::kRayTmin});
        float tval = fsrc(instr.src0);
        bool commit = tval > tmin && tval < hit_t;
        if (commit) {
            gmem.store<float>(fb + frame::kHitT, tval);
            gmem.store<float>(fb + frame::kHitU, 0.f);
            gmem.store<float>(fb + frame::kHitV, 0.f);
            gmem.store<std::int32_t>(
                fb + frame::kHitInstance,
                gmem.load<std::int32_t>(entry + frame::kDefInstance));
            gmem.store<std::int32_t>(
                fb + frame::kHitPrimitive,
                gmem.load<std::int32_t>(entry + frame::kDefPrim));
            gmem.store<std::int32_t>(
                fb + frame::kHitCustomIndex,
                gmem.load<std::int32_t>(entry + frame::kDefCustomIndex));
            gmem.store<std::int32_t>(
                fb + frame::kHitSbtOffset,
                gmem.load<std::int32_t>(entry + frame::kDefSbtOffset));
            gmem.store<std::uint32_t>(
                fb + frame::kHitKind,
                static_cast<std::uint32_t>(HitKind::Procedural));
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), true, 32,
                 fb + frame::kHitT});
        }
        if (instr.dst >= 0)
            t.reg(instr.dst) = boolVal(commit);
        break;
      }

      case Opcode::CommitAnyHit: {
        vksim_assert(t.rtDepth > 0);
        Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
        auto cur = gmem.load<std::uint32_t>(fb + frame::kCurrentDeferred);
        Addr entry = deferredEntryAddr(fb, cur);
        float cand_t = gmem.load<float>(entry + frame::kDefT);
        float hit_t = gmem.load<float>(fb + frame::kHitT);
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, 32, entry});
        bool commit = cand_t < hit_t;
        if (commit) {
            gmem.store<float>(fb + frame::kHitT, cand_t);
            gmem.store<float>(fb + frame::kHitU,
                              gmem.load<float>(entry + frame::kDefU));
            gmem.store<float>(fb + frame::kHitV,
                              gmem.load<float>(entry + frame::kDefV));
            gmem.store<std::int32_t>(
                fb + frame::kHitInstance,
                gmem.load<std::int32_t>(entry + frame::kDefInstance));
            gmem.store<std::int32_t>(
                fb + frame::kHitPrimitive,
                gmem.load<std::int32_t>(entry + frame::kDefPrim));
            gmem.store<std::int32_t>(
                fb + frame::kHitCustomIndex,
                gmem.load<std::int32_t>(entry + frame::kDefCustomIndex));
            gmem.store<std::int32_t>(
                fb + frame::kHitSbtOffset,
                gmem.load<std::int32_t>(entry + frame::kDefSbtOffset));
            gmem.store<std::uint32_t>(
                fb + frame::kHitKind,
                static_cast<std::uint32_t>(HitKind::Triangle));
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), true, 32,
                 fb + frame::kHitT});
        }
        if (instr.dst >= 0)
            t.reg(instr.dst) = boolVal(commit);
        break;
      }

      case Opcode::GetNextCoalescedCall: {
        std::uint64_t row_idx = src(instr.src0);
        Addr row_addr = ctx_.fccBase
                        + (t.tid / kWarpSize) * kFccBytesPerWarp
                        + row_idx * kFccRowBytes;
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, 8, row_addr});
        if (row_idx >= warp.fccRows.size()) {
            t.reg(instr.dst) =
                static_cast<std::uint64_t>(static_cast<std::int64_t>(-1));
            break;
        }
        const CoalescedRow &row = warp.fccRows[row_idx];
        if (row.mask & (1u << lane)) {
            t.reg(instr.dst) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(row.shaderId));
            vksim_assert(t.rtDepth > 0);
            Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
            gmem.store<std::uint32_t>(fb + frame::kCurrentDeferred,
                                      row.entryIdx[lane]);
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), true, 4,
                 fb + frame::kCurrentDeferred});
        } else {
            t.reg(instr.dst) = 0;
        }
        break;
      }

      default:
        vksim_panic("unhandled opcode in execLane");
    }
}

StepResult
WarpExecutor::step(Warp &warp, int split_idx)
{
    const WarpSplit split = warp.cflow.split(split_idx);
    std::uint32_t pc = split.pc;
    Mask mask = split.mask;
    vksim_assert(mask != 0 && !split.blocked);
    vksim_assert(pc < ctx_.program->code.size());
    const Instr &instr = ctx_.program->code[pc];

    StepResult result;
    result.op = instr.op;
    result.unit = execUnitOf(instr.op);
    result.activeLanes = popcount(mask);
    result.dstReg = instr.dst;

    auto forEachLane = [&](auto &&fn) {
        for (unsigned lane = 0; lane < kWarpSize; ++lane)
            if (mask & (1u << lane))
                fn(lane, warp.threads[lane]);
    };

    switch (instr.op) {
      case Opcode::Bra:
      case Opcode::BraZ: {
        Mask taken = 0;
        forEachLane([&](unsigned lane, ThreadState &t) {
            bool cond = t.reg(instr.src0) != 0;
            if (instr.op == Opcode::BraZ)
                cond = !cond;
            if (cond)
                taken |= 1u << lane;
        });
        warp.cflow.diverge(split_idx, instr.target, taken, pc + 1,
                           mask & ~taken, instr.reconv);
        return result;
      }

      case Opcode::Jmp:
        warp.cflow.advance(split_idx, instr.target);
        return result;

      case Opcode::Exit:
        warp.cflow.exitLanes(split_idx, mask);
        result.exited = true;
        return result;

      case Opcode::Call:
        forEachLane([&](unsigned, ThreadState &t) {
            t.callStack.push_back({pc + 1, t.windowBase});
            t.windowBase += static_cast<unsigned>(instr.imm);
        });
        warp.cflow.advance(split_idx, instr.target);
        return result;

      case Opcode::Ret: {
        // Group lanes by return pc (can diverge under ITS merging).
        std::uint32_t ret0 = 0;
        bool first = true;
        Mask matched = 0;
        forEachLane([&](unsigned lane, ThreadState &t) {
            vksim_assert(!t.callStack.empty());
            std::uint32_t r = t.callStack.back().retPc;
            if (first) {
                ret0 = r;
                first = false;
            }
            if (r == ret0)
                matched |= 1u << lane;
        });
        if (warp.cflow.mode() == WarpCflow::Mode::Stack)
            vksim_assert(matched == mask);
        forEachLane([&](unsigned lane, ThreadState &t) {
            if (!(matched & (1u << lane)))
                return;
            t.windowBase = t.callStack.back().savedWindow;
            t.callStack.pop_back();
        });
        warp.cflow.diverge(split_idx, ret0, matched, pc, mask & ~matched,
                           kNoReconv);
        return result;
      }

      case Opcode::TraverseAS: {
        TraverseState &ts = warp.pendingTraverses[split.id];
        ts.mask = mask;
        ts.lanes.clear();
        ts.lanes.resize(kWarpSize);
        forEachLane([&](unsigned lane, ThreadState &t) {
            vksim_assert(t.rtDepth > 0);
            Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
            ts.lanes[lane].frameBase = fb;
            ts.lanes[lane].traversal = rt_runtime::makeTraversal(
                *ctx_.gmem, ctx_.tlasRoot, fb, nullptr,
                options_.shortStackEntries);
        });
        result.startedTraverse = true;
        result.traverseSplitId = split.id;
        warp.cflow.blockAt(split_idx, pc + 1);
        return result;
      }

      default:
        break;
    }

    forEachLane([&](unsigned lane, ThreadState &t) {
        execLane(warp, t, instr, result, lane);
    });
    warp.cflow.advance(split_idx, pc + 1);
    return result;
}

void
WarpExecutor::completeTraverse(Warp &warp, int split_id)
{
    auto it = warp.pendingTraverses.find(split_id);
    vksim_assert(it != warp.pendingTraverses.end());
    TraverseState &ts = it->second;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(ts.mask & (1u << lane)))
            continue;
        LaneTraversal &lt = ts.lanes[lane];
        vksim_assert(lt.traversal && lt.traversal->done());
        // Full-check differential: replay the finished ray through the
        // CPU reference tracer before the frame's hit words are written.
        if (check::traverseHookActive())
            check::callTraverseHook(lt.frameBase, *lt.traversal);
        rt_runtime::writeResults(*ctx_.gmem, lt.frameBase, *lt.traversal);
    }
    if (options_.fccEnabled)
        rt_runtime::buildCoalescingTable(ts.lanes, ts.mask, ctx_,
                                         &warp.fccRows);
    warp.pendingTraverses.erase(it);
    warp.cflow.unblockById(split_id);
}

void
WarpExecutor::runTraverseFunctional(Warp &warp, int split_id)
{
    TraverseState &ts = warp.pendingTraverses.at(split_id);
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(ts.mask & (1u << lane)))
            continue;
        ts.lanes[lane].traversal->run();
    }
    completeTraverse(warp, split_id);
}

void
initWarp(Warp &warp, std::uint32_t warp_id, const LaunchContext &ctx,
         WarpCflow::Mode mode)
{
    warp.warpId = warp_id;
    const std::uint32_t total = ctx.totalThreads();
    std::uint32_t width = ctx.launchSize[0];
    std::uint32_t height = ctx.launchSize[1];

    Mask live = 0;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        ThreadState &t = warp.threads[lane];
        t = ThreadState{};
        std::uint32_t tid = warp_id * kWarpSize + lane;
        t.tid = tid;
        if (tid >= total)
            continue;
        live |= 1u << lane;
        t.launchId[0] = tid % width;
        t.launchId[1] = (tid / width) % height;
        t.launchId[2] = tid / (width * height);
        const ShaderInfo &raygen = ctx.program->shaders[static_cast<
            std::size_t>(ctx.program->raygenShader)];
        t.regs.assign(raygen.numRegs + 16, 0);
    }
    const ShaderInfo &raygen = ctx.program->shaders[static_cast<std::size_t>(
        ctx.program->raygenShader)];
    warp.cflow.init(raygen.entryPc, live, mode);
    warp.fccRows.clear();
    warp.pendingTraverses.clear();
}

FunctionalRunner::FunctionalRunner(const LaunchContext &ctx,
                                   ExecOptions options, WarpCflow::Mode mode)
    : ctx_(ctx), exec_(ctx, options), mode_(mode)
{
}

void
FunctionalRunner::run()
{
    const std::uint32_t total = ctx_.totalThreads();
    const std::uint32_t num_warps = (total + kWarpSize - 1) / kWarpSize;

    Counter &issued = stats_.counter("instructions");
    Counter &alu = stats_.counter("alu");
    Counter &sfu = stats_.counter("sfu");
    Counter &ldst = stats_.counter("ldst");
    Counter &rt = stats_.counter("trace_ray");
    Counter &ctrl = stats_.counter("ctrl");

    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Warp warp;
        initWarp(warp, w, ctx_, mode_);
        std::uint64_t guard = 0;
        while (!warp.finished()) {
            if (warp.cflow.runnableCount() == 0)
                vksim_panic("functional runner deadlock: no runnable split");
            int split_idx = warp.cflow.runnableSplit(0);
            StepResult res = exec_.step(warp, split_idx);
            issued.inc();
            switch (res.unit) {
              case ExecUnit::ALU: alu.inc(); break;
              case ExecUnit::SFU: sfu.inc(); break;
              case ExecUnit::LDST: ldst.inc(); break;
              case ExecUnit::RT: rt.inc(); break;
              case ExecUnit::CTRL: ctrl.inc(); break;
            }
            if (res.startedTraverse)
                exec_.runTraverseFunctional(warp, res.traverseSplitId);
            if (++guard > 200'000'000ull)
                vksim_panic("functional runner runaway warp");
        }
    }
}

} // namespace vksim::vptx
