#include "vptx/exec.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "check/check.h"
#include "util/log.h"
#include "util/stats.h"

/**
 * Threaded dispatch: GCC/Clang computed goto gives the per-opcode lane
 * handlers a dense label table; other compilers fall back to a dense
 * switch over the contiguous opcode byte (also a jump table in practice).
 */
#if defined(__GNUC__) || defined(__clang__)
#define VKSIM_UOP_THREADED 1
#else
#define VKSIM_UOP_THREADED 0
#endif

namespace vksim::vptx {

namespace {

constexpr std::uint32_t kNoReconv = 0xFFFFFFFFu;

float
asFloat(std::uint64_t v)
{
    auto u = static_cast<std::uint32_t>(v);
    float f;
    std::memcpy(&f, &u, 4);
    return f;
}

std::uint64_t
fromFloat(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
}

std::uint64_t
boolVal(bool b)
{
    return b ? 1 : 0;
}

} // namespace

ExecUnit
execUnitOf(Opcode op)
{
    switch (op) {
      case Opcode::FSqrt:
      case Opcode::FRsqrt:
      case Opcode::FSin:
      case Opcode::FCos:
        return ExecUnit::SFU;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::ReportIntersection:
      case Opcode::CommitAnyHit:
      case Opcode::GetNextCoalescedCall:
        return ExecUnit::LDST;
      case Opcode::TraverseAS:
        return ExecUnit::RT;
      case Opcode::Bra:
      case Opcode::BraZ:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Exit:
        return ExecUnit::CTRL;
      default:
        return ExecUnit::ALU;
    }
}

bool
touchesMemory(Opcode op)
{
    switch (op) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::ReportIntersection:
      case Opcode::CommitAnyHit:
      case Opcode::GetNextCoalescedCall:
      case Opcode::TraverseAS:
        return true;
      default:
        return false;
    }
}

WarpExecutor::WarpExecutor(const LaunchContext &ctx, ExecOptions options)
    : ctx_(ctx), options_(options)
{
    if (ctx.program && ctx.program->immediateAnyHit)
        anyHitGroups_ = rt_runtime::anyHitGroupMask(ctx);
    if (ctx.uops) {
        uops_ = ctx.uops;
    } else {
        // Hand-assembled contexts (tests) carry no compiled stream:
        // pre-decode a private copy once at construction.
        ownedUops_ = std::make_unique<MicroProgram>(*ctx.program);
        uops_ = ownedUops_.get();
    }
}

void
WarpExecutor::execLaneStructural(Warp &warp, ThreadState &t,
                                 const Instr &instr, StepResult &result,
                                 unsigned lane)
{
    GlobalMemory &gmem = *ctx_.gmem;
    auto src = [&](int idx) { return t.reg(idx); };
    auto fsrc = [&](int idx) { return asFloat(t.reg(idx)); };

    switch (instr.op) {
      case Opcode::Nop:
        break;
      case Opcode::MovImm:
        t.reg(instr.dst) = instr.imm;
        break;
      case Opcode::Mov:
        t.reg(instr.dst) = src(instr.src0);
        break;

      case Opcode::Add:
        t.reg(instr.dst) = src(instr.src0) + src(instr.src1);
        break;
      case Opcode::Sub:
        t.reg(instr.dst) = src(instr.src0) - src(instr.src1);
        break;
      case Opcode::Mul:
        t.reg(instr.dst) = src(instr.src0) * src(instr.src1);
        break;
      case Opcode::And:
        t.reg(instr.dst) = src(instr.src0) & src(instr.src1);
        break;
      case Opcode::Or:
        t.reg(instr.dst) = src(instr.src0) | src(instr.src1);
        break;
      case Opcode::Xor:
        t.reg(instr.dst) = src(instr.src0) ^ src(instr.src1);
        break;
      case Opcode::Shl:
        t.reg(instr.dst) = src(instr.src0) << (src(instr.src1) & 63);
        break;
      case Opcode::Shr:
        t.reg(instr.dst) = src(instr.src0) >> (src(instr.src1) & 63);
        break;
      case Opcode::ISetEq:
        t.reg(instr.dst) = boolVal(src(instr.src0) == src(instr.src1));
        break;
      case Opcode::ISetNe:
        t.reg(instr.dst) = boolVal(src(instr.src0) != src(instr.src1));
        break;
      case Opcode::ISetLt:
        t.reg(instr.dst) =
            boolVal(static_cast<std::int64_t>(src(instr.src0))
                    < static_cast<std::int64_t>(src(instr.src1)));
        break;
      case Opcode::ISetGe:
        t.reg(instr.dst) =
            boolVal(static_cast<std::int64_t>(src(instr.src0))
                    >= static_cast<std::int64_t>(src(instr.src1)));
        break;

      case Opcode::FAdd:
        t.reg(instr.dst) = fromFloat(fsrc(instr.src0) + fsrc(instr.src1));
        break;
      case Opcode::FSub:
        t.reg(instr.dst) = fromFloat(fsrc(instr.src0) - fsrc(instr.src1));
        break;
      case Opcode::FMul:
        t.reg(instr.dst) = fromFloat(fsrc(instr.src0) * fsrc(instr.src1));
        break;
      case Opcode::FDiv:
        t.reg(instr.dst) = fromFloat(fsrc(instr.src0) / fsrc(instr.src1));
        break;
      case Opcode::FMin:
        t.reg(instr.dst) =
            fromFloat(std::fmin(fsrc(instr.src0), fsrc(instr.src1)));
        break;
      case Opcode::FMax:
        t.reg(instr.dst) =
            fromFloat(std::fmax(fsrc(instr.src0), fsrc(instr.src1)));
        break;
      case Opcode::FAbs:
        t.reg(instr.dst) = fromFloat(std::fabs(fsrc(instr.src0)));
        break;
      case Opcode::FNeg:
        t.reg(instr.dst) = fromFloat(-fsrc(instr.src0));
        break;
      case Opcode::FFloor:
        t.reg(instr.dst) = fromFloat(std::floor(fsrc(instr.src0)));
        break;
      case Opcode::FSetLt:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) < fsrc(instr.src1));
        break;
      case Opcode::FSetLe:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) <= fsrc(instr.src1));
        break;
      case Opcode::FSetGt:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) > fsrc(instr.src1));
        break;
      case Opcode::FSetGe:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) >= fsrc(instr.src1));
        break;
      case Opcode::FSetEq:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) == fsrc(instr.src1));
        break;
      case Opcode::FSetNe:
        t.reg(instr.dst) = boolVal(fsrc(instr.src0) != fsrc(instr.src1));
        break;

      case Opcode::FSqrt:
        t.reg(instr.dst) = fromFloat(std::sqrt(fsrc(instr.src0)));
        break;
      case Opcode::FRsqrt:
        t.reg(instr.dst) = fromFloat(1.0f / std::sqrt(fsrc(instr.src0)));
        break;
      case Opcode::FSin:
        t.reg(instr.dst) = fromFloat(std::sin(fsrc(instr.src0)));
        break;
      case Opcode::FCos:
        t.reg(instr.dst) = fromFloat(std::cos(fsrc(instr.src0)));
        break;

      case Opcode::I2F:
        t.reg(instr.dst) = fromFloat(
            static_cast<float>(static_cast<std::int64_t>(src(instr.src0))));
        break;
      case Opcode::U2F:
        t.reg(instr.dst) =
            fromFloat(static_cast<float>(src(instr.src0)));
        break;
      case Opcode::F2I:
        t.reg(instr.dst) = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(fsrc(instr.src0)));
        break;
      case Opcode::F2U: {
        float f = fsrc(instr.src0);
        t.reg(instr.dst) =
            f <= 0.f ? 0 : static_cast<std::uint64_t>(f);
        break;
      }

      case Opcode::Select:
        t.reg(instr.dst) =
            src(instr.src0) ? src(instr.src1) : src(instr.src2);
        break;

      case Opcode::Ld: {
        Addr addr = src(instr.src0) + instr.imm;
        std::uint64_t value = 0;
        gmem.read(addr, &value, instr.size);
        t.reg(instr.dst) = value;
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, instr.size, addr});
        break;
      }
      case Opcode::St: {
        Addr addr = src(instr.src0) + instr.imm;
        std::uint64_t value = src(instr.src1);
        gmem.write(addr, &value, instr.size);
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), true, instr.size, addr});
        break;
      }

      case Opcode::RtPushFrame:
        vksim_assert(t.rtDepth < kMaxTraceDepth);
        ++t.rtDepth;
        break;
      case Opcode::EndTraceRay:
        vksim_assert(t.rtDepth > 0);
        --t.rtDepth;
        break;
      case Opcode::RtAllocMem:
        t.reg(instr.dst) = ctx_.scratchAddr(t.tid) + instr.imm;
        break;
      case Opcode::LoadLaunchId:
        t.reg(instr.dst) = t.launchId[instr.imm];
        break;
      case Opcode::LoadLaunchSize:
        t.reg(instr.dst) = ctx_.launchSize[instr.imm];
        break;
      case Opcode::RtFrameAddr:
        vksim_assert(t.rtDepth > 0);
        t.reg(instr.dst) = ctx_.frameBase(t.tid, t.rtDepth - 1);
        break;
      case Opcode::DescBase:
        t.reg(instr.dst) = ctx_.descBase[instr.imm];
        break;

      case Opcode::ReportIntersection: {
        vksim_assert(t.rtDepth > 0);
        Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
        auto cur = gmem.load<std::uint32_t>(fb + frame::kCurrentDeferred);
        Addr entry = deferredEntryAddr(fb, cur);
        float hit_t = gmem.load<float>(fb + frame::kHitT);
        float tmin = gmem.load<float>(fb + frame::kRayTmin);
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, 16, entry});
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, 8,
             fb + frame::kRayTmin});
        float tval = fsrc(instr.src0);
        bool commit = tval > tmin && tval < hit_t;
        if (commit) {
            gmem.store<float>(fb + frame::kHitT, tval);
            gmem.store<float>(fb + frame::kHitU, 0.f);
            gmem.store<float>(fb + frame::kHitV, 0.f);
            gmem.store<std::int32_t>(
                fb + frame::kHitInstance,
                gmem.load<std::int32_t>(entry + frame::kDefInstance));
            gmem.store<std::int32_t>(
                fb + frame::kHitPrimitive,
                gmem.load<std::int32_t>(entry + frame::kDefPrim));
            gmem.store<std::int32_t>(
                fb + frame::kHitCustomIndex,
                gmem.load<std::int32_t>(entry + frame::kDefCustomIndex));
            gmem.store<std::int32_t>(
                fb + frame::kHitSbtOffset,
                gmem.load<std::int32_t>(entry + frame::kDefSbtOffset));
            gmem.store<std::uint32_t>(
                fb + frame::kHitKind,
                static_cast<std::uint32_t>(HitKind::Procedural));
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), true, 32,
                 fb + frame::kHitT});
        }
        if (instr.dst >= 0)
            t.reg(instr.dst) = boolVal(commit);
        break;
      }

      case Opcode::CommitAnyHit: {
        vksim_assert(t.rtDepth > 0);
        Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
        auto cur = gmem.load<std::uint32_t>(fb + frame::kCurrentDeferred);
        Addr entry = deferredEntryAddr(fb, cur);
        float cand_t = gmem.load<float>(entry + frame::kDefT);
        float hit_t = gmem.load<float>(fb + frame::kHitT);
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, 32, entry});
        bool commit = cand_t < hit_t;
        if (commit) {
            gmem.store<float>(fb + frame::kHitT, cand_t);
            gmem.store<float>(fb + frame::kHitU,
                              gmem.load<float>(entry + frame::kDefU));
            gmem.store<float>(fb + frame::kHitV,
                              gmem.load<float>(entry + frame::kDefV));
            gmem.store<std::int32_t>(
                fb + frame::kHitInstance,
                gmem.load<std::int32_t>(entry + frame::kDefInstance));
            gmem.store<std::int32_t>(
                fb + frame::kHitPrimitive,
                gmem.load<std::int32_t>(entry + frame::kDefPrim));
            gmem.store<std::int32_t>(
                fb + frame::kHitCustomIndex,
                gmem.load<std::int32_t>(entry + frame::kDefCustomIndex));
            gmem.store<std::int32_t>(
                fb + frame::kHitSbtOffset,
                gmem.load<std::int32_t>(entry + frame::kDefSbtOffset));
            gmem.store<std::uint32_t>(
                fb + frame::kHitKind,
                static_cast<std::uint32_t>(HitKind::Triangle));
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), true, 32,
                 fb + frame::kHitT});
        }
        if (instr.dst >= 0)
            t.reg(instr.dst) = boolVal(commit);
        break;
      }

      case Opcode::GetNextCoalescedCall: {
        std::uint64_t row_idx = src(instr.src0);
        Addr row_addr = ctx_.fccBase
                        + (t.tid / kWarpSize) * kFccBytesPerWarp
                        + row_idx * kFccRowBytes;
        result.accesses.push_back(
            {static_cast<std::uint8_t>(lane), false, 8, row_addr});
        if (row_idx >= warp.fccRows.size()) {
            t.reg(instr.dst) =
                static_cast<std::uint64_t>(static_cast<std::int64_t>(-1));
            break;
        }
        const CoalescedRow &row = warp.fccRows[row_idx];
        if (row.mask & (1u << lane)) {
            t.reg(instr.dst) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(row.shaderId));
            vksim_assert(t.rtDepth > 0);
            Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
            gmem.store<std::uint32_t>(fb + frame::kCurrentDeferred,
                                      row.entryIdx[lane]);
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), true, 4,
                 fb + frame::kCurrentDeferred});
        } else {
            t.reg(instr.dst) = 0;
        }
        break;
      }

      default:
        vksim_panic("unhandled opcode in execLaneStructural");
    }
}

StepResult
WarpExecutor::stepStructural(Warp &warp, int split_idx)
{
    const WarpSplit split = warp.cflow.split(split_idx);
    std::uint32_t pc = split.pc;
    Mask mask = split.mask;
    vksim_assert(mask != 0 && !split.blocked);
    vksim_assert(pc < ctx_.program->code.size());
    const Instr &instr = ctx_.program->code[pc];

    StepResult result;
    result.op = instr.op;
    result.unit = execUnitOf(instr.op);
    result.activeLanes = popcount(mask);
    result.dstReg = instr.dst;

    auto forEachLane = [&](auto &&fn) {
        for (unsigned lane = 0; lane < kWarpSize; ++lane)
            if (mask & (1u << lane))
                fn(lane, warp.threads[lane]);
    };

    switch (instr.op) {
      case Opcode::Bra:
      case Opcode::BraZ: {
        Mask taken = 0;
        forEachLane([&](unsigned lane, ThreadState &t) {
            bool cond = t.reg(instr.src0) != 0;
            if (instr.op == Opcode::BraZ)
                cond = !cond;
            if (cond)
                taken |= 1u << lane;
        });
        warp.cflow.diverge(split_idx, instr.target, taken, pc + 1,
                           mask & ~taken, instr.reconv);
        return result;
      }

      case Opcode::Jmp:
        warp.cflow.advance(split_idx, instr.target);
        return result;

      case Opcode::Exit:
        warp.cflow.exitLanes(split_idx, mask);
        result.exited = true;
        return result;

      case Opcode::Call:
        forEachLane([&](unsigned, ThreadState &t) {
            t.callStack.push_back({pc + 1, t.windowBase});
            t.windowBase += static_cast<unsigned>(instr.imm);
        });
        warp.cflow.advance(split_idx, instr.target);
        return result;

      case Opcode::Ret: {
        // Group lanes by return pc (can diverge under ITS merging).
        std::uint32_t ret0 = 0;
        bool first = true;
        Mask matched = 0;
        forEachLane([&](unsigned lane, ThreadState &t) {
            vksim_assert(!t.callStack.empty());
            std::uint32_t r = t.callStack.back().retPc;
            if (first) {
                ret0 = r;
                first = false;
            }
            if (r == ret0)
                matched |= 1u << lane;
        });
        if (warp.cflow.mode() == WarpCflow::Mode::Stack)
            vksim_assert(matched == mask);
        forEachLane([&](unsigned lane, ThreadState &t) {
            if (!(matched & (1u << lane)))
                return;
            t.windowBase = t.callStack.back().savedWindow;
            t.callStack.pop_back();
        });
        warp.cflow.diverge(split_idx, ret0, matched, pc, mask & ~matched,
                           kNoReconv);
        return result;
      }

      case Opcode::TraverseAS: {
        TraverseState &ts = warp.pendingTraverses[split.id];
        ts.reset(mask);
        forEachLane([&](unsigned lane, ThreadState &t) {
            vksim_assert(t.rtDepth > 0);
            Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
            ts.addRay(lane, fb,
                      rt_runtime::makeTraversal(
                          *ctx_.gmem, ctx_.tlasRoot, fb, nullptr,
                          options_.shortStackEntries,
                          ctx_.program->immediateAnyHit, anyHitGroups_));
        });
        result.startedTraverse = true;
        result.traverseSplitId = split.id;
        warp.cflow.blockAt(split_idx, pc + 1);
        return result;
      }

      default:
        break;
    }

    forEachLane([&](unsigned lane, ThreadState &t) {
        execLaneStructural(warp, t, instr, result, lane);
    });
    warp.cflow.advance(split_idx, pc + 1);
    return result;
}

StepResult
WarpExecutor::step(Warp &warp, int split_idx)
{
    if (options_.structuralDispatch)
        return stepStructural(warp, split_idx);
    return step(warp, split_idx, fetch(warp.cflow.split(split_idx).pc));
}

StepResult
WarpExecutor::step(Warp &warp, int split_idx, const MicroOp &u)
{
    const WarpSplit split = warp.cflow.split(split_idx);
    const std::uint32_t pc = split.pc;
    const Mask mask = split.mask;
    vksim_assert(mask != 0 && !split.blocked);

    StepResult result;
    result.op = u.op;
    result.unit = u.unit;
    result.activeLanes = popcount(mask);
    result.dstReg = u.dst;

    switch (u.cls) {
      case UopClass::Lane:
        execLanes(warp, mask, u, result);
        warp.cflow.advance(split_idx, pc + 1);
        return result;

      case UopClass::Bra: {
        const bool invert = (u.flags & kUopBraInvert) != 0;
        Mask taken = 0;
        for (Mask rem = mask; rem != 0; rem &= rem - 1) {
            const auto lane =
                static_cast<unsigned>(std::countr_zero(rem));
            ThreadState &t = warp.threads[lane];
            warp.regs.ensure(lane, t.windowBase + u.maxReg - 1);
            const bool cond =
                warp.regs.row(lane)[t.windowBase
                                    + static_cast<unsigned>(u.src0)]
                != 0;
            if (cond != invert)
                taken |= 1u << lane;
        }
        warp.cflow.diverge(split_idx, u.target, taken, pc + 1,
                           mask & ~taken, u.reconv);
        return result;
      }

      case UopClass::Jmp:
        warp.cflow.advance(split_idx, u.target);
        return result;

      case UopClass::Exit:
        warp.cflow.exitLanes(split_idx, mask);
        result.exited = true;
        return result;

      case UopClass::Call:
        for (Mask rem = mask; rem != 0; rem &= rem - 1) {
            ThreadState &t =
                warp.threads[static_cast<unsigned>(std::countr_zero(rem))];
            t.callStack.push_back({pc + 1, t.windowBase});
            t.windowBase += static_cast<unsigned>(u.imm);
        }
        warp.cflow.advance(split_idx, u.target);
        return result;

      case UopClass::Ret: {
        // Group lanes by return pc (can diverge under ITS merging).
        std::uint32_t ret0 = 0;
        bool first = true;
        Mask matched = 0;
        for (Mask rem = mask; rem != 0; rem &= rem - 1) {
            const auto lane =
                static_cast<unsigned>(std::countr_zero(rem));
            ThreadState &t = warp.threads[lane];
            vksim_assert(!t.callStack.empty());
            const std::uint32_t r = t.callStack.back().retPc;
            if (first) {
                ret0 = r;
                first = false;
            }
            if (r == ret0)
                matched |= 1u << lane;
        }
        if (warp.cflow.mode() == WarpCflow::Mode::Stack)
            vksim_assert(matched == mask);
        for (Mask rem = matched; rem != 0; rem &= rem - 1) {
            ThreadState &t =
                warp.threads[static_cast<unsigned>(std::countr_zero(rem))];
            t.windowBase = t.callStack.back().savedWindow;
            t.callStack.pop_back();
        }
        warp.cflow.diverge(split_idx, ret0, matched, pc, mask & ~matched,
                           kNoReconv);
        return result;
      }

      case UopClass::Traverse: {
        TraverseState &ts = warp.pendingTraverses[split.id];
        ts.reset(mask);
        for (Mask rem = mask; rem != 0; rem &= rem - 1) {
            const auto lane =
                static_cast<unsigned>(std::countr_zero(rem));
            ThreadState &t = warp.threads[lane];
            vksim_assert(t.rtDepth > 0);
            Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
            ts.addRay(lane, fb,
                      rt_runtime::makeTraversal(
                          *ctx_.gmem, ctx_.tlasRoot, fb, nullptr,
                          options_.shortStackEntries,
                          ctx_.program->immediateAnyHit, anyHitGroups_));
        }
        result.startedTraverse = true;
        result.traverseSplitId = split.id;
        warp.cflow.blockAt(split_idx, pc + 1);
        return result;
      }
    }
    vksim_panic("unhandled uop class");
}

void
WarpExecutor::execLanes(Warp &warp, Mask mask, const MicroOp &u,
                        StepResult &result)
{
    GlobalMemory &gmem = *ctx_.gmem;
    WarpRegFile &rf = warp.regs;

    // Window-relative register row for `lane`, grown once to the
    // instruction's pre-decoded register high-water mark (u.maxReg >= 1
    // for every opcode that reaches this). Re-fetch after any growth.
    auto laneRegs = [&](unsigned lane, ThreadState &t) {
        rf.ensure(lane, t.windowBase + u.maxReg - 1);
        return rf.row(lane) + t.windowBase;
    };
    auto forLanes = [&](auto &&fn) {
        for (Mask rem = mask; rem != 0; rem &= rem - 1) {
            const auto lane =
                static_cast<unsigned>(std::countr_zero(rem));
            fn(lane, warp.threads[lane]);
        }
    };

#if VKSIM_UOP_THREADED
#define VKSIM_UOP(name) L_##name
#define VKSIM_UOP_END goto L_Done
    // Dense label table indexed by the opcode byte. Opcodes handled at
    // step() level (control flow, traverse) must never reach execLanes;
    // their slots trap.
    static const void *const kDispatch[] = {
        &&L_Nop, &&L_MovImm, &&L_Mov, &&L_Add, &&L_Sub, &&L_Mul, &&L_And,
        &&L_Or, &&L_Xor, &&L_Shl, &&L_Shr, &&L_ISetEq, &&L_ISetNe,
        &&L_ISetLt, &&L_ISetGe, &&L_FAdd, &&L_FSub, &&L_FMul, &&L_FDiv,
        &&L_FMin, &&L_FMax, &&L_FAbs, &&L_FNeg, &&L_FFloor, &&L_FSetLt,
        &&L_FSetLe, &&L_FSetGt, &&L_FSetGe, &&L_FSetEq, &&L_FSetNe,
        &&L_FSqrt, &&L_FRsqrt, &&L_FSin, &&L_FCos, &&L_I2F, &&L_U2F,
        &&L_F2I, &&L_F2U, &&L_Select, &&L_Ld, &&L_St, &&L_BadOp, &&L_BadOp,
        &&L_BadOp, &&L_BadOp, &&L_BadOp, &&L_BadOp, &&L_RtPushFrame,
        &&L_BadOp, &&L_EndTraceRay, &&L_RtAllocMem, &&L_LoadLaunchId,
        &&L_LoadLaunchSize, &&L_RtFrameAddr, &&L_ReportIntersection,
        &&L_CommitAnyHit, &&L_DescBase, &&L_GetNextCoalescedCall,
    };
    static_assert(
        sizeof(kDispatch) / sizeof(kDispatch[0])
        == static_cast<std::size_t>(Opcode::GetNextCoalescedCall) + 1);
    goto *kDispatch[static_cast<unsigned>(u.op)];
#else
#define VKSIM_UOP(name) case Opcode::name
#define VKSIM_UOP_END goto L_Done
    switch (u.op) {
#endif

// Binary ALU handler: integer operands a/b and float views fa/fb.
#define VKSIM_UOP_BIN(name, ...)                                              \
    VKSIM_UOP(name) : {                                                       \
        forLanes([&](unsigned lane, ThreadState &t) {                         \
            std::uint64_t *R = laneRegs(lane, t);                             \
            const std::uint64_t a = R[u.src0], b = R[u.src1];                 \
            const float fa = asFloat(a), fb = asFloat(b);                     \
            (void)fa;                                                         \
            (void)fb;                                                         \
            R[u.dst] = (__VA_ARGS__);                                         \
        });                                                                   \
        VKSIM_UOP_END;                                                        \
    }

// Unary ALU handler: integer operand a and float view fa.
#define VKSIM_UOP_UN(name, ...)                                               \
    VKSIM_UOP(name) : {                                                       \
        forLanes([&](unsigned lane, ThreadState &t) {                         \
            std::uint64_t *R = laneRegs(lane, t);                             \
            const std::uint64_t a = R[u.src0];                                \
            const float fa = asFloat(a);                                      \
            (void)a;                                                          \
            (void)fa;                                                         \
            R[u.dst] = (__VA_ARGS__);                                         \
        });                                                                   \
        VKSIM_UOP_END;                                                        \
    }

    VKSIM_UOP(Nop) : { VKSIM_UOP_END; }

    VKSIM_UOP(MovImm) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            laneRegs(lane, t)[u.dst] = u.imm;
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP_UN(Mov, a)

    VKSIM_UOP_BIN(Add, a + b)
    VKSIM_UOP_BIN(Sub, a - b)
    VKSIM_UOP_BIN(Mul, a *b)
    VKSIM_UOP_BIN(And, a &b)
    VKSIM_UOP_BIN(Or, a | b)
    VKSIM_UOP_BIN(Xor, a ^ b)
    VKSIM_UOP_BIN(Shl, a << (b & 63))
    VKSIM_UOP_BIN(Shr, a >> (b & 63))
    VKSIM_UOP_BIN(ISetEq, boolVal(a == b))
    VKSIM_UOP_BIN(ISetNe, boolVal(a != b))
    VKSIM_UOP_BIN(ISetLt, boolVal(static_cast<std::int64_t>(a)
                                  < static_cast<std::int64_t>(b)))
    VKSIM_UOP_BIN(ISetGe, boolVal(static_cast<std::int64_t>(a)
                                  >= static_cast<std::int64_t>(b)))

    VKSIM_UOP_BIN(FAdd, fromFloat(fa + fb))
    VKSIM_UOP_BIN(FSub, fromFloat(fa - fb))
    VKSIM_UOP_BIN(FMul, fromFloat(fa *fb))
    VKSIM_UOP_BIN(FDiv, fromFloat(fa / fb))
    VKSIM_UOP_BIN(FMin, fromFloat(std::fmin(fa, fb)))
    VKSIM_UOP_BIN(FMax, fromFloat(std::fmax(fa, fb)))
    VKSIM_UOP_UN(FAbs, fromFloat(std::fabs(fa)))
    VKSIM_UOP_UN(FNeg, fromFloat(-fa))
    VKSIM_UOP_UN(FFloor, fromFloat(std::floor(fa)))
    VKSIM_UOP_BIN(FSetLt, boolVal(fa < fb))
    VKSIM_UOP_BIN(FSetLe, boolVal(fa <= fb))
    VKSIM_UOP_BIN(FSetGt, boolVal(fa > fb))
    VKSIM_UOP_BIN(FSetGe, boolVal(fa >= fb))
    VKSIM_UOP_BIN(FSetEq, boolVal(fa == fb))
    VKSIM_UOP_BIN(FSetNe, boolVal(fa != fb))

    VKSIM_UOP_UN(FSqrt, fromFloat(std::sqrt(fa)))
    VKSIM_UOP_UN(FRsqrt, fromFloat(1.0f / std::sqrt(fa)))
    VKSIM_UOP_UN(FSin, fromFloat(std::sin(fa)))
    VKSIM_UOP_UN(FCos, fromFloat(std::cos(fa)))

    VKSIM_UOP_UN(I2F, fromFloat(static_cast<float>(
                          static_cast<std::int64_t>(a))))
    VKSIM_UOP_UN(U2F, fromFloat(static_cast<float>(a)))
    VKSIM_UOP_UN(F2I, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(fa)))
    VKSIM_UOP_UN(F2U, fa <= 0.f ? 0 : static_cast<std::uint64_t>(fa))

    VKSIM_UOP(Select) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            std::uint64_t *R = laneRegs(lane, t);
            R[u.dst] = R[u.src0] ? R[u.src1] : R[u.src2];
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(Ld) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            std::uint64_t *R = laneRegs(lane, t);
            Addr addr = R[u.src0] + u.imm;
            std::uint64_t value = 0;
            gmem.read(addr, &value, u.size);
            R[u.dst] = value;
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), false, u.size, addr});
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(St) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            std::uint64_t *R = laneRegs(lane, t);
            Addr addr = R[u.src0] + u.imm;
            std::uint64_t value = R[u.src1];
            gmem.write(addr, &value, u.size);
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), true, u.size, addr});
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(RtPushFrame) : {
        forLanes([&](unsigned, ThreadState &t) {
            vksim_assert(t.rtDepth < kMaxTraceDepth);
            ++t.rtDepth;
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(EndTraceRay) : {
        forLanes([&](unsigned, ThreadState &t) {
            vksim_assert(t.rtDepth > 0);
            --t.rtDepth;
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(RtAllocMem) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            laneRegs(lane, t)[u.dst] = ctx_.scratchAddr(t.tid) + u.imm;
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(LoadLaunchId) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            laneRegs(lane, t)[u.dst] = t.launchId[u.imm];
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(LoadLaunchSize) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            laneRegs(lane, t)[u.dst] = ctx_.launchSize[u.imm];
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(RtFrameAddr) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            vksim_assert(t.rtDepth > 0);
            laneRegs(lane, t)[u.dst] =
                ctx_.frameBase(t.tid, t.rtDepth - 1);
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(DescBase) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            laneRegs(lane, t)[u.dst] = ctx_.descBase[u.imm];
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(ReportIntersection) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            std::uint64_t *R = laneRegs(lane, t);
            vksim_assert(t.rtDepth > 0);
            Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
            auto cur =
                gmem.load<std::uint32_t>(fb + frame::kCurrentDeferred);
            Addr entry = deferredEntryAddr(fb, cur);
            float hit_t = gmem.load<float>(fb + frame::kHitT);
            float tmin = gmem.load<float>(fb + frame::kRayTmin);
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), false, 16, entry});
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), false, 8,
                 fb + frame::kRayTmin});
            float tval = asFloat(R[u.src0]);
            bool commit = tval > tmin && tval < hit_t;
            if (commit) {
                gmem.store<float>(fb + frame::kHitT, tval);
                gmem.store<float>(fb + frame::kHitU, 0.f);
                gmem.store<float>(fb + frame::kHitV, 0.f);
                gmem.store<std::int32_t>(
                    fb + frame::kHitInstance,
                    gmem.load<std::int32_t>(entry + frame::kDefInstance));
                gmem.store<std::int32_t>(
                    fb + frame::kHitPrimitive,
                    gmem.load<std::int32_t>(entry + frame::kDefPrim));
                gmem.store<std::int32_t>(
                    fb + frame::kHitCustomIndex,
                    gmem.load<std::int32_t>(entry
                                            + frame::kDefCustomIndex));
                gmem.store<std::int32_t>(
                    fb + frame::kHitSbtOffset,
                    gmem.load<std::int32_t>(entry + frame::kDefSbtOffset));
                gmem.store<std::uint32_t>(
                    fb + frame::kHitKind,
                    static_cast<std::uint32_t>(HitKind::Procedural));
                result.accesses.push_back(
                    {static_cast<std::uint8_t>(lane), true, 32,
                     fb + frame::kHitT});
            }
            if (u.dst >= 0)
                R[u.dst] = boolVal(commit);
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(CommitAnyHit) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            vksim_assert(t.rtDepth > 0);
            Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
            auto cur =
                gmem.load<std::uint32_t>(fb + frame::kCurrentDeferred);
            Addr entry = deferredEntryAddr(fb, cur);
            float cand_t = gmem.load<float>(entry + frame::kDefT);
            float hit_t = gmem.load<float>(fb + frame::kHitT);
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), false, 32, entry});
            bool commit = cand_t < hit_t;
            if (commit) {
                gmem.store<float>(fb + frame::kHitT, cand_t);
                gmem.store<float>(fb + frame::kHitU,
                                  gmem.load<float>(entry + frame::kDefU));
                gmem.store<float>(fb + frame::kHitV,
                                  gmem.load<float>(entry + frame::kDefV));
                gmem.store<std::int32_t>(
                    fb + frame::kHitInstance,
                    gmem.load<std::int32_t>(entry + frame::kDefInstance));
                gmem.store<std::int32_t>(
                    fb + frame::kHitPrimitive,
                    gmem.load<std::int32_t>(entry + frame::kDefPrim));
                gmem.store<std::int32_t>(
                    fb + frame::kHitCustomIndex,
                    gmem.load<std::int32_t>(entry
                                            + frame::kDefCustomIndex));
                gmem.store<std::int32_t>(
                    fb + frame::kHitSbtOffset,
                    gmem.load<std::int32_t>(entry + frame::kDefSbtOffset));
                gmem.store<std::uint32_t>(
                    fb + frame::kHitKind,
                    static_cast<std::uint32_t>(HitKind::Triangle));
                result.accesses.push_back(
                    {static_cast<std::uint8_t>(lane), true, 32,
                     fb + frame::kHitT});
            }
            if (u.dst >= 0)
                laneRegs(lane, t)[u.dst] = boolVal(commit);
        });
        VKSIM_UOP_END;
    }

    VKSIM_UOP(GetNextCoalescedCall) : {
        forLanes([&](unsigned lane, ThreadState &t) {
            std::uint64_t *R = laneRegs(lane, t);
            std::uint64_t row_idx = R[u.src0];
            Addr row_addr = ctx_.fccBase
                            + (t.tid / kWarpSize) * kFccBytesPerWarp
                            + row_idx * kFccRowBytes;
            result.accesses.push_back(
                {static_cast<std::uint8_t>(lane), false, 8, row_addr});
            if (row_idx >= warp.fccRows.size()) {
                R[u.dst] = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(-1));
                return;
            }
            const CoalescedRow &row = warp.fccRows[row_idx];
            if (row.mask & (1u << lane)) {
                R[u.dst] = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(row.shaderId));
                vksim_assert(t.rtDepth > 0);
                Addr fb = ctx_.frameBase(t.tid, t.rtDepth - 1);
                gmem.store<std::uint32_t>(fb + frame::kCurrentDeferred,
                                          row.entryIdx[lane]);
                result.accesses.push_back(
                    {static_cast<std::uint8_t>(lane), true, 4,
                     fb + frame::kCurrentDeferred});
            } else {
                R[u.dst] = 0;
            }
        });
        VKSIM_UOP_END;
    }

#if VKSIM_UOP_THREADED
L_BadOp:
    vksim_panic("unhandled opcode in execLanes");
#else
      default:
        vksim_panic("unhandled opcode in execLanes");
    }
#endif

L_Done:;

#undef VKSIM_UOP
#undef VKSIM_UOP_END
#undef VKSIM_UOP_BIN
#undef VKSIM_UOP_UN
}

void
WarpExecutor::completeTraverse(Warp &warp, int split_id)
{
    auto it = warp.pendingTraverses.find(split_id);
    vksim_assert(it != warp.pendingTraverses.end());
    TraverseState &ts = it->second;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(ts.mask & (1u << lane)))
            continue;
        RayTraversal *trav = ts.ray(lane);
        vksim_assert(trav && trav->done());
        // Full-check differential: replay the finished ray through the
        // CPU reference tracer before the frame's hit words are written.
        if (check::traverseHookActive())
            check::callTraverseHook(ts.frameBase(lane), *trav);
        rt_runtime::writeResults(*ctx_.gmem, ts.frameBase(lane), *trav);
    }
    if (options_.fccEnabled)
        rt_runtime::buildCoalescingTable(ts, ctx_, &warp.fccRows);
    warp.pendingTraverses.erase(it);
    warp.cflow.unblockById(split_id);
}

void
WarpExecutor::runTraverseFunctional(Warp &warp, int split_id)
{
    TraverseState &ts = warp.pendingTraverses.at(split_id);
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(ts.mask & (1u << lane)))
            continue;
        RayTraversal *trav = ts.ray(lane);
        trav->run();
        // Immediate any-hit: resolve each suspension inline and resume
        // until the ray actually finishes.
        while (trav->anyHitSuspended()) {
            AnyHitRun res =
                runAnyHitShader(ctx_, ts.frameBase(lane),
                                trav->pendingAnyHit(), trav->currentTmax(),
                                options_);
            trav->resolveAnyHit(res.commit);
            trav->run();
        }
    }
    completeTraverse(warp, split_id);
}

void
initWarp(Warp &warp, std::uint32_t warp_id, const LaunchContext &ctx,
         WarpCflow::Mode mode)
{
    warp.warpId = warp_id;
    const std::uint32_t total = ctx.totalThreads();
    std::uint32_t width = ctx.launchSize[0];
    std::uint32_t height = ctx.launchSize[1];
    const ShaderInfo &raygen = ctx.program->shaders[static_cast<std::size_t>(
        ctx.program->raygenShader)];

    Mask live = 0;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        ThreadState &t = warp.threads[lane];
        t = ThreadState{};
        t.rf = &warp.regs;
        t.lane = static_cast<std::uint8_t>(lane);
        std::uint32_t tid = warp_id * kWarpSize + lane;
        t.tid = tid;
        if (tid >= total)
            continue;
        live |= 1u << lane;
        t.launchId[0] = tid % width;
        t.launchId[1] = (tid / width) % height;
        t.launchId[2] = tid / (width * height);
    }
    warp.regs.init(live, raygen.numRegs + 16u);
    warp.cflow.init(raygen.entryPc, live, mode);
    warp.fccRows.clear();
    warp.pendingTraverses.clear();
}

AnyHitRun
runAnyHitShader(const LaunchContext &ctx, Addr frame_base,
                const DeferredHit &candidate, float current_tmax,
                const ExecOptions &options)
{
    const Program &prog = *ctx.program;
    auto sbt = static_cast<std::size_t>(candidate.sbtOffset);
    vksim_assert(sbt < prog.anyHitTrampolines.size());
    std::int32_t tramp_idx = prog.anyHitTrampolines[sbt];
    vksim_assert(tramp_idx >= 0);
    const ShaderInfo &tramp =
        prog.shaders[static_cast<std::size_t>(tramp_idx)];
    vksim_assert(sbt < ctx.hitGroups.size()
                 && ctx.hitGroups[sbt].anyHit != kInvalidShader);
    const ShaderInfo &any_hit = prog.shaders[static_cast<std::size_t>(
        ctx.hitGroups[sbt].anyHit - 1)];

    // Invert the frame address back into (tid, depth) so RtFrameAddr and
    // launch-id intrinsics inside the shader see the suspended thread.
    vksim_assert(frame_base >= ctx.rtStackBase);
    Addr offset = frame_base - ctx.rtStackBase;
    auto tid = static_cast<std::uint32_t>(offset / kRtStackBytesPerThread);
    auto depth =
        static_cast<unsigned>((offset % kRtStackBytesPerThread)
                              / kRtFrameBytes);

    // Stage the candidate as deferred entry 0 and seed the comparison
    // hit with the ray's current tmax: CommitAnyHit then applies the
    // same strictly-closer commit rule as the deferred resolution path.
    GlobalMemory &gmem = *ctx.gmem;
    Addr entry = deferredEntryAddr(frame_base, 0);
    gmem.store<std::int32_t>(entry + frame::kDefPrim,
                             candidate.primitiveIndex);
    gmem.store<std::int32_t>(entry + frame::kDefInstance,
                             candidate.instanceIndex);
    gmem.store<std::int32_t>(entry + frame::kDefCustomIndex,
                             candidate.instanceCustomIndex);
    gmem.store<std::int32_t>(entry + frame::kDefSbtOffset,
                             candidate.sbtOffset);
    gmem.store<std::uint32_t>(entry + frame::kDefAnyHit, 1);
    gmem.store<float>(entry + frame::kDefT, candidate.t);
    gmem.store<float>(entry + frame::kDefU, candidate.u);
    gmem.store<float>(entry + frame::kDefV, candidate.v);
    gmem.store<std::uint32_t>(frame_base + frame::kCurrentDeferred, 0);
    gmem.store<float>(frame_base + frame::kHitT, current_tmax);

    // One-lane mini-warp starting at the trampoline; its Exit bounds the
    // invocation. Per-thread frames are disjoint, so this is race-free
    // under the parallel engine.
    Warp warp;
    warp.warpId = tid / kWarpSize;
    ThreadState &t = warp.threads[0];
    t = ThreadState{};
    t.rf = &warp.regs;
    t.lane = 0;
    t.tid = tid;
    t.rtDepth = depth + 1;
    std::uint32_t width = ctx.launchSize[0];
    std::uint32_t height = ctx.launchSize[1];
    t.launchId[0] = tid % width;
    t.launchId[1] = (tid / width) % height;
    t.launchId[2] = tid / (width * height);
    warp.regs.init(1u,
                   static_cast<std::uint32_t>(tramp.numRegs)
                       + any_hit.numRegs + 16u);
    warp.cflow.init(tramp.entryPc, 1u, WarpCflow::Mode::Stack);

    WarpExecutor exec(ctx, options);
    AnyHitRun run;
    std::uint64_t guard = 0;
    while (!warp.finished()) {
        if (warp.cflow.runnableCount() == 0)
            vksim_panic("any-hit mini-warp deadlock: no runnable split");
        int split_idx = warp.cflow.runnableSplit(0);
        StepResult res = exec.step(warp, split_idx);
        ++run.instructions;
        vksim_assert(!res.startedTraverse);
        if (++guard > 1'000'000ull)
            vksim_panic("any-hit shader runaway");
    }
    run.commit = gmem.load<float>(frame_base + frame::kHitT) < current_tmax;
    return run;
}

FunctionalRunner::FunctionalRunner(const LaunchContext &ctx,
                                   ExecOptions options, WarpCflow::Mode mode)
    : ctx_(ctx), exec_(ctx, options), mode_(mode)
{
}

void
FunctionalRunner::run()
{
    const std::uint32_t total = ctx_.totalThreads();
    const std::uint32_t num_warps = (total + kWarpSize - 1) / kWarpSize;

    Counter &issued = stats_.counter("instructions");
    Counter &alu = stats_.counter("alu");
    Counter &sfu = stats_.counter("sfu");
    Counter &ldst = stats_.counter("ldst");
    Counter &rt = stats_.counter("trace_ray");
    Counter &ctrl = stats_.counter("ctrl");

    for (std::uint32_t w = 0; w < num_warps; ++w) {
        Warp warp;
        initWarp(warp, w, ctx_, mode_);
        std::uint64_t guard = 0;
        while (!warp.finished()) {
            if (warp.cflow.runnableCount() == 0)
                vksim_panic("functional runner deadlock: no runnable split");
            int split_idx = warp.cflow.runnableSplit(0);
            StepResult res = exec_.step(warp, split_idx);
            issued.inc();
            switch (res.unit) {
              case ExecUnit::ALU: alu.inc(); break;
              case ExecUnit::SFU: sfu.inc(); break;
              case ExecUnit::LDST: ldst.inc(); break;
              case ExecUnit::RT: rt.inc(); break;
              case ExecUnit::CTRL: ctrl.inc(); break;
            }
            if (res.startedTraverse)
                exec_.runTraverseFunctional(warp, res.traverseSplitId);
            if (++guard > 200'000'000ull)
                vksim_panic("functional runner runaway warp");
        }
    }
}

} // namespace vksim::vptx
