/**
 * @file
 * Pre-decoded micro-op stream (DESIGN.md, "Interpreter contract").
 *
 * The structural ISA representation (vptx::Instr) is what the translator
 * emits and what tools disassemble; executing it directly makes every
 * dynamic instruction re-derive its execution unit, memory behaviour and
 * register footprint from switches over the opcode. The micro-op stream
 * front-loads that work to translate time: one MicroOp per Instr with the
 * execution unit, step-level dispatch class, lane-handler index, folded
 * immediates and the register high-water mark resolved once, so the warp
 * executor's hot loop is a dense table dispatch that never touches the
 * structural representation.
 *
 * Determinism: a MicroProgram is a pure function of its Program, so
 * rebuilding it (e.g. after decoding a pipeline from the disk store)
 * always reproduces the same stream. kUopEncodingVersion is mixed into
 * xlate::digestPipeline so any change to this encoding invalidates every
 * cached/persisted pipeline key rather than silently serving a stream
 * with stale decode assumptions.
 */

#ifndef VKSIM_VPTX_UOP_H
#define VKSIM_VPTX_UOP_H

#include <vector>

#include "vptx/isa.h"

namespace vksim::vptx {

/**
 * Version of the micro-op encoding. Bump whenever MicroOp fields, flag
 * bits, dispatch classes or the builder's derivation rules change; the
 * pipeline digest (and with it every artifact-cache and disk-store key)
 * changes with it.
 */
inline constexpr std::uint32_t kUopEncodingVersion = 2;

/**
 * Step-level dispatch class: how WarpExecutor::step handles the
 * instruction before (or instead of) running per-lane handlers.
 */
enum class UopClass : std::uint8_t
{
    Lane = 0, ///< per-lane handler, then fall through to pc + 1
    Bra,      ///< conditional branch (Bra / BraZ)
    Jmp,      ///< unconditional jump
    Exit,     ///< lane termination
    Call,     ///< shader call (register-window push)
    Ret,      ///< shader return (register-window pop)
    Traverse  ///< traverseAS: park the split in the RT unit
};

/** MicroOp flag bits. */
enum : std::uint8_t
{
    kUopTouchesMemory = 1u << 0, ///< reads/writes simulated memory
    kUopBraInvert = 1u << 1      ///< Bra class: invert condition (BraZ)
};

/**
 * One pre-decoded instruction. Operand indices, immediate, memory size
 * and control-flow targets are copied from the Instr; the execution
 * unit, dispatch class, memory flag and register high-water mark are
 * resolved by the builder so the executor never consults opcode tables.
 */
struct MicroOp
{
    Opcode op = Opcode::Nop;   ///< lane-handler index (dense)
    UopClass cls = UopClass::Lane;
    ExecUnit unit = ExecUnit::ALU;
    std::uint8_t flags = 0;
    std::uint8_t size = 4;     ///< memory access size (Ld/St)
    std::int16_t dst = -1;
    std::int16_t src0 = -1;
    std::int16_t src1 = -1;
    std::int16_t src2 = -1;
    /**
     * One past the highest window-relative register index this
     * instruction can touch (0 = touches none): a single capacity check
     * per instruction replaces the per-access bounds checks of the
     * structural path.
     */
    std::uint16_t maxReg = 0;
    std::uint32_t target = 0;  ///< branch/call target pc
    std::uint32_t reconv = 0;  ///< reconvergence pc (Bra class)
    std::uint64_t imm = 0;     ///< immediate payload

    bool touchesMemory() const { return flags & kUopTouchesMemory; }
};

/** The pre-decoded stream: one MicroOp per Instr, indexed by pc. */
class MicroProgram
{
  public:
    MicroProgram() = default;

    /** Pre-decode `program` (deterministic; see file comment). */
    explicit MicroProgram(const Program &program);

    const MicroOp &
    at(std::uint32_t pc) const
    {
        return uops_[pc];
    }

    std::size_t size() const { return uops_.size(); }
    bool empty() const { return uops_.empty(); }

  private:
    std::vector<MicroOp> uops_;
};

} // namespace vksim::vptx

#endif // VKSIM_VPTX_UOP_H
