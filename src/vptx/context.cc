#include "vptx/context.h"

#include <algorithm>

#include "accel/traversal.h"
#include "util/log.h"

namespace vksim::vptx {

void
WarpRegFile::grow(unsigned lane, std::uint32_t new_size)
{
    if (new_size > stride_) {
        // Restride: RayTraversal-free flat buffer, so one allocation and
        // a per-lane copy of each lane's logical prefix suffice. Slots
        // beyond a lane's logical size are always zero by invariant.
        std::uint32_t new_stride = std::max(new_size, stride_ * 2);
        std::vector<std::uint64_t> fresh(
            static_cast<std::size_t>(kWarpSize) * new_stride, 0);
        for (unsigned l = 0; l < kWarpSize; ++l)
            std::copy_n(data_.data() + static_cast<std::size_t>(l) * stride_,
                        size_[l],
                        fresh.data()
                            + static_cast<std::size_t>(l) * new_stride);
        data_.swap(fresh);
        stride_ = new_stride;
    }
    size_[lane] = new_size;
}

TraverseState::TraverseState()
{
    rayIdx_.fill(-1);
}

TraverseState::~TraverseState() = default;
TraverseState::TraverseState(TraverseState &&) noexcept = default;
TraverseState &TraverseState::operator=(TraverseState &&) noexcept = default;

void
TraverseState::reset(Mask m)
{
    mask = m;
    rays_.clear();
    rays_.reserve(popcount(m));
    rayIdx_.fill(-1);
    frameBase_.fill(0);
}

RayTraversal &
TraverseState::addRay(unsigned lane, Addr frame_base, RayTraversal &&ray)
{
    vksim_assert(lane < kWarpSize && rayIdx_[lane] < 0);
    rayIdx_[lane] = static_cast<std::int8_t>(rays_.size());
    frameBase_[lane] = frame_base;
    rays_.push_back(std::move(ray));
    return rays_.back();
}

RayTraversal *
TraverseState::ray(unsigned lane)
{
    const std::int8_t idx = rayIdx_[lane];
    return idx < 0 ? nullptr : &rays_[static_cast<unsigned>(idx)];
}

const RayTraversal *
TraverseState::ray(unsigned lane) const
{
    const std::int8_t idx = rayIdx_[lane];
    return idx < 0 ? nullptr : &rays_[static_cast<unsigned>(idx)];
}

} // namespace vksim::vptx
