#include "vptx/isa.h"

#include <sstream>

namespace vksim::vptx {

namespace {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::MovImm: return "mov.imm";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::ISetEq: return "set.eq.s64";
      case Opcode::ISetNe: return "set.ne.s64";
      case Opcode::ISetLt: return "set.lt.s64";
      case Opcode::ISetGe: return "set.ge.s64";
      case Opcode::FAdd: return "add.f32";
      case Opcode::FSub: return "sub.f32";
      case Opcode::FMul: return "mul.f32";
      case Opcode::FDiv: return "div.f32";
      case Opcode::FMin: return "min.f32";
      case Opcode::FMax: return "max.f32";
      case Opcode::FAbs: return "abs.f32";
      case Opcode::FNeg: return "neg.f32";
      case Opcode::FFloor: return "floor.f32";
      case Opcode::FSetLt: return "set.lt.f32";
      case Opcode::FSetLe: return "set.le.f32";
      case Opcode::FSetGt: return "set.gt.f32";
      case Opcode::FSetGe: return "set.ge.f32";
      case Opcode::FSetEq: return "set.eq.f32";
      case Opcode::FSetNe: return "set.ne.f32";
      case Opcode::FSqrt: return "sqrt.f32";
      case Opcode::FRsqrt: return "rsqrt.f32";
      case Opcode::FSin: return "sin.f32";
      case Opcode::FCos: return "cos.f32";
      case Opcode::I2F: return "cvt.f32.s64";
      case Opcode::U2F: return "cvt.f32.u64";
      case Opcode::F2I: return "cvt.s64.f32";
      case Opcode::F2U: return "cvt.u64.f32";
      case Opcode::Select: return "selp";
      case Opcode::Ld: return "ld.global";
      case Opcode::St: return "st.global";
      case Opcode::Bra: return "bra";
      case Opcode::BraZ: return "bra.z";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Exit: return "exit";
      case Opcode::RtPushFrame: return "rt_push_frame";
      case Opcode::TraverseAS: return "traverseAS";
      case Opcode::EndTraceRay: return "endTraceRay";
      case Opcode::RtAllocMem: return "rt_alloc_mem";
      case Opcode::LoadLaunchId: return "load_ray_launch_id";
      case Opcode::LoadLaunchSize: return "load_ray_launch_size";
      case Opcode::RtFrameAddr: return "rt_frame_addr";
      case Opcode::ReportIntersection: return "reportIntersection";
      case Opcode::CommitAnyHit: return "commitAnyHit";
      case Opcode::DescBase: return "desc_base";
      case Opcode::GetNextCoalescedCall: return "getNextCoalescedCall";
    }
    return "?";
}

} // namespace

const char *
shaderStageName(ShaderStage stage)
{
    switch (stage) {
      case ShaderStage::RayGen: return "raygen";
      case ShaderStage::ClosestHit: return "closest_hit";
      case ShaderStage::Miss: return "miss";
      case ShaderStage::AnyHit: return "any_hit";
      case ShaderStage::Intersection: return "intersection";
      case ShaderStage::Callable: return "callable";
      case ShaderStage::Compute: return "compute";
    }
    return "?";
}

std::string
disassemble(const Instr &instr)
{
    std::ostringstream os;
    os << opcodeName(instr.op);
    if (instr.dst >= 0)
        os << " r" << instr.dst;
    for (int s : {static_cast<int>(instr.src0), static_cast<int>(instr.src1),
                  static_cast<int>(instr.src2)})
        if (s >= 0)
            os << " r" << s;
    switch (instr.op) {
      case Opcode::MovImm:
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::RtAllocMem:
      case Opcode::LoadLaunchId:
      case Opcode::LoadLaunchSize:
      case Opcode::DescBase:
        os << " #" << instr.imm;
        break;
      case Opcode::Bra:
      case Opcode::BraZ:
        os << " ->" << instr.target << " (reconv " << instr.reconv << ")";
        break;
      case Opcode::Jmp:
      case Opcode::Call:
        os << " ->" << instr.target;
        break;
      default:
        break;
    }
    return os.str();
}

std::string
disassemble(const Program &program)
{
    std::ostringstream os;
    for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
        for (const ShaderInfo &s : program.shaders)
            if (s.entryPc == pc) {
                os << "// " << shaderStageName(s.stage) << " \"" << s.name
                   << "\" (" << s.numRegs << " regs)\n";
            }
        os << pc << ": " << disassemble(program.code[pc]) << "\n";
    }
    return os.str();
}

} // namespace vksim::vptx
