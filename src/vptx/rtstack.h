/**
 * @file
 * Layout of the per-thread trace-ray stack in simulated global memory.
 *
 * Each thread owns kMaxTraceDepth frames; a frame is pushed by
 * traceRayEXT (before traverseAS) and popped by endTraceRay. The frame
 * holds the ray, the committed closest hit, and the deferred
 * intersection/any-hit table filled during traversal (the paper's
 * "intersection buffer" for delayed intersection and any-hit execution).
 *
 * Shaders access these fields with ordinary loads/stores relative to
 * RtFrameAddr, so all of this state generates real memory traffic.
 */

#ifndef VKSIM_VPTX_RTSTACK_H
#define VKSIM_VPTX_RTSTACK_H

#include <cstdint>

#include "util/types.h"

namespace vksim::vptx {

/** Maximum trace-ray recursion depth supported per thread. */
inline constexpr unsigned kMaxTraceDepth = 2;

/** Maximum deferred intersection/any-hit records per trace call. */
inline constexpr unsigned kMaxDeferred = 96;

/** Field offsets within one trace-ray frame (bytes). */
namespace frame {

// Ray (written by the raygen/caller before traverseAS).
inline constexpr Addr kRayOriginX = 0;
inline constexpr Addr kRayOriginY = 4;
inline constexpr Addr kRayOriginZ = 8;
inline constexpr Addr kRayTmin = 12;
inline constexpr Addr kRayDirX = 16;
inline constexpr Addr kRayDirY = 20;
inline constexpr Addr kRayDirZ = 24;
inline constexpr Addr kRayTmax = 28;
inline constexpr Addr kRayFlags = 32;

// Committed closest hit (written by the RT unit / intersection shaders).
inline constexpr Addr kHitT = 40;
inline constexpr Addr kHitU = 44;
inline constexpr Addr kHitV = 48;
inline constexpr Addr kHitInstance = 52;
inline constexpr Addr kHitPrimitive = 56;
inline constexpr Addr kHitCustomIndex = 60;
inline constexpr Addr kHitSbtOffset = 64;
inline constexpr Addr kHitKind = 68; ///< HitKind enum; 0 = miss

// Deferred table bookkeeping.
inline constexpr Addr kDeferredCount = 72;
inline constexpr Addr kCurrentDeferred = 76; ///< index being shaded

// Deferred entries.
inline constexpr Addr kDeferredBase = 80;
inline constexpr Addr kDeferredStride = 32;

// Per-entry offsets (relative to the entry).
inline constexpr Addr kDefPrim = 0;
inline constexpr Addr kDefInstance = 4;
inline constexpr Addr kDefCustomIndex = 8;
inline constexpr Addr kDefSbtOffset = 12;
inline constexpr Addr kDefAnyHit = 16; ///< 1 = any-hit candidate
inline constexpr Addr kDefT = 20;
inline constexpr Addr kDefU = 24;
inline constexpr Addr kDefV = 28;

} // namespace frame

/** Bytes per trace-ray frame. */
inline constexpr Addr kRtFrameBytes =
    frame::kDeferredBase + kMaxDeferred * frame::kDeferredStride;

/** Bytes of trace-ray stack per thread. */
inline constexpr Addr kRtStackBytesPerThread =
    kRtFrameBytes * kMaxTraceDepth;

/** Bytes of rt_alloc_mem scratch (payload etc.) per thread. */
inline constexpr Addr kRtScratchBytesPerThread = 256;

/** Address of a deferred entry within a frame. */
inline Addr
deferredEntryAddr(Addr frame_base, unsigned index)
{
    return frame_base + frame::kDeferredBase
           + static_cast<Addr>(index) * frame::kDeferredStride;
}

} // namespace vksim::vptx

#endif // VKSIM_VPTX_RTSTACK_H
