/**
 * @file
 * VPTX: the PTX-like virtual ISA executed by the simulator.
 *
 * The paper translates Mesa NIR shaders to (extended) PTX; this repo
 * defines an equivalent virtual ISA. Registers are per-thread 64-bit
 * values; floating point operates on the low 32 bits. Control flow uses
 * explicit branches annotated with their immediate-post-dominator
 * reconvergence point (computed by the structured NIR translator).
 *
 * The custom ray tracing instructions of the paper's Table II are
 * included: traverseAS, endTraceRay, rt_alloc_mem, load_ray_launch_id,
 * plus the small set of helpers Algorithm 1/3 need (reportIntersection,
 * commitAnyHit, rtFrameAddr, getNextCoalescedCall). All other RT state
 * access (hit attributes, deferred intersection records, the shader
 * binding table) happens through *ordinary loads* against the per-thread
 * trace-ray stack frame in global memory, exactly as the paper describes
 * ("traversal information ... is stored in a structure in main memory
 * that can be accessed by specific shader instructions").
 */

#ifndef VKSIM_VPTX_ISA_H
#define VKSIM_VPTX_ISA_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace vksim::vptx {

/** Opcodes of the virtual ISA. */
enum class Opcode : std::uint8_t
{
    Nop = 0,

    // Moves / constants.
    MovImm, ///< dst = imm (64-bit; float constants are bit patterns)
    Mov,    ///< dst = src0

    // Integer ALU (64-bit).
    Add, Sub, Mul, And, Or, Xor, Shl, Shr,
    ISetEq, ISetNe, ISetLt, ISetGe, ///< signed compares; dst = 0/1

    // Float ALU (low 32 bits).
    FAdd, FSub, FMul, FDiv, FMin, FMax, FAbs, FNeg, FFloor,
    FSetLt, FSetLe, FSetGt, FSetGe, FSetEq, FSetNe,

    // Transcendental / special function unit ops.
    FSqrt, FRsqrt, FSin, FCos,

    // Conversions.
    I2F, ///< signed int64 -> float
    U2F, ///< unsigned -> float
    F2I, ///< float -> signed int (trunc)
    F2U, ///< float -> unsigned int (trunc)

    Select, ///< dst = src0 ? src1 : src2 (bitwise 64-bit)

    // Memory (global address space). Address = regs[src0] + imm.
    Ld, ///< dst = load(size bytes, zero-extended)
    St, ///< store regs[src1] (low `size` bytes) to address

    // Control flow.
    Bra,  ///< if (regs[src0] != 0) pc = target; reconv annotated
    BraZ, ///< if (regs[src0] == 0) pc = target; reconv annotated
    Jmp,  ///< pc = target
    Call, ///< call shader at `target`; imm = caller register-window size
    Ret,  ///< return to caller
    Exit, ///< thread terminates

    // Ray tracing custom instructions (paper Table II + helpers).
    RtPushFrame,   ///< push a trace-ray frame (begin traceRayEXT)
    TraverseAS,    ///< traverse the AS; ray read from the current frame
    EndTraceRay,   ///< pop the trace-ray frame, clear intersection table
    RtAllocMem,    ///< dst = per-thread scratch address + imm offset
    LoadLaunchId,  ///< dst = launch id component `imm` (0/1/2)
    LoadLaunchSize,///< dst = launch size component `imm`
    RtFrameAddr,   ///< dst = address of the current trace-ray frame
    ReportIntersection, ///< intersection shader: src0 = t; commit if valid
    CommitAnyHit,  ///< any-hit shader: commit the current deferred hit
    DescBase,      ///< dst = descriptor-set binding `imm` base address
    GetNextCoalescedCall ///< FCC: dst = shader id of row src0 (0 = skip)
};

/** Functional unit an opcode issues to (for the timing model). */
enum class ExecUnit : std::uint8_t
{
    ALU,  ///< integer / float arithmetic
    SFU,  ///< sqrt, rsqrt, sin, cos
    LDST, ///< loads/stores (and the frame-touching RT helpers)
    RT,   ///< traverseAS (offloaded to the RT unit)
    CTRL  ///< branches and other zero-operand control
};

/** Classify an opcode into its execution unit. */
ExecUnit execUnitOf(Opcode op);

/** True for opcodes whose semantics read or write simulated memory. */
bool touchesMemory(Opcode op);

/** One VPTX instruction. */
struct Instr
{
    Opcode op = Opcode::Nop;
    std::int16_t dst = -1;
    std::int16_t src0 = -1;
    std::int16_t src1 = -1;
    std::int16_t src2 = -1;
    std::uint8_t size = 4;     ///< memory access size (Ld/St)
    std::uint32_t target = 0;  ///< branch/call target pc
    std::uint32_t reconv = 0;  ///< reconvergence pc (Bra/BraZ)
    std::uint64_t imm = 0;     ///< immediate payload
};

/**
 * Shader stages of the Vulkan ray tracing pipeline (paper Fig. 5), plus
 * Compute for VK_KHR_ray_query pipelines whose entry shader performs
 * inline traversal without an SBT.
 */
enum class ShaderStage : std::uint8_t
{
    RayGen = 0,
    ClosestHit,
    Miss,
    AnyHit,
    Intersection,
    Callable,
    Compute
};

/** Human-readable stage name. */
const char *shaderStageName(ShaderStage stage);

/** Metadata for one shader linked into a program. */
struct ShaderInfo
{
    std::string name;
    ShaderStage stage = ShaderStage::RayGen;
    std::uint32_t entryPc = 0;
    std::uint16_t numRegs = 0; ///< register-window size
};

/** A linked VPTX program: all shaders concatenated into one image. */
struct Program
{
    std::vector<Instr> code;
    std::vector<ShaderInfo> shaders;

    /**
     * Index into `shaders` of the entry shader every launched thread
     * starts in: the ray generation shader of a classic RT pipeline, or
     * the compute shader of a ray-query pipeline. The historic name is
     * kept because it is serialized in traces and the disk store.
     */
    std::int32_t raygenShader = -1;

    /**
     * Immediate any-hit mode: non-opaque candidates suspend traversal
     * and run their any-hit shader mid-traversal instead of being
     * appended to the deferred table.
     */
    bool immediateAnyHit = false;

    /**
     * Per-hit-group shader indices of the translate-time any-hit
     * trampolines (`Call any_hit; Exit`) the suspension micro-program
     * starts in. Parallel to the pipeline's hit groups; -1 when the
     * group has no any-hit shader. Empty unless immediateAnyHit.
     */
    std::vector<std::int32_t> anyHitTrampolines;

    const ShaderInfo &
    shader(std::size_t idx) const
    {
        return shaders[idx];
    }

    /** The launch entry shader (see raygenShader). */
    const ShaderInfo &
    entryShader() const
    {
        return shaders[static_cast<std::size_t>(raygenShader)];
    }
};

/** Disassemble one instruction (debugging / tests). */
std::string disassemble(const Instr &instr);

/** Disassemble a whole program with shader headers. */
std::string disassemble(const Program &program);

} // namespace vksim::vptx

#endif // VKSIM_VPTX_ISA_H
