/**
 * @file
 * Runtime helpers bridging the trace-ray stack frames in simulated memory
 * and the RayTraversal state machine: reading the ray a shader stored,
 * writing back traversal results (committed hit + deferred table), and
 * building the FCC coalescing buffer.
 *
 * Both the functional-only executor and the timed RT unit use these, so
 * functional results are identical regardless of timing mode.
 */

#ifndef VKSIM_VPTX_RT_RUNTIME_H
#define VKSIM_VPTX_RT_RUNTIME_H

#include "accel/traversal.h"
#include "vptx/context.h"

namespace vksim::vptx {

namespace rt_runtime {

/** Read the ray a shader stored into frame `frame_base`. */
Ray readRay(const GlobalMemory &gmem, Addr frame_base,
            std::uint32_t *flags_out = nullptr);

/**
 * Create the traversal state machine for the frame's ray. When
 * `immediate_any_hit` is set, non-opaque triangles whose hit group is in
 * `any_hit_groups` (bit per sbt offset) suspend the traversal for a
 * mid-traversal any-hit invocation instead of being deferred.
 */
RayTraversal makeTraversal(
    const GlobalMemory &gmem, Addr tlas_root, Addr frame_base,
    TraversalMemSink *sink = nullptr,
    unsigned short_stack_entries = RayTraversal::kShortStackEntries,
    bool immediate_any_hit = false, std::uint64_t any_hit_groups = 0);

/** Bit per sbt offset (< 64) whose hit group carries an any-hit shader. */
std::uint64_t anyHitGroupMask(const LaunchContext &ctx);

/**
 * Write traversal results into the frame: committed hit (or miss) and the
 * deferred intersection/any-hit table, truncated at kMaxDeferred with a
 * warning. Returns the number of bytes stored (timing models account for
 * this as RT unit store traffic).
 */
Addr writeResults(GlobalMemory &gmem, Addr frame_base,
                  const RayTraversal &trav);

/**
 * Build the FCC coalescing buffer for a warp split: one row per distinct
 * shader id in insertion order; rows fill thread-mask bits as matching
 * entries arrive (paper Sec. IV-A and Fig. 9).
 *
 * @param ts The split's parked traversal state (mask + per-lane rays).
 * @param ctx Launch context (maps sbt offsets to shader ids).
 * @param[out] rows The coalescing table.
 * @return Number of (load, store) accesses the insertion performed, for
 *         the RT unit memory-overhead accounting.
 */
struct FccBuildCost
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

FccBuildCost buildCoalescingTable(const TraverseState &ts,
                                  const LaunchContext &ctx,
                                  std::vector<CoalescedRow> *rows);

/** Shader id a deferred entry dispatches to (any-hit or intersection). */
std::int32_t deferredShaderId(const LaunchContext &ctx,
                              const DeferredHit &d);

} // namespace rt_runtime

} // namespace vksim::vptx

#endif // VKSIM_VPTX_RT_RUNTIME_H
