#include "vptx/rt_runtime.h"

#include "util/log.h"

namespace vksim::vptx {
namespace rt_runtime {

Ray
readRay(const GlobalMemory &gmem, Addr frame_base, std::uint32_t *flags_out)
{
    Ray ray;
    ray.origin.x = gmem.load<float>(frame_base + frame::kRayOriginX);
    ray.origin.y = gmem.load<float>(frame_base + frame::kRayOriginY);
    ray.origin.z = gmem.load<float>(frame_base + frame::kRayOriginZ);
    ray.tmin = gmem.load<float>(frame_base + frame::kRayTmin);
    ray.direction.x = gmem.load<float>(frame_base + frame::kRayDirX);
    ray.direction.y = gmem.load<float>(frame_base + frame::kRayDirY);
    ray.direction.z = gmem.load<float>(frame_base + frame::kRayDirZ);
    ray.tmax = gmem.load<float>(frame_base + frame::kRayTmax);
    if (flags_out)
        *flags_out = gmem.load<std::uint32_t>(frame_base + frame::kRayFlags);
    return ray;
}

RayTraversal
makeTraversal(const GlobalMemory &gmem, Addr tlas_root, Addr frame_base,
              TraversalMemSink *sink, unsigned short_stack_entries,
              bool immediate_any_hit, std::uint64_t any_hit_groups)
{
    std::uint32_t flags = 0;
    Ray ray = readRay(gmem, frame_base, &flags);
    RayTraversal trav(gmem, tlas_root, ray, flags, sink,
                      short_stack_entries);
    if (immediate_any_hit)
        trav.setImmediateAnyHit(true, any_hit_groups);
    return trav;
}

std::uint64_t
anyHitGroupMask(const LaunchContext &ctx)
{
    std::uint64_t mask = 0;
    std::size_t n = std::min<std::size_t>(ctx.hitGroups.size(), 64);
    for (std::size_t i = 0; i < n; ++i)
        if (ctx.hitGroups[i].anyHit != kInvalidShader)
            mask |= 1ull << i;
    return mask;
}

Addr
writeResults(GlobalMemory &gmem, Addr frame_base, const RayTraversal &trav)
{
    Addr bytes = 0;
    const HitRecord &hit = trav.hit();
    gmem.store<float>(frame_base + frame::kHitT,
                      hit.valid() ? hit.t : trav.currentTmax());
    gmem.store<float>(frame_base + frame::kHitU, hit.u);
    gmem.store<float>(frame_base + frame::kHitV, hit.v);
    gmem.store<std::int32_t>(frame_base + frame::kHitInstance,
                             hit.instanceIndex);
    gmem.store<std::int32_t>(frame_base + frame::kHitPrimitive,
                             hit.primitiveIndex);
    gmem.store<std::int32_t>(frame_base + frame::kHitCustomIndex,
                             hit.instanceCustomIndex);
    gmem.store<std::int32_t>(frame_base + frame::kHitSbtOffset,
                             hit.sbtOffset);
    gmem.store<std::uint32_t>(frame_base + frame::kHitKind,
                              static_cast<std::uint32_t>(hit.kind));
    bytes += 32;

    const auto &deferred = trav.deferred();
    auto count = static_cast<std::uint32_t>(deferred.size());
    if (count > kMaxDeferred) {
        warnStr("deferred intersection table overflow; truncating");
        count = kMaxDeferred;
    }
    gmem.store<std::uint32_t>(frame_base + frame::kDeferredCount, count);
    gmem.store<std::uint32_t>(frame_base + frame::kCurrentDeferred, 0);
    bytes += 8;
    for (std::uint32_t i = 0; i < count; ++i) {
        const DeferredHit &d = deferred[i];
        Addr e = deferredEntryAddr(frame_base, i);
        gmem.store<std::int32_t>(e + frame::kDefPrim, d.primitiveIndex);
        gmem.store<std::int32_t>(e + frame::kDefInstance, d.instanceIndex);
        gmem.store<std::int32_t>(e + frame::kDefCustomIndex,
                                 d.instanceCustomIndex);
        gmem.store<std::int32_t>(e + frame::kDefSbtOffset, d.sbtOffset);
        gmem.store<std::uint32_t>(e + frame::kDefAnyHit, d.anyHit ? 1 : 0);
        gmem.store<float>(e + frame::kDefT, d.t);
        gmem.store<float>(e + frame::kDefU, d.u);
        gmem.store<float>(e + frame::kDefV, d.v);
        bytes += frame::kDeferredStride;
    }
    return bytes;
}

std::int32_t
deferredShaderId(const LaunchContext &ctx, const DeferredHit &d)
{
    auto sbt = static_cast<std::size_t>(d.sbtOffset);
    if (sbt >= ctx.hitGroups.size())
        return kInvalidShader;
    const HitGroupRecord &group = ctx.hitGroups[sbt];
    if (!d.anyHit)
        return group.intersection;
    return group.anyHit == kInvalidShader ? kDefaultAnyHitShader
                                          : group.anyHit;
}

FccBuildCost
buildCoalescingTable(const TraverseState &ts, const LaunchContext &ctx,
                     std::vector<CoalescedRow> *rows)
{
    FccBuildCost cost;
    rows->clear();
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        const RayTraversal *trav = ts.ray(lane);
        if (!(ts.mask & (1u << lane)) || !trav)
            continue;
        const auto &deferred = trav->deferred();
        auto count = std::min<std::size_t>(deferred.size(), kMaxDeferred);
        for (std::size_t i = 0; i < count; ++i) {
            std::int32_t sid = deferredShaderId(ctx, deferred[i]);
            // Search existing rows for a matching shader id whose slot
            // for this lane is still free. Each inspected row costs one
            // load of its shader id; a candidate match additionally
            // loads the thread mask (paper Sec. VI-E).
            CoalescedRow *target = nullptr;
            for (CoalescedRow &row : *rows) {
                ++cost.loads;
                if (row.shaderId != sid)
                    continue;
                ++cost.loads; // thread-mask check
                if (!(row.mask & (1u << lane))) {
                    target = &row;
                    break;
                }
            }
            if (!target) {
                rows->emplace_back();
                target = &rows->back();
                target->shaderId = sid;
            }
            target->mask |= 1u << lane;
            target->entryIdx[lane] = static_cast<std::uint16_t>(i);
            ++cost.stores;
        }
    }
    return cost;
}

} // namespace rt_runtime
} // namespace vksim::vptx
