#include "vptx/uop.h"

#include <algorithm>

#include "util/log.h"

namespace vksim::vptx {

namespace {

UopClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::Bra:
      case Opcode::BraZ:
        return UopClass::Bra;
      case Opcode::Jmp:
        return UopClass::Jmp;
      case Opcode::Exit:
        return UopClass::Exit;
      case Opcode::Call:
        return UopClass::Call;
      case Opcode::Ret:
        return UopClass::Ret;
      case Opcode::TraverseAS:
        return UopClass::Traverse;
      default:
        return UopClass::Lane;
    }
}

std::uint16_t
maxRegOf(const Instr &instr)
{
    int hi = std::max({static_cast<int>(instr.dst),
                       static_cast<int>(instr.src0),
                       static_cast<int>(instr.src1),
                       static_cast<int>(instr.src2)});
    return hi < 0 ? 0 : static_cast<std::uint16_t>(hi + 1);
}

} // namespace

MicroProgram::MicroProgram(const Program &program)
{
    uops_.reserve(program.code.size());
    for (const Instr &instr : program.code) {
        MicroOp u;
        u.op = instr.op;
        u.cls = classOf(instr.op);
        u.unit = execUnitOf(instr.op);
        u.flags = 0;
        if (touchesMemory(instr.op))
            u.flags |= kUopTouchesMemory;
        if (instr.op == Opcode::BraZ)
            u.flags |= kUopBraInvert;
        u.size = instr.size;
        u.dst = instr.dst;
        u.src0 = instr.src0;
        u.src1 = instr.src1;
        u.src2 = instr.src2;
        u.maxReg = maxRegOf(instr);
        u.target = instr.target;
        u.reconv = instr.reconv;
        u.imm = instr.imm;
        uops_.push_back(u);
    }
}

} // namespace vksim::vptx
