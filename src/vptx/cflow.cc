#include "vptx/cflow.h"

#include <algorithm>
#include <bit>

#include "util/log.h"

namespace vksim::vptx {

namespace {

/** Sentinel reconvergence pc for entries that never pop by pc match. */
constexpr std::uint32_t kNoReconv = 0xFFFFFFFFu;

} // namespace

unsigned
popcount(Mask m)
{
    return static_cast<unsigned>(std::popcount(m));
}

void
WarpCflow::init(std::uint32_t start_pc, Mask mask, Mode mode)
{
    mode_ = mode;
    stack_.clear();
    splits_.clear();
    nextId_ = 1;
    stackBlocked_ = false;
    if (mode_ == Mode::Stack) {
        stack_.push_back({start_pc, kNoReconv, mask});
        syncStackTop();
    } else {
        WarpSplit s;
        s.pc = start_pc;
        s.mask = mask;
        s.id = nextId_++;
        splits_.push_back(s);
    }
}

void
WarpCflow::syncStackTop()
{
    splits_.clear();
    if (stack_.empty())
        return;
    WarpSplit s;
    s.pc = stack_.back().pc;
    s.mask = stack_.back().mask;
    s.blocked = stackBlocked_;
    s.id = 0;
    splits_.push_back(s);
}

bool
WarpCflow::waitingAtReconv(const WarpSplit &s) const
{
    if (mode_ == Mode::Stack || s.pc != s.reconv || s.reconv == kNoReconv)
        return false;
    // Wait while a sibling from the same divergence is still on its way.
    for (const WarpSplit &other : splits_)
        if (other.id != s.id && other.reconv == s.reconv
            && other.mask != 0)
            return true;
    return false;
}

unsigned
WarpCflow::runnableCount() const
{
    unsigned n = 0;
    for (const WarpSplit &s : splits_)
        if (!s.blocked && s.mask != 0 && !waitingAtReconv(s))
            ++n;
    return n;
}

int
WarpCflow::runnableSplit(unsigned i) const
{
    unsigned n = 0;
    for (std::size_t idx = 0; idx < splits_.size(); ++idx) {
        const WarpSplit &s = splits_[idx];
        if (!s.blocked && s.mask != 0 && !waitingAtReconv(s)) {
            if (n == i)
                return static_cast<int>(idx);
            ++n;
        }
    }
    vksim_panic("runnableSplit index out of range");
}

void
WarpCflow::advance(int idx, std::uint32_t next_pc)
{
    if (mode_ == Mode::Stack) {
        vksim_assert(idx == 0 && !stack_.empty());
        stack_.back().pc = next_pc;
        // Pop joined entries (possibly several when reconvergence points
        // coincide, e.g. nested ifs ending at the same instruction). The
        // join continuation below already holds the merged mask.
        while (!stack_.empty() && stack_.back().pc == stack_.back().reconv)
            stack_.pop_back();
        syncStackTop();
        return;
    }
    splits_[static_cast<std::size_t>(idx)].pc = next_pc;
    mergeItsSplits();
}

void
WarpCflow::diverge(int idx, std::uint32_t taken_pc, Mask taken,
                   std::uint32_t fallthrough_pc, Mask not_taken,
                   std::uint32_t reconv_pc)
{
    if (taken == 0) {
        advance(idx, fallthrough_pc);
        return;
    }
    if (not_taken == 0) {
        advance(idx, taken_pc);
        return;
    }

    if (mode_ == Mode::Stack) {
        vksim_assert(idx == 0 && !stack_.empty());
        // The current entry becomes the join continuation at reconv_pc,
        // keeping the merged mask of both paths.
        stack_.back().pc = reconv_pc;
        stack_.push_back({fallthrough_pc, reconv_pc, not_taken});
        stack_.push_back({taken_pc, reconv_pc, taken});
        // A path that branches directly to the reconvergence point is
        // already joined (its lanes are in the join continuation below);
        // pop it immediately or those lanes would run ahead past the join.
        while (!stack_.empty() && stack_.back().pc == stack_.back().reconv)
            stack_.pop_back();
        syncStackTop();
        return;
    }

    WarpSplit &s = splits_[static_cast<std::size_t>(idx)];
    s.pc = taken_pc;
    s.mask = taken;
    s.reconv = reconv_pc;
    WarpSplit nt;
    nt.pc = fallthrough_pc;
    nt.mask = not_taken;
    nt.id = nextId_++;
    nt.reconv = reconv_pc;
    splits_.push_back(nt);
    mergeItsSplits();
}

void
WarpCflow::exitLanes(int idx, Mask lanes)
{
    if (mode_ == Mode::Stack) {
        for (StackEntry &e : stack_)
            e.mask &= ~lanes;
        while (!stack_.empty() && stack_.back().mask == 0)
            stack_.pop_back();
        syncStackTop();
        return;
    }
    splits_[static_cast<std::size_t>(idx)].mask &= ~lanes;
    dropEmptySplits();
}

void
WarpCflow::setBlocked(int idx, bool blocked)
{
    splits_[static_cast<std::size_t>(idx)].blocked = blocked;
}

bool
WarpCflow::finished() const
{
    return liveMask() == 0;
}

Mask
WarpCflow::liveMask() const
{
    if (mode_ == Mode::Stack) {
        Mask m = 0;
        for (const StackEntry &e : stack_)
            m |= e.mask;
        return m;
    }
    Mask m = 0;
    for (const WarpSplit &s : splits_)
        m |= s.mask;
    return m;
}

void
WarpCflow::mergeItsSplits()
{
    dropEmptySplits();
    // Merge unblocked splits that arrived at the same pc (the multi-path
    // reconvergence-table effect of ElTantawy et al., simplified).
    for (std::size_t i = 0; i < splits_.size(); ++i) {
        if (splits_[i].blocked || splits_[i].mask == 0)
            continue;
        for (std::size_t j = i + 1; j < splits_.size();) {
            if (!splits_[j].blocked && splits_[j].mask != 0
                && splits_[j].pc == splits_[i].pc) {
                splits_[i].mask |= splits_[j].mask;
                // Joined at the shared reconvergence point: stop waiting.
                if (splits_[i].reconv == splits_[j].reconv
                    && splits_[i].pc == splits_[i].reconv)
                    splits_[i].reconv = kNoReconv;
                else if (splits_[i].reconv != splits_[j].reconv)
                    splits_[i].reconv = kNoReconv;
                splits_.erase(splits_.begin()
                              + static_cast<std::ptrdiff_t>(j));
            } else {
                ++j;
            }
        }
    }
}

void
WarpCflow::blockAt(int idx, std::uint32_t resume_pc)
{
    if (mode_ == Mode::Stack) {
        vksim_assert(idx == 0 && !stack_.empty());
        stack_.back().pc = resume_pc;
        stackBlocked_ = true;
        syncStackTop();
        return;
    }
    WarpSplit &s = splits_[static_cast<std::size_t>(idx)];
    s.pc = resume_pc;
    s.blocked = true;
}

void
WarpCflow::unblockById(int id)
{
    if (mode_ == Mode::Stack) {
        stackBlocked_ = false;
        syncStackTop();
        return;
    }
    int idx = splitIndexById(id);
    vksim_assert(idx >= 0);
    splits_[static_cast<std::size_t>(idx)].blocked = false;
    mergeItsSplits();
}

int
WarpCflow::splitIndexById(int id) const
{
    if (mode_ == Mode::Stack)
        return splits_.empty() ? -1 : 0;
    for (std::size_t i = 0; i < splits_.size(); ++i)
        if (splits_[i].id == id)
            return static_cast<int>(i);
    return -1;
}

void
WarpCflow::checkWellFormed(check::Reporter &rep,
                           const std::string &path) const
{
    if (mode_ == Mode::Stack) {
        // splits_[0] must mirror the stack top exactly.
        if (splits_.size() != (stack_.empty() ? 0u : 1u)) {
            rep.report(path, "stack-top mirror has "
                                 + std::to_string(splits_.size())
                                 + " splits");
            return;
        }
        if (!stack_.empty()) {
            const WarpSplit &s = splits_[0];
            if (s.pc != stack_.back().pc || s.mask != stack_.back().mask
                || s.id != 0 || s.blocked != stackBlocked_)
                rep.report(path, "stack-top mirror out of sync with the "
                                 "stack top");
        }
        for (std::size_t i = 0; i < stack_.size(); ++i) {
            if (stack_[i].mask == 0)
                rep.report(path, "stack entry " + std::to_string(i)
                                     + " has an empty mask");
            // Every deeper entry's lanes are live, so they must still be
            // present in the root join continuation (exit removes a lane
            // from every entry at once).
            if (i > 0 && (stack_[i].mask & ~stack_[0].mask) != 0)
                rep.report(path,
                           "stack entry " + std::to_string(i)
                               + " holds lanes missing from the root");
        }
        return;
    }

    if (!stack_.empty())
        rep.report(path, "ITS mode with a non-empty SIMT stack");
    Mask seen = 0;
    for (std::size_t i = 0; i < splits_.size(); ++i) {
        const WarpSplit &s = splits_[i];
        if (s.mask == 0)
            rep.report(path, "split " + std::to_string(i)
                                 + " has an empty mask");
        if ((s.mask & seen) != 0)
            rep.report(path, "split " + std::to_string(i)
                                 + " overlaps another split's lanes");
        seen |= s.mask;
        if (s.id <= 0 || s.id >= nextId_)
            rep.report(path, "split " + std::to_string(i)
                                 + " has out-of-range id "
                                 + std::to_string(s.id));
        for (std::size_t j = i + 1; j < splits_.size(); ++j)
            if (splits_[j].id == s.id)
                rep.report(path, "duplicate split id "
                                     + std::to_string(s.id));
    }
}

std::uint64_t
WarpCflow::stateDigest() const
{
    check::Digest d;
    d.mix(static_cast<std::uint64_t>(mode_));
    for (const StackEntry &e : stack_) {
        d.mix(e.pc);
        d.mix(e.reconv);
        d.mix(e.mask);
    }
    d.mix(stack_.size());
    for (const WarpSplit &s : splits_) {
        d.mix(s.pc);
        d.mix(s.mask);
        d.mix(s.blocked);
        d.mix(static_cast<std::uint64_t>(s.id));
        d.mix(s.reconv);
    }
    d.mix(splits_.size());
    d.mix(static_cast<std::uint64_t>(nextId_));
    d.mix(stackBlocked_);
    return d.value();
}

void
WarpCflow::dropEmptySplits()
{
    splits_.erase(std::remove_if(splits_.begin(), splits_.end(),
                                 [](const WarpSplit &s) {
                                     return s.mask == 0;
                                 }),
                  splits_.end());
}

void
WarpCflow::saveState(serial::Writer &w) const
{
    w.u8(mode_ == Mode::Its ? 1 : 0);
    w.u64(stack_.size());
    for (const StackEntry &e : stack_) {
        w.u32(e.pc);
        w.u32(e.reconv);
        w.u32(e.mask);
    }
    w.u64(splits_.size());
    for (const WarpSplit &s : splits_) {
        w.u32(s.pc);
        w.u32(s.mask);
        w.b(s.blocked);
        w.i32(s.id);
        w.u32(s.reconv);
    }
    w.i32(nextId_);
    w.b(stackBlocked_);
}

void
WarpCflow::loadState(serial::Reader &r)
{
    mode_ = r.u8() ? Mode::Its : Mode::Stack;
    stack_.resize(r.u64());
    for (StackEntry &e : stack_) {
        e.pc = r.u32();
        e.reconv = r.u32();
        e.mask = r.u32();
    }
    splits_.resize(r.u64());
    for (WarpSplit &s : splits_) {
        s.pc = r.u32();
        s.mask = r.u32();
        s.blocked = r.b();
        s.id = r.i32();
        s.reconv = r.u32();
    }
    nextId_ = r.i32();
    stackBlocked_ = r.b();
}

} // namespace vksim::vptx
