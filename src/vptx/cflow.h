/**
 * @file
 * Warp control-flow state: stack-based immediate-post-dominator
 * reconvergence (the baseline GPU model) and a multi-path mode
 * implementing independent thread scheduling (ITS) as evaluated in the
 * paper's second case study (Sec. IV-B), where warp splits are tracked in
 * tables rather than a stack and may be scheduled independently.
 */

#ifndef VKSIM_VPTX_CFLOW_H
#define VKSIM_VPTX_CFLOW_H

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.h"
#include "util/serial.h"
#include "util/types.h"

namespace vksim::vptx {

/** Active-lane bitmask (bit i = lane i). */
using Mask = std::uint32_t;

/** Population count helper. */
unsigned popcount(Mask m);

/** A schedulable warp split: a pc and the lanes at that pc. */
struct WarpSplit
{
    std::uint32_t pc = 0;
    Mask mask = 0;
    bool blocked = false; ///< parked (e.g. inside the RT unit)
    int id = 0;           ///< stable identity across table mutations
    /**
     * Reconvergence point of the divergence this split came from
     * (multi-path mode): a split that reaches it *waits* for its sibling
     * splits, as in ElTantawy et al.'s reconvergence tables, instead of
     * running ahead.
     */
    std::uint32_t reconv = 0xFFFFFFFFu;
};

/**
 * Control-flow divergence bookkeeping for one warp.
 *
 * Stack mode exposes exactly one runnable split (the stack top); ITS mode
 * exposes every split. The executor reports outcomes via advance() /
 * diverge() / exitLanes(); reconvergence is handled internally (stack pop
 * when the top reaches its reconvergence pc; split merge on equal pc in
 * ITS mode).
 */
class WarpCflow
{
  public:
    enum class Mode
    {
        Stack, ///< baseline SIMT stack (ipdom reconvergence)
        Its    ///< multi-path independent thread scheduling
    };

    void init(std::uint32_t start_pc, Mask mask, Mode mode);

    Mode mode() const { return mode_; }

    /** Number of currently runnable (unblocked, non-empty) splits. */
    unsigned runnableCount() const;

    /** Index of the i-th runnable split (i < runnableCount()). */
    int runnableSplit(unsigned i) const;

    /** Total splits (including blocked ones). */
    unsigned splitCount() const { return static_cast<unsigned>(splits_.size()); }

    const WarpSplit &split(int idx) const { return splits_[static_cast<std::size_t>(idx)]; }

    /** Uniform control flow: split `idx` moves to next_pc. */
    void advance(int idx, std::uint32_t next_pc);

    /**
     * Divergent branch: split `idx` separates into taken/not-taken paths
     * reconverging at `reconv_pc`. Either mask may be empty (uniform).
     */
    void diverge(int idx, std::uint32_t taken_pc, Mask taken,
                 std::uint32_t fallthrough_pc, Mask not_taken,
                 std::uint32_t reconv_pc);

    /** Lanes of split `idx` executed Exit. */
    void exitLanes(int idx, Mask lanes);

    /** Block / unblock a split (RT unit parking). */
    void setBlocked(int idx, bool blocked);

    /**
     * Park split `idx` in the RT unit with its resume pc. Blocked splits
     * are never merged or re-indexed relative to their stable id.
     */
    void blockAt(int idx, std::uint32_t resume_pc);

    /** Unblock the split with stable id `id` and merge if possible. */
    void unblockById(int id);

    /** Index of the split with stable id `id`, or -1. */
    int splitIndexById(int id) const;

    /** All lanes exited. */
    bool finished() const;

    /** Union of live lanes across splits. */
    Mask liveMask() const;

    /**
     * Validate well-formedness. Stack mode: splits_[0] mirrors the stack
     * top, all stack masks are non-empty and properly nested (deeper
     * entries' masks are subsets of shallower ones). ITS mode: split
     * masks are non-empty, pairwise disjoint, with unique stable ids.
     */
    void checkWellFormed(check::Reporter &rep,
                         const std::string &path) const;

    /** Digest of the full divergence state (stack + split tables). */
    std::uint64_t stateDigest() const;

    /** Serialize / restore the full divergence state (checkpointing). */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    struct StackEntry
    {
        std::uint32_t pc;
        std::uint32_t reconv; ///< pop when pc reaches this
        Mask mask;
    };

    void syncStackTop();
    void mergeItsSplits();
    void dropEmptySplits();
    bool waitingAtReconv(const WarpSplit &s) const;

    Mode mode_ = Mode::Stack;

    // Stack mode state. splits_[0] mirrors the stack top so both modes
    // share the runnable-split interface.
    std::vector<StackEntry> stack_;

    // ITS mode state (also used as the single-element view in stack mode).
    std::vector<WarpSplit> splits_;
    int nextId_ = 1;
    bool stackBlocked_ = false; ///< stack mode: whole warp parked
};

} // namespace vksim::vptx

#endif // VKSIM_VPTX_CFLOW_H
