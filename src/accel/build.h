/**
 * @file
 * Host-side BVH construction: binned-SAH binary build followed by a
 * collapse into 6-wide nodes (the acceleration structure organization
 * Vulkan-Sim adopts from Mesa, paper Sec. III-B1).
 */

#ifndef VKSIM_ACCEL_BUILD_H
#define VKSIM_ACCEL_BUILD_H

#include <cstdint>
#include <vector>

#include "geom/aabb.h"

namespace vksim {

/** A primitive reference fed to the builder. */
struct PrimRef
{
    Aabb bounds;
    std::uint32_t index = 0; ///< primitive index in the source geometry
};

/** Node of the intermediate binary BVH (leaf when primIndex >= 0). */
struct BinaryBvhNode
{
    Aabb bounds;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t primIndex = -1;

    bool isLeaf() const { return primIndex >= 0; }
};

/** Binary BVH with exactly one primitive per leaf. */
struct BinaryBvh
{
    std::vector<BinaryBvhNode> nodes; ///< node 0 is the root
};

/**
 * Build a binary BVH over `prims` with a 16-bin SAH sweep per axis;
 * degenerates to a median split when SAH finds no beneficial partition.
 */
BinaryBvh buildBinaryBvh(const std::vector<PrimRef> &prims);

/** Maximum branching factor of the collapsed BVH (Mesa uses 6). */
inline constexpr unsigned kBvhWidth = 6;

/** Child of a wide node: either another wide node or a single primitive. */
struct WideBvhChild
{
    Aabb bounds;
    std::int32_t node = -1; ///< wide node index when internal
    std::int32_t prim = -1; ///< primitive index when leaf

    bool isLeaf() const { return prim >= 0; }
};

/** Internal node with up to kBvhWidth children. */
struct WideBvhNode
{
    Aabb bounds;
    std::vector<WideBvhChild> children;
};

/** Collapsed wide BVH. */
struct WideBvh
{
    std::vector<WideBvhNode> nodes; ///< node 0 is the root
    unsigned maxDepth = 0;          ///< in wide nodes, root = 1

    /** Total child slots that are primitive leaves. */
    std::size_t leafCount() const;
};

/**
 * Collapse a binary BVH into a wide BVH by repeatedly expanding the
 * largest-surface-area internal child until the node has kBvhWidth
 * children or only leaves remain.
 */
WideBvh collapseToWide(const BinaryBvh &binary);

/** Convenience: build + collapse. Empty input yields a single empty root. */
WideBvh buildWideBvh(const std::vector<PrimRef> &prims);

} // namespace vksim

#endif // VKSIM_ACCEL_BUILD_H
