#include "accel/nodetest.h"

#include <cmath>

#include "geom/intersect.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define VKSIM_NODETEST_SIMD 1
#else
#define VKSIM_NODETEST_SIMD 0
#endif

namespace vksim {

unsigned
nodeTest6Scalar(const InternalNode &node, const Ray &ray,
                const Vec3 &inv_dir, unsigned child_count, float t_entry[6])
{
    unsigned hit_mask = 0;
    for (unsigned i = 0; i < child_count; ++i) {
        float t = 0.f;
        if (rayAabb(ray, inv_dir, node.childBounds(i), &t)) {
            hit_mask |= 1u << i;
            t_entry[i] = t;
        }
    }
    return hit_mask;
}

#if VKSIM_NODETEST_SIMD

namespace {

/** select(mask ? a : b) without NaN-sensitive blend instructions. */
inline __m128
blendMask(__m128 mask, __m128 a, __m128 b)
{
    return _mm_or_ps(_mm_and_ps(mask, a), _mm_andnot_ps(mask, b));
}

/**
 * The slab test for one axis over 4 children, mirroring rayAabb()'s
 * scalar sequence exactly:
 *   near = (lo - o) * inv;  far = (hi - o) * inv
 *   if (near > far) swap            — NaN compares false: no swap
 *   t0 = max(t0, near)              — std::max keeps t0 on NaN near
 *   t1 = min(t1, far)               — std::min keeps t1 on NaN far
 * Axis-parallel rays (dir == 0) instead take the containment test; the
 * caller selects that per axis since the direction is per-ray.
 */
inline void
slabAxis(__m128 lo, __m128 hi, float o, float inv, __m128 &t0, __m128 &t1)
{
    const __m128 ov = _mm_set1_ps(o);
    const __m128 iv = _mm_set1_ps(inv);
    __m128 near_t = _mm_mul_ps(_mm_sub_ps(lo, ov), iv);
    __m128 far_t = _mm_mul_ps(_mm_sub_ps(hi, ov), iv);
    const __m128 swap = _mm_cmpgt_ps(near_t, far_t);
    const __m128 n2 = blendMask(swap, far_t, near_t);
    far_t = blendMask(swap, near_t, far_t);
    near_t = n2;
    // t0 = (t0 < near) ? near : t0;  t1 = (far < t1) ? far : t1
    t0 = blendMask(_mm_cmplt_ps(t0, near_t), near_t, t0);
    t1 = blendMask(_mm_cmplt_ps(far_t, t1), far_t, t1);
}

/** Containment test for an axis-parallel axis: o < lo || o > hi. */
inline __m128
containMiss(__m128 lo, __m128 hi, float o)
{
    const __m128 ov = _mm_set1_ps(o);
    return _mm_or_ps(_mm_cmplt_ps(ov, lo), _mm_cmpgt_ps(ov, hi));
}

} // namespace

unsigned
nodeTest6(const InternalNode &node, const Ray &ray, const Vec3 &inv_dir,
          unsigned child_count, float t_entry[6])
{
    // Dequantize with the exact childBounds() expressions (scalar: the
    // bit pattern must match the reference path; padding lanes reuse
    // child 0 so no lane computes on garbage).
    const float sx = std::ldexp(1.0f, node.expX);
    const float sy = std::ldexp(1.0f, node.expY);
    const float sz = std::ldexp(1.0f, node.expZ);
    alignas(16) float lox[8], loy[8], loz[8], hix[8], hiy[8], hiz[8];
    for (unsigned i = 0; i < 8; ++i) {
        const unsigned c = i < child_count ? i : 0;
        lox[i] = node.originX + node.qlo[c][0] * sx;
        loy[i] = node.originY + node.qlo[c][1] * sy;
        loz[i] = node.originZ + node.qlo[c][2] * sz;
        hix[i] = node.originX + node.qhi[c][0] * sx;
        hiy[i] = node.originY + node.qhi[c][1] * sy;
        hiz[i] = node.originZ + node.qhi[c][2] * sz;
    }

    alignas(16) float t0_out[8];
    alignas(16) std::uint32_t miss_out[8];
    for (unsigned block = 0; block < 2; ++block) {
        const unsigned b = block * 4;
        __m128 t0 = _mm_set1_ps(ray.tmin);
        __m128 t1 = _mm_set1_ps(ray.tmax);
        __m128 miss = _mm_setzero_ps();
        if (ray.direction.x == 0.0f)
            miss = _mm_or_ps(miss, containMiss(_mm_load_ps(lox + b),
                                               _mm_load_ps(hix + b),
                                               ray.origin.x));
        else
            slabAxis(_mm_load_ps(lox + b), _mm_load_ps(hix + b),
                     ray.origin.x, inv_dir.x, t0, t1);
        if (ray.direction.y == 0.0f)
            miss = _mm_or_ps(miss, containMiss(_mm_load_ps(loy + b),
                                               _mm_load_ps(hiy + b),
                                               ray.origin.y));
        else
            slabAxis(_mm_load_ps(loy + b), _mm_load_ps(hiy + b),
                     ray.origin.y, inv_dir.y, t0, t1);
        if (ray.direction.z == 0.0f)
            miss = _mm_or_ps(miss, containMiss(_mm_load_ps(loz + b),
                                               _mm_load_ps(hiz + b),
                                               ray.origin.z));
        else
            slabAxis(_mm_load_ps(loz + b), _mm_load_ps(hiz + b),
                     ray.origin.z, inv_dir.z, t0, t1);
        // Interval became empty (t0 > t1 is sticky: t0 only grows, t1
        // only shrinks, and NaN near/far never enter them) — equivalent
        // to the scalar early return.
        miss = _mm_or_ps(miss, _mm_cmpgt_ps(t0, t1));
        _mm_store_ps(t0_out + b, t0);
        _mm_store_ps(reinterpret_cast<float *>(miss_out + b), miss);
    }

    unsigned hit_mask = 0;
    for (unsigned i = 0; i < child_count; ++i) {
        if (miss_out[i])
            continue;
        hit_mask |= 1u << i;
        t_entry[i] = t0_out[i];
    }
    return hit_mask;
}

bool
nodeTestUsesSimd()
{
    return true;
}

#else // !VKSIM_NODETEST_SIMD

unsigned
nodeTest6(const InternalNode &node, const Ray &ray, const Vec3 &inv_dir,
          unsigned child_count, float t_entry[6])
{
    return nodeTest6Scalar(node, ray, inv_dir, child_count, t_entry);
}

bool
nodeTestUsesSimd()
{
    return false;
}

#endif // VKSIM_NODETEST_SIMD

} // namespace vksim
