#include "accel/traversal.h"

#include <algorithm>

#include "accel/nodetest.h"
#include "geom/intersect.h"
#include "util/log.h"

namespace vksim {

namespace {

/** Unpack 12 floats (rows 0..2) into a Mat4. */
Mat4
unpackMatrix(const float rows[12])
{
    Mat4 m = Mat4::identity();
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 4; ++c)
            m.m[r][c] = rows[4 * r + c];
    return m;
}

} // namespace

RayTraversal::RayTraversal(const GlobalMemory &gmem, Addr tlas_root,
                           const Ray &ray, std::uint32_t flags,
                           TraversalMemSink *sink,
                           unsigned short_stack_entries)
    : gmem_(gmem), sink_(sink), flags_(flags), worldRay_(ray)
{
    shortStack_.resize(std::max(1u, short_stack_entries));
    worldInvDir_ = safeInverse(worldRay_.direction);
    StackEntry root;
    root.addr = tlas_root;
    root.type = NodeType::Internal;
    root.instance = -1;
    push(root);
}

void
RayTraversal::push(const StackEntry &e)
{
    if (shortTop_ == shortStack_.size()) {
        // Evict the *bottom* (stalest) entry into per-thread memory.
        spilled_.push_back(shortStack_[0]);
        for (unsigned i = 1; i < shortStack_.size(); ++i)
            shortStack_[i - 1] = shortStack_[i];
        --shortTop_;
        ++stackSpills_;
        if (sink_)
            sink_->stackSpill(sizeof(StackEntry), true);
    }
    shortStack_[shortTop_++] = e;
}

bool
RayTraversal::pop(StackEntry *e)
{
    if (shortTop_ == 0) {
        if (spilled_.empty())
            return false;
        // Refill from memory-resident stack bottom.
        *e = spilled_.back();
        spilled_.pop_back();
        ++stackSpills_;
        if (sink_)
            sink_->stackSpill(sizeof(StackEntry), false);
        return true;
    }
    *e = shortStack_[--shortTop_];
    return true;
}

bool
RayTraversal::nextFetch(Addr *addr, unsigned *size)
{
    if (done_ || anyHitSuspended_)
        return false;
    if (!havePending_) {
        if (!pop(&pending_)) {
            done_ = true;
            return false;
        }
        havePending_ = true;
    }
    *addr = pending_.addr;
    *size = kNodeBlockSize * nodeBlocks(pending_.type);
    return true;
}

void
RayTraversal::enterInstance(const TopLeafNode &leaf)
{
    currentInstance_ = static_cast<std::int32_t>(leaf.instanceIndex);
    currentCustomIndex_ = leaf.instanceCustomIndex;
    currentSbtOffset_ = leaf.sbtOffset;
    Mat4 w2o = unpackMatrix(leaf.worldToObject);
    objectRay_.origin = w2o.transformPoint(worldRay_.origin);
    // Direction left unnormalized so the t parameter matches world space.
    objectRay_.direction = w2o.transformVector(worldRay_.direction);
    objectRay_.tmin = worldRay_.tmin;
    objectRay_.tmax = worldRay_.tmax;
    objectInvDir_ = safeInverse(objectRay_.direction);
    ++transforms_;
}

void
RayTraversal::processInternal(const InternalNode &node, TraversalStep *out)
{
    out->op = BvhOp::BoxTest;
    const Ray &ray = activeRay();
    const Vec3 &inv = currentInstance_ < 0 ? worldInvDir_ : objectInvDir_;

    struct ChildHit
    {
        float t;
        unsigned idx;
    };
    ChildHit hits[6];
    unsigned hit_count = 0;
    // Clamp against corrupt node data: childCount beyond the 6-wide
    // format would overflow the local hit list.
    unsigned child_count = std::min<unsigned>(node.childCount, 6);
    out->boxTests += child_count;
    boxTests_ += child_count;
    float t_entry[6];
    unsigned hit_mask = nodeTest6(node, ray, inv, child_count, t_entry);
    for (unsigned i = 0; i < child_count; ++i)
        if (hit_mask & (1u << i))
            hits[hit_count++] = {t_entry[i], i};
    // Push far-to-near so the nearest child is popped first.
    std::sort(hits, hits + hit_count,
              [](const ChildHit &a, const ChildHit &b) { return a.t > b.t; });
    for (unsigned h = 0; h < hit_count; ++h) {
        StackEntry e;
        e.addr = node.childAddress(hits[h].idx);
        e.type = node.childType(hits[h].idx);
        e.instance = currentInstance_;
        push(e);
    }
}

void
RayTraversal::processTriangle(const TriangleLeafNode &leaf,
                              TraversalStep *out)
{
    out->op = BvhOp::TriangleTest;
    out->trianglesTested = 1;
    ++triangleTests_;

    const Ray &ray = activeRay();
    Vec3 v0{leaf.v0[0], leaf.v0[1], leaf.v0[2]};
    Vec3 v1{leaf.v1[0], leaf.v1[1], leaf.v1[2]};
    Vec3 v2{leaf.v2[0], leaf.v2[1], leaf.v2[2]};
    TriangleHit tri = rayTriangle(ray, v0, v1, v2);
    if (!tri.hit)
        return;

    bool opaque = leaf.opaque != 0 || (flags_ & kRayFlagOpaque);
    if (!opaque) {
        DeferredHit d;
        d.instanceIndex = currentInstance_;
        d.primitiveIndex = static_cast<std::int32_t>(leaf.primitiveIndex);
        d.instanceCustomIndex = currentCustomIndex_;
        d.sbtOffset = currentSbtOffset_;
        d.anyHit = true;
        d.t = tri.t;
        d.u = tri.u;
        d.v = tri.v;
        if (!immediateAnyHit_) {
            // Deferred any-hit execution: record the candidate, leave
            // tmax untouched (Vulkan imposes no hit ordering).
            deferred_.push_back(d);
            out->deferredRecorded = true;
            if (sink_)
                sink_->intersectionWrite(sizeof(DeferredHit));
            return;
        }
        bool has_any_hit = currentSbtOffset_ >= 0 && currentSbtOffset_ < 64
                           && ((anyHitGroupMask_ >> currentSbtOffset_) & 1);
        if (has_any_hit) {
            // Suspend: the owner runs the any-hit shader and resumes via
            // resolveAnyHit(); no further fetches until then.
            pendingAnyHit_ = d;
            anyHitSuspended_ = true;
            out->anyHitPending = true;
            return;
        }
        // Non-opaque with no any-hit shader: default accept, fall
        // through to the inline commit.
    }

    // Commit: update the closest hit and shrink both ray intervals.
    hit_.t = tri.t;
    hit_.u = tri.u;
    hit_.v = tri.v;
    hit_.instanceIndex = currentInstance_;
    hit_.primitiveIndex = static_cast<std::int32_t>(leaf.primitiveIndex);
    hit_.instanceCustomIndex = currentCustomIndex_;
    hit_.sbtOffset = currentSbtOffset_;
    hit_.kind = HitKind::Triangle;
    worldRay_.tmax = tri.t;
    objectRay_.tmax = tri.t;
    out->committedHit = true;
    if (flags_ & kRayFlagTerminateOnFirstHit) {
        done_ = true;
        havePending_ = false;
    }
}

void
RayTraversal::processProcedural(const ProceduralLeafNode &leaf,
                                TraversalStep *out)
{
    out->op = BvhOp::ProceduralRecord;
    if (flags_ & kRayFlagSkipProcedural)
        return;
    DeferredHit d;
    d.instanceIndex = currentInstance_;
    d.primitiveIndex = static_cast<std::int32_t>(leaf.primitiveIndex);
    d.instanceCustomIndex = currentCustomIndex_;
    d.sbtOffset = currentSbtOffset_;
    d.anyHit = false;
    deferred_.push_back(d);
    out->deferredRecorded = true;
    if (sink_)
        sink_->intersectionWrite(sizeof(DeferredHit));
}

TraversalStep
RayTraversal::step()
{
    TraversalStep out;
    if (done_ || !havePending_) {
        out.done = done_;
        return out;
    }

    StackEntry entry = pending_;
    havePending_ = false;
    ++nodesVisited_;

    // Context switch when popping back across an instance boundary.
    if (entry.instance != currentInstance_) {
        currentInstance_ = entry.instance;
        // Returning to the TLAS needs no recompute: the world ray is kept
        // up to date. Re-entering a *different* BLAS never happens without
        // passing through its TopLeaf, which re-derives the object ray.
        vksim_assert(entry.instance == -1);
    }

    switch (entry.type) {
      case NodeType::Internal: {
        InternalNode node = gmem_.load<InternalNode>(entry.addr);
        processInternal(node, &out);
        break;
      }
      case NodeType::TopLeaf: {
        TopLeafNode leaf = gmem_.load<TopLeafNode>(entry.addr);
        out.op = BvhOp::Transform;
        enterInstance(leaf);
        StackEntry e;
        e.addr = leaf.blasRoot;
        e.type = NodeType::Internal;
        e.instance = currentInstance_;
        push(e);
        break;
      }
      case NodeType::TriangleLeaf: {
        TriangleLeafNode leaf = gmem_.load<TriangleLeafNode>(entry.addr);
        processTriangle(leaf, &out);
        break;
      }
      case NodeType::ProceduralLeaf: {
        ProceduralLeafNode leaf =
            gmem_.load<ProceduralLeafNode>(entry.addr);
        processProcedural(leaf, &out);
        break;
      }
      default:
        vksim_panic("traversal reached an invalid node type");
    }

    // A suspended traversal is not done even with an empty stack: the
    // any-hit verdict re-applies this check in resolveAnyHit().
    if (!anyHitSuspended_ && !havePending_ && shortTop_ == 0
        && spilled_.empty())
        done_ = true;
    out.done = done_;
    return out;
}

void
RayTraversal::resolveAnyHit(bool commit)
{
    vksim_assert(anyHitSuspended_);
    anyHitSuspended_ = false;
    if (commit) {
        hit_.t = pendingAnyHit_.t;
        hit_.u = pendingAnyHit_.u;
        hit_.v = pendingAnyHit_.v;
        hit_.instanceIndex = pendingAnyHit_.instanceIndex;
        hit_.primitiveIndex = pendingAnyHit_.primitiveIndex;
        hit_.instanceCustomIndex = pendingAnyHit_.instanceCustomIndex;
        hit_.sbtOffset = pendingAnyHit_.sbtOffset;
        hit_.kind = HitKind::Triangle;
        // Resolution happens before any further step, so objectRay_
        // still belongs to the candidate's instance.
        worldRay_.tmax = pendingAnyHit_.t;
        objectRay_.tmax = pendingAnyHit_.t;
        if (flags_ & kRayFlagTerminateOnFirstHit) {
            done_ = true;
            havePending_ = false;
        }
    }
    if (!havePending_ && shortTop_ == 0 && spilled_.empty())
        done_ = true;
}

void
RayTraversal::run()
{
    Addr addr;
    unsigned size;
    while (nextFetch(&addr, &size))
        step();
}

namespace {

void
putVec3(serial::Writer &w, const Vec3 &v)
{
    w.f32(v.x);
    w.f32(v.y);
    w.f32(v.z);
}

Vec3
getVec3(serial::Reader &r)
{
    Vec3 v;
    v.x = r.f32();
    v.y = r.f32();
    v.z = r.f32();
    return v;
}

void
putRay(serial::Writer &w, const Ray &ray)
{
    putVec3(w, ray.origin);
    w.f32(ray.tmin);
    putVec3(w, ray.direction);
    w.f32(ray.tmax);
}

Ray
getRay(serial::Reader &r)
{
    Ray ray;
    ray.origin = getVec3(r);
    ray.tmin = r.f32();
    ray.direction = getVec3(r);
    ray.tmax = r.f32();
    return ray;
}

} // namespace

void
RayTraversal::saveState(serial::Writer &w) const
{
    w.u32(flags_);
    putRay(w, worldRay_);
    putRay(w, objectRay_);
    putVec3(w, worldInvDir_);
    putVec3(w, objectInvDir_);
    w.i32(currentInstance_);
    w.i32(currentCustomIndex_);
    w.i32(currentSbtOffset_);
    auto put_entry = [&](const StackEntry &e) {
        w.u64(e.addr);
        w.u32(static_cast<std::uint32_t>(e.type));
        w.i32(e.instance);
    };
    w.u64(shortStack_.size());
    w.u32(shortTop_);
    for (unsigned i = 0; i < shortTop_; ++i)
        put_entry(shortStack_[i]);
    w.u64(spilled_.size());
    for (const StackEntry &e : spilled_)
        put_entry(e);
    w.b(havePending_);
    if (havePending_)
        put_entry(pending_);
    w.b(done_);
    w.b(immediateAnyHit_);
    w.u64(anyHitGroupMask_);
    w.b(anyHitSuspended_);
    if (anyHitSuspended_) {
        w.i32(pendingAnyHit_.instanceIndex);
        w.i32(pendingAnyHit_.primitiveIndex);
        w.i32(pendingAnyHit_.instanceCustomIndex);
        w.i32(pendingAnyHit_.sbtOffset);
        w.b(pendingAnyHit_.anyHit);
        w.f32(pendingAnyHit_.t);
        w.f32(pendingAnyHit_.u);
        w.f32(pendingAnyHit_.v);
    }
    w.f32(hit_.t);
    w.f32(hit_.u);
    w.f32(hit_.v);
    w.i32(hit_.instanceIndex);
    w.i32(hit_.primitiveIndex);
    w.i32(hit_.instanceCustomIndex);
    w.i32(hit_.sbtOffset);
    w.u8(static_cast<std::uint8_t>(hit_.kind));
    w.u64(deferred_.size());
    for (const DeferredHit &d : deferred_) {
        w.i32(d.instanceIndex);
        w.i32(d.primitiveIndex);
        w.i32(d.instanceCustomIndex);
        w.i32(d.sbtOffset);
        w.b(d.anyHit);
        w.f32(d.t);
        w.f32(d.u);
        w.f32(d.v);
    }
    w.u64(nodesVisited_);
    w.u64(boxTests_);
    w.u64(triangleTests_);
    w.u64(transforms_);
    w.u64(stackSpills_);
}

RayTraversal::RayTraversal(const GlobalMemory &gmem, serial::Reader &r)
    : gmem_(gmem), sink_(nullptr), flags_(r.u32())
{
    worldRay_ = getRay(r);
    objectRay_ = getRay(r);
    worldInvDir_ = getVec3(r);
    objectInvDir_ = getVec3(r);
    currentInstance_ = r.i32();
    currentCustomIndex_ = r.i32();
    currentSbtOffset_ = r.i32();
    auto get_entry = [&] {
        StackEntry e;
        e.addr = r.u64();
        e.type = static_cast<NodeType>(r.u32());
        e.instance = r.i32();
        return e;
    };
    shortStack_.resize(r.u64());
    shortTop_ = r.u32();
    for (unsigned i = 0; i < shortTop_; ++i)
        shortStack_[i] = get_entry();
    spilled_.resize(r.u64());
    for (StackEntry &e : spilled_)
        e = get_entry();
    havePending_ = r.b();
    if (havePending_)
        pending_ = get_entry();
    done_ = r.b();
    immediateAnyHit_ = r.b();
    anyHitGroupMask_ = r.u64();
    anyHitSuspended_ = r.b();
    if (anyHitSuspended_) {
        pendingAnyHit_.instanceIndex = r.i32();
        pendingAnyHit_.primitiveIndex = r.i32();
        pendingAnyHit_.instanceCustomIndex = r.i32();
        pendingAnyHit_.sbtOffset = r.i32();
        pendingAnyHit_.anyHit = r.b();
        pendingAnyHit_.t = r.f32();
        pendingAnyHit_.u = r.f32();
        pendingAnyHit_.v = r.f32();
    }
    hit_.t = r.f32();
    hit_.u = r.f32();
    hit_.v = r.f32();
    hit_.instanceIndex = r.i32();
    hit_.primitiveIndex = r.i32();
    hit_.instanceCustomIndex = r.i32();
    hit_.sbtOffset = r.i32();
    hit_.kind = static_cast<HitKind>(r.u8());
    deferred_.resize(r.u64());
    for (DeferredHit &d : deferred_) {
        d.instanceIndex = r.i32();
        d.primitiveIndex = r.i32();
        d.instanceCustomIndex = r.i32();
        d.sbtOffset = r.i32();
        d.anyHit = r.b();
        d.t = r.f32();
        d.u = r.f32();
        d.v = r.f32();
    }
    nodesVisited_ = r.u64();
    boxTests_ = r.u64();
    triangleTests_ = r.u64();
    transforms_ = r.u64();
    stackSpills_ = r.u64();
}

} // namespace vksim
