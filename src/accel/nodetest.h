/**
 * @file
 * Six-wide ray/AABB test against one internal node's quantized child
 * boxes — the innermost loop of BVH traversal, shared by the timed RT
 * unit model and the functional reference tracer (both go through
 * RayTraversal::processInternal).
 *
 * The SIMD path is bit-exact with calling rayAabb() per child: it
 * dequantizes with the same scalar expressions and replicates the slab
 * test's NaN behaviour (no min/max instructions whose NaN operand
 * asymmetry differs from the std::min/std::max idiom — explicit
 * compare + blend only). The scalar path is the reference for the
 * SIMD-vs-scalar equivalence test and non-x86 builds.
 */

#ifndef VKSIM_ACCEL_NODETEST_H
#define VKSIM_ACCEL_NODETEST_H

#include "accel/layout.h"
#include "geom/ray.h"

namespace vksim {

/**
 * Test `ray` against children [0, child_count) of `node`.
 *
 * @param inv_dir Precomputed safeInverse(ray.direction).
 * @param child_count Number of valid children (caller clamps to 6).
 * @param[out] t_entry Per-child slab entry t; valid only for hit children.
 * @return Bitmask of hit children (bit i = child i).
 */
unsigned nodeTest6(const InternalNode &node, const Ray &ray,
                   const Vec3 &inv_dir, unsigned child_count,
                   float t_entry[6]);

/** Reference implementation: rayAabb() per child (same contract). */
unsigned nodeTest6Scalar(const InternalNode &node, const Ray &ray,
                         const Vec3 &inv_dir, unsigned child_count,
                         float t_entry[6]);

/** True when nodeTest6() dispatches to the SIMD kernel. */
bool nodeTestUsesSimd();

} // namespace vksim

#endif // VKSIM_ACCEL_NODETEST_H
