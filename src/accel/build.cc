#include "accel/build.h"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

#include "util/log.h"
#include "util/threadpool.h"

namespace vksim {

namespace {

constexpr unsigned kNumBins = 16;

/**
 * Node ranges at least this large run their per-prim scans (prim/centroid
 * bounds, SAH bin accumulation) chunked on the shared thread pool. Chunk
 * partials are merged in fixed chunk order; the reductions are float
 * min/max and integer sums, so the result is exact and identical for any
 * thread count. Below the threshold the fork-join overhead outweighs the
 * scan.
 */
constexpr std::uint32_t kParallelBuildThreshold = 8192;

struct BuildContext
{
    const std::vector<PrimRef> *prims = nullptr;
    std::vector<std::uint32_t> order; // permutation being partitioned
    std::vector<BinaryBvhNode> nodes;
};

/** Split [begin, end) into per-lane chunks for a parallel reduction. */
struct ChunkPlan
{
    std::uint32_t begin;
    std::uint32_t per;
    unsigned count;

    ChunkPlan(std::uint32_t b, std::uint32_t e, unsigned lanes)
        : begin(b)
    {
        std::uint32_t n = e - b;
        count = std::min<std::uint32_t>(n, lanes * 4u);
        per = (n + count - 1) / count;
    }

    std::uint32_t chunkBegin(std::size_t c) const
    {
        return begin + static_cast<std::uint32_t>(c) * per;
    }
    std::uint32_t chunkEnd(std::size_t c, std::uint32_t e) const
    {
        return std::min<std::uint32_t>(e, chunkBegin(c) + per);
    }
};

Aabb
rangeBounds(const BuildContext &ctx, std::uint32_t begin, std::uint32_t end)
{
    if (end - begin < kParallelBuildThreshold) {
        Aabb box;
        for (std::uint32_t i = begin; i < end; ++i)
            box.extend((*ctx.prims)[ctx.order[i]].bounds);
        return box;
    }
    ThreadPool &pool = sharedThreadPool();
    ChunkPlan plan(begin, end, pool.threadCount());
    std::vector<Aabb> partial(plan.count);
    pool.parallelFor(plan.count, [&](std::size_t c) {
        Aabb box;
        for (std::uint32_t i = plan.chunkBegin(c),
                           e = plan.chunkEnd(c, end);
             i < e; ++i)
            box.extend((*ctx.prims)[ctx.order[i]].bounds);
        partial[c] = box;
    });
    Aabb box;
    for (const Aabb &p : partial)
        box.extend(p);
    return box;
}

Aabb
centroidBounds(const BuildContext &ctx, std::uint32_t begin,
               std::uint32_t end)
{
    if (end - begin < kParallelBuildThreshold) {
        Aabb box;
        for (std::uint32_t i = begin; i < end; ++i)
            box.extend((*ctx.prims)[ctx.order[i]].bounds.center());
        return box;
    }
    ThreadPool &pool = sharedThreadPool();
    ChunkPlan plan(begin, end, pool.threadCount());
    std::vector<Aabb> partial(plan.count);
    pool.parallelFor(plan.count, [&](std::size_t c) {
        Aabb box;
        for (std::uint32_t i = plan.chunkBegin(c),
                           e = plan.chunkEnd(c, end);
             i < e; ++i)
            box.extend((*ctx.prims)[ctx.order[i]].bounds.center());
        partial[c] = box;
    });
    Aabb box;
    for (const Aabb &p : partial)
        box.extend(p);
    return box;
}

/** Recursively build [begin, end); returns the node index. */
std::int32_t
buildRange(BuildContext &ctx, std::uint32_t begin, std::uint32_t end)
{
    auto node_index = static_cast<std::int32_t>(ctx.nodes.size());
    ctx.nodes.emplace_back();
    Aabb bounds = rangeBounds(ctx, begin, end);
    ctx.nodes[node_index].bounds = bounds;

    std::uint32_t count = end - begin;
    if (count == 1) {
        ctx.nodes[node_index].primIndex =
            static_cast<std::int32_t>(ctx.order[begin]);
        return node_index;
    }

    // Centroid bounds drive the binning axis.
    Aabb centroid_bounds = centroidBounds(ctx, begin, end);
    int axis = maxDimension(centroid_bounds.extent());
    float axis_min = centroid_bounds.lo[axis];
    float axis_extent = centroid_bounds.extent()[axis];

    std::uint32_t mid = begin + count / 2;
    if (axis_extent > 1e-12f && count > 2) {
        // Binned SAH sweep.
        struct Bin
        {
            Aabb bounds;
            std::uint32_t count = 0;
        };
        std::array<Bin, kNumBins> bins;
        auto bin_of = [&](std::uint32_t prim) {
            float c = (*ctx.prims)[prim].bounds.center()[axis];
            auto b = static_cast<int>((c - axis_min) / axis_extent
                                      * kNumBins);
            return std::clamp(b, 0, static_cast<int>(kNumBins) - 1);
        };
        if (count < kParallelBuildThreshold) {
            for (std::uint32_t i = begin; i < end; ++i) {
                Bin &bin = bins[bin_of(ctx.order[i])];
                bin.bounds.extend((*ctx.prims)[ctx.order[i]].bounds);
                ++bin.count;
            }
        } else {
            // Per-chunk private bins, folded in fixed chunk order.
            ThreadPool &pool = sharedThreadPool();
            ChunkPlan plan(begin, end, pool.threadCount());
            std::vector<std::array<Bin, kNumBins>> partial(plan.count);
            pool.parallelFor(plan.count, [&](std::size_t c) {
                std::array<Bin, kNumBins> &local = partial[c];
                for (std::uint32_t i = plan.chunkBegin(c),
                                   e = plan.chunkEnd(c, end);
                     i < e; ++i) {
                    Bin &bin = local[bin_of(ctx.order[i])];
                    bin.bounds.extend((*ctx.prims)[ctx.order[i]].bounds);
                    ++bin.count;
                }
            });
            for (const auto &local : partial)
                for (unsigned b = 0; b < kNumBins; ++b) {
                    bins[b].bounds.extend(local[b].bounds);
                    bins[b].count += local[b].count;
                }
        }

        // Prefix/suffix areas for the SAH cost of each split position.
        std::array<float, kNumBins> right_area;
        std::array<std::uint32_t, kNumBins> right_count;
        Aabb acc;
        std::uint32_t cnt = 0;
        for (int i = kNumBins - 1; i >= 1; --i) {
            acc.extend(bins[i].bounds);
            cnt += bins[i].count;
            right_area[i] = acc.surfaceArea();
            right_count[i] = cnt;
        }

        float best_cost = std::numeric_limits<float>::max();
        int best_split = -1;
        acc = Aabb{};
        cnt = 0;
        for (unsigned i = 0; i + 1 < kNumBins; ++i) {
            acc.extend(bins[i].bounds);
            cnt += bins[i].count;
            if (cnt == 0 || right_count[i + 1] == 0)
                continue;
            float cost = acc.surfaceArea() * cnt
                         + right_area[i + 1] * right_count[i + 1];
            if (cost < best_cost) {
                best_cost = cost;
                best_split = static_cast<int>(i);
            }
        }

        if (best_split >= 0) {
            auto it = std::partition(
                ctx.order.begin() + begin, ctx.order.begin() + end,
                [&](std::uint32_t p) {
                    return bin_of(p) <= best_split;
                });
            mid = static_cast<std::uint32_t>(it - ctx.order.begin());
            if (mid == begin || mid == end)
                mid = begin + count / 2; // degenerate: fall back to median
        }
    }
    if (mid == begin + count / 2) {
        // Median split requires ordering along the axis.
        std::nth_element(ctx.order.begin() + begin, ctx.order.begin() + mid,
                         ctx.order.begin() + end,
                         [&](std::uint32_t a, std::uint32_t b) {
                             return (*ctx.prims)[a].bounds.center()[axis]
                                    < (*ctx.prims)[b].bounds.center()[axis];
                         });
    }

    std::int32_t left = buildRange(ctx, begin, mid);
    std::int32_t right = buildRange(ctx, mid, end);
    ctx.nodes[node_index].left = left;
    ctx.nodes[node_index].right = right;
    return node_index;
}

} // namespace

BinaryBvh
buildBinaryBvh(const std::vector<PrimRef> &prims)
{
    BinaryBvh bvh;
    if (prims.empty())
        return bvh;
    BuildContext ctx;
    ctx.prims = &prims;
    ctx.order.resize(prims.size());
    for (std::uint32_t i = 0; i < prims.size(); ++i)
        ctx.order[i] = i;
    ctx.nodes.reserve(prims.size() * 2);
    buildRange(ctx, 0, static_cast<std::uint32_t>(prims.size()));
    bvh.nodes = std::move(ctx.nodes);
    return bvh;
}

std::size_t
WideBvh::leafCount() const
{
    std::size_t n = 0;
    for (const auto &node : nodes)
        for (const auto &child : node.children)
            if (child.isLeaf())
                ++n;
    return n;
}

namespace {

/** Recursively convert binary node `bin_idx`; returns wide node index. */
std::int32_t
collapseNode(const BinaryBvh &binary, std::int32_t bin_idx, WideBvh &wide,
             unsigned depth)
{
    wide.maxDepth = std::max(wide.maxDepth, depth);
    auto wide_idx = static_cast<std::int32_t>(wide.nodes.size());
    wide.nodes.emplace_back();
    wide.nodes[wide_idx].bounds = binary.nodes[bin_idx].bounds;

    // Gather up to kBvhWidth binary subtrees by splitting the widest
    // internal candidate until the budget is reached.
    std::vector<std::int32_t> slots{bin_idx};
    // A single-leaf root still becomes one wide node with one leaf child.
    while (slots.size() < kBvhWidth) {
        int expand = -1;
        float best_area = -1.f;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            const BinaryBvhNode &n = binary.nodes[slots[i]];
            if (n.isLeaf())
                continue;
            float area = n.bounds.surfaceArea();
            if (area > best_area) {
                best_area = area;
                expand = static_cast<int>(i);
            }
        }
        if (expand < 0)
            break;
        std::int32_t victim = slots[expand];
        slots[expand] = binary.nodes[victim].left;
        slots.push_back(binary.nodes[victim].right);
    }

    for (std::int32_t s : slots) {
        const BinaryBvhNode &n = binary.nodes[s];
        WideBvhChild child;
        child.bounds = n.bounds;
        if (n.isLeaf()) {
            child.prim = n.primIndex;
        } else {
            child.node = collapseNode(binary, s, wide, depth + 1);
        }
        wide.nodes[wide_idx].children.push_back(child);
    }
    return wide_idx;
}

} // namespace

WideBvh
collapseToWide(const BinaryBvh &binary)
{
    WideBvh wide;
    if (binary.nodes.empty()) {
        wide.nodes.emplace_back();
        wide.maxDepth = 1;
        return wide;
    }
    collapseNode(binary, 0, wide, 1);
    return wide;
}

WideBvh
buildWideBvh(const std::vector<PrimRef> &prims)
{
    return collapseToWide(buildBinaryBvh(prims));
}

} // namespace vksim
