#include "accel/serialize.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/log.h"

namespace vksim {

void
InternalNode::setFrame(const Aabb &bounds)
{
    originX = bounds.lo.x;
    originY = bounds.lo.y;
    originZ = bounds.lo.z;
    Vec3 extent = bounds.extent();
    auto exp_for = [](float e) {
        // Smallest power of two s such that 255 * s covers the extent.
        if (e <= 0.f)
            return static_cast<std::int8_t>(-126);
        int exp = 0;
        std::frexp(e / 255.0f, &exp);
        return static_cast<std::int8_t>(std::clamp(exp, -126, 126));
    };
    expX = exp_for(extent.x);
    expY = exp_for(extent.y);
    expZ = exp_for(extent.z);
}

void
InternalNode::setChildBounds(unsigned i, const Aabb &box)
{
    float scale[3] = {std::ldexp(1.0f, expX), std::ldexp(1.0f, expY),
                      std::ldexp(1.0f, expZ)};
    float origin[3] = {originX, originY, originZ};
    for (int axis = 0; axis < 3; ++axis) {
        float lo = (box.lo[axis] - origin[axis]) / scale[axis];
        float hi = (box.hi[axis] - origin[axis]) / scale[axis];
        qlo[i][axis] = static_cast<std::uint8_t>(
            std::clamp(static_cast<int>(std::floor(lo)), 0, 255));
        qhi[i][axis] = static_cast<std::uint8_t>(
            std::clamp(static_cast<int>(std::ceil(hi)), 0, 255));
    }
}

namespace {

/** Fill the affine rows of a Mat4 into a 12-float array (row-major). */
void
packMatrix(const Mat4 &m, float out[12])
{
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 4; ++c)
            out[4 * r + c] = m.m[r][c];
}

/**
 * Serializes one wide BVH. Leaf encoding is delegated so the same walker
 * lays out BLASes (triangle/procedural leaves) and the TLAS (instance
 * leaves).
 */
class WideBvhWriter
{
  public:
    WideBvhWriter(const WideBvh &bvh, GlobalMemory &gmem) :
        bvh_(bvh), gmem_(gmem)
    {
    }

    /** Block count of the leaf for primitive `prim`. */
    virtual unsigned leafBlocks(std::int32_t prim) const = 0;

    /** NodeType of the leaf for primitive `prim`. */
    virtual NodeType leafType(std::int32_t prim) const = 0;

    /** Write the leaf record for `prim` at `addr`. */
    virtual void writeLeaf(std::int32_t prim, Addr addr) = 0;

    /** Lay out and write all nodes; returns the root address. */
    Addr
    write()
    {
        // Pass 1: assign addresses breadth-first so each node's children
        // occupy consecutive blocks.
        nodeAddr_.assign(bvh_.nodes.size(), 0);
        Addr root = alloc(1);
        nodeAddr_[0] = root;
        std::deque<std::int32_t> queue{0};
        // childBase_[n] = address of node n's first child run.
        childBase_.assign(bvh_.nodes.size(), 0);
        while (!queue.empty()) {
            std::int32_t n = queue.front();
            queue.pop_front();
            const WideBvhNode &node = bvh_.nodes[n];
            unsigned blocks = 0;
            for (const WideBvhChild &c : node.children)
                blocks += c.isLeaf() ? leafBlocks(c.prim) : 1;
            Addr base = alloc(blocks);
            childBase_[n] = base;
            Addr cursor = base;
            for (const WideBvhChild &c : node.children) {
                if (c.isLeaf()) {
                    cursor += kNodeBlockSize * leafBlocks(c.prim);
                } else {
                    nodeAddr_[c.node] = cursor;
                    cursor += kNodeBlockSize;
                    queue.push_back(c.node);
                }
            }
        }

        // Pass 2: write node contents.
        for (std::size_t n = 0; n < bvh_.nodes.size(); ++n) {
            const WideBvhNode &node = bvh_.nodes[n];
            InternalNode inode{};
            inode.setFrame(node.bounds);
            inode.childCount =
                static_cast<std::uint8_t>(node.children.size());
            inode.firstChild = childBase_[n];
            Addr cursor = childBase_[n];
            for (std::size_t i = 0; i < node.children.size(); ++i) {
                const WideBvhChild &c = node.children[i];
                inode.setChildBounds(static_cast<unsigned>(i), c.bounds);
                NodeType t =
                    c.isLeaf() ? leafType(c.prim) : NodeType::Internal;
                inode.setChildType(static_cast<unsigned>(i), t);
                if (c.isLeaf()) {
                    writeLeaf(c.prim, cursor);
                    cursor += kNodeBlockSize * leafBlocks(c.prim);
                } else {
                    cursor += kNodeBlockSize;
                }
            }
            gmem_.store(nodeAddr_[n], inode);
        }
        return root;
    }

    Addr bytesWritten() const { return bytes_; }

    virtual ~WideBvhWriter() = default;

  protected:
    Addr
    alloc(unsigned blocks)
    {
        Addr a = gmem_.allocate(blocks * kNodeBlockSize, kNodeBlockSize);
        bytes_ += blocks * kNodeBlockSize;
        return a;
    }

    const WideBvh &bvh_;
    GlobalMemory &gmem_;
    std::vector<Addr> nodeAddr_;
    std::vector<Addr> childBase_;
    Addr bytes_ = 0;
};

/** BLAS writer: triangle or procedural leaves. */
class BlasWriter : public WideBvhWriter
{
  public:
    BlasWriter(const WideBvh &bvh, const Geometry &geom, GlobalMemory &gmem)
        : WideBvhWriter(bvh, gmem), geom_(geom)
    {
    }

    unsigned leafBlocks(std::int32_t) const override { return 1; }

    NodeType
    leafType(std::int32_t) const override
    {
        return geom_.kind == GeometryKind::Triangles
                   ? NodeType::TriangleLeaf
                   : NodeType::ProceduralLeaf;
    }

    void
    writeLeaf(std::int32_t prim, Addr addr) override
    {
        if (geom_.kind == GeometryKind::Triangles) {
            TriangleLeafNode leaf{};
            leaf.leafDescriptor =
                static_cast<std::uint32_t>(NodeType::TriangleLeaf);
            leaf.primitiveIndex = static_cast<std::uint32_t>(prim);
            Vec3 v0, v1, v2;
            geom_.mesh.triangle(static_cast<std::size_t>(prim), &v0, &v1,
                                &v2);
            leaf.v0[0] = v0.x; leaf.v0[1] = v0.y; leaf.v0[2] = v0.z;
            leaf.v1[0] = v1.x; leaf.v1[1] = v1.y; leaf.v1[2] = v1.z;
            leaf.v2[0] = v2.x; leaf.v2[1] = v2.y; leaf.v2[2] = v2.z;
            leaf.opaque = geom_.opaque ? 1 : 0;
            gmem_.store(addr, leaf);
        } else {
            ProceduralLeafNode leaf{};
            leaf.leafDescriptor =
                static_cast<std::uint32_t>(NodeType::ProceduralLeaf);
            leaf.primitiveIndex = static_cast<std::uint32_t>(prim);
            gmem_.store(addr, leaf);
        }
    }

  private:
    const Geometry &geom_;
};

/** TLAS writer: 128-byte instance leaves. */
class TlasWriter : public WideBvhWriter
{
  public:
    TlasWriter(const WideBvh &bvh, const Scene &scene,
               const std::vector<Addr> &blas_roots, GlobalMemory &gmem)
        : WideBvhWriter(bvh, gmem), scene_(scene), blasRoots_(blas_roots)
    {
    }

    unsigned leafBlocks(std::int32_t) const override { return 2; }

    NodeType
    leafType(std::int32_t) const override
    {
        return NodeType::TopLeaf;
    }

    void
    writeLeaf(std::int32_t prim, Addr addr) override
    {
        const Instance &inst =
            scene_.instances[static_cast<std::size_t>(prim)];
        TopLeafNode leaf{};
        leaf.leafDescriptor = static_cast<std::uint32_t>(NodeType::TopLeaf);
        leaf.instanceIndex = static_cast<std::uint32_t>(prim);
        leaf.blasRoot = blasRoots_[inst.geometryIndex];
        packMatrix(affineInverse(inst.objectToWorld), leaf.worldToObject);
        packMatrix(inst.objectToWorld, leaf.objectToWorld);
        leaf.instanceCustomIndex = inst.instanceCustomIndex;
        leaf.sbtOffset = inst.sbtOffset;
        leaf.geometryKind = static_cast<std::uint32_t>(
            scene_.geometries[inst.geometryIndex].kind);
        gmem_.store(addr, leaf);
    }

  private:
    const Scene &scene_;
    const std::vector<Addr> &blasRoots_;
};

/** World-space bounds of an instanced geometry (transform 8 corners). */
Aabb
instanceWorldBounds(const Geometry &geom, const Mat4 &xf)
{
    Aabb obj;
    for (std::size_t i = 0; i < geom.primitiveCount(); ++i)
        obj.extend(geom.primitiveBounds(i));
    Aabb world;
    for (int corner = 0; corner < 8; ++corner) {
        Vec3 p{corner & 1 ? obj.hi.x : obj.lo.x,
               corner & 2 ? obj.hi.y : obj.lo.y,
               corner & 4 ? obj.hi.z : obj.lo.z};
        world.extend(xf.transformPoint(p));
    }
    return world;
}

} // namespace

AccelStruct
buildAccelStruct(const Scene &scene, GlobalMemory &gmem)
{
    vksim_assert(!scene.instances.empty());
    AccelStruct accel;

    // Bottom level: one BVH per geometry.
    accel.blasRoots.resize(scene.geometries.size(), 0);
    for (std::size_t g = 0; g < scene.geometries.size(); ++g) {
        const Geometry &geom = scene.geometries[g];
        if (geom.primitiveCount() == 0)
            continue;
        std::vector<PrimRef> refs(geom.primitiveCount());
        for (std::size_t i = 0; i < refs.size(); ++i) {
            refs[i].bounds = geom.primitiveBounds(i);
            refs[i].index = static_cast<std::uint32_t>(i);
        }
        WideBvh bvh = buildWideBvh(refs);
        BlasWriter writer(bvh, geom, gmem);
        accel.blasRoots[g] = writer.write();
        accel.stats.blasInternalNodes += bvh.nodes.size();
        accel.stats.blasLeaves += bvh.leafCount();
        accel.stats.maxBlasDepth =
            std::max(accel.stats.maxBlasDepth, bvh.maxDepth);
        accel.stats.totalBytes += writer.bytesWritten();
    }

    // Top level over instance world bounds.
    std::vector<PrimRef> inst_refs(scene.instances.size());
    for (std::size_t i = 0; i < scene.instances.size(); ++i) {
        const Instance &inst = scene.instances[i];
        inst_refs[i].bounds = instanceWorldBounds(
            scene.geometries[inst.geometryIndex], inst.objectToWorld);
        inst_refs[i].index = static_cast<std::uint32_t>(i);
    }
    WideBvh tlas = buildWideBvh(inst_refs);
    TlasWriter writer(tlas, scene, accel.blasRoots, gmem);
    accel.tlasRoot = writer.write();
    accel.tlasRootType = NodeType::Internal;
    accel.stats.tlasInternalNodes = tlas.nodes.size();
    accel.stats.tlasLeaves = tlas.leafCount();
    accel.stats.tlasDepth = tlas.maxDepth;
    accel.stats.totalBytes += writer.bytesWritten();
    return accel;
}

AccelImage
captureAccelImage(const GlobalMemory &gmem, Addr base_brk,
                  std::size_t regions_before, const AccelStruct &accel)
{
    AccelImage image;
    image.baseBrk = base_brk;
    image.endBrk = gmem.brk();
    vksim_assert(image.endBrk >= image.baseBrk);
    image.bytes.resize(static_cast<std::size_t>(image.endBrk - image.baseBrk));
    gmem.read(image.baseBrk, image.bytes.data(), image.bytes.size());
    image.accel = accel;
    const std::vector<GlobalMemory::Region> &all = gmem.regions();
    vksim_assert(regions_before <= all.size());
    image.regions.assign(all.begin()
                             + static_cast<std::ptrdiff_t>(regions_before),
                         all.end());
    return image;
}

void
installAccelImage(GlobalMemory &gmem, const AccelImage &image)
{
    if (gmem.brk() != image.baseBrk)
        vksim_fatal("installAccelImage: allocator cursor "
                    + std::to_string(gmem.brk()) + " does not match the "
                    "captured base " + std::to_string(image.baseBrk)
                    + "; accel images only install into a fresh device");
    if (!image.bytes.empty())
        gmem.write(image.baseBrk, image.bytes.data(), image.bytes.size());
    gmem.setBrk(image.endBrk);
    for (const GlobalMemory::Region &r : image.regions)
        gmem.appendRegion(r.base, r.size, r.label);
}

} // namespace vksim
