/**
 * @file
 * On-device acceleration structure node layouts (paper Fig. 7).
 *
 * - Internal nodes are 64 bytes and store the pointer of the *first* child
 *   only (children are laid out consecutively) plus one AABB per child.
 *   Exact float AABBs for six children do not fit in 64 bytes, so — like
 *   the Mesa/Intel format the paper adopts — child boxes are quantized to
 *   8 bits per plane against a per-node origin and power-of-two scale.
 * - Top-level leaf nodes are 128 bytes: BLAS root pointer, both transform
 *   matrices, and the user-defined instance indices (Fig. 7b).
 * - Triangle leaves are 64 bytes: leaf descriptor, primitive index and the
 *   three vertices (Fig. 7c).
 * - Procedural leaves hold a leaf descriptor and a primitive index.
 *
 * All blocks are 64-byte aligned; a top-level leaf occupies two blocks.
 */

#ifndef VKSIM_ACCEL_LAYOUT_H
#define VKSIM_ACCEL_LAYOUT_H

#include <cmath>
#include <cstdint>

#include "geom/aabb.h"
#include "util/types.h"

namespace vksim {

/** Node type tags stored in leaf descriptors and child-type fields. */
enum class NodeType : std::uint32_t
{
    Invalid = 0,
    Internal = 1,   ///< 64 B internal node (TLAS or BLAS)
    TopLeaf = 2,    ///< 128 B TLAS leaf (instance)
    TriangleLeaf = 3,
    ProceduralLeaf = 4
};

/** Size in bytes of the basic node block. */
inline constexpr Addr kNodeBlockSize = 64;

/** Blocks occupied by each node type. */
inline unsigned
nodeBlocks(NodeType t)
{
    return t == NodeType::TopLeaf ? 2 : 1;
}

/**
 * 64-byte internal node with up to six quantized child boxes.
 * Children are stored consecutively starting at firstChild; the packed
 * childTypes field gives each child's NodeType (4 bits per child) which
 * also determines its block count for address arithmetic.
 */
struct InternalNode
{
    float originX, originY, originZ; ///< quantization frame origin
    std::int8_t expX, expY, expZ;    ///< per-axis power-of-two exponents
    std::uint8_t childCount;
    std::uint64_t firstChild;        ///< device address of child 0
    std::uint32_t childTypes;        ///< 4 bits per child, low bits = child 0
    std::uint8_t qlo[6][3];          ///< quantized child box minima
    std::uint8_t qhi[6][3];          ///< quantized child box maxima

    /** NodeType of child `i`. */
    NodeType
    childType(unsigned i) const
    {
        return static_cast<NodeType>((childTypes >> (4 * i)) & 0xF);
    }

    void
    setChildType(unsigned i, NodeType t)
    {
        childTypes &= ~(0xFu << (4 * i));
        childTypes |= static_cast<std::uint32_t>(t) << (4 * i);
    }

    /** Device address of child `i` (children are consecutive blocks). */
    Addr
    childAddress(unsigned i) const
    {
        Addr addr = firstChild;
        for (unsigned c = 0; c < i; ++c)
            addr += kNodeBlockSize * nodeBlocks(childType(c));
        return addr;
    }

    /** Dequantized (conservative) box of child `i`. */
    Aabb
    childBounds(unsigned i) const
    {
        float sx = std::ldexp(1.0f, expX);
        float sy = std::ldexp(1.0f, expY);
        float sz = std::ldexp(1.0f, expZ);
        Aabb box;
        box.lo = {originX + qlo[i][0] * sx, originY + qlo[i][1] * sy,
                  originZ + qlo[i][2] * sz};
        box.hi = {originX + qhi[i][0] * sx, originY + qhi[i][1] * sy,
                  originZ + qhi[i][2] * sz};
        return box;
    }

    /** Set the quantization frame from the node's own bounds. */
    void setFrame(const Aabb &bounds);

    /** Quantize `box` (conservatively) into child slot `i`. */
    void setChildBounds(unsigned i, const Aabb &box);
};

/** 128-byte TLAS leaf: one instance (paper Fig. 7b). */
struct TopLeafNode
{
    std::uint32_t leafDescriptor; ///< NodeType::TopLeaf
    std::uint32_t instanceIndex;  ///< index of the instance in the TLAS
    std::uint64_t blasRoot;       ///< device address of the BLAS root node
    float worldToObject[12];      ///< rows 0..2 of the 4x4 (affine)
    float objectToWorld[12];
    std::int32_t instanceCustomIndex;
    std::int32_t sbtOffset;       ///< selects the hit group
    std::uint32_t geometryKind;   ///< GeometryKind of the BLAS
    std::uint32_t pad0;
};

/** 64-byte triangle leaf (paper Fig. 7c). */
struct TriangleLeafNode
{
    std::uint32_t leafDescriptor; ///< NodeType::TriangleLeaf
    std::uint32_t primitiveIndex;
    float v0[3];
    float v1[3];
    float v2[3];
    std::uint32_t opaque; ///< 1 = skip any-hit shading
    std::uint32_t pad[4];
};

/** Procedural leaf: descriptor + primitive index (paper Sec. III-B1). */
struct ProceduralLeafNode
{
    std::uint32_t leafDescriptor; ///< NodeType::ProceduralLeaf
    std::uint32_t primitiveIndex;
    std::uint32_t pad[14];
};

static_assert(sizeof(InternalNode) == 64, "internal node must be 64 B");
static_assert(sizeof(TopLeafNode) == 128, "top leaf must be 128 B");
static_assert(sizeof(TriangleLeafNode) == 64, "triangle leaf must be 64 B");
static_assert(sizeof(ProceduralLeafNode) == 64,
              "procedural leaf blocks are 64 B");

/** Extract the node type from the first word of any node block. */
inline NodeType
leafDescriptorType(std::uint32_t descriptor)
{
    return static_cast<NodeType>(descriptor & 0xFu);
}

} // namespace vksim

#endif // VKSIM_ACCEL_LAYOUT_H
