/**
 * @file
 * Stepwise acceleration-structure traversal (paper Algorithm 2).
 *
 * One RayTraversal instance is the per-thread traversal state machine:
 * it exposes the address of the next node to fetch and consumes fetched
 * nodes one at a time, performing the corresponding BVH operation
 * (box tests, triangle tests, coordinate transform, procedural record).
 *
 * The RT unit timing model drives it fetch-by-fetch so memory latency
 * interleaves with BVH operations exactly as in the paper's RT unit;
 * functional-only clients call run() to completion.
 *
 * The traversal stack is a short stack of eight entries that spills into
 * (simulated) per-thread memory as described by Aila et al., with spill
 * traffic reported through a sink so the timing model can account for it.
 */

#ifndef VKSIM_ACCEL_TRAVERSAL_H
#define VKSIM_ACCEL_TRAVERSAL_H

#include <array>
#include <cstdint>
#include <vector>

#include "accel/layout.h"
#include "geom/mat4.h"
#include "geom/ray.h"
#include "mem/gmem.h"
#include "util/serial.h"

namespace vksim {

/** BVH operation kinds, matching the RT unit's operation units. */
enum class BvhOp : std::uint8_t
{
    None = 0,
    BoxTest,          ///< ray-box tests against an internal node's children
    TriangleTest,     ///< ray-triangle test of a triangle leaf
    Transform,        ///< world-to-object transform at a TLAS leaf
    ProceduralRecord  ///< procedural leaf recorded to intersection buffer
};

/** Ray flags analogous to Vulkan's gl_RayFlags*EXT. */
enum RayFlags : std::uint32_t
{
    kRayFlagNone = 0,
    kRayFlagTerminateOnFirstHit = 1u << 0,
    kRayFlagSkipProcedural = 1u << 1,
    kRayFlagOpaque = 1u << 2, ///< force all geometry opaque (skip any-hit)
    /**
     * Do not invoke the closest-hit shader (occlusion queries). Consumed
     * by the traceRayEXT lowering, not by traversal itself.
     */
    kRayFlagSkipClosestHit = 1u << 3
};

/**
 * One deferred shader invocation collected during traversal: either a
 * procedural-leaf intersection (needs the intersection shader) or a
 * non-opaque triangle hit (needs the any-hit shader). These are executed
 * *after* traversal under the paper's delayed intersection and any-hit
 * execution scheme.
 */
struct DeferredHit
{
    std::int32_t instanceIndex = -1;
    std::int32_t primitiveIndex = -1;
    std::int32_t instanceCustomIndex = 0;
    std::int32_t sbtOffset = 0;
    bool anyHit = false; ///< true: triangle any-hit; false: intersection
    // Candidate triangle hit data (any-hit case only).
    float t = 0.f;
    float u = 0.f;
    float v = 0.f;
};

/** Sink for traversal-generated memory traffic other than node fetches. */
class TraversalMemSink
{
  public:
    virtual ~TraversalMemSink() = default;
    /** Short-stack spill/refill traffic (bytes). */
    virtual void stackSpill(unsigned bytes, bool is_write) {}
    /** Append to the per-thread intersection buffer (bytes). */
    virtual void intersectionWrite(unsigned bytes) {}
};

/** Outcome of consuming one fetched node. */
struct TraversalStep
{
    BvhOp op = BvhOp::None;
    unsigned boxTests = 0;      ///< child box tests performed
    unsigned trianglesTested = 0;
    bool committedHit = false;  ///< triangle hit committed this step
    bool deferredRecorded = false;
    bool anyHitPending = false; ///< suspended on an immediate any-hit
    bool done = false;          ///< traversal complete after this step
};

/** Per-ray traversal state machine. */
class RayTraversal
{
  public:
    static constexpr unsigned kShortStackEntries = 8;

    /**
     * @param gmem Simulated memory holding the serialized BVH.
     * @param tlas_root Device address of the TLAS root node.
     * @param ray World-space ray.
     * @param flags RayFlags combination.
     */
    RayTraversal(const GlobalMemory &gmem, Addr tlas_root, const Ray &ray,
                 std::uint32_t flags = kRayFlagNone,
                 TraversalMemSink *sink = nullptr,
                 unsigned short_stack_entries = kShortStackEntries);

    /**
     * Restore constructor (checkpointing): binds `gmem` and reads every
     * other field from a stream previously produced by saveState(). The
     * memory-traffic sink is *not* restored — the owning RT unit
     * re-links it via setSink() when it restores its own entries.
     */
    RayTraversal(const GlobalMemory &gmem, serial::Reader &r);

    /** Serialize the full traversal state (checkpointing). */
    void saveState(serial::Writer &w) const;

    /** True when no work remains. */
    bool done() const { return done_; }

    /** Attach/replace the memory-traffic sink (timed RT unit). */
    void setSink(TraversalMemSink *sink) { sink_ = sink; }

    /**
     * Immediate any-hit mode: a non-opaque triangle whose hit group has
     * an any-hit shader (bit `sbtOffset` set in `group_mask`) suspends
     * the traversal instead of being appended to the deferred table; the
     * owner runs the shader and resumes via resolveAnyHit(). Non-opaque
     * triangles whose group carries no any-hit shader commit inline
     * (Vulkan's default accept).
     * @{
     */
    void
    setImmediateAnyHit(bool enabled, std::uint64_t group_mask)
    {
        immediateAnyHit_ = enabled;
        anyHitGroupMask_ = group_mask;
    }

    /** True while suspended on an unresolved any-hit candidate. */
    bool anyHitSuspended() const { return anyHitSuspended_; }

    /** The candidate the traversal is suspended on. */
    const DeferredHit &pendingAnyHit() const { return pendingAnyHit_; }

    /**
     * Resume a suspended traversal with the any-hit verdict: commit the
     * candidate (and honor TerminateOnFirstHit) or ignore it.
     */
    void resolveAnyHit(bool commit);
    /** @} */

    /** Node type of the fetch reported by nextFetch(). */
    NodeType
    pendingType() const
    {
        return havePending_ ? pending_.type : NodeType::Invalid;
    }

    /**
     * Address/size of the next node to fetch. Returns false when done.
     * Does not modify state; the same fetch is reported until step() is
     * called with the node data.
     */
    bool nextFetch(Addr *addr, unsigned *size);

    /** Consume the node previously reported by nextFetch(). */
    TraversalStep step();

    /** Run to completion (functional-only clients). */
    void run();

    /** Committed closest hit so far (valid once done). */
    const HitRecord &hit() const { return hit_; }
    HitRecord &hit() { return hit_; }

    /** Deferred intersection/any-hit work collected during traversal. */
    const std::vector<DeferredHit> &deferred() const { return deferred_; }

    /** Total nodes fetched (Table IV's nodes-per-ray metric). */
    std::uint64_t nodesVisited() const { return nodesVisited_; }

    /** Box/triangle/transform op counts (roofline operations). */
    std::uint64_t boxTests() const { return boxTests_; }
    std::uint64_t triangleTests() const { return triangleTests_; }
    std::uint64_t transforms() const { return transforms_; }

    /** Stack spill events (each moves one entry to/from memory). */
    std::uint64_t stackSpills() const { return stackSpills_; }

    /** The ray world-space tmax after committed hits (shrinks). */
    float currentTmax() const { return worldRay_.tmax; }

  private:
    struct StackEntry
    {
        Addr addr = 0;
        NodeType type = NodeType::Invalid;
        std::int32_t instance = -1; ///< -1 = TLAS level
    };

    void push(const StackEntry &e);
    bool pop(StackEntry *e);
    void enterInstance(const TopLeafNode &leaf);
    void processInternal(const InternalNode &node, TraversalStep *out);
    void processTriangle(const TriangleLeafNode &leaf, TraversalStep *out);
    void processProcedural(const ProceduralLeafNode &leaf,
                           TraversalStep *out);

    /** Ray in the coordinate system of the current level. */
    const Ray &
    activeRay() const
    {
        return currentInstance_ < 0 ? worldRay_ : objectRay_;
    }

    const GlobalMemory &gmem_;
    TraversalMemSink *sink_;
    std::uint32_t flags_;

    Ray worldRay_;
    Ray objectRay_;
    Vec3 worldInvDir_;
    Vec3 objectInvDir_;
    std::int32_t currentInstance_ = -1;
    std::int32_t currentCustomIndex_ = 0;
    std::int32_t currentSbtOffset_ = 0;

    // Short stack + memory-resident overflow (bottom of the full stack).
    std::vector<StackEntry> shortStack_;
    unsigned shortTop_ = 0; ///< entries valid in shortStack_
    std::vector<StackEntry> spilled_;

    StackEntry pending_; ///< node reported by nextFetch, consumed by step
    bool havePending_ = false;
    bool done_ = false;

    bool immediateAnyHit_ = false;
    std::uint64_t anyHitGroupMask_ = 0; ///< bit per sbtOffset with any-hit
    bool anyHitSuspended_ = false;
    DeferredHit pendingAnyHit_;

    HitRecord hit_;
    std::vector<DeferredHit> deferred_;

    std::uint64_t nodesVisited_ = 0;
    std::uint64_t boxTests_ = 0;
    std::uint64_t triangleTests_ = 0;
    std::uint64_t transforms_ = 0;
    std::uint64_t stackSpills_ = 0;
};

} // namespace vksim

#endif // VKSIM_ACCEL_TRAVERSAL_H
