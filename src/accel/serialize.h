/**
 * @file
 * Builds the two-level acceleration structure for a scene and serializes
 * it into simulated global memory using the node layouts of layout.h.
 *
 * This plays the role of Mesa's VK_KHR_acceleration_structure support in
 * the original system: the host builds the BVH, the device only traverses
 * the serialized bytes.
 */

#ifndef VKSIM_ACCEL_SERIALIZE_H
#define VKSIM_ACCEL_SERIALIZE_H

#include <vector>

#include "accel/build.h"
#include "accel/layout.h"
#include "mem/gmem.h"
#include "scene/scene.h"

namespace vksim {

/** Summary of a serialized acceleration structure. */
struct AccelStats
{
    std::size_t tlasInternalNodes = 0;
    std::size_t tlasLeaves = 0;
    std::size_t blasInternalNodes = 0;
    std::size_t blasLeaves = 0;
    unsigned tlasDepth = 0;     ///< wide-node depth of the TLAS
    unsigned maxBlasDepth = 0;  ///< deepest BLAS, in wide nodes
    Addr totalBytes = 0;

    /** Combined tree depth (TLAS + instance leaf + deepest BLAS). */
    unsigned
    treeDepth() const
    {
        return tlasDepth + 1 + maxBlasDepth;
    }

    std::size_t
    totalNodes() const
    {
        return tlasInternalNodes + tlasLeaves + blasInternalNodes
               + blasLeaves;
    }
};

/** Handle to a serialized two-level acceleration structure. */
struct AccelStruct
{
    Addr tlasRoot = 0;               ///< device address of the TLAS root
    NodeType tlasRootType = NodeType::Internal;
    std::vector<Addr> blasRoots;     ///< one per geometry
    AccelStats stats;
};

/**
 * Build BLASes for every geometry and a TLAS over all instances of
 * `scene`, serializing everything into `gmem`.
 */
AccelStruct buildAccelStruct(const Scene &scene, GlobalMemory &gmem);

/**
 * Relocatable snapshot of a serialized acceleration structure.
 *
 * Because every GlobalMemory bump-allocates deterministically from the
 * same initial brk, a BVH built as the *first* allocation of one device
 * occupies the same addresses on any other fresh device. The artifact
 * cache (src/service) exploits this: build once, capture the byte image,
 * and install it into each fresh GlobalMemory whose brk matches.
 */
struct AccelImage
{
    Addr baseBrk = 0; ///< allocator cursor when the build started
    Addr endBrk = 0;  ///< allocator cursor when the build finished
    std::vector<std::uint8_t> bytes; ///< gmem contents of [baseBrk, endBrk)
    AccelStruct accel;               ///< handle (addresses inside the image)
    std::vector<GlobalMemory::Region> regions; ///< labels added by the build
};

/**
 * Snapshot the accel bytes `gmem` holds in [base_brk, gmem.brk()).
 * `regions_before` is gmem.regions().size() at build start, so only the
 * build's own labels are captured.
 */
AccelImage captureAccelImage(const GlobalMemory &gmem, Addr base_brk,
                             std::size_t regions_before,
                             const AccelStruct &accel);

/**
 * Replay a captured build into a fresh memory: write the bytes, advance
 * the allocator past them, and re-record the region labels. Fatals if the
 * allocator cursor does not match the capture's base (the image is not
 * relocatable).
 */
void installAccelImage(GlobalMemory &gmem, const AccelImage &image);

} // namespace vksim

#endif // VKSIM_ACCEL_SERIALIZE_H
