/**
 * @file
 * Builds the two-level acceleration structure for a scene and serializes
 * it into simulated global memory using the node layouts of layout.h.
 *
 * This plays the role of Mesa's VK_KHR_acceleration_structure support in
 * the original system: the host builds the BVH, the device only traverses
 * the serialized bytes.
 */

#ifndef VKSIM_ACCEL_SERIALIZE_H
#define VKSIM_ACCEL_SERIALIZE_H

#include <vector>

#include "accel/build.h"
#include "accel/layout.h"
#include "mem/gmem.h"
#include "scene/scene.h"

namespace vksim {

/** Summary of a serialized acceleration structure. */
struct AccelStats
{
    std::size_t tlasInternalNodes = 0;
    std::size_t tlasLeaves = 0;
    std::size_t blasInternalNodes = 0;
    std::size_t blasLeaves = 0;
    unsigned tlasDepth = 0;     ///< wide-node depth of the TLAS
    unsigned maxBlasDepth = 0;  ///< deepest BLAS, in wide nodes
    Addr totalBytes = 0;

    /** Combined tree depth (TLAS + instance leaf + deepest BLAS). */
    unsigned
    treeDepth() const
    {
        return tlasDepth + 1 + maxBlasDepth;
    }

    std::size_t
    totalNodes() const
    {
        return tlasInternalNodes + tlasLeaves + blasInternalNodes
               + blasLeaves;
    }
};

/** Handle to a serialized two-level acceleration structure. */
struct AccelStruct
{
    Addr tlasRoot = 0;               ///< device address of the TLAS root
    NodeType tlasRootType = NodeType::Internal;
    std::vector<Addr> blasRoots;     ///< one per geometry
    AccelStats stats;
};

/**
 * Build BLASes for every geometry and a TLAS over all instances of
 * `scene`, serializing everything into `gmem`.
 */
AccelStruct buildAccelStruct(const Scene &scene, GlobalMemory &gmem);

} // namespace vksim

#endif // VKSIM_ACCEL_SERIALIZE_H
