#include "nir/validate.h"

#include <sstream>

namespace vksim::nir {

namespace {

/** Expected source-operand count for each op; -1 = variable. */
int
arityOf(Op op)
{
    switch (op) {
      case Op::ConstI:
      case Op::ConstF:
      case Op::LoadLaunchId:
      case Op::LoadLaunchSize:
      case Op::RtAllocMem:
      case Op::FrameAddr:
      case Op::DeferredEntryAddr:
      case Op::DescBase:
      case Op::CommitAnyHit:
      case Op::RayQueryEnd:
        return 0;
      case Op::Mov:
      case Op::FAbs:
      case Op::FNeg:
      case Op::FFloor:
      case Op::FSqrt:
      case Op::FRsqrt:
      case Op::FSin:
      case Op::FCos:
      case Op::I2F:
      case Op::U2F:
      case Op::F2I:
      case Op::F2U:
      case Op::LoadGlobal:
      case Op::ReportIntersection:
        return 1;
      case Op::Select:
        return 3;
      case Op::StoreGlobal:
        return 2;
      case Op::TraceRay:
      case Op::RayQuery:
        return 9;
      default:
        return 2; // binary ALU
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::ConstI: return "const_i";
      case Op::ConstF: return "const_f";
      case Op::Mov: return "mov";
      case Op::IAdd: return "iadd";
      case Op::ISub: return "isub";
      case Op::IMul: return "imul";
      case Op::IAnd: return "iand";
      case Op::IOr: return "ior";
      case Op::IXor: return "ixor";
      case Op::IShl: return "ishl";
      case Op::IShr: return "ishr";
      case Op::IEq: return "ieq";
      case Op::INe: return "ine";
      case Op::ILt: return "ilt";
      case Op::IGe: return "ige";
      case Op::FAdd: return "fadd";
      case Op::FSub: return "fsub";
      case Op::FMul: return "fmul";
      case Op::FDiv: return "fdiv";
      case Op::FMin: return "fmin";
      case Op::FMax: return "fmax";
      case Op::FAbs: return "fabs";
      case Op::FNeg: return "fneg";
      case Op::FFloor: return "ffloor";
      case Op::FLt: return "flt";
      case Op::FLe: return "fle";
      case Op::FGt: return "fgt";
      case Op::FGe: return "fge";
      case Op::FEq: return "feq";
      case Op::FNe: return "fne";
      case Op::FSqrt: return "fsqrt";
      case Op::FRsqrt: return "frsqrt";
      case Op::FSin: return "fsin";
      case Op::FCos: return "fcos";
      case Op::I2F: return "i2f";
      case Op::U2F: return "u2f";
      case Op::F2I: return "f2i";
      case Op::F2U: return "f2u";
      case Op::Select: return "select";
      case Op::LoadGlobal: return "load_global";
      case Op::StoreGlobal: return "store_global";
      case Op::LoadLaunchId: return "load_ray_launch_id";
      case Op::LoadLaunchSize: return "load_ray_launch_size";
      case Op::RtAllocMem: return "rt_alloc_mem";
      case Op::FrameAddr: return "frame_addr";
      case Op::DeferredEntryAddr: return "deferred_entry_addr";
      case Op::DescBase: return "desc_base";
      case Op::TraceRay: return "trace_ray";
      case Op::ReportIntersection: return "report_intersection";
      case Op::CommitAnyHit: return "commit_any_hit";
      case Op::RayQuery: return "ray_query";
      case Op::RayQueryEnd: return "ray_query_end";
    }
    return "?";
}

class Validator
{
  public:
    explicit Validator(const Shader &shader) : shader_(shader) {}

    ValidationResult
    run()
    {
        checkBlock(shader_.body, 0);
        return std::move(result_);
    }

  private:
    void
    error(const std::string &msg)
    {
        result_.errors.push_back(shader_.name + ": " + msg);
    }

    void
    checkInstr(const Instr &in)
    {
        int arity = arityOf(in.op);
        if (arity >= 0
            && in.srcs.size() != static_cast<std::size_t>(arity))
            error(std::string(opName(in.op)) + " expects "
                  + std::to_string(arity) + " operands, got "
                  + std::to_string(in.srcs.size()));
        for (Val s : in.srcs)
            if (s < 0 || s >= shader_.numValues)
                error(std::string(opName(in.op)) + " reads invalid value "
                      + std::to_string(s));
        if (in.dst >= shader_.numValues)
            error(std::string(opName(in.op)) + " writes invalid value "
                  + std::to_string(in.dst));

        if (in.op == Op::LoadGlobal || in.op == Op::StoreGlobal) {
            if (in.size != 1 && in.size != 2 && in.size != 4
                && in.size != 8)
                error("memory access size must be 1/2/4/8, got "
                      + std::to_string(in.size));
        }

        switch (in.op) {
          case Op::TraceRay:
            if (shader_.stage != vptx::ShaderStage::RayGen
                && shader_.stage != vptx::ShaderStage::ClosestHit
                && shader_.stage != vptx::ShaderStage::Miss)
                error("trace_ray is not legal in this shader stage");
            break;
          case Op::ReportIntersection:
            if (shader_.stage != vptx::ShaderStage::Intersection)
                error("report_intersection outside an intersection "
                      "shader");
            break;
          case Op::CommitAnyHit:
            if (shader_.stage != vptx::ShaderStage::AnyHit)
                error("commit_any_hit outside an any-hit shader");
            break;
          case Op::RayQuery:
          case Op::RayQueryEnd:
            if (shader_.stage != vptx::ShaderStage::Compute)
                error("ray_query is only legal in compute shaders");
            break;
          case Op::DeferredEntryAddr:
            if (shader_.stage != vptx::ShaderStage::Intersection
                && shader_.stage != vptx::ShaderStage::AnyHit)
                error("deferred_entry_addr outside a deferred stage");
            break;
          default:
            break;
        }
    }

    void
    checkBlock(const std::vector<Node> &block, unsigned loop_depth)
    {
        for (const Node &node : block) {
            switch (node.kind) {
              case Node::Kind::Instr:
                checkInstr(node.instr);
                break;
              case Node::Kind::If:
                if (node.cond < 0 || node.cond >= shader_.numValues)
                    error("if condition is not a valid value");
                checkBlock(node.thenBlock, loop_depth);
                checkBlock(node.elseBlock, loop_depth);
                break;
              case Node::Kind::Loop:
                checkBlock(node.body, loop_depth + 1);
                break;
              case Node::Kind::Break:
                if (loop_depth == 0)
                    error("break outside a loop");
                break;
              case Node::Kind::BreakIf:
                if (loop_depth == 0)
                    error("break_if outside a loop");
                if (node.cond < 0 || node.cond >= shader_.numValues)
                    error("break_if condition is not a valid value");
                break;
            }
        }
    }

    const Shader &shader_;
    ValidationResult result_;
};

void
printBlock(std::ostringstream &os, const std::vector<Node> &block,
           unsigned indent)
{
    std::string pad(indent * 2, ' ');
    for (const Node &node : block) {
        switch (node.kind) {
          case Node::Kind::Instr: {
            const Instr &in = node.instr;
            os << pad;
            if (in.dst >= 0)
                os << "%" << in.dst << " = ";
            os << opName(in.op);
            for (Val s : in.srcs)
                os << " %" << s;
            if (in.op == Op::ConstI || in.op == Op::ConstF
                || in.op == Op::LoadGlobal || in.op == Op::StoreGlobal
                || in.op == Op::DescBase || in.op == Op::LoadLaunchId)
                os << " #" << in.imm;
            os << "\n";
            break;
          }
          case Node::Kind::If:
            os << pad << "if %" << node.cond << " {\n";
            printBlock(os, node.thenBlock, indent + 1);
            if (!node.elseBlock.empty()) {
                os << pad << "} else {\n";
                printBlock(os, node.elseBlock, indent + 1);
            }
            os << pad << "}\n";
            break;
          case Node::Kind::Loop:
            os << pad << "loop {\n";
            printBlock(os, node.body, indent + 1);
            os << pad << "}\n";
            break;
          case Node::Kind::Break:
            os << pad << "break\n";
            break;
          case Node::Kind::BreakIf:
            os << pad << "break_if %" << node.cond << "\n";
            break;
        }
    }
}

} // namespace

std::string
ValidationResult::message() const
{
    std::ostringstream os;
    for (const std::string &e : errors)
        os << e << "\n";
    return os.str();
}

ValidationResult
validate(const Shader &shader)
{
    Validator v(shader);
    return v.run();
}

std::string
print(const Shader &shader)
{
    std::ostringstream os;
    os << vptx::shaderStageName(shader.stage) << " \"" << shader.name
       << "\" (" << shader.numValues << " values)\n";
    printBlock(os, shader.body, 1);
    return os.str();
}

} // namespace vksim::nir
