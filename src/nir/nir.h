/**
 * @file
 * NIR-like structured shader IR.
 *
 * Mesa compiles GLSL/SPIR-V shaders to NIR before handing them to a
 * backend; the paper's contribution begins at NIR (its NIR-to-PTX
 * translator). We therefore author the workload shaders directly in this
 * structured IR — scalar SSA-style values, structured if/loop control
 * flow, and the high-level ray tracing intrinsics NIR carries
 * (traceRayEXT, loadRayLaunchId, reportIntersection, ...). The xlate
 * module lowers it to VPTX using the paper's Algorithm 1 (delayed
 * intersection and any-hit execution) or Algorithm 3 (FCC).
 */

#ifndef VKSIM_NIR_NIR_H
#define VKSIM_NIR_NIR_H

#include <cstdint>
#include <string>
#include <vector>

#include "vptx/isa.h"

namespace vksim::nir {

/** SSA-ish value id (defined once, used many times). */
using Val = std::int32_t;
inline constexpr Val kNoVal = -1;

/** NIR operation set. */
enum class Op : std::uint8_t
{
    ConstI, ConstF,
    Mov,

    IAdd, ISub, IMul, IAnd, IOr, IXor, IShl, IShr,
    IEq, INe, ILt, IGe,

    FAdd, FSub, FMul, FDiv, FMin, FMax, FAbs, FNeg, FFloor,
    FLt, FLe, FGt, FGe, FEq, FNe,
    FSqrt, FRsqrt, FSin, FCos,

    I2F, U2F, F2I, F2U,
    Select,

    LoadGlobal,  ///< dst = mem[srcs[0] + imm] (size bytes)
    StoreGlobal, ///< mem[srcs[0] + imm] = srcs[1]

    // Ray tracing intrinsics (the NIR high-level RT instructions).
    LoadLaunchId,      ///< imm = component
    LoadLaunchSize,    ///< imm = component
    RtAllocMem,        ///< dst = per-thread scratch + imm
    FrameAddr,         ///< dst = current trace-ray frame base
    DeferredEntryAddr, ///< dst = address of the current deferred entry
    DescBase,          ///< dst = descriptor binding imm base address
    TraceRay,          ///< srcs: ox,oy,oz,tmin,dx,dy,dz,tmax,flags
    ReportIntersection,///< srcs: t (intersection shaders)
    CommitAnyHit,      ///< any-hit shaders: accept the candidate
    RayQuery,          ///< inline traversal (compute); srcs as TraceRay
    RayQueryEnd        ///< pop the ray-query frame (after reading hits)
};

/** One NIR instruction. */
struct Instr
{
    Op op = Op::Mov;
    Val dst = kNoVal;
    std::vector<Val> srcs;
    std::uint64_t imm = 0;
    std::uint8_t size = 4; ///< memory access size
};

/** Structured control-flow node. */
struct Node
{
    enum class Kind : std::uint8_t
    {
        Instr,
        If,
        Loop,
        Break,   ///< unconditional break out of the innermost loop
        BreakIf  ///< break when cond != 0
    };

    Kind kind = Kind::Instr;
    Instr instr;                 ///< Instr
    Val cond = kNoVal;           ///< If / BreakIf
    std::vector<Node> thenBlock; ///< If
    std::vector<Node> elseBlock; ///< If
    std::vector<Node> body;      ///< Loop
};

/** A complete shader in NIR form. */
struct Shader
{
    std::string name;
    vptx::ShaderStage stage = vptx::ShaderStage::RayGen;
    std::vector<Node> body;
    std::int32_t numValues = 0;
};

/**
 * Convenience builder for authoring shaders. Methods append to the
 * current block; begin/end pairs manage structured control flow.
 */
class Builder
{
  public:
    Builder(std::string name, vptx::ShaderStage stage);

    /** Finish and return the shader (builder becomes unusable). */
    Shader finish();

    // --- constants -----------------------------------------------------
    Val constI(std::uint64_t v);
    Val constF(float v);

    // --- integer ALU ---------------------------------------------------
    Val iadd(Val a, Val b);
    Val isub(Val a, Val b);
    Val imul(Val a, Val b);
    Val iand(Val a, Val b);
    Val ior(Val a, Val b);
    Val ixor(Val a, Val b);
    Val ishl(Val a, Val b);
    Val ishr(Val a, Val b);
    Val ieq(Val a, Val b);
    Val ine(Val a, Val b);
    Val ilt(Val a, Val b);
    Val ige(Val a, Val b);

    // --- float ALU -----------------------------------------------------
    Val fadd(Val a, Val b);
    Val fsub(Val a, Val b);
    Val fmul(Val a, Val b);
    Val fdiv(Val a, Val b);
    Val fmin(Val a, Val b);
    Val fmax(Val a, Val b);
    Val fabsv(Val a);
    Val fneg(Val a);
    Val ffloor(Val a);
    Val flt(Val a, Val b);
    Val fle(Val a, Val b);
    Val fgt(Val a, Val b);
    Val fge(Val a, Val b);
    Val feq(Val a, Val b);
    Val fne(Val a, Val b);
    Val fsqrt(Val a);
    Val frsqrt(Val a);
    Val fsin(Val a);
    Val fcos(Val a);

    // --- conversions / select -------------------------------------------
    Val i2f(Val a);
    Val u2f(Val a);
    Val f2i(Val a);
    Val f2u(Val a);
    Val select(Val c, Val a, Val b);
    Val mov(Val a);

    /**
     * Mutable-variable escape hatch for loop-carried values (NIR proper
     * uses phis; 1:1 register mapping makes re-assignment equivalent).
     * @{
     */
    Val var();
    void assign(Val variable, Val value);
    /** @} */

    // --- memory ----------------------------------------------------------
    Val loadGlobal(Val addr, std::uint64_t offset = 0, unsigned size = 4);
    void storeGlobal(Val addr, Val value, std::uint64_t offset = 0,
                     unsigned size = 4);

    // --- RT intrinsics ---------------------------------------------------
    Val launchId(unsigned component);
    Val launchSize(unsigned component);
    Val rtAllocMem(std::uint64_t slot_offset);
    Val frameAddr();
    Val deferredEntryAddr();
    Val descBase(unsigned binding);
    void traceRay(Val ox, Val oy, Val oz, Val tmin, Val dx, Val dy, Val dz,
                  Val tmax, Val flags);
    void reportIntersection(Val t);
    void commitAnyHit();

    /**
     * VK_KHR_ray_query inline traversal (compute shaders): pushes a
     * frame, traverses, and resolves intersection work with no SBT
     * indirection. The shader reads the committed hit from the frame
     * (frameAddr() + hit-word offsets) and must close the query with
     * rayQueryEnd() once done.
     * @{
     */
    void rayQuery(Val ox, Val oy, Val oz, Val tmin, Val dx, Val dy, Val dz,
                  Val tmax, Val flags);
    void rayQueryEnd();
    /** @} */

    // --- control flow ------------------------------------------------------
    void beginIf(Val cond);
    void beginElse();
    void endIf();
    void beginLoop();
    void breakLoop();
    void breakIf(Val cond);
    void endLoop();

    std::int32_t numValues() const { return nextVal_; }

  private:
    Val emit(Op op, std::initializer_list<Val> srcs, std::uint64_t imm = 0,
             bool has_dst = true, unsigned size = 4);
    std::vector<Node> *currentBlock();

    Shader shader_;
    Val nextVal_ = 0;

    struct Frame
    {
        Node *node;     ///< the If/Loop node under construction
        bool inElse = false;
    };
    std::vector<Frame> frames_;
    bool finished_ = false;
};

/** Count instructions (for tests and reporting). */
std::size_t countInstrs(const Shader &shader);

} // namespace vksim::nir

#endif // VKSIM_NIR_NIR_H
