#include "nir/nir.h"

#include <cstring>

#include "util/log.h"

namespace vksim::nir {

Builder::Builder(std::string name, vptx::ShaderStage stage)
{
    shader_.name = std::move(name);
    shader_.stage = stage;
}

std::vector<Node> *
Builder::currentBlock()
{
    if (frames_.empty())
        return &shader_.body;
    Frame &f = frames_.back();
    if (f.node->kind == Node::Kind::Loop)
        return &f.node->body;
    return f.inElse ? &f.node->elseBlock : &f.node->thenBlock;
}

Val
Builder::emit(Op op, std::initializer_list<Val> srcs, std::uint64_t imm,
              bool has_dst, unsigned size)
{
    vksim_assert(!finished_);
    Node node;
    node.kind = Node::Kind::Instr;
    node.instr.op = op;
    node.instr.srcs.assign(srcs);
    node.instr.imm = imm;
    node.instr.size = static_cast<std::uint8_t>(size);
    Val dst = kNoVal;
    if (has_dst) {
        dst = nextVal_++;
        node.instr.dst = dst;
    }
    for (Val s : srcs)
        vksim_assert(s >= 0 && s < nextVal_);
    currentBlock()->push_back(std::move(node));
    return dst;
}

Val
Builder::constI(std::uint64_t v)
{
    return emit(Op::ConstI, {}, v);
}

Val
Builder::constF(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    return emit(Op::ConstF, {}, bits);
}

#define VKSIM_NIR_BINOP(method, op)                                         \
    Val Builder::method(Val a, Val b) { return emit(Op::op, {a, b}); }
#define VKSIM_NIR_UNOP(method, op)                                          \
    Val Builder::method(Val a) { return emit(Op::op, {a}); }

VKSIM_NIR_BINOP(iadd, IAdd)
VKSIM_NIR_BINOP(isub, ISub)
VKSIM_NIR_BINOP(imul, IMul)
VKSIM_NIR_BINOP(iand, IAnd)
VKSIM_NIR_BINOP(ior, IOr)
VKSIM_NIR_BINOP(ixor, IXor)
VKSIM_NIR_BINOP(ishl, IShl)
VKSIM_NIR_BINOP(ishr, IShr)
VKSIM_NIR_BINOP(ieq, IEq)
VKSIM_NIR_BINOP(ine, INe)
VKSIM_NIR_BINOP(ilt, ILt)
VKSIM_NIR_BINOP(ige, IGe)
VKSIM_NIR_BINOP(fadd, FAdd)
VKSIM_NIR_BINOP(fsub, FSub)
VKSIM_NIR_BINOP(fmul, FMul)
VKSIM_NIR_BINOP(fdiv, FDiv)
VKSIM_NIR_BINOP(fmin, FMin)
VKSIM_NIR_BINOP(fmax, FMax)
VKSIM_NIR_UNOP(fabsv, FAbs)
VKSIM_NIR_UNOP(fneg, FNeg)
VKSIM_NIR_UNOP(ffloor, FFloor)
VKSIM_NIR_BINOP(flt, FLt)
VKSIM_NIR_BINOP(fle, FLe)
VKSIM_NIR_BINOP(fgt, FGt)
VKSIM_NIR_BINOP(fge, FGe)
VKSIM_NIR_BINOP(feq, FEq)
VKSIM_NIR_BINOP(fne, FNe)
VKSIM_NIR_UNOP(fsqrt, FSqrt)
VKSIM_NIR_UNOP(frsqrt, FRsqrt)
VKSIM_NIR_UNOP(fsin, FSin)
VKSIM_NIR_UNOP(fcos, FCos)
VKSIM_NIR_UNOP(i2f, I2F)
VKSIM_NIR_UNOP(u2f, U2F)
VKSIM_NIR_UNOP(f2i, F2I)
VKSIM_NIR_UNOP(f2u, F2U)
VKSIM_NIR_UNOP(mov, Mov)

#undef VKSIM_NIR_BINOP
#undef VKSIM_NIR_UNOP

Val
Builder::select(Val c, Val a, Val b)
{
    return emit(Op::Select, {c, a, b});
}

Val
Builder::var()
{
    return nextVal_++;
}

void
Builder::assign(Val variable, Val value)
{
    vksim_assert(variable >= 0 && variable < nextVal_);
    Node node;
    node.kind = Node::Kind::Instr;
    node.instr.op = Op::Mov;
    node.instr.dst = variable;
    node.instr.srcs = {value};
    currentBlock()->push_back(std::move(node));
}

Val
Builder::loadGlobal(Val addr, std::uint64_t offset, unsigned size)
{
    return emit(Op::LoadGlobal, {addr}, offset, true, size);
}

void
Builder::storeGlobal(Val addr, Val value, std::uint64_t offset,
                     unsigned size)
{
    emit(Op::StoreGlobal, {addr, value}, offset, false, size);
}

Val
Builder::launchId(unsigned component)
{
    return emit(Op::LoadLaunchId, {}, component);
}

Val
Builder::launchSize(unsigned component)
{
    return emit(Op::LoadLaunchSize, {}, component);
}

Val
Builder::rtAllocMem(std::uint64_t slot_offset)
{
    return emit(Op::RtAllocMem, {}, slot_offset);
}

Val
Builder::frameAddr()
{
    return emit(Op::FrameAddr, {});
}

Val
Builder::deferredEntryAddr()
{
    return emit(Op::DeferredEntryAddr, {});
}

Val
Builder::descBase(unsigned binding)
{
    return emit(Op::DescBase, {}, binding);
}

void
Builder::traceRay(Val ox, Val oy, Val oz, Val tmin, Val dx, Val dy, Val dz,
                  Val tmax, Val flags)
{
    vksim_assert(shader_.stage == vptx::ShaderStage::RayGen
                 || shader_.stage == vptx::ShaderStage::ClosestHit
                 || shader_.stage == vptx::ShaderStage::Miss);
    emit(Op::TraceRay, {ox, oy, oz, tmin, dx, dy, dz, tmax, flags}, 0,
         false);
}

void
Builder::reportIntersection(Val t)
{
    vksim_assert(shader_.stage == vptx::ShaderStage::Intersection);
    emit(Op::ReportIntersection, {t}, 0, false);
}

void
Builder::commitAnyHit()
{
    vksim_assert(shader_.stage == vptx::ShaderStage::AnyHit);
    emit(Op::CommitAnyHit, {}, 0, false);
}

void
Builder::rayQuery(Val ox, Val oy, Val oz, Val tmin, Val dx, Val dy, Val dz,
                  Val tmax, Val flags)
{
    vksim_assert(shader_.stage == vptx::ShaderStage::Compute);
    emit(Op::RayQuery, {ox, oy, oz, tmin, dx, dy, dz, tmax, flags}, 0,
         false);
}

void
Builder::rayQueryEnd()
{
    vksim_assert(shader_.stage == vptx::ShaderStage::Compute);
    emit(Op::RayQueryEnd, {}, 0, false);
}

void
Builder::beginIf(Val cond)
{
    Node node;
    node.kind = Node::Kind::If;
    node.cond = cond;
    std::vector<Node> *block = currentBlock();
    block->push_back(std::move(node));
    frames_.push_back({&block->back(), false});
}

void
Builder::beginElse()
{
    vksim_assert(!frames_.empty()
                 && frames_.back().node->kind == Node::Kind::If
                 && !frames_.back().inElse);
    frames_.back().inElse = true;
}

void
Builder::endIf()
{
    vksim_assert(!frames_.empty()
                 && frames_.back().node->kind == Node::Kind::If);
    frames_.pop_back();
}

void
Builder::beginLoop()
{
    Node node;
    node.kind = Node::Kind::Loop;
    std::vector<Node> *block = currentBlock();
    block->push_back(std::move(node));
    frames_.push_back({&block->back(), false});
}

void
Builder::breakLoop()
{
    Node node;
    node.kind = Node::Kind::Break;
    currentBlock()->push_back(std::move(node));
}

void
Builder::breakIf(Val cond)
{
    Node node;
    node.kind = Node::Kind::BreakIf;
    node.cond = cond;
    currentBlock()->push_back(std::move(node));
}

void
Builder::endLoop()
{
    vksim_assert(!frames_.empty()
                 && frames_.back().node->kind == Node::Kind::Loop);
    frames_.pop_back();
}

Shader
Builder::finish()
{
    vksim_assert(frames_.empty());
    finished_ = true;
    shader_.numValues = nextVal_;
    return std::move(shader_);
}

namespace {

std::size_t
countBlock(const std::vector<Node> &block)
{
    std::size_t n = 0;
    for (const Node &node : block) {
        switch (node.kind) {
          case Node::Kind::Instr:
          case Node::Kind::Break:
          case Node::Kind::BreakIf:
            ++n;
            break;
          case Node::Kind::If:
            n += 1 + countBlock(node.thenBlock) + countBlock(node.elseBlock);
            break;
          case Node::Kind::Loop:
            n += countBlock(node.body);
            break;
        }
    }
    return n;
}

} // namespace

std::size_t
countInstrs(const Shader &shader)
{
    return countBlock(shader.body);
}

} // namespace vksim::nir
