/**
 * @file
 * NIR validation and pretty-printing: structural checks run before
 * translation (use-before-definition of SSA values, stage-legal
 * intrinsics, break placement, operand arity) and a readable structured
 * dump for debugging shaders.
 */

#ifndef VKSIM_NIR_VALIDATE_H
#define VKSIM_NIR_VALIDATE_H

#include <string>
#include <vector>

#include "nir/nir.h"

namespace vksim::nir {

/** Result of validating a shader. */
struct ValidationResult
{
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }

    /** All errors joined with newlines. */
    std::string message() const;
};

/**
 * Validate a shader:
 *  - every source value id is in [0, numValues) — note that `var()`
 *    variables may be read before their first textual assignment (they
 *    behave like zero-initialized registers), so def-before-use is
 *    checked only as "id was allocated";
 *  - operand counts match each op's arity;
 *  - Break/BreakIf appear only inside loops;
 *  - stage-restricted intrinsics (TraceRay, ReportIntersection,
 *    CommitAnyHit) appear only in legal stages;
 *  - memory access sizes are 1, 2, 4 or 8 bytes.
 */
ValidationResult validate(const Shader &shader);

/** Structured pretty-print (indented if/loop blocks). */
std::string print(const Shader &shader);

} // namespace vksim::nir

#endif // VKSIM_NIR_VALIDATE_H
