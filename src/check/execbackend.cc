#include "check/execbackend.h"

#include "accel/traversal.h"
#include "reftrace/tracer.h"

namespace vksim {

HitRecord
RtReplayBackend::trace(const Ray &ray, std::uint32_t flags,
                       TraceCounters *counters) const
{
    RayTraversal trav(gmem_, tlasRoot_, ray, flags);
    trav.run();
    if (counters) {
        counters->nodesVisited += trav.nodesVisited();
        counters->boxTests += trav.boxTests();
        counters->triangleTests += trav.triangleTests();
        counters->transforms += trav.transforms();
        counters->rays += 1;
    }
    return trav.hit();
}

} // namespace vksim
