#include "check/diffhook.h"

#include <cstring>
#include <string>

#include "accel/traversal.h"
#include "vptx/rt_runtime.h"

namespace vksim {
namespace check {

namespace {

std::uint32_t
floatBits(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

} // namespace

void
RefTraceDiff::onTraverseDone(Addr frame_base, const RayTraversal &trav)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = raysSeen_++;
    if (n % samplePeriod_ != 0)
        return;
    if (!trav.deferred().empty()) {
        // Final hit depends on intersection/any-hit shaders that run
        // after this point; nothing to compare yet.
        ++raysSkippedDeferred_;
        return;
    }
    ++raysChecked_;

    std::uint32_t flags = 0;
    Ray ray = vptx::rt_runtime::readRay(gmem_, frame_base, &flags);
    HitRecord ref = backend_.trace(ray, flags);
    const HitRecord &sim = trav.hit();

    // With no deferred work the reference must agree exactly: the same
    // serialized nodes, the same intersection arithmetic, so the same
    // bits — any tolerance here would hide order-dependence bugs.
    bool same = sim.valid() == ref.valid();
    if (same && sim.valid())
        same = floatBits(sim.t) == floatBits(ref.t)
               && sim.primitiveIndex == ref.primitiveIndex
               && sim.instanceIndex == ref.instanceIndex
               && sim.kind == ref.kind;
    if (same)
        return;

    ++mismatches_;
    if (rep_) {
        auto hitStr = [](const HitRecord &h) {
            if (!h.valid())
                return std::string("miss");
            return "t=" + std::to_string(h.t) + " inst="
                   + std::to_string(h.instanceIndex) + " prim="
                   + std::to_string(h.primitiveIndex);
        };
        rep_->report("raydiff.frame0x" + std::to_string(frame_base),
                     "sim {" + hitStr(sim) + "} != ref {" + hitStr(ref)
                         + "}");
    }
}

} // namespace check
} // namespace vksim
