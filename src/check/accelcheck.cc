#include "check/accelcheck.h"

#include <map>
#include <string>

namespace vksim {
namespace check {

namespace {

/** Transform a point by 3x4 row-major affine rows (TopLeaf matrices). */
Vec3
transformPoint(const float m[12], const Vec3 &p)
{
    return {m[0] * p.x + m[1] * p.y + m[2] * p.z + m[3],
            m[4] * p.x + m[5] * p.y + m[6] * p.z + m[7],
            m[8] * p.x + m[9] * p.y + m[10] * p.z + m[11]};
}

Aabb
transformAabb(const float m[12], const Aabb &box)
{
    Aabb out;
    if (box.empty())
        return out;
    for (int corner = 0; corner < 8; ++corner) {
        Vec3 p{corner & 1 ? box.hi.x : box.lo.x,
               corner & 2 ? box.hi.y : box.lo.y,
               corner & 4 ? box.hi.z : box.lo.z};
        out.extend(transformPoint(m, p));
    }
    return out;
}

/**
 * Recursive walker. Each check*() returns the subtree's true bounds
 * recomputed from the leaves (empty when unknown or on a reported
 * structural error that prevents descent).
 */
class AccelChecker
{
  public:
    AccelChecker(const GlobalMemory &gmem, const AccelStruct &accel,
                 const Scene *scene, Reporter &rep)
        : gmem_(gmem), accel_(accel), scene_(scene), rep_(rep)
    {
        // Slack for the bound: stats are advisory, cycles are not.
        nodeBudget_ = 4 * (accel.stats.totalNodes() + 1);
    }

    bool
    run()
    {
        std::size_t before = rep_.violations().size();

        // BLAS subtrees first (memoized): TopLeaf leaves reference them
        // by root address, possibly many instances sharing one BLAS.
        for (std::size_t g = 0; g < accel_.blasRoots.size(); ++g) {
            Addr root = accel_.blasRoots[g];
            if (root == 0)
                continue; // empty geometry: never serialized
            const Geometry *geom =
                scene_ && g < scene_->geometries.size()
                    ? &scene_->geometries[g]
                    : nullptr;
            blasBounds_[root] =
                checkNode(root, NodeType::Internal, geom, /*in_tlas=*/false,
                          "accel.blas" + std::to_string(g), 0);
        }

        checkNode(accel_.tlasRoot, accel_.tlasRootType, nullptr,
                  /*in_tlas=*/true, "accel.tlas", 0);
        return rep_.violations().size() == before;
    }

  private:
    static constexpr unsigned kMaxDepth = 128;

    Aabb
    checkNode(Addr addr, NodeType type, const Geometry *geom, bool in_tlas,
              const std::string &path, unsigned depth)
    {
        if (++visited_ > nodeBudget_) {
            if (!budgetReported_) {
                budgetReported_ = true;
                rep_.report(path, "node walk exceeded "
                                      + std::to_string(nodeBudget_)
                                      + " nodes (cycle or corrupt links)");
            }
            return {};
        }
        if (depth > kMaxDepth) {
            rep_.report(path, "depth exceeds " + std::to_string(kMaxDepth));
            return {};
        }
        if (addr == 0 || addr % kNodeBlockSize != 0) {
            rep_.report(path, "node address 0x" + toHex(addr)
                                  + " not a valid 64 B block");
            return {};
        }
        switch (type) {
          case NodeType::Internal:
            return checkInternal(addr, geom, in_tlas, path, depth);
          case NodeType::TopLeaf:
            return checkTopLeaf(addr, path);
          case NodeType::TriangleLeaf:
            return checkTriangleLeaf(addr, geom, path);
          case NodeType::ProceduralLeaf:
            return checkProceduralLeaf(addr, geom, path);
          case NodeType::Invalid:
            break;
        }
        rep_.report(path, "invalid node type");
        return {};
    }

    Aabb
    checkInternal(Addr addr, const Geometry *geom, bool in_tlas,
                  const std::string &path, unsigned depth)
    {
        InternalNode node = gmem_.load<InternalNode>(addr);
        Aabb bounds;
        if (node.childCount < 1 || node.childCount > 6) {
            rep_.report(path, "childCount " + std::to_string(node.childCount)
                                  + " outside [1,6]");
            return bounds;
        }
        if (node.firstChild % kNodeBlockSize != 0) {
            rep_.report(path, "firstChild 0x" + toHex(node.firstChild)
                                  + " not 64 B aligned");
            return bounds;
        }
        for (unsigned i = 0; i < node.childCount; ++i) {
            NodeType ct = node.childType(i);
            std::string cpath = path + ".c" + std::to_string(i);
            bool valid =
                ct == NodeType::Internal
                || (in_tlas ? ct == NodeType::TopLeaf
                            : ct == NodeType::TriangleLeaf
                                  || ct == NodeType::ProceduralLeaf);
            if (!valid) {
                rep_.report(cpath, "child type nibble "
                                       + std::to_string(static_cast<int>(ct))
                                       + (in_tlas ? " invalid in TLAS"
                                                  : " invalid in BLAS"));
                continue;
            }
            if (geom && ct == NodeType::TriangleLeaf
                && geom->kind != GeometryKind::Triangles)
                rep_.report(cpath, "triangle leaf in procedural BLAS");
            if (geom && ct == NodeType::ProceduralLeaf
                && geom->kind != GeometryKind::Procedural)
                rep_.report(cpath, "procedural leaf in triangle BLAS");

            Aabb true_box = checkNode(node.childAddress(i), ct, geom,
                                      in_tlas, cpath, depth + 1);
            Aabb claimed = node.childBounds(i);
            // The floor/ceil quantizer must round trip conservatively:
            // the 8-bit box may only ever grow relative to the true box.
            if (!claimed.encloses(true_box))
                rep_.report(cpath,
                            "quantized child AABB does not enclose the "
                            "child subtree's true bounds");
            bounds.extend(true_box);
        }
        return bounds;
    }

    Aabb
    checkTopLeaf(Addr addr, const std::string &path)
    {
        TopLeafNode leaf = gmem_.load<TopLeafNode>(addr);
        if (leafDescriptorType(leaf.leafDescriptor) != NodeType::TopLeaf) {
            rep_.report(path, "leaf descriptor tag is not TopLeaf");
            return {};
        }
        auto blas = blasBounds_.find(leaf.blasRoot);
        if (blas == blasBounds_.end()) {
            rep_.report(path, "blasRoot 0x" + toHex(leaf.blasRoot)
                                  + " is not a BLAS root of this structure");
            return {};
        }
        if (scene_) {
            if (leaf.instanceIndex >= scene_->instances.size()) {
                rep_.report(path, "instanceIndex "
                                      + std::to_string(leaf.instanceIndex)
                                      + " out of range");
                return {};
            }
            const Instance &inst = scene_->instances[leaf.instanceIndex];
            if (inst.geometryIndex < accel_.blasRoots.size()
                && accel_.blasRoots[inst.geometryIndex] != leaf.blasRoot)
                rep_.report(path, "blasRoot does not match the instance's "
                                  "geometry");
            if (leaf.instanceCustomIndex != inst.instanceCustomIndex)
                rep_.report(path, "instanceCustomIndex mirror mismatch");
            if (leaf.sbtOffset != inst.sbtOffset)
                rep_.report(path, "sbtOffset mirror mismatch");
            if (inst.geometryIndex < scene_->geometries.size()
                && leaf.geometryKind
                       != static_cast<std::uint32_t>(
                           scene_->geometries[inst.geometryIndex].kind))
                rep_.report(path, "geometryKind mirror mismatch");
        }
        return transformAabb(leaf.objectToWorld, blas->second);
    }

    Aabb
    checkTriangleLeaf(Addr addr, const Geometry *geom,
                      const std::string &path)
    {
        TriangleLeafNode leaf = gmem_.load<TriangleLeafNode>(addr);
        if (leafDescriptorType(leaf.leafDescriptor)
            != NodeType::TriangleLeaf) {
            rep_.report(path, "leaf descriptor tag is not TriangleLeaf");
            return {};
        }
        Aabb box;
        box.extend({leaf.v0[0], leaf.v0[1], leaf.v0[2]});
        box.extend({leaf.v1[0], leaf.v1[1], leaf.v1[2]});
        box.extend({leaf.v2[0], leaf.v2[1], leaf.v2[2]});
        if (geom) {
            if (leaf.primitiveIndex >= geom->primitiveCount()) {
                rep_.report(path, "primitiveIndex "
                                      + std::to_string(leaf.primitiveIndex)
                                      + " out of range");
                return box;
            }
            Vec3 v0, v1, v2;
            geom->mesh.triangle(leaf.primitiveIndex, &v0, &v1, &v2);
            if (v0.x != leaf.v0[0] || v0.y != leaf.v0[1]
                || v0.z != leaf.v0[2] || v1.x != leaf.v1[0]
                || v1.y != leaf.v1[1] || v1.z != leaf.v1[2]
                || v2.x != leaf.v2[0] || v2.y != leaf.v2[1]
                || v2.z != leaf.v2[2])
                rep_.report(path,
                            "leaf vertices differ from mesh triangle "
                                + std::to_string(leaf.primitiveIndex));
        }
        return box;
    }

    Aabb
    checkProceduralLeaf(Addr addr, const Geometry *geom,
                        const std::string &path)
    {
        ProceduralLeafNode leaf = gmem_.load<ProceduralLeafNode>(addr);
        if (leafDescriptorType(leaf.leafDescriptor)
            != NodeType::ProceduralLeaf) {
            rep_.report(path, "leaf descriptor tag is not ProceduralLeaf");
            return {};
        }
        if (!geom)
            return {};
        if (leaf.primitiveIndex >= geom->primitiveCount()) {
            rep_.report(path, "primitiveIndex "
                                  + std::to_string(leaf.primitiveIndex)
                                  + " out of range");
            return {};
        }
        return geom->primitiveBounds(leaf.primitiveIndex);
    }

    static std::string
    toHex(Addr a)
    {
        static const char digits[] = "0123456789abcdef";
        std::string s;
        do {
            s.insert(s.begin(), digits[a & 0xF]);
            a >>= 4;
        } while (a != 0);
        return s;
    }

    const GlobalMemory &gmem_;
    const AccelStruct &accel_;
    const Scene *scene_;
    Reporter &rep_;
    std::map<Addr, Aabb> blasBounds_;
    std::size_t visited_ = 0;
    std::size_t nodeBudget_;
    bool budgetReported_ = false;
};

} // namespace

bool
checkAccelStruct(const GlobalMemory &gmem, const AccelStruct &accel,
                 const Scene *scene, Reporter &rep)
{
    return AccelChecker(gmem, accel, scene, rep).run();
}

} // namespace check
} // namespace vksim
