/**
 * @file
 * Per-ray sim-vs-reference differential (the second leg of the checker).
 *
 * RefTraceDiff is a traversal-completion hook: each time the timed RT
 * unit finishes a ray, the hook re-reads the original ray from its stack
 * frame (the frame's ray words are never mutated by traversal — the
 * in-flight copy's tmax shrinks, so replaying *that* would self-miss)
 * and replays it through an ExecBackend over the same serialized BVH —
 * normally the functional CpuTracer, but any backend (execbackend.h)
 * plugs in. The committed hit must match bit-for-bit in t and exactly
 * in instance/primitive identity.
 *
 * Rays that collected deferred intersection/any-hit work are skipped:
 * their final hit depends on shader execution, which completes after the
 * traversal step this hook observes.
 *
 * The hook runs on SM worker threads; all mutable state is behind a
 * mutex (validation throughput is not the simulator's critical path).
 */

#ifndef VKSIM_CHECK_DIFFHOOK_H
#define VKSIM_CHECK_DIFFHOOK_H

#include <cstdint>
#include <mutex>

#include "check/check.h"
#include "check/execbackend.h"
#include "mem/gmem.h"

namespace vksim {
namespace check {

/** Sim-vs-reference per-ray differential state. */
class RefTraceDiff
{
  public:
    /**
     * @param sample_period Replay every Nth completed ray (1 = all).
     *        Reference replay is ~as expensive as the original
     *        traversal, so large launches may want sparse sampling.
     */
    RefTraceDiff(const ExecBackend &backend, const GlobalMemory &gmem,
                 Reporter *rep, std::uint64_t sample_period = 1)
        : backend_(backend), gmem_(gmem), rep_(rep),
          samplePeriod_(sample_period == 0 ? 1 : sample_period)
    {
    }

    /** The TraverseHook body. */
    void onTraverseDone(Addr frame_base, const RayTraversal &trav);

    std::uint64_t raysSeen() const { return raysSeen_; }
    std::uint64_t raysChecked() const { return raysChecked_; }
    std::uint64_t raysSkippedDeferred() const { return raysSkippedDeferred_; }
    std::uint64_t mismatches() const { return mismatches_; }

  private:
    const ExecBackend &backend_;
    const GlobalMemory &gmem_;
    Reporter *rep_;
    std::uint64_t samplePeriod_;

    std::mutex mutex_;
    std::uint64_t raysSeen_ = 0;
    std::uint64_t raysChecked_ = 0;
    std::uint64_t raysSkippedDeferred_ = 0;
    std::uint64_t mismatches_ = 0;
};

/**
 * RAII installation of the global traverse hook: installs on
 * construction, removes on destruction. One at a time process-wide.
 */
class ScopedTraverseHook
{
  public:
    explicit ScopedTraverseHook(TraverseHook hook)
    {
        setTraverseHook(std::move(hook));
    }

    ~ScopedTraverseHook() { setTraverseHook({}); }

    ScopedTraverseHook(const ScopedTraverseHook &) = delete;
    ScopedTraverseHook &operator=(const ScopedTraverseHook &) = delete;
};

} // namespace check
} // namespace vksim

#endif // VKSIM_CHECK_DIFFHOOK_H
