/**
 * @file
 * Structural validation of a serialized acceleration structure (the BVH
 * leg of the checker). Walks the on-device node bytes exactly the way the
 * RT unit's traversal does — parent childTypes nibbles give child types,
 * children occupy consecutive 64 B blocks — and verifies:
 *
 *  - every node block address is 64-byte aligned and within bounds;
 *  - childCount in [1,6] and every childTypes nibble is a valid NodeType
 *    for its level (TopLeaf only in the TLAS, geometry leaves only in a
 *    BLAS of the matching kind);
 *  - each dequantized (8-bit quantized) child AABB conservatively
 *    encloses the child subtree's true bounds recomputed bottom-up from
 *    the leaf geometry — the round-trip guarantee the floor/ceil
 *    quantizer must provide for traversal to be watertight;
 *  - leaf descriptors carry the tag the parent promised, primitive and
 *    instance indices are in range for the scene, every TopLeaf's
 *    blasRoot is one of the structure's BLAS roots, and its cached
 *    instance fields match the scene's instance;
 *  - the walk terminates within the node count the builder reported
 *    (guards against pointer cycles / overlapping layout).
 *
 * The scene pointer is optional; without it the scene-dependent checks
 * (index ranges, procedural bounds, instance field mirrors) are skipped.
 */

#ifndef VKSIM_CHECK_ACCELCHECK_H
#define VKSIM_CHECK_ACCELCHECK_H

#include "accel/serialize.h"
#include "check/check.h"
#include "mem/gmem.h"
#include "scene/scene.h"

namespace vksim {
namespace check {

/**
 * Validate the serialized structure `accel` in `gmem` against the scene
 * it was built from. Violations go to `rep` (path prefix "accel.").
 * @return true when no violations were reported.
 */
bool checkAccelStruct(const GlobalMemory &gmem, const AccelStruct &accel,
                      const Scene *scene, Reporter &rep);

} // namespace check
} // namespace vksim

#endif // VKSIM_CHECK_ACCELCHECK_H
