/**
 * @file
 * Always-compiled, flag-gated validation subsystem (the "checker"):
 *
 *  - CheckLevel / VKSIM_CHECK: how much self-validation a run performs.
 *    Off   — no checks (production default).
 *    Basic — structural invariants swept every kBasicSweepPeriod cycles
 *            and once at the end of the run.
 *    Full  — invariants swept at every cycle barrier, plus the sampled
 *            per-ray sim-vs-reference traversal differential.
 *  - Reporter: violation sink. Default mode panics on the first violation
 *    (a violation is a simulator bug, not a user error); collect mode
 *    accumulates Violation records for tests and the fuzz driver.
 *  - Digest / DigestTrace: FNV-1a state digests used by the differential
 *    engine runner (tools/diffrun) to localize the first divergent
 *    (cycle, unit) between a serial and an N-thread run.
 *  - Traverse hook: an optional global callback invoked whenever a timed
 *    RT-unit traversal completes, used to replay sampled rays through the
 *    CPU reference tracer (src/check/diffhook.h installs it).
 *
 * Everything here is dependency-light (util only) so low-level models
 * (cache, DRAM, RT unit, SIMT stack) can expose checkInvariants() hooks
 * without layering cycles.
 */

#ifndef VKSIM_CHECK_CHECK_H
#define VKSIM_CHECK_CHECK_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/types.h"

namespace vksim {

class RayTraversal;

namespace check {

/** How much self-validation a run performs. */
enum class CheckLevel
{
    Off = 0,
    Basic = 1,
    Full = 2
};

/** Cycle period of Basic-level invariant sweeps. */
inline constexpr Cycle kBasicSweepPeriod = 1024;

/**
 * Parse "off" / "basic" / "full" (also "0"/"1"/"2").
 * @return false (and leaves `out` untouched) on an unknown spelling.
 */
bool parseCheckLevel(const std::string &text, CheckLevel *out);

const char *checkLevelName(CheckLevel level);

/**
 * Process-wide default level from the VKSIM_CHECK environment variable
 * (read once, cached). Unset or unparsable means Off. GpuConfig picks
 * this up as its initial checkLevel, so `VKSIM_CHECK=full ./binary`
 * enables checking without touching any call site.
 */
CheckLevel defaultCheckLevel();

/** One invariant violation. */
struct Violation
{
    std::string path;    ///< metrics-registry-style dotted location
    std::string message; ///< what was inconsistent
    Cycle cycle = 0;     ///< simulated cycle of the sweep (0 if static)
};

/**
 * Violation sink. Panic mode (default) aborts on the first report with
 * the full path/cycle context; collect mode records violations for the
 * caller to inspect (tests, the fuzz driver's minimized-repro output).
 */
class Reporter
{
  public:
    explicit Reporter(bool collect = false) : collect_(collect) {}

    void setCycle(Cycle cycle) { cycle_ = cycle; }
    Cycle cycle() const { return cycle_; }

    /** Report a violation at `path` (panics unless collecting). */
    void report(const std::string &path, const std::string &message);

    bool ok() const { return violations_.empty(); }
    const std::vector<Violation> &violations() const { return violations_; }
    void clear() { violations_.clear(); }

  private:
    bool collect_;
    Cycle cycle_ = 0;
    std::vector<Violation> violations_;
};

/**
 * FNV-1a 64-bit running hash over architectural state. Order-sensitive:
 * mix values in a deterministic order (or fold unordered containers with
 * XOR of per-entry digests before mixing).
 */
class Digest
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (unsigned byte = 0; byte < 8; ++byte) {
            h_ ^= (v >> (8 * byte)) & 0xFFu;
            h_ *= 0x100000001b3ull;
        }
    }

    void
    mixFloat(float f)
    {
        std::uint32_t bits;
        static_assert(sizeof(bits) == sizeof(f));
        __builtin_memcpy(&bits, &f, sizeof(bits));
        mix(bits);
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 1469598103934665603ull;
};

/**
 * Per-cycle state digests of every engine unit (one slot per SM plus one
 * for the shared fabric), cycle-major. Two runs of the same launch must
 * produce identical traces for any thread count (determinism contract);
 * firstDivergence() localizes a mismatch to its first (cycle, unit).
 */
struct DigestTrace
{
    Cycle period = 1;   ///< cycles between samples
    unsigned units = 0; ///< digests per sample (numSms + 1 fabric slot)
    /**
     * Simulated cycle of the first sample. 0 for a run started from
     * scratch; a run resumed from a checkpoint records only the suffix
     * it executed, starting at the first period multiple >= the resume
     * cycle. firstDivergence() aligns the two traces on their common
     * cycle range, so a resumed suffix can be compared directly against
     * the uninterrupted oracle's full trace.
     */
    Cycle start = 0;
    std::vector<std::uint64_t> values; ///< sample-major, then unit

    std::size_t
    samples() const
    {
        return units == 0 ? 0 : values.size() / units;
    }

    std::uint64_t
    at(std::size_t sample, unsigned unit) const
    {
        return values[sample * units + unit];
    }

    struct Divergence
    {
        bool diverged = false;
        Cycle cycle = 0;  ///< simulated cycle of the first mismatch
        unsigned unit = 0;///< unit index (== numSms means the fabric)
    };

    /**
     * First (cycle, unit) where the two traces disagree over their
     * common cycle range [max(start, other.start), min(end, end)].
     * Samples before the later trace's start are not comparable and are
     * skipped; traces ending at different cycles diverge at the shorter
     * trace's end.
     */
    Divergence firstDivergence(const DigestTrace &other) const;
};

/**
 * Global traversal-completion hook (Full level): called with the frame
 * base address and the finished per-ray traversal state machine whenever
 * the executor completes a timed traverseAS. The hook may be invoked from
 * multiple SM worker threads concurrently and must synchronize itself.
 */
using TraverseHook =
    std::function<void(Addr frame_base, const RayTraversal &trav)>;

/** Install (or, with an empty function, remove) the traverse hook. */
void setTraverseHook(TraverseHook hook);

/** Cheap inline gate for the executor's hot path. */
bool traverseHookActive();

/** Invoke the installed hook (no-op when none is installed). */
void callTraverseHook(Addr frame_base, const RayTraversal &trav);

} // namespace check
} // namespace vksim

#endif // VKSIM_CHECK_CHECK_H
