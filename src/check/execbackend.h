/**
 * @file
 * The execution-backend seam of the differential checker.
 *
 * The simulator answers a closest-hit query two independent ways: the
 * timed models step the RayTraversal state machine cycle-by-cycle, and
 * the functional reference tracer (reftrace) runs the same machine to
 * completion and resolves deferred shader work analytically. ExecBackend
 * gives both sides one interface, so the sim-vs-reference differential
 * (diffhook.h) — and any future cross-checking harness — can drive
 * either backend without per-backend glue.
 *
 * Implementations:
 *  - CpuTracer (reftrace/tracer.h): the functional reference.
 *  - RtReplayBackend (here): the timing side's traversal semantics —
 *    the exact state machine the RT unit steps, run to completion in
 *    one call. No deferred-work resolution; callers comparing against
 *    it skip rays with deferred intersection/any-hit work, exactly as
 *    RefTraceDiff already does.
 */

#ifndef VKSIM_CHECK_EXECBACKEND_H
#define VKSIM_CHECK_EXECBACKEND_H

#include <cstdint>

#include "geom/ray.h"
#include "mem/gmem.h"

namespace vksim {

struct TraceCounters; // reftrace/tracer.h

/** A closest-hit query engine; see file comment. */
class ExecBackend
{
  public:
    virtual ~ExecBackend() = default;

    /**
     * Answer the closest-hit query for `ray`. Traversal counters are
     * accumulated when `counters` is non-null.
     */
    virtual HitRecord trace(const Ray &ray, std::uint32_t flags,
                            TraceCounters *counters = nullptr) const = 0;

    /** Stable identifier for reports ("reftrace", "rtreplay", ...). */
    virtual const char *name() const = 0;
};

/**
 * The timing side as a backend: replays a ray through RayTraversal over
 * the serialized BVH — the exact state machine the timed RT unit steps —
 * without the cycle model around it.
 */
class RtReplayBackend : public ExecBackend
{
  public:
    RtReplayBackend(const GlobalMemory &gmem, Addr tlas_root)
        : gmem_(gmem), tlasRoot_(tlas_root)
    {
    }

    HitRecord trace(const Ray &ray, std::uint32_t flags,
                    TraceCounters *counters = nullptr) const override;

    const char *name() const override { return "rtreplay"; }

  private:
    const GlobalMemory &gmem_;
    Addr tlasRoot_;
};

} // namespace vksim

#endif // VKSIM_CHECK_EXECBACKEND_H
