#include "check/check.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/log.h"

namespace vksim {
namespace check {

bool
parseCheckLevel(const std::string &text, CheckLevel *out)
{
    if (text == "off" || text == "0") {
        *out = CheckLevel::Off;
        return true;
    }
    if (text == "basic" || text == "1") {
        *out = CheckLevel::Basic;
        return true;
    }
    if (text == "full" || text == "2") {
        *out = CheckLevel::Full;
        return true;
    }
    return false;
}

const char *
checkLevelName(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off: return "off";
      case CheckLevel::Basic: return "basic";
      case CheckLevel::Full: return "full";
    }
    return "?";
}

CheckLevel
defaultCheckLevel()
{
    static const CheckLevel cached = [] {
        CheckLevel level = CheckLevel::Off;
        if (const char *env = std::getenv("VKSIM_CHECK")) {
            if (!parseCheckLevel(env, &level))
                vksim_fatal("VKSIM_CHECK=" + std::string(env)
                            + ": expected off|basic|full");
        }
        return level;
    }();
    return cached;
}

void
Reporter::report(const std::string &path, const std::string &message)
{
    if (!collect_)
        vksim_panic("invariant violation at cycle " + std::to_string(cycle_)
                    + ": " + path + ": " + message);
    violations_.push_back({path, message, cycle_});
}

DigestTrace::Divergence
DigestTrace::firstDivergence(const DigestTrace &other) const
{
    Divergence d;
    if (units != other.units || period != other.period
        || (start > other.start ? start - other.start
                                : other.start - start)
                   % period
               != 0) {
        d.diverged = true;
        return d;
    }
    if (units == 0)
        return d; // both traces empty (digests were not recorded)
    // Align on the later start: the earlier trace's leading samples have
    // no counterpart in the other and cannot be compared.
    const Cycle common = std::max(start, other.start);
    const std::size_t skip_a =
        static_cast<std::size_t>((common - start) / period) * units;
    const std::size_t skip_b =
        static_cast<std::size_t>((common - other.start) / period) * units;
    const std::size_t n_a = values.size() > skip_a
                                ? values.size() - skip_a
                                : 0;
    const std::size_t n_b = other.values.size() > skip_b
                                ? other.values.size() - skip_b
                                : 0;
    std::size_t n = std::min(n_a, n_b);
    for (std::size_t i = 0; i < n; ++i) {
        if (values[skip_a + i] != other.values[skip_b + i]) {
            d.diverged = true;
            d.cycle = common + static_cast<Cycle>(i / units) * period;
            d.unit = static_cast<unsigned>(i % units);
            return d;
        }
    }
    if (n_a != n_b) {
        d.diverged = true;
        d.cycle = common + static_cast<Cycle>(n / units) * period;
    }
    return d;
}

namespace {

// The hook itself is guarded by a mutex (installation is rare, invocation
// reads under the lock); the atomic flag keeps the executor's per-lane
// fast path to a single relaxed load when no hook is installed.
std::mutex g_hook_mutex;
TraverseHook g_hook;
std::atomic<bool> g_hook_active{false};

} // namespace

void
setTraverseHook(TraverseHook hook)
{
    std::lock_guard<std::mutex> lock(g_hook_mutex);
    g_hook = std::move(hook);
    g_hook_active.store(static_cast<bool>(g_hook),
                        std::memory_order_release);
}

bool
traverseHookActive()
{
    return g_hook_active.load(std::memory_order_acquire);
}

void
callTraverseHook(Addr frame_base, const RayTraversal &trav)
{
    std::lock_guard<std::mutex> lock(g_hook_mutex);
    if (g_hook)
        g_hook(frame_base, trav);
}

} // namespace check
} // namespace vksim
