/**
 * @file
 * In-memory binary serialization primitives for the persistence layer
 * (engine snapshots, disk-store artifact payloads).
 *
 * Byte order is explicit little-endian so payload digests are
 * host-independent, and floating-point values round-trip bit-exactly
 * through their IEEE-754 bit patterns (the engine's determinism
 * contract is bit-level; "close" is a divergence). A Reader underrun
 * throws SimError rather than returning garbage: a short buffer means
 * a truncated or corrupted artifact, which callers must treat as
 * "absent", never as data.
 */

#ifndef VKSIM_UTIL_SERIAL_H
#define VKSIM_UTIL_SERIAL_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/simerror.h"

namespace vksim {
namespace serial {

class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (unsigned b = 0; b < 4; ++b)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }

    void
    u64(std::uint64_t v)
    {
        for (unsigned b = 0; b < 8; ++b)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    f32(float v)
    {
        std::uint32_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u32(bits);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void
    bytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + size);
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Reader(const std::vector<std::uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (unsigned b = 0; b < 4; ++b)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * b);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (unsigned b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * b);
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }

    float
    f32()
    {
        std::uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    void
    bytes(void *out, std::size_t size)
    {
        need(size);
        std::memcpy(out, data_ + pos_, size);
        pos_ += size;
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > size_ - pos_)
            throw SimError(
                "serialized payload truncated: needed "
                + std::to_string(n) + " more bytes at offset "
                + std::to_string(pos_) + " of " + std::to_string(size_));
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace serial
} // namespace vksim

#endif // VKSIM_UTIL_SERIAL_H
