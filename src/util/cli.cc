#include "util/cli.h"

#include <cstdlib>

namespace vksim {

Cli::Cli(std::string usage, std::string summary)
    : usage_(std::move(usage)), summary_(std::move(summary))
{
}

Cli &
Cli::flag(const std::string &name, const std::string &help)
{
    specs_.push_back({name, "", "0", help, /*boolean=*/true});
    return *this;
}

Cli &
Cli::option(const std::string &name, const std::string &value_name,
            const std::string &fallback, const std::string &help)
{
    specs_.push_back({name, value_name, fallback, help, /*boolean=*/false});
    return *this;
}

const Cli::Spec *
Cli::find(const std::string &name) const
{
    for (const Spec &s : specs_)
        if (s.name == name)
            return &s;
    return nullptr;
}

bool
Cli::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr,
                         "%s: unexpected argument '%s' (flags are "
                         "--name or --name=value; try --help)\n",
                         argv[0], arg.c_str());
            return false;
        }
        arg = arg.substr(2);
        std::string key = arg;
        std::string value;
        bool has_value = false;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }
        if (key == "help") {
            printHelp();
            helpRequested_ = true;
            return false;
        }
        const Spec *spec = find(key);
        if (spec == nullptr) {
            std::fprintf(stderr, "%s: unknown flag --%s (try --help)\n",
                         argv[0], key.c_str());
            return false;
        }
        if (!spec->boolean && !has_value) {
            std::fprintf(stderr,
                         "%s: flag --%s needs a value: --%s=<%s>\n",
                         argv[0], key.c_str(), key.c_str(),
                         spec->valueName.c_str());
            return false;
        }
        values_[key] = has_value ? value : "1";
    }
    return true;
}

bool
Cli::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Cli::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it != values_.end())
        return it->second;
    const Spec *spec = find(name);
    return spec != nullptr ? spec->fallback : std::string();
}

long
Cli::getInt(const std::string &name) const
{
    return std::strtol(get(name).c_str(), nullptr, 10);
}

double
Cli::getFloat(const std::string &name) const
{
    return std::strtod(get(name).c_str(), nullptr);
}

bool
Cli::getBool(const std::string &name) const
{
    std::string v = get(name);
    return !v.empty() && v != "0" && v != "false";
}

void
Cli::printHelp(std::FILE *out) const
{
    std::fprintf(out, "usage: %s\n", usage_.c_str());
    if (!summary_.empty())
        std::fprintf(out, "%s\n", summary_.c_str());
    std::fprintf(out, "\nflags:\n");
    for (const Spec &s : specs_) {
        std::string left = "--" + s.name;
        if (!s.boolean) {
            left += "=<" + s.valueName + ">";
            if (!s.fallback.empty())
                left += " (default " + s.fallback + ")";
        }
        std::fprintf(out, "  %-44s %s\n", left.c_str(), s.help.c_str());
    }
    std::fprintf(out, "  %-44s %s\n", "--help", "show this help");
}

unsigned
Cli::threadCount() const
{
    if (getBool("serial"))
        return 1;
    long n = getInt("threads");
    if (n > 0)
        return static_cast<unsigned>(n);
    // 0 = auto: resolved downstream via VKSIM_THREADS or hardware
    // concurrency (ThreadPool::resolveThreadCount).
    return 0;
}

} // namespace vksim
