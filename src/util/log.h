/**
 * @file
 * Error and status reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is modelled approximately; simulation continues.
 * inform() — progress/status message.
 */

#ifndef VKSIM_UTIL_LOG_H
#define VKSIM_UTIL_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace vksim {

namespace detail {

[[noreturn]] inline void
failExit(const char *kind, const char *file, int line, const std::string &msg,
         bool abort_proc)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    if (abort_proc)
        std::abort();
    std::exit(1);
}

} // namespace detail

/** Returns true when VKSIM_VERBOSE is set in the environment. */
bool verboseEnabled();

/** Print an informational message to stderr when verbose mode is on. */
void informStr(const std::string &msg);

/** Print a warning to stderr (always shown). */
void warnStr(const std::string &msg);

} // namespace vksim

/** Abort on simulator-internal invariant violation. */
#define vksim_panic(msg) \
    ::vksim::detail::failExit("panic", __FILE__, __LINE__, (msg), true)

/** Exit on unrecoverable user/configuration error. */
#define vksim_fatal(msg) \
    ::vksim::detail::failExit("fatal", __FILE__, __LINE__, (msg), false)

/** Checked invariant: panics with the stringified condition on failure. */
#define vksim_assert(cond)                                                  \
    do {                                                                    \
        if (!(cond))                                                        \
            vksim_panic(std::string("assertion failed: ") + #cond);        \
    } while (0)

#endif // VKSIM_UTIL_LOG_H
