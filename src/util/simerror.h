/**
 * @file
 * SimError: a recoverable simulation failure.
 *
 * Historically every runtime failure in the engine went through
 * vksim_fatal(), which aborts the process — correct for programming
 * errors, but wrong for *per-job* conditions like the cycle watchdog
 * tripping on a runaway workload: one bad job in a SimService batch
 * would kill every other job's results along with the service process.
 *
 * SimError is thrown instead for failures scoped to a single simulation
 * run. SimService::runJob() catches it and parks the error on the job's
 * ticket; JobTicket::get() rethrows it to the caller that asked for
 * that job, leaving the rest of the batch intact.
 */

#ifndef VKSIM_UTIL_SIMERROR_H
#define VKSIM_UTIL_SIMERROR_H

#include <stdexcept>
#include <string>

#include "util/types.h"

namespace vksim {

class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &message,
                      Cycle cycle = ~Cycle(0))
        : std::runtime_error(message), cycle_(cycle)
    {
    }

    /** Sim cycle at which the failure occurred (~Cycle(0) = unknown). */
    Cycle cycle() const { return cycle_; }

  private:
    Cycle cycle_;
};

} // namespace vksim

#endif // VKSIM_UTIL_SIMERROR_H
