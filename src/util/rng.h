/**
 * @file
 * PCG32 pseudo-random number generator.
 *
 * A small, deterministic RNG used for scene generation, shader-level
 * stochastic sampling (path tracing), and property-based tests. PCG32 is
 * used instead of std::mt19937 so that streams are cheap to fork per thread
 * and results are identical across standard library implementations.
 */

#ifndef VKSIM_UTIL_RNG_H
#define VKSIM_UTIL_RNG_H

#include <cstdint>

namespace vksim {

/** Minimal PCG32 generator (O'Neill, pcg-random.org). */
class Pcg32
{
  public:
    Pcg32() { seed(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL); }

    explicit Pcg32(std::uint64_t init_state,
                   std::uint64_t init_seq = 0xda3e39cb94b95bdbULL)
    {
        seed(init_state, init_seq);
    }

    /** Re-seed the stream. */
    void
    seed(std::uint64_t init_state, std::uint64_t init_seq)
    {
        state_ = 0;
        inc_ = (init_seq << 1u) | 1u;
        nextU32();
        state_ += init_state;
        nextU32();
    }

    /** Next uniform 32-bit value. */
    std::uint32_t
    nextU32()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31u));
    }

    /** Uniform value in [0, bound). */
    std::uint32_t
    nextBelow(std::uint32_t bound)
    {
        return static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(nextU32()) * bound) >> 32);
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(nextU32() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    nextRange(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

/**
 * Stateless 32-bit hash (Wang-style avalanche) used by shaders for
 * per-pixel random streams that must be reproducible across runs.
 */
inline std::uint32_t
hashU32(std::uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352dU;
    x ^= x >> 15;
    x *= 0x846ca68bU;
    x ^= x >> 16;
    return x;
}

} // namespace vksim

#endif // VKSIM_UTIL_RNG_H
