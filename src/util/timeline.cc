#include "util/timeline.h"

#include <fstream>

#include "util/metrics.h"

namespace vksim {

void
TimelineShard::record(Event &&ev)
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(ev));
}

void
TimelineShard::complete(std::string track, std::string name, Cycle start,
                        Cycle end)
{
    Event ev;
    ev.phase = 'X';
    ev.track = std::move(track);
    ev.name = std::move(name);
    ev.ts = start;
    ev.dur = end >= start ? end - start : 0;
    record(std::move(ev));
}

void
TimelineShard::instant(std::string track, std::string name, Cycle ts)
{
    Event ev;
    ev.phase = 'i';
    ev.track = std::move(track);
    ev.name = std::move(name);
    ev.ts = ts;
    record(std::move(ev));
}

void
TimelineShard::counter(std::string track, Cycle ts, double value)
{
    Event ev;
    ev.phase = 'C';
    ev.track = std::move(track);
    ev.ts = ts;
    ev.value = value;
    record(std::move(ev));
}

Timeline::Timeline(const TimelineConfig &config, unsigned num_shards)
    : config_(config)
{
    std::uint64_t per_shard =
        num_shards ? config_.maxEvents / num_shards : 0;
    if (per_shard == 0)
        per_shard = 1;
    for (unsigned i = 0; i < num_shards; ++i) {
        auto shard = std::make_unique<TimelineShard>();
        shard->capacity_ = per_shard;
        shard->sampleInterval_ = config_.sampleInterval;
        shard->pid_ = i;
        shards_.push_back(std::move(shard));
    }
}

void
Timeline::setProcessName(unsigned idx, std::string name)
{
    shards_[idx]->processName_ = std::move(name);
}

std::uint64_t
Timeline::eventCount() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->events_.size();
    return n;
}

std::uint64_t
Timeline::droppedCount() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->dropped_;
    return n;
}

void
Timeline::writeJson(std::ostream &os) const
{
    os << "{\"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        os << (first ? "\n" : ",\n") << "  ";
        first = false;
    };
    for (const auto &s : shards_) {
        if (!s->processName_.empty()) {
            sep();
            os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": "
               << s->pid_ << ", \"tid\": 0, \"args\": {\"name\": \""
               << s->processName_ << "\"}}";
        }
        for (const TimelineShard::Event &ev : s->events_) {
            sep();
            os << "{\"ph\": \"" << ev.phase << "\", \"name\": \""
               << (ev.phase == 'C' ? ev.track : ev.name)
               << "\", \"cat\": \"sim\", \"pid\": " << s->pid_
               << ", \"tid\": \"" << ev.track << "\", \"ts\": " << ev.ts;
            switch (ev.phase) {
              case 'X':
                os << ", \"dur\": " << ev.dur;
                break;
              case 'i':
                os << ", \"s\": \"t\"";
                break;
              case 'C':
                os << ", \"args\": {\"value\": "
                   << formatJsonNumber(ev.value) << "}";
                break;
            }
            os << "}";
        }
    }
    os << (first ? "" : "\n") << "],\n"
       << "\"displayTimeUnit\": \"ms\",\n"
       << "\"otherData\": {\"clock\": \"sim_cycles\", "
       << "\"sample_interval\": " << config_.sampleInterval
       << ", \"dropped_events\": " << droppedCount() << "}}\n";
}

bool
Timeline::writeFile(std::string *error) const
{
    std::ofstream out(config_.path, std::ios::binary);
    if (!out) {
        if (error)
            *error = "cannot open " + config_.path + " for writing";
        return false;
    }
    writeJson(out);
    return static_cast<bool>(out);
}

} // namespace vksim
