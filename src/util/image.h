/**
 * @file
 * Float RGB framebuffer with PPM output and pixel-difference metrics.
 *
 * Used for the rendered outputs of the simulator and the reference tracer,
 * and for the Figure 2 style image-fidelity comparison (fraction of pixels
 * whose colour differs beyond a tolerance).
 */

#ifndef VKSIM_UTIL_IMAGE_H
#define VKSIM_UTIL_IMAGE_H

#include <cstdint>
#include <string>
#include <vector>

namespace vksim {

/** Simple linear-space RGB image. */
class Image
{
  public:
    Image() = default;

    Image(unsigned width, unsigned height)
        : width_(width), height_(height), pixels_(3ull * width * height, 0.f)
    {
    }

    unsigned width() const { return width_; }
    unsigned height() const { return height_; }

    /** Mutable access to pixel (x, y) channel c in [0, 3). */
    float &
    at(unsigned x, unsigned y, unsigned c)
    {
        return pixels_[3ull * (static_cast<std::uint64_t>(y) * width_ + x)
                       + c];
    }

    float
    at(unsigned x, unsigned y, unsigned c) const
    {
        return pixels_[3ull * (static_cast<std::uint64_t>(y) * width_ + x)
                       + c];
    }

    void
    setPixel(unsigned x, unsigned y, float r, float g, float b)
    {
        at(x, y, 0) = r;
        at(x, y, 1) = g;
        at(x, y, 2) = b;
    }

    const std::vector<float> &data() const { return pixels_; }
    std::vector<float> &data() { return pixels_; }

    /** Write an 8-bit binary PPM (P6), gamma 2.2 encoded. Returns success. */
    bool writePpm(const std::string &path) const;

  private:
    unsigned width_ = 0;
    unsigned height_ = 0;
    std::vector<float> pixels_;
};

/** Result of comparing two images pixel-by-pixel. */
struct ImageDiff
{
    std::uint64_t totalPixels = 0;
    std::uint64_t differingPixels = 0;
    double maxChannelDelta = 0.0;
    double meanChannelDelta = 0.0;

    double
    differingFraction() const
    {
        return totalPixels
                   ? static_cast<double>(differingPixels) / totalPixels
                   : 0.0;
    }
};

/**
 * Compare two same-sized images; a pixel "differs" when any channel's
 * absolute difference exceeds `tolerance` (in linear space).
 */
ImageDiff compareImages(const Image &a, const Image &b,
                        float tolerance = 1.0f / 255.0f);

} // namespace vksim

#endif // VKSIM_UTIL_IMAGE_H
