#include "util/options.h"

#include <cstdlib>

namespace vksim {

Options::Options(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq == std::string::npos)
            values_[arg] = "1";
        else
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
}

bool
Options::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Options::get(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

long
Options::getInt(const std::string &key, long fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(),
                                                        nullptr, 10);
}

double
Options::getFloat(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : std::strtod(it->second.c_str(), nullptr);
}

bool
Options::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    return it->second != "0" && it->second != "false";
}

unsigned
Options::threadCount() const
{
    if (getBool("serial"))
        return 1;
    long n = getInt("threads", 0);
    if (n > 0)
        return static_cast<unsigned>(n);
    // 0 = auto: GpuSimulator/renderers resolve via VKSIM_THREADS or
    // hardware concurrency (ThreadPool::resolveThreadCount).
    return 0;
}

} // namespace vksim
