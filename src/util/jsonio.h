/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * Exists so the test suite can *parse back* the simulator's own
 * machine-readable outputs (the metrics dump, the Chrome-trace timeline,
 * the golden stats files) without an external dependency. Numbers keep
 * their raw source text alongside the double value, so integer counters
 * can be compared exactly even beyond 2^53.
 */

#ifndef VKSIM_UTIL_JSONIO_H
#define VKSIM_UTIL_JSONIO_H

#include <map>
#include <string>
#include <vector>

namespace vksim {

/** A parsed JSON value (object keys sorted; duplicate keys rejected). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string raw;  ///< number literal exactly as written
    std::string str;  ///< decoded string contents
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *member(const std::string &key) const;
};

/**
 * Parse a complete JSON document (trailing whitespace allowed, trailing
 * garbage rejected). On failure returns false and sets `error` (when
 * non-null) to a message with the byte offset.
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error = nullptr);

/** Read a whole file; returns false (and sets `error`) when unreadable. */
bool readFile(const std::string &path, std::string *out,
              std::string *error = nullptr);

} // namespace vksim

#endif // VKSIM_UTIL_JSONIO_H
