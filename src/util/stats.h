/**
 * @file
 * Lightweight statistics package: named counters, scalars, and histograms.
 *
 * Every timed component owns counters registered in a StatGroup; the full
 * tree is dumped at end of simulation and consumed by the benchmark
 * harnesses that regenerate the paper's tables and figures.
 */

#ifndef VKSIM_UTIL_STATS_H
#define VKSIM_UTIL_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/serial.h"

namespace vksim {

/** A monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; reports count/sum/min/max/mean. */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /**
     * Fold another accumulator into this one. Merging per-shard
     * accumulators in a fixed shard order gives results independent of
     * how many threads produced the shards.
     */
    void
    merge(const Accumulator &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0 || other.min_ < min_)
            min_ = other.min_;
        if (count_ == 0 || other.max_ > max_)
            max_ = other.max_;
        sum_ += other.sum_;
        count_ += other.count_;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

    /**
     * Overwrite the raw internal state (checkpoint restore). `min` and
     * `max` are the raw stored fields, which are 0 when count is 0 —
     * pass exactly what the matching accessors returned at save time.
     */
    void
    restore(std::uint64_t count, double sum, double min, double max)
    {
        count_ = count;
        sum_ = sum;
        min_ = min;
        max_ = max;
    }

    void
    saveState(serial::Writer &w) const
    {
        w.u64(count_);
        w.f64(sum_);
        w.f64(min_);
        w.f64(max_);
    }

    void
    loadState(serial::Reader &r)
    {
        count_ = r.u64();
        sum_ = r.f64();
        min_ = r.f64();
        max_ = r.f64();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width bucket histogram over [0, bucket_width * num_buckets);
 * samples beyond the top land in an overflow bucket.
 */
class Histogram
{
  public:
    Histogram() : Histogram(1.0, 32) {}

    Histogram(double bucket_width, unsigned num_buckets)
        : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
    {
    }

    /** Record one sample. */
    void
    sample(double v)
    {
        acc_.sample(v);
        auto idx = static_cast<std::uint64_t>(v / bucketWidth_);
        if (idx >= buckets_.size())
            ++overflow_;
        else
            ++buckets_[idx];
    }

    double bucketWidth() const { return bucketWidth_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }
    const Accumulator &summary() const { return acc_; }

    /** Value below which `frac` (0..1) of the samples fall (approx.). */
    double percentile(double frac) const;

    /**
     * Fold a histogram with identical geometry into this one (bucket-wise
     * addition). Panics when the bucket layout differs.
     */
    void merge(const Histogram &other);

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        overflow_ = 0;
        acc_.reset();
    }

    /**
     * Overwrite bucket counts and the summary accumulator (checkpoint
     * restore). The bucket count must match this histogram's geometry.
     */
    void
    restore(std::vector<std::uint64_t> buckets, std::uint64_t overflow,
            const Accumulator &summary)
    {
        buckets_ = std::move(buckets);
        overflow_ = overflow;
        acc_ = summary;
    }

    void
    saveState(serial::Writer &w) const
    {
        w.u64(buckets_.size());
        for (std::uint64_t b : buckets_)
            w.u64(b);
        w.u64(overflow_);
        acc_.saveState(w);
    }

    void
    loadState(serial::Reader &r)
    {
        buckets_.resize(r.u64());
        for (std::uint64_t &b : buckets_)
            b = r.u64();
        overflow_ = r.u64();
        acc_.loadState(r);
    }

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    Accumulator acc_;
};

/**
 * A named bag of statistics. Components create their counters through a
 * group so reports can enumerate everything hierarchically by name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Get-or-create a counter with the given name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Get-or-create an accumulator with the given name. */
    Accumulator &accum(const std::string &name) { return accums_[name]; }

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Accumulator> &accums() const
    {
        return accums_;
    }

    /** Counter value by name; 0 when absent. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** Render "name = value" lines, one per stat, prefixed by group name. */
    std::string dump() const;

    void reset();

    /**
     * Serialize / restore every named counter and accumulator
     * (checkpointing). loadState replaces the group's contents with
     * exactly the saved set; the group name itself is construction-time
     * identity and is not serialized.
     */
    void
    saveState(serial::Writer &w) const
    {
        w.u64(counters_.size());
        for (const auto &[name, c] : counters_) {
            w.str(name);
            w.u64(c.value());
        }
        w.u64(accums_.size());
        for (const auto &[name, a] : accums_) {
            w.str(name);
            a.saveState(w);
        }
    }

    void
    loadState(serial::Reader &r)
    {
        counters_.clear();
        accums_.clear();
        std::uint64_t nc = r.u64();
        for (std::uint64_t i = 0; i < nc; ++i) {
            std::string name = r.str();
            counters_[name].set(r.u64());
        }
        std::uint64_t na = r.u64();
        for (std::uint64_t i = 0; i < na; ++i) {
            std::string name = r.str();
            accums_[name].loadState(r);
        }
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Accumulator> accums_;
};

} // namespace vksim

#endif // VKSIM_UTIL_STATS_H
