#include "util/log.h"

#include <cstdlib>

namespace vksim {

bool
verboseEnabled()
{
    static const bool enabled = std::getenv("VKSIM_VERBOSE") != nullptr;
    return enabled;
}

void
informStr(const std::string &msg)
{
    if (verboseEnabled())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnStr(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace vksim
