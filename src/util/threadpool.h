/**
 * @file
 * Deterministic fork-join thread pool.
 *
 * A pool of persistent worker threads driven by a generation-counted
 * barrier: parallelFor(n, body) publishes a job, wakes every worker, and
 * all lanes (workers + the calling thread) pull index chunks from a shared
 * atomic cursor until the range is exhausted. The call returns only after
 * every lane has passed the completion barrier, so a parallelFor is a full
 * fork-join phase — exactly the structure the parallel simulation engine
 * needs for its stage-then-drain cycle barrier (see DESIGN.md, "Parallel
 * engine & determinism contract").
 *
 * Determinism is the caller's contract, made easy to honour: iterations
 * may run on any lane in any order, so bodies must only touch per-index
 * state (or perform exactly-commutative reductions); every consumer in
 * this repo stages per-index results and merges them in fixed index order
 * after the join.
 *
 * Exceptions thrown by the body are captured (first one wins) and
 * rethrown from parallelFor after the join. Nested parallelFor on the
 * same pool is rejected with std::logic_error (the barrier is not
 * reentrant). Empty ranges return immediately.
 *
 * Distinct *threads* may call parallelFor on the same pool concurrently:
 * calls serialize on an internal submit lock, so at most one job is in
 * flight and late callers simply wait their turn. This is what lets
 * SimService job workers share sharedThreadPool() consumers (the BVH
 * builder's parallel binning) without coordinating externally.
 */

#ifndef VKSIM_UTIL_THREADPOOL_H
#define VKSIM_UTIL_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vksim {

/** Persistent-worker fork-join pool with a barrier-style parallelFor. */
class ThreadPool
{
  public:
    /**
     * Create a pool with `threads` total lanes (including the calling
     * thread): `threads` workers minus one are spawned. 0 resolves via
     * resolveThreadCount(); 1 spawns nothing and runs inline.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes, including the calling thread. */
    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run body(i) for every i in [0, n). Blocks until all iterations have
     * completed (fork-join barrier). The first exception thrown by any
     * iteration is rethrown here after the join.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Resolve a requested thread count: a positive request wins, else the
     * VKSIM_THREADS environment variable, else hardware concurrency
     * (never 0).
     */
    static unsigned resolveThreadCount(unsigned requested);

  private:
    void workerLoop();
    void runChunks(const std::function<void(std::size_t)> &body,
                   std::size_t n, std::size_t chunk);

    std::vector<std::thread> workers_;

    /// Bounded spin budget before parking at either barrier side; 0
    /// when the lanes oversubscribe the host cores (set once in the
    /// constructor).
    unsigned spinIters_ = 0;

    /// Serializes whole parallelFor jobs from different caller threads.
    std::mutex submitMutex_;

    /// True once a new job (vs `seen`) or shutdown is observable. Safe
    /// to poll without mutex_: generation_ is release-published after
    /// the job fields.
    bool
    jobReady(std::uint64_t seen) const
    {
        return shutdown_.load(std::memory_order_acquire)
               || generation_.load(std::memory_order_acquire) != seen;
    }

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /// Bumped per job; workers spin then park on it (see workerLoop).
    std::atomic<std::uint64_t> generation_{0};
    /// Workers still inside the current job.
    std::atomic<unsigned> working_{0};
    std::atomic<bool> shutdown_{false};

    // Current job (published under mutex_, consumed lock-free).
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t jobSize_ = 0;
    std::size_t chunk_ = 1;
    std::atomic<std::size_t> nextIndex_{0};

    std::mutex errorMutex_;
    std::exception_ptr error_;
};

/**
 * Process-wide shared pool for coarse data-parallel helpers (BVH builder
 * binning). Created lazily with resolveThreadCount(0) lanes.
 */
ThreadPool &sharedThreadPool();

} // namespace vksim

#endif // VKSIM_UTIL_THREADPOOL_H
