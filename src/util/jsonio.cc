#include "util/jsonio.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vksim {

const JsonValue *
JsonValue::member(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace {

/** Recursive-descent parser over a string view with offset reporting. */
class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue *out, std::string *error)
    {
        bool ok = value(out) && (skipWs(), pos_ == text_.size());
        if (!ok && error) {
            std::ostringstream os;
            os << (err_.empty() ? "unexpected trailing data" : err_)
               << " at byte " << pos_;
            *error = os.str();
        }
        return ok;
    }

  private:
    bool
    fail(const char *msg)
    {
        if (err_.empty())
            err_ = msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail("invalid literal");
        pos_ += n;
        return true;
    }

    bool
    value(JsonValue *out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out->kind = JsonValue::Kind::String;
            return string(&out->str);
          case 't':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return literal("true");
          case 'f':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return literal("false");
          case 'n':
            out->kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return number(out);
        }
    }

    bool
    object(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"'
                || !string(&key))
                return fail("expected object key");
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            JsonValue member;
            if (!value(&member))
                return false;
            if (!out->object.emplace(key, std::move(member)).second)
                return fail("duplicate object key");
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!value(&elem))
                return false;
            out->array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string *out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail("unterminated escape");
                char e = text_[pos_ + 1];
                pos_ += 2;
                switch (e) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_ + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                    // UTF-8 encode (surrogate pairs not needed for our
                    // own ASCII output; pass them through as-is).
                    if (cp < 0x80) {
                        *out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        *out += static_cast<char>(0xc0 | (cp >> 6));
                        *out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        *out += static_cast<char>(0xe0 | (cp >> 12));
                        *out +=
                            static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                        *out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                *out += c;
                ++pos_;
            }
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    number(JsonValue *out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size()
                   && std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        std::size_t int_start = pos_;
        if (digits() == 0)
            return fail("invalid number");
        if (pos_ - int_start > 1 && text_[int_start] == '0')
            return fail("leading zero in number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                return fail("digits required after '.'");
        }
        if (pos_ < text_.size()
            && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                return fail("digits required in exponent");
        }
        out->kind = JsonValue::Kind::Number;
        out->raw = text_.substr(start, pos_ - start);
        out->number = std::strtod(out->raw.c_str(), nullptr);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string err_;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    *out = JsonValue{};
    return Parser(text).parse(out, error);
}

bool
readFile(const std::string &path, std::string *out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

} // namespace vksim
