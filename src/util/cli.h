/**
 * @file
 * Unified command-line parsing for every driver binary (examples and
 * tools). Replaces the per-binary copies of `--threads` / `--check` /
 * `--timeline*` / `--stats-json` / `--perf` handling that used to live
 * in each main():
 *
 *  - flags are *registered* (name, value placeholder, default, help
 *    text), so `--help` output is generated and an unknown or malformed
 *    flag is a hard error instead of a silent no-op;
 *  - addSimFlags()/applySimFlags() (core/vulkansim.h — they need
 *    GpuConfig, which lives above util) install the shared simulator
 *    flag set once and map it onto a GpuConfig, keeping all drivers in
 *    sync.
 *
 * The older `util/options.h` free-form parser remains only for the
 * bench_* pretty-printers; new binaries should use Cli.
 */

#ifndef VKSIM_UTIL_CLI_H
#define VKSIM_UTIL_CLI_H

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace vksim {

/** Declarative command-line parser with generated --help. */
class Cli
{
  public:
    /**
     * `usage` is the one-line synopsis printed at the top of --help
     * (e.g. "quickstart [flags]"); `summary` a short description.
     */
    Cli(std::string usage, std::string summary);

    /** Register a boolean flag (`--name`, also accepts `--name=0/1`). */
    Cli &flag(const std::string &name, const std::string &help);

    /** Register a value flag (`--name=<value>`) with a default. */
    Cli &option(const std::string &name, const std::string &value_name,
                const std::string &fallback, const std::string &help);

    /**
     * Parse argv. Returns false on `--help` (help printed to stdout,
     * helpRequested() true) or on an error (message printed to stderr):
     * an unregistered flag, a positional argument, or a value passed to
     * a plain boolean flag. Typical driver prologue:
     *
     *   if (!cli.parse(argc, argv))
     *       return cli.helpRequested() ? 0 : 1;
     */
    bool parse(int argc, char **argv);

    bool helpRequested() const { return helpRequested_; }

    /** Was the flag given explicitly on the command line? */
    bool has(const std::string &name) const;

    /** Value of a registered flag (its default when not given). */
    std::string get(const std::string &name) const;
    long getInt(const std::string &name) const;
    double getFloat(const std::string &name) const;
    bool getBool(const std::string &name) const;

    void printHelp(std::FILE *out = stdout) const;

    /**
     * Engine/service thread count from `--threads=N` / `--serial`, in
     * GpuConfig::threads convention: 0 = auto, 1 = serial. Requires
     * addSimFlags() (or equivalent registrations).
     */
    unsigned threadCount() const;

  private:
    struct Spec
    {
        std::string name;
        std::string valueName; ///< empty for boolean flags
        std::string fallback;
        std::string help;
        bool boolean = false;
    };

    const Spec *find(const std::string &name) const;

    std::string usage_;
    std::string summary_;
    std::vector<Spec> specs_; ///< registration order (help layout)
    std::map<std::string, std::string> values_;
    bool helpRequested_ = false;
};

} // namespace vksim

#endif // VKSIM_UTIL_CLI_H
