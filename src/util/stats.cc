#include "util/stats.h"

#include <algorithm>
#include <sstream>

#include "util/log.h"

namespace vksim {

void
Histogram::merge(const Histogram &other)
{
    vksim_assert(bucketWidth_ == other.bucketWidth_
                 && buckets_.size() == other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    acc_.merge(other.acc_);
}

double
Histogram::percentile(double frac) const
{
    std::uint64_t total = acc_.count();
    if (total == 0)
        return 0.0;
    auto target = static_cast<std::uint64_t>(frac * total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (static_cast<double>(i) + 1.0) * bucketWidth_;
    }
    return acc_.max();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[k, c] : counters_)
        os << name_ << "." << k << " = " << c.value() << "\n";
    for (const auto &[k, a] : accums_) {
        os << name_ << "." << k << ".count = " << a.count() << "\n";
        os << name_ << "." << k << ".mean = " << a.mean() << "\n";
    }
    return os.str();
}

void
StatGroup::reset()
{
    for (auto &[k, c] : counters_)
        c.reset();
    for (auto &[k, a] : accums_)
        a.reset();
}

} // namespace vksim
